// Ablation benchmarks for the design choices DESIGN.md calls out: the
// multipole acceptance parameter, the expansion order, the GPU work
// partitioner, and the observed-coefficient smoothing. Each reports the
// quantity the choice trades off.
package afmm_test

import (
	"math"
	"testing"

	"afmm"
	"afmm/internal/costmodel"
	"afmm/internal/distrib"
	"afmm/internal/octree"
	"afmm/internal/vgpu"
)

// BenchmarkAblationMAC varies the multipole acceptance parameter: a
// stricter MAC (smaller) improves accuracy but inflates the near field.
func BenchmarkAblationMAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mac := range []float64{0.4, 0.6, 0.8} {
			sys := afmm.Plummer(1500, 1, 1, 42)
			s := afmm.NewGravitySolver(sys, afmm.GravityConfig{P: 8, S: 16, MAC: mac, NumGPUs: 1})
			st := s.Solve()
			_, accRef := afmm.AllPairsGravity(sys, s.Cfg.Kernel)
			var num, den float64
			for j := range accRef {
				num += sys.Acc[j].Sub(accRef[j]).Norm2()
				den += accRef[j].Norm2()
			}
			err := math.Sqrt(num / den)
			tag := map[float64]string{0.4: "04", 0.6: "06", 0.8: "08"}[mac]
			b.ReportMetric(float64(st.Counts[costmodel.P2P]), "p2p-mac"+tag)
			b.ReportMetric(-math.Log10(err+1e-300), "digits-mac"+tag)
		}
	}
}

// BenchmarkAblationOrderP varies the number of retained expansion terms:
// accuracy digits gained per unit of far-field cost.
func BenchmarkAblationOrderP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []int{4, 8, 12} {
			sys := afmm.Plummer(1500, 1, 1, 42)
			s := afmm.NewGravitySolver(sys, afmm.GravityConfig{P: p, S: 16, NumGPUs: 1})
			s.Solve()
			_, accRef := afmm.AllPairsGravity(sys, s.Cfg.Kernel)
			var num, den float64
			for j := range accRef {
				num += sys.Acc[j].Sub(accRef[j]).Norm2()
				den += accRef[j].Norm2()
			}
			err := math.Sqrt(num / den)
			switch p {
			case 4:
				b.ReportMetric(-math.Log10(err+1e-300), "digits-p4")
			case 8:
				b.ReportMetric(-math.Log10(err+1e-300), "digits-p8")
			case 12:
				b.ReportMetric(-math.Log10(err+1e-300), "digits-p12")
			}
		}
	}
}

// BenchmarkAblationPartitioner compares the paper's interaction-balanced
// device partition against a naive equal-leaf-count split, reporting the
// kernel-time imbalance (max/mean) of each.
func BenchmarkAblationPartitioner(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	tree := octree.Build(sys, octree.Config{S: 64})
	tree.BuildLists()
	imbalance := func(c *vgpu.Cluster) float64 {
		c.Execute(tree, nil)
		var sum, max float64
		for _, d := range c.Devices {
			sum += d.KernelTime
			if d.KernelTime > max {
				max = d.KernelTime
			}
		}
		return max / (sum / float64(len(c.Devices)))
	}
	for i := 0; i < b.N; i++ {
		paper := vgpu.NewCluster(4, vgpu.ScaledSpec(1.0/64))
		paper.Partition(tree)
		naive := vgpu.NewCluster(4, vgpu.ScaledSpec(1.0/64))
		naive.PartitionByLeafCount(tree)
		b.ReportMetric(imbalance(paper), "imbalance-paper")
		b.ReportMetric(imbalance(naive), "imbalance-naive")
	}
}

// BenchmarkAblationUniformVsAdaptive reports the compute-time penalty of
// the uniform decomposition at its best S against the adaptive tree at its
// best S on a clustered distribution — the motivation for the AFMM.
func BenchmarkAblationUniformVsAdaptive(b *testing.B) {
	sys := distrib.Plummer(10000, 1, 1, 42)
	best := func(mode octree.Mode) float64 {
		bestT := math.Inf(1)
		for _, s := range []int{8, 16, 32, 64, 128, 256, 512} {
			sysc := sys.Clone()
			cfg := afmm.GravityConfig{
				P: 4, S: s, Mode: mode, NumGPUs: 1,
				GPUSpec:       vgpu.ScaledSpec(1.0 / 64),
				SkipFarField:  true,
				SkipNearField: true,
			}
			cfg.CPU.Cores = 10
			sol := afmm.NewGravitySolver(sysc, cfg)
			st := sol.Solve()
			if st.Compute < bestT {
				bestT = st.Compute
			}
		}
		return bestT
	}
	for i := 0; i < b.N; i++ {
		a := best(octree.Adaptive)
		u := best(octree.Uniform)
		b.ReportMetric(u/a, "uniform-penalty")
	}
}

// BenchmarkExtensionEndpointOffload evaluates the paper's §VIII.E
// proposal: in a CPU-starved configuration (4 cores + 4 GPUs), moving P2M
// and L2P to the devices should reduce the best achievable compute time;
// in a CPU-rich configuration it should matter little. Reports the best
// compute time ratio plain/offload for both.
func BenchmarkExtensionEndpointOffload(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	best := func(cores int, offload bool) float64 {
		bestT := math.Inf(1)
		for _, s := range []int{32, 64, 128, 256, 384, 512, 768} {
			cfg := afmm.GravityConfig{
				P: 4, S: s, NumGPUs: 4,
				GPUSpec:          vgpu.ScaledSpec(1.0 / 6),
				SkipFarField:     true,
				SkipNearField:    true,
				OffloadEndpoints: offload,
			}
			cfg.CPU.Cores = cores
			sol := afmm.NewGravitySolver(sys.Clone(), cfg)
			st := sol.Solve()
			if st.Compute < bestT {
				bestT = st.Compute
			}
		}
		return bestT
	}
	for i := 0; i < b.N; i++ {
		starved := best(4, false) / best(4, true)
		rich := best(10, false) / best(10, true)
		b.ReportMetric(starved, "gain-4c4g")
		b.ReportMetric(rich, "gain-10c4g")
	}
}

// BenchmarkAblationRotatedTranslations measures the real (host) wall time
// of a full far-field evaluation with the direct O(p^4) operators vs the
// rotation-accelerated O(p^3) ones at a production order.
func BenchmarkAblationRotatedTranslations(b *testing.B) {
	for _, rotated := range []bool{false, true} {
		name := "direct-p10"
		if rotated {
			name = "rotated-p10"
		}
		b.Run(name, func(b *testing.B) {
			sys := distrib.Plummer(4000, 1, 1, 42)
			s := afmm.NewGravitySolver(sys, afmm.GravityConfig{
				P: 10, S: 32, NumGPUs: 1,
				SkipNearField:          true,
				UseRotatedTranslations: rotated,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Solve()
			}
		})
	}
}
