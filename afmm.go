// Package afmm is a Go implementation of the adaptive fast multipole
// method (AFMM) with dynamic load balancing for heterogeneous CPU+GPU
// nodes, reproducing Overman, Prins, Miller & Minion, "Dynamic Load
// Balancing of the Adaptive Fast Multipole Method in Heterogeneous
// Systems" (IEEE IPDPSW 2013).
//
// The library provides:
//
//   - a spherical-harmonics AFMM for the Laplace/gravity kernel and a
//     regularized-Stokeslet solver built on a four-harmonic decomposition
//     (NewGravitySolver, NewStokesSolver);
//   - an adaptive octree with the paper's tree-modification primitives
//     (Collapse, PushDown, Enforce_S, Refill);
//   - a simulated heterogeneous machine — a SIMT GPU cluster model and a
//     multicore task-schedule replayer — standing in for the CUDA + OpenMP
//     hardware of the paper (see DESIGN.md for the substitution argument);
//   - the paper's dynamic load balancer: Search / Incremental /
//     Observation states, observed-coefficient time prediction, Enforce_S
//     and FineGrainedOptimize;
//   - simulation drivers, deterministic workload generators, and a full
//     experiment harness regenerating every table and figure of the paper.
//
// Quick start:
//
//	sys := afmm.Plummer(100000, 1.0, 1.0, 42)
//	solver := afmm.NewGravitySolver(sys, afmm.GravityConfig{
//		S: 64, NumGPUs: 2,
//	})
//	times := solver.Solve() // sys.Acc now holds accelerations
//	fmt.Println(times.Compute)
//
// The types below are aliases of the implementation packages under
// internal/; the facade is the supported public surface.
package afmm

import (
	"afmm/internal/autotune"
	"afmm/internal/balance"
	"afmm/internal/checkpoint"
	"afmm/internal/core"
	"afmm/internal/costmodel"
	"afmm/internal/distrib"
	"afmm/internal/dmem"
	"afmm/internal/fault"
	"afmm/internal/fieldgrid"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/metrics"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/sim"
	"afmm/internal/stokes"
	"afmm/internal/telemetry"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

// Geometry and bodies.
type (
	// Vec3 is a 3-D vector.
	Vec3 = geom.Vec3
	// Box is an axis-aligned cube (center + half-width).
	Box = geom.Box
	// System holds the bodies in structure-of-arrays layout.
	System = particle.System
)

// NewSystem creates a system of n unit-mass bodies.
func NewSystem(n int) *System { return particle.New(n) }

// Distributions (deterministic under a seed).
var (
	// Plummer samples the Plummer sphere used throughout the paper.
	Plummer = distrib.Plummer
	// UniformCube samples a uniform box distribution.
	UniformCube = distrib.UniformCube
	// UniformShell samples a hollow sphere (adversarial adaptivity case).
	UniformShell = distrib.UniformShell
	// TwoClusters samples two colliding Plummer spheres.
	TwoClusters = distrib.TwoClusters
	// SpiralDisk samples a rotating exponential disk.
	SpiralDisk = distrib.SpiralDisk
)

// Kernels.
type (
	// GravityKernel is the (optionally softened) Newtonian kernel.
	GravityKernel = kernels.Gravity
	// StokesletKernel is the regularized Stokeslet of Cortez.
	StokesletKernel = kernels.Stokeslet
)

// Decomposition.
type (
	// Tree is the adaptive octree decomposition.
	Tree = octree.Tree
	// TreeMode selects adaptive (AFMM) or uniform (FMM) decomposition.
	TreeMode = octree.Mode
)

// Tree modes.
const (
	Adaptive = octree.Adaptive
	Uniform  = octree.Uniform
)

// Solvers.
type (
	// GravityConfig configures the heterogeneous gravity solver.
	GravityConfig = core.Config
	// GravitySolver is the heterogeneous AFMM engine for gravity.
	GravitySolver = core.Solver
	// StepTimes is the virtual-machine timing of one solve.
	StepTimes = core.StepTimes
	// StokesConfig configures the regularized-Stokeslet solver.
	StokesConfig = stokes.Config
	// StokesSolver evaluates Stokeslet velocities via four harmonic FMMs.
	StokesSolver = stokes.Solver
	// Boundary is an immersed flexible structure (fiber or ring).
	Boundary = stokes.Boundary
	// SweepMode selects the host execution of the far-field sweeps.
	SweepMode = core.SweepMode
	// OverlapMode selects whether a solve runs its near-field sweep
	// concurrently with the far-field phases.
	OverlapMode = core.OverlapMode
)

// Sweep modes for GravityConfig.SweepMode / StokesConfig.SweepMode.
const (
	// SweepLevelSync (the default) runs flat level-synchronous sweeps
	// with batched rotation-accelerated M2L.
	SweepLevelSync = core.SweepLevelSync
	// SweepRecursive is the legacy task-per-node recursive traversal.
	SweepRecursive = core.SweepRecursive
)

// Overlap modes for GravityConfig.Overlap / StokesConfig.Overlap.
const (
	// OverlapAuto (the default) overlaps near and far phases on eligible
	// solves; results stay bit-identical to the sequential order.
	OverlapAuto = core.OverlapAuto
	// OverlapOff forces the sequential near-then-far execution.
	OverlapOff = core.OverlapOff
)

// NewGravitySolver builds the AFMM over the system's bodies.
func NewGravitySolver(sys *System, cfg GravityConfig) *GravitySolver {
	return core.NewSolver(sys, cfg)
}

// NewStokesSolver builds the regularized-Stokeslet AFMM; forces are read
// from sys.Aux and velocities written to sys.Acc.
func NewStokesSolver(sys *System, cfg StokesConfig) *StokesSolver {
	return stokes.NewSolver(sys, cfg)
}

// AllPairsGravity computes the exact direct-sum reference (storage order).
var AllPairsGravity = core.AllPairsReference

// ErrorBound is the a-priori truncation-error summary of a solve's lists.
type ErrorBound = core.ErrorBound

// AllPairsStokes computes exact regularized-Stokeslet velocities.
var AllPairsStokes = stokes.DirectVelocities

// Immersed boundaries.
var (
	// NewRing builds a closed elastic ring of markers.
	NewRing = stokes.Ring
	// NewFiber builds an open elastic fiber of markers.
	NewFiber = stokes.Fiber
	// NewHelix builds a helical fiber (the helical-swimming geometry of
	// the paper's ref. [15]).
	NewHelix = stokes.Helix
	// RotletForces adds tangential driving forces about an axis.
	RotletForces = stokes.RotletForces
	// ClearForces zeroes the force accumulator (sys.Aux).
	ClearForces = stokes.ClearForces
)

// Load balancing.
type (
	// Balancer is the paper's dynamic load balancer.
	Balancer = balance.Balancer
	// BalanceConfig tunes the balancer.
	BalanceConfig = balance.Config
	// BalanceTarget is the solver surface the balancer drives.
	BalanceTarget = balance.Target
	// Strategy selects one of the paper's three balancing schemes.
	Strategy = balance.Strategy
	// BalancerState is the Search/Incremental/Observation state.
	BalancerState = balance.State
	// BalanceStepTimes is the CPU/GPU timing pair the balancer consumes.
	BalanceStepTimes = balance.StepTimes
)

// The three strategies of §IX.A.
const (
	StrategyStatic  = balance.StrategyStatic
	StrategyEnforce = balance.StrategyEnforce
	StrategyFull    = balance.StrategyFull
)

// NewBalancer creates a balancer for a system of n bodies.
func NewBalancer(cfg BalanceConfig, n int) *Balancer { return balance.New(cfg, n) }

// Simulation drivers.
type (
	// SimConfig controls a time-dependent run.
	SimConfig = sim.Config
	// SimResult aggregates per-step records.
	SimResult = sim.Result
	// SimStepRecord is one step's timing/balance record.
	SimStepRecord = sim.StepRecord
)

// Simulation entry points and diagnostics.
var (
	// RunGravity advances a gravitational simulation under a strategy.
	RunGravity = sim.RunGravity
	// RunStokes advances an overdamped Stokes simulation.
	RunStokes = sim.RunStokes
	// Energies returns kinetic and potential energy after a solve.
	Energies = sim.Energies
	// KickDrift is the symplectic integrator step.
	KickDrift = sim.KickDrift
	// SuggestDt proposes an adaptive time step from the accelerations.
	SuggestDt = sim.SuggestDt
	// AngularMomentum returns the total angular momentum about the origin.
	AngularMomentum = sim.AngularMomentum
)

// Step-trace telemetry (see docs/OBSERVABILITY.md).
type (
	// Recorder captures per-step spans, balancer events, device samples
	// and worker utilization; a nil *Recorder is a valid no-op.
	Recorder = telemetry.Recorder
	// RecorderOptions configures a Recorder (JSONL sink, in-memory keep).
	RecorderOptions = telemetry.Options
	// TelemetryStepRecord is the per-step record a Recorder emits.
	TelemetryStepRecord = telemetry.StepRecord
	// MetricsRegistry is the live metrics registry (counters, gauges,
	// histograms) the recorder and subsystems publish into; the debug
	// server serves it as Prometheus text on /metrics.
	MetricsRegistry = metrics.Registry
	// FlightRecorder retains the last K step records in memory and dumps
	// them to disk when a fault, failed step, or sentinel anomaly fires.
	FlightRecorder = telemetry.FlightRecorder
	// SentinelConfig tunes the step-time regression sentinel.
	SentinelConfig = telemetry.SentinelConfig
	// TelemetryDebugServer is a running debug endpoint (/, /metrics,
	// /status, /flightrec, /debug/pprof) with graceful Shutdown.
	TelemetryDebugServer = telemetry.DebugServer
)

// Telemetry entry points.
var (
	// NewRecorder creates a step-trace recorder.
	NewRecorder = telemetry.New
	// NewMetricsRegistry creates an empty metrics registry for
	// RecorderOptions.Metrics.
	NewMetricsRegistry = metrics.NewRegistry
	// NewFlightRecorder creates a flight-recorder ring for
	// RecorderOptions.Flight (k <= 0 selects the default 32 steps; an
	// empty dir keeps the ring queryable but never dumps).
	NewFlightRecorder = telemetry.NewFlightRecorder
	// StartTelemetryDebug starts the debug server (dashboard, metrics,
	// status, flight ring, pprof) and returns a handle with Shutdown.
	StartTelemetryDebug = telemetry.StartDebug
	// ServeTelemetryDebug is the legacy debug entry point returning the
	// raw (addr, *http.Server) pair.
	ServeTelemetryDebug = telemetry.ServeDebug
)

// Virtual machine.
type (
	// CPUSpec is the virtual multicore model.
	CPUSpec = vcpu.Spec
	// GPUSpec is the simulated SIMT device model.
	GPUSpec = vgpu.Spec
	// CostModel carries observed per-operation coefficients (§IV.D).
	CostModel = costmodel.Model
	// Op identifies one of the six FMM operations.
	Op = costmodel.Op
)

// Machine model constructors.
var (
	// DefaultCPU returns the Xeon-X5670-like core model.
	DefaultCPU = vcpu.DefaultSpec
	// DefaultGPU returns the Tesla-C2050-like device model.
	DefaultGPU = vgpu.DefaultSpec
	// NewPool creates the real task-parallel worker pool.
	NewPool = sched.NewPool
)

// Distributed-memory extension (simulated cluster, paper §II).
type (
	// ClusterConfig assembles the distributed solver.
	ClusterConfig = dmem.Config
	// ClusterSolver runs the AFMM over a simulated multi-node cluster.
	ClusterSolver = dmem.Solver
	// ClusterNodeSpec describes one virtual node.
	ClusterNodeSpec = dmem.NodeSpec
	// ClusterStepReport is the per-node timing/communication report.
	ClusterStepReport = dmem.StepReport
	// NetworkSpec is the alpha-beta interconnect model.
	NetworkSpec = dmem.NetworkSpec
)

// Distributed-memory run loop and link layer.
type (
	// ClusterRunConfig drives a multi-step distributed run.
	ClusterRunConfig = dmem.RunConfig
	// ClusterRunResult summarizes a multi-step distributed run.
	ClusterRunResult = dmem.RunResult
	// ClusterLinkConfig tunes the transport's delivery protocol and the
	// heartbeat failure detector.
	ClusterLinkConfig = dmem.LinkConfig
	// ClusterNetStats aggregates the link layer's delivery activity.
	ClusterNetStats = dmem.NetStats
	// LinkSchedule is a parsed deterministic per-link fault schedule.
	LinkSchedule = fault.LinkSchedule
	// NodeFaultEvent is one scheduled virtual-node fail-stop.
	NodeFaultEvent = fault.NodeEvent
)

// Cluster constructors and helpers.
var (
	// NewClusterSolver builds the distributed solver.
	NewClusterSolver = dmem.NewSolver
	// HomogeneousNodes replicates one node spec.
	HomogeneousNodes = dmem.HomogeneousNodes
	// DefaultNetwork models a commodity interconnect.
	DefaultNetwork = dmem.DefaultNetwork
	// ScaledGPU derates the device model for scaled-down problems.
	ScaledGPU = vgpu.ScaledSpec
	// ParseClusterEvents splits a mixed node/link fault spec, e.g.
	// "node2:failstop@step3,link0-1:drop0.1@step2".
	ParseClusterEvents = fault.ParseClusterEvents
	// ParseLinkEvents parses a pure link-fault spec.
	ParseLinkEvents = fault.ParseLinkEvents
	// RandomLinkSchedule draws a seeded random link-fault schedule.
	RandomLinkSchedule = fault.RandomLinks
)

// Automatic parameter tuning (paper ref. [8]).
type (
	// TuneRequest describes an accuracy/machine tuning goal.
	TuneRequest = autotune.Request
	// TuneChoice is the selected (P, S) with predicted cost.
	TuneChoice = autotune.Choice
)

// Tune selects the expansion order and leaf capacity for a target accuracy
// on a machine, using the cost model (no numeric work).
var Tune = autotune.Tune

// Checkpointing.
type (
	// Snapshot is a serializable simulation state.
	Snapshot = checkpoint.Snapshot
)

// Checkpoint entry points.
var (
	// CaptureSnapshot copies the system state (plus S and step info).
	CaptureSnapshot = checkpoint.Capture
	// CaptureSnapshotState additionally captures the balancer's FSM state,
	// so a resumed run continues in Observation instead of re-searching.
	CaptureSnapshotState = checkpoint.CaptureState
	// WriteSnapshot gob-encodes a snapshot.
	WriteSnapshot = checkpoint.Write
	// ReadSnapshot decodes a snapshot.
	ReadSnapshot = checkpoint.Read
	// WriteSnapshotFile atomically persists a snapshot (temp file +
	// rename), so a crash mid-write never truncates a good checkpoint.
	WriteSnapshotFile = checkpoint.WriteFile
	// ReadSnapshotFile loads a snapshot written by WriteSnapshotFile.
	ReadSnapshotFile = checkpoint.ReadFile
)

// SimCheckpointFile is the rolling auto-checkpoint filename the
// simulation loop writes inside SimConfig.CheckpointDir.
const SimCheckpointFile = sim.CheckpointFile

// Fault injection and resilience (see docs/RESILIENCE.md).
type (
	// FaultSchedule is a parsed deterministic fault-injection schedule.
	FaultSchedule = fault.Schedule
	// FaultInjector drives a schedule against the simulated devices.
	FaultInjector = fault.Injector
	// FaultKind identifies a fault class (fail-stop, hang, straggle,
	// transient, corrupt).
	FaultKind = fault.Kind
	// WatchdogConfig tunes the device watchdog: heartbeat deadline,
	// transient-retry budget and backoff, fallback chunking.
	WatchdogConfig = vgpu.WatchdogConfig
	// FaultReport summarizes fault handling for a solve's near field.
	FaultReport = vgpu.FaultReport
	// DeviceFault is one device transition recorded during a solve.
	DeviceFault = vgpu.DeviceFault
	// ValidationError reports a non-finite accumulator caught by the
	// opt-in post-solve validation (GravityConfig.Validate).
	ValidationError = core.ValidationError
)

// Fault-injection entry points.
var (
	// ParseFaultSchedule parses the fault spec grammar, e.g.
	// "gpu1:failstop@step12,gpu0:straggle2.5@step20".
	ParseFaultSchedule = fault.Parse
	// RandomFaultSchedule draws a seeded random schedule (soak testing).
	RandomFaultSchedule = fault.Random
	// NewFaultInjector builds the injector a solver consults per chunk
	// (GravityConfig.Faults / StokesConfig.Faults).
	NewFaultInjector = fault.NewInjector
)

// Field sampling on regular lattices (visualization).
type (
	// FieldGrid is a regular probe lattice.
	FieldGrid = fieldgrid.Grid
)

// Field-grid helpers.
var (
	// CoveringGrid builds an n^3 lattice covering a box.
	CoveringGrid = fieldgrid.Covering
	// SampleField evaluates potential and field on a lattice.
	SampleField = fieldgrid.Sample
	// WriteFieldCSV samples a lattice and writes CSV rows.
	WriteFieldCSV = fieldgrid.WriteCSV
)

// Snapshot interchange (extended-XYZ).
var (
	// WriteXYZ writes "mass x y z vx vy vz" rows in input order.
	WriteXYZ = particle.WriteXYZ
	// ReadXYZ parses the WriteXYZ format.
	ReadXYZ = particle.ReadXYZ
)
