package afmm_test

import (
	"math"
	"testing"

	"afmm"
)

// The facade tests exercise the public API end to end, the way the README
// and examples use it.

func TestFacadeGravityQuickstart(t *testing.T) {
	sys := afmm.Plummer(800, 1.0, 1.0, 42)
	cfg := afmm.GravityConfig{
		P:       8,
		S:       32,
		NumGPUs: 2,
		Kernel:  afmm.GravityKernel{G: 1},
	}
	cfg.CPU.Cores = 10
	solver := afmm.NewGravitySolver(sys, cfg)
	times := solver.Solve()
	if times.Compute <= 0 || times.Compute != math.Max(times.CPUTime, times.GPUTime) {
		t.Fatalf("bad step times: %+v", times)
	}
	_, accRef := afmm.AllPairsGravity(sys, cfg.Kernel)
	var num, den float64
	for i := range accRef {
		num += sys.Acc[i].Sub(accRef[i]).Norm2()
		den += accRef[i].Norm2()
	}
	if err := math.Sqrt(num / den); err > 1e-4 {
		t.Fatalf("facade solve error %g", err)
	}
}

func TestFacadeStokesRing(t *testing.T) {
	sys := afmm.NewSystem(128)
	ring := afmm.NewRing(sys, 0, 128, afmm.Vec3{}, 1, 2, 20)
	for i := range sys.Pos {
		sys.Pos[i].X *= 1.2
	}
	cfg := afmm.StokesConfig{P: 6, S: 16, Kernel: afmm.StokesletKernel{Mu: 1, Eps: 0.02}}
	solver := afmm.NewStokesSolver(sys, cfg)
	afmm.ClearForces(sys)
	ring.AccumulateForces(sys)
	st := solver.Solve()
	if st.Compute <= 0 {
		t.Fatalf("stokes times: %+v", st)
	}
	var moved bool
	for i := range sys.Acc {
		if sys.Acc[i].Norm() > 0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("stokes solve produced zero velocities")
	}
}

func TestFacadeSimulationWithBalancer(t *testing.T) {
	sys := afmm.Plummer(600, 1, 1, 7)
	cfg := afmm.GravityConfig{P: 4, S: 32, NumGPUs: 1, Kernel: afmm.GravityKernel{G: 1, Softening: 0.01}}
	cfg.CPU.Cores = 4
	solver := afmm.NewGravitySolver(sys, cfg)
	res := afmm.RunGravity(solver, afmm.SimConfig{
		Dt:      1e-4,
		Steps:   15,
		Balance: afmm.BalanceConfig{Strategy: afmm.StrategyFull},
	})
	if len(res.Records) != 15 {
		t.Fatalf("%d records", len(res.Records))
	}
	k, p := afmm.Energies(sys)
	if k < 0 || p >= 0 {
		t.Fatalf("energies implausible: K=%v W=%v", k, p)
	}
}

func TestFacadeUniformMode(t *testing.T) {
	sys := afmm.UniformCube(500, 1, 3)
	solver := afmm.NewGravitySolver(sys, afmm.GravityConfig{
		P: 6, S: 16, Mode: afmm.Uniform, NumGPUs: 1,
	})
	st := solver.Solve()
	if st.Compute <= 0 {
		t.Fatal("uniform mode produced no timing")
	}
}

func TestFacadeMachineSpecs(t *testing.T) {
	cpu := afmm.DefaultCPU()
	gpu := afmm.DefaultGPU()
	if cpu.Cores != 1 || gpu.SMs != 14 {
		t.Fatalf("unexpected defaults: %+v / %+v", cpu, gpu)
	}
	pool := afmm.NewPool(2)
	if pool.Workers() != 2 {
		t.Fatal("pool workers")
	}
}
