// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure (§VIII-IX). Each reports the figure's headline
// quantities as custom metrics; run cmd/afmm-bench for the full rows.
// Sizes are scaled down (see DESIGN.md §2); pass -n via cmd/afmm-bench for
// larger runs.
package afmm_test

import (
	"math"
	"testing"

	"afmm/internal/balance"
	"afmm/internal/experiments"
)

// benchParams returns the default scaled-down experiment sizing.
func benchParams() experiments.Params {
	return experiments.Params{Seed: 42}
}

// BenchmarkFig3AdaptiveCostVsS sweeps S on the adaptive decomposition and
// reports how gradually the compute cost varies (largest relative step
// between adjacent S samples — Fig. 3's point is that this is small).
func BenchmarkFig3AdaptiveCostVsS(b *testing.B) {
	p := benchParams()
	p.N = 10000
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig3(p)
		var maxStep float64
		for j := 1; j < len(pts); j++ {
			rel := math.Abs(pts[j].Compute-pts[j-1].Compute) / pts[j-1].Compute
			if rel > maxStep {
				maxStep = rel
			}
		}
		b.ReportMetric(maxStep, "max-rel-step")
	}
}

// BenchmarkFig4UniformGap sweeps S on the uniform decomposition and
// reports the largest jump at a depth-regime boundary (the Uniform Gap).
func BenchmarkFig4UniformGap(b *testing.B) {
	p := benchParams()
	p.N = 10000
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig4(p)
		r := experiments.AnalyzeUniformGap(pts)
		b.ReportMetric(r.MaxJump, "gap-jump")
		b.ReportMetric(float64(len(r.Depths)), "regimes")
	}
}

// BenchmarkFig6CPUScaling replays the far-field task graph on 1..32
// virtual cores and reports the 16- and 32-core speedups.
func BenchmarkFig6CPUScaling(b *testing.B) {
	p := benchParams()
	p.N = 30000
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig6(p)
		for _, pt := range pts {
			if pt.Cores == 16 {
				b.ReportMetric(pt.Speedup, "speedup-16c")
			}
			if pt.Cores == 32 {
				b.ReportMetric(pt.Speedup, "speedup-32c")
			}
		}
	}
}

// BenchmarkTable1GPUScaling reports the 2- and 4-GPU near-field speedups
// for a fixed workload (paper Table I: near-linear).
func BenchmarkTable1GPUScaling(b *testing.B) {
	p := benchParams()
	p.N = 30000
	for i := 0; i < b.N; i++ {
		pts := experiments.Table1(p)
		for _, pt := range pts {
			if pt.GPUs == 2 {
				b.ReportMetric(pt.Speedup, "speedup-2g")
			}
			if pt.GPUs == 4 {
				b.ReportMetric(pt.Speedup, "speedup-4g")
			}
		}
	}
}

// BenchmarkFig7HeteroSpeedup reports the best heterogeneous speedups over
// the serial baseline for the paper's configurations (peak at 10C_4G).
func BenchmarkFig7HeteroSpeedup(b *testing.B) {
	p := benchParams()
	p.N = 10000
	for i := 0; i < b.N; i++ {
		_, curves := experiments.Fig7(p)
		for _, c := range curves {
			switch c.Label {
			case "10C_4G":
				b.ReportMetric(c.BestSpeedup, "speedup-10c4g")
			case "10C_2G":
				b.ReportMetric(c.BestSpeedup, "speedup-10c2g")
			case "4C_4G":
				b.ReportMetric(c.BestSpeedup, "speedup-4c4g")
			}
		}
	}
}

// BenchmarkFig8Strategies runs the three balancing strategies on the
// dynamic workload (Figures 8/9) and reports their mean per-step totals.
func BenchmarkFig8Strategies(b *testing.B) {
	p := benchParams()
	p.N = 6000
	p.Steps = 150
	p.Dt = 2e-4
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig8(p)
		for _, r := range runs {
			switch r.Strategy {
			case balance.StrategyStatic:
				b.ReportMetric(r.Result.MeanTotalPerStep()*1e3, "ms/step-static")
			case balance.StrategyEnforce:
				b.ReportMetric(r.Result.MeanTotalPerStep()*1e3, "ms/step-enforce")
			case balance.StrategyFull:
				b.ReportMetric(r.Result.MeanTotalPerStep()*1e3, "ms/step-full")
			}
		}
	}
}

// BenchmarkTable2StrategySummary reports the Table II relative costs and
// the full strategy's LB overhead percentage.
func BenchmarkTable2StrategySummary(b *testing.B) {
	p := benchParams()
	p.N = 6000
	p.Steps = 150
	p.Dt = 2e-4
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig8(p)
		rows := experiments.Table2(runs)
		for _, r := range rows {
			switch r.Strategy {
			case "strategy1-static":
				b.ReportMetric(r.RelCostPerStep, "rel-static")
			case "strategy2-enforce":
				b.ReportMetric(r.RelCostPerStep, "rel-enforce")
			case "strategy3-full":
				b.ReportMetric(r.LBPercent, "lb-pct-full")
			}
		}
	}
}

// BenchmarkFig10FineGrained runs the Stokes uniform-distribution ablation
// and reports the mean per-step advantage of FineGrainedOptimize.
func BenchmarkFig10FineGrained(b *testing.B) {
	p := benchParams()
	p.N = 6000
	p.Steps = 60
	p.Dt = 1e-3
	for i := 0; i < b.N; i++ {
		_, mean := experiments.Fig10(p)
		b.ReportMetric(100*(mean-1), "fgo-advantage-pct")
	}
}
