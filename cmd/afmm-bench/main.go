// Command afmm-bench regenerates the tables and figures of the paper's
// evaluation on the simulated heterogeneous machine and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	afmm-bench [flags] <experiment>
//
// where experiment is one of: fig3 fig4 fig6 table1 fig7 fig8 fig9 table2
// fig10 all. Absolute times are virtual-machine seconds; the reproduction
// target is the shape of each result (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"afmm/internal/experiments"
	"afmm/internal/metrics"
	"afmm/internal/telemetry"
)

func main() {
	var p experiments.Params
	flag.IntVar(&p.N, "n", 0, "body count (0 = experiment default)")
	flag.Int64Var(&p.Seed, "seed", 42, "random seed")
	flag.IntVar(&p.P, "p", 4, "expansion order for timing experiments")
	flag.IntVar(&p.Cores, "cores", 10, "virtual CPU cores")
	flag.IntVar(&p.GPUs, "gpus", 0, "simulated GPUs (0 = experiment default)")
	flag.Float64Var(&p.GPUScale, "gpuscale", 0, "device throughput derating (0 = default 1/64)")
	flag.IntVar(&p.Steps, "steps", 0, "time steps for dynamic experiments (0 = default)")
	flag.Float64Var(&p.Dt, "dt", 0, "time step size (0 = default)")
	csv := flag.Bool("csv", false, "emit raw CSV instead of tables")
	traceFile := flag.String("trace", "", "write the telemetry JSONL trace of the dynamic experiments' headline run to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve the live dashboard, Prometheus /metrics and /status on this address while the dynamic experiments run")
	flightDir := flag.String("flightrec", "", "keep a flight-recorder ring of the headline run's last 32 steps and dump it into this directory on faults and sentinel anomalies")
	flag.Parse()
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tf.Close()
		p.Trace = tf
	}
	if *metricsAddr != "" || *flightDir != "" {
		opts := telemetry.Options{JSONL: p.Trace, Sentinel: &telemetry.SentinelConfig{}}
		p.Trace = nil // the recorder owns the JSONL sink now
		if *metricsAddr != "" {
			opts.Metrics = metrics.NewRegistry()
		}
		opts.Flight = telemetry.NewFlightRecorder(0, *flightDir)
		p.Rec = telemetry.New(opts)
		if *metricsAddr != "" {
			d, err := telemetry.StartDebug(*metricsAddr, p.Rec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "debug server (dashboard, /metrics, /status, pprof) on http://%s/\n", d.Addr())
		}
	}
	pSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "p" {
			pSet = true
		}
	})

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: afmm-bench [flags] fig3|fig4|fig6|table1|fig7|fig8|fig9|table2|fig10|all|sweeps|cluster|lists|telemetry|overlap|faults|kernels|taskgraph|dmem|netfaults")
		os.Exit(2)
	}
	which := strings.ToLower(flag.Arg(0))
	run := func(name string, f func(experiments.Params, bool)) {
		if which == name || which == "all" {
			fmt.Printf("==== %s ====\n", strings.ToUpper(name))
			f(p, *csv)
			fmt.Println()
		}
	}
	known := map[string]bool{"fig3": true, "fig4": true, "fig6": true,
		"table1": true, "fig7": true, "fig8": true, "fig9": true,
		"table2": true, "fig10": true, "cluster": true, "sweeps": true,
		"lists": true, "telemetry": true, "overlap": true, "faults": true,
		"kernels": true, "taskgraph": true, "dmem": true, "netfaults": true,
		"all": true}
	if !known[which] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		os.Exit(2)
	}

	run("fig3", runFig3)
	run("fig4", runFig4)
	run("fig6", runFig6)
	run("table1", runTable1)
	run("fig7", runFig7)
	// fig8/fig9/table2 share one simulation set.
	if which == "fig8" || which == "fig9" || which == "table2" || which == "all" {
		runs := experiments.Fig8(p)
		if which == "fig8" || which == "all" {
			fmt.Println("==== FIG8 (per-step total time, three strategies) ====")
			printFig8(runs, *csv)
			fmt.Println()
		}
		if which == "fig9" || which == "all" {
			fmt.Println("==== FIG9 (S value per step, three strategies) ====")
			printFig9(runs, *csv)
			fmt.Println()
		}
		if which == "table2" || which == "all" {
			fmt.Println("==== TABLE II (strategy summary) ====")
			printTable2(runs)
			fmt.Println()
		}
	}
	run("fig10", runFig10)
	if which == "cluster" { // extension experiment; not part of "all"
		fmt.Println("==== CLUSTER (distributed-memory extension, strong scaling) ====")
		runCluster(p)
	}
	if which == "sweeps" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== SWEEPS (host far-field sweeps, level-sync vs recursive) ====")
		runSweeps(p, pSet)
	}
	if which == "lists" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== LISTS (persistent interaction lists, cached vs from-scratch) ====")
		runLists(p)
	}
	if which == "telemetry" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== TELEMETRY (step-trace recorder overhead and coverage) ====")
		runTelemetry(p)
	}
	if which == "overlap" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== OVERLAP (concurrent near/far schedule vs sequential) ====")
		runOverlap(p)
	}
	if which == "faults" { // resilience benchmark; not part of "all"
		fmt.Println("==== FAULTS (device fault injection: detection, recovery, degradation) ====")
		runFaults(p)
	}
	if which == "kernels" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== KERNELS (M2L class table, blocked P2P, float32 near field) ====")
		runKernels(p, pSet)
	}
	if which == "taskgraph" { // host wall-clock benchmark; not part of "all"
		fmt.Println("==== TASKGRAPH (dependency-driven step DAG vs fork-join level-sync) ====")
		runTaskGraph(p)
	}
	if which == "dmem" { // distributed-runtime benchmark; not part of "all"
		fmt.Println("==== DMEM (virtual-node scaling, cost-driven repartitioning, executed runtime) ====")
		runDmem(p)
	}
	if which == "netfaults" { // resilience benchmark; not part of "all"
		fmt.Println("==== NETFAULTS (lossy links: delivery rate, retry overhead, failure detection) ====")
		runNetFaults(p)
	}
}

// runNetFaults drives the executed runtime through escalating link-fault
// schedules and both failure detectors, and writes the machine-readable
// BENCH_netfaults.json. The acceptance targets are bit-identity on every
// scenario (faults cost throughput, never values) and a measured
// heartbeat detection latency at the same order as its suspicion window.
func runNetFaults(p experiments.Params) {
	res := experiments.NetFaults(p)
	fmt.Printf("cluster: Plummer N=%d, P=%d, %d nodes, %d steps (host cores: %d)\n",
		res.N, res.P, res.Nodes, res.Steps, res.HostCores)
	fmt.Printf("%-16s %9s %9s %9s %9s %9s %10s %8s %5s\n",
		"scenario", "frames", "dropped", "delivrate", "retries", "timeouts", "recoveries", "slowdown", "exact")
	for _, sc := range res.Scenarios {
		fmt.Printf("%-16s %9d %9d %9.3f %9d %9d %10d %7.2fx %5v\n",
			sc.Name, sc.FramesSent, sc.FramesDropped, sc.DeliveredRate,
			sc.Retries, sc.Timeouts, sc.Recoveries, sc.Slowdown, sc.BitIdentical)
	}
	fmt.Printf("detection: oracle (modeled) %.3f ms, heartbeat (measured) %.3f ms over a %.3f ms suspicion window, exact=%v\n",
		1e3*res.Detection.OracleSec, 1e3*res.Detection.HeartbeatSec,
		1e3*res.Detection.WindowSec, res.Detection.BitIdentical)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_netfaults.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_netfaults.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_netfaults.json")
}

// runTaskGraph benchmarks the dependency-driven step DAG against the
// fork-join level-synchronous schedule at forced 2/4-worker pools and
// writes the machine-readable BENCH_taskgraph.json. The acceptance target
// is DAG makespan <= level-sync makespan on a >= 2-worker pool, with the
// critical-path/makespan gap reported (the ROADMAP success metric: the
// BENCH_overlap.json critical-path projection becomes a measured number).
func runTaskGraph(p experiments.Params) {
	res := experiments.TaskGraph(p)
	fmt.Printf("trajectory: Plummer N=%d, S=%d, P=%d, %d GPUs, %d steps each variant (host cores: %d)\n",
		res.N, res.S, res.P, res.GPUs, res.Steps, res.HostCores)
	for _, pr := range res.Pools {
		fmt.Printf("---- %d-worker pool ----\n", pr.PoolWorkers)
		fmt.Printf("%-34s %12.3f ms/solve\n", "solve wall (level-sync)", float64(pr.StepNsLevelSync)/1e6)
		fmt.Printf("%-34s %12.3f ms/solve\n", "solve wall (task graph)", float64(pr.StepNsTaskGraph)/1e6)
		fmt.Printf("%-34s %+12.1f%%\n", "measured step reduction", 100*pr.MeasuredReduction)
		fmt.Printf("%-34s %12.3f ms\n", "region makespan (level-sync)", float64(pr.MakespanNsLevelSync)/1e6)
		fmt.Printf("%-34s %12.3f ms (+%.3f ms graph overhead)\n", "region makespan (task graph)",
			float64(pr.MakespanNsTaskGraph)/1e6, float64(pr.GraphOverheadNs)/1e6)
		fmt.Printf("%-34s %+12.1f%% (target >= 0%%)\n", "makespan reduction", 100*pr.MakespanReduction)
		fmt.Printf("%-34s %12.3f ms = %.1f%% of makespan (1.0 = dependency-limited)\n",
			"critical path", float64(pr.CriticalPathNs)/1e6, 100*pr.CriticalPathFrac)
		fmt.Printf("graph: %d nodes, %d edges, max ready-queue depth %d\n",
			pr.Nodes, pr.Edges, pr.MaxReady)
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_taskgraph.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_taskgraph.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_taskgraph.json")
}

// runKernels benchmarks the raw translation and P2P kernels on the host
// (single core) and writes the machine-readable BENCH_kernels.json. The
// acceptance targets are >= 1.3x M2L throughput over the per-direction
// cache and a measurable blocked-P2P win over the scalar kernel.
func runKernels(p experiments.Params, pSet bool) {
	if !pSet {
		// Like the sweeps benchmark: the kernels under test are the
		// accuracy-grade rotation path, so default to order 8 rather than
		// the cost-model default.
		p.P = 8
	}
	res := experiments.Kernels(p)
	fmt.Printf("workload: Plummer N=%d, S=%d, P=%d — %d M2L pairs, %d classes, %d rotation setups (%.1f%% pair coverage), table build %.1f ms\n",
		res.N, res.S, res.P, res.M2LPairs, res.M2LClasses, res.M2LRotations,
		100*res.M2LRotCoverage, float64(res.TableBuildNs)/1e6)
	fmt.Printf("%-34s %12.1f ns/translation\n", "M2L class table", res.M2LNsTable)
	fmt.Printf("%-34s %12.1f ns/translation\n", "M2L per-direction cache", res.M2LNsCache)
	fmt.Printf("%-34s %12.1f ns/translation\n", "M2L uncached (per-pair rotation)", res.M2LNsDirect)
	fmt.Printf("%-34s %12.2fx vs cache (target >= 1.3x), %.2fx vs uncached\n",
		"M2L table speedup", res.M2LSpeedupVsCache, res.M2LSpeedupVsDirect)
	fmt.Printf("P2P call shape: %d targets x %d sources\n", res.P2PTargets, res.P2PSources)
	fmt.Printf("%-34s %12.1f Mpairs/s (blocked) %10.1f (scalar) %10.1f (f32): %.2fx blocked, %.2fx f32\n",
		"gravity", res.GravPairRateBlocked/1e6, res.GravPairRateScalar/1e6,
		res.GravPairRateF32/1e6, res.GravBlockedSpeedup, res.GravF32Speedup)
	fmt.Printf("%-34s %12.1f Mpairs/s (blocked) %10.1f (scalar) %10.1f (f32): %.2fx blocked, %.2fx f32\n",
		"stokeslet", res.StokesPairRateBlocked/1e6, res.StokesPairRateScalar/1e6,
		res.StokesPairRateF32/1e6, res.StokesBlockedSpeedup, res.StokesF32Speedup)
	fmt.Printf("%-34s %12.3f ms/step (table) vs %.3f ms/step (no table): %.3fx over %d steps\n",
		"end-to-end step, 1 worker", float64(res.StepNsTable)/1e6,
		float64(res.StepNsNoTable)/1e6, res.EndToEndSpeedup, res.EndToEndSteps)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_kernels.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_kernels.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_kernels.json")
}

// runFaults drives every fault class through a paired fault-free/faulted
// simulation and writes the machine-readable BENCH_faults.json: per-class
// detection latency, recovery overhead and degraded throughput, the
// checkpoint-restore path, and the balancer's reaction to a device loss.
func runFaults(p experiments.Params) {
	res := experiments.Faults(p)
	fmt.Printf("trajectory: Plummer N=%d, S=%d, P=%d, %d GPUs, %d steps, fault at step %d\n",
		res.N, res.S, res.P, res.GPUs, res.Steps, res.FaultStep)
	fmt.Printf("%-10s %5s %9s %11s %11s %10s %6s %8s %8s\n",
		"class", "ident", "detect", "recov-over", "throughput", "fallback", "dead", "retries", "recov")
	for _, c := range res.Cases {
		ident := "yes"
		if !c.BitIdentical {
			ident = "NO"
		}
		fmt.Printf("%-10s %5s %7.1fms %9.1fms %11.3f %7drow %6d %8d %8d\n",
			c.Name, ident, float64(c.DetectNs)/1e6, float64(c.RecoveryOverheadNs)/1e6,
			c.DegradedThroughput, c.FallbackRows, c.DeadDevices,
			c.TransientRetries, c.Recoveries)
	}
	fmt.Printf("restore path (%s): %d recoveries, %d checkpoints, bit-identical=%v, overhead %.1fms\n",
		res.Recovery.Spec, res.Recovery.Recoveries, res.Recovery.Checkpoints,
		res.Recovery.BitIdentical, float64(res.Recovery.OverheadNs)/1e6)
	fmt.Printf("balancer (full strategy): S %d -> %d, capacity drop %.0f%%, search re-entered=%v, alive devices %d\n",
		res.Balancer.SPreFault, res.Balancer.SFinal, 100*res.Balancer.CapacityDropFrac,
		res.Balancer.SearchReentered, res.Balancer.AliveDevices)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_faults.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_faults.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_faults.json")
}

// runOverlap benchmarks the concurrent-phase scheduler against sequential
// near-then-far solves (host wall clock) and writes the machine-readable
// BENCH_overlap.json. The acceptance target is a >= 15% step-wall
// reduction at N=100k with >= 1 simulated GPU — a target the measured
// number can only reach on hosts with enough cores to actually run the
// two phases side by side (see OverlapBenchResult).
func runOverlap(p experiments.Params) {
	res := experiments.Overlap(p)
	fmt.Printf("trajectory: Plummer N=%d, S=%d, P=%d, %d GPUs, %d steps each variant (host cores: %d, pool workers: %d)\n",
		res.N, res.S, res.P, res.GPUs, res.Steps, res.HostCores, res.PoolWorkers)
	fmt.Printf("%-34s %12.3f ms/solve\n", "solve wall (sequential)", float64(res.StepNsSequential)/1e6)
	fmt.Printf("%-34s %12.3f ms/solve\n", "solve wall (overlapped)", float64(res.StepNsOverlapped)/1e6)
	fmt.Printf("%-34s %+12.1f%% (target >= 15%%)\n", "measured reduction", 100*res.MeasuredReduction)
	fmt.Printf("%-34s %12.3f ms/solve\n", "scheduler-accounted saving", float64(res.OverlapSavingNs)/1e6)
	fmt.Printf("phases (sequential): near %.3f ms, far %.3f ms of %.3f ms wall\n",
		float64(res.NearNs)/1e6, float64(res.FarNs)/1e6, float64(res.WallNs)/1e6)
	fmt.Printf("%-34s %12.3f ms/solve (-%.1f%%, critical-path model)\n",
		"projected wall, unconstrained host", float64(res.ProjectedStepNs)/1e6, 100*res.ProjectedReduction)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_overlap.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_overlap.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_overlap.json")
}

// runTelemetry benchmarks the enabled step tracer against untraced solver
// steps (host wall clock) and writes the machine-readable
// BENCH_telemetry.json. The acceptance target is overhead < 2%.
func runTelemetry(p experiments.Params) {
	res := experiments.Telemetry(p)
	fmt.Printf("trajectory: Plummer N=%d, S=%d, %d steps each variant\n", res.N, res.S, res.Steps)
	fmt.Printf("%-34s %12.3f ms/step\n", "solver step (tracing off)", float64(res.StepNsOff)/1e6)
	fmt.Printf("%-34s %12.3f ms/step\n", "solver step (tracing on)", float64(res.StepNsOn)/1e6)
	fmt.Printf("%-34s %12.3f ms/step\n", "solver step (metrics+flight)", float64(res.StepNsMetrics)/1e6)
	fmt.Printf("%-34s %+12.3f%% (target < 2%%)\n", "tracing overhead", 100*res.OverheadFrac)
	fmt.Printf("%-34s %+12.3f%% (target < 2%%)\n", "metrics+flight overhead", 100*res.MetricsOverheadFrac)
	fmt.Printf("%-34s %12.1f ns/sample\n", "histogram observe", res.HistObserveNs)
	fmt.Printf("%-34s %12.1f%% of step wall clock\n", "phase-span coverage", 100*res.PhaseCoverage)
	fmt.Printf("%-34s %12.1f spans, %d JSONL bytes\n", "per step", res.SpansPerStep, res.BytesPerStep)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_telemetry.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_telemetry.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_telemetry.json")
}

// runLists benchmarks interaction-list maintenance and end-to-end solver
// steps on the host (wall clock, not the virtual machine) and writes the
// machine-readable BENCH_lists.json.
func runLists(p experiments.Params) {
	res := experiments.Lists(p)
	fmt.Printf("trajectory: Plummer N=%d, S=%d, %d steps\n", res.N, res.S, res.Steps)
	fmt.Printf("%-34s %12.3f ms/step\n", "list maintenance (cached)",
		float64(res.EnsureNsPerStep)/1e6)
	fmt.Printf("%-34s %12.3f ms/step\n", "list build (from scratch)",
		float64(res.ScratchNsPerStep)/1e6)
	fmt.Printf("%-34s %12.4f (target <= 0.10)\n", "maintenance ratio", res.MaintenanceRatio)
	fmt.Printf("cache activity: %d full builds, %d repairs, %d skips; "+
		"pair visits %d vs %d from scratch\n",
		res.FullBuilds, res.Repairs, res.Skips, res.CachedPairs, res.ScratchPairs)
	fmt.Printf("%-34s %12.3f ms/step\n", "solver step (cached lists)",
		float64(res.StepNsCached)/1e6)
	fmt.Printf("%-34s %12.3f ms/step\n", "solver step (from-scratch lists)",
		float64(res.StepNsScratch)/1e6)
	fmt.Printf("end-to-end speedup: %.3fx over %d steps "+
		"(list build is %.1f%% of a from-scratch step)\n",
		res.EndToEndSpeedup, res.EndToEndSteps, 100*res.ListShareScratch)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_lists.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_lists.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_lists.json")
}

// runSweeps benchmarks the actual host numerics (wall clock, not the
// virtual machine) and writes the machine-readable BENCH_sweeps.json.
func runSweeps(p experiments.Params, pSet bool) {
	if !pSet {
		// The -p default (4) targets the virtual cost model; the host sweep
		// benchmark defaults to the accuracy-grade order the rotation-
		// accelerated M2L is built for.
		p.P = 8
	}
	var sizes []int
	if p.N > 0 {
		sizes = []int{p.N}
	}
	res := experiments.Sweeps(p, sizes)
	fmt.Printf("%8s %-10s %12s %12s %12s %12s\n",
		"N", "mode", "up[ms]", "down[ms]", "far[ms]", "near[ms]")
	for _, r := range res.Rows {
		fmt.Printf("%8d %-10s %12.2f %12.2f %12.2f %12.2f\n",
			r.N, r.Mode, float64(r.UpNs)/1e6, float64(r.DownNs)/1e6,
			float64(r.UpNs+r.DownNs)/1e6, float64(r.NearNs)/1e6)
	}
	fmt.Printf("far-field speedup (level-sync vs recursive) at N=%d: %.2fx\n",
		res.Rows[len(res.Rows)-1].N, res.FarFieldSpeedup)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_sweeps.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_sweeps.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_sweeps.json")
}

func runCluster(p experiments.Params) {
	pts := experiments.Cluster(p, 16)
	fmt.Printf("%6s %12s %12s %12s %12s %10s"+"\n",
		"nodes", "step[s]", "compute[s]", "comm[s]", "KiB", "imbalance")
	for _, pt := range pts {
		fmt.Printf("%6d %12.6f %12.6f %12.6f %12.1f %10.2f"+"\n",
			pt.Nodes, pt.StepTime, pt.MaxCompute, pt.CommTime,
			float64(pt.Bytes)/1024, pt.Imbalance)
	}
}

func runFig3(p experiments.Params, csv bool) {
	pts := experiments.Fig3(p)
	fmt.Println("Adaptive decomposition: CPU/GPU virtual cost vs S (gradual)")
	printSweep(pts, csv)
}

func runFig4(p experiments.Params, csv bool) {
	pts := experiments.Fig4(p)
	fmt.Println("Uniform decomposition: cost vs S (discrete regimes = Uniform Gap)")
	printSweep(pts, csv)
	r := experiments.AnalyzeUniformGap(pts)
	fmt.Printf("regimes (tree depths): %v\n", r.Depths)
	fmt.Printf("largest relative jump at a regime boundary: %.0f%%\n", 100*r.MaxJump)
	fmt.Printf("largest relative step within a regime:      %.0f%%\n", 100*r.MaxSmooth)
}

func printSweep(pts []experiments.SweepPoint, csv bool) {
	if csv {
		fmt.Println("S,cpu,gpu,compute,gpueff,leaves,depth")
		for _, pt := range pts {
			fmt.Printf("%d,%.6g,%.6g,%.6g,%.4f,%d,%d\n",
				pt.S, pt.CPU, pt.GPU, pt.Compute, pt.GPUEff, pt.Leaves, pt.Depth)
		}
		return
	}
	fmt.Printf("%6s %12s %12s %12s %8s %8s %6s\n",
		"S", "CPU[s]", "GPU[s]", "compute[s]", "GPUeff", "leaves", "depth")
	for _, pt := range pts {
		fmt.Printf("%6d %12.6f %12.6f %12.6f %8.3f %8d %6d\n",
			pt.S, pt.CPU, pt.GPU, pt.Compute, pt.GPUEff, pt.Leaves, pt.Depth)
	}
}

func runFig6(p experiments.Params, csv bool) {
	pts := experiments.Fig6(p)
	fmt.Println("CPU speedup vs cores (Plummer, fixed S, task-schedule replay)")
	if csv {
		fmt.Println("cores,time,speedup,eff")
	} else {
		fmt.Printf("%6s %12s %10s %8s\n", "cores", "time[s]", "speedup", "taskeff")
	}
	for _, pt := range pts {
		if csv {
			fmt.Printf("%d,%.6g,%.3f,%.3f\n", pt.Cores, pt.Time, pt.Speedup, pt.TaskEff)
		} else {
			fmt.Printf("%6d %12.6f %10.2f %8.3f\n", pt.Cores, pt.Time, pt.Speedup, pt.TaskEff)
		}
	}
}

func runTable1(p experiments.Params, csv bool) {
	pts := experiments.Table1(p)
	fmt.Println("GPU scaling for a fixed workload (S fixed at the 10C+1G optimum)")
	fmt.Printf("%6s %14s %10s %12s\n", "GPUs", "GPU time[s]", "speedup", "imbalance")
	for _, pt := range pts {
		fmt.Printf("%6d %14.6f %10.2f %12.3f\n", pt.GPUs, pt.GPUTime, pt.Speedup, pt.Imbalance)
	}
}

func runFig7(p experiments.Params, csv bool) {
	serial, curves := experiments.Fig7(p)
	fmt.Printf("Heterogeneous speedup vs S (baseline: %s, best %.4fs at S=%d)\n",
		serial.Label, serial.BestTime, serial.BestS)
	fmt.Printf("%-8s %8s %10s %12s\n", "config", "bestS", "best[s]", "speedup")
	for _, c := range curves {
		fmt.Printf("%-8s %8d %10.5f %12.1fx\n", c.Label, c.BestS, c.BestTime, c.BestSpeedup)
	}
	if csv {
		fmt.Println("config,S,cpu,gpu,compute,speedup")
		for _, c := range curves {
			for _, pt := range c.Points {
				fmt.Printf("%s,%d,%.6g,%.6g,%.6g,%.3f\n",
					c.Label, pt.S, pt.CPU, pt.GPU, pt.Compute, serial.BestTime/pt.Compute)
			}
		}
	}
}

func printFig8(runs []experiments.StrategyRun, csv bool) {
	if csv {
		fmt.Println("step,strategy,total,compute,lb")
		for _, r := range runs {
			for _, rec := range r.Result.Records {
				fmt.Printf("%d,%s,%.6g,%.6g,%.6g\n", rec.Step, r.Name, rec.Total, rec.Compute, rec.LBTime)
			}
		}
		return
	}
	// Compact text rendering: per-strategy mean over windows of steps.
	const cols = 10
	n := len(runs[0].Result.Records)
	w := (n + cols - 1) / cols
	fmt.Printf("%-18s", "steps:")
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		fmt.Printf(" %9s", fmt.Sprintf("%d-%d", lo, hi-1))
	}
	fmt.Println()
	for _, r := range runs {
		fmt.Printf("%-18s", r.Name)
		for lo := 0; lo < n; lo += w {
			hi := lo + w
			if hi > n {
				hi = n
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += r.Result.Records[i].Total
			}
			fmt.Printf(" %9.5f", sum/float64(hi-lo))
		}
		fmt.Println()
	}
}

func printFig9(runs []experiments.StrategyRun, csv bool) {
	if csv {
		fmt.Println("step,strategy,S")
		for _, r := range runs {
			for _, rec := range r.Result.Records {
				fmt.Printf("%d,%s,%d\n", rec.Step, r.Name, rec.S)
			}
		}
		return
	}
	const cols = 10
	n := len(runs[0].Result.Records)
	w := (n + cols - 1) / cols
	fmt.Printf("%-18s", "steps:")
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		fmt.Printf(" %7s", fmt.Sprintf("%d-%d", lo, hi-1))
	}
	fmt.Println()
	for _, r := range runs {
		fmt.Printf("%-18s", r.Name)
		for lo := 0; lo < n; lo += w {
			hi := lo + w
			if hi > n {
				hi = n
			}
			var sum int
			for i := lo; i < hi; i++ {
				sum += r.Result.Records[i].S
			}
			fmt.Printf(" %7d", sum/(hi-lo))
		}
		fmt.Println()
	}
}

func printTable2(runs []experiments.StrategyRun) {
	rows := experiments.Table2(runs)
	fmt.Printf("%-18s %14s %12s %10s %10s\n",
		"strategy", "total compute", "total LB", "LB%", "rel/step")
	for _, r := range rows {
		fmt.Printf("%-18s %14.4f %12.4f %9.2f%% %10.2f\n",
			r.Strategy, r.TotalCompute, r.TotalLB, r.LBPercent, r.RelCostPerStep)
	}
	// The paper's spike statistic: how many of strategy 3's steps exceed
	// strategy 2's per-step average (paper: 34 of 2000).
	var s2avg float64
	var s3 experiments.StrategyRun
	for _, r := range runs {
		switch r.Name {
		case "strategy2-enforce":
			s2avg = r.Result.MeanTotalPerStep()
		case "strategy3-full":
			s3 = r
		}
	}
	if s2avg > 0 && len(s3.Result.Records) > 0 {
		fmt.Printf("strategy-3 steps above strategy-2 average: %d of %d\n",
			experiments.SpikeCount(s3.Result, s2avg), len(s3.Result.Records))
	}
}

func runFig10(p experiments.Params, csv bool) {
	pts, mean := experiments.Fig10(p)
	fmt.Println("Stokes problem, uniform sources: total(no FGO)/total(FGO) per step")
	if csv {
		fmt.Println("step,ratio")
		for _, pt := range pts {
			fmt.Printf("%d,%.4f\n", pt.Step, pt.Ratio)
		}
	} else {
		const cols = 10
		n := len(pts)
		w := (n + cols - 1) / cols
		for lo := 0; lo < n; lo += w {
			hi := lo + w
			if hi > n {
				hi = n
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += pts[i].Ratio
			}
			fmt.Printf("steps %4d-%4d: mean ratio %.4f\n", lo, hi-1, sum/float64(hi-lo))
		}
	}
	fmt.Printf("mean advantage after step 15: %.2f%% (paper: ~3%%)\n", 100*(mean-1))
}

// runDmem benchmarks the distributed-memory layer: strong/weak scaling
// of the priced decomposition over 1-64 virtual nodes, cost-driven
// repartitioning vs static equal-count ranges on a skewed distribution,
// and a bit-identity acceptance run of the executing goroutine-node
// runtime under an injected node loss. Writes BENCH_dmem.json.
func runDmem(p experiments.Params) {
	res := experiments.Dmem(p)
	fmt.Printf("Plummer N=%d, P=%d, weak scaling at %d bodies/node (host cores: %d)\n",
		res.N, res.P, res.NPerNode, res.HostCores)
	scale := func(title string, pts []experiments.DmemScalePoint) {
		fmt.Printf("---- %s ----\n", title)
		fmt.Printf("%6s %9s %12s %9s %10s %12s %8s\n",
			"nodes", "N", "step (s)", "speedup", "imbalance", "comm bytes", "hidden")
		for _, pt := range pts {
			fmt.Printf("%6d %9d %12.4e %9.2f %10.3f %12d %7.1f%%\n",
				pt.Nodes, pt.NTotal, pt.StepTime, pt.Speedup,
				pt.Imbalance, pt.CommBytes, 100*pt.HiddenFrac)
		}
	}
	scale("strong scaling (fixed total N)", res.Strong)
	scale("weak scaling (fixed N per node)", res.Weak)
	sk := res.Skew
	fmt.Printf("---- skewed two-cluster run (N=%d, %d nodes, %d steps) ----\n",
		sk.N, sk.Nodes, sk.Steps)
	fmt.Printf("%-34s %12.4e s (final imbalance %.3f)\n", "static equal-count ranges", sk.StaticTime, sk.StaticImbalance)
	fmt.Printf("%-34s %12.4e s (final imbalance %.3f, %d repartitions)\n",
		"cost-driven repartitioning", sk.CostTime, sk.CostImbalance, sk.Repartitions)
	fmt.Printf("%-34s %12.2fx (target > 1)\n", "static/cost margin", sk.Margin)
	ex := res.Exec
	status := "FAIL"
	if ex.BitIdentical {
		status = "ok"
	}
	fmt.Printf("executed runtime: N=%d over %d nodes, %d steps, %d node loss(es): "+
		"%d bytes, %d msgs on the wire; bit-identical to single-node: %s\n",
		ex.N, ex.Nodes, ex.Steps, ex.NodeLosses, ex.TotalBytes, ex.TotalMsgs, status)
	b, err := json.MarshalIndent(res, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_dmem.json", b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "BENCH_dmem.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_dmem.json")
}
