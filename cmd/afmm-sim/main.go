// Command afmm-sim runs a configurable time-dependent AFMM simulation on
// the simulated heterogeneous machine and emits per-step records as CSV —
// the general-purpose driver behind the paper's §IX experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"afmm"
)

func main() {
	n := flag.Int("n", 5000, "number of bodies")
	dist := flag.String("dist", "plummer-compressed",
		"distribution: plummer | plummer-compressed | uniform | shell | twocluster | disk")
	seed := flag.Int64("seed", 42, "random seed")
	p := flag.Int("p", 4, "expansion order")
	s := flag.Int("s", 64, "initial leaf capacity S")
	cores := flag.Int("cores", 10, "virtual CPU cores")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	gpuscale := flag.Float64("gpuscale", 1.0/64, "device throughput derating")
	steps := flag.Int("steps", 200, "time steps")
	dt := flag.Float64("dt", 1e-4, "time step size")
	soft := flag.Float64("soften", 0.01, "gravitational softening")
	strategy := flag.Int("strategy", 3, "balancing strategy 1..3")
	out := flag.String("o", "", "CSV output file (default stdout)")
	traceFile := flag.String("trace", "", "write per-step JSONL trace to this file")
	chromeFile := flag.String("chrome-trace", "", "write a Chrome trace_event JSON timeline (open in Perfetto) to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar + net/http/pprof on this address (e.g. localhost:6060)")
	noOverlap := flag.Bool("no-overlap", false, "run near and far phases sequentially instead of overlapped (results are bit-identical either way)")
	flag.Parse()

	var sys *afmm.System
	switch *dist {
	case "plummer":
		sys = afmm.Plummer(*n, 1, 1, *seed)
	case "plummer-compressed":
		sys = afmm.Plummer(*n, 1, 1, *seed)
		for i := range sys.Pos {
			sys.Pos[i] = sys.Pos[i].Scale(0.25)
		}
	case "uniform":
		sys = afmm.UniformCube(*n, 1, *seed)
	case "shell":
		sys = afmm.UniformShell(*n, 1, *seed)
	case "twocluster":
		sys = afmm.TwoClusters(*n, 1, 1, 6, 0.5, *seed)
	case "disk":
		sys = afmm.SpiralDisk(*n, 1, 1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	cfg := afmm.GravityConfig{
		P:       *p,
		S:       *s,
		NumGPUs: *gpus,
		Kernel:  afmm.GravityKernel{G: 1, Softening: *soft},
	}
	if *noOverlap {
		cfg.Overlap = afmm.OverlapOff
	}
	cfg.CPU = afmm.DefaultCPU()
	cfg.CPU.Cores = *cores
	cfg.GPUSpec = afmm.DefaultGPU()
	cfg.GPUSpec.InteractionsPerSecPerSM *= *gpuscale
	if *gpuscale < 1 {
		cfg.GPUSpec.BlockSize = 64
	}
	solver := afmm.NewGravitySolver(sys, cfg)

	var strat afmm.Strategy
	switch *strategy {
	case 1:
		strat = afmm.StrategyStatic
	case 2:
		strat = afmm.StrategyEnforce
	default:
		strat = afmm.StrategyFull
	}

	simCfg := afmm.SimConfig{
		Dt:      *dt,
		Steps:   *steps,
		Balance: afmm.BalanceConfig{Strategy: strat},
	}
	var rec *afmm.Recorder
	if *traceFile != "" || *chromeFile != "" || *debugAddr != "" {
		var opts afmm.RecorderOptions
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer tf.Close()
			opts.JSONL = tf
		}
		opts.Keep = *chromeFile != ""
		rec = afmm.NewRecorder(opts)
		simCfg.Rec = rec
	}
	if *debugAddr != "" {
		addr, _, err := afmm.ServeTelemetryDebug(*debugAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server (expvar, pprof) on http://%s/debug/\n", addr)
	}
	res := afmm.RunGravity(solver, simCfg)
	if err := rec.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "trace sink: %v\n", err)
		os.Exit(1)
	}
	if *chromeFile != "" {
		cf, err := os.Create(*chromeFile)
		if err == nil {
			err = rec.WriteChrome(cf)
			if cerr := cf.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := res.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"total compute %.4fs, LB %.4fs (%.2f%%), refill %.4fs, mean/step %.6fs\n",
		res.TotalCompute, res.TotalLB, res.LBPercent(), res.TotalRefill,
		res.MeanTotalPerStep())
}
