// Command afmm-sim runs a configurable time-dependent AFMM simulation on
// the simulated heterogeneous machine and emits per-step records as CSV —
// the general-purpose driver behind the paper's §IX experiments.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"afmm"
)

func main() {
	n := flag.Int("n", 5000, "number of bodies")
	dist := flag.String("dist", "plummer-compressed",
		"distribution: plummer | plummer-compressed | uniform | shell | twocluster | disk")
	seed := flag.Int64("seed", 42, "random seed")
	p := flag.Int("p", 4, "expansion order")
	s := flag.Int("s", 64, "initial leaf capacity S")
	cores := flag.Int("cores", 10, "virtual CPU cores")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	gpuscale := flag.Float64("gpuscale", 1.0/64, "device throughput derating")
	steps := flag.Int("steps", 200, "time steps")
	dt := flag.Float64("dt", 1e-4, "time step size")
	soft := flag.Float64("soften", 0.01, "gravitational softening")
	strategy := flag.Int("strategy", 3, "balancing strategy 1..3")
	out := flag.String("o", "", "CSV output file (default stdout)")
	traceFile := flag.String("trace", "", "write per-step JSONL trace to this file")
	chromeFile := flag.String("chrome-trace", "", "write a Chrome trace_event JSON timeline (open in Perfetto) to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar + net/http/pprof on this address (e.g. localhost:6060)")
	metricsAddr := flag.String("metrics-addr", "", "serve the live dashboard, Prometheus /metrics, /status and /flightrec on this address (implies a metrics registry; alias for -debug-addr with metrics enabled)")
	flightDir := flag.String("flightrec", "", "keep a flight-recorder ring of the last 32 steps and dump it into this directory on faults, failed steps, and sentinel anomalies (use '.' for the working directory)")
	sentinel := flag.Bool("sentinel", true, "arm the step-time regression sentinel (emits anomaly events; with -flightrec, alarms also dump)")
	noOverlap := flag.Bool("no-overlap", false, "run near and far phases sequentially instead of overlapped (results are bit-identical either way)")
	noTaskGraph := flag.Bool("no-taskgraph", false, "run the far field through the fork-join phase barriers instead of the dependency-driven task graph (results are bit-identical either way)")
	faults := flag.String("faults", "", "fault-injection schedule, e.g. gpu1:failstop@step12,gpu0:straggle2.5@step20")
	pinS := flag.Bool("pin-s", false, "hold S fixed at its initial value (no balancer-driven rebuilds) so paired runs can be compared for bit-identity")
	validate := flag.Bool("validate", false, "check accumulators for NaN/Inf after every solve (fails the step, triggering checkpoint recovery)")
	ckEvery := flag.Int("checkpoint-every", 0, "auto-checkpoint after every N completed steps (0 = keep only the initial state for recovery)")
	ckDir := flag.String("checkpoint-dir", "", "persist the rolling auto-checkpoint atomically in this directory")
	resume := flag.String("resume", "", "resume from this checkpoint file (overrides -dist/-n/-s with the snapshot's bodies and leaf capacity)")
	finalHash := flag.Bool("final-hash", false, "print an FNV-64a hash of the final accelerations and potentials (input order) for bit-identity checks")
	dmemNodes := flag.Int("dmem-nodes", 0, "execute on the distributed goroutine-per-node runtime over this many virtual nodes (0 = single-node machine path)")
	clusterFaults := flag.String("cluster-faults", "", "cluster fault schedule mixing node and link events, e.g. node2:failstop@step3,link0-1:drop0.1@step2 (requires -dmem-nodes)")
	linkSeed := flag.Int64("link-seed", 1, "seed for the deterministic per-frame link-fault verdicts")
	flag.Parse()

	var resumeSnap *afmm.Snapshot
	if *resume != "" {
		sn, err := afmm.ReadSnapshotFile(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		resumeSnap = &sn
		*s = sn.S
	}

	var sys *afmm.System
	if resumeSnap != nil {
		restored, err := resumeSnap.Restore()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys = restored
	} else {
		sys = makeSystem(*dist, *n, *seed)
	}

	var rec *afmm.Recorder
	if *traceFile != "" || *chromeFile != "" || *debugAddr != "" || *metricsAddr != "" || *flightDir != "" {
		var opts afmm.RecorderOptions
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer tf.Close()
			opts.JSONL = tf
		}
		opts.Keep = *chromeFile != ""
		if *metricsAddr != "" {
			opts.Metrics = afmm.NewMetricsRegistry()
		}
		if *flightDir != "" || *metricsAddr != "" {
			// A metrics server without -flightrec still gets the in-memory
			// ring, so /flightrec answers; dumps need a directory.
			opts.Flight = afmm.NewFlightRecorder(0, *flightDir)
		}
		if *sentinel {
			opts.Sentinel = &afmm.SentinelConfig{}
		}
		rec = afmm.NewRecorder(opts)
	}
	for _, addr := range []string{*debugAddr, *metricsAddr} {
		if addr == "" {
			continue
		}
		d, err := afmm.StartTelemetryDebug(addr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server (dashboard, /metrics, /status, pprof) on http://%s/\n", d.Addr())
	}

	if *dmemNodes > 0 {
		runClusterSim(clusterSimArgs{
			sys: sys, resume: resumeSnap, rec: rec,
			nodes: *dmemNodes, p: *p, s: *s, cores: *cores,
			steps: *steps, dt: *dt, soften: *soft,
			faults: *clusterFaults, linkSeed: *linkSeed,
			ckEvery: *ckEvery, ckDir: *ckDir, finalHash: *finalHash,
		})
		return
	}
	if *clusterFaults != "" {
		fmt.Fprintln(os.Stderr, "-cluster-faults requires -dmem-nodes")
		os.Exit(2)
	}

	cfg := afmm.GravityConfig{
		P:        *p,
		S:        *s,
		NumGPUs:  *gpus,
		Kernel:   afmm.GravityKernel{G: 1, Softening: *soft},
		Validate: *validate,
	}
	if *noOverlap {
		cfg.Overlap = afmm.OverlapOff
	}
	// Task-graph execution is the tool default; the solver still falls
	// back to level-synchronous sweeps on single-worker pools.
	cfg.TaskGraph = !*noTaskGraph
	if *faults != "" {
		sch, err := afmm.ParseFaultSchedule(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = afmm.NewFaultInjector(sch)
	}
	cfg.CPU = afmm.DefaultCPU()
	cfg.CPU.Cores = *cores
	cfg.GPUSpec = afmm.DefaultGPU()
	cfg.GPUSpec.InteractionsPerSecPerSM *= *gpuscale
	if *gpuscale < 1 {
		cfg.GPUSpec.BlockSize = 64
	}
	solver := afmm.NewGravitySolver(sys, cfg)

	var strat afmm.Strategy
	switch *strategy {
	case 1:
		strat = afmm.StrategyStatic
	case 2:
		strat = afmm.StrategyEnforce
	default:
		strat = afmm.StrategyFull
	}
	balCfg := afmm.BalanceConfig{Strategy: strat}
	if *pinS {
		// A single-point search space settles immediately without a
		// rebuild: even strategy 1's initial search is suppressed, which
		// timing-perturbing faults would otherwise steer to a different S.
		balCfg.Strategy = afmm.StrategyStatic
		balCfg.MinS, balCfg.MaxS = *s, *s
	}

	simCfg := afmm.SimConfig{
		Dt:              *dt,
		Steps:           *steps,
		Balance:         balCfg,
		CheckpointEvery: *ckEvery,
		CheckpointDir:   *ckDir,
		Resume:          resumeSnap,
	}
	simCfg.Rec = rec
	res := afmm.RunGravity(solver, simCfg)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "run aborted after %d recoveries: %v\n", res.Recoveries, res.Err)
		os.Exit(1)
	}
	if res.Recoveries > 0 || res.Checkpoints > 0 {
		fmt.Fprintf(os.Stderr, "resilience: %d recoveries, %d checkpoints\n",
			res.Recoveries, res.Checkpoints)
	}
	if err := rec.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "trace sink: %v\n", err)
		os.Exit(1)
	}
	if *chromeFile != "" {
		cf, err := os.Create(*chromeFile)
		if err == nil {
			err = rec.WriteChrome(cf)
			if cerr := cf.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := res.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"total compute %.4fs, LB %.4fs (%.2f%%), refill %.4fs, mean/step %.6fs\n",
		res.TotalCompute, res.TotalLB, res.LBPercent(), res.TotalRefill,
		res.MeanTotalPerStep())
	if *finalHash {
		fmt.Printf("final-hash: %016x\n", stateHash(sys))
	}
}

type clusterSimArgs struct {
	sys       *afmm.System
	resume    *afmm.Snapshot
	rec       *afmm.Recorder
	nodes     int
	p, s      int
	cores     int
	steps     int
	dt        float64
	soften    float64
	faults    string
	linkSeed  int64
	ckEvery   int
	ckDir     string
	finalHash bool
}

// runClusterSim executes the run on the distributed goroutine-per-node
// runtime: real per-node execution of the partitioned tree, the framed
// link layer (with any -cluster-faults link chaos), and heartbeat-based
// node-loss detection. Results are bit-identical to the single-node
// float64 path regardless of the fault schedule.
func runClusterSim(a clusterSimArgs) {
	var nodeEvents []afmm.NodeFaultEvent
	var linkSch *afmm.LinkSchedule
	if a.faults != "" {
		var err error
		nodeEvents, linkSch, err = afmm.ParseClusterEvents(a.faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	cpu := afmm.DefaultCPU()
	cpu.Cores = a.cores
	d, err := afmm.NewClusterSolver(a.sys, afmm.ClusterConfig{
		Core: afmm.GravityConfig{
			P: a.p, S: a.s, DisableM2LTable: true,
			Kernel: afmm.GravityKernel{G: 1, Softening: a.soften},
			CPU:    cpu,
		},
		Nodes:      afmm.HomogeneousNodes(a.nodes, afmm.ClusterNodeSpec{CPU: cpu}),
		Execute:    true,
		NodeFaults: nodeEvents,
		LinkFaults: linkSch,
		LinkSeed:   a.linkSeed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d.SetRecorder(a.rec)

	startStep := 0
	if a.resume != nil {
		startStep = a.resume.Step
	}
	if startStep >= a.steps {
		fmt.Fprintf(os.Stderr, "resume snapshot is at step %d, nothing to run\n", startStep)
		os.Exit(2)
	}
	rc := afmm.ClusterRunConfig{
		Steps: a.steps - startStep, Dt: a.dt, StartStep: startStep,
	}
	if a.ckEvery > 0 && a.ckDir != "" {
		rc.OnStep = func(step int) {
			done := step + 1
			if (done-startStep)%a.ckEvery != 0 {
				return
			}
			sn := afmm.CaptureSnapshot(a.sys, a.s, done, float64(done)*a.dt)
			path := a.ckDir + string(os.PathSeparator) + afmm.SimCheckpointFile
			if err := afmm.WriteSnapshotFile(path, sn); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	res := d.RunWith(rc)
	fmt.Fprintf(os.Stderr,
		"dmem: %d nodes, steps %d..%d, modeled total %.4fs, %d repartitions, %d node losses\n",
		a.nodes, startStep, a.steps-1, res.TotalTime, res.Rebalances, res.NodeLosses)
	if res.Net.FramesSent > 0 {
		fmt.Fprintf(os.Stderr,
			"link layer: %d frames (%d dropped, %d retries, %d corrupt rejects), %d timeouts, %d recoveries\n",
			res.Net.FramesSent, res.Net.FramesDropped, res.Net.Retries,
			res.Net.CorruptRejects, res.Net.Timeouts,
			res.Net.Rerequests+res.Net.DegradedGhostFlows)
	}
	for _, lat := range res.DetectLatencies {
		fmt.Fprintf(os.Stderr, "heartbeat detection latency: %.3f ms\n", 1e3*lat)
	}
	if a.finalHash {
		fmt.Printf("final-hash: %016x\n", stateHash(a.sys))
	}
}

// makeSystem builds the initial body distribution.
func makeSystem(dist string, n int, seed int64) *afmm.System {
	switch dist {
	case "plummer":
		return afmm.Plummer(n, 1, 1, seed)
	case "plummer-compressed":
		sys := afmm.Plummer(n, 1, 1, seed)
		for i := range sys.Pos {
			sys.Pos[i] = sys.Pos[i].Scale(0.25)
		}
		return sys
	case "uniform":
		return afmm.UniformCube(n, 1, seed)
	case "shell":
		return afmm.UniformShell(n, 1, seed)
	case "twocluster":
		return afmm.TwoClusters(n, 1, 1, 6, 0.5, seed)
	case "disk":
		return afmm.SpiralDisk(n, 1, 1, seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", dist)
		os.Exit(2)
		return nil
	}
}

// stateHash digests the final accelerations and potentials in input
// order (FNV-64a over the raw float bits), so two runs can be compared
// for bit-identity from the command line.
func stateHash(sys *afmm.System) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	acc := sys.AccInInputOrder()
	phi := sys.PhiInInputOrder()
	for i := range acc {
		put(acc[i].X)
		put(acc[i].Y)
		put(acc[i].Z)
		put(phi[i])
	}
	return h.Sum64()
}
