// Command afmm-tune selects the FMM parameters (expansion order p and leaf
// capacity S) for a target accuracy on a described machine, using the cost
// model only (no numeric solves) — the automatic-tuning idea of the
// paper's reference [8].
package main

import (
	"flag"
	"fmt"
	"os"

	"afmm"
)

func main() {
	n := flag.Int("n", 20000, "number of bodies")
	dist := flag.String("dist", "plummer", "distribution: plummer | uniform | shell | disk")
	seed := flag.Int64("seed", 42, "random seed")
	target := flag.Float64("target", 1e-4, "target relative RMS acceleration error")
	cores := flag.Int("cores", 10, "virtual CPU cores")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	gpuscale := flag.Float64("gpuscale", 1.0/64, "device throughput derating")
	traceFile := flag.String("trace", "", "write a JSONL trace of the tuning sweep (one record per S candidate) to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve the live dashboard, Prometheus /metrics and /status on this address during the sweep")
	flightDir := flag.String("flightrec", "", "keep a flight-recorder ring of the last 32 candidate records and dump it into this directory on sentinel anomalies")
	noOverlap := flag.Bool("no-overlap", false, "run near and far phases sequentially instead of overlapped")
	noTaskGraph := flag.Bool("no-taskgraph", false, "configure the machine for fork-join sweeps instead of the dependency-driven task graph")
	flag.Parse()

	var sys *afmm.System
	switch *dist {
	case "plummer":
		sys = afmm.Plummer(*n, 1, 1, *seed)
	case "uniform":
		sys = afmm.UniformCube(*n, 1, *seed)
	case "shell":
		sys = afmm.UniformShell(*n, 1, *seed)
	case "disk":
		sys = afmm.SpiralDisk(*n, 1, 1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	machine := afmm.GravityConfig{
		NumGPUs: *gpus,
		GPUSpec: afmm.ScaledGPU(*gpuscale),
	}
	machine.CPU = afmm.DefaultCPU()
	machine.CPU.Cores = *cores
	if *noOverlap {
		machine.Overlap = afmm.OverlapOff
	}
	machine.TaskGraph = !*noTaskGraph

	var rec *afmm.Recorder
	if *traceFile != "" || *metricsAddr != "" || *flightDir != "" {
		var opts afmm.RecorderOptions
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer tf.Close()
			opts.JSONL = tf
		}
		if *metricsAddr != "" {
			opts.Metrics = afmm.NewMetricsRegistry()
		}
		if *flightDir != "" || *metricsAddr != "" {
			opts.Flight = afmm.NewFlightRecorder(0, *flightDir)
		}
		opts.Sentinel = &afmm.SentinelConfig{}
		rec = afmm.NewRecorder(opts)
		machine.Rec = rec
	}
	if *metricsAddr != "" {
		d, err := afmm.StartTelemetryDebug(*metricsAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server (dashboard, /metrics, /status, pprof) on http://%s/\n", d.Addr())
	}

	choice := afmm.Tune(sys, afmm.TuneRequest{
		TargetRMSError: *target,
		Machine:        machine,
	})
	if err := rec.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "trace sink: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("target error %.1e on %s N=%d, %dC+%dG (scale %.4f)\n",
		*target, *dist, *n, *cores, *gpus, *gpuscale)
	fmt.Printf("chosen: p = %d (modeled %.1f digits), S = %d\n",
		choice.P, choice.PredictedDigits, choice.S)
	fmt.Printf("predicted compute time per solve: %.6f s\n\n", choice.PredictedCompute)
	fmt.Printf("%8s %14s\n", "S", "predicted[s]")
	for _, pt := range choice.Sweep {
		marker := " "
		if pt.S == choice.S {
			marker = "*"
		}
		fmt.Printf("%8d %14.6f %s\n", pt.S, pt.Compute, marker)
	}
}
