package afmm_test

import (
	"fmt"

	"afmm"
)

// ExampleNewGravitySolver demonstrates a single heterogeneous AFMM solve
// and the timing quantities the load balancer consumes.
func ExampleNewGravitySolver() {
	sys := afmm.Plummer(2000, 1.0, 1.0, 42)
	cfg := afmm.GravityConfig{P: 6, S: 32, NumGPUs: 2}
	cfg.CPU.Cores = 10
	solver := afmm.NewGravitySolver(sys, cfg)
	times := solver.Solve()
	fmt.Println(times.Compute > 0)
	fmt.Println(times.Compute >= times.CPUTime && times.Compute >= times.GPUTime)
	// Output:
	// true
	// true
}

// ExampleNewBalancer runs the full load-balancing state machine for a few
// steps, as the simulation drivers do internally.
func ExampleNewBalancer() {
	sys := afmm.Plummer(3000, 1, 1, 42)
	cfg := afmm.GravityConfig{P: 4, S: 64, NumGPUs: 2, SkipFarField: true, SkipNearField: true}
	cfg.CPU.Cores = 10
	solver := afmm.NewGravitySolver(sys, cfg)
	bal := afmm.NewBalancer(afmm.BalanceConfig{Strategy: afmm.StrategyFull}, sys.Len())
	for i := 0; i < 25; i++ {
		st := solver.Solve()
		bal.AfterStep(solver, afmm.BalanceStepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	}
	fmt.Println(bal.State != 0) // left the initial Search state
	fmt.Println(solver.S() > 0)
	// Output:
	// true
	// true
}

// ExampleTune selects the expansion order and leaf capacity for a target
// accuracy using the cost model only.
func ExampleTune() {
	sys := afmm.Plummer(5000, 1, 1, 42)
	machine := afmm.GravityConfig{NumGPUs: 1}
	machine.CPU.Cores = 10
	choice := afmm.Tune(sys, afmm.TuneRequest{TargetRMSError: 1e-4, Machine: machine})
	fmt.Println(choice.P >= 4 && choice.P <= 10)
	fmt.Println(choice.S > 0)
	// Output:
	// true
	// true
}
