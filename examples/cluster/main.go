// Cluster: the distributed-memory extension the paper anticipates (§II) —
// the AFMM partitioned across a simulated cluster of heterogeneous nodes,
// with locally-essential-tree multipole exchange, ghost-particle traffic,
// and cost-driven inter-node rebalancing on top of the per-node CPU/GPU
// balancing.
package main

import (
	"flag"
	"fmt"

	"afmm"
)

func main() {
	n := flag.Int("n", 20000, "number of bodies")
	nodes := flag.Int("nodes", 4, "virtual cluster nodes")
	gpus := flag.Int("gpus", 2, "simulated GPUs per node")
	cores := flag.Int("cores", 10, "virtual CPU cores per node")
	flag.Parse()

	// A two-cluster (colliding galaxies) distribution: equal-count
	// partitions are badly skewed, making the inter-node rebalance visible.
	sys := afmm.TwoClusters(*n, 0.3, 1, 8, 0.5, 42)

	nodeSpec := afmm.ClusterNodeSpec{
		CPU:     afmm.DefaultCPU(),
		GPUs:    *gpus,
		GPUSpec: afmm.ScaledGPU(1.0 / 64),
	}
	nodeSpec.CPU.Cores = *cores
	coreCfg := afmm.GravityConfig{
		P: 4, S: 64,
		NumGPUs: *gpus,
		GPUSpec: afmm.ScaledGPU(1.0 / 64),
		Kernel:  afmm.GravityKernel{G: 1, Softening: 0.01},
	}
	coreCfg.CPU.Cores = *cores

	solver, err := afmm.NewClusterSolver(sys, afmm.ClusterConfig{
		Core:  coreCfg,
		Nodes: afmm.HomogeneousNodes(*nodes, nodeSpec),
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("distributed AFMM: %d bodies over %d nodes (%dC+%dG each)\n\n",
		*n, *nodes, *cores, *gpus)

	show := func(tag string, rep afmm.ClusterStepReport) {
		fmt.Printf("%s: step %.5fs, imbalance %.2f, comm %.1f KiB total\n",
			tag, rep.StepTime, rep.Imbalance, float64(rep.TotalBytes)/1024)
		for k, nt := range rep.PerNode {
			fmt.Printf("  node %d: %6d bodies, compute %.5fs (cpu %.5f / gpu %.5f), "+
				"comm %.5fs in %5.1f KiB from %d peers\n",
				k, nt.Bodies, nt.Compute, nt.CPUTime, nt.GPUTime,
				nt.CommTime, float64(nt.BytesIn)/1024, nt.Messages)
		}
	}

	rep := solver.Solve()
	show("equal-count partition", rep)

	gain := solver.Rebalance()
	rep2 := solver.Solve()
	fmt.Println()
	show("after cost-based rebalance", rep2)
	fmt.Printf("\nrebalance bound improvement: %.2fx; step time %.5fs -> %.5fs\n",
		gain, rep.StepTime, rep2.StepTime)
}
