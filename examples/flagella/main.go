// Flagella: the helical-swimming application of the paper's fluid
// reference [15] (Cortez, Fauci & Medovikov: "... application to helical
// swimming"). A rotating helical flagellum in Stokes flow couples rotation
// to axial pumping through its chirality; mirror-image helices pump in
// opposite directions. Velocities come from the AFMM-accelerated
// regularized-Stokeslet solver.
package main

import (
	"flag"
	"fmt"

	"afmm"
)

func main() {
	markers := flag.Int("markers", 360, "markers along the flagellum")
	turns := flag.Float64("turns", 3, "helical turns")
	torque := flag.Float64("f", 1.0, "tangential driving force magnitude")
	flag.Parse()

	run := func(handedness int) (uz, ur float64) {
		sys := afmm.NewSystem(*markers)
		afmm.NewHelix(sys, 0, *markers, afmm.Vec3{Z: -0.5}, 0.3, 0.4, *turns, handedness, 1)
		solver := afmm.NewStokesSolver(sys, afmm.StokesConfig{
			P: 6, S: 16,
			Kernel: afmm.StokesletKernel{Mu: 1, Eps: 0.03},
		})
		afmm.ClearForces(sys)
		afmm.RotletForces(sys, 0, *markers, afmm.Vec3{Z: 1}, *torque)
		solver.Solve()
		for i := range sys.Acc {
			uz += sys.Acc[i].Z
			ur += sys.Acc[i].X*sys.Pos[i].X + sys.Acc[i].Y*sys.Pos[i].Y
		}
		return uz / float64(*markers), ur / float64(*markers)
	}

	fmt.Printf("rotating helical flagellum (%d markers, %.0f turns)\n", *markers, *turns)
	uzR, _ := run(+1)
	uzL, _ := run(-1)
	fmt.Printf("right-handed helix: mean axial marker velocity %+.6f\n", uzR)
	fmt.Printf("left-handed helix:  mean axial marker velocity %+.6f\n", uzL)
	fmt.Println("\nrotation-translation coupling: the axial pumping direction")
	fmt.Println("flips with chirality — the mechanism bacterial flagella use to swim.")
}
