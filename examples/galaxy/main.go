// Galaxy: the paper's dynamic workload — a Plummer sphere compressed into
// 1/64th of the simulation volume that violently collapses, ejects a halo
// and recontracts — simulated over many time steps with the full dynamic
// load-balancing scheme (Search -> Incremental -> Observation with
// Enforce_S and FineGrainedOptimize). Prints the per-step S choices and
// timing so the balancer's behaviour is visible, plus energy diagnostics.
package main

import (
	"flag"
	"fmt"

	"afmm"
)

func main() {
	n := flag.Int("n", 3000, "number of bodies")
	steps := flag.Int("steps", 120, "time steps")
	dt := flag.Float64("dt", 1e-4, "time step size")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	cores := flag.Int("cores", 10, "virtual CPU cores")
	strategy := flag.Int("strategy", 3, "balancing strategy 1..3 (paper §IX.A)")
	flag.Parse()

	sys := afmm.Plummer(*n, 1.0, 1.0, 7)
	// Compress to 1/64th of the volume: sub-virial, so it collapses.
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Scale(0.25)
	}

	cfg := afmm.GravityConfig{
		P:       4,
		S:       64,
		NumGPUs: *gpus,
		Kernel:  afmm.GravityKernel{G: 1, Softening: 0.01},
	}
	cfg.CPU.Cores = *cores
	// Derate the simulated devices for the scaled-down N so the CPU/GPU
	// balance structure matches the paper's regime (see DESIGN.md).
	cfg.GPUSpec = afmm.DefaultGPU()
	cfg.GPUSpec.InteractionsPerSecPerSM /= 64

	solver := afmm.NewGravitySolver(sys, cfg)
	var strat afmm.Strategy
	switch *strategy {
	case 1:
		strat = afmm.StrategyStatic
	case 2:
		strat = afmm.StrategyEnforce
	default:
		strat = afmm.StrategyFull
	}

	solver.Solve()
	k0, p0 := afmm.Energies(sys)
	fmt.Printf("start: E = %.4g (K=%.4g, W=%.4g), virial ratio 2K/|W| = %.2f\n",
		k0+p0, k0, p0, 2*k0/-p0)

	res := afmm.RunGravity(solver, afmm.SimConfig{
		Dt:    *dt,
		Steps: *steps,
		Balance: afmm.BalanceConfig{
			Strategy: strat,
		},
	})

	fmt.Printf("\n%5s %6s %10s %10s %10s %10s %-12s\n",
		"step", "S", "cpu[s]", "gpu[s]", "compute", "total", "state")
	every := *steps / 20
	if every < 1 {
		every = 1
	}
	for i, r := range res.Records {
		if i%every == 0 || i == len(res.Records)-1 {
			fmt.Printf("%5d %6d %10.5f %10.5f %10.5f %10.5f %-12s\n",
				r.Step, r.S, r.CPUTime, r.GPUTime, r.Compute, r.Total, r.State)
		}
	}

	solver.Solve()
	k1, p1 := afmm.Energies(sys)
	fmt.Printf("\nend:   E = %.4g (K=%.4g, W=%.4g)\n", k1+p1, k1, p1)
	fmt.Printf("totals: compute %.3fs, LB %.3fs (%.2f%% of compute), mean/step %.5fs\n",
		res.TotalCompute, res.TotalLB, res.LBPercent(), res.MeanTotalPerStep())
	st := solver.Tree.ComputeStats()
	fmt.Printf("final tree: %d leaves, depth %d, S=%d\n",
		st.VisibleLeaves, st.MaxDepth, solver.S())
	eb := solver.EstimateError()
	fmt.Printf("far-field truncation bound: max %.2e, weighted mean %.2e over %d pairs\n",
		eb.MaxPair, eb.MeanPair, eb.Pairs)
	fmt.Println()
	fmt.Println(solver.Tree.Render())
}
