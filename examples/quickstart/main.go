// Quickstart: build a Plummer sphere, solve one AFMM step on a simulated
// heterogeneous node (10 virtual cores + 2 simulated GPUs), compare the
// result against direct summation, and show the virtual step timing that
// the load balancer consumes.
package main

import (
	"flag"
	"fmt"
	"math"

	"afmm"
)

func main() {
	n := flag.Int("n", 2000, "number of bodies")
	p := flag.Int("p", 8, "expansion order (retained terms)")
	s := flag.Int("s", 32, "leaf capacity S")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	flag.Parse()

	// A Plummer sphere with unit masses and G = 1 (the paper's
	// gravitational test problem, scaled down).
	sys := afmm.Plummer(*n, 1.0, 1.0, 42)

	cfg := afmm.GravityConfig{
		P:       *p,
		S:       *s,
		NumGPUs: *gpus,
		Kernel:  afmm.GravityKernel{G: 1},
	}
	cfg.CPU.Cores = 10
	solver := afmm.NewGravitySolver(sys, cfg)

	times := solver.Solve()
	fmt.Printf("AFMM solve of %d bodies (P=%d, S=%d, %d cores + %d GPUs)\n",
		*n, *p, *s, cfg.CPU.Cores, *gpus)
	fmt.Printf("  virtual CPU time: %.6f s\n", times.CPUTime)
	fmt.Printf("  virtual GPU time: %.6f s (efficiency %.1f%%)\n",
		times.GPUTime, 100*times.GPUEff)
	fmt.Printf("  compute time:     %.6f s (max of the two)\n", times.Compute)
	fmt.Printf("  host wall time:   %v\n", times.Real)
	fmt.Printf("  ops: P2M=%d M2M=%d M2L=%d L2L=%d L2P=%d P2P=%d\n",
		times.Counts[0], times.Counts[1], times.Counts[2],
		times.Counts[3], times.Counts[4], times.Counts[5])

	// Verify against the exact direct sum.
	phiRef, accRef := afmm.AllPairsGravity(sys, cfg.Kernel)
	var num, den, perr, pden float64
	for i := range accRef {
		num += sys.Acc[i].Sub(accRef[i]).Norm2()
		den += accRef[i].Norm2()
		perr += (sys.Phi[i] - phiRef[i]) * (sys.Phi[i] - phiRef[i])
		pden += phiRef[i] * phiRef[i]
	}
	fmt.Printf("accuracy vs direct sum: acc RMS rel err = %.2e, phi = %.2e\n",
		math.Sqrt(num/den), math.Sqrt(perr/pden))

	// The tree the solver adapted to the distribution.
	st := solver.Tree.ComputeStats()
	fmt.Printf("adaptive octree: %d visible leaves, depth %d (min leaf depth %d), avg occupancy %.1f\n",
		st.VisibleLeaves, st.MaxDepth, st.MinLeafDepth, st.AvgLeafOcc)
}
