// Stokeslets: fluid dynamics with immersed flexible boundaries via the
// method of regularized Stokeslets (the paper's second test problem,
// ref. [15]). A stretched elastic ring immersed in Stokes flow relaxes
// toward its rest shape; marker velocities come from the AFMM-accelerated
// regularized-Stokeslet solver (4 harmonic far-field passes + regularized
// near field).
package main

import (
	"flag"
	"fmt"
	"math"

	"afmm"
)

func main() {
	markers := flag.Int("markers", 512, "markers on the ring")
	steps := flag.Int("steps", 60, "time steps")
	dt := flag.Float64("dt", 5e-4, "time step")
	gpus := flag.Int("gpus", 1, "simulated GPUs")
	flag.Parse()

	sys := afmm.NewSystem(*markers)
	ring := afmm.NewRing(sys, 0, *markers, afmm.Vec3{}, 1.0, 2, 40.0)
	// Stretch the ring into an ellipse: x scaled up, y scaled down.
	for i := range sys.Pos {
		sys.Pos[i].X *= 1.4
		sys.Pos[i].Y *= 0.7
	}

	cfg := afmm.StokesConfig{
		P:       6,
		S:       32,
		NumGPUs: *gpus,
		Kernel:  afmm.StokesletKernel{Mu: 1, Eps: 0.02},
	}
	cfg.CPU.Cores = 10
	solver := afmm.NewStokesSolver(sys, cfg)

	circumference := func() float64 {
		loc := make([]int, sys.Len())
		for storage, id := range sys.Index {
			loc[id] = storage
		}
		var c float64
		for _, l := range ring.Links {
			c += sys.Pos[loc[l.B]].Sub(sys.Pos[loc[l.A]]).Norm()
		}
		return c
	}
	aspect := func() float64 {
		var maxX, maxY float64
		for _, p := range sys.Pos {
			maxX = math.Max(maxX, math.Abs(p.X))
			maxY = math.Max(maxY, math.Abs(p.Y))
		}
		return maxX / maxY
	}

	fmt.Printf("elastic ring of %d regularized-Stokeslet markers (mu=%g, eps=%g)\n",
		*markers, cfg.Kernel.Mu, cfg.Kernel.Eps)
	fmt.Printf("%5s %12s %10s %12s %12s\n", "step", "circumf.", "aspect", "cpu[s]", "gpu[s]")
	for step := 0; step < *steps; step++ {
		afmm.ClearForces(sys)
		ring.AccumulateForces(sys)
		st := solver.Solve()
		for i := range sys.Pos {
			sys.Pos[i] = sys.Pos[i].Add(sys.Acc[i].Scale(*dt))
		}
		solver.Refill()
		if step%10 == 0 || step == *steps-1 {
			fmt.Printf("%5d %12.5f %10.3f %12.6f %12.6f\n",
				step, circumference(), aspect(), st.CPUTime, st.GPUTime)
		}
	}
	fmt.Printf("\nrest circumference: %.5f (2*pi*r = %.5f)\n",
		circumference(), 2*math.Pi)
	fmt.Println("the ring relaxes toward aspect 1.0 as elastic energy dissipates into the fluid")
}
