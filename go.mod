module afmm

go 1.22
