// Package autotune selects the FMM parameters (expansion order p and leaf
// capacity S) for a target accuracy on a given machine — the automatic
// tuning idea of the paper's reference [8] (Dachsel et al., "Automatic
// Tuning of the Fast Multipole Method Based on Integrated Performance
// Prediction") applied to this library's cost model:
//
//   - the order p comes from the empirical accuracy model of the
//     spherical-harmonics operators under the default MAC, calibrated by
//     the expansion test suite (digits ~ 1.3 + 0.48 p);
//   - the capacity S comes from a dry sweep of the virtual-machine cost
//     model at that order, picking the S with the smallest predicted
//     compute time.
package autotune

import (
	"math"

	"afmm/internal/core"
	"afmm/internal/costmodel"
	"afmm/internal/particle"
)

// Request describes the tuning goal.
type Request struct {
	// TargetRMSError is the requested relative RMS acceleration error
	// (e.g. 1e-4).
	TargetRMSError float64
	// Machine is the solver configuration whose P and S fields are
	// ignored and will be chosen. All other fields (cores, GPUs,
	// profile, MAC) are respected.
	Machine core.Config
	// SGrid overrides the default logarithmic S candidates.
	SGrid []int
}

// Choice is the tuner's decision.
type Choice struct {
	P                int
	S                int
	PredictedCompute float64
	// PredictedDigits is the accuracy the order model expects.
	PredictedDigits float64
	// Sweep records the predicted compute time per candidate S.
	Sweep []SPoint
}

// SPoint is one S candidate's predicted cost.
type SPoint struct {
	S       int
	Compute float64
}

// accuracy model constants: relative RMS error digits as a function of p
// for the default MAC (0.6), fitted to the measured operator accuracy
// (p=4: 3.2 digits, p=8: 5.3, p=12: 7.0).
const (
	digitsIntercept = 1.3
	digitsPerOrder  = 0.48
	minOrder        = 2
	maxOrder        = 20
)

// OrderForTarget returns the smallest order whose modeled accuracy meets
// the target error.
func OrderForTarget(target float64) int {
	if target <= 0 {
		return maxOrder
	}
	digits := -math.Log10(target)
	p := int(math.Ceil((digits - digitsIntercept) / digitsPerOrder))
	if p < minOrder {
		p = minOrder
	}
	if p > maxOrder {
		p = maxOrder
	}
	return p
}

// DigitsForOrder returns the modeled accuracy digits of an order.
func DigitsForOrder(p int) float64 {
	return digitsIntercept + digitsPerOrder*float64(p)
}

// orderCostScale adjusts the virtual CPU coefficients, which are
// calibrated at order ~8, to the chosen order: translations are O(p^4)
// and endpoint operations O(p^2) in this implementation.
func orderCostScale(base costmodel.Coefficients, p int) costmodel.Coefficients {
	r := float64(p+1) / 9.0
	t4 := math.Pow(r, 4)
	t2 := r * r
	out := base
	out[costmodel.P2M] *= t2
	out[costmodel.L2P] *= t2
	out[costmodel.M2M] *= t4
	out[costmodel.M2L] *= t4
	out[costmodel.L2L] *= t4
	return out
}

// Tune chooses (p, S) for the system and machine. It runs timing-only
// solves (no numeric work), so it is cheap relative to a real solve.
func Tune(sys *particle.System, req Request) Choice {
	p := OrderForTarget(req.TargetRMSError)
	grid := req.SGrid
	if len(grid) == 0 {
		grid = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	c := Choice{P: p, PredictedDigits: DigitsForOrder(p), PredictedCompute: math.Inf(1)}
	// A recorder on the machine config traces each candidate's dry solve
	// as one step (step index = candidate index, S = the candidate).
	rec := req.Machine.Rec
	for _, s := range grid {
		if s >= sys.Len() {
			continue
		}
		cfg := req.Machine
		cfg.P = p
		cfg.S = s
		cfg.SkipFarField = true
		cfg.SkipNearField = true
		cfg.CPU = cfg.CPU.Normalized()
		cfg.CPU.Base = orderCostScale(cfg.CPU.Base, p)
		rec.StartStep(len(c.Sweep))
		solver := core.NewSolver(sys.Clone(), cfg)
		st := solver.Solve()
		rec.SetStepInfo(len(c.Sweep), s, "tune")
		rec.EndStep()
		c.Sweep = append(c.Sweep, SPoint{S: s, Compute: st.Compute})
		if st.Compute < c.PredictedCompute {
			c.PredictedCompute = st.Compute
			c.S = s
		}
	}
	if c.S == 0 {
		c.S = 64
		c.PredictedCompute = 0
	}
	return c
}
