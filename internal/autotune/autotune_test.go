package autotune

import (
	"math"
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/vgpu"
)

func TestOrderForTargetMonotone(t *testing.T) {
	prev := 0
	for _, target := range []float64{1e-2, 1e-3, 1e-4, 1e-6, 1e-8} {
		p := OrderForTarget(target)
		if p < prev {
			t.Fatalf("order decreased for tighter target %g: %d < %d", target, p, prev)
		}
		prev = p
	}
	if OrderForTarget(0) != 20 {
		t.Fatal("zero target should clamp to max order")
	}
	if OrderForTarget(0.5) != 2 {
		t.Fatal("loose target should clamp to min order")
	}
}

func TestTunePicksSweepMinimum(t *testing.T) {
	sys := distrib.Plummer(8000, 1, 1, 42)
	cfg := core.Config{NumGPUs: 1, GPUSpec: vgpu.ScaledSpec(1.0 / 64)}
	cfg.CPU.Cores = 10
	c := Tune(sys, Request{TargetRMSError: 1e-4, Machine: cfg})
	if len(c.Sweep) == 0 {
		t.Fatal("no sweep points")
	}
	best := math.Inf(1)
	bestS := 0
	for _, pt := range c.Sweep {
		if pt.Compute < best {
			best, bestS = pt.Compute, pt.S
		}
	}
	if c.S != bestS || c.PredictedCompute != best {
		t.Fatalf("choice %+v does not match sweep minimum (S=%d %g)", c, bestS, best)
	}
}

func TestTuneMeetsAccuracyTarget(t *testing.T) {
	// Choose parameters for 1e-4, run a real solve, verify the achieved
	// error beats the target (the order model is deliberately
	// conservative for typical, non-worst-case geometry).
	sys := distrib.Plummer(800, 1, 1, 7)
	cfg := core.Config{NumGPUs: 1}
	c := Tune(sys, Request{TargetRMSError: 1e-4, Machine: cfg,
		SGrid: []int{16, 32, 64}})
	runCfg := core.Config{P: c.P, S: c.S, NumGPUs: 1}
	s := core.NewSolver(sys, runCfg)
	s.Solve()
	_, accRef := core.AllPairsReference(sys, s.Cfg.Kernel)
	var num, den float64
	for i := range accRef {
		num += s.Sys.Acc[i].Sub(accRef[i]).Norm2()
		den += accRef[i].Norm2()
	}
	err := math.Sqrt(num / den)
	if err > 1e-4 {
		t.Fatalf("tuned (p=%d, S=%d) achieved %g, target 1e-4", c.P, c.S, err)
	}
}

func TestHigherAccuracyCostsMore(t *testing.T) {
	sys := distrib.Plummer(8000, 1, 1, 42)
	cfg := core.Config{NumGPUs: 1, GPUSpec: vgpu.ScaledSpec(1.0 / 64)}
	cfg.CPU.Cores = 10
	loose := Tune(sys, Request{TargetRMSError: 1e-2, Machine: cfg})
	tight := Tune(sys, Request{TargetRMSError: 1e-7, Machine: cfg})
	if tight.P <= loose.P {
		t.Fatalf("orders not ordered: %d vs %d", tight.P, loose.P)
	}
	if tight.PredictedCompute <= loose.PredictedCompute {
		t.Fatalf("tighter accuracy predicted cheaper: %g vs %g",
			tight.PredictedCompute, loose.PredictedCompute)
	}
}
