// Package balance implements the paper's dynamic load-balancing machinery:
// the three balancer states (Search, Incremental, Observation), the
// Enforce_S and FineGrainedOptimize enforcement mechanisms built on the
// Collapse/PushDown tree operations and the observed-coefficient time
// predictor, and the state-switching workflow of §VII.B.
package balance

import (
	"fmt"
	"math"
	"sort"

	"afmm/internal/metrics"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// Target is the solver surface the balancer drives. Both the gravity
// solver (core.Solver) and the Stokes solver implement it.
type Target interface {
	// S returns the current leaf-capacity parameter.
	S() int
	// Rebuild reconstructs the tree with a new S.
	Rebuild(newS int)
	// EnforceS restores the capacity invariant, returning the number of
	// collapse and pushdown operations performed.
	EnforceS() (collapses, pushdowns int)
	// Predict estimates CPU and GPU time for the current tree shape from
	// the observed coefficients, without solving.
	Predict() (cpu, gpu float64)
	// Octree exposes the decomposition for fine-grained modification.
	Octree() *octree.Tree
	// System exposes the bodies.
	System() *particle.System
	// Cores returns the virtual core count (for LB cost accounting).
	Cores() int
}

// StepTimes is the timing triple the balancer consumes (the paper's §VII.A
// definitions).
type StepTimes struct {
	CPU float64
	GPU float64
}

// Compute returns max(CPU, GPU).
func (t StepTimes) Compute() float64 { return math.Max(t.CPU, t.GPU) }

// State of the load balancer (§V).
type State int

// The balancer is always in exactly one of these states.
const (
	// Search performs a binary search for a good global S, rebuilding
	// the tree after every step (start of the simulation).
	Search State = iota
	// Incremental nudges the global S by small steps each time step.
	Incremental
	// Observation watches the compute time and intervenes only on
	// regressions (the steady state).
	Observation
	// Frozen performs no balancing at all (strategy 1 after its initial
	// search).
	Frozen
)

func (s State) String() string {
	switch s {
	case Search:
		return "search"
	case Incremental:
		return "incremental"
	case Observation:
		return "observation"
	case Frozen:
		return "frozen"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Strategy selects one of the three schemes compared in §IX.A.
type Strategy int

// The paper's three strategies.
const (
	// StrategyStatic finds an optimal S once, then never modifies S or
	// the tree again (strategy 1).
	StrategyStatic Strategy = iota
	// StrategyEnforce finds an optimal S once and calls Enforce_S
	// whenever the compute time regresses beyond the threshold
	// (strategy 2).
	StrategyEnforce
	// StrategyFull is the complete load-balancing scheme: all three
	// states plus Enforce_S and FineGrainedOptimize (strategy 3).
	StrategyFull
)

// Config tunes the balancer.
type Config struct {
	Strategy Strategy
	// RegressionFrac triggers intervention when the compute time exceeds
	// the best seen by this fraction (paper: 5%).
	RegressionFrac float64
	// SwitchFrac ends Search/Incremental when |CPU-GPU| is within this
	// fraction of the compute time. The paper uses an absolute 0.15 s on
	// ~1 s steps; the relative form keeps the behaviour at scaled-down
	// problem sizes. SwitchAbs, when positive, is also accepted.
	SwitchFrac float64
	SwitchAbs  float64
	MinS, MaxS int
	// IncrementalFrac is the per-step relative S step in the incremental
	// state (default 1/8).
	IncrementalFrac float64
	// FineGrainBatch is the number of nodes modified per
	// FineGrainedOptimize iteration (default: 1/64 of visible leaves,
	// minimum 4).
	FineGrainBatch int
	// MaxFineGrainIters bounds the optimize loop (default 12).
	MaxFineGrainIters int
	// DisableFineGrain turns FineGrainedOptimize off while keeping the
	// rest of the full workflow — the ablation compared in Figure 10.
	DisableFineGrain bool
	// Costs models the virtual time spent by balancing operations.
	Costs LBCostModel
	// Rec, when non-nil, receives the balancer's typed event log (state
	// transitions, S changes, probes/nudges, regressions, enforcement) and
	// spans for rebuilds, Enforce_S, predictions, and fine-grained
	// optimization. The string Report.Events stay as the human-readable
	// summary; the recorder carries the machine-readable sequence.
	Rec *telemetry.Recorder
}

func (c *Config) setDefaults(n int) {
	if c.RegressionFrac <= 0 {
		c.RegressionFrac = 0.05
	}
	if c.SwitchFrac <= 0 {
		c.SwitchFrac = 0.15
	}
	if c.MinS <= 0 {
		c.MinS = 4
	}
	if c.MaxS <= 0 {
		c.MaxS = n/2 + 8
	}
	if c.IncrementalFrac <= 0 {
		c.IncrementalFrac = 0.125
	}
	if c.MaxFineGrainIters <= 0 {
		c.MaxFineGrainIters = 12
	}
	c.Costs.setDefaults()
}

// Balancer drives one solver across time steps.
type Balancer struct {
	Cfg   Config
	State State

	best     float64 // best compute time seen since last reset
	haveBest bool

	// binary search bookkeeping
	loS, hiS  int
	bestS     int
	bestSComp float64

	// incremental bookkeeping
	dir        int // +1: raise S (CPU-bound), -1: lower S
	prevDom    int // +1 CPU dominated, -1 GPU dominated
	searchDone bool

	// capacity bookkeeping (heterogeneous degradation; see CapacitySensor)
	capSeen  bool
	capEpoch int64
	capVal   float64

	// metric handles, resolved on first AfterStep under a recorder with
	// a registry. Set from the step loop's goroutine only — the balancer
	// state they publish is not atomic.
	metInit  bool
	metState metrics.Gauge
	metS     metrics.Gauge
	metBest  metrics.Gauge
}

// New creates a balancer for a system of n bodies starting at S0.
func New(cfg Config, n int) *Balancer {
	cfg.setDefaults(n)
	return &Balancer{
		Cfg:   cfg,
		State: Search,
		loS:   cfg.MinS,
		hiS:   cfg.MaxS,
		bestS: -1,
	}
}

// Report describes what the balancer did after a step.
type Report struct {
	State     State
	LBTime    float64 // virtual seconds spent on balancing operations
	Rebuilt   bool
	NewS      int
	EnforcedS bool
	FineGrain bool
	Events    []string
}

// rec returns the configured recorder (nil when telemetry is off; all
// recorder methods are nil-safe).
func (b *Balancer) rec() *telemetry.Recorder { return b.Cfg.Rec }

// setState transitions the state machine, logging actual changes.
func (b *Balancer) setState(to State) {
	if b.State != to {
		b.rec().EmitEvent(telemetry.EventState, int64(b.State), int64(to), 0, 0)
		b.State = to
	}
}

// rebuild is a tracked full tree rebuild to newS.
func (b *Balancer) rebuild(s Target, newS int) {
	old := s.S()
	rt := sched.StartTimer()
	s.Rebuild(newS)
	b.rec().AddSpan(telemetry.SpanTreeBuild, int32(newS), rt.StartTime(), rt.Elapsed())
	b.rec().EmitEvent(telemetry.EventRebuild, int64(newS), 0, 0, 0)
	if old != newS {
		b.rec().EmitEvent(telemetry.EventSChange, int64(old), int64(newS), 0, 0)
	}
}

// predict is a tracked s.Predict.
func (b *Balancer) predict(s Target) (cpu, gpu float64) {
	tok := b.rec().Begin(telemetry.SpanPredict, 0)
	cpu, gpu = s.Predict()
	b.rec().End(tok)
	return cpu, gpu
}

// enforce is a tracked s.EnforceS.
func (b *Balancer) enforce(s Target) (col, push int) {
	tok := b.rec().Begin(telemetry.SpanEnforceS, 0)
	col, push = s.EnforceS()
	b.rec().End(tok)
	b.rec().EmitEvent(telemetry.EventEnforceS, int64(col), int64(push), 0, 0)
	b.rec().AddTreeEdits(col, push)
	return col, push
}

// dominant returns +1 when the CPU dominates the step time, -1 otherwise.
func dominant(st StepTimes) int {
	if st.CPU >= st.GPU {
		return 1
	}
	return -1
}

func (b *Balancer) withinSwitch(st StepTimes) bool {
	gap := math.Abs(st.CPU - st.GPU)
	if b.Cfg.SwitchAbs > 0 && gap <= b.Cfg.SwitchAbs {
		return true
	}
	return gap <= b.Cfg.SwitchFrac*math.Max(st.Compute(), 1e-300)
}

// AfterStep runs the balancing workflow of §VII.B after a completed solve
// (and after the integrator moved the bodies and Refill re-binned them).
// It mutates the solver's tree / S for the next step and returns what it
// did along with the virtual time charged for it. When the target also
// reports near-field capacity (CapacitySensor), a capacity epoch change —
// a device loss, derating, or restore — is folded in first: the balance
// point just moved for a reason no tree edit caused, so the full strategy
// re-enters Search over the surviving capacity before the normal state
// step runs.
func (b *Balancer) AfterStep(s Target, st StepTimes) Report {
	var pre Report
	if cs, ok := s.(CapacitySensor); ok {
		pre = b.noteCapacity(s, cs)
	}
	r := b.stepFSM(s, st)
	if len(pre.Events) > 0 {
		r.Events = append(pre.Events, r.Events...)
	}
	b.publishMetrics(r)
	return r
}

// publishMetrics refreshes the balancer gauges after the FSM step.
// Runs on the step loop's goroutine (the balancer state is not atomic);
// a recorder without a registry makes this a no-op.
func (b *Balancer) publishMetrics(r Report) {
	reg := b.rec().Metrics()
	if !reg.Enabled() {
		return
	}
	if !b.metInit {
		b.metState = reg.Gauge("afmm_balancer_state",
			"balance FSM state: 0 search, 1 incremental, 2 observation, 3 frozen")
		b.metS = reg.Gauge("afmm_balancer_target_s", "S the balancer chose for the next step")
		b.metBest = reg.Gauge("afmm_balancer_best_compute_seconds",
			"best compute time seen since the last search reset")
		b.metInit = true
	}
	b.metState.Set(float64(r.State))
	b.metS.Set(float64(r.NewS))
	if b.haveBest {
		b.metBest.Set(b.best)
	}
}

func (b *Balancer) stepFSM(s Target, st StepTimes) Report {
	switch b.State {
	case Frozen:
		return Report{State: Frozen, NewS: s.S()}
	case Search:
		return b.searchStep(s, st)
	case Incremental:
		return b.incrementalStep(s, st)
	default:
		return b.observationStep(s, st)
	}
}

// searchStep implements the binary-search state: pick the next S from how
// the previous rebuild shifted the CPU/GPU balance, rebuild, and exit to
// the incremental state once the times are close.
func (b *Balancer) searchStep(s Target, st StepTimes) Report {
	r := Report{State: Search}
	cur := s.S()
	if b.bestS < 0 || st.Compute() < b.bestSComp {
		b.bestS, b.bestSComp = cur, st.Compute()
	}
	if dominant(st) > 0 {
		// CPU-bound: move work toward the near field.
		if cur+1 > b.loS {
			b.loS = cur + 1
		}
	} else {
		if cur-1 < b.hiS {
			b.hiS = cur - 1
		}
	}
	if b.withinSwitch(st) || b.loS > b.hiS {
		// Settle on the best S seen and hand over to Incremental.
		b.setState(Incremental)
		b.prevDom = dominant(st)
		b.dir = b.prevDom
		if b.bestS != cur {
			r.LBTime += b.Cfg.Costs.rebuildCost(s)
			b.rebuild(s, b.bestS)
			r.Rebuilt = true
		}
		b.best = b.bestSComp
		b.haveBest = true
		r.NewS = s.S()
		r.Events = append(r.Events, fmt.Sprintf("search done: S=%d", s.S()))
		if b.Cfg.Strategy == StrategyStatic {
			b.setState(Frozen)
		}
		if b.Cfg.Strategy == StrategyEnforce {
			b.setState(Observation)
		}
		return r
	}
	next := geomMid(b.loS, b.hiS)
	b.rec().EmitEvent(telemetry.EventSearchProbe, int64(next), 0, 0, 0)
	r.LBTime += b.Cfg.Costs.rebuildCost(s)
	b.rebuild(s, next)
	r.Rebuilt = true
	r.NewS = next
	return r
}

// incrementalStep nudges S toward the balance point, one rebuild per step,
// until the dominant computational unit flips (§V.B, §VII.B).
func (b *Balancer) incrementalStep(s Target, st StepTimes) Report {
	r := Report{State: Incremental}
	cur := s.S()
	dom := dominant(st)
	if b.haveBest && st.Compute() < b.best {
		b.best = st.Compute()
	}
	if dom != b.prevDom {
		// Transitional S found.
		b.rec().EmitEvent(telemetry.EventDomFlip, int64(b.prevDom), int64(dom), 0, 0)
		if !b.withinSwitch(st) && !b.Cfg.DisableFineGrain {
			r.LBTime += b.fineGrainedOptimize(s, &r)
			r.FineGrain = true
		}
		b.setState(Observation)
		b.best = st.Compute()
		b.haveBest = true
		r.NewS = s.S()
		r.Events = append(r.Events, fmt.Sprintf("incremental done: S=%d dom flip", cur))
		return r
	}
	b.prevDom = dom
	step := int(math.Max(1, float64(cur)*b.Cfg.IncrementalFrac))
	next := cur + dom*step
	if next < b.Cfg.MinS {
		next = b.Cfg.MinS
	}
	if next > b.Cfg.MaxS {
		next = b.Cfg.MaxS
	}
	if next != cur {
		b.rec().EmitEvent(telemetry.EventNudge, int64(cur), int64(next), 0, 0)
		r.LBTime += b.Cfg.Costs.rebuildCost(s)
		b.rebuild(s, next)
		r.Rebuilt = true
	}
	r.NewS = next
	return r
}

// observationStep watches for regressions and applies the enforcement
// mechanisms (§VI, §VII.B).
func (b *Balancer) observationStep(s Target, st StepTimes) Report {
	r := Report{State: Observation, NewS: s.S()}
	if !b.haveBest {
		b.best = st.Compute()
		b.haveBest = true
		return r
	}
	if st.Compute() <= b.best*(1+b.Cfg.RegressionFrac) {
		if st.Compute() < b.best {
			b.best = st.Compute()
		}
		return r
	}
	// Regression: first line of defense is Enforce_S.
	b.rec().EmitEvent(telemetry.EventRegression, 0, 0, st.Compute(), b.best)
	col, push := b.enforce(s)
	r.EnforcedS = true
	r.LBTime += b.Cfg.Costs.enforceCost(s, col, push)
	r.Events = append(r.Events, fmt.Sprintf("enforceS: %d collapses, %d pushdowns", col, push))
	if b.Cfg.Strategy == StrategyEnforce {
		// Strategy 2: the next step's compute time becomes the new best.
		b.haveBest = false
		return r
	}
	threshold := b.best * (1 + b.Cfg.RegressionFrac)
	cpu, gpu := b.predict(s)
	r.LBTime += b.Cfg.Costs.predictCost(s)
	pred := math.Max(cpu, gpu)
	b.rec().EmitEvent(telemetry.EventPrediction, 0, 0, pred, threshold)
	if pred <= threshold {
		b.best = math.Min(b.best, pred)
		return r
	}
	if !b.Cfg.DisableFineGrain {
		r.LBTime += b.fineGrainedOptimize(s, &r)
		r.FineGrain = true
		cpu, gpu = b.predict(s)
		r.LBTime += b.Cfg.Costs.predictCost(s)
		pred = math.Max(cpu, gpu)
		b.rec().EmitEvent(telemetry.EventPrediction, 0, 0, pred, threshold)
	}
	if pred > threshold {
		// Fine-grained adjustment failed: fall back to incremental on
		// the next step.
		b.setState(Incremental)
		b.prevDom = 0 // force at least one incremental move before flip detection
		if cpu >= gpu {
			b.prevDom = 1
		} else {
			b.prevDom = -1
		}
		r.Events = append(r.Events, "fine-grain insufficient: -> incremental")
	}
	return r
}

// fineGrainedOptimize applies batches of Collapse or PushDown operations,
// keeping each batch only if the predicted compute time improves (§VI.B).
// It returns the virtual LB time spent.
func (b *Balancer) fineGrainedOptimize(s Target, r *Report) float64 {
	tok := b.rec().Begin(telemetry.SpanFineGrain, 0)
	defer b.rec().End(tok)
	var lb float64
	cpu, gpu := b.predict(s)
	lb += b.Cfg.Costs.predictCost(s)
	bestPred := math.Max(cpu, gpu)
	for iter := 0; iter < b.Cfg.MaxFineGrainIters; iter++ {
		var batch []int32
		if cpu > gpu {
			batch = collapseCandidates(s.Octree(), b.batchSize(s))
			for _, ni := range batch {
				s.Octree().Collapse(ni)
			}
		} else {
			batch = pushdownCandidates(s.Octree(), b.batchSize(s))
			for _, ni := range batch {
				s.Octree().PushDown(ni)
			}
		}
		if len(batch) == 0 {
			break
		}
		lb += b.Cfg.Costs.modifyCost(s, batch)
		nc, ng := b.predict(s)
		lb += b.Cfg.Costs.predictCost(s)
		pred := math.Max(nc, ng)
		if pred >= bestPred {
			// Revert the batch and stop: the operations are exact
			// inverses of each other.
			if cpu > gpu {
				for _, ni := range batch {
					s.Octree().PushDown(ni)
				}
			} else {
				for _, ni := range batch {
					s.Octree().Collapse(ni)
				}
			}
			lb += b.Cfg.Costs.modifyCost(s, batch)
			break
		}
		bestPred = pred
		b.rec().EmitEvent(telemetry.EventFineGrain, int64(len(batch)), 0, pred, 0)
		if cpu > gpu {
			b.rec().AddTreeEdits(len(batch), 0)
		} else {
			b.rec().AddTreeEdits(0, len(batch))
		}
		cpu, gpu = nc, ng
		r.Events = append(r.Events, fmt.Sprintf("fgo batch %d nodes, pred %.4g", len(batch), pred))
	}
	return lb
}

func (b *Balancer) batchSize(s Target) int {
	if b.Cfg.FineGrainBatch > 0 {
		return b.Cfg.FineGrainBatch
	}
	n := s.Octree().ComputeStats().VisibleLeaves / 64
	if n < 4 {
		n = 4
	}
	return n
}

// scored pairs a node with its selection key for candidate ranking.
type scored struct {
	ni    int32
	count int
}

// collapseCandidates returns up to k visible twigs (internal nodes whose
// children are all visible leaves), lightest first — collapsing them
// removes far-field work for the least near-field increase.
func collapseCandidates(t *octree.Tree, k int) []int32 {
	var cands []scored
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		if n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci == octree.NilNode || !t.Nodes[ci].IsVisibleLeaf() {
				return
			}
		}
		cands = append(cands, scored{ni, n.Count()})
	})
	sortScored(cands)
	out := make([]int32, 0, k)
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		out = append(out, c.ni)
	}
	return out
}

// pushdownCandidates returns up to k visible leaves, heaviest first —
// splitting them removes the most near-field work.
func pushdownCandidates(t *octree.Tree, k int) []int32 {
	var cands []scored
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		if n.IsVisibleLeaf() && n.Count() > 1 && int(n.Level) < t.Cfg.MaxDepth {
			cands = append(cands, scored{ni, -n.Count()})
		}
	})
	sortScored(cands)
	out := make([]int32, 0, k)
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		out = append(out, c.ni)
	}
	return out
}

func sortScored(c []scored) {
	sort.Slice(c, func(i, j int) bool { return c[i].count < c[j].count })
}

// geomMid returns the geometric midpoint of [lo, hi], the natural probe
// for a scale parameter spanning decades.
func geomMid(lo, hi int) int {
	m := int(math.Round(math.Sqrt(float64(lo) * float64(hi))))
	if m < lo {
		m = lo
	}
	if m > hi {
		m = hi
	}
	return m
}
