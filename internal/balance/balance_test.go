package balance

import (
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
)

func newHeteroSolver(n int, seed int64) *core.Solver {
	sys := distrib.Plummer(n, 1, 1, seed)
	cfg := core.Config{P: 6, S: 64, NumGPUs: 2, SkipFarField: true}
	cfg.CPU.Cores = 10
	return core.NewSolver(sys, cfg)
}

func TestSearchConvergesToBalance(t *testing.T) {
	s := newHeteroSolver(4000, 1)
	b := New(Config{Strategy: StrategyFull}, s.Sys.Len())
	var steps int
	for steps = 0; steps < 40 && b.State == Search; steps++ {
		st := s.Solve()
		b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	}
	if b.State == Search {
		t.Fatalf("search did not converge in %d steps", steps)
	}
	// After convergence the CPU and GPU times should be reasonably close
	// or the S range exhausted.
	st := s.Solve()
	gap := st.CPUTime - st.GPUTime
	if gap < 0 {
		gap = -gap
	}
	if gap > 0.8*st.Compute {
		t.Fatalf("converged S=%d leaves times far apart: cpu=%g gpu=%g",
			s.S(), st.CPUTime, st.GPUTime)
	}
	if steps > 25 {
		t.Fatalf("binary search took %d steps (paper: <15 typical)", steps)
	}
}

func TestSearchImprovesOverInitialS(t *testing.T) {
	// Start from a deliberately bad S; the search must find something
	// substantially better.
	sys := distrib.Plummer(4000, 1, 1, 2)
	cfg := core.Config{P: 6, S: 4, NumGPUs: 2, SkipFarField: true}
	cfg.CPU.Cores = 10
	s := core.NewSolver(sys, cfg)
	first := s.Solve()
	b := New(Config{Strategy: StrategyFull}, sys.Len())
	b.AfterStep(s, StepTimes{CPU: first.CPUTime, GPU: first.GPUTime})
	best := first.Compute
	for i := 0; i < 40 && b.State == Search; i++ {
		st := s.Solve()
		if st.Compute < best {
			best = st.Compute
		}
		b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	}
	if best > first.Compute*0.8 {
		t.Fatalf("search barely improved: %g -> %g", first.Compute, best)
	}
}

func TestObservationDoesNothingWhenStable(t *testing.T) {
	s := newHeteroSolver(3000, 3)
	b := New(Config{Strategy: StrategyFull}, s.Sys.Len())
	b.State = Observation
	st := s.Solve()
	// Prime best.
	b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	rep := b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	if rep.EnforcedS || rep.FineGrain || rep.Rebuilt {
		t.Fatalf("observation state acted on a stable time: %+v", rep)
	}
}

func TestObservationTriggersEnforceOnRegression(t *testing.T) {
	s := newHeteroSolver(3000, 4)
	b := New(Config{Strategy: StrategyFull}, s.Sys.Len())
	b.State = Observation
	st := s.Solve()
	b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	// Report a 30% regression.
	rep := b.AfterStep(s, StepTimes{CPU: st.CPUTime * 1.3, GPU: st.GPUTime * 1.3})
	if !rep.EnforcedS {
		t.Fatalf("regression did not trigger Enforce_S: %+v", rep)
	}
	if rep.LBTime <= 0 {
		t.Fatal("enforcement reported zero LB cost")
	}
}

func TestFineGrainedOptimizeImprovesPrediction(t *testing.T) {
	// Build an imbalanced tree (CPU far heavier than GPU), then check the
	// fine-grained pass improves the predicted compute time.
	sys := distrib.Plummer(6000, 1, 1, 5)
	cfg := core.Config{P: 6, S: 8, NumGPUs: 4, SkipFarField: true}
	cfg.CPU.Cores = 4
	s := core.NewSolver(sys, cfg)
	s.Solve() // observe coefficients
	cpu0, gpu0 := s.Predict()
	pred0 := cpu0
	if gpu0 > pred0 {
		pred0 = gpu0
	}
	b := New(Config{Strategy: StrategyFull}, sys.Len())
	var rep Report
	lb := b.fineGrainedOptimize(s, &rep)
	cpu1, gpu1 := s.Predict()
	pred1 := cpu1
	if gpu1 > pred1 {
		pred1 = gpu1
	}
	if pred1 > pred0*1.0001 {
		t.Fatalf("fine-grained made prediction worse: %g -> %g", pred0, pred1)
	}
	if lb < 0 {
		t.Fatal("negative LB time")
	}
	if err := s.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after FGO: %v", err)
	}
}

func TestStrategyStaticFreezes(t *testing.T) {
	s := newHeteroSolver(2000, 6)
	b := New(Config{Strategy: StrategyStatic}, s.Sys.Len())
	for i := 0; i < 40 && b.State == Search; i++ {
		st := s.Solve()
		b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	}
	if b.State != Frozen {
		t.Fatalf("static strategy in state %v after search", b.State)
	}
	sBefore := s.S()
	rep := b.AfterStep(s, StepTimes{CPU: 100, GPU: 1})
	if rep.Rebuilt || rep.EnforcedS || rep.FineGrain || s.S() != sBefore {
		t.Fatalf("frozen balancer acted: %+v", rep)
	}
}

func TestGeomMid(t *testing.T) {
	if m := geomMid(4, 4096); m < 100 || m > 200 {
		t.Fatalf("geomMid(4,4096)=%d, want ~128", m)
	}
	if m := geomMid(7, 7); m != 7 {
		t.Fatalf("geomMid(7,7)=%d", m)
	}
	if m := geomMid(3, 5); m < 3 || m > 5 {
		t.Fatalf("geomMid out of range: %d", m)
	}
}

// TestWorkflowTransitions walks the §VII.B state machine explicitly:
// Search -> (times within switch threshold) -> Incremental ->
// (dominant unit flips) -> Observation -> (regression, enforce+predict
// insufficient) -> Incremental again.
func TestWorkflowTransitions(t *testing.T) {
	s := newHeteroSolver(3000, 8)
	b := New(Config{Strategy: StrategyFull}, s.Sys.Len())

	if b.State != Search {
		t.Fatalf("initial state %v", b.State)
	}
	// Feed a balanced step: search should finish immediately.
	rep := b.AfterStep(s, StepTimes{CPU: 1.0, GPU: 1.0})
	if b.State != Incremental {
		t.Fatalf("after balanced step: state %v, want incremental (rep %+v)", b.State, rep)
	}
	// CPU dominates: S must increase and state stays incremental.
	s0 := s.S()
	rep = b.AfterStep(s, StepTimes{CPU: 2.0, GPU: 1.0})
	if b.State != Incremental || rep.NewS <= s0 {
		t.Fatalf("incremental did not raise S: %+v (state %v)", rep, b.State)
	}
	// Dominance flips: enter observation.
	rep = b.AfterStep(s, StepTimes{CPU: 1.0, GPU: 2.0})
	if b.State != Observation {
		t.Fatalf("dominance flip did not enter observation: %v", b.State)
	}
	// Stable steps: nothing happens.
	rep = b.AfterStep(s, StepTimes{CPU: 1.0, GPU: 2.0})
	if rep.EnforcedS || rep.Rebuilt {
		t.Fatalf("observation acted on stable step: %+v", rep)
	}
	// Large regression: Enforce_S fires; with prediction still far off,
	// the balancer queues a return to incremental.
	rep = b.AfterStep(s, StepTimes{CPU: 10.0, GPU: 20.0})
	if !rep.EnforcedS {
		t.Fatalf("regression did not trigger enforcement: %+v", rep)
	}
}
