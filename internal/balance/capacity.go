package balance

import (
	"fmt"
	"math"

	"afmm/internal/telemetry"
)

// CapacitySensor is the optional Target surface for heterogeneous
// capacity awareness: the epoch increments on every device loss,
// derating, or restore, and capacity is the surviving devices' aggregate
// near-field interaction rate. Both solvers implement it; targets that
// don't are balanced purely from observed times.
type CapacitySensor interface {
	NearFieldCapacity() (epoch int64, capacity float64)
}

// noteCapacity folds a capacity epoch change into the balancer before the
// normal state step. A shift beyond RegressionFrac means the CPU/GPU
// balance point moved for a reason no tree edit caused, so the optimal S
// is stale: the full strategy re-enters Search bounded on the side of the
// old S the shift points to (capacity dropped -> the near field got
// slower -> search smaller S); the enforce strategy re-baselines its
// regression detector; the static strategy only records the event.
func (b *Balancer) noteCapacity(s Target, cs CapacitySensor) (r Report) {
	ep, c := cs.NearFieldCapacity()
	if !b.capSeen {
		b.capSeen, b.capEpoch, b.capVal = true, ep, c
		return r
	}
	if ep == b.capEpoch {
		return r
	}
	old := b.capVal
	b.capEpoch, b.capVal = ep, c
	b.rec().EmitEvent(telemetry.EventCapacity, ep, 0, c, old)
	r.Events = append(r.Events, fmt.Sprintf("capacity shift: %.4g -> %.4g (epoch %d)", old, c, ep))
	var frac float64
	if old > 0 {
		frac = math.Abs(c-old) / old
	}
	if frac <= b.Cfg.RegressionFrac {
		return r
	}
	switch b.Cfg.Strategy {
	case StrategyStatic:
		// Strategy 1 never re-balances; the event is still recorded so
		// trajectories show what it ignored.
	case StrategyEnforce:
		b.haveBest = false
		r.Events = append(r.Events, "capacity: reset best")
	default:
		cur := s.S()
		if c < old {
			b.loS, b.hiS = b.Cfg.MinS, cur
		} else {
			b.loS, b.hiS = cur, b.Cfg.MaxS
		}
		b.bestS, b.bestSComp = -1, 0
		b.haveBest = false
		b.setState(Search)
		r.Events = append(r.Events, fmt.Sprintf("capacity: re-search S in [%d,%d]", b.loS, b.hiS))
	}
	return r
}

// Snapshot is the balancer's serializable FSM state, captured for
// checkpoints so a restored simulation resumes in the state it was in
// (e.g. Observation with its best-time baseline) instead of re-running
// the whole search.
type Snapshot struct {
	State     State
	Best      float64
	HaveBest  bool
	LoS, HiS  int
	BestS     int
	BestSComp float64
	Dir       int
	PrevDom   int
	CapSeen   bool
	CapEpoch  int64
	CapVal    float64
}

// Export captures the balancer's current FSM state.
func (b *Balancer) Export() Snapshot {
	return Snapshot{
		State: b.State, Best: b.best, HaveBest: b.haveBest,
		LoS: b.loS, HiS: b.hiS, BestS: b.bestS, BestSComp: b.bestSComp,
		Dir: b.dir, PrevDom: b.prevDom,
		CapSeen: b.capSeen, CapEpoch: b.capEpoch, CapVal: b.capVal,
	}
}

// Import restores a previously exported FSM state.
func (b *Balancer) Import(sn Snapshot) {
	b.State = sn.State
	b.best, b.haveBest = sn.Best, sn.HaveBest
	b.loS, b.hiS = sn.LoS, sn.HiS
	b.bestS, b.bestSComp = sn.BestS, sn.BestSComp
	b.dir, b.prevDom = sn.Dir, sn.PrevDom
	b.capSeen, b.capEpoch, b.capVal = sn.CapSeen, sn.CapEpoch, sn.CapVal
}
