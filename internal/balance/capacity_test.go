package balance

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/octree"
	"afmm/internal/telemetry"
)

// capTarget is a scriptedTarget that also reports scripted near-field
// capacity (a CapacitySensor).
type capTarget struct {
	scriptedTarget
	epoch int64
	cap_  float64
}

func (t *capTarget) NearFieldCapacity() (int64, float64) { return t.epoch, t.cap_ }

func newCapTarget(t *testing.T, s int, predicts [][2]float64) *capTarget {
	t.Helper()
	sys := distrib.Plummer(2000, 1, 1, 7)
	return &capTarget{
		scriptedTarget: scriptedTarget{
			tr:       octree.Build(sys, octree.Config{S: s}),
			sys:      sys,
			predicts: predicts,
		},
		cap_: 100,
	}
}

// TestCapacityLossReentersSearch: in Observation, a capacity drop beyond
// RegressionFrac re-enters Search bounded below the current S (the near
// field got slower, so the optimum moved toward smaller leaves), and the
// event log shows capacity -> state -> probe in order.
func TestCapacityLossReentersSearch(t *testing.T) {
	tgt := newCapTarget(t, 32, [][2]float64{{1, 1}})
	rec := telemetry.New(telemetry.Options{Keep: true})
	b := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 256, Rec: rec}, tgt.sys.Len())
	b.Import(Snapshot{State: Observation, Best: 1.0, HaveBest: true})

	// Step 0: baseline capacity is recorded; stable times, no events.
	rec.StartStep(0)
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
	rec.EndStep()

	// Step 1: a device died — capacity halves, the GPU side now dominates.
	tgt.epoch, tgt.cap_ = 1, 50
	rec.StartStep(1)
	rep := b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 2})
	rec.EndStep()

	if b.State != Search {
		t.Fatalf("state after capacity loss = %v, want Search", b.State)
	}
	if b.loS != 4 || b.hiS >= 32 {
		t.Fatalf("search bounds [%d,%d], want [4,<32] (directional, below old S)", b.loS, b.hiS)
	}
	if !rep.Rebuilt {
		t.Fatalf("re-entered search did not probe: %+v", rep)
	}
	steps := rec.Steps()
	if len(steps[0].Events) != 0 {
		t.Fatalf("baseline step emitted events: %v", steps[0].Events)
	}
	got := eventKinds(steps[1].Events)
	if !kindsEqual(got, telemetry.EventCapacity, telemetry.EventState,
		telemetry.EventSearchProbe, telemetry.EventRebuild, telemetry.EventSChange) {
		t.Fatalf("step 1 events = %v", got)
	}
	if e := steps[1].Events[0]; e.A != 1 || e.FA != 50 || e.FB != 100 {
		t.Fatalf("capacity event payload = %+v, want epoch 1, 100 -> 50", e)
	}
	if e := steps[1].Events[1]; State(e.A) != Observation || State(e.B) != Search {
		t.Fatalf("transition = %v -> %v, want observation -> search", State(e.A), State(e.B))
	}
}

// TestCapacityGainSearchesUpward: a restored/added device bounds the
// re-search above the current S.
func TestCapacityGainSearchesUpward(t *testing.T) {
	tgt := newCapTarget(t, 32, [][2]float64{{1, 1}})
	b := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 256}, tgt.sys.Len())
	b.Import(Snapshot{State: Observation, Best: 1.0, HaveBest: true})
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
	tgt.epoch, tgt.cap_ = 1, 200
	b.AfterStep(tgt, StepTimes{CPU: 2, GPU: 1})
	if b.State != Search {
		t.Fatalf("state = %v, want Search", b.State)
	}
	if b.loS < 32 || b.hiS != 256 {
		t.Fatalf("search bounds [%d,%d], want [>=32,256]", b.loS, b.hiS)
	}
}

// TestCapacitySmallShiftIgnored: shifts within RegressionFrac leave the
// state machine alone (the event is still logged).
func TestCapacitySmallShiftIgnored(t *testing.T) {
	tgt := newCapTarget(t, 32, [][2]float64{{1, 1}})
	rec := telemetry.New(telemetry.Options{Keep: true})
	b := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 256, Rec: rec}, tgt.sys.Len())
	b.Import(Snapshot{State: Observation, Best: 1.0, HaveBest: true})
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
	tgt.epoch, tgt.cap_ = 1, 97 // 3% < RegressionFrac 5%
	rec.StartStep(1)
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
	rec.EndStep()
	if b.State != Observation {
		t.Fatalf("state = %v, want Observation (shift within tolerance)", b.State)
	}
	got := eventKinds(rec.Steps()[0].Events)
	if !kindsEqual(got, telemetry.EventCapacity) {
		t.Fatalf("events = %v, want just the capacity record", got)
	}
}

// TestCapacityStrategies: the static strategy only records the event; the
// enforce strategy re-baselines its regression detector.
func TestCapacityStrategies(t *testing.T) {
	tgt := newCapTarget(t, 32, [][2]float64{{1, 1}})
	b := New(Config{Strategy: StrategyStatic, MinS: 4, MaxS: 256}, tgt.sys.Len())
	b.Import(Snapshot{State: Frozen})
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
	tgt.epoch, tgt.cap_ = 1, 50
	b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 2})
	if b.State != Frozen {
		t.Fatalf("static strategy moved to %v on capacity loss", b.State)
	}

	tgt2 := newCapTarget(t, 32, [][2]float64{{1, 1}})
	b2 := New(Config{Strategy: StrategyEnforce, MinS: 4, MaxS: 256}, tgt2.sys.Len())
	b2.Import(Snapshot{State: Observation, Best: 0.1, HaveBest: true})
	b2.AfterStep(tgt2, StepTimes{CPU: 0.1, GPU: 0.1})
	tgt2.epoch, tgt2.cap_ = 1, 50
	// Compute doubled vs best, but the capacity note re-baselined first,
	// so this is a new baseline, not a regression -> no Enforce_S.
	rep := b2.AfterStep(tgt2, StepTimes{CPU: 0.1, GPU: 0.2})
	if b2.State != Observation || rep.EnforcedS {
		t.Fatalf("enforce strategy: state=%v enforced=%v, want re-baselined observation",
			b2.State, rep.EnforcedS)
	}
}

// TestSnapshotRoundTrip: Export/Import is lossless for the FSM state.
func TestSnapshotRoundTrip(t *testing.T) {
	b := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 256}, 1000)
	b.State = Incremental
	b.best, b.haveBest = 0.42, true
	b.loS, b.hiS, b.bestS, b.bestSComp = 8, 128, 48, 0.5
	b.dir, b.prevDom = -1, 1
	b.capSeen, b.capEpoch, b.capVal = true, 3, 123.4
	sn := b.Export()
	b2 := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 256}, 1000)
	b2.Import(sn)
	if b2.Export() != sn {
		t.Fatalf("round trip mismatch: %+v vs %+v", b2.Export(), sn)
	}
}
