package balance

// LBCostModel charges virtual time for the balancing operations themselves
// (tree rebuilds, Enforce_S walks, list rebuilds for prediction, and
// Collapse/PushDown batches), so the per-step totals of Figure 8 and the
// overhead percentages of Table II include the cost of balancing, not just
// its benefit. Costs scale with the work each operation touches and are
// divided over the virtual cores (construction and maintenance are
// task-parallel in the paper).
type LBCostModel struct {
	// PartitionPerBodyLevel: seconds to route one body down one level
	// during a rebuild or repartition.
	PartitionPerBodyLevel float64
	// RefillPerBodyLevel: seconds to re-bin one body down one level of
	// the existing tree.
	RefillPerBodyLevel float64
	// ListPerPair: seconds per interaction-list pair visited during the
	// dual traversal that prediction requires.
	ListPerPair float64
	// WalkPerNode: seconds per visible node for tree walks.
	WalkPerNode float64
	// ParallelEff discounts the core count for these memory-bound phases.
	ParallelEff float64
}

func (m *LBCostModel) setDefaults() {
	if m.PartitionPerBodyLevel <= 0 {
		m.PartitionPerBodyLevel = 12e-9
	}
	if m.RefillPerBodyLevel <= 0 {
		m.RefillPerBodyLevel = 18e-9
	}
	if m.ListPerPair <= 0 {
		m.ListPerPair = 60e-9
	}
	if m.WalkPerNode <= 0 {
		m.WalkPerNode = 40e-9
	}
	if m.ParallelEff <= 0 {
		m.ParallelEff = 0.7
	}
}

func (m *LBCostModel) cores(s Target) float64 {
	k := float64(s.Cores())
	if k < 1 {
		k = 1
	}
	return k * m.ParallelEff
}

// avgLeafDepth returns the body-weighted mean visible-leaf depth.
func avgLeafDepth(s Target) float64 {
	var sum, n float64
	t := s.Octree()
	t.WalkVisible(func(ni int32) {
		nd := &t.Nodes[ni]
		if nd.IsVisibleLeaf() {
			sum += float64(nd.Count()) * float64(nd.Level)
			n += float64(nd.Count())
		}
	})
	if n == 0 {
		return 0
	}
	return sum / n
}

// rebuildCost charges for a full tree rebuild: every body partitioned once
// per level of its final depth (estimated from the current tree).
func (m LBCostModel) rebuildCost(s Target) float64 {
	depth := avgLeafDepth(s) + 1
	return float64(s.System().Len()) * depth * m.PartitionPerBodyLevel / m.cores(s)
}

// RefillCost charges for re-binning all bodies into the existing
// structure; exported for the simulation driver, which performs a refill
// every step for every strategy.
func (m LBCostModel) RefillCost(s Target) float64 {
	depth := avgLeafDepth(s) + 1
	return float64(s.System().Len()) * depth * m.RefillPerBodyLevel / m.cores(s)
}

// enforceCost charges for the Enforce_S walk plus its repartitions.
func (m LBCostModel) enforceCost(s Target, collapses, pushdowns int) float64 {
	st := s.Octree().ComputeStats()
	walk := float64(st.VisibleNodes) * m.WalkPerNode
	// A pushdown repartitions roughly S bodies one level; collapses only
	// flip flags.
	part := float64(pushdowns) * float64(s.S()) * m.PartitionPerBodyLevel
	return (walk + part) / m.cores(s)
}

// predictCost charges for one prediction: the list maintenance the
// prediction actually performed — the dual-traversal pair visits reported
// by the tree, which are zero for a cache hit, the local repair size
// after a small edit batch, and the full traversal only when the lists
// were really rebuilt — plus the counting walk.
func (m LBCostModel) predictCost(s Target) float64 {
	st := s.Octree().ComputeStats()
	pairs := float64(s.Octree().LastListWork().Pairs)
	return (pairs*m.ListPerPair + float64(st.VisibleNodes)*m.WalkPerNode) / m.cores(s)
}

// modifyCost charges for applying (or reverting) a Collapse/PushDown batch.
func (m LBCostModel) modifyCost(s Target, batch []int32) float64 {
	var bodies float64
	t := s.Octree()
	for _, ni := range batch {
		bodies += float64(t.Nodes[ni].Count())
	}
	return bodies * m.PartitionPerBodyLevel / m.cores(s)
}
