package balance

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/telemetry"
)

// scriptedTarget is a balance.Target over a real octree whose Predict
// answers come from a script, so a test can steer the balancer through an
// exact state trajectory and assert the emitted event sequence.
type scriptedTarget struct {
	tr       *octree.Tree
	sys      *particle.System
	predicts [][2]float64 // popped per Predict call; last value sticks
}

func (t *scriptedTarget) S() int           { return t.tr.Cfg.S }
func (t *scriptedTarget) Rebuild(newS int) { t.tr.Rebuild(newS) }
func (t *scriptedTarget) EnforceS() (int, int) {
	return t.tr.EnforceS()
}
func (t *scriptedTarget) Predict() (float64, float64) {
	p := t.predicts[0]
	if len(t.predicts) > 1 {
		t.predicts = t.predicts[1:]
	}
	return p[0], p[1]
}
func (t *scriptedTarget) Octree() *octree.Tree     { return t.tr }
func (t *scriptedTarget) System() *particle.System { return t.sys }
func (t *scriptedTarget) Cores() int               { return 10 }

func eventKinds(evs []telemetry.Event) []telemetry.EventKind {
	out := make([]telemetry.EventKind, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}

func kindsEqual(got []telemetry.EventKind, want ...telemetry.EventKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestBalancerEventTrajectory scripts one full pass through the state
// machine — Search binary-search probe, switch to Incremental, an
// incremental nudge, the dominant-unit flip into Observation (with
// FineGrainedOptimize), and an Observation regression that triggers
// Enforce_S, prediction checks, a fine-grained attempt, and the fallback
// to Incremental — and asserts the typed event sequence the recorder
// sees at every step, not just the final S.
func TestBalancerEventTrajectory(t *testing.T) {
	sys := distrib.Plummer(2000, 1, 1, 7)
	tgt := &scriptedTarget{
		tr:  octree.Build(sys, octree.Config{S: 32}),
		sys: sys,
		predicts: [][2]float64{
			// step 4 (dom flip -> FineGrainedOptimize):
			{0.5, 1.0},  // FGO baseline
			{0.5, 0.9},  // batch 1: improves -> accepted
			{0.5, 0.95}, // batch 2: regresses -> reverted, loop ends
			// step 5 (observation regression):
			{3.0, 0}, // post-enforce prediction: above threshold
			{2.9, 0}, // FGO baseline
			{2.5, 0}, // batch 1: improves -> accepted
			{2.6, 0}, // batch 2: regresses -> reverted
			{2.5, 0}, // post-FGO prediction: still above threshold
		},
	}
	rec := telemetry.New(telemetry.Options{Keep: true})
	b := New(Config{
		Strategy: StrategyFull,
		MinS:     4, MaxS: 256,
		FineGrainBatch:    2,
		MaxFineGrainIters: 4,
		Rec:               rec,
	}, sys.Len())

	step := func(i int, cpu, gpu float64) Report {
		rec.StartStep(i)
		rep := b.AfterStep(tgt, StepTimes{CPU: cpu, GPU: gpu})
		rec.EndStep()
		return rep
	}

	// Step 0: Search, CPU-dominated and far from balance -> binary-search
	// probe. lo becomes 33, probe = geomMid(33, 256) = 92.
	rep := step(0, 5, 1)
	if b.State != Search || !rep.Rebuilt || rep.NewS != 92 {
		t.Fatalf("step 0: want Search probe to S=92, got state=%v rebuilt=%v S=%d",
			b.State, rep.Rebuilt, rep.NewS)
	}

	// Step 1: times close -> search settles on the best S seen (the probe
	// itself, so no extra rebuild) and hands over to Incremental.
	rep = step(1, 1.2, 1.1)
	if b.State != Incremental || rep.Rebuilt {
		t.Fatalf("step 1: want switch to Incremental without rebuild, got state=%v rebuilt=%v",
			b.State, rep.Rebuilt)
	}

	// Step 2: still CPU-dominated -> one incremental nudge up
	// (92 + max(1, 92/8) = 103).
	rep = step(2, 1.2, 1.0)
	if b.State != Incremental || !rep.Rebuilt || rep.NewS != 103 {
		t.Fatalf("step 2: want nudge to S=103, got state=%v rebuilt=%v S=%d",
			b.State, rep.Rebuilt, rep.NewS)
	}

	// Step 3: dominant unit flips (GPU now slower) outside the switch
	// window -> FineGrainedOptimize runs, then Observation.
	rep = step(3, 0.5, 1.0)
	if b.State != Observation || !rep.FineGrain {
		t.Fatalf("step 3: want FGO + Observation, got state=%v finegrain=%v",
			b.State, rep.FineGrain)
	}

	// Step 4: >5%% regression over the best (1.0) -> Enforce_S, prediction
	// above threshold, FGO attempt, still above threshold -> fall back to
	// Incremental.
	rep = step(4, 2.0, 0)
	if b.State != Incremental || !rep.EnforcedS || !rep.FineGrain {
		t.Fatalf("step 4: want enforce + FGO + fallback to Incremental, got state=%v %+v",
			b.State, rep)
	}

	steps := rec.Steps()
	if len(steps) != 5 {
		t.Fatalf("kept %d step records, want 5", len(steps))
	}
	check := func(step int, want ...telemetry.EventKind) {
		t.Helper()
		got := eventKinds(steps[step].Events)
		if !kindsEqual(got, want...) {
			t.Fatalf("step %d events = %v, want %v", step, got, want)
		}
	}
	check(0, telemetry.EventSearchProbe, telemetry.EventRebuild, telemetry.EventSChange)
	check(1, telemetry.EventState) // search -> incremental
	check(2, telemetry.EventNudge, telemetry.EventRebuild, telemetry.EventSChange)
	check(3, telemetry.EventDomFlip, telemetry.EventFineGrain, telemetry.EventState)
	check(4, telemetry.EventRegression, telemetry.EventEnforceS,
		telemetry.EventPrediction, telemetry.EventFineGrain,
		telemetry.EventPrediction, telemetry.EventState)

	// Spot-check payloads: the probe S, the nudge endpoints, the state
	// transitions, and the regression pair.
	if e := steps[0].Events[0]; e.A != 92 {
		t.Fatalf("search probe S = %d, want 92", e.A)
	}
	if e := steps[2].Events[0]; e.A != 92 || e.B != 103 {
		t.Fatalf("nudge = %d -> %d, want 92 -> 103", e.A, e.B)
	}
	if e := steps[1].Events[0]; State(e.A) != Search || State(e.B) != Incremental {
		t.Fatalf("step 1 transition = %v -> %v", State(e.A), State(e.B))
	}
	if e := steps[3].Events[2]; State(e.A) != Incremental || State(e.B) != Observation {
		t.Fatalf("step 3 transition = %v -> %v", State(e.A), State(e.B))
	}
	if e := steps[4].Events[0]; e.FA != 2.0 || e.FB != 1.0 {
		t.Fatalf("regression observed/best = %g/%g, want 2/1", e.FA, e.FB)
	}
	if e := steps[4].Events[5]; State(e.A) != Observation || State(e.B) != Incremental {
		t.Fatalf("step 4 transition = %v -> %v", State(e.A), State(e.B))
	}

	// The FGO and enforcement work is also visible as tree-edit counters
	// and spans.
	if steps[3].Pushdowns == 0 {
		t.Fatalf("step 3 FGO accepted a pushdown batch but Pushdowns=0")
	}
	var sawFG, sawEnf, sawPred bool
	for _, sp := range steps[4].Spans {
		switch sp.Kind {
		case telemetry.SpanFineGrain:
			sawFG = true
		case telemetry.SpanEnforceS:
			sawEnf = true
		case telemetry.SpanPredict:
			sawPred = true
		}
	}
	if !sawFG || !sawEnf || !sawPred {
		t.Fatalf("step 4 spans missing finegrain/enforce/predict: %v %v %v",
			sawFG, sawEnf, sawPred)
	}
}

// TestBalancerEventsSilentWhenStable: a stable observation run emits no
// events at all.
func TestBalancerEventsSilentWhenStable(t *testing.T) {
	sys := distrib.Plummer(500, 1, 1, 9)
	tgt := &scriptedTarget{
		tr:       octree.Build(sys, octree.Config{S: 32}),
		sys:      sys,
		predicts: [][2]float64{{1, 1}},
	}
	rec := telemetry.New(telemetry.Options{Keep: true})
	b := New(Config{Strategy: StrategyFull, Rec: rec}, sys.Len())
	b.State = Observation
	for i := 0; i < 5; i++ {
		rec.StartStep(i)
		b.AfterStep(tgt, StepTimes{CPU: 1, GPU: 1})
		rec.EndStep()
	}
	for _, sr := range rec.Steps() {
		if len(sr.Events) != 0 {
			t.Fatalf("stable observation emitted events: %v", sr.Events)
		}
	}
}
