package balance

import (
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

// TestDeviceLossResplitAndResearch is the end-to-end acceptance
// trajectory: a real two-device solver under the full balancing strategy
// loses a device mid-run. The cluster must re-split the near field over
// the survivor, the balancer must see the capacity epoch change and
// re-enter Search on S, and the run must keep producing finite steps.
func TestDeviceLossResplitAndResearch(t *testing.T) {
	const faultStep = 6
	sys := distrib.UniformCube(3000, 10, 11)
	sch, err := fault.Parse("gpu1:failstop@step6")
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New(telemetry.Options{Keep: true})
	s := core.NewSolver(sys, core.Config{
		P: 4, S: 48, NumGPUs: 2,
		Faults:   fault.NewInjector(sch),
		Watchdog: vgpu.WatchdogConfig{ChunkRows: 8},
		Rec:      rec,
		Validate: true,
	})
	b := New(Config{Strategy: StrategyFull, MinS: 4, MaxS: 512, Rec: rec}, sys.Len())
	// Start in Observation with the pre-loss timing as baseline, as a
	// long-settled run would be.
	b.Import(Snapshot{State: Observation})

	var stateAtFault State
	for step := 0; step < faultStep+3; step++ {
		rec.StartStep(step)
		st, err := s.SolveChecked()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step == faultStep-1 {
			stateAtFault = b.State
		}
		b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
		rec.EndStep()
	}

	if stateAtFault != Observation {
		t.Fatalf("balancer left Observation before the fault: %v", stateAtFault)
	}
	// Re-split: the survivor owns the whole near field.
	if alive := s.Cluster.AliveDevices(); alive != 1 {
		t.Fatalf("alive devices = %d, want 1", alive)
	}
	rep := s.Cluster.LastReport()
	if rep.DeadDevices != 1 {
		t.Fatalf("dead devices = %d, want 1", rep.DeadDevices)
	}
	// Re-search: the fault step's event log contains the capacity shift
	// and the Observation -> Search transition.
	steps := rec.Steps()
	var sawCapacity, sawToSearch bool
	for _, e := range steps[faultStep].Events {
		switch e.Kind {
		case telemetry.EventCapacity:
			sawCapacity = true
			if e.FA >= e.FB {
				t.Fatalf("capacity did not drop: %g -> %g", e.FB, e.FA)
			}
		case telemetry.EventState:
			if State(e.B) == Search {
				sawToSearch = true
			}
		}
	}
	if !sawCapacity || !sawToSearch {
		t.Fatalf("fault step events missing capacity/search transition: %v",
			steps[faultStep].Events)
	}
	if b.State == Frozen {
		t.Fatalf("full strategy ended frozen")
	}
}
