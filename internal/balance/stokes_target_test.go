package balance

import (
	"math/rand"
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/stokes"
	"afmm/internal/vgpu"
)

// The balancer must drive any Target; the Stokes solver is the second
// implementation (used by the Figure 10 ablation).
func TestBalancerDrivesStokesSolver(t *testing.T) {
	sys := distrib.UniformCube(3000, 1, 11)
	rng := rand.New(rand.NewSource(12))
	for i := range sys.Aux {
		sys.Aux[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	cfg := stokes.Config{P: 4, S: 64, NumGPUs: 2, GPUSpec: vgpu.ScaledSpec(1.0 / 64), SkipFarField: true}
	cfg.CPU.Cores = 10
	s := stokes.NewSolver(sys, cfg)
	var tgt Target = s
	if tgt.S() != 64 || tgt.Cores() != 10 {
		t.Fatalf("target surface wrong: S=%d cores=%d", tgt.S(), tgt.Cores())
	}

	b := New(Config{Strategy: StrategyFull}, sys.Len())
	for i := 0; i < 40 && b.State == Search; i++ {
		st := s.Solve()
		b.AfterStep(s, StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
	}
	if b.State == Search {
		t.Fatal("search did not converge on the Stokes target")
	}
	if err := s.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Prediction must be wired through the Stokes cost model.
	cpu, gpu := tgt.Predict()
	if cpu <= 0 || gpu <= 0 {
		t.Fatalf("stokes prediction degenerate: %v %v", cpu, gpu)
	}
	// FGO through the interface keeps the tree valid.
	var rep Report
	b.fineGrainedOptimize(tgt, &rep)
	if err := s.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after FGO on stokes target: %v", err)
	}
}
