// Package checkpoint serializes simulation state so long runs can be
// paused, archived and resumed deterministically — including after a
// failed step, which is how the step loop recovers from device faults. A
// snapshot captures the bodies (in storage order, so the decomposition
// rebuilds identically), the current leaf-capacity parameter, the
// balancer's FSM state (so a restored run resumes in Observation instead
// of re-running the search), and step bookkeeping.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"afmm/internal/balance"
	"afmm/internal/geom"
	"afmm/internal/particle"
)

// Version tags the snapshot encoding. Version 2 added the balancer state;
// version-1 snapshots (no balancer) are still restored.
const Version = 2

// Snapshot is a serializable simulation state.
type Snapshot struct {
	Version int
	N       int
	Pos     []geom.Vec3
	Vel     []geom.Vec3
	Aux     []geom.Vec3
	Mass    []float64
	Index   []int
	// S is the leaf capacity in effect when the snapshot was taken.
	S int
	// Step and Time locate the snapshot in the run.
	Step int
	Time float64
	// HasBal marks Bal as meaningful: the load balancer's FSM state at
	// capture time (version >= 2).
	HasBal bool
	Bal    balance.Snapshot
}

// Capture copies the system state into a snapshot.
func Capture(sys *particle.System, s, step int, time float64) Snapshot {
	return Snapshot{
		Version: Version,
		N:       sys.Len(),
		Pos:     append([]geom.Vec3(nil), sys.Pos...),
		Vel:     append([]geom.Vec3(nil), sys.Vel...),
		Aux:     append([]geom.Vec3(nil), sys.Aux...),
		Mass:    append([]float64(nil), sys.Mass...),
		Index:   append([]int(nil), sys.Index...),
		S:       s,
		Step:    step,
		Time:    time,
	}
}

// CaptureState copies the system and the balancer's FSM state into a
// snapshot. A nil balancer produces a body-only snapshot (HasBal false).
func CaptureState(sys *particle.System, s, step int, time float64, b *balance.Balancer) Snapshot {
	sn := Capture(sys, s, step, time)
	if b != nil {
		sn.HasBal = true
		sn.Bal = b.Export()
	}
	return sn
}

// CaptureInto copies the system state into sn, reusing sn's slices when
// they have capacity. This is the allocation-free form of Capture for
// step loops that snapshot every step (double-buffered streaming writes):
// after the first two captures the per-step cost is pure memcpy.
func CaptureInto(sn *Snapshot, sys *particle.System, s, step int, time float64) {
	sn.Version = Version
	sn.N = sys.Len()
	sn.Pos = append(sn.Pos[:0], sys.Pos...)
	sn.Vel = append(sn.Vel[:0], sys.Vel...)
	sn.Aux = append(sn.Aux[:0], sys.Aux...)
	sn.Mass = append(sn.Mass[:0], sys.Mass...)
	sn.Index = append(sn.Index[:0], sys.Index...)
	sn.S = s
	sn.Step = step
	sn.Time = time
	sn.HasBal = false
	sn.Bal = balance.Snapshot{}
}

// CaptureStateInto is CaptureInto plus the balancer's FSM state (see
// CaptureState).
func CaptureStateInto(sn *Snapshot, sys *particle.System, s, step int, time float64, b *balance.Balancer) {
	CaptureInto(sn, sys, s, step, time)
	if b != nil {
		sn.HasBal = true
		sn.Bal = b.Export()
	}
}

// Restore materializes a particle system from the snapshot.
func (sn Snapshot) Restore() (*particle.System, error) {
	if sn.Version < 1 || sn.Version > Version {
		return nil, fmt.Errorf("checkpoint: version %d unsupported (want <= %d)",
			sn.Version, Version)
	}
	if len(sn.Pos) != sn.N || len(sn.Vel) != sn.N || len(sn.Mass) != sn.N ||
		len(sn.Index) != sn.N || len(sn.Aux) != sn.N {
		return nil, fmt.Errorf("checkpoint: inconsistent snapshot (n=%d)", sn.N)
	}
	sys := particle.New(sn.N)
	copy(sys.Pos, sn.Pos)
	copy(sys.Vel, sn.Vel)
	copy(sys.Aux, sn.Aux)
	copy(sys.Mass, sn.Mass)
	copy(sys.Index, sn.Index)
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return sys, nil
}

// Write encodes the snapshot with gob.
func Write(w io.Writer, sn Snapshot) error {
	return gob.NewEncoder(w).Encode(sn)
}

// Read decodes a snapshot.
func Read(r io.Reader) (Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(r).Decode(&sn); err != nil {
		return Snapshot{}, err
	}
	return sn, nil
}

// WriteFile atomically persists a snapshot: it encodes into a temporary
// file in the target directory, fsyncs, and renames over the destination,
// so a crash mid-write never leaves a truncated checkpoint where a good
// one stood.
func WriteFile(path string, sn Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, sn); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: encode %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: commit %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a snapshot written by WriteFile.
func ReadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sn, err := Read(f)
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return sn, nil
}
