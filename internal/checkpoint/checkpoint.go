// Package checkpoint serializes simulation state so long runs can be
// paused, archived and resumed deterministically. A snapshot captures the
// bodies (in storage order, so the decomposition rebuilds identically),
// the current leaf-capacity parameter, and step bookkeeping.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"

	"afmm/internal/geom"
	"afmm/internal/particle"
)

// Version tags the snapshot encoding.
const Version = 1

// Snapshot is a serializable simulation state.
type Snapshot struct {
	Version int
	N       int
	Pos     []geom.Vec3
	Vel     []geom.Vec3
	Aux     []geom.Vec3
	Mass    []float64
	Index   []int
	// S is the leaf capacity in effect when the snapshot was taken.
	S int
	// Step and Time locate the snapshot in the run.
	Step int
	Time float64
}

// Capture copies the system state into a snapshot.
func Capture(sys *particle.System, s, step int, time float64) Snapshot {
	return Snapshot{
		Version: Version,
		N:       sys.Len(),
		Pos:     append([]geom.Vec3(nil), sys.Pos...),
		Vel:     append([]geom.Vec3(nil), sys.Vel...),
		Aux:     append([]geom.Vec3(nil), sys.Aux...),
		Mass:    append([]float64(nil), sys.Mass...),
		Index:   append([]int(nil), sys.Index...),
		S:       s,
		Step:    step,
		Time:    time,
	}
}

// Restore materializes a particle system from the snapshot.
func (sn Snapshot) Restore() (*particle.System, error) {
	if sn.Version != Version {
		return nil, fmt.Errorf("checkpoint: version %d unsupported (want %d)",
			sn.Version, Version)
	}
	if len(sn.Pos) != sn.N || len(sn.Vel) != sn.N || len(sn.Mass) != sn.N ||
		len(sn.Index) != sn.N || len(sn.Aux) != sn.N {
		return nil, fmt.Errorf("checkpoint: inconsistent snapshot (n=%d)", sn.N)
	}
	sys := particle.New(sn.N)
	copy(sys.Pos, sn.Pos)
	copy(sys.Vel, sn.Vel)
	copy(sys.Aux, sn.Aux)
	copy(sys.Mass, sn.Mass)
	copy(sys.Index, sn.Index)
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return sys, nil
}

// Write encodes the snapshot with gob.
func Write(w io.Writer, sn Snapshot) error {
	return gob.NewEncoder(w).Encode(sn)
}

// Read decodes a snapshot.
func Read(r io.Reader) (Snapshot, error) {
	var sn Snapshot
	if err := gob.NewDecoder(r).Decode(&sn); err != nil {
		return Snapshot{}, err
	}
	return sn, nil
}
