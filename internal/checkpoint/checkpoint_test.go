package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"afmm/internal/balance"
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/particle"
)

// kickDrift is sim.KickDrift, inlined: the sim package now imports
// checkpoint (for step-level recovery), so the test can't.
func kickDrift(sys *particle.System, dt float64) {
	for i := range sys.Pos {
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
}

func TestRoundTrip(t *testing.T) {
	sys := distrib.Plummer(500, 1, 1, 42)
	sys.Aux[3].X = 7 // exercise the aux channel
	sn := Capture(sys, 48, 17, 0.0017)
	var buf bytes.Buffer
	if err := Write(&buf, sn); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.S != 48 || got.Step != 17 || got.Time != 0.0017 {
		t.Fatalf("metadata lost: %+v", got)
	}
	restored, err := got.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Pos {
		if restored.Pos[i] != sys.Pos[i] || restored.Vel[i] != sys.Vel[i] ||
			restored.Mass[i] != sys.Mass[i] || restored.Index[i] != sys.Index[i] ||
			restored.Aux[i] != sys.Aux[i] {
			t.Fatalf("body %d not restored exactly", i)
		}
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	sys := distrib.Plummer(50, 1, 1, 1)
	sn := Capture(sys, 8, 0, 0)
	sn.Pos = sn.Pos[:10]
	if _, err := sn.Restore(); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	sn2 := Capture(sys, 8, 0, 0)
	sn2.Version = 99
	if _, err := sn2.Restore(); err == nil {
		t.Fatal("wrong version accepted")
	}
	sn3 := Capture(sys, 8, 0, 0)
	sn3.Index[0] = sn3.Index[1]
	if _, err := sn3.Restore(); err == nil {
		t.Fatal("corrupt permutation accepted")
	}
}

// TestResumeDeterminism: advancing A for 5+5 steps with a tree rebuild in
// the middle must equal advancing 5 steps, snapshotting (including the
// load balancer's FSM state), restoring into a fresh solver and a fresh
// balancer, and advancing 5 more. The resumed balancer must pick up in
// the captured state rather than re-running its search.
func TestResumeDeterminism(t *testing.T) {
	const dt = 1e-4
	mk := func() (*core.Solver, *balance.Balancer) {
		sys := distrib.Plummer(400, 1, 1, 9)
		s := core.NewSolver(sys, core.Config{P: 4, S: 16, NumGPUs: 1})
		b := balance.New(balance.Config{Strategy: balance.StrategyFull, MinS: 4, MaxS: 128},
			sys.Len())
		return s, b
	}
	step := func(s *core.Solver, b *balance.Balancer) {
		st := s.Solve()
		b.AfterStep(s, balance.StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
		kickDrift(s.Sys, dt)
		s.Refill()
	}

	// Continuous run with a mid-run rebuild (aligning the tree with what a
	// resumed run builds from scratch).
	a, ab := mk()
	for i := 0; i < 5; i++ {
		step(a, ab)
	}
	a.Rebuild(a.S())
	for i := 0; i < 5; i++ {
		step(a, ab)
	}

	// Snapshot/resume run.
	b, bb := mk()
	for i := 0; i < 5; i++ {
		step(b, bb)
	}
	var buf bytes.Buffer
	if err := Write(&buf, CaptureState(b.Sys, b.S(), 5, 5*dt, bb)); err != nil {
		t.Fatal(err)
	}
	sn, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sysC, err := sn.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !sn.HasBal {
		t.Fatal("snapshot lost the balancer state")
	}
	c := core.NewSolver(sysC, core.Config{P: 4, S: sn.S, NumGPUs: 1})
	cb := balance.New(balance.Config{Strategy: balance.StrategyFull, MinS: 4, MaxS: 128},
		sysC.Len())
	cb.Import(sn.Bal)
	if cb.State != bb.State {
		t.Fatalf("restored balancer state %v, want %v", cb.State, bb.State)
	}
	for i := 0; i < 5; i++ {
		step(c, cb)
	}

	if cb.State != ab.State {
		t.Fatalf("balancer states diverged after resume: %v vs %v", cb.State, ab.State)
	}
	accA := a.Sys.AccInInputOrder()
	accC := c.Sys.AccInInputOrder()
	posA := a.Sys.PhiInInputOrder()
	posC := c.Sys.PhiInInputOrder()
	for i := range accA {
		if accA[i] != accC[i] || posA[i] != posC[i] {
			t.Fatalf("resumed run diverged at body %d", i)
		}
	}
	if a.S() != c.S() {
		t.Fatalf("leaf capacity diverged after resume: %d vs %d", a.S(), c.S())
	}
}

// TestVersion1SnapshotStillRestores: pre-balancer snapshots load.
func TestVersion1SnapshotStillRestores(t *testing.T) {
	sys := distrib.Plummer(100, 1, 1, 4)
	sn := Capture(sys, 16, 3, 0.3)
	sn.Version = 1
	var buf bytes.Buffer
	if err := Write(&buf, sn); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasBal {
		t.Fatal("v1 snapshot claims balancer state")
	}
	if _, err := got.Restore(); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
}

// TestWriteFileAtomic: WriteFile replaces the destination atomically and
// leaves no temp droppings; ReadFile round-trips.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	sys := distrib.Plummer(80, 1, 1, 2)
	if err := WriteFile(path, Capture(sys, 16, 1, 0.1)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later snapshot; the old file must be replaced.
	if err := WriteFile(path, Capture(sys, 24, 2, 0.2)); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sn.S != 24 || sn.Step != 2 {
		t.Fatalf("stale snapshot survived: %+v", sn)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("missing checkpoint read succeeded")
	}
}
