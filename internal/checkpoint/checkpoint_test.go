package checkpoint

import (
	"bytes"
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	sys := distrib.Plummer(500, 1, 1, 42)
	sys.Aux[3].X = 7 // exercise the aux channel
	sn := Capture(sys, 48, 17, 0.0017)
	var buf bytes.Buffer
	if err := Write(&buf, sn); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.S != 48 || got.Step != 17 || got.Time != 0.0017 {
		t.Fatalf("metadata lost: %+v", got)
	}
	restored, err := got.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Pos {
		if restored.Pos[i] != sys.Pos[i] || restored.Vel[i] != sys.Vel[i] ||
			restored.Mass[i] != sys.Mass[i] || restored.Index[i] != sys.Index[i] ||
			restored.Aux[i] != sys.Aux[i] {
			t.Fatalf("body %d not restored exactly", i)
		}
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	sys := distrib.Plummer(50, 1, 1, 1)
	sn := Capture(sys, 8, 0, 0)
	sn.Pos = sn.Pos[:10]
	if _, err := sn.Restore(); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	sn2 := Capture(sys, 8, 0, 0)
	sn2.Version = 99
	if _, err := sn2.Restore(); err == nil {
		t.Fatal("wrong version accepted")
	}
	sn3 := Capture(sys, 8, 0, 0)
	sn3.Index[0] = sn3.Index[1]
	if _, err := sn3.Restore(); err == nil {
		t.Fatal("corrupt permutation accepted")
	}
}

// TestResumeDeterminism: advancing A for 5+5 steps with a tree rebuild in
// the middle must equal advancing 5 steps, snapshotting, restoring into a
// fresh solver (which rebuilds), and advancing 5 more.
func TestResumeDeterminism(t *testing.T) {
	const dt = 1e-4
	mk := func() *core.Solver {
		sys := distrib.Plummer(400, 1, 1, 9)
		return core.NewSolver(sys, core.Config{P: 4, S: 16, NumGPUs: 1})
	}
	step := func(s *core.Solver) {
		s.Solve()
		sim.KickDrift(s.Sys, dt)
		s.Refill()
	}

	// Continuous run with a mid-run rebuild.
	a := mk()
	for i := 0; i < 5; i++ {
		step(a)
	}
	a.Rebuild(16)
	for i := 0; i < 5; i++ {
		step(a)
	}

	// Snapshot/resume run.
	b := mk()
	for i := 0; i < 5; i++ {
		step(b)
	}
	var buf bytes.Buffer
	if err := Write(&buf, Capture(b.Sys, b.S(), 5, 5*dt)); err != nil {
		t.Fatal(err)
	}
	sn, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sysC, err := sn.Restore()
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewSolver(sysC, core.Config{P: 4, S: sn.S, NumGPUs: 1})
	for i := 0; i < 5; i++ {
		step(c)
	}

	accA := a.Sys.AccInInputOrder()
	accC := c.Sys.AccInInputOrder()
	posA := a.Sys.PhiInInputOrder()
	posC := c.Sys.PhiInInputOrder()
	for i := range accA {
		if accA[i] != accC[i] || posA[i] != posC[i] {
			t.Fatalf("resumed run diverged at body %d", i)
		}
	}
}
