package core
