package core

import (
	"math"

	"afmm/internal/expansion"
	"afmm/internal/octree"
)

// ErrorBound summarizes the a-priori truncation error of the current
// interaction lists: the classical per-pair bound (a/(d-a))^(p+1) for a
// multipole of radius a accepted at center distance d, aggregated over all
// V-list pairs.
type ErrorBound struct {
	// MaxPair is the worst single-pair relative truncation bound.
	MaxPair float64
	// MeanPair is the interaction-weighted mean bound.
	MeanPair float64
	// Pairs is the number of M2L pairs inspected.
	Pairs int
}

// EstimateError computes the truncation-error bound of the current tree
// and lists. It reflects the configured expansion order and the MAC: a
// smaller MAC or a larger P tightens both fields. BuildLists must be
// current (Solve and Predict leave it so).
func (s *Solver) EstimateError() ErrorBound {
	return TreeTruncationBound(s.Tree, s.Cfg.P)
}

// TreeTruncationBound is the solver-independent form of EstimateError: the
// a-priori truncation bound of a tree's current V lists at order p. The
// Stokes solver shares it for its NearFloat32 gate (its four harmonic
// passes carry the same per-pair Laplace truncation error).
func TreeTruncationBound(t *octree.Tree, p int) ErrorBound {
	var b ErrorBound
	var wsum, w float64
	sqrt3 := math.Sqrt(3)
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		for _, vi := range n.V {
			src := &t.Nodes[vi]
			a := sqrt3 * src.Box.Half
			// The evaluation points lie within the target cell, so the
			// effective distance is reduced by the target radius.
			d := n.Box.Center.Sub(src.Box.Center).Norm() - sqrt3*n.Box.Half
			e := expansion.TruncationError(p, a, d)
			if e > b.MaxPair {
				b.MaxPair = e
			}
			weight := float64(n.Count()) * float64(src.Count())
			wsum += e * weight
			w += weight
			b.Pairs++
		}
	})
	if w > 0 {
		b.MeanPair = wsum / w
	}
	return b
}
