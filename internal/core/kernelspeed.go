package core

import (
	"afmm/internal/expansion"
	"afmm/internal/kernels"
	"afmm/internal/telemetry"
)

// Kernel-speed layer: the shared M2L translation-class table and the
// gated float32 near field. Both are prepared once per Solve, before the
// near/far fork, so workers only ever read settled state.

// m2lRotCap bounds the shared rotation setups the table precomputes (the
// expensive per-angle Wigner stacks, ~8 KB each at p=8). The top
// pair-weighted angles cover most translations (~70% at 1024 on a
// Plummer tree at N=100k); the tail falls back to the per-workspace
// cache, which is the same bit-identical arithmetic.
const m2lRotCap = 1024

// m2lClassCap is a sanity bound on the class count itself (per-class cost
// is only a rot index plus 2p+2 radial powers, ~160 B at p=8).
const m2lClassCap = 1 << 20

// prepareM2LTable builds (or revalidates) the shared per-class M2L
// operator table for the current lists. The table replaces the
// per-workspace direction cache on the level-synchronous sweep: one
// Wigner/radial/phase setup per translation class, built in parallel and
// shared read-only by every worker, invalidated by the list epoch.
func (s *Solver) prepareM2LTable() {
	useTable := !s.Cfg.DisableM2LTable && s.Cfg.SweepMode == SweepLevelSync &&
		!s.Cfg.SkipFarField
	if !useTable {
		s.m2lTab, s.m2lCls = nil, nil
		s.m2lEpoch = 0
		return
	}
	rec := s.Cfg.Rec
	t := s.Tree
	rebuilt := false
	if s.m2lTab == nil || s.m2lEpoch != t.ListEpoch() {
		cls := t.M2LClasses()
		if cls.Classes() > m2lClassCap {
			// Degenerate geometry (almost no repeated directions): the
			// table would outgrow its payoff; fall back to the cache.
			s.m2lTab, s.m2lCls = nil, nil
			s.m2lEpoch = 0
			return
		}
		tok := rec.Begin(telemetry.SpanM2LTable, int32(cls.Classes()))
		if s.m2lTab == nil {
			s.m2lTab = expansion.NewM2LTable(s.Cfg.P)
		}
		nrot := s.m2lTab.Plan(cls.Dirs, cls.PairsPerClass, m2lRotCap)
		s.Cfg.Pool.ParallelRange(nrot, func(lo, hi int) {
			s.m2lTab.BuildRotRange(lo, hi)
		})
		s.m2lCls = cls
		s.m2lEpoch = t.ListEpoch()
		rebuilt = true
		rec.End(tok)
	}
	if rec.Enabled() && s.m2lCls != nil {
		rec.SetM2LTable(s.m2lCls.Classes(), s.m2lCls.Pairs,
			s.m2lCls.KeyHits, s.m2lCls.KeyMisses, rebuilt)
	}
}

// nearF32ErrorEstimate bounds the relative rounding error of the float32
// near field for the current schedule: per-pair forces are computed in
// float32 and accumulated per target, so the worst row's error grows like
// eps32 * n_src with n_src the row's total source count.
func (s *Solver) nearF32ErrorEstimate() float64 {
	t := s.Tree
	sch := t.NearField()
	var maxRow int64
	for r := range sch.Leaves {
		tn := t.Nodes[sch.Leaves[r]].Count()
		if tn == 0 {
			continue
		}
		if v := sch.Weights[r] / int64(tn); v > maxRow {
			maxRow = v
		}
	}
	return kernels.Eps32 * float64(maxRow)
}

// updateNearPrecision runs the NearFloat32 gate for this step: estimate
// the float32 rounding error of the current near-field schedule, compare
// it against the accuracy target (the user's Config.AccuracyTarget, or the
// a-priori truncation bound of the lists when unset), and activate or
// deactivate the float32 path. A violation while the option is on disables
// the path for the rest of the run (sticky), so a drifting system cannot
// oscillate across the bound. Every toggle pre-scales the cost model's P2P
// coefficient so the balancer re-converges without a mispredicted step.
func (s *Solver) updateNearPrecision() {
	rec := s.Cfg.Rec
	want := s.Cfg.NearFloat32 && !s.f32Blocked && !s.Cfg.SkipNearField
	if !want {
		if s.f32Active {
			s.f32Active = false
			s.Model.ScaleP2P(kernels.NearFloat32Speedup)
		}
		rec.SetNearPrecision(false)
		return
	}
	est := s.nearF32ErrorEstimate()
	target := s.Cfg.AccuracyTarget
	if target <= 0 {
		// Default target: the truncation error already being paid by the
		// far field (cached per list epoch — the walk is O(pairs)).
		if s.gateEpoch != s.Tree.ListEpoch() || s.gateBound == 0 {
			s.gateBound = s.EstimateError().MeanPair
			s.gateEpoch = s.Tree.ListEpoch()
		}
		target = s.gateBound
	}
	active := target > 0 && est <= target
	if !active && target > 0 {
		// Bound violated: sticky disable, reported once.
		s.f32Blocked = true
		rec.EmitEvent(telemetry.EventPrecision, 0, 1, est, target)
	}
	if active != s.f32Active {
		if active {
			s.Model.ScaleP2P(1 / kernels.NearFloat32Speedup)
			rec.EmitEvent(telemetry.EventPrecision, 1, 0, est, target)
		} else {
			s.Model.ScaleP2P(kernels.NearFloat32Speedup)
		}
		s.f32Active = active
	}
	rec.SetNearPrecision(s.f32Active)
}

// NearFloat32Active reports whether the last gate evaluation enabled the
// float32 near field (tests and benchmarks).
func (s *Solver) NearFloat32Active() bool { return s.f32Active }

// M2LTableStats returns the current class schedule stats (zero-valued
// when the table path is off or not yet built).
func (s *Solver) M2LTableStats() (classes int, pairs, keyHits, keyMisses int64) {
	if s.m2lCls == nil {
		return 0, 0, 0, 0
	}
	return s.m2lCls.Classes(), s.m2lCls.Pairs, s.m2lCls.KeyHits, s.m2lCls.KeyMisses
}
