package core

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/particle"
	"afmm/internal/telemetry"
)

// solveBoth runs two solvers on cloned systems — one with the class table,
// one without — and returns both systems for comparison.
func solveBoth(t *testing.T, sys *particle.System, cfg Config, steps int) (*particle.System, *particle.System) {
	t.Helper()
	sysA := sys.Clone()
	sysB := sys.Clone()
	cfgA := cfg
	cfgB := cfg
	cfgB.DisableM2LTable = true
	a := NewSolver(sysA, cfgA)
	b := NewSolver(sysB, cfgB)
	for i := 0; i < steps; i++ {
		a.Solve()
		b.Solve()
	}
	if a.M2LTableStats(); a.m2lTab == nil {
		t.Fatal("table solver did not build a class table")
	}
	if b.m2lTab != nil {
		t.Fatal("DisableM2LTable still built a table")
	}
	return sysA, sysB
}

// TestM2LTableSolveBitIdentical is the end-to-end bit-identity check: a
// whole solve through the class table must equal the per-workspace-cache
// solve exactly, potentials and accelerations alike.
func TestM2LTableSolveBitIdentical(t *testing.T) {
	for _, seed := range []int64{7, 19} {
		sys := distrib.Plummer(1500, 1, 1, seed)
		sysA, sysB := solveBoth(t, sys, Config{P: 8, S: 24}, 2)
		for i := range sysA.Phi {
			if sysA.Phi[i] != sysB.Phi[i] {
				t.Fatalf("seed %d: phi[%d] differs: %v vs %v", seed, i, sysA.Phi[i], sysB.Phi[i])
			}
			if sysA.Acc[i] != sysB.Acc[i] {
				t.Fatalf("seed %d: acc[%d] differs: %v vs %v", seed, i, sysA.Acc[i], sysB.Acc[i])
			}
		}
	}
}

// TestM2LTableStatsReported checks the schedule statistics surface through
// the solver accessor and the telemetry record.
func TestM2LTableStatsReported(t *testing.T) {
	rec := telemetry.New(telemetry.Options{Keep: true})
	sys := distrib.Plummer(1200, 1, 1, 3)
	s := NewSolver(sys, Config{P: 6, S: 24, Rec: rec})
	rec.StartStep(0)
	s.Solve()
	rec.EndStep()
	classes, pairs, hits, misses := s.M2LTableStats()
	if classes <= 0 || pairs <= 0 {
		t.Fatalf("no table stats: classes=%d pairs=%d", classes, pairs)
	}
	if hits+misses != pairs {
		t.Fatalf("hits %d + misses %d != pairs %d", hits, misses, pairs)
	}
	steps := rec.Steps()
	if len(steps) != 1 {
		t.Fatalf("expected 1 step record, got %d", len(steps))
	}
	r := steps[0]
	if r.M2LClasses != classes || r.M2LPairs != pairs {
		t.Fatalf("record (%d, %d) disagrees with stats (%d, %d)",
			r.M2LClasses, r.M2LPairs, classes, pairs)
	}
	if !r.M2LRebuilt {
		t.Fatal("first solve should report a table rebuild")
	}
}

// TestNearFloat32GateActivates: with a loose accuracy target the float32
// near field activates, stays within the requested error against the
// float64 reference, and reports through telemetry.
func TestNearFloat32GateActivates(t *testing.T) {
	sys := distrib.Plummer(900, 1, 1, 13)
	ref := sys.Clone()
	rs := NewSolver(ref, Config{P: 6, S: 24})
	rs.Solve()

	rec := telemetry.New(telemetry.Options{Keep: true})
	s := NewSolver(sys, Config{P: 6, S: 24, NearFloat32: true, AccuracyTarget: 1e-3, Rec: rec})
	rec.StartStep(0)
	s.Solve()
	rec.EndStep()
	if !s.NearFloat32Active() {
		t.Fatal("gate did not activate under a loose target")
	}
	steps := rec.Steps()
	if len(steps) != 1 || !steps[0].NearF32 {
		t.Fatal("telemetry did not record the active float32 near field")
	}
	var enabled bool
	for _, e := range steps[0].Events {
		if e.Kind == telemetry.EventPrecision && e.A == 1 {
			enabled = true
		}
	}
	if !enabled {
		t.Fatal("no precision enable event")
	}
	// Accuracy: the far field is untouched, so total error vs the float64
	// run must stay within the gate's target with margin.
	worst := 0.0
	for i := range sys.Acc {
		d := sys.Acc[i].Sub(ref.Acc[i]).Norm() / (1 + ref.Acc[i].Norm())
		if d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Fatalf("float32 near field error %g exceeds the 1e-3 target", worst)
	}
}

// TestNearFloat32GateStickyDisable: an unmeetable target must keep the
// float64 path, emit a violation event, and stay off for the whole run.
func TestNearFloat32GateStickyDisable(t *testing.T) {
	rec := telemetry.New(telemetry.Options{Keep: true})
	sys := distrib.Plummer(900, 1, 1, 17)
	s := NewSolver(sys, Config{P: 6, S: 24, NearFloat32: true, AccuracyTarget: 1e-16, Rec: rec})
	rec.StartStep(0)
	s.Solve()
	rec.EndStep()
	if s.NearFloat32Active() {
		t.Fatal("gate activated past an unmeetable target")
	}
	if !s.f32Blocked {
		t.Fatal("violation did not stick")
	}
	steps := rec.Steps()
	var violated bool
	for _, e := range steps[0].Events {
		if e.Kind == telemetry.EventPrecision && e.A == 0 && e.B == 1 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("no sticky-disable event")
	}
	// Results must be bit-identical to a plain float64 run.
	ref := distrib.Plummer(900, 1, 1, 17)
	rs := NewSolver(ref, Config{P: 6, S: 24})
	rs.Solve()
	for i := range sys.Acc {
		if sys.Acc[i] != ref.Acc[i] {
			t.Fatalf("blocked gate changed acc[%d]", i)
		}
	}
}

// TestNearFloat32CostModelScales: activating the gate must pre-scale the
// P2P coefficient so the balancer predicts the faster near field.
func TestNearFloat32CostModelScales(t *testing.T) {
	sys := distrib.Plummer(900, 1, 1, 23)
	s := NewSolver(sys, Config{P: 6, S: 24, NumGPUs: 0, NearFloat32: true, AccuracyTarget: 1e-2})
	before := s.Model.Coef
	s.Solve()
	if !s.NearFloat32Active() {
		t.Skip("gate did not activate on this configuration")
	}
	// The toggle divides the P2P coefficient; Observe may have refitted it
	// afterwards, so check against a fresh pre-toggle prediction instead:
	// prediction with the gate on must be below the prior coefficient's.
	if s.Model.Coef == before {
		t.Fatal("cost model coefficients unchanged by the precision gate")
	}
}
