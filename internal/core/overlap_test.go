package core

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/particle"
	"afmm/internal/sched"
)

// solveBoth runs the same problem with the near/far phases overlapped and
// sequentially and returns both solvers after cfg.Solves solves. The two
// systems start as clones, move identically between solves, so any
// difference is the scheduler's.
func overlapPair(t *testing.T, mut func(cfg *Config)) (ov, seq *Solver) {
	t.Helper()
	sysA := skewedSystem(1200, 7)
	sysB := sysA.Clone()
	// Explicit 4-worker pools: OverlapAuto declines on a 1-worker pool, and
	// CI hosts may expose a single core — the test must exercise the real
	// concurrent schedule everywhere.
	cfgA := Config{P: 6, S: 24, Pool: sched.NewPool(4)}
	cfgB := Config{P: 6, S: 24, Pool: sched.NewPool(4), Overlap: OverlapOff}
	mut(&cfgA)
	mut(&cfgB)
	return NewSolver(sysA, cfgA), NewSolver(sysB, cfgB)
}

// assertBitIdentical compares the two systems' potentials and
// accelerations with exact floating-point equality: the overlapped
// schedule must not change a single ulp (ISSUE acceptance criterion).
func assertBitIdentical(t *testing.T, ov, seq *particle.System) {
	t.Helper()
	phiA, phiB := ov.PhiInInputOrder(), seq.PhiInInputOrder()
	accA, accB := ov.AccInInputOrder(), seq.AccInInputOrder()
	for i := range phiA {
		if phiA[i] != phiB[i] {
			t.Fatalf("phi not bit-identical at body %d: %x vs %x", i, phiA[i], phiB[i])
		}
		if accA[i] != accB[i] {
			t.Fatalf("acc not bit-identical at body %d: %v vs %v", i, accA[i], accB[i])
		}
	}
}

func TestOverlapBitIdenticalGravity(t *testing.T) {
	// The overlapped solve (near field concurrent with the far-field up
	// sweep and M2L, converging before L2P) must produce exactly the same
	// floats as the sequential solve — near-field writes land in
	// deterministic CSR-row order, the far field touches only expansion
	// slabs until L2P, and L2P adds exactly one finalized-local
	// contribution per body either way.
	for _, tc := range []struct {
		name string
		mut  func(cfg *Config)
	}{
		{"cpu-only", func(cfg *Config) {}},
		{"one-gpu", func(cfg *Config) { cfg.NumGPUs = 1 }},
		{"two-gpus", func(cfg *Config) { cfg.NumGPUs = 2 }},
		{"two-gpus-reserved", func(cfg *Config) { cfg.NumGPUs = 2; cfg.ReservedDrivers = 2 }},
		{"gpu-no-reserve", func(cfg *Config) { cfg.NumGPUs = 1; cfg.ReservedDrivers = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ov, seq := overlapPair(t, tc.mut)
			ov.Solve()
			seq.Solve()
			assertBitIdentical(t, ov.Sys, seq.Sys)

			// Identity must survive the balancer's tree edits: move both
			// systems identically (same permutation history so far), refill,
			// enforce S, and solve again.
			move := func(sys *particle.System) {
				for i := range sys.Pos {
					d := sys.Pos[i].Scale(0.05)
					sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{X: d.Y, Y: -d.X, Z: d.Z * 0.5})
				}
			}
			move(ov.Sys)
			move(seq.Sys)
			ov.Refill()
			seq.Refill()
			ov.EnforceS()
			seq.EnforceS()
			ov.Solve()
			seq.Solve()
			assertBitIdentical(t, ov.Sys, seq.Sys)
		})
	}
}

func TestOverlapReportsHostPhases(t *testing.T) {
	ov, seq := overlapPair(t, func(cfg *Config) { cfg.NumGPUs = 1 })
	stOv := ov.Solve()
	stSeq := seq.Solve()
	if !stOv.Host.Overlapped {
		t.Fatalf("eligible overlapped solve did not report Overlapped")
	}
	if stOv.Host.SerialWall < stOv.Host.Wall {
		t.Fatalf("overlapped serial-equivalent wall %v < wall %v",
			stOv.Host.SerialWall, stOv.Host.Wall)
	}
	if stSeq.Host.Overlapped {
		t.Fatalf("sequential solve reported Overlapped")
	}
	if stSeq.Host.SerialWall != stSeq.Host.Wall {
		t.Fatalf("sequential SerialWall %v != Wall %v",
			stSeq.Host.SerialWall, stSeq.Host.Wall)
	}
	// Reservation must be fully released after the solve: the pool accepts
	// general work on every slot again.
	if r := ov.Cfg.Pool.Reserved(); r != 0 {
		t.Fatalf("pool still has %d reserved workers after Solve", r)
	}
}

func TestOverlapIneligibleFallsBack(t *testing.T) {
	// Recursive sweeps and dry (skip-everything) solves must run
	// sequentially regardless of the Overlap knob.
	sys := distrib.Plummer(500, 1, 1, 11)
	s := NewSolver(sys, Config{P: 4, S: 32, SweepMode: SweepRecursive})
	if st := s.Solve(); st.Host.Overlapped {
		t.Fatalf("recursive sweep overlapped")
	}
	dry := NewSolver(distrib.Plummer(500, 1, 1, 11), Config{
		P: 4, S: 32, SkipFarField: true, SkipNearField: true,
	})
	if st := dry.Solve(); st.Host.Overlapped {
		t.Fatalf("dry solve overlapped")
	}
	// A 1-worker pool can only time-slice the two phases; auto declines.
	one := NewSolver(distrib.Plummer(500, 1, 1, 11), Config{
		P: 4, S: 32, Pool: sched.NewPool(1),
	})
	if st := one.Solve(); st.Host.Overlapped {
		t.Fatalf("1-worker pool overlapped")
	}
}
