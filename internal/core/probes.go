package core

import (
	"afmm/internal/expansion"
	"afmm/internal/geom"
	"afmm/internal/octree"
)

// sqrt3Const mirrors the octree's separation constant (bounding-sphere
// radius of a cube of half-width 1).
const sqrt3Const = 1.7320508075688772

// EvaluateAt computes the gravitational potential and field at arbitrary
// probe points (visualization grids, tracer particles, ...) using the
// multipoles of the last Solve: each probe walks the visible tree with the
// solver's multipole acceptance criterion — far cells accumulate into a
// probe-centered degree-1 local expansion (potential + exact gradient),
// near leaves sum directly. Cost is O(len(points) x log N); accuracy
// matches the solver's (same MAC, same order).
//
// Solve must have run since the last tree modification (it fills the
// multipoles this walk consumes).
func (s *Solver) EvaluateAt(points []geom.Vec3) (phi []float64, field []geom.Vec3) {
	phi = make([]float64, len(points))
	field = make([]geom.Vec3, len(points))
	if len(points) == 0 || s.Tree.Nodes[s.Tree.Root].Count() == 0 {
		return phi, field
	}
	g := s.Cfg.Pool.NewGroup()
	chunk := (len(points) + 4*s.Cfg.Pool.Workers() - 1) / (4 * s.Cfg.Pool.Workers())
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(points); lo += chunk {
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		lo, hi := lo, hi
		g.Spawn(func() {
			w := s.getWS()
			defer s.putWS(w)
			local := expansion.NewExpansion(1)
			for i := lo; i < hi; i++ {
				phi[i], field[i] = s.evaluateOne(w, local, points[i])
			}
		})
	}
	g.Wait()
	return phi, field
}

// evaluateOne walks the visible tree for a single probe.
func (s *Solver) evaluateOne(w *expansion.Workspace, local expansion.Expansion, x geom.Vec3) (float64, geom.Vec3) {
	t := s.Tree
	gconst := s.Cfg.Kernel.G
	local.Zero()
	var phiNear float64
	var accNear geom.Vec3
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.Nodes[ni]
		if n.Count() == 0 {
			return
		}
		d := x.Sub(n.Box.Center).Norm()
		// Point target: accept the cell's multipole when the probe is
		// outside the cell's scaled bounding sphere.
		if t.Cfg.MAC*d > sqrt3Const*n.Box.Half {
			w.M2L(local, x, s.mpole(ni), n.Box.Center)
			return
		}
		if n.IsVisibleLeaf() {
			for i := n.Start; i < n.End; i++ {
				p, a := s.Cfg.Kernel.Accumulate(x, s.Sys.Pos[i], s.Sys.Mass[i])
				phiNear += p
				accNear = accNear.Add(a)
			}
			return
		}
		for _, ci := range n.Children {
			if ci != octree.NilNode {
				walk(ci)
			}
		}
	}
	walk(t.Root)
	// The far field sits in the probe-centered local expansion: evaluate
	// it (and its exact gradient) at the center.
	pFar, gFar := w.L2P(local, x, x)
	phi := phiNear - gconst*pFar
	acc := accNear.Add(gFar.Scale(gconst))
	return phi, acc
}
