package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"afmm/internal/geom"
	"afmm/internal/octree"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// ValidationError reports the first (lowest-index) body whose post-solve
// accumulators are non-finite — the signature of a corrupted near-field
// chunk or a numeric blow-up that must not reach the integrator.
type ValidationError struct {
	Body int
	Phi  float64
	Acc  geom.Vec3
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: non-finite accumulator at body %d (phi=%g acc=%v)",
		e.Body, e.Phi, e.Acc)
}

// SolveChecked runs one Solve and surfaces the step's failure modes as an
// error instead of letting them escape: a panic anywhere in the solve
// (including worker-task panics resurfaced by sched.Group.Wait and
// near-driver-goroutine panics), an unrecoverable device fault (host
// fallback disabled, rows lost), and — when Config.Validate is set — a
// non-finite accumulator found by the post-solve scan. The step loop uses
// this as its checkpoint/restore trigger.
func (s *Solver) SolveChecked() (st StepTimes, err error) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*sched.TaskPanic); ok {
				err = tp
				return
			}
			err = fmt.Errorf("core: solve panicked: %v", r)
		}
	}()
	st = s.Solve()
	if s.Cluster != nil {
		if rep := s.Cluster.LastReport(); rep.Err != nil {
			return st, rep.Err
		}
	}
	if s.Cfg.Validate {
		rec := s.Cfg.Rec
		tok := rec.Begin(telemetry.SpanValidate, 0)
		verr := s.ValidateAccumulators()
		rec.End(tok)
		if verr != nil {
			return st, verr
		}
	}
	return st, nil
}

// ValidateAccumulators scans every visible leaf's bodies for NaN/Inf in
// Phi and Acc, in parallel over the near-field weight distribution, and
// returns a *ValidationError for the lowest-index offending body (nil when
// all accumulators are finite).
func (s *Solver) ValidateAccumulators() error {
	t := s.Tree
	leaves := t.VisibleLeaves()
	if len(leaves) == 0 {
		return nil
	}
	weights := s.levelWeights(leaves, func(n *octree.Node) int64 {
		return int64(n.Count()) + 1
	})
	var worst atomic.Int64
	worst.Store(-1)
	sys := s.Sys
	s.Cfg.Pool.ParallelRangeWeighted(weights, func(lo, hi int) {
		for _, ni := range leaves[lo:hi] {
			n := &t.Nodes[ni]
			for i := n.Start; i < n.End; i++ {
				a := sys.Acc[i]
				if isFinite(sys.Phi[i]) && isFinite(a.X) && isFinite(a.Y) && isFinite(a.Z) {
					continue
				}
				// Keep the lowest offending index so the error is
				// deterministic regardless of chunk scheduling.
				for {
					cur := worst.Load()
					if cur >= 0 && cur <= int64(i) {
						break
					}
					if worst.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}
	})
	if bi := worst.Load(); bi >= 0 {
		return &ValidationError{Body: int(bi), Phi: sys.Phi[bi], Acc: sys.Acc[bi]}
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// NearFieldCapacity reports the cluster's current capacity state: the
// epoch (incremented on every device loss/derating/restore) and the
// aggregate interaction rate of the surviving devices. CPU-only solvers
// report epoch 0 and a capacity of 0.
func (s *Solver) NearFieldCapacity() (epoch int64, capacity float64) {
	if s.Cluster == nil {
		return 0, 0
	}
	return s.Cluster.CapacityEpoch(), s.Cluster.Capacity()
}
