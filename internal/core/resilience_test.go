package core

import (
	"math"
	"testing"

	"afmm/internal/costmodel"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/kernels"
	"afmm/internal/particle"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

func testSystem(t *testing.T, n int) *particle.System {
	t.Helper()
	return distrib.UniformCube(n, 10, 42)
}

func faultCfg(spec string, t *testing.T) (Config, *fault.Injector) {
	t.Helper()
	var inj *fault.Injector
	if spec != "" {
		sch, err := fault.Parse(spec)
		if err != nil {
			t.Fatalf("parse fault spec: %v", err)
		}
		inj = fault.NewInjector(sch)
	}
	return Config{
		P: 4, S: 32, NumGPUs: 2,
		Kernel: kernels.Gravity{G: 1, Softening: 1e-3},
		Faults: inj,
		Watchdog: vgpu.WatchdogConfig{
			ChunkRows: 4,
		},
	}, inj
}

// TestValidateCatchesCorruptedChunk is the satellite guard test: a
// transiently corrupted device chunk poisons an accumulator, and the
// opt-in Validate scan fails the step before its results could reach an
// integrator.
func TestValidateCatchesCorruptedChunk(t *testing.T) {
	sys := testSystem(t, 2000)
	cfg, _ := faultCfg("gpu0:corrupt@step1", t)
	cfg.Validate = true
	s := NewSolver(sys, cfg)
	if _, err := s.SolveChecked(); err != nil {
		t.Fatalf("step 0 (pre-fault) failed: %v", err)
	}
	_, err := s.SolveChecked()
	if err == nil {
		t.Fatal("corrupted step passed validation")
	}
	verr, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	if !math.IsNaN(verr.Phi) {
		t.Fatalf("expected NaN Phi at body %d, got %g", verr.Body, verr.Phi)
	}
}

// TestValidatePassesCleanRun: the guard is quiet on healthy steps.
func TestValidatePassesCleanRun(t *testing.T) {
	sys := testSystem(t, 1500)
	cfg, _ := faultCfg("", t)
	cfg.Validate = true
	s := NewSolver(sys, cfg)
	for step := 0; step < 3; step++ {
		if _, err := s.SolveChecked(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestSolveCheckedSurfacesUnrecoveredLoss: with the host fallback
// disabled, a fail-stop device loss becomes a step error instead of a
// silent partial result.
func TestSolveCheckedSurfacesUnrecoveredLoss(t *testing.T) {
	sys := testSystem(t, 2000)
	cfg, _ := faultCfg("gpu1:failstop@step1", t)
	cfg.Watchdog.DisableFallback = true
	s := NewSolver(sys, cfg)
	if _, err := s.SolveChecked(); err != nil {
		t.Fatalf("step 0: %v", err)
	}
	if _, err := s.SolveChecked(); err == nil {
		t.Fatal("unrecovered device loss did not fail the step")
	}
}

// TestSolverDeviceRestoration: end-to-end through the core solver, a
// dead device is re-admitted after RestoreAfter clean probe steps — the
// cluster's alive count and capacity recover, the restored device regains
// a share of the near field, EventCapacity is emitted on re-admission,
// and every step stays bit-identical to the fault-free run.
func TestSolverDeviceRestoration(t *testing.T) {
	sysA := testSystem(t, 2500)
	sysB := testSystem(t, 2500)
	cfgA, _ := faultCfg("", t)
	cfgB, _ := faultCfg("gpu0:failstop@step1", t)
	cfgB.Watchdog.RestoreAfter = 2
	rec := telemetry.New(telemetry.Options{Keep: true})
	cfgB.Rec = rec
	a := NewSolver(sysA, cfgA)
	b := NewSolver(sysB, cfgB)

	// Step 1 kills gpu0; probes at steps 2 and 3 run clean, so step 3
	// restores it (after that step's partition) and step 4 is the first
	// with the device back in the split.
	const restoreStep = 3
	for step := 0; step < 5; step++ {
		a.Solve()
		if _, err := b.SolveChecked(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rec.EndStep()
		for i := range sysA.Phi {
			if sysA.Phi[i] != sysB.Phi[i] || sysA.Acc[i] != sysB.Acc[i] {
				t.Fatalf("step %d: divergence at body %d", step, i)
			}
		}
		wantAlive := 2
		if step >= 1 && step < restoreStep {
			wantAlive = 1
		}
		if got := b.Cluster.AliveDevices(); got != wantAlive {
			t.Fatalf("step %d: alive = %d, want %d", step, got, wantAlive)
		}
	}
	if len(b.Cluster.Devices[0].Targets) == 0 {
		t.Fatal("restored device received no near-field work")
	}
	epB, capB := b.NearFieldCapacity()
	epA, capA := a.NearFieldCapacity()
	if capB != capA {
		t.Fatalf("restored capacity %g, want full %g", capB, capA)
	}
	if epB == epA {
		t.Fatal("capacity epoch did not record the death/restoration cycle")
	}
	var sawCapacity bool
	for _, e := range rec.Steps()[restoreStep].Events {
		if e.Kind == telemetry.EventCapacity {
			sawCapacity = true
			if e.FA != capA {
				t.Fatalf("re-admission capacity event %g, want %g", e.FA, capA)
			}
		}
	}
	if !sawCapacity {
		t.Fatal("no EventCapacity on the restoration step")
	}
}

// TestSolverFaultBitIdentical: end-to-end through the core solver, a
// fail-stop device loss recovered by the host fallback produces
// accelerations bit-identical to the fault-free run, and the GPU cost
// coefficient is re-derived upward at the capacity epoch change.
func TestSolverFaultBitIdentical(t *testing.T) {
	sysA := testSystem(t, 2500)
	sysB := testSystem(t, 2500)
	cfgA, _ := faultCfg("", t)
	cfgB, _ := faultCfg("gpu0:failstop@step1", t)
	a := NewSolver(sysA, cfgA)
	b := NewSolver(sysB, cfgB)
	for step := 0; step < 3; step++ {
		a.Solve()
		stB, err := b.SolveChecked()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step >= 1 && stB.GPUTime <= 0 {
			t.Fatalf("step %d: degraded step lost its GPU time", step)
		}
		for i := range sysA.Phi {
			if sysA.Phi[i] != sysB.Phi[i] || sysA.Acc[i] != sysB.Acc[i] {
				t.Fatalf("step %d: divergence at body %d: phi %g vs %g",
					step, i, sysA.Phi[i], sysB.Phi[i])
			}
		}
	}
	rep := b.Cluster.LastReport()
	if rep.DeadDevices != 1 {
		t.Fatalf("want 1 dead device, got %d", rep.DeadDevices)
	}
	if a.Model.Coef[costmodel.P2P] >= b.Model.Coef[costmodel.P2P] {
		t.Fatalf("degraded P2P coefficient %g not above fault-free %g",
			b.Model.Coef[costmodel.P2P], a.Model.Coef[costmodel.P2P])
	}
	epoch, capacity := b.NearFieldCapacity()
	if epoch == 0 || capacity <= 0 {
		t.Fatalf("capacity epoch/value not advanced: %d %g", epoch, capacity)
	}
	if _, full := a.NearFieldCapacity(); capacity >= full {
		t.Fatalf("degraded capacity %g not below full %g", capacity, full)
	}
}
