// Package core implements the heterogeneous AFMM solver of the paper: the
// far-field expansion phases (P2M, M2M, M2L, L2L, L2P) executed by CPU
// task parallelism over the adaptive octree, concurrently with the
// near-field (P2P) work on the (simulated) GPUs, under the paper's timing
// definitions — CPU Time is the up-sweep-to-down-sweep span, GPU Time is
// the maximum per-device kernel time, Compute Time is their maximum.
package core

import (
	"math"
	"time"

	"afmm/internal/costmodel"
	"afmm/internal/expansion"
	"afmm/internal/fault"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/sphharm"
	"afmm/internal/telemetry"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

// Profile adapts the timing model to the physical problem: the Stokes
// solver performs four harmonic far-field passes per solve and its direct
// kernel is costlier per interaction than gravity's.
type Profile struct {
	FarFieldPasses int
	P2PCostFactor  float64
}

// GravityProfile is the single-pass Laplace profile.
func GravityProfile() Profile { return Profile{FarFieldPasses: 1, P2PCostFactor: 1} }

// StokesProfile reflects the 4-harmonic decomposition (M2L cost ~4x the
// gravitational problem, §IX.B) and the regularized Stokeslet P2P cost.
func StokesProfile() Profile {
	return Profile{
		FarFieldPasses: 4,
		P2PCostFactor:  float64(kernels.FlopsPerStokesletInteraction) / float64(kernels.FlopsPerGravityInteraction),
	}
}

// SweepMode selects how the far-field phases execute on the host.
type SweepMode int

const (
	// SweepLevelSync (the default) executes the sweeps as flat,
	// level-synchronous parallel ranges over Tree.LevelOrder: one barrier
	// per level instead of a task per node, interaction-weighted chunking,
	// long-lived per-worker workspaces, and each node's V list applied
	// through the batched rotation-accelerated M2L (Workspace.M2LBatch),
	// whose per-direction setup is cached across nodes. M2M/L2L still
	// follow UseRotatedTranslations; the M2L results agree with the direct
	// operators to rounding.
	SweepLevelSync SweepMode = iota
	// SweepRecursive is the legacy task-recursive execution mirroring the
	// paper's OpenMP pattern (a task per octree child, taskwait at the
	// parent), kept for A/B comparison and as the schedule the virtual
	// CPU model replays.
	SweepRecursive
)

// OverlapMode selects whether Solve executes the near-field sweep
// concurrently with the far-field up-sweep and M2L work — the paper's
// host-side CPU/GPU concurrency (§V): kernels are launched, the CPU runs
// the expansion phases, and the blocking collect happens before the
// leaf evaluation.
type OverlapMode int

const (
	// OverlapAuto (the default) overlaps the phases whenever the solve is
	// eligible: level-synchronous sweeps with both a near and a far phase
	// present. Results are bit-identical to the sequential path — the
	// phases converge before L2P, the only point where far-field values
	// reach the body accumulators.
	OverlapAuto OverlapMode = iota
	// OverlapOff forces the sequential near-then-far execution.
	OverlapOff
)

// Config assembles a solver.
type Config struct {
	// P is the number of retained expansion terms (order); default 8.
	P int
	// S is the leaf-capacity parameter the load balancer tunes.
	S int
	// MAC is the acceptance parameter of the interaction-list traversal.
	MAC float64
	// Mode selects adaptive (AFMM) or uniform (FMM) decomposition.
	Mode octree.Mode
	// MaxDepth bounds subdivision.
	MaxDepth int
	// Kernel is the gravity kernel (G, softening).
	Kernel kernels.Gravity
	// Pool runs the real computation; nil creates a GOMAXPROCS pool.
	Pool *sched.Pool
	// CPU is the virtual CPU subsystem (cores, base coefficients).
	CPU vcpu.Spec
	// NumGPUs and GPUSpec define the simulated device cluster; zero GPUs
	// runs the near field on the virtual CPU (serial/CPU-only configs).
	NumGPUs int
	GPUSpec vgpu.Spec
	// Profile adapts timing to the physical problem.
	Profile Profile
	// SkipFarField disables the far-field numeric execution (used by
	// harnesses that only study timing behaviour at scale). Timing is
	// unaffected; accelerations are then near-field only.
	SkipFarField bool
	// SkipNearField likewise disables the numeric P2P execution; the
	// device timing model still runs. With both Skip flags set a Solve
	// is a pure timing dry run (no forces are produced).
	SkipNearField bool
	// SweepMode selects the host execution of the far field:
	// level-synchronous flat sweeps (default) or the legacy task
	// recursion. Both modes compute the same expansions; results agree to
	// rounding. The virtual-machine timing model is mode-independent.
	SweepMode SweepMode
	// UseRotatedTranslations switches M2M/M2L/L2L to the O(p^3)
	// rotation-accelerated ("point and shoot") operators. Numerically
	// equivalent to the direct O(p^4) operators up to rounding; faster
	// for P >= ~6. The virtual-machine cost model is unchanged (the
	// paper's implementation uses direct translations), so this only
	// affects host wall time.
	UseRotatedTranslations bool
	// DisableListCache turns off the persistent interaction-list cache:
	// every solve re-runs the full dual traversal and rebuilds the
	// near-field schedule from scratch (octree.Config.NoListCache). Kept
	// for A/B measurement; results are bit-identical either way.
	DisableListCache bool
	// GatherSources makes each near-field chunk copy its source bodies
	// into per-worker SoA gather buffers (octree.SourceGather) before the
	// P2P sweep, instead of slicing the particle arrays through the
	// schedule's cached source spans. The particle arrays are already
	// leaf-contiguous, so the copy only pays off when they far exceed the
	// last-level cache; the default zero-copy path benches faster at
	// moderate N (see kernels.BenchmarkNearFieldCSR vs ...Gather).
	// Results are bit-identical either way.
	GatherSources bool
	// Overlap controls the concurrent near/far host execution (see
	// OverlapMode). The default OverlapAuto enables it on eligible solves;
	// cmd tools expose -no-overlap to force OverlapOff.
	Overlap OverlapMode
	// TaskGraph opts the solve into the dependency-driven execution path:
	// the whole step is expressed as a task DAG (per-level P2M/M2M chunks
	// feeding M2L feeding L2L, near-field chunks as independent roots,
	// joined only at each leaf's L2P) and drained by the pool's ready
	// queues, removing the per-level barriers of the level-synchronous
	// sweeps. Results are bit-identical to the fork-join paths: every
	// expansion is computed wholly inside one graph node with a fixed
	// internal operation order, and each body still receives near-field
	// contributions in CSR row order plus exactly one L2P addition. The
	// path supersedes Overlap (near/far concurrency is inherent in the
	// graph) and engages only on eligible solves: level-synchronous mode,
	// a far field present, and Pool.Workers() >= 2 (a single worker could
	// only time-slice the graph). cmd tools enable it by default and
	// expose -no-taskgraph.
	TaskGraph bool
	// DisableM2LTable turns off the shared M2L translation-class table and
	// falls back to the per-workspace direction cache inside M2LBatch.
	// Kept for A/B measurement; results are bit-identical either way.
	DisableM2LTable bool
	// NearFloat32 opts the near field into the float32 kernel path:
	// source spans are packed into float32 SoA and the P2P arithmetic runs
	// in single precision, halving source bandwidth and using the cheaper
	// sqrt. The path is gated per step against the accuracy target (see
	// AccuracyTarget): it only activates while the estimated float32
	// rounding error (~eps32 * worst-row source count) stays below the
	// target, and a violation disables it for the rest of the run.
	NearFloat32 bool
	// AccuracyTarget is the relative accuracy the user asks of the solve,
	// used by the NearFloat32 gate. Zero means "as accurate as the far
	// field": the gate compares against the a-priori truncation bound of
	// the current lists (EstimateError().MeanPair), so float32 is allowed
	// only where its rounding is buried under the expansion error.
	AccuracyTarget float64
	// ReservedDrivers is the number of pool worker slots dedicated to the
	// near-field class while the phases overlap — the paper's "one core
	// per GPU driver thread". 0 (default) reserves one slot per simulated
	// device (none on CPU-only configs, where near and far instead share
	// all slots); -1 disables reservation explicitly; a positive value is
	// used as given. Always clamped to Pool.Workers()-1 so the far field
	// keeps at least one slot.
	ReservedDrivers int
	// Rec, when non-nil, receives per-phase spans, device kernel samples,
	// worker busy times, and the step's cost-model observation from every
	// Solve. A nil recorder compiles to no-ops on the hot paths. Prefer
	// Solver.SetRecorder over mutating this after construction, so the
	// device cluster picks up the recorder too.
	Rec *telemetry.Recorder
	// Validate enables the opt-in post-solve invariant guard: after each
	// SolveChecked, every body's Phi/Acc accumulators are scanned for
	// NaN/Inf in parallel and a non-finite value fails the step before
	// its results can reach the integrator.
	Validate bool
	// Faults, when non-nil, arms the device cluster's deterministic
	// fault injector: device runs consult it per chunk, the watchdog
	// monitor starts, and dead devices' work is recovered by the host
	// fallback. Nil (the default) executes the exact pre-fault paths.
	Faults *fault.Injector
	// Watchdog tunes fault detection and recovery (zero value =
	// documented defaults); only consulted when Faults is set.
	Watchdog vgpu.WatchdogConfig
	// OffloadEndpoints moves the P2M and L2P work to the GPUs — the
	// extension the paper proposes (§VIII.E) for configurations whose
	// CPU is underpowered relative to the devices ("the way forward in
	// such an unbalanced situation is to move additional work to the
	// GPU... P2M expansion formation and L2P expansion evaluation").
	// The numeric result is unchanged; the endpoint costs move from the
	// CPU task graph to the device timing model.
	OffloadEndpoints bool
}

func (c *Config) setDefaults() {
	if c.P <= 0 {
		c.P = 8
	}
	if c.S <= 0 {
		c.S = 64
	}
	if c.Pool == nil {
		c.Pool = sched.NewPool(0)
	}
	c.CPU = c.CPU.Normalized()
	if c.NumGPUs > 0 && c.GPUSpec.SMs == 0 {
		c.GPUSpec = vgpu.DefaultSpec()
	}
	if c.Profile.FarFieldPasses == 0 {
		c.Profile = GravityProfile()
	}
	if c.Kernel.G == 0 {
		c.Kernel.G = 1
	}
}

// StepTimes reports one solve's virtual-machine timing (the quantities the
// paper's load balancer consumes) plus host wall time for reference.
type StepTimes struct {
	CPUTime float64 // far-field makespan on the virtual CPU (plus P2P when no GPUs)
	GPUTime float64 // max simulated kernel time over devices
	Compute float64 // max(CPUTime, GPUTime) — the paper's Compute Time
	Counts  costmodel.Counts
	CPUEff  float64 // parallel efficiency of the virtual schedule
	GPUEff  float64 // useful/slot interactions on the slowest-loaded cluster
	Real    time.Duration
	// Host breaks the Real wall clock into list/far/near phases, so step
	// loops see where host time went without owning a telemetry recorder.
	Host telemetry.HostPhases
}

// Solver is the heterogeneous AFMM engine.
type Solver struct {
	Cfg     Config
	Sys     *particle.System
	Tree    *octree.Tree
	Cluster *vgpu.Cluster
	Model   *costmodel.Model

	packedLen  int
	multipoles []complex128
	locals     []complex128
	// wsFree is a free-list of long-lived operator workspaces, one per
	// concurrently executing chunk. Unlike a sync.Pool it never discards
	// entries, so the M2L geometry caches inside the workspaces survive
	// across levels and across solves.
	wsFree    chan *expansion.Workspace
	weightBuf []int64
	// busySnap/busyDelta are reused worker busy-time snapshot buffers
	// (telemetry; unused when no recorder is attached), classSnap/
	// classDelta the per-work-class equivalents.
	busySnap   []int64
	busyDelta  []int64
	classSnap  []int64
	classDelta []int64
	// gatherFree recycles per-chunk near-field source gathers (SoA packing
	// buffers), one per concurrently executing chunk.
	gatherFree chan *octree.SourceGather
	// capEpoch/capVal track the cluster's last-seen capacity state, so
	// Solve can re-derive the GPU prediction exactly once per topology
	// change (device loss/derating).
	capEpoch int64
	capVal   float64

	// M2L translation-class table state (see kernelspeed.go): the shared
	// per-class operator table, the class schedule it was built from, the
	// list epoch it is valid for, and whether the current sweep may use it.
	m2lTab   *expansion.M2LTable
	m2lCls   *octree.M2LClassSchedule
	m2lEpoch uint64
	m2lUse   bool

	// Near-field precision gate state (see kernelspeed.go): whether the
	// float32 path is active this step, whether a bound violation disabled
	// it for the rest of the run, and the cached truncation bound per list
	// epoch backing the default accuracy target.
	f32Active  bool
	f32Blocked bool
	gateEpoch  uint64
	gateBound  float64

	// taskStats holds the graph statistics of the most recent task-graph
	// Solve (see taskgraph.go); benchmarks read it via TaskGraphStats.
	taskStats sched.GraphStats
}

// NewSolver builds the decomposition and the device cluster.
func NewSolver(sys *particle.System, cfg Config) *Solver {
	cfg.setDefaults()
	s := &Solver{
		Cfg:       cfg,
		Sys:       sys,
		packedLen: sphharm.PackedLen(cfg.P),
	}
	s.wsFree = make(chan *expansion.Workspace, cfg.Pool.Workers()+8)
	s.gatherFree = make(chan *octree.SourceGather, cfg.Pool.Workers()+8)
	s.Tree = octree.Build(sys, octree.Config{
		S:           cfg.S,
		MaxDepth:    cfg.MaxDepth,
		Mode:        cfg.Mode,
		MAC:         cfg.MAC,
		Pool:        cfg.Pool,
		NoListCache: cfg.DisableListCache,
	})
	if cfg.NumGPUs > 0 {
		s.Cluster = vgpu.NewCluster(cfg.NumGPUs, cfg.GPUSpec)
		s.Cluster.Rec = cfg.Rec
		s.Cluster.Injector = cfg.Faults
		s.Cluster.Watchdog = cfg.Watchdog
		// Host fallback rate: how fast the virtual CPU would grind P2P
		// interactions, for charging recovered rows in virtual time.
		if base := cfg.CPU.Base[costmodel.P2P] * cfg.Profile.P2PCostFactor; base > 0 {
			s.Cluster.HostP2PRate = float64(cfg.CPU.Cores) / base
		}
		// Corrupt faults poison one accumulator of the chunk's first
		// target leaf — a silent-data-corruption stand-in the Validate
		// guard must catch before integration.
		s.Cluster.Corrupt = func(target int32) {
			n := &s.Tree.Nodes[target]
			if n.Count() > 0 {
				s.Sys.Phi[n.Start] = math.NaN()
			}
		}
		s.capEpoch = s.Cluster.CapacityEpoch()
		s.capVal = s.Cluster.Capacity()
	}
	s.Model = costmodel.NewModel(s.priorCoefficients())
	return s
}

// SetRecorder attaches (or detaches, with nil) the telemetry recorder,
// propagating it to the device cluster. When the recorder carries a
// metrics registry, the solver's pool, cluster, and injector register
// their scrape-time series on it.
func (s *Solver) SetRecorder(rec *telemetry.Recorder) {
	s.Cfg.Rec = rec
	if s.Cluster != nil {
		s.Cluster.Rec = rec
	}
	if reg := rec.Metrics(); reg.Enabled() {
		s.Cfg.Pool.RegisterMetrics(reg)
		s.Cluster.RegisterMetrics(reg)
		if s.Cluster != nil {
			s.Cluster.Injector.RegisterMetrics(reg)
		}
	}
}

// priorCoefficients predicts costs before any observation: base CPU costs
// spread over the cores, and the device's ideal interaction rate.
func (s *Solver) priorCoefficients() costmodel.Coefficients {
	var c costmodel.Coefficients
	k := float64(s.Cfg.CPU.Cores)
	if k < 1 {
		k = 1
	}
	passes := float64(s.Cfg.Profile.FarFieldPasses)
	for op := costmodel.P2M; op <= costmodel.L2P; op++ {
		c[op] = s.Cfg.CPU.Base[op] * passes / k
	}
	if s.Cfg.NumGPUs > 0 {
		rate := s.Cfg.GPUSpec.InteractionsPerSecPerSM * float64(s.Cfg.GPUSpec.SMs) * float64(s.Cfg.NumGPUs)
		c[costmodel.P2P] = s.Cfg.Profile.P2PCostFactor / rate
	} else {
		c[costmodel.P2P] = s.Cfg.CPU.Base[costmodel.P2P] * s.Cfg.Profile.P2PCostFactor / k
	}
	return c
}

// S returns the current leaf-capacity parameter.
func (s *Solver) S() int { return s.Tree.Cfg.S }

// Rebuild reconstructs the tree with a new S (the Search/Incremental
// states' full rebuild).
func (s *Solver) Rebuild(newS int) { s.Tree.Rebuild(newS) }

// Refill re-bins moved bodies into the existing structure.
func (s *Solver) Refill() { s.Tree.Refill() }

// EnforceS restores the leaf-capacity invariant on the existing tree.
func (s *Solver) EnforceS() (collapses, pushdowns int) { return s.Tree.EnforceS() }

// Solve runs one full FMM evaluation: potentials and accelerations for
// every body, and the virtual-machine timing of the step.
func (s *Solver) Solve() StepTimes {
	rec := s.Cfg.Rec
	timer := sched.StartTimer()
	solveTok := rec.Begin(telemetry.SpanSolve, 0)
	if rec.Enabled() {
		s.busySnap = s.Cfg.Pool.WorkerBusyNs(s.busySnap[:0])
		s.classSnap = s.Cfg.Pool.ClassBusyNs(s.classSnap[:0])
	}
	t := s.Tree

	// The list span kind is only known after the fact: BuildLists decides
	// between skip, repair, and full traversal, and the ListStats delta
	// says which it took.
	ls0 := t.ListBuildStats()
	listTimer := sched.StartTimer()
	t.BuildLists()
	listDur := listTimer.Elapsed()
	if rec.Enabled() {
		ld := t.ListBuildStats().Sub(ls0)
		kind := telemetry.SpanListSkip
		switch {
		case ld.FullBuilds > 0:
			kind = telemetry.SpanListFull
		case ld.Repairs > 0:
			kind = telemetry.SpanListRepair
		}
		rec.AddSpan(kind, 0, listTimer.StartTime(), listDur)
		rec.SetLists(telemetry.ListDelta{
			Full: ld.FullBuilds, Repairs: ld.Repairs, Skips: ld.Skips, Pairs: ld.Pairs,
		})
	}

	prepTimer := sched.StartTimer()
	s.Sys.ResetAccumulatorsParallel(s.Cfg.Pool)
	s.ensureSlabs()
	rec.AddSpan(telemetry.SpanPrep, 0, prepTimer.StartTime(), prepTimer.Elapsed())

	// Kernel-speed preparation, before the near/far fork: the shared M2L
	// class table must be complete before any worker translates, and the
	// precision gate must settle before the near-field drivers launch.
	s.prepareM2LTable()
	s.updateNearPrecision()

	// Execute the near-field "kernels" and the far-field traversal. The
	// near phase is launched exactly like the paper's concurrent kernel
	// launch: on the overlapped path (the default) a driver goroutine walks
	// the device chunks / CPU P2P schedule while this goroutine runs the
	// up sweep and M2L work, and the blocking collect (the join) happens
	// before L2P — the only operator that moves far-field values into the
	// body accumulators, which is what keeps the result bit-identical to
	// the sequential order. The sequential path remains for -no-overlap,
	// the recursive sweeps, and single-phase configurations.
	var gpuTime float64
	var nearDur, upDur, downDur, l2pDur time.Duration
	taskGraphed := s.taskGraphEligible()
	overlapped := !taskGraphed && s.overlapEligible()
	runNear := func() {
		nearTimer := sched.StartTimer()
		if s.Cluster != nil {
			fn := vgpu.P2PFunc(s.p2pPair)
			if s.Cfg.SkipNearField {
				fn = nil
			}
			gpuTime = s.Cluster.ExecuteParallel(t, fn, s.Cfg.Pool)
			nearDur = nearTimer.Elapsed()
			rec.AddSpan(telemetry.SpanNearExec, 0, nearTimer.StartTime(), nearDur)
		} else if !s.Cfg.SkipNearField {
			s.runCPUNearField()
			nearDur = nearTimer.Elapsed()
			rec.AddSpan(telemetry.SpanNearCPU, 0, nearTimer.StartTime(), nearDur)
		}
	}
	if s.Cluster != nil {
		s.Cluster.Partition(t)
	}
	var overlapRegion time.Duration
	if taskGraphed {
		// Dependency-driven path: the whole near+far step runs as one task
		// DAG (see taskgraph.go); L2P is inside the graph, so there is no
		// separate sweep after the region.
		tg := s.solveTaskGraph()
		gpuTime = tg.gpuTime
		nearDur, upDur, downDur, l2pDur = tg.near, tg.up, tg.down, tg.l2p
		overlapRegion = tg.region
	} else if overlapped {
		// Prewarm the lazily-built tree caches the near phase reads, so
		// the driver goroutine only ever sees resolved state (NearField
		// also resolves VisibleLeaves). The far sweeps touch LevelOrder
		// from this goroutine only.
		t.NearField()
		if k := s.reservedDrivers(); k > 0 {
			s.Cfg.Pool.SetReserved(k)
			defer s.Cfg.Pool.SetReserved(0)
		}
		ovTimer := sched.StartTimer()
		join := make(chan struct{})
		var nearPanic any
		go func() {
			defer close(join)
			defer func() { nearPanic = recover() }()
			runNear()
		}()
		upTimer := sched.StartTimer()
		s.upSweep()
		upDur = upTimer.Elapsed()
		rec.AddSpan(telemetry.SpanUpSweep, 0, upTimer.StartTime(), upDur)
		downTimer := sched.StartTimer()
		s.downSweepLevels(false)
		downDur = downTimer.Elapsed()
		rec.AddSpan(telemetry.SpanDownSweep, 0, downTimer.StartTime(), downDur)
		<-join // collect: both phases converge before L2P
		if nearPanic != nil {
			// Re-raise the driver goroutine's failure on the solve
			// goroutine, where SolveChecked's recover can see it.
			panic(nearPanic)
		}
		overlapRegion = ovTimer.Elapsed()
		s.Cfg.Pool.SetReserved(0)
		l2pTimer := sched.StartTimer()
		s.l2pSweep()
		l2pDur = l2pTimer.Elapsed()
		rec.AddSpan(telemetry.SpanL2P, 0, l2pTimer.StartTime(), l2pDur)
	} else {
		runNear()
		if !s.Cfg.SkipFarField {
			upTimer := sched.StartTimer()
			s.upSweep()
			upDur = upTimer.Elapsed()
			rec.AddSpan(telemetry.SpanUpSweep, 0, upTimer.StartTime(), upDur)
			downTimer := sched.StartTimer()
			s.downSweep()
			downDur = downTimer.Elapsed()
			rec.AddSpan(telemetry.SpanDownSweep, 0, downTimer.StartTime(), downDur)
		}
	}
	farDur := upDur + downDur + l2pDur

	graphTimer := sched.StartTimer()
	counts := costmodel.FromTree(t.CountOps())
	offload := s.Cfg.OffloadEndpoints && s.Cluster != nil
	graph := vcpu.BuildFMMGraph(t, s.Cfg.CPU.Base, vcpu.FMMGraphOptions{
		IncludeP2P:       s.Cluster == nil,
		FarFieldPasses:   s.Cfg.Profile.FarFieldPasses,
		P2PCostFactor:    s.Cfg.Profile.P2PCostFactor,
		ExcludeEndpoints: offload,
	})
	rec.AddSpan(telemetry.SpanGraph, 0, graphTimer.StartTime(), graphTimer.Elapsed())
	simTok := rec.Begin(telemetry.SpanVCPUSim, 0)
	res := s.Cfg.CPU.Simulate(graph)
	rec.End(simTok)
	if offload {
		// Endpoint work runs on the devices: one P2M/L2P application is
		// charged like EndpointInteractionEquiv near-field interactions,
		// spread over the cluster.
		passes := float64(s.Cfg.Profile.FarFieldPasses)
		rate := s.Cfg.GPUSpec.InteractionsPerSecPerSM * float64(s.Cfg.GPUSpec.SMs) *
			float64(len(s.Cluster.Devices))
		gpuTime += passes * float64(counts[costmodel.P2M]+counts[costmodel.L2P]) *
			vgpu.EndpointInteractionEquiv / rate
	}

	st := StepTimes{
		CPUTime: res.Makespan,
		GPUTime: gpuTime,
		Counts:  counts,
		CPUEff:  res.Efficiency(s.Cfg.CPU.Cores),
	}
	st.Compute = math.Max(st.CPUTime, st.GPUTime)
	if s.Cluster != nil {
		var slot, useful int64
		for _, d := range s.Cluster.Devices {
			slot += d.SlotWork
			useful += d.Interactions
		}
		if slot > 0 {
			st.GPUEff = float64(useful) / float64(slot)
		}
	}

	// Fold observations into the cost model (paper §IV.D): CPU busy time
	// per op scaled to wall-clock share so that sum(M(op) c(op)) equals
	// the observed CPU makespan; the GPU coefficient is max kernel time
	// over total interactions.
	obsTimer := sched.StartTimer()
	var obs costmodel.Observation
	obs.Counts = counts
	// Normalize over the op-attributed busy time (excluding task-spawn
	// overhead) so the per-op shares sum exactly to the observed makespan
	// and PredictCPU reproduces it on an unchanged tree.
	var opBusy float64
	for op := costmodel.Op(0); op < costmodel.NumOps; op++ {
		opBusy += res.BusyTime[op]
	}
	if opBusy > 0 {
		for op := costmodel.P2M; op <= costmodel.L2P; op++ {
			obs.Time[op] = res.Makespan * res.BusyTime[op] / opBusy
		}
	}
	if s.Cluster != nil {
		obs.Time[costmodel.P2P] = gpuTime
	} else if opBusy > 0 {
		obs.Time[costmodel.P2P] = res.Makespan * res.BusyTime[costmodel.P2P] / opBusy
	}
	s.Model.Observe(obs)
	// Capacity-change epoch: when the cluster lost a device (or a device
	// was derated/restored) during this solve, re-derive the GPU-side
	// prediction by the capacity ratio C/C' — the fault may have landed
	// mid-step, so this step's own observation underestimates a fully
	// degraded step. Applied after the fold so Observe cannot clobber it;
	// the next full degraded step's observation refines the estimate.
	if s.Cluster != nil {
		if ep := s.Cluster.CapacityEpoch(); ep != s.capEpoch {
			newCap := s.Cluster.Capacity()
			if newCap > 0 && s.capVal > 0 {
				s.Model.ScaleGPU(s.capVal / newCap)
			}
			s.capEpoch = ep
			s.capVal = newCap
		}
	}
	rec.AddSpan(telemetry.SpanObserve, 0, obsTimer.StartTime(), obsTimer.Elapsed())

	if rec.Enabled() {
		var c64 [telemetry.NumOps]int64
		var opTime, coef [telemetry.NumOps]float64
		for op := costmodel.Op(0); op < costmodel.NumOps; op++ {
			c64[op] = counts[op]
			opTime[op] = obs.Time[op]
			coef[op] = s.Model.Coef[op]
		}
		rec.SetOps(c64, opTime, coef)
		rec.SetSolveTimes(st.CPUTime, st.GPUTime, st.CPUEff, st.GPUEff)
		if s.Cluster != nil {
			for _, d := range s.Cluster.Devices {
				rec.AddDevice(d.KernelTime, d.Interactions, d.HostTime)
			}
		}
		s.busyDelta = s.Cfg.Pool.WorkerBusyNs(s.busyDelta[:0])
		for i := range s.busyDelta {
			if i < len(s.busySnap) {
				s.busyDelta[i] -= s.busySnap[i]
			}
		}
		rec.SetWorkerBusy(s.busyDelta)
		s.classDelta = s.Cfg.Pool.ClassBusyNs(s.classDelta[:0])
		for i := range s.classDelta {
			if i < len(s.classSnap) {
				s.classDelta[i] -= s.classSnap[i]
			}
		}
		rec.SetClassBusy(s.classDelta)
	}
	st.Real = timer.Elapsed()
	st.Host = telemetry.HostPhases{
		List: listDur, Far: farDur, Near: nearDur,
		Wall: st.Real, SerialWall: st.Real, Overlapped: overlapped || taskGraphed,
	}
	if overlapped || taskGraphed {
		// Serial-equivalent wall: replace the overlapped region with what
		// the same phases would have cost back-to-back. The graph region
		// includes L2P (the fork-join overlap runs it after the join, so
		// its cost is already outside the region there).
		st.Host.SerialWall = st.Real - overlapRegion + nearDur + upDur + downDur
		if taskGraphed {
			st.Host.SerialWall += l2pDur
		}
		rec.SetOverlap(st.Host.SerialWall)
	}
	rec.End(solveTok)
	return st
}

// overlapEligible reports whether this Solve may run its near and far
// phases concurrently: overlap not disabled, level-synchronous sweeps
// (the recursive mode exists to mirror the paper's task schedule, not to
// be fast), a pool that can actually run two phases at once (a
// single-worker pool would only time-slice them — all context-switch
// and cache-thrash cost, zero concurrency), and both phases actually
// present. A device cluster counts as a near phase even under
// SkipNearField — the timing walk still runs.
func (s *Solver) overlapEligible() bool {
	if s.Cfg.Overlap == OverlapOff || s.Cfg.SweepMode != SweepLevelSync {
		return false
	}
	if s.Cfg.SkipFarField || s.Cfg.Pool.Workers() < 2 {
		return false
	}
	return s.Cluster != nil || !s.Cfg.SkipNearField
}

// reservedDrivers resolves Config.ReservedDrivers against the cluster and
// pool geometry: auto (0) means one slot per device, none without devices.
func (s *Solver) reservedDrivers() int {
	k := s.Cfg.ReservedDrivers
	if k < 0 {
		return 0
	}
	if k == 0 {
		if s.Cluster == nil {
			return 0
		}
		k = len(s.Cluster.Devices)
	}
	if maxK := s.Cfg.Pool.Workers() - 1; k > maxK {
		k = maxK
	}
	return k
}

// SweepBench executes the far-field sweeps and one CPU near-field pass on
// the current tree under the configured SweepMode, returning host
// wall-clock durations per phase. It resets accumulators and expansion
// slabs first, so repeated calls are independent; cmd/afmm-bench uses it
// for the old-vs-new sweep report.
func (s *Solver) SweepBench() (up, down, near time.Duration) {
	s.Tree.BuildLists()
	s.Sys.ResetAccumulators()
	s.ensureSlabs()
	s.prepareM2LTable()
	upT := sched.StartTimer()
	s.upSweep()
	up = upT.Elapsed()
	downT := sched.StartTimer()
	s.downSweep()
	down = downT.Elapsed()
	nearT := sched.StartTimer()
	s.runCPUNearField()
	near = nearT.Elapsed()
	return up, down, near
}

// Predict estimates the compute time of the *current* tree shape without
// solving (§IV.D): it rebuilds the interaction lists, counts operations,
// and applies the observed coefficients.
func (s *Solver) Predict() (cpu, gpu float64) {
	s.Tree.BuildLists()
	counts := costmodel.FromTree(s.Tree.CountOps())
	return s.Model.PredictCPU(counts), s.Model.PredictGPU(counts)
}

// Octree exposes the decomposition (balance.Target).
func (s *Solver) Octree() *octree.Tree { return s.Tree }

// System exposes the bodies (balance.Target).
func (s *Solver) System() *particle.System { return s.Sys }

// Cores returns the virtual core count (balance.Target).
func (s *Solver) Cores() int { return s.Cfg.CPU.Cores }

func (s *Solver) ensureSlabs() {
	need := len(s.Tree.Nodes) * s.packedLen
	if cap(s.multipoles) < need {
		s.multipoles = make([]complex128, need)
		s.locals = make([]complex128, need)
	}
	s.multipoles = s.multipoles[:need]
	s.locals = s.locals[:need]
	for i := range s.multipoles {
		s.multipoles[i] = 0
		s.locals[i] = 0
	}
}

func (s *Solver) mpole(ni int32) expansion.Expansion {
	off := int(ni) * s.packedLen
	return expansion.Expansion{P: s.Cfg.P, C: s.multipoles[off : off+s.packedLen]}
}

func (s *Solver) local(ni int32) expansion.Expansion {
	off := int(ni) * s.packedLen
	return expansion.Expansion{P: s.Cfg.P, C: s.locals[off : off+s.packedLen]}
}

func (s *Solver) getWS() *expansion.Workspace {
	select {
	case w := <-s.wsFree:
		return w
	default:
		return expansion.NewWorkspace(s.Cfg.P)
	}
}

func (s *Solver) putWS(w *expansion.Workspace) {
	select {
	case s.wsFree <- w:
	default:
	}
}

func (s *Solver) getGather() *octree.SourceGather {
	select {
	case g := <-s.gatherFree:
		return g
	default:
		return &octree.SourceGather{}
	}
}

func (s *Solver) putGather(g *octree.SourceGather) {
	select {
	case s.gatherFree <- g:
	default:
	}
}

// p2pPair executes the direct interaction of one target/source leaf pair
// (the numeric work the simulated device performs). When the precision
// gate activated NearFloat32 for this step, the pair runs the float32
// arithmetic (converting AoS sources on the fly — the device walk has no
// gather buffer).
func (s *Solver) p2pPair(target, source int32) {
	t := s.Tree
	sys := s.Sys
	tn := &t.Nodes[target]
	sn := &t.Nodes[source]
	if s.f32Active {
		s.Cfg.Kernel.P2P32AoS(
			sys.Pos[tn.Start:tn.End],
			sys.Phi[tn.Start:tn.End],
			sys.Acc[tn.Start:tn.End],
			sys.Pos[sn.Start:sn.End],
			sys.Mass[sn.Start:sn.End],
		)
		return
	}
	s.Cfg.Kernel.P2P(
		sys.Pos[tn.Start:tn.End],
		sys.Phi[tn.Start:tn.End],
		sys.Acc[tn.Start:tn.End],
		sys.Pos[sn.Start:sn.End],
		sys.Mass[sn.Start:sn.End],
	)
}

// runCPUNearField executes all U-list work on the host pool (CPU-only
// configurations). The default mode walks the cached CSR near-field
// schedule in interaction-count-weighted chunks — so a few heavy leaves
// cannot serialize the tail — packing each chunk's distinct source leaves
// once into contiguous SoA buffers; the legacy mode chunks leaves evenly
// and chases node indices per pair (still one task per chunk, never one
// per leaf).
func (s *Solver) runCPUNearField() {
	t := s.Tree
	if s.Cfg.SweepMode == SweepRecursive {
		leaves := t.VisibleLeaves()
		s.Cfg.Pool.ParallelRangeClass(sched.ClassNear, len(leaves), func(lo, hi int) {
			for _, li := range leaves[lo:hi] {
				for _, si := range t.Nodes[li].U {
					s.p2pPair(li, si)
				}
			}
		})
		return
	}
	sch := t.NearField()
	f32 := s.f32Active
	s.Cfg.Pool.ParallelRangeWeightedClass(sched.ClassNear, sch.Weights, func(lo, hi int) {
		s.nearFieldChunk(sch, f32, lo, hi)
	})
}

// nearFieldChunk executes CSR rows [lo, hi) of the near-field schedule —
// the chunk body shared by the level-synchronous parallel range and the
// task-graph near nodes. Rows run in order and each row's sources in
// schedule order, so the accumulation order per body is independent of
// how chunks are scheduled.
func (s *Solver) nearFieldChunk(sch *octree.NearSchedule, f32 bool, lo, hi int) {
	t := s.Tree
	sys := s.Sys
	if f32 {
		// Float32 path: pack the chunk's sources once into float32 SoA
		// and stream the single-precision kernel over them.
		g := s.getGather()
		g.Pack32(t, sch, lo, hi, true, false)
		for r := lo; r < hi; r++ {
			tn := &t.Nodes[sch.Leaves[r]]
			xt := sys.Pos[tn.Start:tn.End]
			pot := sys.Phi[tn.Start:tn.End]
			acc := sys.Acc[tn.Start:tn.End]
			for _, si := range sch.Row(r) {
				a, b := g.Span(si)
				s.Cfg.Kernel.P2P32(xt, pot, acc,
					g.X32[a:b], g.Y32[a:b], g.Z32[a:b], g.M32[a:b])
			}
		}
		s.putGather(g)
		return
	}
	if s.Cfg.GatherSources {
		g := s.getGather()
		g.Pack(t, sch, lo, hi, true, false)
		for r := lo; r < hi; r++ {
			tn := &t.Nodes[sch.Leaves[r]]
			xt := sys.Pos[tn.Start:tn.End]
			pot := sys.Phi[tn.Start:tn.End]
			acc := sys.Acc[tn.Start:tn.End]
			for _, si := range sch.Row(r) {
				a, b := g.Span(si)
				s.Cfg.Kernel.P2P(xt, pot, acc, g.Pos[a:b], g.Mass[a:b])
			}
		}
		s.putGather(g)
		return
	}
	for r := lo; r < hi; r++ {
		tn := &t.Nodes[sch.Leaves[r]]
		xt := sys.Pos[tn.Start:tn.End]
		pot := sys.Phi[tn.Start:tn.End]
		acc := sys.Acc[tn.Start:tn.End]
		for k := sch.RowPtr[r]; k < sch.RowPtr[r+1]; k++ {
			s.Cfg.Kernel.P2P(xt, pot, acc,
				sys.Pos[sch.SrcStart[k]:sch.SrcEnd[k]],
				sys.Mass[sch.SrcStart[k]:sch.SrcEnd[k]])
		}
	}
}

// upSweep computes multipoles bottom-up; downSweep propagates locals
// top-down. Both dispatch on Config.SweepMode.
func (s *Solver) upSweep() {
	if s.Cfg.SweepMode == SweepRecursive {
		s.upSweepRecursive()
		return
	}
	s.upSweepLevels()
}

func (s *Solver) downSweep() {
	if s.Cfg.SweepMode == SweepRecursive {
		s.downSweepRecursive()
		return
	}
	s.downSweepLevels(true)
}

// upSweepLevels walks the level index bottom-up: within a level every
// node's multipole depends only on the level below, so the nodes form one
// flat parallel range (weighted by per-node work) with a barrier per level
// instead of a task per node.
func (s *Solver) upSweepLevels() {
	t := s.Tree
	levels := t.LevelOrder()
	for lv := len(levels) - 1; lv >= 0; lv-- {
		nodes := levels[lv]
		if len(nodes) == 0 {
			continue
		}
		weights := s.levelWeights(nodes, upWeight)
		lvTimer := sched.StartTimer()
		s.Cfg.Pool.ParallelRangeWeightedClass(sched.ClassFar, weights, func(lo, hi int) {
			w := s.getWS()
			for _, ni := range nodes[lo:hi] {
				s.upNode(w, ni)
			}
			s.putWS(w)
		})
		s.Cfg.Rec.AddSpan(telemetry.SpanUpLevel, int32(lv), lvTimer.StartTime(), lvTimer.Elapsed())
	}
}

func (s *Solver) upNode(w *expansion.Workspace, ni int32) {
	t := s.Tree
	n := &t.Nodes[ni]
	m := s.mpole(ni)
	if n.IsVisibleLeaf() {
		for i := n.Start; i < n.End; i++ {
			w.P2M(m, n.Box.Center, s.Sys.Pos[i], s.Sys.Mass[i])
		}
		return
	}
	for _, ci := range n.Children {
		if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
			if s.Cfg.UseRotatedTranslations {
				w.M2MRotated(m, n.Box.Center, s.mpole(ci), t.Nodes[ci].Box.Center)
			} else {
				w.M2M(m, n.Box.Center, s.mpole(ci), t.Nodes[ci].Box.Center)
			}
		}
	}
}

// downSweepLevels walks the level index top-down: a node's local depends
// on its parent (previous level) and on V-list multipoles (finalized by
// the up sweep), so each level is one flat weighted parallel range. The
// V list is applied through the batched M2L, whose per-direction setup is
// cached in the chunk's workspace across nodes. withL2P selects whether
// leaves also evaluate L2P in place (the sequential fused path) or leave
// it for a later l2pSweep (the overlapped path, which must not touch the
// body accumulators while the near field is still writing them).
func (s *Solver) downSweepLevels(withL2P bool) {
	t := s.Tree
	// Resolve table eligibility once per sweep: the table must have been
	// built for exactly the current list topology (SweepBench and other
	// direct sweep callers may run without prepareM2LTable).
	s.m2lUse = s.m2lTab != nil && s.m2lEpoch == t.ListEpoch()
	levels := t.LevelOrder()
	for lv := 0; lv < len(levels); lv++ {
		nodes := levels[lv]
		if len(nodes) == 0 {
			continue
		}
		weights := s.levelWeights(nodes, downWeight)
		lvTimer := sched.StartTimer()
		s.Cfg.Pool.ParallelRangeWeightedClass(sched.ClassFar, weights, func(lo, hi int) {
			w := s.getWS()
			var srcs []expansion.M2LSource
			for _, ni := range nodes[lo:hi] {
				srcs = s.downNode(w, ni, srcs, withL2P)
			}
			s.putWS(w)
		})
		s.Cfg.Rec.AddSpan(telemetry.SpanDownLevel, int32(lv), lvTimer.StartTime(), lvTimer.Elapsed())
	}
}

// downNode applies L2L from the parent, batched M2L over the V list, and
// (on leaves, when withL2P) L2P. srcs is chunk-local scratch, returned for
// reuse.
func (s *Solver) downNode(w *expansion.Workspace, ni int32, srcs []expansion.M2LSource, withL2P bool) []expansion.M2LSource {
	t := s.Tree
	n := &t.Nodes[ni]
	l := s.local(ni)
	if parent := n.Parent; parent != octree.NilNode {
		if s.Cfg.UseRotatedTranslations {
			w.L2LRotated(l, n.Box.Center, s.local(parent), t.Nodes[parent].Box.Center)
		} else {
			w.L2L(l, n.Box.Center, s.local(parent), t.Nodes[parent].Box.Center)
		}
	}
	if len(n.V) > 0 {
		srcs = srcs[:0]
		for _, vi := range n.V {
			srcs = append(srcs, expansion.M2LSource{M: s.mpole(vi), From: t.Nodes[vi].Box.Center})
		}
		if s.m2lUse {
			w.M2LBatchTable(l, n.Box.Center, srcs, s.m2lCls.Row(ni), s.m2lTab)
		} else {
			w.M2LBatch(l, n.Box.Center, srcs)
		}
	}
	if withL2P && n.IsVisibleLeaf() {
		s.leafL2P(w, ni)
	}
	return srcs
}

// leafL2P evaluates the finalized local expansion of one visible leaf at
// its bodies, adding potential and acceleration. This is the single
// accumulator-order-sensitive far-field write: per body it is exactly one
// addition onto the near-field-accumulated value, whether it runs fused
// inside the down sweep or split out after the overlap join — which is
// the bit-identity argument for the overlapped path.
func (s *Solver) leafL2P(w *expansion.Workspace, ni int32) {
	n := &s.Tree.Nodes[ni]
	l := s.local(ni)
	g := s.Cfg.Kernel.G
	for i := n.Start; i < n.End; i++ {
		phi, grad := w.L2P(l, n.Box.Center, s.Sys.Pos[i])
		s.Sys.Phi[i] += -g * phi
		s.Sys.Acc[i] = s.Sys.Acc[i].Add(grad.Scale(g))
	}
}

// l2pSweep runs the split-out leaf L2P evaluation after the overlap join:
// one flat weighted parallel range over the visible leaves.
func (s *Solver) l2pSweep() {
	t := s.Tree
	leaves := t.VisibleLeaves()
	if len(leaves) == 0 {
		return
	}
	weights := s.levelWeights(leaves, func(n *octree.Node) int64 {
		return int64(n.Count()) + 1
	})
	s.Cfg.Pool.ParallelRangeWeightedClass(sched.ClassFar, weights, func(lo, hi int) {
		w := s.getWS()
		for _, ni := range leaves[lo:hi] {
			s.leafL2P(w, ni)
		}
		s.putWS(w)
	})
}

// Rough per-node work weights for chunking a level. The constants only
// steer chunk boundaries; they need no calibration against the cost model.
const (
	m2lWeight = 12 // one M2L translation ~ this many per-body endpoint ops
	m2mWeight = 4  // one M2M/L2L translation
)

func upWeight(n *octree.Node) int64 {
	if n.IsVisibleLeaf() {
		return int64(n.Count()) + 1
	}
	return 8*m2mWeight + 1
}

func downWeight(n *octree.Node) int64 {
	w := int64(len(n.V))*m2lWeight + m2mWeight + 1
	if n.IsVisibleLeaf() {
		w += int64(n.Count())
	}
	return w
}

// levelWeights fills the solver's scratch weight buffer for one level.
func (s *Solver) levelWeights(nodes []int32, weight func(*octree.Node) int64) []int64 {
	if cap(s.weightBuf) < len(nodes) {
		s.weightBuf = make([]int64, len(nodes))
	}
	buf := s.weightBuf[:len(nodes)]
	for i, ni := range nodes {
		buf[i] = weight(&s.Tree.Nodes[ni])
	}
	return buf
}

// upSweepRecursive computes multipoles bottom-up with the paper's
// recursive task pattern: spawn a task per child, taskwait, then combine
// (head recursion).
func (s *Solver) upSweepRecursive() {
	var rec func(ni int32)
	rec = func(ni int32) {
		t := s.Tree
		n := &t.Nodes[ni]
		if n.IsVisibleLeaf() {
			w := s.getWS()
			m := s.mpole(ni)
			for i := n.Start; i < n.End; i++ {
				w.P2M(m, n.Box.Center, s.Sys.Pos[i], s.Sys.Mass[i])
			}
			s.putWS(w)
			return
		}
		g := s.Cfg.Pool.NewGroup()
		for _, ci := range n.Children {
			if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
				ci := ci
				g.Spawn(func() { rec(ci) })
			}
		}
		g.Wait()
		w := s.getWS()
		m := s.mpole(ni)
		for _, ci := range n.Children {
			if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
				if s.Cfg.UseRotatedTranslations {
					w.M2MRotated(m, n.Box.Center, s.mpole(ci), t.Nodes[ci].Box.Center)
				} else {
					w.M2M(m, n.Box.Center, s.mpole(ci), t.Nodes[ci].Box.Center)
				}
			}
		}
		s.putWS(w)
	}
	if s.Tree.Nodes[s.Tree.Root].Count() > 0 {
		rec(s.Tree.Root)
	}
}

// downSweepRecursive propagates locals top-down: per node, L2L from the
// parent and M2L from the V list, then a task per child; leaves evaluate
// L2P.
func (s *Solver) downSweepRecursive() {
	g := s.Cfg.Kernel.G
	var rec func(ni, parent int32)
	rec = func(ni, parent int32) {
		t := s.Tree
		n := &t.Nodes[ni]
		w := s.getWS()
		l := s.local(ni)
		if parent != octree.NilNode {
			if s.Cfg.UseRotatedTranslations {
				w.L2LRotated(l, n.Box.Center, s.local(parent), t.Nodes[parent].Box.Center)
			} else {
				w.L2L(l, n.Box.Center, s.local(parent), t.Nodes[parent].Box.Center)
			}
		}
		for _, vi := range n.V {
			if s.Cfg.UseRotatedTranslations {
				w.M2LRotated(l, n.Box.Center, s.mpole(vi), t.Nodes[vi].Box.Center)
			} else {
				w.M2L(l, n.Box.Center, s.mpole(vi), t.Nodes[vi].Box.Center)
			}
		}
		if n.IsVisibleLeaf() {
			for i := n.Start; i < n.End; i++ {
				phi, grad := w.L2P(l, n.Box.Center, s.Sys.Pos[i])
				s.Sys.Phi[i] += -g * phi
				s.Sys.Acc[i] = s.Sys.Acc[i].Add(grad.Scale(g))
			}
			s.putWS(w)
			return
		}
		s.putWS(w)
		grp := s.Cfg.Pool.NewGroup()
		for _, ci := range n.Children {
			if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
				ci := ci
				grp.Spawn(func() { rec(ci, ni) })
			}
		}
		grp.Wait()
	}
	if s.Tree.Nodes[s.Tree.Root].Count() > 0 {
		rec(s.Tree.Root, octree.NilNode)
	}
}

// AllPairsReference computes exact (softened) potentials and accelerations
// by direct summation into fresh slices, in storage order — the
// correctness baseline for tests and examples.
func AllPairsReference(sys *particle.System, k kernels.Gravity) ([]float64, []geom.Vec3) {
	n := sys.Len()
	phi := make([]float64, n)
	acc := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p, a := k.Accumulate(sys.Pos[i], sys.Pos[j], sys.Mass[j])
			phi[i] += p
			acc[i] = acc[i].Add(a)
		}
	}
	return phi, acc
}
