package core

import (
	"math"
	"testing"

	"afmm/internal/costmodel"
	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/particle"
)

// rmsAccError returns the RMS relative acceleration error of the solver's
// result against direct summation.
func rmsAccError(s *Solver) float64 {
	_, accRef := AllPairsReference(s.Sys, s.Cfg.Kernel)
	var num, den float64
	for i := range accRef {
		num += s.Sys.Acc[i].Sub(accRef[i]).Norm2()
		den += accRef[i].Norm2()
	}
	return math.Sqrt(num / den)
}

func TestSolveMatchesDirectPlummer(t *testing.T) {
	sys := distrib.Plummer(600, 1, 1, 21)
	s := NewSolver(sys, Config{P: 10, S: 16, NumGPUs: 2})
	s.Solve()
	if err := s.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if e := rmsAccError(s); e > 2e-4 {
		t.Fatalf("acceleration RMS error %g too large", e)
	}
}

func TestSolveMatchesDirectUniform(t *testing.T) {
	sys := distrib.UniformCube(500, 1, 33)
	s := NewSolver(sys, Config{P: 10, S: 20, Mode: octree.Uniform, NumGPUs: 1})
	s.Solve()
	if e := rmsAccError(s); e > 2e-4 {
		t.Fatalf("uniform FMM acceleration RMS error %g too large", e)
	}
}

func TestSolveCPUOnlyMatchesGPUPath(t *testing.T) {
	sysA := distrib.Plummer(400, 1, 1, 5)
	sysB := sysA.Clone()
	a := NewSolver(sysA, Config{P: 8, S: 16})
	b := NewSolver(sysB, Config{P: 8, S: 16, NumGPUs: 3})
	a.Solve()
	b.Solve()
	accA := a.Sys.AccInInputOrder()
	accB := b.Sys.AccInInputOrder()
	for i := range accA {
		if accA[i].Sub(accB[i]).Norm() > 1e-12*(1+accA[i].Norm()) {
			t.Fatalf("CPU-only and GPU paths disagree at body %d: %v vs %v",
				i, accA[i], accB[i])
		}
	}
}

func TestSolveAccuracyImprovesWithP(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, p := range []int{4, 8, 12} {
		sys := distrib.Plummer(400, 1, 1, 77)
		s := NewSolver(sys, Config{P: p, S: 16, NumGPUs: 1})
		s.Solve()
		e := rmsAccError(s)
		if e > prev*1.1 {
			t.Fatalf("error did not decrease with p=%d: %g (prev %g)", p, e, prev)
		}
		prev = e
	}
	if prev > 5e-5 {
		t.Fatalf("p=12 error %g too large", prev)
	}
}

func TestSofteningConsistency(t *testing.T) {
	// With softening, near-field pairs use the softened kernel while the
	// far field is unsoftened; for well-separated pairs the difference is
	// negligible. Verify total forces still track the softened direct sum.
	sys := distrib.Plummer(500, 1, 1, 13)
	k := kernels.Gravity{G: 1, Softening: 1e-3}
	s := NewSolver(sys, Config{P: 10, S: 16, Kernel: k, NumGPUs: 1})
	s.Solve()
	if e := rmsAccError(s); e > 3e-4 {
		t.Fatalf("softened solve error %g", e)
	}
}

func TestMomentumNearlyConserved(t *testing.T) {
	// Total force should vanish (Newton's third law holds exactly for
	// direct pairs and to truncation order for the far field).
	sys := distrib.Plummer(800, 1, 1, 3)
	s := NewSolver(sys, Config{P: 8, S: 32, NumGPUs: 2})
	s.Solve()
	var f geom.Vec3
	var mag float64
	for i := range sys.Acc {
		f = f.Add(sys.Acc[i].Scale(sys.Mass[i]))
		mag += sys.Acc[i].Norm() * sys.Mass[i]
	}
	if f.Norm() > 1e-4*mag {
		t.Fatalf("net force %v too large relative to %v", f.Norm(), mag)
	}
}

func TestStepTimesSane(t *testing.T) {
	sys := distrib.Plummer(2000, 1, 1, 8)
	s := NewSolver(sys, Config{P: 8, S: 32, NumGPUs: 2})
	st := s.Solve()
	if st.CPUTime <= 0 || st.GPUTime <= 0 {
		t.Fatalf("nonpositive virtual times: %+v", st)
	}
	if st.Compute != math.Max(st.CPUTime, st.GPUTime) {
		t.Fatalf("Compute != max(CPU,GPU): %+v", st)
	}
	if st.GPUEff <= 0 || st.GPUEff > 1 {
		t.Fatalf("GPU efficiency out of range: %v", st.GPUEff)
	}
	if st.CPUEff <= 0 || st.CPUEff > 1.01 {
		t.Fatalf("CPU efficiency out of range: %v", st.CPUEff)
	}
}

func TestPredictionMatchesObservationOnStableTree(t *testing.T) {
	// After observing a solve, predicting the same unchanged tree must
	// reproduce the observed CPU and GPU times closely (the coefficients
	// were derived from exactly these counts).
	sys := distrib.Plummer(3000, 1, 1, 15)
	s := NewSolver(sys, Config{P: 8, S: 48, NumGPUs: 2})
	st := s.Solve()
	cpu, gpu := s.Predict()
	if rel(cpu, st.CPUTime) > 1e-6 {
		t.Fatalf("CPU prediction %g vs observed %g", cpu, st.CPUTime)
	}
	if rel(gpu, st.GPUTime) > 1e-6 {
		t.Fatalf("GPU prediction %g vs observed %g", gpu, st.GPUTime)
	}
}

func TestSShiftsWorkBetweenCPUAndGPU(t *testing.T) {
	// The basic load-balancing premise (Fig. 3): growing S moves work from
	// the far field (CPU) to the near field (GPU).
	var prevP2P int64 = -1
	var prevM2L int64 = 1 << 62
	for _, S := range []int{8, 32, 128, 512} {
		sys := distrib.Plummer(4000, 1, 1, 99)
		s := NewSolver(sys, Config{P: 6, S: S, NumGPUs: 1, SkipFarField: true})
		st := s.Solve()
		if st.Counts[costmodel.P2P] < prevP2P {
			t.Fatalf("P2P count decreased when S grew to %d", S)
		}
		if st.Counts[costmodel.M2L] > prevM2L {
			t.Fatalf("M2L count increased when S grew to %d", S)
		}
		prevP2P = st.Counts[costmodel.P2P]
		prevM2L = st.Counts[costmodel.M2L]
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestOffloadEndpointsShiftsTime(t *testing.T) {
	// The §VIII.E extension: moving P2M/L2P to the devices must leave
	// the numerics identical while shifting virtual time from the CPU to
	// the GPU side.
	sysA := distrib.Plummer(1500, 1, 1, 4)
	sysB := sysA.Clone()
	mk := func(sys *particle.System, offload bool) (*Solver, StepTimes) {
		cfg := Config{P: 6, S: 16, NumGPUs: 2, OffloadEndpoints: offload}
		cfg.CPU.Cores = 4
		s := NewSolver(sys, cfg)
		return s, s.Solve()
	}
	_, plain := mk(sysA, false)
	_, off := mk(sysB, true)
	accA := sysA.AccInInputOrder()
	accB := sysB.AccInInputOrder()
	for i := range accA {
		if accA[i].Sub(accB[i]).Norm() > 1e-12*(1+accA[i].Norm()) {
			t.Fatalf("offload changed numerics at body %d", i)
		}
	}
	if off.CPUTime >= plain.CPUTime {
		t.Fatalf("offload did not reduce CPU time: %v vs %v", off.CPUTime, plain.CPUTime)
	}
	if off.GPUTime <= plain.GPUTime {
		t.Fatalf("offload did not charge the GPU: %v vs %v", off.GPUTime, plain.GPUTime)
	}
}

func TestRotatedTranslationsMatchDirect(t *testing.T) {
	// The O(p^3) rotation-accelerated path must agree with the direct
	// O(p^4) operators to rounding across a full solve.
	sysA := distrib.Plummer(1000, 1, 1, 17)
	sysB := sysA.Clone()
	a := NewSolver(sysA, Config{P: 10, S: 16, NumGPUs: 1})
	b := NewSolver(sysB, Config{P: 10, S: 16, NumGPUs: 1, UseRotatedTranslations: true})
	a.Solve()
	b.Solve()
	accA := sysA.AccInInputOrder()
	accB := sysB.AccInInputOrder()
	for i := range accA {
		if accA[i].Sub(accB[i]).Norm() > 1e-9*(1+accA[i].Norm()) {
			t.Fatalf("rotated path diverged at body %d: %v vs %v",
				i, accA[i], accB[i])
		}
	}
}

func TestEstimateErrorTracksOrderAndMAC(t *testing.T) {
	mk := func(p int, mac float64) ErrorBound {
		sys := distrib.Plummer(2000, 1, 1, 23)
		s := NewSolver(sys, Config{P: p, S: 32, MAC: mac, NumGPUs: 1,
			SkipFarField: true, SkipNearField: true})
		s.Solve()
		return s.EstimateError()
	}
	loose := mk(4, 0.6)
	tightP := mk(10, 0.6)
	tightMAC := mk(4, 0.4)
	if loose.Pairs == 0 || loose.MaxPair <= 0 {
		t.Fatalf("degenerate bound: %+v", loose)
	}
	if tightP.MaxPair >= loose.MaxPair {
		t.Fatalf("higher order did not tighten bound: %g vs %g",
			tightP.MaxPair, loose.MaxPair)
	}
	if tightMAC.MaxPair >= loose.MaxPair {
		t.Fatalf("stricter MAC did not tighten bound: %g vs %g",
			tightMAC.MaxPair, loose.MaxPair)
	}
	if loose.MeanPair > loose.MaxPair {
		t.Fatalf("mean %g above max %g", loose.MeanPair, loose.MaxPair)
	}
}

func TestEvaluateAtMatchesDirect(t *testing.T) {
	sys := distrib.Plummer(800, 1, 1, 29)
	s := NewSolver(sys, Config{P: 10, S: 16, NumGPUs: 1})
	s.Solve()
	// Probe points: some inside the cloud, some outside.
	probes := []geom.Vec3{
		{X: 0.1, Y: 0.2, Z: -0.1},
		{X: 1.5, Y: -0.7, Z: 0.4},
		{X: 5, Y: 5, Z: 5},
		{X: -3, Y: 0.1, Z: 0.1},
	}
	phi, field := s.EvaluateAt(probes)
	for i, x := range probes {
		var wantPhi float64
		var wantF geom.Vec3
		for j := range sys.Pos {
			p, a := s.Cfg.Kernel.Accumulate(x, sys.Pos[j], sys.Mass[j])
			wantPhi += p
			wantF = wantF.Add(a)
		}
		if rel(phi[i], wantPhi) > 1e-4 {
			t.Fatalf("probe %d: phi %g want %g", i, phi[i], wantPhi)
		}
		if field[i].Sub(wantF).Norm() > 1e-4*(1+wantF.Norm()) {
			t.Fatalf("probe %d: field %v want %v", i, field[i], wantF)
		}
	}
}

func TestEvaluateAtEmptyInputs(t *testing.T) {
	sys := distrib.Plummer(100, 1, 1, 31)
	s := NewSolver(sys, Config{P: 6, S: 8})
	s.Solve()
	phi, field := s.EvaluateAt(nil)
	if len(phi) != 0 || len(field) != 0 {
		t.Fatal("empty probe list produced output")
	}
}

func TestSolverRotationEquivariance(t *testing.T) {
	// Physics invariance: rotating all bodies by a rigid rotation must
	// rotate the accelerations (up to FMM truncation, since the octree is
	// not rotation invariant).
	sysA := distrib.Plummer(600, 1, 1, 37)
	sysB := sysA.Clone()
	// Rotate B by 90 degrees about z: (x,y,z) -> (-y,x,z).
	for i := range sysB.Pos {
		p := sysB.Pos[i]
		sysB.Pos[i] = geom.Vec3{X: -p.Y, Y: p.X, Z: p.Z}
	}
	a := NewSolver(sysA, Config{P: 10, S: 16, NumGPUs: 1})
	b := NewSolver(sysB, Config{P: 10, S: 16, NumGPUs: 1})
	a.Solve()
	b.Solve()
	accA := sysA.AccInInputOrder()
	accB := sysB.AccInInputOrder()
	var num, den float64
	for i := range accA {
		want := geom.Vec3{X: -accA[i].Y, Y: accA[i].X, Z: accA[i].Z}
		num += accB[i].Sub(want).Norm2()
		den += want.Norm2()
	}
	if e := math.Sqrt(num / den); e > 5e-5 {
		t.Fatalf("rotation equivariance violated: RMS %g", e)
	}
}

func BenchmarkEvaluateAtProbes(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	s := NewSolver(sys, Config{P: 6, S: 64, NumGPUs: 1, SkipNearField: true})
	s.Solve()
	probes := make([]geom.Vec3, 1000)
	for i := range probes {
		probes[i] = geom.Vec3{X: float64(i%10) - 5, Y: float64(i%7) - 3, Z: float64(i%13) - 6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvaluateAt(probes)
	}
	b.ReportMetric(float64(len(probes)), "probes")
}

func TestSweepModesAgree(t *testing.T) {
	// The level-synchronous far field (flat per-level ranges, batched M2L)
	// and the legacy task recursion must produce the same potentials and
	// accelerations to rounding: the batched M2L is the rotated operator,
	// which agrees with the direct one to ~1e-9 relative.
	for _, tc := range []struct {
		name string
		mut  func(cfg *Config)
	}{
		{"direct", func(cfg *Config) {}},
		{"rotated", func(cfg *Config) { cfg.UseRotatedTranslations = true }},
		{"uniform", func(cfg *Config) { cfg.Mode = octree.Uniform }},
		{"gpus", func(cfg *Config) { cfg.NumGPUs = 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sysA := distrib.Plummer(900, 1, 1, 19)
			sysB := sysA.Clone()
			cfgA := Config{P: 8, S: 16, SweepMode: SweepRecursive}
			cfgB := Config{P: 8, S: 16, SweepMode: SweepLevelSync}
			tc.mut(&cfgA)
			tc.mut(&cfgB)
			a := NewSolver(sysA, cfgA)
			b := NewSolver(sysB, cfgB)
			a.Solve()
			b.Solve()
			accA, accB := sysA.AccInInputOrder(), sysB.AccInInputOrder()
			phiA, phiB := sysA.PhiInInputOrder(), sysB.PhiInInputOrder()
			for i := range accA {
				if accA[i].Sub(accB[i]).Norm() > 1e-8*(1+accA[i].Norm()) {
					t.Fatalf("acc diverged at body %d: %v vs %v", i, accA[i], accB[i])
				}
				if math.Abs(phiA[i]-phiB[i]) > 1e-8*(1+math.Abs(phiA[i])) {
					t.Fatalf("phi diverged at body %d: %v vs %v", i, phiA[i], phiB[i])
				}
			}
			// Both modes stay within the solver's error bound vs direct sum.
			if e := rmsAccError(b); e > 2e-4 {
				t.Fatalf("level-sync error %g vs direct sum", e)
			}
		})
	}
}

func TestSweepModesAgreeAfterTreeEdits(t *testing.T) {
	// The level index must stay correct through the balancer's tree
	// mutations: solve, move bodies, Refill + EnforceS, solve again, and
	// compare modes on the edited tree.
	sysA := distrib.Plummer(800, 1, 1, 23)
	sysB := sysA.Clone()
	a := NewSolver(sysA, Config{P: 6, S: 24, SweepMode: SweepRecursive})
	b := NewSolver(sysB, Config{P: 6, S: 24})
	a.Solve()
	b.Solve()
	move := func(sys *particle.System) {
		for i := range sys.Pos {
			d := sys.Pos[i].Scale(0.05)
			sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{X: d.Y, Y: -d.X, Z: d.Z * 0.5})
		}
	}
	// Both systems are permuted identically (same tree ops so far), so the
	// same storage-order move keeps them physically identical.
	move(sysA)
	move(sysB)
	a.Refill()
	b.Refill()
	a.EnforceS()
	b.EnforceS()
	a.Solve()
	b.Solve()
	accA, accB := sysA.AccInInputOrder(), sysB.AccInInputOrder()
	for i := range accA {
		if accA[i].Sub(accB[i]).Norm() > 1e-8*(1+accA[i].Norm()) {
			t.Fatalf("post-edit acc diverged at body %d: %v vs %v", i, accA[i], accB[i])
		}
	}
}

// skewedSystem builds a distribution with a deliberately heavy near-field
// tail: most bodies in one dense clump that bottoms out at MaxDepth (so a
// few leaves carry most of the P2P interactions) plus a sparse halo.
func skewedSystem(n int, seed int64) *particle.System {
	sys := distrib.UniformCube(n, 10, seed)
	for i := 0; i < n*9/10; i++ {
		sys.Pos[i] = sys.Pos[i].Scale(1e-3) // 90% of bodies inside a tiny core
	}
	return sys
}

func BenchmarkNearFieldSkewed(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    SweepMode
	}{{"weighted", SweepLevelSync}, {"legacy-chunked", SweepRecursive}} {
		b.Run(mode.name, func(b *testing.B) {
			sys := skewedSystem(8000, 3)
			s := NewSolver(sys, Config{P: 4, S: 64, MaxDepth: 6, SweepMode: mode.m,
				SkipFarField: true})
			s.Tree.BuildLists()
			s.Sys.ResetAccumulators()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.runCPUNearField()
			}
		})
	}
}
