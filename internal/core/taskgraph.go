package core

import (
	"time"

	"afmm/internal/dag"
	"afmm/internal/expansion"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

// Task-graph solve path: the whole step as one dependency graph (see
// internal/dag) instead of the fork-join phase barriers. Up-sweep chunks
// feed exactly the down-sweep chunks that read them; near-field work is
// an independent root; the only near/far join is each leaf chunk's L2P —
// the single far-field write into the body accumulators. Results are
// bit-identical to the level-synchronous sweeps (same chunk bodies, same
// per-node operation order, one L2P addition per body).

// taskTags maps the dag node categories onto telemetry span kinds; the
// milestone tag is negative so join nodes are never emitted as spans.
var taskTags = dag.Tags{
	Up:        int32(telemetry.SpanTaskUp),
	Down:      int32(telemetry.SpanTaskDown),
	L2P:       int32(telemetry.SpanTaskL2P),
	Near:      int32(telemetry.SpanTaskNear),
	Milestone: -1,
}

// taskGraphResult carries what Solve needs from the graph region: the
// device time, per-phase durations (union of the phase's node spans, the
// closest analogue of the fork-join phase walls), the region wall clock,
// and the graph statistics for telemetry/benchmarks.
type taskGraphResult struct {
	gpuTime             float64
	near, up, down, l2p time.Duration
	region              time.Duration
	stats               sched.GraphStats
}

// taskGraphEligible reports whether this Solve runs the dependency-driven
// path: opted in, level-synchronous chunk bodies available, a far field
// present, and a pool that can actually exploit the removed barriers (a
// single worker would only time-slice the ready queues).
func (s *Solver) taskGraphEligible() bool {
	if !s.Cfg.TaskGraph {
		return false
	}
	if s.Cfg.SweepMode != SweepLevelSync || s.Cfg.SkipFarField {
		return false
	}
	return s.Cfg.Pool.Workers() >= 2
}

// TaskGraphStats returns the graph statistics of the most recent
// task-graph Solve: node/edge counts, ready-queue depth histogram, and
// the critical-path vs makespan gap. The zero value is returned while no
// solve has taken the task-graph path.
func (s *Solver) TaskGraphStats() sched.GraphStats { return s.taskStats }

// solveTaskGraph builds and runs the step DAG. The caller has already
// run BuildLists, accumulator reset, slab sizing, M2L table preparation,
// the precision gate, and (with a cluster) Partition.
func (s *Solver) solveTaskGraph() taskGraphResult {
	t := s.Tree
	rec := s.Cfg.Rec
	var out taskGraphResult

	// Prewarm the lazily-built caches graph nodes read from worker
	// goroutines (NearField also resolves VisibleLeaves).
	t.NearField()

	// Reserve driver slots before the build: the builder's chunk bounds
	// are reservation-aware, so they must see the final partition.
	if k := s.reservedDrivers(); k > 0 {
		s.Cfg.Pool.SetReserved(k)
		defer s.Cfg.Pool.SetReserved(0)
	}

	// Table eligibility is per-sweep state on the fork-join path; settle
	// it before the build so down chunks read a constant.
	s.m2lUse = s.m2lTab != nil && s.m2lEpoch == t.ListEpoch()

	spec := dag.Spec{
		Tree:       t,
		Pool:       s.Cfg.Pool,
		Passes:     1,
		UpWeight:   upWeight,
		DownWeight: downWeight,
		UpChunk: func(_, _ int, nodes []int32) func() {
			return func() {
				w := s.getWS()
				for _, ni := range nodes {
					s.upNode(w, ni)
				}
				s.putWS(w)
			}
		},
		DownChunk: func(_, _ int, nodes []int32) func() {
			return func() {
				w := s.getWS()
				var srcs []expansion.M2LSource
				for _, ni := range nodes {
					srcs = s.downNode(w, ni, srcs, false)
				}
				s.putWS(w)
			}
		},
		L2P: func(leaves []int32) func() {
			return func() {
				w := s.getWS()
				for _, ni := range leaves {
					s.leafL2P(w, ni)
				}
				s.putWS(w)
			}
		},
		Tags: taskTags,
	}
	if s.Cluster != nil {
		fn := vgpu.P2PFunc(s.p2pPair)
		if s.Cfg.SkipNearField {
			fn = nil
		}
		spec.NearSingle = func() {
			out.gpuTime = s.Cluster.ExecuteParallel(t, fn, s.Cfg.Pool)
		}
	} else if !s.Cfg.SkipNearField {
		sch := t.NearField()
		f32 := s.f32Active
		spec.NearChunk = func(lo, hi int) func() {
			return func() { s.nearFieldChunk(sch, f32, lo, hi) }
		}
	}

	g := dag.Build(spec)
	g.SetTrace(true)
	regionTimer := sched.StartTimer()
	if err := g.Run(); err != nil {
		// The builder only emits child->parent, parent->child and
		// up->down edges — a cycle is a builder bug, not a data condition.
		panic(err)
	}
	out.region = regionTimer.Elapsed()
	out.stats = g.Stats()
	s.taskStats = out.stats
	out.near = sched.SpanUnion(out.stats.Spans, taskTags.Near)
	out.up = sched.SpanUnion(out.stats.Spans, taskTags.Up)
	out.down = sched.SpanUnion(out.stats.Spans, taskTags.Down)
	out.l2p = sched.SpanUnion(out.stats.Spans, taskTags.L2P)
	if rec.Enabled() {
		for _, sp := range out.stats.Spans {
			if sp.Tag < 0 || sp.DurNs <= 0 {
				continue // milestones and cancelled nodes
			}
			rec.AddSpan(telemetry.SpanKind(sp.Tag), sp.Arg,
				out.stats.Start.Add(time.Duration(sp.StartNs)),
				time.Duration(sp.DurNs))
		}
		rec.SetTaskGraph(out.stats.Nodes, out.stats.Edges, out.stats.MaxReady,
			out.stats.CriticalPathNs, out.stats.MakespanNs)
	}
	return out
}
