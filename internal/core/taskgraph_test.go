package core

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// taskGraphPair builds two solvers over cloned systems: one on the
// dependency-driven task-graph path, one on the fork-join reference path
// (overlap left at its default so the graph is also checked against the
// overlapped schedule, the production default).
func taskGraphPair(t *testing.T, workers int, mut func(cfg *Config)) (tg, ref *Solver) {
	t.Helper()
	sysA := skewedSystem(1200, 7)
	sysB := sysA.Clone()
	cfgA := Config{P: 6, S: 24, Pool: sched.NewPool(workers), TaskGraph: true}
	cfgB := Config{P: 6, S: 24, Pool: sched.NewPool(workers)}
	mut(&cfgA)
	mut(&cfgB)
	return NewSolver(sysA, cfgA), NewSolver(sysB, cfgB)
}

// TestTaskGraphBitIdenticalGravity: the DAG schedule must not change a
// single ulp relative to the fork-join path, across CPU-only and device
// configurations, before and after the balancer's tree edits
// (Refill + EnforceS), on 2- and 4-worker pools.
func TestTaskGraphBitIdenticalGravity(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(cfg *Config)
	}{
		{"cpu-only", func(cfg *Config) {}},
		{"cpu-gather", func(cfg *Config) { cfg.GatherSources = true }},
		{"one-gpu", func(cfg *Config) { cfg.NumGPUs = 1 }},
		{"two-gpus", func(cfg *Config) { cfg.NumGPUs = 2 }},
		{"two-gpus-reserved", func(cfg *Config) { cfg.NumGPUs = 2; cfg.ReservedDrivers = 2 }},
		{"no-m2l-table", func(cfg *Config) { cfg.DisableM2LTable = true }},
	} {
		for _, workers := range []int{2, 4} {
			t.Run(tc.name, func(t *testing.T) {
				tg, ref := taskGraphPair(t, workers, tc.mut)
				tg.Solve()
				ref.Solve()
				assertBitIdentical(t, tg.Sys, ref.Sys)

				// Identity must survive the balancer's tree edits.
				move := func(sys *particle.System) {
					for i := range sys.Pos {
						d := sys.Pos[i].Scale(0.05)
						sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{X: d.Y, Y: -d.X, Z: d.Z * 0.5})
					}
				}
				move(tg.Sys)
				move(ref.Sys)
				tg.Refill()
				ref.Refill()
				tg.EnforceS()
				ref.EnforceS()
				tg.Solve()
				ref.Solve()
				assertBitIdentical(t, tg.Sys, ref.Sys)
			})
		}
	}
}

// TestTaskGraphBitIdenticalUnderFaults: a fail-stop device loss recovered
// by the host fallback must stay bit-identical on the graph path too (the
// recovery rows run inside the near node, before the L2P join).
func TestTaskGraphBitIdenticalUnderFaults(t *testing.T) {
	sysA := testSystem(t, 2500)
	sysB := testSystem(t, 2500)
	cfgA, _ := faultCfg("gpu0:failstop@step1", t)
	cfgB, _ := faultCfg("gpu0:failstop@step1", t)
	cfgA.TaskGraph = true
	cfgA.Pool = sched.NewPool(4)
	cfgB.Pool = sched.NewPool(4)
	a := NewSolver(sysA, cfgA)
	b := NewSolver(sysB, cfgB)
	for step := 0; step < 3; step++ {
		if _, err := a.SolveChecked(); err != nil {
			t.Fatalf("taskgraph step %d: %v", step, err)
		}
		if _, err := b.SolveChecked(); err != nil {
			t.Fatalf("fork-join step %d: %v", step, err)
		}
		for i := range sysA.Phi {
			if sysA.Phi[i] != sysB.Phi[i] || sysA.Acc[i] != sysB.Acc[i] {
				t.Fatalf("step %d: divergence at body %d: phi %g vs %g",
					step, i, sysA.Phi[i], sysB.Phi[i])
			}
		}
	}
	if rep := a.Cluster.LastReport(); rep.DeadDevices != 1 {
		t.Fatalf("taskgraph run: want 1 dead device, got %d", rep.DeadDevices)
	}
}

// TestTaskGraphTelemetry: graph solves report the DAG shape and schedule
// quality, emit per-node spans on the task kinds, and the reservation is
// fully released afterwards.
func TestTaskGraphTelemetry(t *testing.T) {
	rec := telemetry.New(telemetry.Options{Keep: true})
	tg, _ := taskGraphPair(t, 4, func(cfg *Config) { cfg.NumGPUs = 1 })
	tg.SetRecorder(rec)
	st := tg.Solve()
	rec.EndStep()
	if !st.Host.Overlapped {
		t.Fatal("graph solve did not report Overlapped")
	}
	if st.Host.SerialWall < st.Host.Wall {
		t.Fatalf("serial-equivalent wall %v < wall %v", st.Host.SerialWall, st.Host.Wall)
	}
	if r := tg.Cfg.Pool.Reserved(); r != 0 {
		t.Fatalf("pool still has %d reserved workers after Solve", r)
	}
	steps := rec.Steps()
	if len(steps) == 0 {
		t.Fatal("no step records")
	}
	s0 := steps[0]
	if s0.TaskNodes <= 0 || s0.TaskEdges <= 0 || s0.TaskMaxReady < 1 {
		t.Fatalf("task graph stats not recorded: %+v", s0)
	}
	if s0.TaskCriticalNs <= 0 || s0.TaskMakespanNs < s0.TaskCriticalNs {
		t.Fatalf("critical path %d / makespan %d", s0.TaskCriticalNs, s0.TaskMakespanNs)
	}
	var up, down, l2p, near int
	for _, sp := range s0.Spans {
		switch sp.Kind {
		case telemetry.SpanTaskUp:
			up++
		case telemetry.SpanTaskDown:
			down++
		case telemetry.SpanTaskL2P:
			l2p++
		case telemetry.SpanTaskNear:
			near++
		}
	}
	if up == 0 || down == 0 || l2p == 0 || near == 0 {
		t.Fatalf("missing task spans: up=%d down=%d l2p=%d near=%d", up, down, l2p, near)
	}
}

// TestTaskGraphIneligibleFallsBack: the knob engages only where the graph
// can express the step — recursive sweeps, far-field-skipping solves and
// 1-worker pools keep their existing paths.
func TestTaskGraphIneligibleFallsBack(t *testing.T) {
	sys := distrib.Plummer(500, 1, 1, 11)
	rec := NewSolver(sys, Config{P: 4, S: 32, TaskGraph: true, SweepMode: SweepRecursive,
		Overlap: OverlapOff})
	if st := rec.Solve(); st.Host.Overlapped {
		t.Fatal("recursive sweep ran the graph path")
	}
	one := NewSolver(distrib.Plummer(500, 1, 1, 11), Config{
		P: 4, S: 32, TaskGraph: true, Pool: sched.NewPool(1),
	})
	if st := one.Solve(); st.Host.Overlapped {
		t.Fatal("1-worker pool ran the graph path")
	}
	skip := NewSolver(distrib.Plummer(500, 1, 1, 11), Config{
		P: 4, S: 32, TaskGraph: true, SkipFarField: true, Overlap: OverlapOff,
	})
	if st := skip.Solve(); st.Host.Overlapped {
		t.Fatal("far-field-skipping solve ran the graph path")
	}
}
