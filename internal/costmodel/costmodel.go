// Package costmodel implements the paper's time-prediction machinery
// (§IV.D): per-operation cost coefficients derived from observed times,
// and the predicted CPU/GPU runtimes
//
//	T_cpu = sum_op M(op) * c(op)        (P2M, M2M, M2L, L2L, L2P)
//	T_gpu = M(P2P) * c(P2P)
//
// for a candidate tree, where M(op) counts how many times each operation
// would be applied. Coefficients are observational: after each step they
// are re-derived as total-time / application-count, so the single CPU
// coefficient absorbs core count, memory behaviour and expansion order,
// and the GPU coefficient tracks the device's current efficiency on the
// current tree shape.
package costmodel

import (
	"fmt"

	"afmm/internal/octree"
)

// Op identifies one of the six FMM operations.
type Op int

// The six operations of the cost model.
const (
	P2M Op = iota
	M2M
	M2L
	L2L
	L2P
	P2P
	NumOps
)

var opNames = [NumOps]string{"P2M", "M2M", "M2L", "L2L", "L2P", "P2P"}

func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Counts holds M(op) for a tree, in the model's units (see octree.OpCounts).
type Counts [NumOps]int64

// FromTree converts octree operation counts.
func FromTree(c octree.OpCounts) Counts {
	return Counts{c.P2M, c.M2M, c.M2L, c.L2L, c.L2P, c.P2P}
}

// Coefficients are the observed per-application costs in seconds.
// CPU coefficients describe the whole CPU subsystem (they already include
// the division of work over cores); the P2P coefficient describes the
// whole GPU system (max kernel time over total interactions), as in the
// paper.
type Coefficients [NumOps]float64

// Observation is one step's observed totals: time spent per operation and
// number of applications.
type Observation struct {
	Time   [NumOps]float64
	Counts Counts
}

// Model accumulates observations and produces predictions.
type Model struct {
	Coef Coefficients
	// seen marks coefficients that have at least one observation;
	// unobserved coefficients stay at their prior.
	seen [NumOps]bool
	// Smoothing in [0,1): weight given to the previous coefficient when
	// a new observation arrives. 0 reproduces the paper's
	// last-observation behaviour; a little smoothing stabilizes
	// prediction under noisy virtual-GPU efficiency swings.
	Smoothing float64
}

// NewModel returns a model primed with prior coefficients (used before any
// observation exists, e.g. for the very first prediction).
func NewModel(prior Coefficients) *Model {
	return &Model{Coef: prior}
}

// Observe folds one step's measurements into the coefficients.
func (m *Model) Observe(o Observation) {
	for op := Op(0); op < NumOps; op++ {
		n := o.Counts[op]
		if n <= 0 {
			continue
		}
		c := o.Time[op] / float64(n)
		if m.seen[op] {
			c = m.Smoothing*m.Coef[op] + (1-m.Smoothing)*c
		}
		m.Coef[op] = c
		m.seen[op] = true
	}
}

// ScaleGPU multiplies the P2P coefficient by factor — the immediate
// re-derivation of the GPU-side prediction when the near-field capacity
// changes (device loss or derating): the same interaction count spread
// over capacity C' costs C/C' times the old coefficient. The next
// Observe refines the estimate from the measured degraded step; ScaleGPU
// keeps predictions honest in between.
func (m *Model) ScaleGPU(factor float64) {
	if factor > 0 {
		m.Coef[P2P] *= factor
	}
}

// ScaleP2P multiplies the P2P coefficient by factor — the immediate
// prediction update when the near-field kernel's per-pair rate changes
// discontinuously (the float32 precision gate toggling). Like ScaleGPU,
// it only bridges until the next Observe fits the measured rate, so the
// balancer's S search re-converges without a mispredicted step.
func (m *Model) ScaleP2P(factor float64) {
	if factor > 0 {
		m.Coef[P2P] *= factor
	}
}

// PredictCPU returns the predicted far-field (CPU) time for the counts.
func (m *Model) PredictCPU(c Counts) float64 {
	var t float64
	for _, op := range []Op{P2M, M2M, M2L, L2L, L2P} {
		t += float64(c[op]) * m.Coef[op]
	}
	return t
}

// PredictGPU returns the predicted near-field (GPU) time.
func (m *Model) PredictGPU(c Counts) float64 {
	return float64(c[P2P]) * m.Coef[P2P]
}

// PredictCompute returns the predicted compute time — the max of the CPU
// and GPU predictions, matching the paper's Compute Time definition.
func (m *Model) PredictCompute(c Counts) float64 {
	cpu := m.PredictCPU(c)
	gpu := m.PredictGPU(c)
	if cpu > gpu {
		return cpu
	}
	return gpu
}
