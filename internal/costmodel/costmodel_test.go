package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"afmm/internal/octree"
)

func TestOpString(t *testing.T) {
	want := []string{"P2M", "M2M", "M2L", "L2L", "L2P", "P2P"}
	for op := Op(0); op < NumOps; op++ {
		if op.String() != want[op] {
			t.Fatalf("op %d string %q", op, op.String())
		}
	}
	if Op(99).String() == "" {
		t.Fatal("out-of-range op has empty string")
	}
}

func TestObserveDerivesCoefficients(t *testing.T) {
	m := NewModel(Coefficients{})
	var o Observation
	o.Counts = Counts{100, 10, 50, 10, 100, 1000}
	o.Time = [NumOps]float64{1e-4, 1e-5, 5e-4, 1e-5, 2e-4, 3e-3}
	m.Observe(o)
	if got := m.Coef[P2M]; math.Abs(got-1e-6) > 1e-18 {
		t.Fatalf("c(P2M) = %v", got)
	}
	if got := m.Coef[P2P]; math.Abs(got-3e-6) > 1e-18 {
		t.Fatalf("c(P2P) = %v", got)
	}
	// Prediction on the same counts reproduces the observed totals.
	cpu := m.PredictCPU(o.Counts)
	wantCPU := 1e-4 + 1e-5 + 5e-4 + 1e-5 + 2e-4
	if math.Abs(cpu-wantCPU) > 1e-15 {
		t.Fatalf("PredictCPU %v want %v", cpu, wantCPU)
	}
	if gpu := m.PredictGPU(o.Counts); math.Abs(gpu-3e-3) > 1e-15 {
		t.Fatalf("PredictGPU %v", gpu)
	}
}

func TestObserveSkipsZeroCounts(t *testing.T) {
	prior := Coefficients{}
	prior[M2L] = 7e-6
	m := NewModel(prior)
	var o Observation
	o.Counts = Counts{10, 0, 0, 0, 10, 0}
	o.Time[P2M] = 1e-5
	o.Time[L2P] = 2e-5
	m.Observe(o)
	if m.Coef[M2L] != 7e-6 {
		t.Fatalf("unobserved coefficient overwritten: %v", m.Coef[M2L])
	}
}

func TestSmoothing(t *testing.T) {
	m := NewModel(Coefficients{})
	m.Smoothing = 0.5
	obs := func(c float64) {
		var o Observation
		o.Counts = Counts{1, 0, 0, 0, 0, 0}
		o.Time[P2M] = c
		m.Observe(o)
	}
	obs(1.0) // first observation: taken as-is
	obs(2.0) // smoothed: 0.5*1 + 0.5*2 = 1.5
	if math.Abs(m.Coef[P2M]-1.5) > 1e-15 {
		t.Fatalf("smoothed coefficient %v", m.Coef[P2M])
	}
}

func TestPredictComputeIsMax(t *testing.T) {
	f := func(cpuScale, gpuScale uint16) bool {
		m := NewModel(Coefficients{})
		m.Coef[M2L] = float64(cpuScale) * 1e-9
		m.Coef[P2P] = float64(gpuScale) * 1e-9
		c := Counts{0, 0, 1000, 0, 0, 1000}
		want := math.Max(m.PredictCPU(c), m.PredictGPU(c))
		return m.PredictCompute(c) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromTree(t *testing.T) {
	oc := octree.OpCounts{P2M: 1, M2M: 2, M2L: 3, L2L: 4, L2P: 5, P2P: 6}
	c := FromTree(oc)
	want := Counts{1, 2, 3, 4, 5, 6}
	if c != want {
		t.Fatalf("FromTree = %v", c)
	}
}
