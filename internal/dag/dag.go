// Package dag assembles one FMM step as a dependency graph over the
// sched task-graph runtime, shared by the gravity and Stokes solvers.
//
// The fork-join sweeps end every phase and every octree level in a full
// barrier; the DAG keeps only the semantic dependencies:
//
//   - an up-sweep chunk at level L depends on the level-L+1 chunks that
//     hold its children (cell-range granularity, so one slow chunk only
//     blocks its own ancestors, not the whole level);
//   - a down-sweep chunk at level L depends on the level-L-1 chunks
//     holding its parents (L2L) and on the up sweep having finished at
//     every level its V-list partners live on (M2L reads multipoles;
//     the adaptive dual traversal pairs nodes across levels, so the
//     partner levels are collected per chunk and joined through
//     per-level up milestones);
//   - near-field work (CPU CSR chunks, or the device cluster walk) is
//     an independent root;
//   - a leaf-evaluation (L2P) node depends on its down-sweep chunk and
//     on exactly the near-field nodes that write its leaves' bodies —
//     the only join between the two phases, and a semantic one: L2P is
//     the single far-field write into the body accumulators.
//
// Bit-identity with the level-synchronous sweeps follows from the node
// granularity: every multipole/local is computed wholly inside one node
// with a fixed internal operation order, and every body receives its
// near-field contributions in CSR row order plus exactly one L2P
// addition, so no execution interleaving can reorder floating-point
// operations.
package dag

import (
	"sort"

	"afmm/internal/octree"
	"afmm/internal/sched"
)

// Tags carries the caller's span-kind values for the node categories;
// they are stored as the opaque node tag and surface in trace spans.
type Tags struct {
	Up, Down, L2P, Near, Milestone int32
}

// Spec describes one step's DAG. The chunk callbacks are invoked at
// build time with the node ranges and return the closure executed when
// the graph node runs; pass indexes the harmonic far-field pass (always
// 0 for gravity; 0..3 for Stokes, whose passes pipeline independently
// until the combined L2P).
type Spec struct {
	Tree   *octree.Tree
	Pool   *sched.Pool
	Passes int // far-field passes; <= 0 means 1

	// Per-node chunking weights, identical to the level-sync sweeps so
	// graph chunks match ParallelRangeWeightedClass boundaries.
	UpWeight   func(n *octree.Node) int64
	DownWeight func(n *octree.Node) int64

	// UpChunk/DownChunk build one far-field chunk body over the given
	// level slice. DownChunk must NOT evaluate L2P (that is the L2P
	// node's job, after the near field converges).
	UpChunk   func(pass, level int, nodes []int32) func()
	DownChunk func(pass, level int, nodes []int32) func()
	// L2P builds the leaf-evaluation body for the given visible leaves
	// (reading all passes' finalized locals). nil skips leaf nodes.
	L2P func(leaves []int32) func()

	// Exactly one of the near-field forms (or neither, when the near
	// field is skipped): NearSingle is one node wrapping the device
	// cluster walk; NearChunk builds one CPU CSR chunk body over rows
	// [lo, hi) of Tree.NearField().
	NearSingle func()
	NearChunk  func(lo, hi int) func()

	Tags Tags
}

// Build assembles the graph. The tree's level order and (when NearChunk
// is used) near-field schedule are resolved here, on the calling
// goroutine, so graph nodes only read settled caches.
func Build(spec Spec) *sched.Graph {
	t := spec.Tree
	pool := spec.Pool
	levels := t.LevelOrder()
	nLevels := len(levels)
	passes := spec.Passes
	if passes <= 0 {
		passes = 1
	}
	g := pool.NewGraph()

	// Position of every node within its level slice: children of a
	// contiguous DFS-ordered parent range form a contiguous range at the
	// next level, so chunk-to-chunk dependencies reduce to span overlap.
	pos := make([]int32, len(t.Nodes))
	for _, lvNodes := range levels {
		for i, ni := range lvNodes {
			pos[ni] = int32(i)
		}
	}

	// Near-field roots.
	nearSingle := sched.NodeID(-1)
	var nearIDs []sched.NodeID
	var rowOf, rowChunk []int32
	if spec.NearSingle != nil {
		nearSingle = g.Node(sched.ClassNear, spec.Tags.Near, 0, spec.NearSingle)
	} else if spec.NearChunk != nil {
		sch := t.NearField()
		if len(sch.Weights) > 0 {
			bounds := pool.WeightedBounds(sched.ClassNear, sch.Weights)
			rowChunk = make([]int32, len(sch.Weights))
			for c := 0; c+1 < len(bounds); c++ {
				lo, hi := bounds[c], bounds[c+1]
				id := g.Node(sched.ClassNear, spec.Tags.Near, int32(c), spec.NearChunk(lo, hi))
				for r := lo; r < hi; r++ {
					rowChunk[r] = int32(len(nearIDs))
				}
				nearIDs = append(nearIDs, id)
			}
			rowOf = make([]int32, len(t.Nodes))
			for i := range rowOf {
				rowOf[i] = -1
			}
			for r, li := range sch.Leaves {
				rowOf[li] = int32(r)
			}
		}
	}

	// Per-level chunk bounds for both sweeps (reservation-aware, same as
	// the level-sync ParallelRangeWeightedClass).
	upBounds := make([][]int, nLevels)
	downBounds := make([][]int, nLevels)
	var wbuf []int64
	weigh := func(nodes []int32, w func(*octree.Node) int64) []int64 {
		wbuf = wbuf[:0]
		for _, ni := range nodes {
			wbuf = append(wbuf, w(&t.Nodes[ni]))
		}
		return wbuf
	}
	for lv := 0; lv < nLevels; lv++ {
		if len(levels[lv]) == 0 {
			continue
		}
		upBounds[lv] = pool.WeightedBounds(sched.ClassFar, weigh(levels[lv], spec.UpWeight))
		downBounds[lv] = pool.WeightedBounds(sched.ClassFar, weigh(levels[lv], spec.DownWeight))
	}

	// Up sweep, bottom-up: chunk nodes plus one milestone per (pass,
	// level) joining the level's chunks (a single-chunk level is its own
	// milestone). The milestones carry the cross-level M2L dependencies.
	upIDs := make([][][]sched.NodeID, passes)
	upMile := make([][]sched.NodeID, passes)
	for p := 0; p < passes; p++ {
		upIDs[p] = make([][]sched.NodeID, nLevels)
		upMile[p] = make([]sched.NodeID, nLevels)
		for lv := range upMile[p] {
			upMile[p][lv] = -1
		}
		for lv := nLevels - 1; lv >= 0; lv-- {
			nodes := levels[lv]
			if len(nodes) == 0 {
				continue
			}
			b := upBounds[lv]
			for c := 0; c+1 < len(b); c++ {
				lo, hi := b[c], b[c+1]
				id := g.Node(sched.ClassFar, spec.Tags.Up, int32(lv), spec.UpChunk(p, lv, nodes[lo:hi]))
				if lv+1 < nLevels && len(upIDs[p][lv+1]) > 0 {
					if clo, chi, ok := childSpan(t, pos, nodes[lo:hi]); ok {
						forChunks(upBounds[lv+1], clo, chi+1, func(k int) {
							g.Edge(upIDs[p][lv+1][k], id)
						})
					}
				}
				upIDs[p][lv] = append(upIDs[p][lv], id)
			}
			if len(upIDs[p][lv]) == 1 {
				upMile[p][lv] = upIDs[p][lv][0]
			} else {
				ms := g.Node(sched.ClassFar, spec.Tags.Milestone, int32(lv), func() {})
				for _, id := range upIDs[p][lv] {
					g.Edge(id, ms)
				}
				upMile[p][lv] = ms
			}
		}
	}

	// Down sweep, top-down, with the combined L2P nodes hanging off each
	// level's down chunks.
	downIDs := make([][][]sched.NodeID, passes)
	for p := range downIDs {
		downIDs[p] = make([][]sched.NodeID, nLevels)
	}
	vSeen := make([]bool, nLevels)
	var vTouched []int
	for lv := 0; lv < nLevels; lv++ {
		nodes := levels[lv]
		if len(nodes) == 0 {
			continue
		}
		b := downBounds[lv]
		for c := 0; c+1 < len(b); c++ {
			lo, hi := b[c], b[c+1]
			// Levels holding this chunk's V-list partners (the adaptive
			// traversal pairs nodes across levels).
			vTouched = vTouched[:0]
			for _, ni := range nodes[lo:hi] {
				for _, vi := range t.Nodes[ni].V {
					if pl := int(t.Nodes[vi].Level); !vSeen[pl] {
						vSeen[pl] = true
						vTouched = append(vTouched, pl)
					}
				}
			}
			for p := 0; p < passes; p++ {
				id := g.Node(sched.ClassFar, spec.Tags.Down, int32(lv), spec.DownChunk(p, lv, nodes[lo:hi]))
				if lv > 0 && len(downIDs[p][lv-1]) > 0 {
					plo, phi, ok := parentSpan(t, pos, nodes[lo:hi])
					if ok {
						forChunks(downBounds[lv-1], plo, phi+1, func(k int) {
							g.Edge(downIDs[p][lv-1][k], id)
						})
					}
				}
				for _, pl := range vTouched {
					if upMile[p][pl] >= 0 {
						g.Edge(upMile[p][pl], id)
					}
				}
				downIDs[p][lv] = append(downIDs[p][lv], id)
			}
			for _, pl := range vTouched {
				vSeen[pl] = false
			}
			if spec.L2P == nil {
				continue
			}
			var leaves []int32
			for _, ni := range nodes[lo:hi] {
				if t.Nodes[ni].IsVisibleLeaf() {
					leaves = append(leaves, ni)
				}
			}
			if len(leaves) == 0 {
				continue
			}
			l2p := g.Node(sched.ClassFar, spec.Tags.L2P, int32(lv), spec.L2P(leaves))
			for p := 0; p < passes; p++ {
				g.Edge(downIDs[p][lv][c], l2p)
			}
			switch {
			case nearSingle >= 0:
				g.Edge(nearSingle, l2p)
			case nearIDs != nil:
				// Depend on exactly the near chunks whose CSR rows write
				// these leaves' bodies (rows are target-leaf-major).
				last := int32(-1)
				for _, li := range leaves {
					r := rowOf[li]
					if r < 0 {
						continue
					}
					if k := rowChunk[r]; k != last {
						g.Edge(nearIDs[k], l2p)
						last = k
					}
				}
			}
		}
	}
	return g
}

// childSpan returns the position span (inclusive) at level lv+1 covered
// by the children of the given level-lv nodes; ok is false when no node
// has an occupied child.
func childSpan(t *octree.Tree, pos []int32, nodes []int32) (lo, hi int, ok bool) {
	lo, hi = 1<<30, -1
	for _, ni := range nodes {
		for _, ci := range t.Nodes[ni].Children {
			if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
				p := int(pos[ci])
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
	}
	return lo, hi, hi >= 0
}

// parentSpan returns the position span (inclusive) at level lv-1 covered
// by the parents of the given level-lv nodes.
func parentSpan(t *octree.Tree, pos []int32, nodes []int32) (lo, hi int, ok bool) {
	lo, hi = 1<<30, -1
	for _, ni := range nodes {
		if pi := t.Nodes[ni].Parent; pi != octree.NilNode {
			p := int(pos[pi])
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return lo, hi, hi >= 0
}

// forChunks invokes f(k) for every chunk k of bounds whose range
// [bounds[k], bounds[k+1]) intersects [lo, hi).
func forChunks(bounds []int, lo, hi int, f func(k int)) {
	if len(bounds) < 2 || lo >= hi {
		return
	}
	k0 := sort.SearchInts(bounds, lo+1) - 1
	if k0 < 0 {
		k0 = 0
	}
	k1 := sort.SearchInts(bounds, hi) - 1
	if k1 > len(bounds)-2 {
		k1 = len(bounds) - 2
	}
	for k := k0; k <= k1; k++ {
		f(k)
	}
}
