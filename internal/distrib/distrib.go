// Package distrib generates deterministic initial particle distributions
// for the experiments: the Plummer model used throughout the paper, uniform
// cubes for the uniform-gap study, and a few stress distributions.
package distrib

import (
	"math"
	"math/rand"

	"afmm/internal/geom"
	"afmm/internal/particle"
)

// Plummer returns n bodies sampled from a Plummer sphere with scale radius
// a, centered at the origin, each with mass 1 (as in the paper's test
// problem). Velocities are drawn from the isotropic Plummer distribution
// function using the standard Aarseth-Henon-Wielen rejection method, scaled
// for G = g and total mass n.
func Plummer(n int, a, g float64, seed int64) *particle.System {
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	totalMass := float64(n)
	for i := 0; i < n; i++ {
		// Radius from the inverse cumulative mass profile.
		x := rng.Float64()
		// Avoid the extreme tail which produces unbounded radii.
		if x > 0.999 {
			x = 0.999
		}
		r := a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		s.Pos[i] = randomDirection(rng).Scale(r)

		// Velocity by von Neumann rejection on q = v/v_esc.
		var q float64
		for {
			q = rng.Float64()
			gq := q * q * math.Pow(1-q*q, 3.5)
			if 0.1*rng.Float64() < gq {
				break
			}
		}
		vesc := math.Sqrt(2*g*totalMass) * math.Pow(r*r+a*a, -0.25)
		s.Vel[i] = randomDirection(rng).Scale(q * vesc)
	}
	return s
}

// PlummerTruncated returns a Plummer sphere truncated to the innermost
// massFrac of the cumulative mass profile (massFrac = 0.8 keeps bodies
// within ~2.8 scale radii), avoiding the huge sparse halo of the untruncated
// model. Used by the dynamic-workload experiments, where the entire system
// should participate in the collapse.
func PlummerTruncated(n int, a, g, massFrac float64, seed int64) *particle.System {
	if massFrac <= 0 || massFrac > 0.999 {
		massFrac = 0.999
	}
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	totalMass := float64(n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * massFrac
		r := a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		s.Pos[i] = randomDirection(rng).Scale(r)
		var q float64
		for {
			q = rng.Float64()
			gq := q * q * math.Pow(1-q*q, 3.5)
			if 0.1*rng.Float64() < gq {
				break
			}
		}
		vesc := math.Sqrt(2*g*totalMass) * math.Pow(r*r+a*a, -0.25)
		s.Vel[i] = randomDirection(rng).Scale(q * vesc)
	}
	return s
}

// UniformCube returns n unit-mass bodies uniformly distributed in the cube
// [-half, half)^3 with zero velocities.
func UniformCube(n int, half float64, seed int64) *particle.System {
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	for i := 0; i < n; i++ {
		s.Pos[i] = geom.Vec3{
			X: (2*rng.Float64() - 1) * half,
			Y: (2*rng.Float64() - 1) * half,
			Z: (2*rng.Float64() - 1) * half,
		}
	}
	return s
}

// UniformShell returns n unit-mass bodies uniformly distributed on a sphere
// of the given radius — an adversarial case for uniform decompositions
// because most octree cells are empty.
func UniformShell(n int, radius float64, seed int64) *particle.System {
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	for i := 0; i < n; i++ {
		s.Pos[i] = randomDirection(rng).Scale(radius)
	}
	return s
}

// TwoClusters returns two Plummer spheres of n/2 bodies each whose centers
// are separated by dist along X, approaching each other at speed vrel —
// the colliding-galaxies scenario from the paper's introduction.
func TwoClusters(n int, a, g, dist, vrel float64, seed int64) *particle.System {
	n1 := n / 2
	n2 := n - n1
	s1 := Plummer(n1, a, g, seed)
	s2 := Plummer(n2, a, g, seed+1)
	s := particle.New(n)
	off := geom.Vec3{X: dist / 2}
	dv := geom.Vec3{X: vrel / 2}
	for i := 0; i < n1; i++ {
		s.Pos[i] = s1.Pos[i].Sub(off)
		s.Vel[i] = s1.Vel[i].Add(dv)
		s.Mass[i] = s1.Mass[i]
	}
	for i := 0; i < n2; i++ {
		s.Pos[n1+i] = s2.Pos[i].Add(off)
		s.Vel[n1+i] = s2.Vel[i].Sub(dv)
		s.Mass[n1+i] = s2.Mass[i]
	}
	return s
}

// SpiralDisk returns a rotating flat exponential disk — a highly
// non-uniform, anisotropic distribution exercising deep adaptive trees.
func SpiralDisk(n int, scale, g float64, seed int64) *particle.System {
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	for i := 0; i < n; i++ {
		// Exponential radial profile via inverse transform of a
		// truncated exponential.
		u := rng.Float64()
		r := -scale * math.Log(1-u*(1-math.Exp(-6)))
		phi := 2 * math.Pi * rng.Float64()
		z := scale * 0.05 * rng.NormFloat64()
		s.Pos[i] = geom.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
		// Roughly circular orbits around the enclosed mass.
		menc := float64(n) * (1 - math.Exp(-r/scale)*(1+r/scale))
		v := 0.0
		if r > 0 {
			v = math.Sqrt(g * menc / (r + 1e-9))
		}
		s.Vel[i] = geom.Vec3{X: -v * math.Sin(phi), Y: v * math.Cos(phi)}
	}
	return s
}

// CompressTo scales all positions so the system occupies fraction frac of
// the cube [-half, half]^3 per axis (the paper starts its dynamic workload
// with the distribution contained in 1/64th of the simulation space, i.e.
// 1/4 per axis).
func CompressTo(s *particle.System, half, frac float64) {
	// Current extent.
	box := geom.BoundingCube(s.Pos)
	if box.Half == 0 {
		return
	}
	k := half * frac / box.Half
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Sub(box.Center).Scale(k)
	}
}

func randomDirection(rng *rand.Rand) geom.Vec3 {
	// Marsaglia's method: uniform on the unit sphere.
	for {
		u := 2*rng.Float64() - 1
		v := 2*rng.Float64() - 1
		ss := u*u + v*v
		if ss >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-ss)
		return geom.Vec3{X: u * f, Y: v * f, Z: 1 - 2*ss}
	}
}

// Hernquist returns n unit-mass bodies sampled from the Hernquist (1990)
// profile rho ~ 1/(r (r+a)^3) with scale radius a — cuspier than Plummer,
// a stress test for deep adaptive trees. Velocities are a cold fraction of
// the local circular speed (the profile's full distribution function is
// not needed for decomposition experiments).
func Hernquist(n int, a, g float64, seed int64) *particle.System {
	rng := rand.New(rand.NewSource(seed))
	s := particle.New(n)
	total := float64(n)
	for i := 0; i < n; i++ {
		// Inverse cumulative mass: M(<r)/M = r^2/(r+a)^2 -> r = a*sqrt(x)/(1-sqrt(x)).
		x := rng.Float64()
		if x > 0.995 {
			x = 0.995
		}
		sq := math.Sqrt(x)
		r := a * sq / (1 - sq)
		s.Pos[i] = randomDirection(rng).Scale(r)
		vc := math.Sqrt(g*total*r) / (r + a)
		s.Vel[i] = randomDirection(rng).Scale(0.5 * vc)
	}
	return s
}
