package distrib

import (
	"math"
	"sort"
	"testing"

	"afmm/internal/geom"
	"afmm/internal/particle"
)

func TestPlummerDeterministic(t *testing.T) {
	a := Plummer(100, 1, 1, 7)
	b := Plummer(100, 1, 1, 7)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c := Plummer(100, 1, 1, 8)
	same := 0
	for i := range a.Pos {
		if a.Pos[i] == c.Pos[i] {
			same++
		}
	}
	if same == len(a.Pos) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestPlummerHalfMassRadius(t *testing.T) {
	// The Plummer half-mass radius is ~1.305 a.
	const n = 20000
	s := Plummer(n, 2.0, 1, 3)
	r := make([]float64, n)
	for i := range s.Pos {
		r[i] = s.Pos[i].Norm()
	}
	sort.Float64s(r)
	rh := r[n/2]
	if math.Abs(rh-1.305*2.0) > 0.1*2.0 {
		t.Fatalf("half-mass radius %v, want ~%v", rh, 1.305*2.0)
	}
}

func TestPlummerNearVirial(t *testing.T) {
	// 2K/|W| should be close to 1 for the self-consistent model.
	const n = 5000
	const g = 1.0
	s := Plummer(n, 1, g, 5)
	var kin float64
	for i := range s.Vel {
		kin += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	// Potential energy by direct sum (O(n^2) but fine at this size).
	var pot float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pot -= g * s.Mass[i] * s.Mass[j] / s.Pos[i].Sub(s.Pos[j]).Norm()
		}
	}
	ratio := 2 * kin / -pot
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("virial ratio %v, want ~1", ratio)
	}
}

func TestPlummerTruncatedBounded(t *testing.T) {
	s := PlummerTruncated(2000, 1, 1, 0.8, 9)
	// massFrac 0.8 -> rmax = a/sqrt(0.8^{-2/3}-1) ~ 2.59a.
	rmax := 1 / math.Sqrt(math.Pow(0.8, -2.0/3.0)-1)
	for i := range s.Pos {
		if s.Pos[i].Norm() > rmax*1.0001 {
			t.Fatalf("body %d at r=%v beyond truncation %v", i, s.Pos[i].Norm(), rmax)
		}
	}
}

func TestUniformCubeBounds(t *testing.T) {
	s := UniformCube(1000, 2.5, 11)
	for i := range s.Pos {
		p := s.Pos[i]
		if math.Abs(p.X) > 2.5 || math.Abs(p.Y) > 2.5 || math.Abs(p.Z) > 2.5 {
			t.Fatalf("body outside cube: %v", p)
		}
	}
	// Mean should be near the origin.
	var m geom.Vec3
	for i := range s.Pos {
		m = m.Add(s.Pos[i])
	}
	if m.Scale(1.0/1000).Norm() > 0.2 {
		t.Fatalf("uniform cube mean %v", m.Scale(1.0/1000))
	}
}

func TestUniformShellRadius(t *testing.T) {
	s := UniformShell(500, 3, 13)
	for i := range s.Pos {
		if math.Abs(s.Pos[i].Norm()-3) > 1e-12 {
			t.Fatalf("shell body at r=%v", s.Pos[i].Norm())
		}
	}
}

func TestTwoClustersSeparation(t *testing.T) {
	s := TwoClusters(1000, 1, 1, 10, 0.5, 17)
	var left, right int
	for i := range s.Pos {
		if s.Pos[i].X < 0 {
			left++
		} else {
			right++
		}
	}
	if left < 300 || right < 300 {
		t.Fatalf("clusters not separated: %d / %d", left, right)
	}
	// Closing velocity: left cluster moves right and vice versa.
	var vLeft float64
	for i := 0; i < 500; i++ {
		vLeft += s.Vel[i].X
	}
	if vLeft/500 < 0.1 {
		t.Fatalf("left cluster not approaching: mean vx %v", vLeft/500)
	}
}

func TestSpiralDiskFlat(t *testing.T) {
	s := SpiralDisk(2000, 1, 1, 19)
	var zrms, rrms float64
	for i := range s.Pos {
		zrms += s.Pos[i].Z * s.Pos[i].Z
		rrms += s.Pos[i].X*s.Pos[i].X + s.Pos[i].Y*s.Pos[i].Y
	}
	if math.Sqrt(zrms) > 0.2*math.Sqrt(rrms) {
		t.Fatal("disk not flat")
	}
}

func TestCompressTo(t *testing.T) {
	s := UniformCube(500, 4, 23)
	CompressTo(s, 4, 0.25)
	b := geom.BoundingCube(s.Pos)
	if b.Half > 1.01 {
		t.Fatalf("compressed extent %v, want <= 1", b.Half)
	}
}

func TestHernquistCuspierThanPlummer(t *testing.T) {
	const n = 10000
	h := Hernquist(n, 1, 1, 5)
	p := Plummer(n, 1, 1, 5)
	inner := func(s *particle.System, r float64) int {
		c := 0
		for i := range s.Pos {
			if s.Pos[i].Norm() < r {
				c++
			}
		}
		return c
	}
	// The Hernquist cusp concentrates far more mass at tiny radii.
	if inner(h, 0.05) < 3*inner(p, 0.05) {
		t.Fatalf("Hernquist inner count %d not cuspier than Plummer %d",
			inner(h, 0.05), inner(p, 0.05))
	}
	// Half-mass radius ~ a(1+sqrt(2)) = 2.41a.
	r := make([]float64, n)
	for i := range h.Pos {
		r[i] = h.Pos[i].Norm()
	}
	sort.Float64s(r)
	if math.Abs(r[n/2]-2.41) > 0.4 {
		t.Fatalf("Hernquist half-mass radius %v, want ~2.41", r[n/2])
	}
}
