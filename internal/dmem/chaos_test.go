package dmem

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/metrics"
	"afmm/internal/particle"
	"afmm/internal/telemetry"
)

// The chaos suite is the repo's network-fault property: for ANY seeded
// drop/dup/reorder/corrupt/delay schedule, the distributed trajectory is
// exactly (==) the fault-free single-node trajectory. Within-budget
// schedules recover by retransmission; budget-exceeding schedules fall
// back to the degradation paths — either way faults cost time, never
// values.

func mustCluster(t *testing.T, spec string) *fault.LinkSchedule {
	t.Helper()
	sch, err := fault.ParseLinkEvents(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// singleTwin runs the fault-free single-node reference trajectory.
func singleTwin(n, steps int, dt float64, seed int64) *particle.System {
	sys := distrib.Plummer(n, 1.0, 1.0, seed)
	sv := core.NewSolver(sys, execCoreConfig())
	for step := 0; step < steps; step++ {
		sv.Solve()
		for i := range sys.Pos {
			sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
			sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
		}
		sv.Refill()
	}
	return sys
}

func requireIdentical(t *testing.T, got, want *particle.System, what string) {
	t.Helper()
	for i := range want.Pos {
		if got.Pos[i] != want.Pos[i] || got.Vel[i] != want.Vel[i] || got.Phi[i] != want.Phi[i] {
			t.Fatalf("%s: body %d diverged: pos %v vs %v, vel %v vs %v, phi %v vs %v",
				what, i, got.Pos[i], want.Pos[i], got.Vel[i], want.Vel[i],
				got.Phi[i], want.Phi[i])
		}
	}
}

// chaosLink keeps multi-step chaos runs fast without starving the retry
// budget.
func chaosLink() LinkConfig {
	return LinkConfig{
		RetransmitTimeout: 200 * time.Microsecond,
		MaxRetries:        10,
		NearDeadline:      5 * time.Second,
		FarDeadline:       5 * time.Second,
	}
}

// TestChaosWithinBudgetBitIdentical: a mixed drop/dup/reorder/corrupt/
// delay schedule whose rates the retry budget absorbs. Every value must
// stay exactly the fault-free single-node value; the stats must show the
// protocol actually fought the schedule.
func TestChaosWithinBudgetBitIdentical(t *testing.T) {
	const (
		n     = 1200
		steps = 3
		dt    = 5e-4
	)
	sch := mustCluster(t,
		"link0-1:drop0.4@step0,link1-0:drop0.3@step0,link0-2:dup@step0,"+
			"link2-0:corrupt0.4@step0,link1-2:reorder@step1,link2-1:delay0.2ms@step0,"+
			"link0-3:drop0.3@step1,link3-0:corrupt0.3@step2")
	cfg := execClusterConfig(4)
	cfg.LinkFaults = sch
	cfg.LinkSeed = 42
	cfg.Link = chaosLink()

	sysD := distrib.Plummer(n, 1.0, 1.0, 23)
	d, err := NewSolver(sysD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := d.RunWith(RunConfig{Steps: steps, Dt: dt})

	if res.Net.FramesDropped == 0 || res.Net.Retries == 0 {
		t.Fatalf("schedule injected no observable faults: %+v", res.Net)
	}
	if res.Net.CorruptRejects == 0 {
		t.Fatalf("corrupt0.4 produced no checksum rejects: %+v", res.Net)
	}
	if res.Net.Timeouts != 0 {
		t.Fatalf("within-budget schedule must not hit deadlines, got %d timeouts",
			res.Net.Timeouts)
	}
	requireIdentical(t, sysD, singleTwin(n, steps, dt, 23), "within-budget chaos")
}

// TestChaosBeyondBudgetDegradesValuesExact: drop1.0 on every link out of
// node 0 defeats retransmission entirely; the deadline paths (host-side
// ghost re-pack, reliable re-request) take over and the values are STILL
// exactly the single-node values — degradation costs throughput only.
func TestChaosBeyondBudgetDegradesValuesExact(t *testing.T) {
	const (
		n     = 900
		steps = 2
		dt    = 5e-4
	)
	sch := mustCluster(t,
		"link0-1:drop1.0@step0,link0-2:drop1.0@step0")
	cfg := execClusterConfig(3)
	cfg.LinkFaults = sch
	cfg.LinkSeed = 7
	cfg.Link = LinkConfig{
		RetransmitTimeout: 100 * time.Microsecond,
		MaxRetries:        2,
		NearDeadline:      20 * time.Millisecond,
		FarDeadline:       20 * time.Millisecond,
	}

	sysD := distrib.Plummer(n, 1.0, 1.0, 31)
	d, err := NewSolver(sysD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := d.RunWith(RunConfig{Steps: steps, Dt: dt})

	if res.Net.Timeouts == 0 {
		t.Fatalf("drop1.0 links must exhaust the retry budget: %+v", res.Net)
	}
	if res.Net.Rerequests+res.Net.DegradedGhostFlows == 0 {
		t.Fatalf("timeouts without degraded recoveries: %+v", res.Net)
	}
	requireIdentical(t, sysD, singleTwin(n, steps, dt, 31), "beyond-budget chaos")
}

// TestChaosRandomSchedulesProperty: the property under randomly generated
// schedules. AFMM_CHAOS_SEED pins the base seed (the CI matrix varies
// it); each derived schedule must reproduce the single-node trajectory
// exactly.
func TestChaosRandomSchedulesProperty(t *testing.T) {
	base := int64(1)
	if v := os.Getenv("AFMM_CHAOS_SEED"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("AFMM_CHAOS_SEED %q: %v", v, err)
		}
		base = p
	}
	const (
		n     = 800
		steps = 2
		dt    = 5e-4
		nodes = 3
	)
	want := singleTwin(n, steps, dt, 47)
	for trial := int64(0); trial < 3; trial++ {
		seed := base*100 + trial
		sch := fault.RandomLinks(seed, nodes, steps, 6)
		cfg := execClusterConfig(nodes)
		cfg.LinkFaults = sch
		cfg.LinkSeed = seed
		cfg.Link = chaosLink()
		sysD := distrib.Plummer(n, 1.0, 1.0, 47)
		d, err := NewSolver(sysD, cfg)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sch, err)
		}
		res := d.RunWith(RunConfig{Steps: steps, Dt: dt})
		if res.Net.FramesSent == 0 {
			t.Fatalf("seed %d: no traffic executed", seed)
		}
		requireIdentical(t, sysD, want, "random schedule "+sch.String())
	}
}

// TestChaosStokesClusterBitIdentical: the Stokes engine shares the
// transport; a lossy schedule must not move a single velocity bit.
func TestChaosStokesClusterBitIdentical(t *testing.T) {
	const n = 900
	svS := stokesTwin(n, 19)
	svD := stokesTwin(n, 19)
	svS.Solve()

	cl, err := NewStokesCluster(svD, 3, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetLinkFaults(mustCluster(t,
		"link0-1:drop0.4@step0,link1-2:corrupt0.5@step0,link2-0:dup@step0"),
		9, chaosLink())
	es := cl.Solve()
	if es.Net.FramesDropped == 0 && es.Net.CorruptRejects == 0 {
		t.Fatalf("schedule injected nothing: %+v", es.Net)
	}
	for i := 0; i < n; i++ {
		if svD.Sys.Acc[i] != svS.Sys.Acc[i] {
			t.Fatalf("vel[%d]: chaotic distributed %v != single %v",
				i, svD.Sys.Acc[i], svS.Sys.Acc[i])
		}
	}
}

// TestHeartbeatDetectorRecovery: a fail-stop under lossy links is
// detected by heartbeat age — not the oracle — and the run still matches
// the single-node trajectory exactly.
func TestHeartbeatDetectorRecovery(t *testing.T) {
	const (
		n     = 1000
		steps = 4
		dt    = 5e-4
	)
	events, err := fault.ParseNodeEvents("node2:failstop@step1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := execClusterConfig(4)
	cfg.NodeFaults = events
	cfg.LinkFaults = mustCluster(t, "link1-3:drop0.3@step0")
	cfg.LinkSeed = 13
	cfg.Link = chaosLink()
	cfg.Link.HeartbeatInterval = 500 * time.Microsecond
	cfg.Link.SuspectAfter = 10

	sysD := distrib.Plummer(n, 1.0, 1.0, 53)
	d, err := NewSolver(sysD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := d.RunWith(RunConfig{Steps: steps, Dt: dt})
	if res.NodeLosses != 1 {
		t.Fatalf("node losses = %d, want 1", res.NodeLosses)
	}
	if len(res.DetectLatencies) != 1 || res.DetectLatencies[0] <= 0 {
		t.Fatalf("heartbeat detection latencies = %v, want one positive entry",
			res.DetectLatencies)
	}
	// The detector needs at least SuspectAfter silent intervals.
	if min := 0.5 * float64(cfg.Link.HeartbeatInterval.Seconds()) *
		float64(cfg.Link.SuspectAfter); res.DetectLatencies[0] < min {
		t.Fatalf("detection latency %v below the suspicion window floor %v",
			res.DetectLatencies[0], min)
	}
	if got := d.Alive(); got[2] {
		t.Fatal("node 2 should be dead")
	}
	requireIdentical(t, sysD, singleTwin(n, steps, dt, 53), "heartbeat recovery")
}

// TestNetTimeoutFlightDump: a deadline breach emits the net-timeout
// event, which triggers a flight dump carrying the per-link retry
// breakdown of the recorded steps.
func TestNetTimeoutFlightDump(t *testing.T) {
	const n = 700
	fr := telemetry.NewFlightRecorder(32, t.TempDir())
	reg := metrics.NewRegistry()
	rec := telemetry.New(telemetry.Options{Flight: fr, Metrics: reg})

	// Three nodes: the dead link's flows hit the deadline while the
	// healthy links keep delivering (and earning RTT observations).
	cfg := execClusterConfig(3)
	cfg.LinkFaults = mustCluster(t, "link0-1:drop1.0@step0")
	cfg.LinkSeed = 3
	cfg.Link = LinkConfig{
		RetransmitTimeout: 100 * time.Microsecond,
		MaxRetries:        1,
		NearDeadline:      10 * time.Millisecond,
		FarDeadline:       10 * time.Millisecond,
	}
	sysD := distrib.Plummer(n, 1.0, 1.0, 61)
	d, err := NewSolver(sysD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRecorder(rec)
	d.RunWith(RunConfig{Steps: 1, Dt: 1e-4})

	if fr.Dumps() == 0 {
		t.Fatal("deadline breach did not trigger a flight dump")
	}
	if path := fr.LastDump(); !strings.Contains(path, "net-timeout") {
		t.Fatalf("dump reason path = %q, want a net-timeout dump", path)
	}
	recs := fr.Records()
	last := recs[len(recs)-1]
	if last.Net == nil || last.Net.Timeouts == 0 {
		t.Fatalf("flight record carries no net sample: %+v", last.Net)
	}
	if len(last.Net.Links) == 0 {
		t.Fatal("flight record net sample has no per-link breakdown")
	}

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"afmm_dmem_retries_total", "afmm_dmem_frames_dropped_total",
		"afmm_dmem_net_timeouts_total", "afmm_dmem_link_rtt_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in metrics exposition", want)
		}
	}
}
