package dmem

import (
	"fmt"

	"afmm/internal/fault"
	"afmm/internal/stokes"
	"afmm/internal/telemetry"
)

// StokesCluster executes a Stokes solver's partitioned tree on the
// distributed runtime: the kernel-agnostic LET/ghost exchange and graph
// machinery are shared with the gravity path; only the per-cell engine
// differs (four harmonic passes, force charges, velocity combine). The
// numerics are bit-identical to stokes.Solver.Solve.
type StokesCluster struct {
	sv    *stokes.Solver
	rt    *Runtime
	cuts  []int32
	alive []bool
	step  int
}

// NewStokesCluster wraps an existing Stokes solver in an n-node
// distributed execution with an equal-count initial partition.
func NewStokesCluster(sv *stokes.Solver, nodes int, net NetworkSpec) (*StokesCluster, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("dmem: no nodes configured")
	}
	if sv.Cfg.NearFloat32 || sv.Cfg.GatherSources {
		return nil, fmt.Errorf("dmem: Execute requires the plain float64 near-field path (disable NearFloat32 and GatherSources)")
	}
	if net.Bandwidth == 0 {
		net = DefaultNetwork()
	}
	eng := make([]nodeEngine, nodes)
	for k := range eng {
		eng[k] = newStokesEngine(sv)
	}
	c := &StokesCluster{
		sv: sv,
		rt: &Runtime{
			tree: sv.Tree, sys: sv.Sys, eng: eng, net: net,
			rec:     sv.Cfg.Rec,
			skipFar: sv.Cfg.SkipFarField,
		},
		alive: make([]bool, nodes),
	}
	for k := range c.alive {
		c.alive[k] = true
	}
	return c, nil
}

// SetRecorder routes the cluster's node/comm spans to rec.
func (c *StokesCluster) SetRecorder(rec *telemetry.Recorder) {
	c.sv.SetRecorder(rec)
	c.rt.rec = rec
}

// SetLinkFaults arms a deterministic link-fault schedule on the
// cluster's transport. Faults cost retries and deadlines, never values.
func (c *StokesCluster) SetLinkFaults(sch *fault.LinkSchedule, seed int64, cfg LinkConfig) {
	c.rt.linkSch = sch
	c.rt.linkSeed = seed
	c.rt.link = cfg
}

// Fail marks a node fail-stopped; its range moves to the survivors on
// the next Solve. The last alive node cannot be failed.
func (c *StokesCluster) Fail(node int) {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	if node >= 0 && node < len(c.alive) && n > 1 {
		c.alive[node] = false
	}
}

// Solve executes one distributed Stokes step; on return Sys.Acc holds
// the velocities, bit-identical to the single-node solver.
func (c *StokesCluster) Solve() *ExecStats {
	t := c.sv.Tree
	t.BuildLists()
	// Equal-count leaf-aligned cuts over the alive nodes, recomputed per
	// step so failed nodes drop out.
	leaves := t.VisibleLeaves()
	leafEnds := make([]int32, len(leaves))
	costs := make([]float64, len(leaves))
	for i, li := range leaves {
		leafEnds[i] = t.Nodes[li].End
		costs[i] = float64(t.Nodes[li].Count())
	}
	shares := make([]float64, len(c.alive))
	for k, a := range c.alive {
		if a {
			shares[k] = 1
		}
	}
	c.cuts = computeCuts(leafEnds, costs, shares, len(c.alive))
	c.cuts[len(c.alive)] = int32(c.sv.Sys.Len())
	ownerOf := func(i int32) int32 {
		lo, hi := 0, len(c.cuts)-1
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if c.cuts[mid] <= i {
				lo = mid
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	step := c.step
	c.step++
	return c.rt.Step(ownerOf, c.alive, step)
}
