package dmem

import (
	"sync"
	"sync/atomic"
	"time"

	"afmm/internal/fault"
)

// detector is the heartbeat-based failure detector that replaces the
// oracle node-loss detection of the priced path: every node runs a
// heartbeater goroutine that stamps a per-node last-seen clock each
// interval, and a node's suspicion level is its heartbeat age measured
// in intervals, normalized so that suspicion >= 1 declares it dead
// (SuspectAfter consecutive silent intervals).
//
// A fail-stop fault does not tell the solver the node died — it only
// silences the node's heartbeater (the injected failure). Detection is
// then earned the production way: the step loop blocks until the dead
// node's suspicion crosses the threshold, and the measured wall-clock
// latency — not the priced path's modeled DetectTimeout — is what the
// run report records. Heartbeats cross the same lossy links as data
// frames: each beat survives with the link schedule's worst outgoing
// drop rate for the node, drawn deterministically per beat, so
// within-budget loss schedules widen detection latency without causing
// false positives (SuspectAfter consecutive losses of a < 1.0-rate link
// is vanishingly unlikely at the default threshold).
type detector struct {
	interval     time.Duration
	suspectAfter int
	sch          *fault.LinkSchedule
	seed         int64

	lastBeat []atomic.Int64 // unixnano of each node's last received beat
	silenced []atomic.Bool
	step     atomic.Int64 // current run step, for the link schedule

	done chan struct{}
	wg   sync.WaitGroup
}

// newDetector starts one heartbeater per node. Callers must stop() it.
func newDetector(nodes int, cfg LinkConfig, sch *fault.LinkSchedule, seed int64) *detector {
	cfg = cfg.withDefaults()
	d := &detector{
		interval:     cfg.HeartbeatInterval,
		suspectAfter: cfg.SuspectAfter,
		sch:          sch,
		seed:         seed,
		lastBeat:     make([]atomic.Int64, nodes),
		silenced:     make([]atomic.Bool, nodes),
		done:         make(chan struct{}),
	}
	now := time.Now().UnixNano()
	for k := range d.lastBeat {
		d.lastBeat[k].Store(now)
		d.wg.Add(1)
		go d.heartbeater(k)
	}
	return d
}

func (d *detector) stop() {
	close(d.done)
	d.wg.Wait()
}

// heartbeater stamps node k's last-seen clock every interval until the
// node is silenced (its fail-stop) or the run ends. Beats are subject to
// the node's worst outgoing link drop rate, drawn deterministically per
// beat index.
func (d *detector) heartbeater(k int) {
	defer d.wg.Done()
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	beat := int64(0)
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			if d.silenced[k].Load() {
				return
			}
			beat++
			if p := d.sch.MaxDropFrom(k, int(d.step.Load())); p > 0 &&
				fault.Hash01(d.seed, int64(saltAck)<<8, int64(k), beat) < p {
				continue // beat lost on the wire
			}
			d.lastBeat[k].Store(time.Now().UnixNano())
		}
	}
}

// setStep tells the detector which run step is current (the link
// schedule is step-indexed).
func (d *detector) setStep(step int) { d.step.Store(int64(step)) }

// silence injects node k's fail-stop: its heartbeater falls silent at
// the next tick. The detector itself is not informed of the death. The
// last-seen clock re-stamps to the injection instant so the measured
// detection latency is the genuine silent window — not leftover staleness
// from heartbeaters starved by a compute-saturated scheduler.
func (d *detector) silence(k int) {
	d.silenced[k].Store(true)
	d.lastBeat[k].Store(time.Now().UnixNano())
}

// suspicion reports node k's current suspicion level: heartbeat age over
// the declare-dead window. >= 1 means the detector considers it dead.
func (d *detector) suspicion(k int) float64 {
	age := time.Duration(time.Now().UnixNano() - d.lastBeat[k].Load())
	return float64(age) / float64(d.interval*time.Duration(d.suspectAfter))
}

// waitDead blocks until node k's suspicion crosses 1 and returns the
// measured wall-clock detection latency. The cap bounds a pathological
// stall (it is far beyond any reachable suspicion window).
func (d *detector) waitDead(k int) time.Duration {
	start := time.Now()
	limit := 1000 * d.interval * time.Duration(d.suspectAfter)
	for d.suspicion(k) < 1 {
		if time.Since(start) > limit {
			break
		}
		time.Sleep(d.interval / 2)
	}
	return time.Since(start)
}
