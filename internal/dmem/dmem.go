// Package dmem extends the single-node heterogeneous AFMM to a simulated
// distributed-memory cluster — the extension the paper anticipates in §II
// ("we expect the method can be extended to a distributed memory cluster
// using techniques such as those in [13, 9]").
//
// The model follows the classical partitioned-tree design of Lashuk et al.
// [13]: bodies are ordered by the adaptive tree's DFS (space-filling)
// order and split into contiguous ranges, one per virtual node; every node
// owns the visible tree cells whose bodies start inside its range. A cell
// interaction is computed by the owner of the *target* cell; source data
// owned elsewhere must be communicated first:
//
//   - a V-list (M2L) source cell owned remotely ships its multipole
//     expansion — the locally essential tree exchange;
//   - a U-list (P2P) source leaf owned remotely ships its bodies — the
//     ghost-particle exchange.
//
// Transfers are deduplicated per (receiver, source cell) and charged to an
// alpha-beta network model; per-node compute times come from the same
// virtual CPU/GPU machinery as the single-node solver. The numerics are
// exactly the shared-memory solver's (the decomposition only re-attributes
// work), so distributed results are bit-identical to single-node results.
package dmem

import (
	"fmt"
	"math"

	"afmm/internal/core"
	"afmm/internal/costmodel"
	"afmm/internal/fault"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sphharm"
	"afmm/internal/telemetry"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

// NetworkSpec is the alpha-beta communication model of the interconnect.
type NetworkSpec struct {
	// Latency per aggregated peer-to-peer message, seconds.
	Latency float64
	// Bandwidth in bytes/second per node.
	Bandwidth float64
	// BytesPerBody transferred for one ghost particle.
	BytesPerBody int
}

// DefaultNetwork models a commodity cluster interconnect (~2 us latency,
// ~5 GB/s effective per node).
func DefaultNetwork() NetworkSpec {
	return NetworkSpec{Latency: 2e-6, Bandwidth: 5e9, BytesPerBody: 32}
}

// NodeSpec is one virtual compute node: a CPU plus an optional device
// cluster, identical in kind to the single-node machine.
type NodeSpec struct {
	CPU     vcpu.Spec
	GPUs    int
	GPUSpec vgpu.Spec
}

// Config assembles a distributed solver.
type Config struct {
	// Core configures the underlying (numerically authoritative) solver.
	Core core.Config
	// Nodes describes each cluster node. Homogeneous clusters can use
	// HomogeneousNodes.
	Nodes []NodeSpec
	// Net is the interconnect model.
	Net NetworkSpec
	// Execute runs the partitioned tree for real: one goroutine per node,
	// each executing its locally essential tree through its own task
	// graph, with multipole/local/ghost exchange over channels (see
	// Runtime). Off, Solve prices the decomposition against the
	// single-node solve as before. Execute requires the plain float64
	// near-field path (Core.NearFloat32 and Core.GatherSources off).
	Execute bool
	// NodeFaults injects node-level fail-stop events into RunWith
	// (parse specs like "node2:failstop@step12" with
	// fault.ParseNodeEvents). A lost node's range is repartitioned over
	// the survivors and the capacity epoch advances.
	NodeFaults []fault.NodeEvent
	// DetectTimeout is the modeled failure-detection delay charged to the
	// step where a node loss is absorbed, seconds; 0 selects 100x
	// Net.Latency. Execute mode measures detection with the heartbeat
	// detector instead unless OracleDetect is set.
	DetectTimeout float64
	// LinkFaults injects per-link chaos into the executed runtime's
	// transport (parse specs like "link0-2:drop0.05@step3" with
	// fault.ParseLinkEvents, or mixed node+link specs with
	// fault.ParseClusterEvents). Requires Execute. Any schedule — within
	// or beyond the retry budget — leaves results bit-identical to the
	// fault-free single-node run; faults cost time only.
	LinkFaults *fault.LinkSchedule
	// LinkSeed seeds the deterministic per-frame fault verdicts.
	LinkSeed int64
	// Link tunes the delivery protocol (retransmit timeout/backoff,
	// retry budget, per-phase deadlines) and the heartbeat failure
	// detector. Zero fields select defaults.
	Link LinkConfig
	// OracleDetect reverts Execute-mode node-loss detection to the
	// modeled oracle (the priced path's DetectTimeout charge) instead of
	// the measured heartbeat detector.
	OracleDetect bool
}

// HomogeneousNodes returns n identical node specs.
func HomogeneousNodes(n int, spec NodeSpec) []NodeSpec {
	out := make([]NodeSpec, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// NodeTimes is one node's share of a step.
type NodeTimes struct {
	Compute  float64 // max(local CPU far field, local GPU near field)
	CPUTime  float64
	GPUTime  float64
	CommTime float64
	// Hidden is the part of CommTime overlapped with local-source near
	// field work (min(CommTime, local near time) — the halo-hiding
	// schedule executes local P2P rows while remote data is in flight).
	Hidden   float64
	BytesIn  int64
	Messages int64   // aggregated peer messages received
	Bodies   int     // bodies owned
	OpShare  float64 // fraction of the global op cost owned
}

// StepReport summarizes a distributed step.
type StepReport struct {
	PerNode []NodeTimes
	// StepTime is the slowest alive node's compute + unhidden comm.
	StepTime float64
	// Imbalance is max node compute over mean node compute (alive nodes).
	Imbalance float64
	// TotalBytes moved across the interconnect.
	TotalBytes int64
	// TotalMsgs is the aggregated peer-to-peer message count.
	TotalMsgs int64
	// AliveNodes is the number of nodes that participated.
	AliveNodes int
	// Executed reports whether the step ran the distributed runtime (the
	// accumulators were produced by the per-node goroutines) rather than
	// pricing the single-node solve.
	Executed bool
	// CapacityEpoch advances whenever the cluster topology changes (node
	// loss); per-node capacity estimates re-derive from 1 afterwards.
	CapacityEpoch int64
	// Net is the executed step's link-layer delivery activity (zero when
	// pricing).
	Net NetStats
	// Single is the underlying single-node timing for reference (zero in
	// Execute mode, where no single-node solve runs).
	Single core.StepTimes
}

// Solver runs the AFMM on a simulated cluster.
type Solver struct {
	Cfg   Config
	Inner *core.Solver
	// cuts[i] is the first body index owned by node i; cuts has length
	// len(Nodes)+1 with cuts[0]=0 and cuts[last]=N.
	cuts []int32
	// costWeights from the last step's observed coefficients drive
	// Rebalance.
	lastLeafCost []float64
	lastLeaves   []int32

	// alive[k] is false once node k fail-stopped; caps[k] is node k's
	// capacity estimate (EWMA of observed throughput, mean-1 normalized
	// over alive nodes), reset to 1 whenever capEpoch advances.
	alive    []bool
	caps     []float64
	capEpoch int64

	// rt executes the partitioned tree when Cfg.Execute is set.
	rt  *Runtime
	met *dmemMetrics
	// det is the heartbeat failure detector, live during RunWith in
	// Execute mode (unless Cfg.OracleDetect).
	det *detector
	// stepIdx is the next Solve's step index into the link-fault
	// schedule (RunWith pins it to the run step).
	stepIdx int
}

// NewSolver builds the distributed solver. The body partition starts as an
// equal-count split of the tree-ordered bodies.
func NewSolver(sys *particle.System, cfg Config) (*Solver, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dmem: no nodes configured")
	}
	if cfg.Execute && (cfg.Core.NearFloat32 || cfg.Core.GatherSources) {
		return nil, fmt.Errorf("dmem: Execute requires the plain float64 near-field path (disable NearFloat32 and GatherSources)")
	}
	for _, ev := range cfg.NodeFaults {
		if ev.Node < 0 || ev.Node >= len(cfg.Nodes) {
			return nil, fmt.Errorf("dmem: fault for unknown node %d", ev.Node)
		}
	}
	if cfg.LinkFaults.Faulty() {
		if !cfg.Execute {
			return nil, fmt.Errorf("dmem: LinkFaults require Execute (the priced path has no transport)")
		}
		for _, ev := range cfg.LinkFaults.Events {
			if ev.From >= len(cfg.Nodes) || ev.To >= len(cfg.Nodes) {
				return nil, fmt.Errorf("dmem: link fault for unknown link %d-%d", ev.From, ev.To)
			}
		}
	}
	inner := core.NewSolver(sys, cfg.Core)
	if cfg.Net.Bandwidth == 0 {
		cfg.Net = DefaultNetwork()
	}
	p := len(cfg.Nodes)
	s := &Solver{Cfg: cfg, Inner: inner}
	s.alive = make([]bool, p)
	s.caps = make([]float64, p)
	for k := 0; k < p; k++ {
		s.alive[k] = true
		s.caps[k] = 1
	}
	s.equalCountCuts()
	if cfg.Execute {
		eng := make([]nodeEngine, p)
		for k := range eng {
			eng[k] = newGravityEngine(inner)
		}
		s.rt = &Runtime{
			tree: inner.Tree, sys: inner.Sys, eng: eng, net: s.Cfg.Net,
			rec:      inner.Cfg.Rec,
			link:     cfg.Link,
			linkSch:  cfg.LinkFaults,
			linkSeed: cfg.LinkSeed,
			skipFar:  inner.Cfg.SkipFarField, skipNear: inner.Cfg.SkipNearField,
		}
	}
	return s, nil
}

// SetRecorder attaches a telemetry recorder: per-node execution and comm
// spans land on the dmem track, and the dmem live series register when
// the recorder carries an enabled metrics registry.
func (s *Solver) SetRecorder(rec *telemetry.Recorder) {
	s.Inner.SetRecorder(rec)
	if s.rt != nil {
		s.rt.rec = rec
	}
	if reg := rec.Metrics(); reg.Enabled() {
		s.met = newDmemMetrics(reg, len(s.Cfg.Nodes))
	}
}

// Alive reports which nodes are still participating.
func (s *Solver) Alive() []bool { return append([]bool(nil), s.alive...) }

// CapacityEpoch returns the current topology epoch (advances on node
// loss).
func (s *Solver) CapacityEpoch() int64 { return s.capEpoch }

// NumNodes returns the cluster size.
func (s *Solver) NumNodes() int { return len(s.Cfg.Nodes) }

// Cuts exposes the current ownership boundaries (body indices).
func (s *Solver) Cuts() []int32 { return append([]int32(nil), s.cuts...) }

func (s *Solver) equalCountCuts() {
	p := len(s.Cfg.Nodes)
	n := s.Inner.Sys.Len()
	s.cuts = make([]int32, p+1)
	for i := 0; i <= p; i++ {
		s.cuts[i] = int32(i * n / p)
	}
}

// owner returns the node owning body index i.
func (s *Solver) owner(i int32) int {
	// cuts is small; binary search.
	lo, hi := 0, len(s.cuts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.cuts[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Solve runs one distributed step. With Execute off, the numerics run
// via the inner (single-node) solver and the decomposition is priced
// after the fact. With Execute on, the per-node goroutines produce the
// accumulators themselves — the inner solver's numerics never run — and
// the measured exchange volumes replace the modeled ones.
func (s *Solver) Solve() StepReport {
	var rep StepReport
	if s.rt != nil {
		es := s.executeStep()
		rep = s.attributeWith(core.StepTimes{}, es)
		rep.Executed = true
	} else {
		single := s.Inner.Solve()
		rep = s.attributeWith(single, nil)
	}
	rep.AliveNodes = s.aliveCount()
	rep.CapacityEpoch = s.capEpoch
	s.met.observe(&rep, s.alive)
	return rep
}

func (s *Solver) aliveCount() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// executeStep aligns the cuts to leaf boundaries and runs the
// distributed runtime over the current tree. The step index feeds the
// link-fault schedule; bare Solve calls advance it monotonically, and
// RunWith pins it to the run step.
func (s *Solver) executeStep() *ExecStats {
	s.alignCuts()
	step := s.stepIdx
	s.stepIdx++
	return s.rt.Step(func(i int32) int32 { return int32(s.owner(i)) }, s.alive, step)
}

// alignCuts snaps every interior ownership cut to the nearest visible
// leaf End (monotonicity enforced), so a range owner always owns whole
// leaves — the invariant the exchange plan and the near-field row
// attribution rely on.
func (s *Solver) alignCuts() {
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	s.cuts[0] = 0
	for k := 1; k < p; k++ {
		c := t.SnapToLeafEnd(s.cuts[k])
		if c < s.cuts[k-1] {
			c = s.cuts[k-1]
		}
		s.cuts[k] = c
	}
	s.cuts[p] = int32(s.Inner.Sys.Len())
}

// attribute computes the per-node report for the current tree/lists.
// (Kept as a thin wrapper: tests drive it directly.)
func (s *Solver) attribute(single core.StepTimes) StepReport {
	return s.attributeWith(single, nil)
}

// attributeWith computes the per-node report. es, when non-nil, carries
// the executed step's measured exchange volumes, which replace the
// modeled transfer accounting.
func (s *Solver) attributeWith(single core.StepTimes, es *ExecStats) StepReport {
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	rep := StepReport{PerNode: make([]NodeTimes, p), Single: single}
	if es != nil {
		rep.Net = es.Net
	}

	// Ownership of visible cells: owner of the cell's first body.
	cellOwner := map[int32]int{}
	t.WalkVisible(func(ni int32) {
		cellOwner[ni] = s.owner(t.Nodes[ni].Start)
	})

	// Per-node far-field task graphs and per-node device work. Cross-node
	// tree dependencies are carried by the communication phase, so each
	// node's graph keeps only intra-node precedence.
	passes := s.Inner.Cfg.Profile.FarFieldPasses
	if passes < 1 {
		passes = 1
	}
	graphs := make([]*vcpu.Graph, p)
	upTask := make([]map[int32]int32, p)
	downTask := make([]map[int32]int32, p)
	for k := 0; k < p; k++ {
		graphs[k] = &vcpu.Graph{}
		upTask[k] = map[int32]int32{}
		downTask[k] = map[int32]int32{}
	}
	base := func(k int) costmodel.Coefficients { return s.Cfg.Nodes[k].CPU.Base }

	// transfers[k] dedupes (receiver k, source cell) pairs.
	type transfer struct {
		bytes int64
		peers map[int]bool
	}
	incoming := make([]transfer, p)
	for k := range incoming {
		incoming[k].peers = map[int]bool{}
	}
	seen := map[[2]int32]bool{} // (receiver, source cell) dedup
	expBytes := int64(sphharm.PackedLen(s.Inner.Cfg.P)) * 16 * int64(passes)

	addComm := func(recv int, src int32, bytes int64) {
		key := [2]int32{int32(recv), src}
		if seen[key] {
			return
		}
		seen[key] = true
		incoming[recv].bytes += bytes
		incoming[recv].peers[cellOwner[src]] = true
	}

	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		k := cellOwner[ni]
		g := graphs[k]
		var up vcpu.TaskCost
		if n.IsVisibleLeaf() {
			up[costmodel.P2M] = float64(passes) * base(k)[costmodel.P2M] * float64(n.Count())
		} else {
			kids := 0
			for _, ci := range n.Children {
				if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
					kids++
				}
			}
			up[costmodel.M2M] = float64(passes) * base(k)[costmodel.M2M] * float64(kids)
		}
		upID := g.AddTask(up)
		upTask[k][ni] = upID
		if !n.IsVisibleLeaf() {
			for _, ci := range n.Children {
				if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
					if cellOwner[ci] == k {
						if cid, ok := upTask[k][ci]; ok {
							g.AddDep(cid, upID)
						}
					} else {
						// Child multipole arrives from its owner.
						addComm(k, ci, expBytes)
					}
				}
			}
		}

		var down vcpu.TaskCost
		down[costmodel.M2L] = float64(passes) * base(k)[costmodel.M2L] * float64(len(n.V))
		if n.Parent != octree.NilNode {
			down[costmodel.L2L] = float64(passes) * base(k)[costmodel.L2L]
		}
		if n.IsVisibleLeaf() {
			down[costmodel.L2P] = float64(passes) * base(k)[costmodel.L2P] * float64(n.Count())
		}
		downID := g.AddTask(down)
		downTask[k][ni] = downID
		if n.Parent != octree.NilNode && cellOwner[n.Parent] == k {
			if pid, ok := downTask[k][n.Parent]; ok {
				g.AddDep(pid, downID)
			}
		} else if n.Parent != octree.NilNode {
			// Parent local expansion arrives from the parent's owner.
			addComm(k, n.Parent, expBytes)
		}
		// Remote V-list multipoles and U-list ghost bodies.
		for _, vi := range n.V {
			if cellOwner[vi] != k {
				addComm(k, vi, expBytes)
			}
		}
		if n.IsVisibleLeaf() {
			for _, ui := range n.U {
				if cellOwner[ui] != k {
					addComm(k, ui, int64(t.Nodes[ui].Count())*int64(s.Cfg.Net.BytesPerBody))
				}
			}
		}
	})

	// Per-node device work: each node's GPUs run its owned leaves.
	leafSets := make([][]int32, p)
	t.WalkVisible(func(ni int32) {
		if t.Nodes[ni].IsVisibleLeaf() {
			k := cellOwner[ni]
			leafSets[k] = append(leafSets[k], ni)
		}
	})

	var totalOps float64
	var maxEnd float64
	var sumCompute float64
	nAlive := 0
	throughput := make([]float64, p)
	s.lastLeaves = s.lastLeaves[:0]
	s.lastLeafCost = s.lastLeafCost[:0]
	for k := 0; k < p; k++ {
		if s.alive != nil && !s.alive[k] {
			continue
		}
		nAlive++
		spec := s.Cfg.Nodes[k].CPU.Normalized()
		res := spec.Simulate(graphs[k])
		nt := &rep.PerNode[k]
		nt.CPUTime = res.Makespan
		// Split the node's near-field interactions by source ownership.
		// Ghost sends are roots of the executed step graph — they are on
		// the wire before any compute — so while halos are in flight the
		// node works through interactions whose sources it already owns.
		// That locally-sourced volume is the halo-hiding budget; the
		// remotely-sourced remainder gates on arrival.
		var localInts, remoteInts int64
		for _, li := range leafSets[k] {
			cnt := int64(t.Nodes[li].Count())
			for _, ui := range t.Nodes[li].U {
				ints := cnt * int64(t.Nodes[ui].Count())
				if cellOwner[ui] != k {
					remoteInts += ints
				} else {
					localInts += ints
				}
			}
		}
		var nearLocal float64
		if s.Cfg.Nodes[k].GPUs > 0 {
			gs := s.Cfg.Nodes[k].GPUSpec
			if gs.SMs == 0 {
				gs = vgpu.DefaultSpec()
			}
			cl := vgpu.NewCluster(s.Cfg.Nodes[k].GPUs, gs)
			assignLeaves(cl, leafSets[k])
			nt.GPUTime = cl.Execute(t, nil)
			if tot := localInts + remoteInts; tot > 0 {
				nearLocal = nt.GPUTime * float64(localInts) / float64(tot)
			}
		} else {
			// CPU-only node: near field joins the CPU side; approximate
			// by serializing it over the cores after the far field.
			k2 := math.Max(1, float64(spec.Cores))
			nt.CPUTime += float64(localInts+remoteInts) * spec.Base[costmodel.P2P] / k2
			nearLocal = float64(localInts) * spec.Base[costmodel.P2P] / k2
		}
		nt.Compute = math.Max(nt.CPUTime, nt.GPUTime)
		if es != nil {
			nt.BytesIn = es.PerNode[k].BytesIn
			nt.Messages = es.PerNode[k].MsgsIn
		} else {
			nt.BytesIn = incoming[k].bytes
			nt.Messages = int64(len(incoming[k].peers))
		}
		nt.CommTime = float64(nt.Messages)*s.Cfg.Net.Latency +
			float64(nt.BytesIn)/s.Cfg.Net.Bandwidth
		// Halo hiding: comm overlaps the local-source near rows, so only
		// the excess serializes into the node's step.
		nt.Hidden = math.Min(nt.CommTime, nearLocal)
		nt.Bodies = int(s.cuts[k+1] - s.cuts[k])
		nt.OpShare = res.TotalBusy
		totalOps += res.TotalBusy
		if nt.Compute > 0 {
			throughput[k] = res.TotalBusy / nt.Compute
		}
		rep.TotalBytes += nt.BytesIn
		rep.TotalMsgs += nt.Messages
		sumCompute += nt.Compute
		if end := nt.Compute + nt.CommTime - nt.Hidden; end > maxEnd {
			maxEnd = end
		}
	}
	for k := range rep.PerNode {
		if totalOps > 0 {
			rep.PerNode[k].OpShare /= totalOps
		}
	}
	rep.StepTime = maxEnd
	mean := sumCompute / math.Max(1, float64(nAlive))
	if mean > 0 {
		var maxC float64
		for _, nt := range rep.PerNode {
			maxC = math.Max(maxC, nt.Compute)
		}
		rep.Imbalance = maxC / mean
	}
	s.updateCaps(throughput)

	// Record per-leaf cost estimates for Rebalance.
	model := s.Inner.Model
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		if !n.IsVisibleLeaf() {
			return
		}
		var srcs int64
		for _, ui := range n.U {
			srcs += int64(t.Nodes[ui].Count())
		}
		c := float64(n.Count())*(model.Coef[costmodel.P2M]+model.Coef[costmodel.L2P]) +
			float64(len(n.V))*model.Coef[costmodel.M2L] +
			float64(int64(n.Count())*srcs)*model.Coef[costmodel.P2P]
		s.lastLeaves = append(s.lastLeaves, ni)
		s.lastLeafCost = append(s.lastLeafCost, c)
	})
	return rep
}

// assignLeaves distributes a node's leaves over its devices by interaction
// share, mirroring the single-node partitioner.
func assignLeaves(cl *vgpu.Cluster, leaves []int32) {
	for _, d := range cl.Devices {
		d.Targets = d.Targets[:0]
	}
	if len(cl.Devices) == 0 {
		return
	}
	per := (len(leaves) + len(cl.Devices) - 1) / len(cl.Devices)
	if per < 1 {
		per = 1
	}
	for i, leaf := range leaves {
		di := i / per
		if di >= len(cl.Devices) {
			di = len(cl.Devices) - 1
		}
		cl.Devices[di].Targets = append(cl.Devices[di].Targets, leaf)
	}
}

// updateCaps folds the step's observed per-node throughput (virtual ops
// per second of compute) into the capacity estimates: an EWMA normalized
// to mean 1 over the alive nodes. The estimates weight the shares in the
// next repartition, so a slow node's range shrinks even when the leaf
// cost model is perfect. Nodes with no observed work keep their prior.
func (s *Solver) updateCaps(throughput []float64) {
	var sum float64
	n := 0
	for k, th := range throughput {
		if th > 0 && s.alive[k] {
			sum += th
			n++
		}
	}
	if n == 0 {
		return
	}
	mean := sum / float64(n)
	for k, th := range throughput {
		if th > 0 && s.alive[k] {
			s.caps[k] = 0.5*s.caps[k] + 0.5*th/mean
		}
	}
}

// Rebalance moves the ownership cuts so each node receives a share of
// the measured per-leaf cost proportional to its capacity estimate (the
// inter-node analogue of the paper's intra-node balancing). It returns
// the predicted improvement ratio (old max-node-cost / new max-node-
// cost, >= 1 when it helped) and requires a prior Solve.
func (s *Solver) Rebalance() float64 {
	if len(s.lastLeaves) == 0 {
		return 1
	}
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	total := 0.0
	for _, c := range s.lastLeafCost {
		total += c
	}
	if total == 0 {
		return 1
	}
	leafEnds := make([]int32, len(s.lastLeaves))
	for i, li := range s.lastLeaves {
		leafEnds[i] = t.Nodes[li].End
	}
	shares := make([]float64, p)
	for k := range shares {
		if s.alive[k] {
			shares[k] = s.caps[k]
		}
	}
	newCuts := computeCuts(leafEnds, s.lastLeafCost, shares, p)
	newCuts[p] = int32(s.Inner.Sys.Len())

	maxCost := func(cuts []int32) float64 {
		var worst float64
		for k := 0; k < p; k++ {
			var sum float64
			for i, li := range s.lastLeaves {
				start := t.Nodes[li].Start
				if start >= cuts[k] && start < cuts[k+1] {
					sum += s.lastLeafCost[i]
				}
			}
			worst = math.Max(worst, sum)
		}
		return worst
	}
	oldMax := maxCost(s.cuts)
	newMax := maxCost(newCuts)
	s.cuts = newCuts
	if newMax <= 0 {
		return 1
	}
	return oldMax / newMax
}

// RunResult aggregates a distributed multi-step run.
type RunResult struct {
	Steps      []StepReport
	TotalTime  float64
	TotalBytes int64
	Rebalances int
	// NodeLosses counts fail-stop events absorbed; RecoveryTime is the
	// detection + repartition-broadcast time charged for them (measured
	// heartbeat latency in Execute mode, modeled otherwise).
	NodeLosses   int
	RecoveryTime float64
	// DetectLatencies are the measured heartbeat detection latencies,
	// seconds, one per node loss (empty when the oracle detected).
	DetectLatencies []float64
	// Net aggregates the run's link-layer delivery activity.
	Net NetStats
}

// RunConfig parameterizes RunWith.
type RunConfig struct {
	Steps  int
	Dt     float64
	Policy RebalancePolicy
	// StartStep offsets the run's step indices (fault schedules are
	// absolute-step-indexed), e.g. when resuming from a checkpoint.
	StartStep int
	// OnStep, when non-nil, runs after each step's integration and
	// refill — the checkpoint/observation hook.
	OnStep func(step int)
}

// Run advances a gravitational simulation for steps time steps on the
// cluster: each step solves, integrates (kick-drift), refills, and
// rebalances the node partition whenever the compute imbalance exceeds
// rebalanceAt (e.g. 1.15); rebalanceAt <= 0 disables rebalancing.
func (s *Solver) Run(steps int, dt, rebalanceAt float64) RunResult {
	return s.RunWith(RunConfig{
		Steps: steps, Dt: dt,
		Policy: RebalancePolicy{Threshold: rebalanceAt},
	})
}

// RunWith advances the simulation under an explicit repartition policy,
// absorbing any configured node faults at step boundaries: the dead
// node's range is redistributed over the survivors, the capacity epoch
// advances (capacity estimates re-derive from 1), and the step is
// charged the modeled detection timeout plus a repartition broadcast.
func (s *Solver) RunWith(rc RunConfig) RunResult {
	var res RunResult
	pol := rc.Policy
	lastRepart := rc.StartStep - pol.Cooldown - 1
	// Execute mode detects node loss with the heartbeat detector: the
	// fault event only silences the dead node's heartbeater, and the
	// step loop blocks until suspicion crosses the threshold — measured
	// detection, not the oracle.
	if s.rt != nil && !s.Cfg.OracleDetect && len(s.Cfg.NodeFaults) > 0 {
		s.det = newDetector(len(s.Cfg.Nodes), s.Cfg.Link, s.Cfg.LinkFaults, s.Cfg.LinkSeed)
		defer func() {
			s.det.stop()
			s.det = nil
		}()
	}
	var rec *telemetry.Recorder
	if s.rt != nil {
		rec = s.rt.rec
	}
	for step := rc.StartStep; step < rc.StartStep+rc.Steps; step++ {
		if s.det != nil {
			s.det.setStep(step)
		}
		if s.rt != nil {
			s.stepIdx = step
		}
		recovery := s.applyNodeFaults(step, &res)
		rec.StartStep(step)
		rep := s.Solve()
		rep.StepTime += recovery
		if s.rt != nil {
			s.observeNet(rec, step, &rep)
		}
		rec.EndStep()
		// Kick-drift using the solved accelerations.
		sys := s.Inner.Sys
		for i := range sys.Pos {
			sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(rc.Dt))
			sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(rc.Dt))
		}
		s.Inner.Refill()
		if pol.Threshold > 0 && rep.Imbalance > pol.Threshold &&
			step-lastRepart > pol.Cooldown {
			oldCuts := append([]int32(nil), s.cuts...)
			gain := s.Rebalance()
			if pol.MinGain > 1 && gain < pol.MinGain {
				s.cuts = oldCuts // hysteresis: predicted gain too small
			} else {
				res.Rebalances++
				lastRepart = step
				if s.met != nil {
					s.met.reparts.Inc()
				}
			}
		}
		res.Steps = append(res.Steps, rep)
		res.TotalTime += rep.StepTime
		res.TotalBytes += rep.TotalBytes
		res.Net.add(&rep.Net)
		if rc.OnStep != nil {
			rc.OnStep(step)
		}
	}
	return res
}

// observeNet lands the step's link-layer activity on the telemetry
// record and flags deadline breaches: an EventNetTimeout makes the
// flight recorder dump the last 32 step records — each carrying its
// per-link retry counts — under the "net-timeout" reason.
func (s *Solver) observeNet(rec *telemetry.Recorder, step int, rep *StepReport) {
	net := &rep.Net
	if rec.Enabled() {
		links := make([]telemetry.LinkSample, len(net.PerLink))
		for i, ls := range net.PerLink {
			links[i] = telemetry.LinkSample{
				From: ls.From, To: ls.To,
				Frames: ls.Frames, Retries: ls.Retries, RTTNs: ls.RTTNs,
			}
		}
		rec.SetNetStats(telemetry.NetSample{
			FramesSent:     net.FramesSent,
			FramesDropped:  net.FramesDropped,
			Retries:        net.Retries,
			CorruptRejects: net.CorruptRejects,
			Timeouts:       net.Timeouts,
			Rerequests:     net.Rerequests,
			Links:          links,
		})
		if net.Timeouts > 0 {
			rec.EmitEvent(telemetry.EventNetTimeout, net.Timeouts, int64(step),
				float64(net.Retries), float64(net.Rerequests+net.DegradedGhostFlows))
		}
	}
	if s.met != nil {
		s.met.observeNet(net)
		if s.det != nil {
			for k := range s.Cfg.Nodes {
				s.met.setSuspicion(k, s.det.suspicion(k), s.alive[k])
			}
		}
	}
}

// applyNodeFaults fail-stops every node whose event armed at this step:
// the node leaves the alive set, its range is repartitioned over the
// survivors (using the last observed leaf costs when available), and the
// capacity epoch advances so per-node capacity estimates re-derive.
// Returns the recovery time to charge to this step.
//
// With the heartbeat detector live (Execute mode), the fault only
// silences the node's heartbeater; the loop then blocks until the
// detector's suspicion declares the node dead, and that measured
// wall-clock latency — not the modeled DetectTimeout — is charged and
// recorded. The node never participates in a step between its silencing
// and its detection: detection completes before the step executes, so
// bit-identity is preserved (the survivors compute everything).
func (s *Solver) applyNodeFaults(step int, res *RunResult) float64 {
	var recovery float64
	for _, ev := range s.Cfg.NodeFaults {
		if ev.Step != step || !s.alive[ev.Node] {
			continue
		}
		if s.aliveCount() <= 1 {
			continue // never kill the last node
		}
		var detect float64
		if s.det != nil {
			s.det.silence(ev.Node)
			lat := s.det.waitDead(ev.Node)
			detect = lat.Seconds()
			res.DetectLatencies = append(res.DetectLatencies, detect)
			if s.met != nil {
				s.met.detectLatency.Observe(detect)
			}
		} else {
			detect = s.Cfg.DetectTimeout
			if detect <= 0 {
				detect = 100 * s.Cfg.Net.Latency
			}
		}
		s.alive[ev.Node] = false
		s.capEpoch++
		for k := range s.caps {
			s.caps[k] = 1
		}
		s.repartitionSurvivors()
		recovery += detect + float64(len(s.Cfg.Nodes))*s.Cfg.Net.Latency
		res.NodeLosses++
		res.RecoveryTime += recovery
		if s.met != nil {
			s.met.losses.Inc()
		}
	}
	return recovery
}

// repartitionSurvivors rebuilds the cuts over the alive nodes, weighting
// by the last observed per-leaf costs when they match the current leaf
// set and by leaf body counts otherwise.
func (s *Solver) repartitionSurvivors() {
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	leaves := t.VisibleLeaves()
	leafEnds := make([]int32, len(leaves))
	costs := make([]float64, len(leaves))
	for i, li := range leaves {
		leafEnds[i] = t.Nodes[li].End
		if len(s.lastLeafCost) == len(leaves) {
			costs[i] = s.lastLeafCost[i]
		} else {
			costs[i] = float64(t.Nodes[li].Count())
		}
	}
	shares := make([]float64, p)
	for k := range shares {
		if s.alive[k] {
			shares[k] = s.caps[k]
		}
	}
	s.cuts = computeCuts(leafEnds, costs, shares, p)
	s.cuts[p] = int32(s.Inner.Sys.Len())
}
