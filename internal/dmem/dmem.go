// Package dmem extends the single-node heterogeneous AFMM to a simulated
// distributed-memory cluster — the extension the paper anticipates in §II
// ("we expect the method can be extended to a distributed memory cluster
// using techniques such as those in [13, 9]").
//
// The model follows the classical partitioned-tree design of Lashuk et al.
// [13]: bodies are ordered by the adaptive tree's DFS (space-filling)
// order and split into contiguous ranges, one per virtual node; every node
// owns the visible tree cells whose bodies start inside its range. A cell
// interaction is computed by the owner of the *target* cell; source data
// owned elsewhere must be communicated first:
//
//   - a V-list (M2L) source cell owned remotely ships its multipole
//     expansion — the locally essential tree exchange;
//   - a U-list (P2P) source leaf owned remotely ships its bodies — the
//     ghost-particle exchange.
//
// Transfers are deduplicated per (receiver, source cell) and charged to an
// alpha-beta network model; per-node compute times come from the same
// virtual CPU/GPU machinery as the single-node solver. The numerics are
// exactly the shared-memory solver's (the decomposition only re-attributes
// work), so distributed results are bit-identical to single-node results.
package dmem

import (
	"fmt"
	"math"
	"sort"

	"afmm/internal/core"
	"afmm/internal/costmodel"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sphharm"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

// NetworkSpec is the alpha-beta communication model of the interconnect.
type NetworkSpec struct {
	// Latency per aggregated peer-to-peer message, seconds.
	Latency float64
	// Bandwidth in bytes/second per node.
	Bandwidth float64
	// BytesPerBody transferred for one ghost particle.
	BytesPerBody int
}

// DefaultNetwork models a commodity cluster interconnect (~2 us latency,
// ~5 GB/s effective per node).
func DefaultNetwork() NetworkSpec {
	return NetworkSpec{Latency: 2e-6, Bandwidth: 5e9, BytesPerBody: 32}
}

// NodeSpec is one virtual compute node: a CPU plus an optional device
// cluster, identical in kind to the single-node machine.
type NodeSpec struct {
	CPU     vcpu.Spec
	GPUs    int
	GPUSpec vgpu.Spec
}

// Config assembles a distributed solver.
type Config struct {
	// Core configures the underlying (numerically authoritative) solver.
	Core core.Config
	// Nodes describes each cluster node. Homogeneous clusters can use
	// HomogeneousNodes.
	Nodes []NodeSpec
	// Net is the interconnect model.
	Net NetworkSpec
}

// HomogeneousNodes returns n identical node specs.
func HomogeneousNodes(n int, spec NodeSpec) []NodeSpec {
	out := make([]NodeSpec, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// NodeTimes is one node's share of a step.
type NodeTimes struct {
	Compute  float64 // max(local CPU far field, local GPU near field)
	CPUTime  float64
	GPUTime  float64
	CommTime float64
	BytesIn  int64
	Messages int64   // aggregated peer messages received
	Bodies   int     // bodies owned
	OpShare  float64 // fraction of the global op cost owned
}

// StepReport summarizes a distributed step.
type StepReport struct {
	PerNode []NodeTimes
	// StepTime is the slowest node's comm + compute (bulk-synchronous).
	StepTime float64
	// Imbalance is max node compute over mean node compute.
	Imbalance float64
	// TotalBytes moved across the interconnect.
	TotalBytes int64
	// Single is the underlying single-node timing for reference.
	Single core.StepTimes
}

// Solver runs the AFMM on a simulated cluster.
type Solver struct {
	Cfg   Config
	Inner *core.Solver
	// cuts[i] is the first body index owned by node i; cuts has length
	// len(Nodes)+1 with cuts[0]=0 and cuts[last]=N.
	cuts []int32
	// costWeights from the last step's observed coefficients drive
	// Rebalance.
	lastLeafCost []float64
	lastLeaves   []int32
}

// NewSolver builds the distributed solver. The body partition starts as an
// equal-count split of the tree-ordered bodies.
func NewSolver(sys *particle.System, cfg Config) (*Solver, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dmem: no nodes configured")
	}
	inner := core.NewSolver(sys, cfg.Core)
	if cfg.Net.Bandwidth == 0 {
		cfg.Net = DefaultNetwork()
	}
	s := &Solver{Cfg: cfg, Inner: inner}
	s.equalCountCuts()
	return s, nil
}

// NumNodes returns the cluster size.
func (s *Solver) NumNodes() int { return len(s.Cfg.Nodes) }

// Cuts exposes the current ownership boundaries (body indices).
func (s *Solver) Cuts() []int32 { return append([]int32(nil), s.cuts...) }

func (s *Solver) equalCountCuts() {
	p := len(s.Cfg.Nodes)
	n := s.Inner.Sys.Len()
	s.cuts = make([]int32, p+1)
	for i := 0; i <= p; i++ {
		s.cuts[i] = int32(i * n / p)
	}
}

// owner returns the node owning body index i.
func (s *Solver) owner(i int32) int {
	// cuts is small; binary search.
	lo, hi := 0, len(s.cuts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.cuts[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Solve runs one distributed step: the numerics via the inner solver, then
// ownership attribution, per-node machine timing, and communication
// accounting.
func (s *Solver) Solve() StepReport {
	single := s.Inner.Solve()
	return s.attribute(single)
}

// attribute computes the per-node report for the current tree/lists.
func (s *Solver) attribute(single core.StepTimes) StepReport {
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	rep := StepReport{PerNode: make([]NodeTimes, p), Single: single}

	// Ownership of visible cells: owner of the cell's first body.
	cellOwner := map[int32]int{}
	t.WalkVisible(func(ni int32) {
		cellOwner[ni] = s.owner(t.Nodes[ni].Start)
	})

	// Per-node far-field task graphs and per-node device work. Cross-node
	// tree dependencies are carried by the communication phase, so each
	// node's graph keeps only intra-node precedence.
	passes := s.Inner.Cfg.Profile.FarFieldPasses
	if passes < 1 {
		passes = 1
	}
	graphs := make([]*vcpu.Graph, p)
	upTask := make([]map[int32]int32, p)
	downTask := make([]map[int32]int32, p)
	for k := 0; k < p; k++ {
		graphs[k] = &vcpu.Graph{}
		upTask[k] = map[int32]int32{}
		downTask[k] = map[int32]int32{}
	}
	base := func(k int) costmodel.Coefficients { return s.Cfg.Nodes[k].CPU.Base }

	// transfers[k] dedupes (receiver k, source cell) pairs.
	type transfer struct {
		bytes int64
		peers map[int]bool
	}
	incoming := make([]transfer, p)
	for k := range incoming {
		incoming[k].peers = map[int]bool{}
	}
	seen := map[[2]int32]bool{} // (receiver, source cell) dedup
	expBytes := int64(sphharm.PackedLen(s.Inner.Cfg.P)) * 16 * int64(passes)

	addComm := func(recv int, src int32, bytes int64) {
		key := [2]int32{int32(recv), src}
		if seen[key] {
			return
		}
		seen[key] = true
		incoming[recv].bytes += bytes
		incoming[recv].peers[cellOwner[src]] = true
	}

	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		k := cellOwner[ni]
		g := graphs[k]
		var up vcpu.TaskCost
		if n.IsVisibleLeaf() {
			up[costmodel.P2M] = float64(passes) * base(k)[costmodel.P2M] * float64(n.Count())
		} else {
			kids := 0
			for _, ci := range n.Children {
				if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
					kids++
				}
			}
			up[costmodel.M2M] = float64(passes) * base(k)[costmodel.M2M] * float64(kids)
		}
		upID := g.AddTask(up)
		upTask[k][ni] = upID
		if !n.IsVisibleLeaf() {
			for _, ci := range n.Children {
				if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
					if cellOwner[ci] == k {
						if cid, ok := upTask[k][ci]; ok {
							g.AddDep(cid, upID)
						}
					} else {
						// Child multipole arrives from its owner.
						addComm(k, ci, expBytes)
					}
				}
			}
		}

		var down vcpu.TaskCost
		down[costmodel.M2L] = float64(passes) * base(k)[costmodel.M2L] * float64(len(n.V))
		if n.Parent != octree.NilNode {
			down[costmodel.L2L] = float64(passes) * base(k)[costmodel.L2L]
		}
		if n.IsVisibleLeaf() {
			down[costmodel.L2P] = float64(passes) * base(k)[costmodel.L2P] * float64(n.Count())
		}
		downID := g.AddTask(down)
		downTask[k][ni] = downID
		if n.Parent != octree.NilNode && cellOwner[n.Parent] == k {
			if pid, ok := downTask[k][n.Parent]; ok {
				g.AddDep(pid, downID)
			}
		} else if n.Parent != octree.NilNode {
			// Parent local expansion arrives from the parent's owner.
			addComm(k, n.Parent, expBytes)
		}
		// Remote V-list multipoles and U-list ghost bodies.
		for _, vi := range n.V {
			if cellOwner[vi] != k {
				addComm(k, vi, expBytes)
			}
		}
		if n.IsVisibleLeaf() {
			for _, ui := range n.U {
				if cellOwner[ui] != k {
					addComm(k, ui, int64(t.Nodes[ui].Count())*int64(s.Cfg.Net.BytesPerBody))
				}
			}
		}
	})

	// Per-node device work: each node's GPUs run its owned leaves.
	leafSets := make([][]int32, p)
	t.WalkVisible(func(ni int32) {
		if t.Nodes[ni].IsVisibleLeaf() {
			k := cellOwner[ni]
			leafSets[k] = append(leafSets[k], ni)
		}
	})

	var totalOps float64
	var maxEnd float64
	var sumCompute float64
	s.lastLeaves = s.lastLeaves[:0]
	s.lastLeafCost = s.lastLeafCost[:0]
	for k := 0; k < p; k++ {
		spec := s.Cfg.Nodes[k].CPU.Normalized()
		res := spec.Simulate(graphs[k])
		nt := &rep.PerNode[k]
		nt.CPUTime = res.Makespan
		if s.Cfg.Nodes[k].GPUs > 0 {
			gs := s.Cfg.Nodes[k].GPUSpec
			if gs.SMs == 0 {
				gs = vgpu.DefaultSpec()
			}
			cl := vgpu.NewCluster(s.Cfg.Nodes[k].GPUs, gs)
			assignLeaves(cl, leafSets[k])
			nt.GPUTime = cl.Execute(t, nil)
		} else {
			// CPU-only node: near field joins the CPU side; approximate
			// by serializing it over the cores after the far field.
			var ints int64
			for _, li := range leafSets[k] {
				var srcs int64
				for _, ui := range t.Nodes[li].U {
					srcs += int64(t.Nodes[ui].Count())
				}
				ints += int64(t.Nodes[li].Count()) * srcs
			}
			k2 := math.Max(1, float64(spec.Cores))
			nt.CPUTime += float64(ints) * spec.Base[costmodel.P2P] / k2
		}
		nt.Compute = math.Max(nt.CPUTime, nt.GPUTime)
		nt.CommTime = float64(len(incoming[k].peers))*s.Cfg.Net.Latency +
			float64(incoming[k].bytes)/s.Cfg.Net.Bandwidth
		nt.BytesIn = incoming[k].bytes
		nt.Messages = int64(len(incoming[k].peers))
		nt.Bodies = int(s.cuts[k+1] - s.cuts[k])
		nt.OpShare = res.TotalBusy
		totalOps += res.TotalBusy
		rep.TotalBytes += incoming[k].bytes
		sumCompute += nt.Compute
		if end := nt.Compute + nt.CommTime; end > maxEnd {
			maxEnd = end
		}
	}
	for k := range rep.PerNode {
		if totalOps > 0 {
			rep.PerNode[k].OpShare /= totalOps
		}
	}
	rep.StepTime = maxEnd
	mean := sumCompute / float64(p)
	if mean > 0 {
		var maxC float64
		for _, nt := range rep.PerNode {
			maxC = math.Max(maxC, nt.Compute)
		}
		rep.Imbalance = maxC / mean
	}

	// Record per-leaf cost estimates for Rebalance.
	model := s.Inner.Model
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		if !n.IsVisibleLeaf() {
			return
		}
		var srcs int64
		for _, ui := range n.U {
			srcs += int64(t.Nodes[ui].Count())
		}
		c := float64(n.Count())*(model.Coef[costmodel.P2M]+model.Coef[costmodel.L2P]) +
			float64(len(n.V))*model.Coef[costmodel.M2L] +
			float64(int64(n.Count())*srcs)*model.Coef[costmodel.P2P]
		s.lastLeaves = append(s.lastLeaves, ni)
		s.lastLeafCost = append(s.lastLeafCost, c)
	})
	return rep
}

// assignLeaves distributes a node's leaves over its devices by interaction
// share, mirroring the single-node partitioner.
func assignLeaves(cl *vgpu.Cluster, leaves []int32) {
	for _, d := range cl.Devices {
		d.Targets = d.Targets[:0]
	}
	if len(cl.Devices) == 0 {
		return
	}
	per := (len(leaves) + len(cl.Devices) - 1) / len(cl.Devices)
	if per < 1 {
		per = 1
	}
	for i, leaf := range leaves {
		di := i / per
		if di >= len(cl.Devices) {
			di = len(cl.Devices) - 1
		}
		cl.Devices[di].Targets = append(cl.Devices[di].Targets, leaf)
	}
}

// Rebalance moves the ownership cuts so each node receives an equal share
// of the measured per-leaf cost (the inter-node analogue of the paper's
// intra-node balancing). It returns the predicted improvement ratio
// (old max-node-cost / new max-node-cost, >= 1 when it helped) and
// requires a prior Solve.
func (s *Solver) Rebalance() float64 {
	if len(s.lastLeaves) == 0 {
		return 1
	}
	t := s.Inner.Tree
	p := len(s.Cfg.Nodes)
	// Leaves are already in DFS (storage) order; compute cost prefix.
	total := 0.0
	for _, c := range s.lastLeafCost {
		total += c
	}
	if total == 0 {
		return 1
	}
	target := total / float64(p)
	newCuts := make([]int32, 0, p+1)
	newCuts = append(newCuts, 0)
	acc := 0.0
	for i, li := range s.lastLeaves {
		if len(newCuts) >= p {
			break
		}
		acc += s.lastLeafCost[i]
		if acc >= target*float64(len(newCuts)) {
			newCuts = append(newCuts, t.Nodes[li].End)
		}
	}
	for len(newCuts) <= p {
		newCuts = append(newCuts, int32(s.Inner.Sys.Len()))
	}
	sort.Slice(newCuts, func(i, j int) bool { return newCuts[i] < newCuts[j] })

	maxCost := func(cuts []int32) float64 {
		var worst float64
		for k := 0; k < p; k++ {
			var sum float64
			for i, li := range s.lastLeaves {
				start := t.Nodes[li].Start
				if start >= cuts[k] && start < cuts[k+1] {
					sum += s.lastLeafCost[i]
				}
			}
			worst = math.Max(worst, sum)
		}
		return worst
	}
	oldMax := maxCost(s.cuts)
	newMax := maxCost(newCuts)
	s.cuts = newCuts
	if newMax <= 0 {
		return 1
	}
	return oldMax / newMax
}

// RunResult aggregates a distributed multi-step run.
type RunResult struct {
	Steps      []StepReport
	TotalTime  float64
	TotalBytes int64
	Rebalances int
}

// Run advances a gravitational simulation for steps time steps on the
// cluster: each step solves, integrates (kick-drift), refills, and
// rebalances the node partition whenever the compute imbalance exceeds
// rebalanceAt (e.g. 1.15); rebalanceAt <= 0 disables rebalancing.
func (s *Solver) Run(steps int, dt, rebalanceAt float64) RunResult {
	var res RunResult
	for step := 0; step < steps; step++ {
		rep := s.Solve()
		// Kick-drift using the inner solver's accelerations.
		sys := s.Inner.Sys
		for i := range sys.Pos {
			sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
			sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
		}
		s.Inner.Refill()
		if rebalanceAt > 0 && rep.Imbalance > rebalanceAt {
			s.Rebalance()
			res.Rebalances++
		}
		res.Steps = append(res.Steps, rep)
		res.TotalTime += rep.StepTime
		res.TotalBytes += rep.TotalBytes
	}
	return res
}
