package dmem

import (
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

func clusterConfig(nodes int) Config {
	node := NodeSpec{
		CPU:     vcpu.Spec{Cores: 10}.Normalized(),
		GPUs:    2,
		GPUSpec: vgpu.ScaledSpec(1.0 / 64),
	}
	coreCfg := core.Config{
		P: 4, S: 64, NumGPUs: 2, GPUSpec: vgpu.ScaledSpec(1.0 / 64),
		SkipFarField: true, SkipNearField: true,
	}
	coreCfg.CPU.Cores = 10
	return Config{
		Core:  coreCfg,
		Nodes: HomogeneousNodes(nodes, node),
	}
}

func TestDistributedMatchesSingleNodeNumerics(t *testing.T) {
	sysA := distrib.Plummer(1200, 1, 1, 3)
	sysB := sysA.Clone()
	cfg := clusterConfig(4)
	cfg.Core.SkipFarField = false
	cfg.Core.SkipNearField = false
	cfg.Core.P = 6
	d, err := NewSolver(sysA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Solve()

	single := core.NewSolver(sysB, cfg.Core)
	single.Solve()
	accA := sysA.AccInInputOrder()
	accB := sysB.AccInInputOrder()
	for i := range accA {
		if accA[i].Sub(accB[i]).Norm() > 1e-12*(1+accB[i].Norm()) {
			t.Fatalf("distributed numerics diverged at body %d", i)
		}
	}
}

func TestOwnershipPartitionsBodies(t *testing.T) {
	sys := distrib.Plummer(5000, 1, 1, 5)
	d, err := NewSolver(sys, clusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Solve()
	var owned int
	for _, nt := range rep.PerNode {
		owned += nt.Bodies
	}
	if owned != sys.Len() {
		t.Fatalf("nodes own %d bodies, want %d", owned, sys.Len())
	}
	cuts := d.Cuts()
	if cuts[0] != 0 || cuts[len(cuts)-1] != int32(sys.Len()) {
		t.Fatalf("cut endpoints wrong: %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			t.Fatalf("cuts not monotone: %v", cuts)
		}
	}
}

func TestMoreNodesReduceComputeAddComm(t *testing.T) {
	sys := distrib.Plummer(20000, 1, 1, 7)
	var prevMaxCompute float64
	var prevBytes int64
	for i, nodes := range []int{1, 2, 4, 8} {
		d, err := NewSolver(sys.Clone(), clusterConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		rep := d.Solve()
		var maxC float64
		for _, nt := range rep.PerNode {
			if nt.Compute > maxC {
				maxC = nt.Compute
			}
		}
		if nodes == 1 {
			if rep.TotalBytes != 0 {
				t.Fatalf("single node should not communicate: %d bytes", rep.TotalBytes)
			}
		} else {
			if rep.TotalBytes <= prevBytes {
				t.Fatalf("%d nodes: bytes %d did not grow from %d",
					nodes, rep.TotalBytes, prevBytes)
			}
			if maxC >= prevMaxCompute {
				t.Fatalf("%d nodes: max compute %v did not shrink from %v",
					nodes, maxC, prevMaxCompute)
			}
		}
		_ = i
		prevMaxCompute = maxC
		prevBytes = rep.TotalBytes
	}
}

func TestCommVolumeBounded(t *testing.T) {
	// Ghost/multipole traffic must be far below shipping the whole
	// system to every node (the point of the locally essential tree).
	sys := distrib.Plummer(20000, 1, 1, 9)
	d, err := NewSolver(sys, clusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Solve()
	naive := int64(4) * int64(sys.Len()) * int64(d.Cfg.Net.BytesPerBody)
	if rep.TotalBytes >= naive {
		t.Fatalf("comm %d bytes not below naive broadcast %d", rep.TotalBytes, naive)
	}
	if rep.TotalBytes == 0 {
		t.Fatal("no communication recorded on 4 nodes")
	}
}

func TestRebalanceImprovesSkewedPartition(t *testing.T) {
	// A clustered distribution with equal-count cuts loads the node
	// owning the dense core with most of the near-field work; cost-based
	// cuts must improve the bound.
	sys := distrib.TwoClusters(12000, 0.3, 1, 8, 0, 11)
	d, err := NewSolver(sys, clusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	before := d.Solve()
	gain := d.Rebalance()
	after := d.attribute(before.Single)
	if gain < 0.99 {
		t.Fatalf("rebalance predicted regression: gain %v", gain)
	}
	if after.Imbalance > before.Imbalance*1.05 {
		t.Fatalf("imbalance worsened: %v -> %v", before.Imbalance, after.Imbalance)
	}
}

func TestHeterogeneousClusterNodes(t *testing.T) {
	// A cluster whose first node has no GPUs: that node's near field
	// lands on its CPU and it should be the step bottleneck.
	sys := distrib.Plummer(10000, 1, 1, 13)
	cfg := clusterConfig(3)
	// Full-speed devices on the GPU nodes so the contrast with the
	// GPU-less node is unambiguous.
	for k := range cfg.Nodes {
		cfg.Nodes[k].GPUSpec = vgpu.DefaultSpec()
	}
	cfg.Nodes[0].GPUs = 0
	d, err := NewSolver(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Solve()
	slowest := 0
	for k, nt := range rep.PerNode {
		if nt.Compute > rep.PerNode[slowest].Compute {
			slowest = k
		}
	}
	if slowest != 0 {
		t.Fatalf("GPU-less node %d not the bottleneck (slowest=%d)", 0, slowest)
	}
}

func TestNoNodesRejected(t *testing.T) {
	sys := distrib.Plummer(100, 1, 1, 1)
	if _, err := NewSolver(sys, Config{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestRunRebalancesWhenSkewed(t *testing.T) {
	// Colliding clusters drive the partition out of balance over time;
	// the driver must trigger rebalances and keep the run sane.
	sys := distrib.TwoClusters(4000, 0.3, 1, 4, 4, 31)
	cfg := clusterConfig(4)
	cfg.Core.SkipFarField = false
	cfg.Core.SkipNearField = false
	cfg.Core.P = 2
	cfg.Core.Kernel.G = 1
	cfg.Core.Kernel.Softening = 0.02
	d, err := NewSolver(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(30, 5e-4, 1.05)
	if len(res.Steps) != 30 {
		t.Fatalf("%d step reports", len(res.Steps))
	}
	if res.TotalTime <= 0 || res.TotalBytes <= 0 {
		t.Fatalf("degenerate totals: %+v", res)
	}
	if res.Rebalances == 0 {
		t.Fatal("skewed collision never triggered a rebalance")
	}
	if err := d.Inner.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
