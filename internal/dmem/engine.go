package dmem

import (
	"math"

	"afmm/internal/core"
	"afmm/internal/expansion"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sphharm"
	"afmm/internal/stokes"
)

// A nodeEngine holds one virtual cluster node's private numeric state —
// expansion slabs, ghost-body copies, workspace pool — and executes the
// per-cell operators in exactly the shared-memory solvers' operation
// order. The tree, the interaction lists and the particle arrays are
// shared read-only (the "wire" only carries copies: multipoles, locals
// and ghost bodies land in the engine's private storage); accumulators
// are written only for the node's owned body ranges. Because every cell
// is computed wholly by one engine with the single-node operator order,
// and ghost copies are bit-for-bit the owner's values, the distributed
// result is bit-identical to the single-node result.
type nodeEngine interface {
	// prepare sizes and zeroes the private slabs for the current tree and
	// adopts the step's ownership map (owner[cell] = owning node or -1).
	prepare(owner []int32, me int)
	// expLen is the number of complex coefficients shipped per cell
	// (packed length × harmonic passes).
	expLen() int

	upCell(w *expansion.Workspace, ni int32)
	downCell(w *expansion.Workspace, ni int32)
	leafL2P(w *expansion.Workspace, ni int32)
	nearRow(sch *octree.NearSchedule, r int)

	packMpole(ni int32, dst []complex128)
	loadMpole(ni int32, src []complex128)
	packLocal(ni int32, dst []complex128)
	loadLocal(ni int32, src []complex128)
	packGhost(ni int32) ghostLeaf
	loadGhost(ni int32, gl ghostLeaf)

	getWS() *expansion.Workspace
	putWS(w *expansion.Workspace)
}

// ghostLeaf is one U-list source leaf's body copies as shipped by the
// ghost-particle exchange: positions plus the kernel's source payload
// (masses for gravity, forces for Stokes).
type ghostLeaf struct {
	pos  []geom.Vec3
	mass []float64
	aux  []geom.Vec3
}

// engineBase is the engine state shared by both kernels.
type engineBase struct {
	tree   *octree.Tree
	sys    *particle.System
	p      int
	packed int
	rot    bool
	me     int32
	owner  []int32
	ghosts []ghostLeaf
	ws     chan *expansion.Workspace
	// m2lSrcs free-list mirrors the solvers' chunk-local scratch.
	srcs chan []expansion.M2LSource
}

func (e *engineBase) init(t *octree.Tree, sys *particle.System, p int, rot bool) {
	e.tree, e.sys = t, sys
	e.p, e.packed, e.rot = p, sphharm.PackedLen(p), rot
	e.ws = make(chan *expansion.Workspace, 32)
	e.srcs = make(chan []expansion.M2LSource, 32)
}

func (e *engineBase) prepareBase(owner []int32, me int) {
	e.owner = owner
	e.me = int32(me)
	n := len(e.tree.Nodes)
	if cap(e.ghosts) < n {
		e.ghosts = make([]ghostLeaf, n)
	} else {
		e.ghosts = e.ghosts[:n]
		for i := range e.ghosts {
			e.ghosts[i] = ghostLeaf{}
		}
	}
}

func (e *engineBase) getWS() *expansion.Workspace {
	select {
	case w := <-e.ws:
		return w
	default:
		return expansion.NewWorkspace(e.p)
	}
}

func (e *engineBase) putWS(w *expansion.Workspace) {
	select {
	case e.ws <- w:
	default:
	}
}

func (e *engineBase) getSrcs() []expansion.M2LSource {
	select {
	case s := <-e.srcs:
		return s[:0]
	default:
		return nil
	}
}

func (e *engineBase) putSrcs(s []expansion.M2LSource) {
	select {
	case e.srcs <- s:
	default:
	}
}

// sizeSlab grows (and zeroes) one expansion slab to n complex values.
func sizeSlab(slab []complex128, n int) []complex128 {
	if cap(slab) < n {
		return make([]complex128, n)
	}
	slab = slab[:n]
	for i := range slab {
		slab[i] = 0
	}
	return slab
}

// gravityEngine mirrors core.Solver's per-cell numerics over private
// slabs. The operation order inside each method is copied verbatim from
// the solver (upNode / downNode / leafL2P / nearFieldChunk), which is
// the bit-identity argument.
type gravityEngine struct {
	engineBase
	kernel kernels.Gravity
	mpoles []complex128
	locals []complex128
}

func newGravityEngine(sv *core.Solver) *gravityEngine {
	e := &gravityEngine{kernel: sv.Cfg.Kernel}
	e.init(sv.Tree, sv.Sys, sv.Cfg.P, sv.Cfg.UseRotatedTranslations)
	return e
}

func (e *gravityEngine) prepare(owner []int32, me int) {
	e.prepareBase(owner, me)
	n := len(e.tree.Nodes) * e.packed
	e.mpoles = sizeSlab(e.mpoles, n)
	e.locals = sizeSlab(e.locals, n)
}

func (e *gravityEngine) expLen() int { return e.packed }

func (e *gravityEngine) mpole(ni int32) expansion.Expansion {
	off := int(ni) * e.packed
	return expansion.Expansion{P: e.p, C: e.mpoles[off : off+e.packed]}
}

func (e *gravityEngine) local(ni int32) expansion.Expansion {
	off := int(ni) * e.packed
	return expansion.Expansion{P: e.p, C: e.locals[off : off+e.packed]}
}

func (e *gravityEngine) upCell(w *expansion.Workspace, ni int32) {
	t := e.tree
	n := &t.Nodes[ni]
	m := e.mpole(ni)
	if n.IsVisibleLeaf() {
		for i := n.Start; i < n.End; i++ {
			w.P2M(m, n.Box.Center, e.sys.Pos[i], e.sys.Mass[i])
		}
		return
	}
	for _, ci := range n.Children {
		if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
			if e.rot {
				w.M2MRotated(m, n.Box.Center, e.mpole(ci), t.Nodes[ci].Box.Center)
			} else {
				w.M2M(m, n.Box.Center, e.mpole(ci), t.Nodes[ci].Box.Center)
			}
		}
	}
}

func (e *gravityEngine) downCell(w *expansion.Workspace, ni int32) {
	t := e.tree
	n := &t.Nodes[ni]
	l := e.local(ni)
	if parent := n.Parent; parent != octree.NilNode {
		if e.rot {
			w.L2LRotated(l, n.Box.Center, e.local(parent), t.Nodes[parent].Box.Center)
		} else {
			w.L2L(l, n.Box.Center, e.local(parent), t.Nodes[parent].Box.Center)
		}
	}
	if len(n.V) > 0 {
		srcs := e.getSrcs()
		for _, vi := range n.V {
			srcs = append(srcs, expansion.M2LSource{M: e.mpole(vi), From: t.Nodes[vi].Box.Center})
		}
		// M2LBatch is bit-identical to the table path (the PR 6 property),
		// so the engines need no shared table.
		w.M2LBatch(l, n.Box.Center, srcs)
		e.putSrcs(srcs)
	}
}

func (e *gravityEngine) leafL2P(w *expansion.Workspace, ni int32) {
	n := &e.tree.Nodes[ni]
	l := e.local(ni)
	g := e.kernel.G
	for i := n.Start; i < n.End; i++ {
		phi, grad := w.L2P(l, n.Box.Center, e.sys.Pos[i])
		e.sys.Phi[i] += -g * phi
		e.sys.Acc[i] = e.sys.Acc[i].Add(grad.Scale(g))
	}
}

func (e *gravityEngine) nearRow(sch *octree.NearSchedule, r int) {
	t, sys := e.tree, e.sys
	tn := &t.Nodes[sch.Leaves[r]]
	xt := sys.Pos[tn.Start:tn.End]
	pot := sys.Phi[tn.Start:tn.End]
	acc := sys.Acc[tn.Start:tn.End]
	for k := sch.RowPtr[r]; k < sch.RowPtr[r+1]; k++ {
		if si := sch.Srcs[k]; e.owner[si] != e.me {
			gl := &e.ghosts[si]
			e.kernel.P2P(xt, pot, acc, gl.pos, gl.mass)
		} else {
			e.kernel.P2P(xt, pot, acc,
				sys.Pos[sch.SrcStart[k]:sch.SrcEnd[k]],
				sys.Mass[sch.SrcStart[k]:sch.SrcEnd[k]])
		}
	}
}

func (e *gravityEngine) packMpole(ni int32, dst []complex128) {
	copy(dst, e.mpole(ni).C)
}

func (e *gravityEngine) loadMpole(ni int32, src []complex128) {
	copy(e.mpole(ni).C, src)
}

func (e *gravityEngine) packLocal(ni int32, dst []complex128) {
	copy(dst, e.local(ni).C)
}

func (e *gravityEngine) loadLocal(ni int32, src []complex128) {
	copy(e.local(ni).C, src)
}

func (e *gravityEngine) packGhost(ni int32) ghostLeaf {
	n := &e.tree.Nodes[ni]
	return ghostLeaf{
		pos:  append([]geom.Vec3(nil), e.sys.Pos[n.Start:n.End]...),
		mass: append([]float64(nil), e.sys.Mass[n.Start:n.End]...),
	}
}

func (e *gravityEngine) loadGhost(ni int32, gl ghostLeaf) { e.ghosts[ni] = gl }

// stokesPasses is the Stokeslet solver's harmonic pass count.
const stokesPasses = 4

// stokesEngine mirrors stokes.Solver's four-pass per-cell numerics over
// private per-pass slabs (operation order copied verbatim from
// upNodePass / downNodePass / leafL2P / nearFieldChunk).
type stokesEngine struct {
	engineBase
	kernel kernels.Stokeslet
	mpoles [stokesPasses][]complex128
	locals [stokesPasses][]complex128
}

func newStokesEngine(sv *stokes.Solver) *stokesEngine {
	e := &stokesEngine{kernel: sv.Cfg.Kernel}
	e.init(sv.Tree, sv.Sys, sv.Cfg.P, sv.Cfg.UseRotatedTranslations)
	return e
}

func (e *stokesEngine) prepare(owner []int32, me int) {
	e.prepareBase(owner, me)
	n := len(e.tree.Nodes) * e.packed
	for k := 0; k < stokesPasses; k++ {
		e.mpoles[k] = sizeSlab(e.mpoles[k], n)
		e.locals[k] = sizeSlab(e.locals[k], n)
	}
}

func (e *stokesEngine) expLen() int { return e.packed * stokesPasses }

func (e *stokesEngine) mpole(k int, ni int32) expansion.Expansion {
	off := int(ni) * e.packed
	return expansion.Expansion{P: e.p, C: e.mpoles[k][off : off+e.packed]}
}

func (e *stokesEngine) local(k int, ni int32) expansion.Expansion {
	off := int(ni) * e.packed
	return expansion.Expansion{P: e.p, C: e.locals[k][off : off+e.packed]}
}

// charge returns the pass-k harmonic charge of body i: f_x, f_y, f_z, f·y.
func (e *stokesEngine) charge(k int, i int32) float64 {
	f := e.sys.Aux[i]
	switch k {
	case 0:
		return f.X
	case 1:
		return f.Y
	case 2:
		return f.Z
	default:
		return f.Dot(e.sys.Pos[i])
	}
}

func (e *stokesEngine) upCell(w *expansion.Workspace, ni int32) {
	t := e.tree
	n := &t.Nodes[ni]
	for k := 0; k < stokesPasses; k++ {
		m := e.mpole(k, ni)
		if n.IsVisibleLeaf() {
			for i := n.Start; i < n.End; i++ {
				w.P2M(m, n.Box.Center, e.sys.Pos[i], e.charge(k, i))
			}
			continue
		}
		for _, ci := range n.Children {
			if ci != octree.NilNode && t.Nodes[ci].Count() > 0 {
				if e.rot {
					w.M2MRotated(m, n.Box.Center, e.mpole(k, ci), t.Nodes[ci].Box.Center)
				} else {
					w.M2M(m, n.Box.Center, e.mpole(k, ci), t.Nodes[ci].Box.Center)
				}
			}
		}
	}
}

func (e *stokesEngine) downCell(w *expansion.Workspace, ni int32) {
	t := e.tree
	n := &t.Nodes[ni]
	srcs := e.getSrcs()
	for k := 0; k < stokesPasses; k++ {
		l := e.local(k, ni)
		if parent := n.Parent; parent != octree.NilNode {
			if e.rot {
				w.L2LRotated(l, n.Box.Center, e.local(k, parent), t.Nodes[parent].Box.Center)
			} else {
				w.L2L(l, n.Box.Center, e.local(k, parent), t.Nodes[parent].Box.Center)
			}
		}
		if len(n.V) > 0 {
			srcs = srcs[:0]
			for _, vi := range n.V {
				srcs = append(srcs, expansion.M2LSource{M: e.mpole(k, vi), From: t.Nodes[vi].Box.Center})
			}
			w.M2LBatch(l, n.Box.Center, srcs)
		}
	}
	e.putSrcs(srcs)
}

func (e *stokesEngine) leafL2P(w *expansion.Workspace, ni int32) {
	n := &e.tree.Nodes[ni]
	c0 := 1 / (8 * math.Pi * e.kernel.Mu)
	for i := n.Start; i < n.End; i++ {
		x := e.sys.Pos[i]
		p0, g0 := w.L2P(e.local(0, ni), n.Box.Center, x)
		p1, g1 := w.L2P(e.local(1, ni), n.Box.Center, x)
		p2, g2 := w.L2P(e.local(2, ni), n.Box.Center, x)
		_, gp := w.L2P(e.local(3, ni), n.Box.Center, x)
		u := geom.Vec3{
			X: p0 - (x.X*g0.X + x.Y*g1.X + x.Z*g2.X) + gp.X,
			Y: p1 - (x.X*g0.Y + x.Y*g1.Y + x.Z*g2.Y) + gp.Y,
			Z: p2 - (x.X*g0.Z + x.Y*g1.Z + x.Z*g2.Z) + gp.Z,
		}
		e.sys.Acc[i] = e.sys.Acc[i].Add(u.Scale(c0))
	}
}

func (e *stokesEngine) nearRow(sch *octree.NearSchedule, r int) {
	t, sys := e.tree, e.sys
	tn := &t.Nodes[sch.Leaves[r]]
	xt := sys.Pos[tn.Start:tn.End]
	vel := sys.Acc[tn.Start:tn.End]
	for k := sch.RowPtr[r]; k < sch.RowPtr[r+1]; k++ {
		if si := sch.Srcs[k]; e.owner[si] != e.me {
			gl := &e.ghosts[si]
			e.kernel.P2P(xt, vel, gl.pos, gl.aux)
		} else {
			e.kernel.P2P(xt, vel,
				sys.Pos[sch.SrcStart[k]:sch.SrcEnd[k]],
				sys.Aux[sch.SrcStart[k]:sch.SrcEnd[k]])
		}
	}
}

func (e *stokesEngine) packMpole(ni int32, dst []complex128) {
	for k := 0; k < stokesPasses; k++ {
		copy(dst[k*e.packed:(k+1)*e.packed], e.mpole(k, ni).C)
	}
}

func (e *stokesEngine) loadMpole(ni int32, src []complex128) {
	for k := 0; k < stokesPasses; k++ {
		copy(e.mpole(k, ni).C, src[k*e.packed:(k+1)*e.packed])
	}
}

func (e *stokesEngine) packLocal(ni int32, dst []complex128) {
	for k := 0; k < stokesPasses; k++ {
		copy(dst[k*e.packed:(k+1)*e.packed], e.local(k, ni).C)
	}
}

func (e *stokesEngine) loadLocal(ni int32, src []complex128) {
	for k := 0; k < stokesPasses; k++ {
		copy(e.local(k, ni).C, src[k*e.packed:(k+1)*e.packed])
	}
}

func (e *stokesEngine) packGhost(ni int32) ghostLeaf {
	n := &e.tree.Nodes[ni]
	return ghostLeaf{
		pos: append([]geom.Vec3(nil), e.sys.Pos[n.Start:n.End]...),
		aux: append([]geom.Vec3(nil), e.sys.Aux[n.Start:n.End]...),
	}
}

func (e *stokesEngine) loadGhost(ni int32, gl ghostLeaf) { e.ghosts[ni] = gl }
