package dmem

import (
	"fmt"

	"afmm/internal/metrics"
)

// Live series for the distributed runtime, registered when a recorder
// with an enabled registry is attached (SetRecorder). Per-node busy and
// comm distributions are labeled by node id; the totals and gauges are
// cluster-wide.
type dmemMetrics struct {
	reg        *metrics.Registry
	nodes      metrics.Gauge
	imbalance  metrics.Gauge
	hiddenFrac metrics.Gauge
	reparts    metrics.Counter
	losses     metrics.Counter
	bytes      metrics.Counter
	msgs       metrics.Counter
	busy       []metrics.Histogram
	comm       []metrics.Histogram

	// Link-layer series: delivery-protocol counters, per-link RTT
	// histograms (lazily created as links first carry traffic), and the
	// failure detector's per-node suspicion gauges.
	retries       metrics.Counter
	dropped       metrics.Counter
	corrupt       metrics.Counter
	netTimeouts   metrics.Counter
	rerequests    metrics.Counter
	degraded      metrics.Counter
	detectLatency metrics.Histogram
	linkRTT       map[[2]int]metrics.Histogram
	suspicion     []metrics.Gauge
}

// rttBuckets spans 1µs..~32ms doubling — frame round trips live at
// microsecond scale, far below DefBuckets' 250µs floor resolution.
func rttBuckets() []float64 {
	b := make([]float64, 16)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

func newDmemMetrics(reg *metrics.Registry, p int) *dmemMetrics {
	m := &dmemMetrics{
		reg: reg,
		nodes: reg.Gauge("afmm_dmem_nodes",
			"Alive virtual cluster nodes."),
		imbalance: reg.Gauge("afmm_dmem_imbalance",
			"Max/mean per-node compute time over alive nodes."),
		hiddenFrac: reg.Gauge("afmm_dmem_hidden_comm_frac",
			"Fraction of communication time hidden under local near-field work."),
		reparts: reg.Counter("afmm_dmem_repartitions_total",
			"Cost-driven ownership repartitions applied."),
		losses: reg.Counter("afmm_dmem_node_losses_total",
			"Virtual node fail-stop losses absorbed."),
		bytes: reg.Counter("afmm_dmem_bytes_on_wire_total",
			"Modeled bytes moved across the interconnect."),
		msgs: reg.Counter("afmm_dmem_messages_total",
			"Aggregated peer-to-peer messages delivered."),
		retries: reg.Counter("afmm_dmem_retries_total",
			"Frame retransmissions after ack timeout or nack."),
		dropped: reg.Counter("afmm_dmem_frames_dropped_total",
			"Frames lost on the injected lossy links."),
		corrupt: reg.Counter("afmm_dmem_corrupt_rejects_total",
			"Frames rejected by receiver checksum and nacked."),
		netTimeouts: reg.Counter("afmm_dmem_net_timeouts_total",
			"Flow receives that exhausted their phase deadline."),
		rerequests: reg.Counter("afmm_dmem_rerequests_total",
			"Expansion flows recovered by explicit re-request."),
		degraded: reg.Counter("afmm_dmem_degraded_flows_total",
			"Ghost flows recovered by host-side re-execution."),
		detectLatency: reg.Histogram("afmm_dmem_detect_latency_seconds",
			"Heartbeat failure-detector latency per node loss.",
			metrics.DefBuckets()),
		linkRTT: make(map[[2]int]metrics.Histogram),
	}
	buckets := metrics.DefBuckets()
	m.busy = make([]metrics.Histogram, p)
	m.comm = make([]metrics.Histogram, p)
	m.suspicion = make([]metrics.Gauge, p)
	for k := 0; k < p; k++ {
		node := fmt.Sprint(k)
		m.busy[k] = reg.Histogram("afmm_dmem_node_busy_seconds",
			"Per-node modeled compute time per step.", buckets, "node", node)
		m.comm[k] = reg.Histogram("afmm_dmem_node_comm_seconds",
			"Per-node modeled communication time per step.", buckets, "node", node)
		m.suspicion[k] = reg.Gauge("afmm_dmem_suspicion",
			"Failure-detector suspicion level per node (>=1 means dead).",
			"node", node)
	}
	return m
}

// observe records one step's report into the live series.
func (m *dmemMetrics) observe(rep *StepReport, alive []bool) {
	if m == nil {
		return
	}
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	m.nodes.Set(float64(n))
	m.imbalance.Set(rep.Imbalance)
	var comm, hidden float64
	for k := range rep.PerNode {
		if !alive[k] {
			continue
		}
		nt := &rep.PerNode[k]
		m.busy[k].Observe(nt.Compute)
		m.comm[k].Observe(nt.CommTime)
		comm += nt.CommTime
		hidden += nt.Hidden
	}
	if comm > 0 {
		m.hiddenFrac.Set(hidden / comm)
	}
	m.bytes.Add(rep.TotalBytes)
	m.msgs.Add(rep.TotalMsgs)
}

// observeNet folds one step's link-layer counters into the live series.
// The per-step NetStats are deltas (each step runs its own transport), so
// they feed the counters directly.
func (m *dmemMetrics) observeNet(net *NetStats) {
	if m == nil || net == nil {
		return
	}
	m.retries.Add(net.Retries)
	m.dropped.Add(net.FramesDropped)
	m.corrupt.Add(net.CorruptRejects)
	m.netTimeouts.Add(net.Timeouts)
	m.rerequests.Add(net.Rerequests)
	m.degraded.Add(net.DegradedGhostFlows)
	for _, ls := range net.PerLink {
		if ls.RTTCount == 0 {
			continue
		}
		key := [2]int{ls.From, ls.To}
		h, ok := m.linkRTT[key]
		if !ok {
			h = m.reg.Histogram("afmm_dmem_link_rtt_seconds",
				"Frame round-trip time per directed link.", rttBuckets(),
				"link", fmt.Sprintf("%d-%d", ls.From, ls.To))
			m.linkRTT[key] = h
		}
		// One observation at the step's mean RTT per delivered frame keeps
		// the histogram's count meaningful without per-frame plumbing.
		mean := float64(ls.RTTNs) / float64(ls.RTTCount) / 1e9
		for i := int64(0); i < ls.RTTCount; i++ {
			h.Observe(mean)
		}
	}
}

// setSuspicion publishes the failure detector's current view of node k.
// Dead nodes pin at 1 so the gauge does not grow without bound.
func (m *dmemMetrics) setSuspicion(k int, v float64, alive bool) {
	if m == nil || k >= len(m.suspicion) {
		return
	}
	if !alive || v > 1 {
		v = 1
	}
	m.suspicion[k].Set(v)
}
