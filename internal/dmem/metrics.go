package dmem

import (
	"fmt"

	"afmm/internal/metrics"
)

// Live series for the distributed runtime, registered when a recorder
// with an enabled registry is attached (SetRecorder). Per-node busy and
// comm distributions are labeled by node id; the totals and gauges are
// cluster-wide.
type dmemMetrics struct {
	nodes      metrics.Gauge
	imbalance  metrics.Gauge
	hiddenFrac metrics.Gauge
	reparts    metrics.Counter
	losses     metrics.Counter
	bytes      metrics.Counter
	msgs       metrics.Counter
	busy       []metrics.Histogram
	comm       []metrics.Histogram
}

func newDmemMetrics(reg *metrics.Registry, p int) *dmemMetrics {
	m := &dmemMetrics{
		nodes: reg.Gauge("afmm_dmem_nodes",
			"Alive virtual cluster nodes."),
		imbalance: reg.Gauge("afmm_dmem_imbalance",
			"Max/mean per-node compute time over alive nodes."),
		hiddenFrac: reg.Gauge("afmm_dmem_hidden_comm_frac",
			"Fraction of communication time hidden under local near-field work."),
		reparts: reg.Counter("afmm_dmem_repartitions_total",
			"Cost-driven ownership repartitions applied."),
		losses: reg.Counter("afmm_dmem_node_losses_total",
			"Virtual node fail-stop losses absorbed."),
		bytes: reg.Counter("afmm_dmem_bytes_on_wire_total",
			"Modeled bytes moved across the interconnect."),
		msgs: reg.Counter("afmm_dmem_messages_total",
			"Aggregated peer-to-peer messages delivered."),
	}
	buckets := metrics.DefBuckets()
	m.busy = make([]metrics.Histogram, p)
	m.comm = make([]metrics.Histogram, p)
	for k := 0; k < p; k++ {
		node := fmt.Sprint(k)
		m.busy[k] = reg.Histogram("afmm_dmem_node_busy_seconds",
			"Per-node modeled compute time per step.", buckets, "node", node)
		m.comm[k] = reg.Histogram("afmm_dmem_node_comm_seconds",
			"Per-node modeled communication time per step.", buckets, "node", node)
	}
	return m
}

// observe records one step's report into the live series.
func (m *dmemMetrics) observe(rep *StepReport, alive []bool) {
	if m == nil {
		return
	}
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	m.nodes.Set(float64(n))
	m.imbalance.Set(rep.Imbalance)
	var comm, hidden float64
	for k := range rep.PerNode {
		if !alive[k] {
			continue
		}
		nt := &rep.PerNode[k]
		m.busy[k].Observe(nt.Compute)
		m.comm[k].Observe(nt.CommTime)
		comm += nt.CommTime
		hidden += nt.Hidden
	}
	if comm > 0 {
		m.hiddenFrac.Set(hidden / comm)
	}
	m.bytes.Add(rep.TotalBytes)
	m.msgs.Add(rep.TotalMsgs)
}
