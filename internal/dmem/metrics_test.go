package dmem

import (
	"strings"
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/metrics"
	"afmm/internal/telemetry"
)

func TestMetricsPublished(t *testing.T) {
	sys := distrib.Plummer(800, 1, 1, 5)
	d, err := NewSolver(sys, execClusterConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rec := telemetry.New(telemetry.Options{Metrics: reg})
	d.SetRecorder(rec)
	d.RunWith(RunConfig{Steps: 2, Dt: 1e-4})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"afmm_dmem_nodes 3", "afmm_dmem_bytes_on_wire_total", "afmm_dmem_node_busy_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition", want)
		}
	}
}
