package dmem

import "math"

// Cost-weighted range partitioning: split the DFS-ordered leaves into n
// contiguous ranges whose per-leaf costs approximate each node's
// capacity share. The split is a pure function of its inputs — greedy
// over the leaf sequence, taking each leaf while doing so moves the
// accumulated cost no farther from the cut's cumulative target — so
// repeated application on a static workload returns identical cuts
// (convergence is structural, not iterative).

// computeCuts returns n+1 leaf-aligned body cuts (cuts[0] = 0,
// cuts[n] = N) splitting costs over the leaves whose End indices are
// leafEnds. shares[k] is node k's relative capacity: nil means equal
// shares, and a non-positive entry means node k receives nothing (a
// dead node's range collapses to empty).
func computeCuts(leafEnds []int32, costs []float64, shares []float64, n int) []int32 {
	cuts := make([]int32, n+1)
	if len(leafEnds) == 0 {
		return cuts
	}
	N := leafEnds[len(leafEnds)-1]
	total := 0.0
	for _, c := range costs {
		total += c
	}
	sumShare := 0.0
	for k := 0; k < n; k++ {
		if shares == nil {
			sumShare++
		} else if shares[k] > 0 {
			sumShare += shares[k]
		}
	}
	if sumShare == 0 {
		sumShare = 1
	}
	share := func(k int) float64 {
		if shares == nil {
			return 1 / sumShare
		}
		if shares[k] > 0 {
			return shares[k] / sumShare
		}
		return 0
	}

	acc, target := 0.0, 0.0
	li := 0
	for k := 1; k < n; k++ {
		target += total * share(k-1)
		for li < len(costs) &&
			math.Abs(acc+costs[li]-target) <= math.Abs(acc-target) {
			acc += costs[li]
			li++
		}
		if li > 0 {
			cuts[k] = leafEnds[li-1]
		}
	}
	cuts[n] = N
	return cuts
}

// RebalancePolicy gates cost-driven repartitioning with hysteresis, so a
// noisy imbalance signal cannot thrash the cuts every step.
type RebalancePolicy struct {
	// Threshold is the compute imbalance (max/mean) above which a
	// repartition is considered; <= 0 disables repartitioning.
	Threshold float64
	// MinGain is the minimum predicted improvement ratio (old max node
	// cost / new max node cost) required to adopt new cuts; values <= 1
	// adopt every computed repartition.
	MinGain float64
	// Cooldown is the minimum number of steps between repartitions.
	Cooldown int
}

// DefaultPolicy triggers above 15% imbalance, requires a predicted 5%
// makespan gain, and waits 3 steps between repartitions.
func DefaultPolicy() RebalancePolicy {
	return RebalancePolicy{Threshold: 1.15, MinGain: 1.05, Cooldown: 3}
}
