package dmem

import (
	"math/rand"
	"testing"
)

func randomLeafLayout(r *rand.Rand, leaves int) (leafEnds []int32, costs []float64) {
	end := int32(0)
	for i := 0; i < leaves; i++ {
		end += int32(1 + r.Intn(40))
		leafEnds = append(leafEnds, end)
		costs = append(costs, r.Float64()*10)
	}
	return
}

// TestComputeCutsCoverAndAlign: for random leaf layouts, the cuts are
// monotone, leaf-aligned, and cover every body exactly once.
func TestComputeCutsCoverAndAlign(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		leaves := 1 + r.Intn(60)
		n := 1 + r.Intn(8)
		leafEnds, costs := randomLeafLayout(r, leaves)
		cuts := computeCuts(leafEnds, costs, nil, n)

		if len(cuts) != n+1 {
			t.Fatalf("len(cuts) = %d, want %d", len(cuts), n+1)
		}
		if cuts[0] != 0 || cuts[n] != leafEnds[leaves-1] {
			t.Fatalf("cuts endpoints %d..%d, want 0..%d", cuts[0], cuts[n], leafEnds[leaves-1])
		}
		admissible := map[int32]bool{0: true}
		for _, e := range leafEnds {
			admissible[e] = true
		}
		for k := 0; k < n; k++ {
			if cuts[k+1] < cuts[k] {
				t.Fatalf("cuts not monotone: %v", cuts)
			}
			if !admissible[cuts[k]] {
				t.Fatalf("cut %d not leaf-aligned (leafEnds %v)", cuts[k], leafEnds)
			}
		}
	}
}

// TestComputeCutsDeterministicAndConvergent: the split is a pure
// function of its inputs, so on a static workload a second application
// returns identical cuts — the repartitioner cannot thrash.
func TestComputeCutsDeterministicAndConvergent(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		leafEnds, costs := randomLeafLayout(r, 1+r.Intn(50))
		n := 1 + r.Intn(6)
		a := computeCuts(leafEnds, costs, nil, n)
		b := computeCuts(leafEnds, costs, nil, n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-deterministic cuts: %v vs %v", a, b)
			}
		}
	}
}

// TestComputeCutsSkewedImprovement: on a heavily skewed cost profile the
// cost-weighted cuts beat an equal-count split on max per-range cost.
func TestComputeCutsSkewedImprovement(t *testing.T) {
	var leafEnds []int32
	var costs []float64
	end := int32(0)
	for i := 0; i < 64; i++ {
		end += 10
		leafEnds = append(leafEnds, end)
		if i < 8 {
			costs = append(costs, 100) // hot clustered region
		} else {
			costs = append(costs, 1)
		}
	}
	const n = 4
	weighted := computeCuts(leafEnds, costs, nil, n)
	equal := []int32{0, 160, 320, 480, 640}

	maxCost := func(cuts []int32) float64 {
		var worst float64
		for k := 0; k < n; k++ {
			var sum float64
			start := int32(0)
			for i, e := range leafEnds {
				if start >= cuts[k] && start < cuts[k+1] {
					sum += costs[i]
				}
				start = e
			}
			if sum > worst {
				worst = sum
			}
		}
		return worst
	}
	mw, me := maxCost(weighted), maxCost(equal)
	if mw >= me {
		t.Fatalf("weighted max cost %v not better than equal-count %v", mw, me)
	}
	if me/mw < 1.5 {
		t.Fatalf("expected a clear margin on skewed costs, got %v", me/mw)
	}
}

// TestComputeCutsZeroShare: a dead node's range collapses to empty and
// the survivors absorb it.
func TestComputeCutsZeroShare(t *testing.T) {
	leafEnds := []int32{10, 20, 30, 40}
	costs := []float64{1, 1, 1, 1}
	cuts := computeCuts(leafEnds, costs, []float64{1, 0, 1}, 3)
	if cuts[1] != cuts[2] {
		t.Fatalf("dead node's range not empty: %v", cuts)
	}
	if cuts[0] != 0 || cuts[3] != 40 {
		t.Fatalf("bad endpoints: %v", cuts)
	}
}
