package dmem

import (
	"sort"

	"afmm/internal/octree"
)

// The exchange plan is the step's locally essential tree (LET) protocol,
// derived independently of execution order from the shared tree and the
// ownership cuts: for every (sender, receiver) pair it lists exactly
// which cells' multipoles, locals, and ghost bodies must cross the wire,
// and in which canonical (sorted-cell) layout. Both the sender's pack
// loop and the receiver's unpack loop walk the same sorted slice, so no
// header metadata is ever shipped.
//
// Messages are keyed by (sender, receiver, tree level). Multipoles flow
// while ascending — a level-L mpole message depends only on up work at
// levels > L — and locals flow while descending — a level-L local
// message depends only on down work at levels < L — so the cross-node
// message graph is acyclic by induction on level. Ghost-body messages
// depend on nothing (positions are step inputs) and are graph roots.

type flowKey struct {
	from, to int
	level    int
}

type pairKey struct {
	from, to int
}

type exchangePlan struct {
	// owner[ni] is the owning node of tree cell ni (-1 for cells outside
	// every range, which only happens for empty cells).
	owner []int32
	// ownedCells[k] lists node k's cells in DFS (WalkVisible) order.
	ownedCells [][]int32

	// mpoleNeed[{j,k,L}]: level-L cells whose multipoles node k needs
	// from node j (remote children of owned parents + remote V-list
	// sources). localNeed[{j,k,L}]: level-L cells whose local expansions
	// node k needs from j (remote parents of owned cells). ghostNeed
	// [{j,k}]: remote U-list source leaves whose bodies k needs from j.
	// All slices sorted ascending and deduplicated.
	mpoleNeed map[flowKey][]int32
	localNeed map[flowKey][]int32
	ghostNeed map[pairKey][]int32

	// rows[k] lists the near-schedule CSR rows whose target leaf node k
	// owns.
	rows [][]int
}

// flowIDs enumerates every cross-node flow of the plan — the single
// construction that used to be copy-pasted three times as per-kind
// channel maps. The transport builds one frame endpoint per flow;
// mpole/local flows are keyed by tree level, ghost flows by node pair.
func (pl *exchangePlan) flowIDs() []flowID {
	ids := make([]flowID, 0, len(pl.mpoleNeed)+len(pl.localNeed)+len(pl.ghostNeed))
	for fk := range pl.mpoleNeed {
		ids = append(ids, flowID{kind: flowMpole, from: fk.from, to: fk.to, level: fk.level})
	}
	for fk := range pl.localNeed {
		ids = append(ids, flowID{kind: flowLocal, from: fk.from, to: fk.to, level: fk.level})
	}
	for pk := range pl.ghostNeed {
		ids = append(ids, flowID{kind: flowGhost, from: pk.from, to: pk.to})
	}
	return ids
}

func sortDedup(s []int32) []int32 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// buildPlan derives the step's exchange plan. ownerOf maps a body index
// to its owning node under the current cuts; p is the node count. Empty
// cells never appear in need sets (both sides leave their slabs zeroed,
// exactly like the single-node solver).
func buildPlan(t *octree.Tree, sch *octree.NearSchedule, ownerOf func(int32) int32, p int) *exchangePlan {
	pl := &exchangePlan{
		owner:      make([]int32, len(t.Nodes)),
		ownedCells: make([][]int32, p),
		mpoleNeed:  make(map[flowKey][]int32),
		localNeed:  make(map[flowKey][]int32),
		ghostNeed:  make(map[pairKey][]int32),
		rows:       make([][]int, p),
	}
	for i := range pl.owner {
		pl.owner[i] = -1
	}
	t.WalkVisible(func(ni int32) {
		k := ownerOf(t.Nodes[ni].Start)
		pl.owner[ni] = k
		pl.ownedCells[k] = append(pl.ownedCells[k], ni)
	})

	// Expansion flows. A cell's owner computes its mpole and local; the
	// dependencies that cross an ownership boundary become need entries.
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		k := int(pl.owner[ni])
		if !n.IsVisibleLeaf() {
			for _, ci := range n.Children {
				if ci == octree.NilNode || t.Nodes[ci].Count() == 0 {
					continue
				}
				if j := int(pl.owner[ci]); j != k {
					fk := flowKey{from: j, to: k, level: int(t.Nodes[ci].Level)}
					pl.mpoleNeed[fk] = append(pl.mpoleNeed[fk], ci)
				}
			}
		}
		for _, vi := range n.V {
			if j := int(pl.owner[vi]); j != k {
				fk := flowKey{from: j, to: k, level: int(t.Nodes[vi].Level)}
				pl.mpoleNeed[fk] = append(pl.mpoleNeed[fk], vi)
			}
		}
		if pi := n.Parent; pi != octree.NilNode && t.Nodes[pi].Count() > 0 {
			if j := int(pl.owner[pi]); j != k {
				fk := flowKey{from: j, to: k, level: int(t.Nodes[pi].Level)}
				pl.localNeed[fk] = append(pl.localNeed[fk], pi)
			}
		}
	})

	// Ghost-body flows from the near-field schedule: each CSR row belongs
	// to its target leaf's owner; remote source leaves become ghost needs.
	for r := 0; r < sch.Rows(); r++ {
		k := int(pl.owner[sch.Leaves[r]])
		pl.rows[k] = append(pl.rows[k], r)
		for s := sch.RowPtr[r]; s < sch.RowPtr[r+1]; s++ {
			si := sch.Srcs[s]
			if j := int(pl.owner[si]); j != k {
				pk := pairKey{from: j, to: k}
				pl.ghostNeed[pk] = append(pl.ghostNeed[pk], si)
			}
		}
	}

	for fk, cells := range pl.mpoleNeed {
		pl.mpoleNeed[fk] = sortDedup(cells)
	}
	for fk, cells := range pl.localNeed {
		pl.localNeed[fk] = sortDedup(cells)
	}
	for pk, cells := range pl.ghostNeed {
		pl.ghostNeed[pk] = sortDedup(cells)
	}
	return pl
}
