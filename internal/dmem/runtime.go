package dmem

import (
	"sync"
	"sync/atomic"
	"time"

	"afmm/internal/fault"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// Runtime executes the partitioned tree: one goroutine per virtual
// cluster node, each running its locally essential tree through its own
// sched.Graph. Cross-node data (multipoles, locals, ghost bodies) moves
// as framed messages over the step's transport; each incoming message is
// a milestone node in the receiver's graph, so work that depends on
// remote data — remote-source P2P rows, V-list translations with remote
// sources — waits on exactly the arrival it needs while everything local
// proceeds. That is the halo-hiding schedule: the near field's local
// rows execute under the communication wait instead of after it.
//
// Deadlock freedom: each node's pool has (milestones + 2) worker slots
// and every graph node runs as ClassGeneral, so at most all milestones
// can block in transport receives while two slots always remain to drain
// compute; sends never block (transport.Send is asynchronous); receives
// are deadline-bounded with an always-available degradation path; and
// the cross-node message graph is acyclic by level (see plan.go).
// Progress then follows by induction over the global dependency DAG.
type Runtime struct {
	tree *octree.Tree
	sys  *particle.System
	eng  []nodeEngine
	net  NetworkSpec
	rec  *telemetry.Recorder

	// link layer: protocol knobs plus the (possibly empty) chaos
	// schedule and its verdict seed.
	link     LinkConfig
	linkSch  *fault.LinkSchedule
	linkSeed int64

	skipFar  bool
	skipNear bool
}

// NodeComm is one node's measured communication activity in a step.
type NodeComm struct {
	// BytesIn counts modeled payload bytes received (expansion
	// coefficients at 16 bytes/complex, ghost bodies at
	// NetworkSpec.BytesPerBody).
	BytesIn int64
	// MsgsIn counts aggregated messages received (one per sender/kind/
	// level flow).
	MsgsIn int64
	// WaitNs is wall time the node's milestones spent blocked in channel
	// receives — comm wait that overlapped local work, not serialized
	// after it.
	WaitNs int64
}

// ExecStats aggregates one executed distributed step.
type ExecStats struct {
	PerNode    []NodeComm
	TotalBytes int64
	TotalMsgs  int64
	// Net is the step's link-layer delivery activity (frames, retries,
	// checksum rejects, deadline degradations, per-link RTT).
	Net NetStats
}

// nodeCommAtomic is NodeComm with atomic fields (milestones run on
// multiple drainer goroutines within one node's pool).
type nodeCommAtomic struct {
	bytesIn atomic.Int64
	msgsIn  atomic.Int64
	waitNs  atomic.Int64
}

// Step executes one distributed solve over the current tree: builds the
// exchange plan for the given ownership, zeroes the accumulators, and
// runs every alive node's graph to completion over a per-step transport.
// step indexes the run's link-fault schedule. On return the shared
// particle accumulators hold the full (near + far) result, bit-identical
// to the single-node solver — under any link-fault schedule, within or
// beyond the retry budget. Dead nodes (alive[k] == false) must own no
// bodies under cuts — callers repartition before calling Step.
func (rt *Runtime) Step(ownerOf func(int32) int32, alive []bool, step int) *ExecStats {
	t := rt.tree
	t.BuildLists()
	sch := t.NearField()
	rt.sys.ResetAccumulators()

	p := len(rt.eng)
	pl := buildPlan(t, sch, ownerOf, p)
	for k := 0; k < p; k++ {
		if alive[k] {
			rt.eng[k].prepare(pl.owner, k)
		}
	}

	tp := newTransport(pl.flowIDs(), rt.link, rt.linkSch, rt.linkSeed, step)
	comm := make([]nodeCommAtomic, p)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		if !alive[k] {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rt.runNode(k, pl, sch, tp, &comm[k])
		}(k)
	}
	wg.Wait()
	tp.Close()

	es := &ExecStats{PerNode: make([]NodeComm, p), Net: tp.Stats()}
	for k := 0; k < p; k++ {
		nc := &es.PerNode[k]
		nc.BytesIn = comm[k].bytesIn.Load()
		nc.MsgsIn = comm[k].msgsIn.Load()
		nc.WaitNs = comm[k].waitNs.Load()
		es.TotalBytes += nc.BytesIn
		es.TotalMsgs += nc.MsgsIn
	}
	return es
}

// runNode builds and runs node k's step graph.
func (rt *Runtime) runNode(k int, pl *exchangePlan, sch *octree.NearSchedule, tp *transport, nc *nodeCommAtomic) {
	start := time.Now()
	t := rt.tree
	e := rt.eng[k]
	expLen := e.expLen()

	// Count incoming milestones to size the node's private pool.
	ms := 0
	if !rt.skipFar {
		for fk := range pl.mpoleNeed {
			if fk.to == k {
				ms++
			}
		}
		for fk := range pl.localNeed {
			if fk.to == k {
				ms++
			}
		}
	}
	if !rt.skipNear {
		for pk := range pl.ghostNeed {
			if pk.to == k {
				ms++
			}
		}
	}
	pool := sched.NewPool(ms + 2)
	g := pool.NewGraph()

	// recvExp blocks on the flow's delivery; on deadline expiry the
	// payload is recovered over the reliable re-request path, so the
	// slab load below always sees the sender's original bytes — the
	// missing-expansion recovery before the L2P join.
	recvExp := func(f flowID, cells []int32, load func(int32, []complex128)) {
		t0 := time.Now()
		pay, ok := tp.Recv(f)
		if !ok {
			pay = tp.Rerequest(f)
		}
		nc.waitNs.Add(int64(time.Since(t0)))
		data := pay.exp
		for i, ci := range cells {
			load(ci, data[i*expLen:(i+1)*expLen])
		}
		nc.bytesIn.Add(int64(len(data)) * 16)
		nc.msgsIn.Add(1)
	}

	// Arrival milestones, one per incoming flow; cellMpoleMS/cellLocalMS
	// resolve a remote cell to the milestone that delivers it (each cell
	// has one owner, so it arrives in exactly one flow).
	cellMpoleMS := map[int32]sched.NodeID{}
	cellLocalMS := map[int32]sched.NodeID{}
	ghostMS := map[int]sched.NodeID{}
	if !rt.skipFar {
		for fk, cells := range pl.mpoleNeed {
			if fk.to != k {
				continue
			}
			f, cs := flowID{kind: flowMpole, from: fk.from, to: fk.to, level: fk.level}, cells
			id := g.Node(sched.ClassGeneral, 0, int32(fk.from), func() {
				recvExp(f, cs, e.loadMpole)
			})
			for _, ci := range cs {
				cellMpoleMS[ci] = id
			}
		}
		for fk, cells := range pl.localNeed {
			if fk.to != k {
				continue
			}
			f, cs := flowID{kind: flowLocal, from: fk.from, to: fk.to, level: fk.level}, cells
			id := g.Node(sched.ClassGeneral, 0, int32(fk.from), func() {
				recvExp(f, cs, e.loadLocal)
			})
			for _, ci := range cs {
				cellLocalMS[ci] = id
			}
		}
	}
	if !rt.skipNear {
		for pk, cells := range pl.ghostNeed {
			if pk.to != k {
				continue
			}
			f, cs := flowID{kind: flowGhost, from: pk.from, to: pk.to}, cells
			var bytes int64
			for _, ci := range cs {
				bytes += int64(t.Nodes[ci].Count()) * int64(rt.net.BytesPerBody)
			}
			ghostMS[pk.from] = g.Node(sched.ClassGeneral, 0, int32(pk.from), func() {
				t0 := time.Now()
				pay, ok := tp.Recv(f)
				nc.waitNs.Add(int64(time.Since(t0)))
				data := pay.ghost
				if !ok {
					// Deadline expired: re-pack the ghost rows host-side from
					// the shared read-only particle arrays. The bytes are the
					// owner's bytes by construction (PR 5's row-atomic
					// fallback discipline), so the degradation costs time,
					// never values.
					data = make([]ghostLeaf, len(cs))
					for i, ci := range cs {
						data[i] = e.packGhost(ci)
					}
					tp.noteGhostDegrade()
				}
				for i, ci := range cs {
					e.loadGhost(ci, data[i])
				}
				nc.bytesIn.Add(bytes)
				nc.msgsIn.Add(1)
			})
		}
	}

	owned := pl.ownedCells[k]
	upID := map[int32]sched.NodeID{}
	downID := map[int32]sched.NodeID{}
	if !rt.skipFar {
		// Up tasks first (all created before edges: a parent precedes its
		// children in the DFS order but its up task depends on theirs).
		for _, ni := range owned {
			ni := ni
			upID[ni] = g.Node(sched.ClassGeneral, 1, ni, func() {
				w := e.getWS()
				e.upCell(w, ni)
				e.putWS(w)
			})
		}
		for _, ni := range owned {
			n := &t.Nodes[ni]
			if n.IsVisibleLeaf() {
				continue
			}
			for _, ci := range n.Children {
				if ci == octree.NilNode || t.Nodes[ci].Count() == 0 {
					continue
				}
				if pl.owner[ci] == int32(k) {
					g.Edge(upID[ci], upID[ni])
				} else {
					g.Edge(cellMpoleMS[ci], upID[ni])
				}
			}
		}
		// Multipole sends: one task per outgoing flow, after the cells'
		// up tasks.
		for fk, cells := range pl.mpoleNeed {
			if fk.from != k {
				continue
			}
			f, cs := flowID{kind: flowMpole, from: fk.from, to: fk.to, level: fk.level}, cells
			id := g.Node(sched.ClassGeneral, 2, int32(fk.to), func() {
				buf := make([]complex128, len(cs)*expLen)
				for i, ci := range cs {
					e.packMpole(ci, buf[i*expLen:(i+1)*expLen])
				}
				tp.Send(f, payload{exp: buf})
			})
			for _, ci := range cs {
				g.Edge(upID[ci], id)
			}
		}
		// Down tasks in DFS order: a cell's parent precedes it, so the
		// parent edge can be added inline.
		for _, ni := range owned {
			ni := ni
			n := &t.Nodes[ni]
			downID[ni] = g.Node(sched.ClassGeneral, 3, ni, func() {
				w := e.getWS()
				e.downCell(w, ni)
				e.putWS(w)
			})
			if pi := n.Parent; pi != octree.NilNode && t.Nodes[pi].Count() > 0 {
				if pl.owner[pi] == int32(k) {
					g.Edge(downID[pi], downID[ni])
				} else {
					g.Edge(cellLocalMS[pi], downID[ni])
				}
			}
			for _, vi := range n.V {
				if pl.owner[vi] == int32(k) {
					g.Edge(upID[vi], downID[ni])
				} else {
					g.Edge(cellMpoleMS[vi], downID[ni])
				}
			}
		}
		// Local sends, after the parents' down tasks.
		for fk, cells := range pl.localNeed {
			if fk.from != k {
				continue
			}
			f, cs := flowID{kind: flowLocal, from: fk.from, to: fk.to, level: fk.level}, cells
			id := g.Node(sched.ClassGeneral, 4, int32(fk.to), func() {
				buf := make([]complex128, len(cs)*expLen)
				for i, ci := range cs {
					e.packLocal(ci, buf[i*expLen:(i+1)*expLen])
				}
				tp.Send(f, payload{exp: buf})
			})
			for _, ci := range cs {
				g.Edge(downID[ci], id)
			}
		}
	}

	rowID := map[int32]sched.NodeID{}
	if !rt.skipNear {
		// Ghost sends are roots: body positions are step inputs.
		for pk, cells := range pl.ghostNeed {
			if pk.from != k {
				continue
			}
			f, cs := flowID{kind: flowGhost, from: pk.from, to: pk.to}, cells
			g.Node(sched.ClassGeneral, 5, int32(pk.to), func() {
				data := make([]ghostLeaf, len(cs))
				for i, ci := range cs {
					data[i] = e.packGhost(ci)
				}
				tp.Send(f, payload{ghost: data})
			})
		}
		// Near rows: local-source rows are roots (they execute under the
		// communication wait — the halo hiding); rows with remote sources
		// depend on the ghost milestone of each sending peer.
		for _, r := range pl.rows[k] {
			r := r
			id := g.Node(sched.ClassGeneral, 6, sch.Leaves[r], func() {
				e.nearRow(sch, r)
			})
			rowID[sch.Leaves[r]] = id
			for s := sch.RowPtr[r]; s < sch.RowPtr[r+1]; s++ {
				if j := pl.owner[sch.Srcs[s]]; j != int32(k) {
					g.Edge(ghostMS[int(j)], id)
				}
			}
		}
	}

	if !rt.skipFar {
		// L2P last per leaf: after the leaf's down task and its near row,
		// so the far-field addition lands after the P2P accumulations —
		// the single-node operation order, hence bit-identity.
		for _, ni := range owned {
			ni := ni
			if !t.Nodes[ni].IsVisibleLeaf() {
				continue
			}
			id := g.Node(sched.ClassGeneral, 7, ni, func() {
				w := e.getWS()
				e.leafL2P(w, ni)
				e.putWS(w)
			})
			g.Edge(downID[ni], id)
			if rid, ok := rowID[ni]; ok {
				g.Edge(rid, id)
			}
		}
	}

	if err := g.Run(); err != nil {
		panic(err) // the plan's flows are acyclic by construction
	}
	dur := time.Since(start)
	rt.rec.AddSpan(telemetry.SpanDmemNode, int32(k), start, dur)
	if w := nc.waitNs.Load(); w > 0 {
		rt.rec.AddSpan(telemetry.SpanDmemComm, int32(k), start, time.Duration(w))
	}
}
