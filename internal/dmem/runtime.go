package dmem

import (
	"sync"
	"sync/atomic"
	"time"

	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// Runtime executes the partitioned tree: one goroutine per virtual
// cluster node, each running its locally essential tree through its own
// sched.Graph. Cross-node data (multipoles, locals, ghost bodies) moves
// over buffered channels; each incoming message is a milestone node in
// the receiver's graph, so work that depends on remote data — remote-
// source P2P rows, V-list translations with remote sources — waits on
// exactly the arrival it needs while everything local proceeds. That is
// the halo-hiding schedule: the near field's local rows execute under
// the communication wait instead of after it.
//
// Deadlock freedom: each node's pool has (milestones + 2) worker slots
// and every graph node runs as ClassGeneral, so at most all milestones
// can block in channel receives while two slots always remain to drain
// compute; sends never block (one send per buffered-1 channel); and the
// cross-node message graph is acyclic by level (see plan.go). Progress
// then follows by induction over the global dependency DAG.
type Runtime struct {
	tree *octree.Tree
	sys  *particle.System
	eng  []nodeEngine
	net  NetworkSpec
	rec  *telemetry.Recorder

	skipFar  bool
	skipNear bool
}

// NodeComm is one node's measured communication activity in a step.
type NodeComm struct {
	// BytesIn counts modeled payload bytes received (expansion
	// coefficients at 16 bytes/complex, ghost bodies at
	// NetworkSpec.BytesPerBody).
	BytesIn int64
	// MsgsIn counts aggregated messages received (one per sender/kind/
	// level flow).
	MsgsIn int64
	// WaitNs is wall time the node's milestones spent blocked in channel
	// receives — comm wait that overlapped local work, not serialized
	// after it.
	WaitNs int64
}

// ExecStats aggregates one executed distributed step.
type ExecStats struct {
	PerNode    []NodeComm
	TotalBytes int64
	TotalMsgs  int64
}

// nodeCommAtomic is NodeComm with atomic fields (milestones run on
// multiple drainer goroutines within one node's pool).
type nodeCommAtomic struct {
	bytesIn atomic.Int64
	msgsIn  atomic.Int64
	waitNs  atomic.Int64
}

// Step executes one distributed solve over the current tree: builds the
// exchange plan for the given ownership, zeroes the accumulators, and
// runs every alive node's graph to completion. On return the shared
// particle accumulators hold the full (near + far) result, bit-identical
// to the single-node solver. Dead nodes (alive[k] == false) must own no
// bodies under cuts — callers repartition before calling Step.
func (rt *Runtime) Step(ownerOf func(int32) int32, alive []bool) *ExecStats {
	t := rt.tree
	t.BuildLists()
	sch := t.NearField()
	rt.sys.ResetAccumulators()

	p := len(rt.eng)
	pl := buildPlan(t, sch, ownerOf, p)
	for k := 0; k < p; k++ {
		if alive[k] {
			rt.eng[k].prepare(pl.owner, k)
		}
	}

	comm := make([]nodeCommAtomic, p)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		if !alive[k] {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rt.runNode(k, pl, sch, &comm[k])
		}(k)
	}
	wg.Wait()

	es := &ExecStats{PerNode: make([]NodeComm, p)}
	for k := 0; k < p; k++ {
		nc := &es.PerNode[k]
		nc.BytesIn = comm[k].bytesIn.Load()
		nc.MsgsIn = comm[k].msgsIn.Load()
		nc.WaitNs = comm[k].waitNs.Load()
		es.TotalBytes += nc.BytesIn
		es.TotalMsgs += nc.MsgsIn
	}
	return es
}

// runNode builds and runs node k's step graph.
func (rt *Runtime) runNode(k int, pl *exchangePlan, sch *octree.NearSchedule, nc *nodeCommAtomic) {
	start := time.Now()
	t := rt.tree
	e := rt.eng[k]
	expLen := e.expLen()

	// Count incoming milestones to size the node's private pool.
	ms := 0
	if !rt.skipFar {
		for fk := range pl.mpoleNeed {
			if fk.to == k {
				ms++
			}
		}
		for fk := range pl.localNeed {
			if fk.to == k {
				ms++
			}
		}
	}
	if !rt.skipNear {
		for pk := range pl.ghostNeed {
			if pk.to == k {
				ms++
			}
		}
	}
	pool := sched.NewPool(ms + 2)
	g := pool.NewGraph()

	recvExp := func(ch chan []complex128, cells []int32, load func(int32, []complex128)) {
		t0 := time.Now()
		data := <-ch
		nc.waitNs.Add(int64(time.Since(t0)))
		for i, ci := range cells {
			load(ci, data[i*expLen:(i+1)*expLen])
		}
		nc.bytesIn.Add(int64(len(data)) * 16)
		nc.msgsIn.Add(1)
	}

	// Arrival milestones, one per incoming flow; cellMpoleMS/cellLocalMS
	// resolve a remote cell to the milestone that delivers it (each cell
	// has one owner, so it arrives in exactly one flow).
	cellMpoleMS := map[int32]sched.NodeID{}
	cellLocalMS := map[int32]sched.NodeID{}
	ghostMS := map[int]sched.NodeID{}
	if !rt.skipFar {
		for fk, cells := range pl.mpoleNeed {
			if fk.to != k {
				continue
			}
			ch, cs := pl.mpoleCh[fk], cells
			id := g.Node(sched.ClassGeneral, 0, int32(fk.from), func() {
				recvExp(ch, cs, e.loadMpole)
			})
			for _, ci := range cs {
				cellMpoleMS[ci] = id
			}
		}
		for fk, cells := range pl.localNeed {
			if fk.to != k {
				continue
			}
			ch, cs := pl.localCh[fk], cells
			id := g.Node(sched.ClassGeneral, 0, int32(fk.from), func() {
				recvExp(ch, cs, e.loadLocal)
			})
			for _, ci := range cs {
				cellLocalMS[ci] = id
			}
		}
	}
	if !rt.skipNear {
		for pk, cells := range pl.ghostNeed {
			if pk.to != k {
				continue
			}
			ch, cs := pl.ghostCh[pk], cells
			var bytes int64
			for _, ci := range cs {
				bytes += int64(t.Nodes[ci].Count()) * int64(rt.net.BytesPerBody)
			}
			ghostMS[pk.from] = g.Node(sched.ClassGeneral, 0, int32(pk.from), func() {
				t0 := time.Now()
				data := <-ch
				nc.waitNs.Add(int64(time.Since(t0)))
				for i, ci := range cs {
					e.loadGhost(ci, data[i])
				}
				nc.bytesIn.Add(bytes)
				nc.msgsIn.Add(1)
			})
		}
	}

	owned := pl.ownedCells[k]
	upID := map[int32]sched.NodeID{}
	downID := map[int32]sched.NodeID{}
	if !rt.skipFar {
		// Up tasks first (all created before edges: a parent precedes its
		// children in the DFS order but its up task depends on theirs).
		for _, ni := range owned {
			ni := ni
			upID[ni] = g.Node(sched.ClassGeneral, 1, ni, func() {
				w := e.getWS()
				e.upCell(w, ni)
				e.putWS(w)
			})
		}
		for _, ni := range owned {
			n := &t.Nodes[ni]
			if n.IsVisibleLeaf() {
				continue
			}
			for _, ci := range n.Children {
				if ci == octree.NilNode || t.Nodes[ci].Count() == 0 {
					continue
				}
				if pl.owner[ci] == int32(k) {
					g.Edge(upID[ci], upID[ni])
				} else {
					g.Edge(cellMpoleMS[ci], upID[ni])
				}
			}
		}
		// Multipole sends: one task per outgoing flow, after the cells'
		// up tasks.
		for fk, cells := range pl.mpoleNeed {
			if fk.from != k {
				continue
			}
			ch, cs := pl.mpoleCh[fk], cells
			id := g.Node(sched.ClassGeneral, 2, int32(fk.to), func() {
				buf := make([]complex128, len(cs)*expLen)
				for i, ci := range cs {
					e.packMpole(ci, buf[i*expLen:(i+1)*expLen])
				}
				ch <- buf
			})
			for _, ci := range cs {
				g.Edge(upID[ci], id)
			}
		}
		// Down tasks in DFS order: a cell's parent precedes it, so the
		// parent edge can be added inline.
		for _, ni := range owned {
			ni := ni
			n := &t.Nodes[ni]
			downID[ni] = g.Node(sched.ClassGeneral, 3, ni, func() {
				w := e.getWS()
				e.downCell(w, ni)
				e.putWS(w)
			})
			if pi := n.Parent; pi != octree.NilNode && t.Nodes[pi].Count() > 0 {
				if pl.owner[pi] == int32(k) {
					g.Edge(downID[pi], downID[ni])
				} else {
					g.Edge(cellLocalMS[pi], downID[ni])
				}
			}
			for _, vi := range n.V {
				if pl.owner[vi] == int32(k) {
					g.Edge(upID[vi], downID[ni])
				} else {
					g.Edge(cellMpoleMS[vi], downID[ni])
				}
			}
		}
		// Local sends, after the parents' down tasks.
		for fk, cells := range pl.localNeed {
			if fk.from != k {
				continue
			}
			ch, cs := pl.localCh[fk], cells
			id := g.Node(sched.ClassGeneral, 4, int32(fk.to), func() {
				buf := make([]complex128, len(cs)*expLen)
				for i, ci := range cs {
					e.packLocal(ci, buf[i*expLen:(i+1)*expLen])
				}
				ch <- buf
			})
			for _, ci := range cs {
				g.Edge(downID[ci], id)
			}
		}
	}

	rowID := map[int32]sched.NodeID{}
	if !rt.skipNear {
		// Ghost sends are roots: body positions are step inputs.
		for pk, cells := range pl.ghostNeed {
			if pk.from != k {
				continue
			}
			ch, cs := pl.ghostCh[pk], cells
			g.Node(sched.ClassGeneral, 5, int32(pk.to), func() {
				data := make([]ghostLeaf, len(cs))
				for i, ci := range cs {
					data[i] = e.packGhost(ci)
				}
				ch <- data
			})
		}
		// Near rows: local-source rows are roots (they execute under the
		// communication wait — the halo hiding); rows with remote sources
		// depend on the ghost milestone of each sending peer.
		for _, r := range pl.rows[k] {
			r := r
			id := g.Node(sched.ClassGeneral, 6, sch.Leaves[r], func() {
				e.nearRow(sch, r)
			})
			rowID[sch.Leaves[r]] = id
			for s := sch.RowPtr[r]; s < sch.RowPtr[r+1]; s++ {
				if j := pl.owner[sch.Srcs[s]]; j != int32(k) {
					g.Edge(ghostMS[int(j)], id)
				}
			}
		}
	}

	if !rt.skipFar {
		// L2P last per leaf: after the leaf's down task and its near row,
		// so the far-field addition lands after the P2P accumulations —
		// the single-node operation order, hence bit-identity.
		for _, ni := range owned {
			ni := ni
			if !t.Nodes[ni].IsVisibleLeaf() {
				continue
			}
			id := g.Node(sched.ClassGeneral, 7, ni, func() {
				w := e.getWS()
				e.leafL2P(w, ni)
				e.putWS(w)
			})
			g.Edge(downID[ni], id)
			if rid, ok := rowID[ni]; ok {
				g.Edge(rid, id)
			}
		}
	}

	if err := g.Run(); err != nil {
		panic(err) // the plan's flows are acyclic by construction
	}
	dur := time.Since(start)
	rt.rec.AddSpan(telemetry.SpanDmemNode, int32(k), start, dur)
	if w := nc.waitNs.Load(); w > 0 {
		rt.rec.AddSpan(telemetry.SpanDmemComm, int32(k), start, time.Duration(w))
	}
}
