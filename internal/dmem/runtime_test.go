package dmem

import (
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/stokes"
	"afmm/internal/vcpu"
)

// execCoreConfig keeps both sides of a cross-mode comparison on the one
// code path the engines replicate: plain float64 near field, direct
// M2LBatch (no translation-class table), CPU execution.
func execCoreConfig() core.Config {
	return core.Config{P: 5, S: 32, DisableM2LTable: true}
}

func execClusterConfig(nodes int) Config {
	return Config{
		Core:    execCoreConfig(),
		Nodes:   HomogeneousNodes(nodes, NodeSpec{CPU: vcpu.Spec{Cores: 4}.Normalized()}),
		Execute: true,
	}
}

// TestExecuteBitIdenticalGravity runs the distributed runtime and an
// identically configured single-node solver on twin systems and demands
// exact (==) agreement of every accumulator.
func TestExecuteBitIdenticalGravity(t *testing.T) {
	const n = 1500
	sysD := distrib.Plummer(n, 1.0, 1.0, 7)
	sysS := distrib.Plummer(n, 1.0, 1.0, 7)

	single := core.NewSolver(sysS, execCoreConfig())
	single.Solve()

	d, err := NewSolver(sysD, execClusterConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Solve()
	if !rep.Executed {
		t.Fatal("expected an executed step")
	}
	if rep.TotalBytes == 0 || rep.TotalMsgs == 0 {
		t.Fatalf("expected cross-node traffic, got bytes=%d msgs=%d",
			rep.TotalBytes, rep.TotalMsgs)
	}
	for i := 0; i < n; i++ {
		if sysD.Phi[i] != sysS.Phi[i] {
			t.Fatalf("phi[%d]: distributed %v != single %v", i, sysD.Phi[i], sysS.Phi[i])
		}
		if sysD.Acc[i] != sysS.Acc[i] {
			t.Fatalf("acc[%d]: distributed %v != single %v", i, sysD.Acc[i], sysS.Acc[i])
		}
	}
}

// TestExecuteBitIdenticalUnderNodeLoss drives a multi-step run with an
// injected fail-stop and checks the trajectory stays exactly the
// single-node trajectory: the survivors execute every lost range.
func TestExecuteBitIdenticalUnderNodeLoss(t *testing.T) {
	const (
		n     = 1200
		steps = 5
		dt    = 5e-4
	)
	sysD := distrib.Plummer(n, 1.0, 1.0, 11)
	sysS := distrib.Plummer(n, 1.0, 1.0, 11)

	events, err := fault.ParseNodeEvents("node2:failstop@step2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := execClusterConfig(4)
	cfg.NodeFaults = events
	d, err := NewSolver(sysD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := d.RunWith(RunConfig{Steps: steps, Dt: dt})
	if res.NodeLosses != 1 {
		t.Fatalf("expected 1 node loss, got %d", res.NodeLosses)
	}
	if res.RecoveryTime <= 0 {
		t.Fatal("node loss must charge recovery time")
	}
	if got := d.Alive(); got[2] {
		t.Fatal("node 2 should be dead")
	}
	if d.CapacityEpoch() != 1 {
		t.Fatalf("capacity epoch = %d, want 1", d.CapacityEpoch())
	}

	single := core.NewSolver(sysS, execCoreConfig())
	for step := 0; step < steps; step++ {
		single.Solve()
		for i := range sysS.Pos {
			sysS.Vel[i] = sysS.Vel[i].Add(sysS.Acc[i].Scale(dt))
			sysS.Pos[i] = sysS.Pos[i].Add(sysS.Vel[i].Scale(dt))
		}
		single.Refill()
	}
	for i := 0; i < n; i++ {
		if sysD.Pos[i] != sysS.Pos[i] {
			t.Fatalf("pos[%d]: distributed %v != single %v", i, sysD.Pos[i], sysS.Pos[i])
		}
		if sysD.Vel[i] != sysS.Vel[i] {
			t.Fatalf("vel[%d]: distributed %v != single %v", i, sysD.Vel[i], sysS.Vel[i])
		}
		if sysD.Phi[i] != sysS.Phi[i] {
			t.Fatalf("phi[%d]: distributed %v != single %v", i, sysD.Phi[i], sysS.Phi[i])
		}
	}
}

// TestExecuteRejectsFloat32NearField: the engines implement only the
// plain float64 near path.
func TestExecuteRejectsFloat32NearField(t *testing.T) {
	sys := distrib.Plummer(200, 1.0, 1.0, 3)
	cfg := execClusterConfig(2)
	cfg.Core.NearFloat32 = true
	if _, err := NewSolver(sys, cfg); err == nil {
		t.Fatal("Execute with NearFloat32 must be rejected")
	}
}

func stokesTwin(n int, seed int64) *stokes.Solver {
	sys := distrib.Plummer(n, 1.0, 1.0, seed)
	// Deterministic driving forces derived from the (identically
	// permuted) positions.
	for i := range sys.Aux {
		p := sys.Pos[i]
		sys.Aux[i].X = 0.3 * p.Y
		sys.Aux[i].Y = -0.2 * p.Z
		sys.Aux[i].Z = 0.1 * p.X
	}
	return stokes.NewSolver(sys, stokes.Config{P: 4, S: 32, DisableM2LTable: true})
}

// TestStokesClusterBitIdentical checks the distributed Stokes execution
// (with and without a failed node) against the single-node solver.
func TestStokesClusterBitIdentical(t *testing.T) {
	const n = 900
	svS := stokesTwin(n, 19)
	svD := stokesTwin(n, 19)

	svS.Solve()
	cl, err := NewStokesCluster(svD, 3, DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	es := cl.Solve()
	if es.TotalBytes == 0 {
		t.Fatal("expected cross-node traffic")
	}
	for i := 0; i < n; i++ {
		if svD.Sys.Acc[i] != svS.Sys.Acc[i] {
			t.Fatalf("vel[%d]: distributed %v != single %v", i, svD.Sys.Acc[i], svS.Sys.Acc[i])
		}
	}

	// Fail a node and solve again: the survivors must reproduce the
	// single-node result exactly.
	cl.Fail(1)
	svS.Solve()
	cl.Solve()
	for i := 0; i < n; i++ {
		if svD.Sys.Acc[i] != svS.Sys.Acc[i] {
			t.Fatalf("post-loss vel[%d]: distributed %v != single %v", i, svD.Sys.Acc[i], svS.Sys.Acc[i])
		}
	}
}
