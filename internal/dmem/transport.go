package dmem

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"afmm/internal/fault"
	"afmm/internal/geom"
)

// The transport is the link layer between the exchange plan and the
// node goroutines. Every cross-node payload — a multipole batch, a
// local batch, a ghost-leaf batch — travels as a framed message carrying
// its flow identity, a sequence (attempt) number, and an FNV-1a checksum
// over the payload's float bits. The default path delivers frames over
// the same in-process handoff the buffered channels used to provide; the
// chaos path consults a deterministic, seedable fault.LinkSchedule per
// transmission and runs the delivery protocol the reliable channels made
// unnecessary: receiver-side checksum verify + dedup, ack + bounded
// retransmit with exponential backoff, nack-triggered re-send for
// corrupt frames, and per-phase deadline budgets.
//
// Bit-identity under chaos holds because a flow's payload is loaded into
// the engine slabs exactly once, and every byte that can be loaded is
// the sender's original: duplicate frames are dropped by the dedup
// guard, corrupt frames fail checksum and are never loaded (corruption
// mutates a private copy, so retransmissions carry the original), and
// the two degradation paths — host-side ghost re-pack and the reliable
// Rerequest — reproduce the original payload by construction. Faults
// cost time, never values.
//
// Fault verdicts come from fault.Hash01 over (seed, link, step, flow,
// attempt), never from shared RNG state or the clock, so a chaotic run
// is exactly reproducible regardless of goroutine interleaving.

// flowKind distinguishes the three payload classes of the exchange plan.
type flowKind uint8

const (
	flowMpole flowKind = iota
	flowLocal
	flowGhost
)

// flowID names one cross-node flow of the step: the transport's frame
// address. Mpole/local flows are keyed by tree level (matching the
// plan's flowKey); ghost flows carry level 0 (matching pairKey).
type flowID struct {
	kind     flowKind
	from, to int
	level    int
}

// payload is the frame body: exactly one of the two slices is set,
// matching the flow's kind.
type payload struct {
	exp   []complex128
	ghost []ghostLeaf
}

// LinkConfig tunes the delivery protocol. The zero value selects
// defaults chosen so that any within-budget fault schedule recovers by
// retransmission long before a deadline, while a hard-failed link
// (drop 1.0) degrades in bounded time.
type LinkConfig struct {
	// RetransmitTimeout is the initial ack wait before the first
	// retransmission; each further attempt doubles it (exponential
	// backoff). 0 selects 2ms.
	RetransmitTimeout time.Duration
	// MaxRetries bounds retransmissions per frame (first transmission
	// excluded). 0 selects 8; negative disables retransmission.
	MaxRetries int
	// NearDeadline is the Recv budget for ghost flows; on expiry the
	// receiver re-packs the bodies host-side. 0 selects 10s.
	NearDeadline time.Duration
	// FarDeadline is the Recv budget for expansion flows; on expiry the
	// receiver recovers the payload over the reliable re-request path.
	// 0 selects 10s.
	FarDeadline time.Duration
	// HeartbeatInterval paces the failure detector's per-node
	// heartbeats. 0 selects 1ms.
	HeartbeatInterval time.Duration
	// SuspectAfter is the number of heartbeat intervals of silence after
	// which the detector declares a node dead. 0 selects 25.
	SuspectAfter int
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = 2 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.NearDeadline <= 0 {
		c.NearDeadline = 10 * time.Second
	}
	if c.FarDeadline <= 0 {
		c.FarDeadline = 10 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 25
	}
	return c
}

// NetStats aggregates the link layer's delivery-protocol activity for
// one executed step (or a whole run, summed by the solver).
type NetStats struct {
	// FramesSent counts transmissions that reached the wire, including
	// retransmissions and chaos-injected duplicates.
	FramesSent int64
	// FramesDelivered counts verified first deliveries (one per flow).
	FramesDelivered int64
	// FramesDropped counts transmissions lost to the link-fault schedule.
	FramesDropped int64
	// DupFrames counts duplicate deliveries discarded by the receiver.
	DupFrames int64
	// CorruptRejects counts frames rejected by the payload checksum.
	CorruptRejects int64
	// Retries counts retransmissions (ack timeout or nack).
	Retries int64
	// Nacks counts checksum-reject re-request signals that reached the
	// sender.
	Nacks int64
	// AcksDropped counts acknowledgements lost to the fault schedule.
	AcksDropped int64
	// Timeouts counts Recv deadline expiries (degradation entries).
	Timeouts int64
	// Rerequests counts expansion payloads recovered over the reliable
	// re-request path after a deadline expiry.
	Rerequests int64
	// DegradedGhostFlows counts ghost flows re-packed host-side after a
	// deadline expiry.
	DegradedGhostFlows int64
	// PerLink breaks frames/retries/RTT down by directed link.
	PerLink []LinkStat
}

// LinkStat is one directed link's delivery activity.
type LinkStat struct {
	From, To int
	Frames   int64
	Retries  int64
	// RTTNs is the mean observed send->ack round trip, nanoseconds
	// (0 when no ack was observed).
	RTTNs int64
	// RTTCount is the number of acked round trips observed.
	RTTCount int64
}

// add folds another step's stats into the receiver (PerLink merged by
// link).
func (s *NetStats) add(o *NetStats) {
	if o == nil {
		return
	}
	s.FramesSent += o.FramesSent
	s.FramesDelivered += o.FramesDelivered
	s.FramesDropped += o.FramesDropped
	s.DupFrames += o.DupFrames
	s.CorruptRejects += o.CorruptRejects
	s.Retries += o.Retries
	s.Nacks += o.Nacks
	s.AcksDropped += o.AcksDropped
	s.Timeouts += o.Timeouts
	s.Rerequests += o.Rerequests
	s.DegradedGhostFlows += o.DegradedGhostFlows
	for _, ls := range o.PerLink {
		merged := false
		for i := range s.PerLink {
			if s.PerLink[i].From == ls.From && s.PerLink[i].To == ls.To {
				tot := s.PerLink[i].RTTCount + ls.RTTCount
				if tot > 0 {
					s.PerLink[i].RTTNs = (s.PerLink[i].RTTNs*s.PerLink[i].RTTCount +
						ls.RTTNs*ls.RTTCount) / tot
				}
				s.PerLink[i].Frames += ls.Frames
				s.PerLink[i].Retries += ls.Retries
				s.PerLink[i].RTTCount = tot
				merged = true
				break
			}
		}
		if !merged {
			s.PerLink = append(s.PerLink, ls)
		}
	}
}

// netCounters is NetStats with atomic fields (senders, couriers and
// receivers update concurrently).
type netCounters struct {
	sent, delivered, dropped, dup atomic.Int64
	corrupt, retries, nacks       atomic.Int64
	acksDropped, timeouts         atomic.Int64
	rerequests, degradedGhost     atomic.Int64
}

// linkCounters is LinkStat with atomic fields.
type linkCounters struct {
	frames, retries    atomic.Int64
	rttSumNs, rttCount atomic.Int64
}

// flowState is one flow's endpoint pair. The sender side stores the
// original payload (immutable after Send) for retransmission and the
// reliable re-request path; the receiver side holds the dedup guard and
// the delivered payload.
type flowState struct {
	id  flowID
	sum uint64

	// sent closes once Send stored the payload; Rerequest waits on it.
	sent  chan struct{}
	pay   payload
	payNs int64 // unixnano of the last transmission (RTT base)

	// ackCh closes when a verified delivery's ack survives the reverse
	// link; the sender stops retransmitting. nackCh wakes the sender for
	// an immediate re-send after a checksum reject.
	ackCh   chan struct{}
	ackOnce sync.Once
	nackCh  chan struct{}

	// delivered closes on the first verified delivery.
	delivered   chan struct{}
	deliverOnce sync.Once
	recvPay     payload
}

// transport carries every flow of one executed step. A fault-free
// schedule takes the synchronous fast path (frame + verify, no protocol
// goroutines); a faulty schedule runs the full delivery protocol.
type transport struct {
	cfg   LinkConfig
	sch   *fault.LinkSchedule
	seed  int64
	step  int
	chaos bool

	flows map[flowID]*flowState
	links map[pairKey]*linkCounters
	nc    netCounters

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// newTransport builds the step's transport over the plan's flows.
func newTransport(flows []flowID, cfg LinkConfig, sch *fault.LinkSchedule, seed int64, step int) *transport {
	tp := &transport{
		cfg:   cfg.withDefaults(),
		sch:   sch,
		seed:  seed,
		step:  step,
		chaos: sch.Faulty(),
		flows: make(map[flowID]*flowState, len(flows)),
		links: make(map[pairKey]*linkCounters),
		done:  make(chan struct{}),
	}
	for _, f := range flows {
		tp.flows[f] = &flowState{
			id:        f,
			sent:      make(chan struct{}),
			ackCh:     make(chan struct{}),
			nackCh:    make(chan struct{}, 1),
			delivered: make(chan struct{}),
		}
		pk := pairKey{from: f.from, to: f.to}
		if tp.links[pk] == nil {
			tp.links[pk] = &linkCounters{}
		}
	}
	return tp
}

// Close tears the transport down: in-flight senders and couriers exit at
// their next select. Callers invoke it after every node graph completed,
// so all deliveries are settled.
func (tp *transport) Close() {
	tp.closeOnce.Do(func() { close(tp.done) })
	tp.wg.Wait()
}

// Stats snapshots the step's delivery activity.
func (tp *transport) Stats() NetStats {
	s := NetStats{
		FramesSent:         tp.nc.sent.Load(),
		FramesDelivered:    tp.nc.delivered.Load(),
		FramesDropped:      tp.nc.dropped.Load(),
		DupFrames:          tp.nc.dup.Load(),
		CorruptRejects:     tp.nc.corrupt.Load(),
		Retries:            tp.nc.retries.Load(),
		Nacks:              tp.nc.nacks.Load(),
		AcksDropped:        tp.nc.acksDropped.Load(),
		Timeouts:           tp.nc.timeouts.Load(),
		Rerequests:         tp.nc.rerequests.Load(),
		DegradedGhostFlows: tp.nc.degradedGhost.Load(),
	}
	for pk, lc := range tp.links {
		ls := LinkStat{
			From: pk.from, To: pk.to,
			Frames:   lc.frames.Load(),
			Retries:  lc.retries.Load(),
			RTTCount: lc.rttCount.Load(),
		}
		if ls.RTTCount > 0 {
			ls.RTTNs = lc.rttSumNs.Load() / ls.RTTCount
		}
		if ls.Frames > 0 {
			s.PerLink = append(s.PerLink, ls)
		}
	}
	return s
}

// flowHash folds a flow's identity into the verdict hash key.
func flowHash(f flowID) int64 {
	return int64(f.kind) | int64(f.from)<<8 | int64(f.to)<<24 | int64(f.level)<<40
}

// Verdict salts keep the per-frame draws for independent decisions
// independent.
const (
	saltDrop = iota + 1
	saltDup
	saltReorder
	saltCorrupt
	saltCorruptBit
	saltAck
)

func (tp *transport) verdict(salt int, f flowID, attempt int64) float64 {
	return fault.Hash01(tp.seed, int64(salt), flowHash(f), int64(tp.step), attempt)
}

// Send transmits the flow's payload. It never blocks the graph's send
// task: the fault-free path delivers synchronously (a few stores and a
// channel close); the chaos path hands the frame to a sender goroutine
// that runs the retransmission protocol.
func (tp *transport) Send(f flowID, p payload) {
	fs := tp.flows[f]
	fs.pay = p
	fs.sum = payloadSum(p)
	close(fs.sent)
	if !tp.chaos {
		// Default link layer: framed, checksummed, delivered in order over
		// the same in-process handoff the buffered channels provided.
		tp.nc.sent.Add(1)
		tp.links[pairKey{from: f.from, to: f.to}].frames.Add(1)
		tp.accept(fs, frame{flow: f, seq: 0, sum: fs.sum, pay: p})
		return
	}
	tp.wg.Add(1)
	go tp.sender(fs)
}

// frame is one transmission on the wire.
type frame struct {
	flow flowID
	seq  int64 // attempt number
	sum  uint64
	pay  payload
}

// sender runs one flow's delivery protocol: transmit, wait for the ack
// with exponential backoff, retransmit on timeout or nack, give up after
// MaxRetries (the receiver's deadline degradation then recovers).
func (tp *transport) sender(fs *flowState) {
	defer tp.wg.Done()
	backoff := tp.cfg.RetransmitTimeout
	for attempt := int64(0); attempt <= int64(tp.cfg.MaxRetries); attempt++ {
		if attempt > 0 {
			tp.nc.retries.Add(1)
			tp.links[pairKey{from: fs.id.from, to: fs.id.to}].retries.Add(1)
		}
		tp.transmit(fs, attempt)
		timer := time.NewTimer(backoff)
		select {
		case <-fs.ackCh:
			timer.Stop()
			return
		case <-fs.nackCh:
			timer.Stop()
			// Checksum reject: re-request means an immediate re-send.
		case <-timer.C:
		case <-tp.done:
			timer.Stop()
			return
		}
		backoff *= 2
	}
	// Retry budget exhausted: the receiver's deadline path takes over.
}

// transmit puts one frame (and possibly a duplicate) on the wire,
// consulting the link-fault schedule for drop/delay/reorder/corrupt
// verdicts.
func (tp *transport) transmit(fs *flowState, attempt int64) {
	f := fs.id
	st := tp.sch.State(f.from, f.to, tp.step)
	atomic.StoreInt64(&fs.payNs, time.Now().UnixNano())

	copies := 1
	if st.Dup > 0 && tp.verdict(saltDup, f, attempt) < st.Dup {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		tp.nc.sent.Add(1)
		tp.links[pairKey{from: f.from, to: f.to}].frames.Add(1)
		if c > 0 {
			tp.nc.dup.Add(1)
		}
		if st.Drop > 0 && tp.verdict(saltDrop, f, attempt*2+int64(c)) < st.Drop {
			tp.nc.dropped.Add(1)
			continue
		}
		fr := frame{flow: f, seq: attempt, sum: fs.sum, pay: fs.pay}
		if st.Corrupt > 0 && tp.verdict(saltCorrupt, f, attempt*2+int64(c)) < st.Corrupt {
			// Flip one bit in a private copy: the original stays intact for
			// retransmission, and the stale checksum guarantees rejection.
			fr.pay = corruptCopy(fr.pay, tp.verdict(saltCorruptBit, f, attempt))
		}
		delay := time.Duration(st.Delay * float64(time.Second))
		if st.Reorder > 0 && tp.verdict(saltReorder, f, attempt*2+int64(c)) < st.Reorder {
			// Deterministic jitter below the retransmit timeout: enough to
			// let frames overtake each other, not enough to look lost.
			delay += time.Duration(tp.verdict(saltReorder, f, attempt*2+int64(c)+1<<20) *
				float64(tp.cfg.RetransmitTimeout) / 4)
		}
		if delay <= 0 {
			tp.accept(tp.flows[f], fr)
			continue
		}
		tp.wg.Add(1)
		go func(fr frame, d time.Duration) {
			defer tp.wg.Done()
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
				tp.accept(tp.flows[fr.flow], fr)
			case <-tp.done:
				timer.Stop()
			}
		}(fr, delay)
	}
}

// accept is the receiver side: verify the checksum, dedup, deliver once,
// acknowledge (the ack itself crosses the reverse link and is subject to
// its drop rate).
func (tp *transport) accept(fs *flowState, fr frame) {
	if payloadSum(fr.pay) != fr.sum {
		tp.nc.corrupt.Add(1)
		// Re-request: signal the sender to re-send without waiting out the
		// backoff. The nack crosses the reverse link.
		if !tp.reverseDropped(fs.id, fr.seq) {
			tp.nc.nacks.Add(1)
			select {
			case fs.nackCh <- struct{}{}:
			default:
			}
		}
		return
	}
	first := false
	fs.deliverOnce.Do(func() {
		first = true
		fs.recvPay = fr.pay
		tp.nc.delivered.Add(1)
		close(fs.delivered)
	})
	if !first {
		tp.nc.dup.Add(1)
	}
	// Ack every verified copy: if the first ack is lost, a retransmission
	// earns another, so the sender eventually stops.
	if tp.reverseDropped(fs.id, fr.seq+1<<30) {
		tp.nc.acksDropped.Add(1)
		return
	}
	if rtt := time.Now().UnixNano() - atomic.LoadInt64(&fs.payNs); rtt >= 0 {
		lc := tp.links[pairKey{from: fs.id.from, to: fs.id.to}]
		lc.rttSumNs.Add(rtt)
		lc.rttCount.Add(1)
	}
	fs.ackOnce.Do(func() { close(fs.ackCh) })
}

// reverseDropped draws the reverse-link (receiver -> sender) drop
// verdict for an ack or nack.
func (tp *transport) reverseDropped(f flowID, key int64) bool {
	if !tp.chaos {
		return false
	}
	st := tp.sch.State(f.to, f.from, tp.step)
	return st.Drop > 0 && tp.verdict(saltAck, f, key) < st.Drop
}

// Recv blocks until the flow's verified payload is delivered or the
// phase deadline expires. ok == false means the deadline passed: the
// caller must take the flow's degradation path (host-side ghost re-pack
// or Rerequest), which reproduces the payload exactly.
func (tp *transport) Recv(f flowID) (payload, bool) {
	fs := tp.flows[f]
	deadline := tp.cfg.FarDeadline
	if f.kind == flowGhost {
		deadline = tp.cfg.NearDeadline
	}
	if !tp.chaos {
		// Fault-free: delivery happened inside Send; wait without arming a
		// timer.
		<-fs.delivered
		return fs.recvPay, true
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-fs.delivered:
		return fs.recvPay, true
	case <-timer.C:
		tp.nc.timeouts.Add(1)
		return payload{}, false
	}
}

// Rerequest recovers an expansion payload over the reliable re-request
// path after a Recv deadline expiry: it waits for the sender to have
// produced the payload (the send task is scheduled independently of the
// lossy wire) and returns the sender's original bytes. This models the
// separate acknowledged recovery channel a production link layer falls
// back to; it cannot lose data, only time.
func (tp *transport) Rerequest(f flowID) payload {
	fs := tp.flows[f]
	<-fs.sent
	tp.nc.rerequests.Add(1)
	return fs.pay
}

// noteGhostDegrade records a ghost flow recovered host-side.
func (tp *transport) noteGhostDegrade() { tp.nc.degradedGhost.Add(1) }

// payloadSum is an FNV-1a checksum over the payload's float bits (and
// slice structure), the frame's integrity check.
func payloadSum(p payload) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	w64(uint64(len(p.exp)))
	for _, c := range p.exp {
		wf(real(c))
		wf(imag(c))
	}
	w64(uint64(len(p.ghost)))
	for _, gl := range p.ghost {
		w64(uint64(len(gl.pos)))
		for _, v := range gl.pos {
			wf(v.X)
			wf(v.Y)
			wf(v.Z)
		}
		w64(uint64(len(gl.mass)))
		for _, m := range gl.mass {
			wf(m)
		}
		w64(uint64(len(gl.aux)))
		for _, v := range gl.aux {
			wf(v.X)
			wf(v.Y)
			wf(v.Z)
		}
	}
	return h
}

// corruptCopy returns a deep copy of the payload with one bit flipped,
// selected by the deterministic draw r in [0,1).
func corruptCopy(p payload, r float64) payload {
	if len(p.exp) > 0 {
		exp := append([]complex128(nil), p.exp...)
		i := int(r * float64(len(exp)))
		if i >= len(exp) {
			i = len(exp) - 1
		}
		re := math.Float64bits(real(exp[i]))
		re ^= 1 << 31
		exp[i] = complex(math.Float64frombits(re), imag(exp[i]))
		return payload{exp: exp}
	}
	if len(p.ghost) > 0 {
		ghost := append([]ghostLeaf(nil), p.ghost...)
		i := int(r * float64(len(ghost)))
		if i >= len(ghost) {
			i = len(ghost) - 1
		}
		gl := ghost[i]
		if len(gl.pos) > 0 {
			pos := append([]geom.Vec3(nil), gl.pos...)
			b := math.Float64bits(pos[0].X)
			b ^= 1 << 31
			pos[0].X = math.Float64frombits(b)
			gl.pos = pos
		} else if len(gl.mass) > 0 {
			mass := append([]float64(nil), gl.mass...)
			b := math.Float64bits(mass[0])
			b ^= 1 << 31
			mass[0] = math.Float64frombits(b)
			gl.mass = mass
		}
		ghost[i] = gl
		return payload{ghost: ghost}
	}
	return p
}
