package dmem

import (
	"testing"
	"time"

	"afmm/internal/fault"
	"afmm/internal/geom"
)

// fastLink keeps chaos tests quick: microsecond-scale retransmits, tight
// deadlines where a test wants degradation to trigger.
func fastLink() LinkConfig {
	return LinkConfig{
		RetransmitTimeout: 200 * time.Microsecond,
		MaxRetries:        8,
		NearDeadline:      2 * time.Second,
		FarDeadline:       2 * time.Second,
	}
}

func expPayload(n int, base float64) payload {
	exp := make([]complex128, n)
	for i := range exp {
		exp[i] = complex(base+float64(i), base-float64(i))
	}
	return payload{exp: exp}
}

func ghostPayload() payload {
	return payload{ghost: []ghostLeaf{{
		pos:  []geom.Vec3{{X: 1, Y: 2, Z: 3}, {X: -4, Y: 5, Z: -6}},
		mass: []float64{0.5, 0.25},
	}}}
}

func mustLinks(t *testing.T, spec string) *fault.LinkSchedule {
	t.Helper()
	sch, err := fault.ParseLinkEvents(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func samePayload(a, b payload) bool {
	if len(a.exp) != len(b.exp) || len(a.ghost) != len(b.ghost) {
		return false
	}
	return payloadSum(a) == payloadSum(b)
}

// TestTransportDefaultDelivery: without a fault schedule the transport is
// the framed, checksummed equivalent of the old buffered channels —
// synchronous delivery, one frame per flow.
func TestTransportDefaultDelivery(t *testing.T) {
	flows := []flowID{
		{kind: flowMpole, from: 0, to: 1, level: 2},
		{kind: flowGhost, from: 1, to: 0},
	}
	tp := newTransport(flows, LinkConfig{}, nil, 1, 0)
	defer tp.Close()

	want0 := expPayload(8, 1.5)
	want1 := ghostPayload()
	tp.Send(flows[0], want0)
	tp.Send(flows[1], want1)

	got0, ok0 := tp.Recv(flows[0])
	got1, ok1 := tp.Recv(flows[1])
	if !ok0 || !ok1 {
		t.Fatal("fault-free Recv must not time out")
	}
	if !samePayload(got0, want0) || !samePayload(got1, want1) {
		t.Fatal("delivered payload differs from sent payload")
	}
	st := tp.Stats()
	if st.FramesSent != 2 || st.FramesDelivered != 2 {
		t.Fatalf("sent=%d delivered=%d, want 2/2", st.FramesSent, st.FramesDelivered)
	}
	if st.Retries != 0 || st.FramesDropped != 0 || st.Timeouts != 0 {
		t.Fatalf("fault-free stats show protocol activity: %+v", st)
	}
}

// TestTransportDropRetransmit: a lossy forward link costs retries, never
// values — the payload that arrives is bit-identical to the one sent.
func TestTransportDropRetransmit(t *testing.T) {
	sch := mustLinks(t, "link0-1:drop0.6@step0")
	f := flowID{kind: flowMpole, from: 0, to: 1, level: 3}
	want := expPayload(32, 7.25)

	var delivered int
	var drops, retries int64
	for seed := int64(1); seed <= 8; seed++ {
		tp := newTransport([]flowID{f}, fastLink(), sch, seed, 0)
		tp.Send(f, want)
		got, ok := tp.Recv(f)
		tp.Close()
		st := tp.Stats()
		drops += st.FramesDropped
		retries += st.Retries
		if ok {
			if !samePayload(got, want) {
				t.Fatalf("seed %d: delivered payload differs from sent", seed)
			}
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no seed delivered through drop0.6 within the retry budget")
	}
	if drops == 0 || retries == 0 {
		t.Fatalf("drop0.6 over 8 seeds produced drops=%d retries=%d, want both > 0",
			drops, retries)
	}
}

// TestTransportCorruptRejectRerequest: corrupt1.0 poisons every attempt;
// the checksum rejects each frame, the deadline expires, and Rerequest
// recovers the sender's original bytes.
func TestTransportCorruptRejectRerequest(t *testing.T) {
	sch := mustLinks(t, "link0-1:corrupt@step0")
	f := flowID{kind: flowLocal, from: 0, to: 1, level: 1}
	cfg := fastLink()
	cfg.FarDeadline = 50 * time.Millisecond
	tp := newTransport([]flowID{f}, cfg, sch, 3, 0)
	defer tp.Close()

	want := expPayload(16, -2.5)
	tp.Send(f, want)
	if _, ok := tp.Recv(f); ok {
		t.Fatal("corrupt1.0 must never deliver a verified frame")
	}
	got := tp.Rerequest(f)
	if !samePayload(got, want) {
		t.Fatal("Rerequest returned different bytes than Send stored")
	}
	st := tp.Stats()
	if st.CorruptRejects == 0 {
		t.Fatalf("expected checksum rejects, got %+v", st)
	}
	if st.Timeouts != 1 || st.Rerequests != 1 {
		t.Fatalf("timeouts=%d rerequests=%d, want 1/1", st.Timeouts, st.Rerequests)
	}
	if st.FramesDelivered != 0 {
		t.Fatalf("no frame should verify under corrupt1.0, got %d", st.FramesDelivered)
	}
}

// TestTransportDupDedup: chaos-injected duplicates are discarded by the
// receiver's dedup guard; the flow still delivers exactly once.
func TestTransportDupDedup(t *testing.T) {
	sch := mustLinks(t, "link0-1:dup@step0")
	f := flowID{kind: flowGhost, from: 0, to: 1}
	tp := newTransport([]flowID{f}, fastLink(), sch, 5, 0)
	defer tp.Close()

	want := ghostPayload()
	tp.Send(f, want)
	got, ok := tp.Recv(f)
	if !ok {
		t.Fatal("dup-only schedule must deliver")
	}
	if !samePayload(got, want) {
		t.Fatal("delivered payload differs from sent")
	}
	// Let the duplicate copy land before snapshotting stats.
	tp.Close()
	st := tp.Stats()
	if st.DupFrames == 0 {
		t.Fatalf("dup1.0 produced no duplicates: %+v", st)
	}
	if st.FramesDelivered != 1 {
		t.Fatalf("delivered %d times, want exactly once", st.FramesDelivered)
	}
}

// TestTransportDeterministicVerdicts: the same seed and schedule replay
// the exact same fault pattern regardless of wall-clock interleaving.
func TestTransportDeterministicVerdicts(t *testing.T) {
	sch := mustLinks(t, "link0-1:drop1.0@step0")
	f := flowID{kind: flowMpole, from: 0, to: 1, level: 2}
	cfg := fastLink()
	// Past the full backoff sum (200µs * (2^9 - 1) ≈ 102ms), so the
	// sender exhausts its whole retry budget before the deadline.
	cfg.FarDeadline = 200 * time.Millisecond

	run := func() NetStats {
		tp := newTransport([]flowID{f}, cfg, sch, 11, 0)
		defer tp.Close()
		tp.Send(f, expPayload(4, 1))
		if _, ok := tp.Recv(f); ok {
			t.Fatal("drop1.0 must never deliver")
		}
		tp.Rerequest(f)
		tp.Close()
		return tp.Stats()
	}
	a, b := run(), run()
	if a.FramesSent != b.FramesSent || a.FramesDropped != b.FramesDropped ||
		a.Retries != b.Retries || a.Timeouts != b.Timeouts {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	if a.FramesSent != int64(cfg.MaxRetries+1) {
		t.Fatalf("drop1.0 sent %d frames, want MaxRetries+1 = %d",
			a.FramesSent, cfg.MaxRetries+1)
	}
	if a.FramesDropped != a.FramesSent {
		t.Fatalf("drop1.0 dropped %d of %d frames", a.FramesDropped, a.FramesSent)
	}
}

// TestCorruptCopyPreservesOriginal: corruption mutates a private copy —
// the retransmission path keeps the sender's original bytes intact.
func TestCorruptCopyPreservesOriginal(t *testing.T) {
	for _, p := range []payload{expPayload(8, 3), ghostPayload()} {
		sum := payloadSum(p)
		c := corruptCopy(p, 0.4)
		if payloadSum(c) == sum {
			t.Fatal("corruptCopy left the checksum unchanged")
		}
		if payloadSum(p) != sum {
			t.Fatal("corruptCopy mutated the original payload")
		}
	}
}

// TestNetStatsAddMergesLinks: run-level aggregation merges per-link rows
// and RTT means by directed link.
func TestNetStatsAddMergesLinks(t *testing.T) {
	var s NetStats
	s.add(&NetStats{FramesSent: 2, PerLink: []LinkStat{
		{From: 0, To: 1, Frames: 2, RTTNs: 100, RTTCount: 2},
	}})
	s.add(&NetStats{FramesSent: 1, Retries: 1, PerLink: []LinkStat{
		{From: 0, To: 1, Frames: 1, Retries: 1, RTTNs: 400, RTTCount: 1},
		{From: 1, To: 0, Frames: 5},
	}})
	if s.FramesSent != 3 || s.Retries != 1 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if len(s.PerLink) != 2 {
		t.Fatalf("want 2 merged links, got %d", len(s.PerLink))
	}
	l01 := s.PerLink[0]
	if l01.Frames != 3 || l01.Retries != 1 || l01.RTTCount != 3 || l01.RTTNs != 200 {
		t.Fatalf("merged link 0-1 wrong: %+v", l01)
	}
}

// TestDetectorHeartbeat: silent nodes cross the suspicion threshold; live
// nodes do not.
func TestDetectorHeartbeat(t *testing.T) {
	cfg := LinkConfig{HeartbeatInterval: 500 * time.Microsecond, SuspectAfter: 10}
	d := newDetector(3, cfg, nil, 1)
	defer d.stop()

	d.silence(1)
	lat := d.waitDead(1)
	if lat <= 0 {
		t.Fatal("detection latency must be positive")
	}
	if s := d.suspicion(1); s < 1 {
		t.Fatalf("silenced node suspicion = %v, want >= 1", s)
	}
	for _, k := range []int{0, 2} {
		if s := d.suspicion(k); s >= 1 {
			t.Fatalf("live node %d suspicion = %v, want < 1", k, s)
		}
	}
}
