package expansion

import (
	"math/cmplx"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// Batched M2L: the level-synchronous sweeps apply a target's whole V list
// in one call, which lets the per-pair setup of the rotation-accelerated
// translation — the Wigner stack for the rotation angle theta, the radial
// powers 1/rho^k, and the azimuthal phases e^{i m phi} — be hoisted out of
// the inner loop and cached per translation vector. On the uniform part of
// a tree the V-list offsets of all same-level cells repeat from a set of
// at most 189 directions, so after the first few targets of a level every
// translation runs setup-free: only the two O(p^3) rotations and the
// O(p^2) axial translation remain.

// M2LSource pairs a source multipole expansion with its center for a
// batched translation. The source order must equal the target order.
type M2LSource struct {
	M    Expansion
	From geom.Vec3
}

// m2lGeom is the hoisted per-direction setup of one rotated M2L
// translation vector d = from - to.
type m2lGeom struct {
	stack [][]float64  // Wigner d^l(theta), l = 0..p
	rpow  []float64    // 1/rho^{k+1}, k = 0..2p
	zph   []complex128 // e^{i m phi}, m = 0..p
}

// geomCacheMax bounds the per-workspace direction cache. Uniform trees
// need at most 189 directions per level; adaptive trees add cross-level
// pairs, still far below this. On overflow the cache is reset wholesale
// (no LRU bookkeeping on the hot path).
const geomCacheMax = 2048

// m2lGeomFor returns the cached setup for translation vector d, computing
// and caching it on a miss.
func (w *Workspace) m2lGeomFor(d geom.Vec3) *m2lGeom {
	if g, ok := w.geomCache[d]; ok {
		return g
	}
	p := w.p
	rho, theta, phi := d.Spherical()
	g := &m2lGeom{
		stack: make([][]float64, p+1),
		rpow:  make([]float64, 2*p+2),
		zph:   make([]complex128, p+1),
	}
	for l := 0; l <= p; l++ {
		g.stack[l] = make([]float64, (2*l+1)*(2*l+1))
	}
	WignerStackInto(g.stack, p, theta)
	inv := 1 / rho
	g.rpow[0] = inv
	for i := 1; i < len(g.rpow); i++ {
		g.rpow[i] = g.rpow[i-1] * inv
	}
	for m := 0; m <= p; m++ {
		g.zph[m] = cmplx.Exp(complex(0, float64(m)*phi))
	}
	if w.geomCache == nil || len(w.geomCache) >= geomCacheMax {
		w.geomCache = make(map[geom.Vec3]*m2lGeom, 256)
	}
	w.geomCache[d] = g
	return g
}

// rotateZCached multiplies coefficient (n, m) by ph[m] (or its conjugate),
// the cached-phase equivalent of rotateZ(p, e, ±phi).
func rotateZCached(p int, e []complex128, ph []complex128, conj bool) {
	for m := 1; m <= p; m++ {
		f := ph[m]
		if conj {
			f = complex(real(f), -imag(f))
		}
		for n := m; n <= p; n++ {
			e[sphharm.Idx(n, m)] *= f
		}
	}
}

// M2LBatch accumulates into l the local expansions at `to` of every source
// multipole in srcs, equivalent to calling M2LRotated once per source but
// with the per-direction setup shared through the workspace cache. All
// sources must have order l.P (the solver's V lists always do).
func (w *Workspace) M2LBatch(l Expansion, to geom.Vec3, srcs []M2LSource) {
	p := l.P
	r := w.rot
	t := w.t
	for _, s := range srcs {
		g := w.m2lGeomFor(s.From.Sub(to))

		// Forward frame change: phase e^{im phi}, transposed Wigner stack.
		copy(r.buf1, s.M.C)
		rotateZCached(p, r.buf1, g.zph, false)
		rotateY(p, r.buf2, r.buf1, g.stack, true)

		// Axial M2L along +z (same kernel as M2LRotated, cached powers).
		for j := 0; j <= p; j++ {
			sj := 1.0
			if j%2 == 1 {
				sj = -1
			}
			for k := 0; k <= j; k++ {
				sk := sj
				if k%2 == 1 {
					sk = -sk
				}
				ajk := t.Anm(j, k)
				var acc complex128
				for n := k; n <= p; n++ {
					c := sk * t.Anm(n, k) * ajk * t.Fact[j+n] * g.rpow[j+n]
					acc += complex(c, 0) * r.buf2[sphharm.Idx(n, k)]
				}
				r.buf1[sphharm.Idx(j, k)] = acc
			}
		}

		// Back rotation: untransposed stack, conjugate phases; accumulate.
		rotateY(p, r.buf2, r.buf1, g.stack, false)
		rotateZCached(p, r.buf2, g.zph, true)
		for i := range l.C {
			l.C[i] += r.buf2[i]
		}
	}
}
