package expansion

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

func randomExpansion(p int, rng *rand.Rand) Expansion {
	e := NewExpansion(p)
	for i := range e.C {
		e.C[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// m = 0 coefficients of a real potential are real.
	for n := 0; n <= p; n++ {
		i := sphharm.Idx(n, 0)
		e.C[i] = complex(real(e.C[i]), 0)
	}
	return e
}

func maxRelDiff(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		d := cmplx.Abs(a[i]-b[i]) / (1 + cmplx.Abs(a[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestM2LBatchMatchesRotated(t *testing.T) {
	// A batch over repeated and fresh directions must reproduce the
	// per-pair rotated operator bit-for-bit modulo accumulation order:
	// identical inputs flow through identical arithmetic, the cache only
	// removes redundant setup recomputation.
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{2, 4, 8, 12} {
		w := NewWorkspace(p)
		to := geom.Vec3{X: 0.1, Y: -0.2, Z: 0.05}
		var srcs []M2LSource
		// Repeat a small direction set many times (the uniform-tree regime
		// the cache targets) plus some unique directions.
		dirs := []geom.Vec3{
			{X: 3, Y: 0, Z: 0}, {X: 0, Y: 3, Z: 1.5}, {X: -3, Y: 3, Z: -3},
		}
		for rep := 0; rep < 4; rep++ {
			for _, d := range dirs {
				srcs = append(srcs, M2LSource{M: randomExpansion(p, rng), From: to.Add(d)})
			}
		}
		for i := 0; i < 5; i++ {
			srcs = append(srcs, M2LSource{
				M:    randomExpansion(p, rng),
				From: to.Add(geom.Vec3{X: 4 + rng.Float64(), Y: -3 + rng.Float64(), Z: 2 + rng.Float64()}),
			})
		}

		got := NewExpansion(p)
		w.M2LBatch(got, to, srcs)

		want := NewExpansion(p)
		wRef := NewWorkspace(p)
		for _, s := range srcs {
			wRef.M2LRotated(want, to, s.M, s.From)
		}
		if d := maxRelDiff(got.C, want.C); d > 1e-13 {
			t.Errorf("p=%d: batch deviates from per-pair rotated M2L by %g", p, d)
		}
	}
}

func TestM2LBatchMatchesDirect(t *testing.T) {
	// Against the direct O(p^4) operator the rotated batch agrees to
	// rounding (same analytic transform, different factorization).
	rng := rand.New(rand.NewSource(9))
	p := 8
	w := NewWorkspace(p)
	to := geom.Vec3{}
	var srcs []M2LSource
	for i := 0; i < 10; i++ {
		srcs = append(srcs, M2LSource{
			M:    randomExpansion(p, rng),
			From: geom.Vec3{X: 3 + rng.Float64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
		})
	}
	got := NewExpansion(p)
	w.M2LBatch(got, to, srcs)
	want := NewExpansion(p)
	wRef := NewWorkspace(p)
	for _, s := range srcs {
		wRef.M2L(want, to, s.M, s.From)
	}
	if d := maxRelDiff(got.C, want.C); d > 1e-9 {
		t.Errorf("batch deviates from direct M2L by %g", d)
	}
}

func TestM2LBatchCachePersistsAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := 4
	w := NewWorkspace(p)
	to := geom.Vec3{}
	d := geom.Vec3{X: 3, Y: 1, Z: 0}
	src := []M2LSource{{M: randomExpansion(p, rng), From: d}}
	l := NewExpansion(p)
	w.M2LBatch(l, to, src)
	if len(w.geomCache) != 1 {
		t.Fatalf("cache holds %d entries after one direction", len(w.geomCache))
	}
	g1 := w.geomCache[d]
	// A second batch over the same direction must reuse the entry, and the
	// result must stay consistent with a fresh workspace.
	l2 := NewExpansion(p)
	w.M2LBatch(l2, to, src)
	if w.geomCache[d] != g1 {
		t.Fatal("cache entry was rebuilt for a repeated direction")
	}
	fresh := NewExpansion(p)
	NewWorkspace(p).M2LBatch(fresh, to, src)
	if d := maxRelDiff(l2.C, fresh.C); d > 1e-15 {
		t.Fatalf("cached result drifted by %g", d)
	}
	// Flooding with unique directions must keep the cache bounded.
	var flood []M2LSource
	m := randomExpansion(p, rng)
	for i := 0; i < geomCacheMax+100; i++ {
		flood = append(flood, M2LSource{
			M:    m,
			From: geom.Vec3{X: 5 + float64(i)*1e-6, Y: 1, Z: 1},
		})
	}
	w.M2LBatch(NewExpansion(p), to, flood)
	if len(w.geomCache) > geomCacheMax {
		t.Fatalf("cache grew to %d entries (max %d)", len(w.geomCache), geomCacheMax)
	}
}

func BenchmarkM2LPerPairRotated(b *testing.B) {
	benchM2L(b, func(w *Workspace, l Expansion, to geom.Vec3, srcs []M2LSource) {
		for _, s := range srcs {
			w.M2LRotated(l, to, s.M, s.From)
		}
	})
}

func BenchmarkM2LPerPairDirect(b *testing.B) {
	benchM2L(b, func(w *Workspace, l Expansion, to geom.Vec3, srcs []M2LSource) {
		for _, s := range srcs {
			w.M2L(l, to, s.M, s.From)
		}
	})
}

func BenchmarkM2LBatch(b *testing.B) {
	benchM2L(b, func(w *Workspace, l Expansion, to geom.Vec3, srcs []M2LSource) {
		w.M2LBatch(l, to, srcs)
	})
}

// benchM2L applies a V-list-like batch: 27 sources drawn from a repeating
// direction set, order 8 (the acceptance configuration).
func benchM2L(b *testing.B, apply func(*Workspace, Expansion, geom.Vec3, []M2LSource)) {
	rng := rand.New(rand.NewSource(1))
	const p = 8
	w := NewWorkspace(p)
	to := geom.Vec3{}
	var srcs []M2LSource
	for i := 0; i < 27; i++ {
		d := geom.Vec3{
			X: float64(i%3-1) * 3,
			Y: float64((i/3)%3-1) * 3,
			Z: math.Floor(float64(i/9)-1) * 3,
		}
		if d.Norm() == 0 {
			d = geom.Vec3{X: 3, Y: 3, Z: 3}
		}
		srcs = append(srcs, M2LSource{M: randomExpansion(p, rng), From: to.Add(d)})
	}
	l := NewExpansion(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(w, l, to, srcs)
	}
}
