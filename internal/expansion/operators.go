package expansion

import (
	"math"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// Expansion is a packed (m >= 0) coefficient vector of a multipole or
// local expansion of order P.
type Expansion struct {
	P int
	C []complex128
}

// NewExpansion allocates a zero expansion of order p.
func NewExpansion(p int) Expansion {
	return Expansion{P: p, C: make([]complex128, sphharm.PackedLen(p))}
}

// Zero resets all coefficients.
func (e Expansion) Zero() {
	for i := range e.C {
		e.C[i] = 0
	}
}

// Add accumulates o into e (same order required).
func (e Expansion) Add(o Expansion) {
	for i := range e.C {
		e.C[i] += o.C[i]
	}
}

// Workspace holds per-goroutine scratch buffers for the operators so hot
// paths do not allocate. A Workspace must not be shared across goroutines.
type Workspace struct {
	p    int
	t    *sphharm.Tables
	reg  []complex128 // regular harmonics, degree p
	irr  []complex128 // irregular harmonics, degree 2p
	val  []complex128 // L2P value buffer
	gx   []complex128
	gy   []complex128
	gz   []complex128
	tmp  []complex128 // generic degree-p buffer
	rpow []float64
	rot  *rotWorkspace // buffers for the rotation-accelerated operators

	// geomCache memoizes the per-direction setup of batched M2L
	// translations (see M2LBatch); allocated lazily on first use.
	geomCache map[geom.Vec3]*m2lGeom
}

// NewWorkspace creates scratch space for order-p operators.
func NewWorkspace(p int) *Workspace {
	return &Workspace{
		p:    p,
		t:    sphharm.NewTables(p),
		reg:  make([]complex128, sphharm.PackedLen(p)),
		irr:  make([]complex128, sphharm.PackedLen(2*p)),
		val:  make([]complex128, sphharm.PackedLen(p)),
		gx:   make([]complex128, sphharm.PackedLen(p)),
		gy:   make([]complex128, sphharm.PackedLen(p)),
		gz:   make([]complex128, sphharm.PackedLen(p)),
		tmp:  make([]complex128, sphharm.PackedLen(p)),
		rpow: make([]float64, 2*p+2),
		rot:  newRotWorkspace(p),
	}
}

// Order returns the expansion order the workspace was built for.
func (w *Workspace) Order() int { return w.p }

// P2M accumulates the multipole contribution of a charge q at position pos
// into the expansion m centered at center:
//
//	M_n^k += q * conj(R_n^k(pos - center))
func (w *Workspace) P2M(m Expansion, center, pos geom.Vec3, q float64) {
	Regular(m.P, pos.Sub(center), w.reg)
	for i, r := range w.reg[:len(m.C)] {
		m.C[i] += complex(q, 0) * complex(real(r), -imag(r))
	}
}

// M2M translates the child multipole o centered at from into the parent
// expansion m centered at to (accumulating):
//
//	M_j^k += sum_{n<=j, |k-m|<=j-n} O_{j-n}^{k-m} i^{|k|-|m|-|k-m|}
//	          A_n^m A_{j-n}^{k-m} conj(R_n^m(d)) / A_j^k,  d = from - to
func (w *Workspace) M2M(m Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	p := m.P
	Regular(p, from.Sub(to), w.reg)
	t := w.t
	for j := 0; j <= p; j++ {
		for k := 0; k <= j; k++ {
			var acc complex128
			for n := 0; n <= j; n++ {
				jn := j - n
				for mm := -n; mm <= n; mm++ {
					km := k - mm
					if km < -jn || km > jn {
						continue
					}
					sign := sphharm.IPow(abs(k) - abs(mm) - abs(km))
					r := get(w.reg, n, -mm) // conj(R_n^m) = R_n^{-m}
					acc += get(o.C, jn, km) * sign *
						complex(t.Anm(n, mm)*t.Anm(jn, km), 0) * r
				}
			}
			m.C[sphharm.Idx(j, k)] += acc / complex(t.Anm(j, k), 0)
		}
	}
}

// M2L converts the multipole o centered at from into a local expansion
// accumulated into l centered at to:
//
//	L_j^k += sum_{n,m} O_n^m i^{|k-m|-|k|-|m|} A_n^m A_j^k
//	          S_{j+n}^{m-k}(d) / ((-1)^n A_{j+n}^{m-k}),  d = from - to
func (w *Workspace) M2L(l Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	// Orders may differ (e.g. probe evaluation converts a full multipole
	// into a degree-1 local); the workspace must cover l.P + o.P.
	p := l.P
	srcP := o.P
	Irregular(p+srcP, from.Sub(to), w.irr)
	t := w.t
	for j := 0; j <= p; j++ {
		for k := 0; k <= j; k++ {
			ajk := t.Anm(j, k)
			var acc complex128
			for n := 0; n <= srcP; n++ {
				neg := 1.0
				if n%2 == 1 {
					neg = -1.0
				}
				for mm := -n; mm <= n; mm++ {
					sign := sphharm.IPow(abs(k-mm) - abs(k) - abs(mm))
					s := get(w.irr, j+n, mm-k)
					acc += get(o.C, n, mm) * sign *
						complex(t.Anm(n, mm)*ajk*neg/t.Anm(j+n, mm-k), 0) * s
				}
			}
			l.C[sphharm.Idx(j, k)] += acc
		}
	}
}

// L2L translates the parent local expansion o centered at from into the
// child expansion l centered at to (accumulating):
//
//	L_j^k += sum_{n>=j,m} O_n^m i^{|m|-|m-k|-|k|} A_{n-j}^{m-k} A_j^k
//	          R_{n-j}^{m-k}(d) / ((-1)^{n+j} A_n^m),  d = from - to
func (w *Workspace) L2L(l Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	p := l.P
	Regular(p, from.Sub(to), w.reg)
	t := w.t
	for j := 0; j <= p; j++ {
		for k := 0; k <= j; k++ {
			ajk := t.Anm(j, k)
			var acc complex128
			for n := j; n <= p; n++ {
				nj := n - j
				neg := 1.0
				if (n+j)%2 == 1 {
					neg = -1.0
				}
				for mm := -n; mm <= n; mm++ {
					mk := mm - k
					if mk < -nj || mk > nj {
						continue
					}
					sign := sphharm.IPow(abs(mm) - abs(mk) - abs(k))
					r := get(w.reg, nj, mk)
					acc += get(o.C, n, mm) * sign *
						complex(t.Anm(nj, mk)*ajk*neg/t.Anm(n, mm), 0) * r
				}
			}
			l.C[sphharm.Idx(j, k)] += acc
		}
	}
}

// L2P evaluates the local expansion l centered at center at the point pos,
// returning the potential and its Cartesian gradient.
func (w *Workspace) L2P(l Expansion, center, pos geom.Vec3) (phi float64, grad geom.Vec3) {
	RegularGrad(l.P, pos.Sub(center), w.val, w.gx, w.gy, w.gz)
	var p, gx, gy, gz float64
	for n := 0; n <= l.P; n++ {
		i0 := sphharm.Idx(n, 0)
		c := l.C[i0]
		p += real(c) * real(w.val[i0])
		// m = 0 harmonics are real-valued polynomials, but retain the
		// general complex product for safety against rounding drift.
		p -= imag(c) * imag(w.val[i0])
		gx += real(c)*real(w.gx[i0]) - imag(c)*imag(w.gx[i0])
		gy += real(c)*real(w.gy[i0]) - imag(c)*imag(w.gy[i0])
		gz += real(c)*real(w.gz[i0]) - imag(c)*imag(w.gz[i0])
		for m := 1; m <= n; m++ {
			i := sphharm.Idx(n, m)
			c := l.C[i]
			p += 2 * (real(c)*real(w.val[i]) - imag(c)*imag(w.val[i]))
			gx += 2 * (real(c)*real(w.gx[i]) - imag(c)*imag(w.gx[i]))
			gy += 2 * (real(c)*real(w.gy[i]) - imag(c)*imag(w.gy[i]))
			gz += 2 * (real(c)*real(w.gz[i]) - imag(c)*imag(w.gz[i]))
		}
	}
	return p, geom.Vec3{X: gx, Y: gy, Z: gz}
}

// EvalMultipole evaluates the multipole expansion m centered at center at a
// point pos outside the expansion sphere, returning the potential.
func (w *Workspace) EvalMultipole(m Expansion, center, pos geom.Vec3) float64 {
	Irregular(m.P, pos.Sub(center), w.irr)
	var p float64
	for n := 0; n <= m.P; n++ {
		i0 := sphharm.Idx(n, 0)
		p += real(m.C[i0])*real(w.irr[i0]) - imag(m.C[i0])*imag(w.irr[i0])
		for k := 1; k <= n; k++ {
			i := sphharm.Idx(n, k)
			p += 2 * (real(m.C[i])*real(w.irr[i]) - imag(m.C[i])*imag(w.irr[i]))
		}
	}
	return p
}

// P2L accumulates the local expansion of a distant point charge q at pos
// into l centered at center:
//
//	L_n^m += q * conj(S_n^m(pos - center))
func (w *Workspace) P2L(l Expansion, center, pos geom.Vec3, q float64) {
	Irregular(l.P, pos.Sub(center), w.irr)
	for i := range l.C {
		s := w.irr[i]
		l.C[i] += complex(q, 0) * complex(real(s), -imag(s))
	}
}

// TruncationError returns the classical a-priori bound on the relative
// truncation error of an order-p multipole expansion of radius a evaluated
// at distance d from its center: the geometric tail
//
//	(a/d)^(p+1) * d/(d-a)
//
// finite whenever d > a (the multipole acceptance criterion guarantees
// a/d <= MAC < 1).
func TruncationError(p int, a, d float64) float64 {
	if d <= a {
		return math.Inf(1)
	}
	return math.Pow(a/d, float64(p+1)) * d / (d - a)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
