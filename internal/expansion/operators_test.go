package expansion

import (
	"math"
	"math/rand"
	"testing"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// randCluster returns n charges in a ball of the given radius around center.
func randCluster(rng *rand.Rand, n int, center geom.Vec3, radius float64) ([]geom.Vec3, []float64) {
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		for {
			v := geom.Vec3{
				X: 2*rng.Float64() - 1,
				Y: 2*rng.Float64() - 1,
				Z: 2*rng.Float64() - 1,
			}
			if v.Norm() <= 1 {
				pos[i] = center.Add(v.Scale(radius))
				break
			}
		}
		q[i] = rng.Float64() + 0.5
	}
	return pos, q
}

func directPotential(pos []geom.Vec3, q []float64, x geom.Vec3) float64 {
	var phi float64
	for i, p := range pos {
		phi += q[i] / x.Sub(p).Norm()
	}
	return phi
}

func directField(pos []geom.Vec3, q []float64, x geom.Vec3) geom.Vec3 {
	var g geom.Vec3
	for i, p := range pos {
		d := x.Sub(p)
		r := d.Norm()
		g = g.Add(d.Scale(-q[i] / (r * r * r)))
	}
	return g
}

func TestRegularMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const deg = 8
	out := make([]complex128, sphharm.PackedLen(deg))
	y := make([]complex128, sphharm.PackedLen(deg))
	for trial := 0; trial < 50; trial++ {
		v := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		Regular(deg, v, out)
		r, th, ph := v.Spherical()
		sphharm.EvalY(deg, th, ph, y)
		for n := 0; n <= deg; n++ {
			rn := math.Pow(r, float64(n))
			for m := 0; m <= n; m++ {
				want := complex(rn, 0) * y[sphharm.Idx(n, m)]
				got := out[sphharm.Idx(n, m)]
				scale := math.Max(1, rn)
				if d := got - want; math.Hypot(real(d), imag(d)) > 1e-10*scale {
					t.Fatalf("R_%d^%d(%v) = %v, want %v", n, m, v, got, want)
				}
			}
		}
	}
}

func TestIrregularMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const deg = 8
	out := make([]complex128, sphharm.PackedLen(deg))
	y := make([]complex128, sphharm.PackedLen(deg))
	for trial := 0; trial < 50; trial++ {
		v := geom.Vec3{
			X: rng.NormFloat64() + 1,
			Y: rng.NormFloat64(),
			Z: rng.NormFloat64(),
		}
		Irregular(deg, v, out)
		r, th, ph := v.Spherical()
		sphharm.EvalY(deg, th, ph, y)
		for n := 0; n <= deg; n++ {
			rp := math.Pow(r, -float64(n+1))
			for m := 0; m <= n; m++ {
				want := complex(rp, 0) * y[sphharm.Idx(n, m)]
				got := out[sphharm.Idx(n, m)]
				if d := got - want; math.Hypot(real(d), imag(d)) > 1e-10*math.Max(1, rp) {
					t.Fatalf("S_%d^%d(%v) = %v, want %v", n, m, v, got, want)
				}
			}
		}
	}
}

func TestRegularGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const deg = 6
	pl := sphharm.PackedLen(deg)
	val := make([]complex128, pl)
	gx := make([]complex128, pl)
	gy := make([]complex128, pl)
	gz := make([]complex128, pl)
	vp := make([]complex128, pl)
	vm := make([]complex128, pl)
	const h = 1e-6
	for trial := 0; trial < 20; trial++ {
		v := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		RegularGrad(deg, v, val, gx, gy, gz)
		axes := []struct {
			d geom.Vec3
			g []complex128
		}{
			{geom.Vec3{X: h}, gx},
			{geom.Vec3{Y: h}, gy},
			{geom.Vec3{Z: h}, gz},
		}
		for _, ax := range axes {
			Regular(deg, v.Add(ax.d), vp)
			Regular(deg, v.Sub(ax.d), vm)
			for i := 0; i < pl; i++ {
				fd := (vp[i] - vm[i]) / complex(2*h, 0)
				if d := fd - ax.g[i]; math.Hypot(real(d), imag(d)) > 1e-5 {
					t.Fatalf("grad mismatch at idx %d: fd=%v analytic=%v", i, fd, ax.g[i])
				}
			}
		}
	}
}

func TestAdditionTheorem(t *testing.T) {
	// 1/|x-y| = sum_n sum_m conj(R_n^m(x-c)) S_n^m(y-c) for |x-c| < |y-c|.
	rng := rand.New(rand.NewSource(4))
	const deg = 20
	reg := make([]complex128, sphharm.PackedLen(deg))
	irr := make([]complex128, sphharm.PackedLen(deg))
	for trial := 0; trial < 20; trial++ {
		c := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		x := c.Add(randDir(rng).Scale(0.3 * rng.Float64()))
		y := c.Add(randDir(rng).Scale(2 + rng.Float64()))
		Regular(deg, x.Sub(c), reg)
		Irregular(deg, y.Sub(c), irr)
		var sum float64
		for n := 0; n <= deg; n++ {
			i0 := sphharm.Idx(n, 0)
			sum += real(reg[i0])*real(irr[i0]) + imag(reg[i0])*imag(irr[i0])
			for m := 1; m <= n; m++ {
				i := sphharm.Idx(n, m)
				// conj(R) * S, summed with the conjugate pair = 2*Re.
				sum += 2 * (real(reg[i])*real(irr[i]) + imag(reg[i])*imag(irr[i]))
			}
		}
		want := 1 / x.Sub(y).Norm()
		if math.Abs(sum-want) > 1e-8*want {
			t.Fatalf("addition theorem: got %v want %v (x=%v y=%v c=%v)", sum, want, x, y, c)
		}
	}
}

func randDir(rng *rand.Rand) geom.Vec3 {
	for {
		v := geom.Vec3{
			X: 2*rng.Float64() - 1,
			Y: 2*rng.Float64() - 1,
			Z: 2*rng.Float64() - 1,
		}
		if n := v.Norm(); n > 0.1 && n <= 1 {
			return v.Scale(1 / n)
		}
	}
}

func TestP2MEvalMultipole(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const p = 14
	w := NewWorkspace(p)
	center := geom.Vec3{X: 1, Y: -2, Z: 0.5}
	pos, q := randCluster(rng, 30, center, 0.5)
	m := NewExpansion(p)
	for i := range pos {
		w.P2M(m, center, pos[i], q[i])
	}
	for trial := 0; trial < 10; trial++ {
		x := center.Add(randDir(rng).Scale(2 + 2*rng.Float64()))
		got := w.EvalMultipole(m, center, x)
		want := directPotential(pos, q, x)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("multipole eval: got %v want %v at %v", got, want, x)
		}
	}
}

func TestM2MPreservesField(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const p = 14
	w := NewWorkspace(p)
	childC := geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}
	parentC := geom.Vec3{}
	pos, q := randCluster(rng, 20, childC, 0.2)
	child := NewExpansion(p)
	for i := range pos {
		w.P2M(child, childC, pos[i], q[i])
	}
	parent := NewExpansion(p)
	w.M2M(parent, parentC, child, childC)
	for trial := 0; trial < 10; trial++ {
		x := parentC.Add(randDir(rng).Scale(3 + rng.Float64()))
		got := w.EvalMultipole(parent, parentC, x)
		want := directPotential(pos, q, x)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("M2M: got %v want %v at %v", got, want, x)
		}
	}
}

func TestM2LAndL2P(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const p = 16
	w := NewWorkspace(p)
	srcC := geom.Vec3{X: 4, Y: 0, Z: 0}
	tgtC := geom.Vec3{}
	pos, q := randCluster(rng, 20, srcC, 0.5)
	m := NewExpansion(p)
	for i := range pos {
		w.P2M(m, srcC, pos[i], q[i])
	}
	l := NewExpansion(p)
	w.M2L(l, tgtC, m, srcC)
	for trial := 0; trial < 10; trial++ {
		x := tgtC.Add(randDir(rng).Scale(0.5 * rng.Float64()))
		gotPhi, gotGrad := w.L2P(l, tgtC, x)
		wantPhi := directPotential(pos, q, x)
		wantGrad := directField(pos, q, x)
		if math.Abs(gotPhi-wantPhi) > 1e-5*math.Abs(wantPhi) {
			t.Fatalf("M2L+L2P phi: got %v want %v", gotPhi, wantPhi)
		}
		if gotGrad.Sub(wantGrad).Norm() > 1e-4*wantGrad.Norm() {
			t.Fatalf("M2L+L2P grad: got %v want %v", gotGrad, wantGrad)
		}
	}
}

func TestL2LPreservesField(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const p = 16
	w := NewWorkspace(p)
	srcC := geom.Vec3{X: 4, Y: 1, Z: -2}
	parentC := geom.Vec3{}
	childC := geom.Vec3{X: 0.25, Y: -0.25, Z: 0.25}
	pos, q := randCluster(rng, 20, srcC, 0.5)
	m := NewExpansion(p)
	for i := range pos {
		w.P2M(m, srcC, pos[i], q[i])
	}
	parent := NewExpansion(p)
	w.M2L(parent, parentC, m, srcC)
	child := NewExpansion(p)
	w.L2L(child, childC, parent, parentC)
	for trial := 0; trial < 10; trial++ {
		x := childC.Add(randDir(rng).Scale(0.2 * rng.Float64()))
		gotPhi, _ := w.L2P(child, childC, x)
		viaParent, _ := w.L2P(parent, parentC, x)
		wantPhi := directPotential(pos, q, x)
		if math.Abs(gotPhi-viaParent) > 1e-9*math.Abs(viaParent) {
			t.Fatalf("L2L inconsistent with parent eval: %v vs %v", gotPhi, viaParent)
		}
		if math.Abs(gotPhi-wantPhi) > 1e-5*math.Abs(wantPhi) {
			t.Fatalf("L2L: got %v want %v", gotPhi, wantPhi)
		}
	}
}

func TestP2LMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const p = 16
	w := NewWorkspace(p)
	tgtC := geom.Vec3{}
	pos, q := randCluster(rng, 15, geom.Vec3{X: 5}, 0.5)
	l := NewExpansion(p)
	for i := range pos {
		w.P2L(l, tgtC, pos[i], q[i])
	}
	for trial := 0; trial < 10; trial++ {
		x := tgtC.Add(randDir(rng).Scale(0.4 * rng.Float64()))
		got, _ := w.L2P(l, tgtC, x)
		want := directPotential(pos, q, x)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("P2L: got %v want %v", got, want)
		}
	}
}

func TestTruncationErrorDecaysWithOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	srcC := geom.Vec3{X: 4}
	pos, q := randCluster(rng, 10, srcC, 1.0)
	x := geom.Vec3{X: 0.5, Y: 0.5, Z: 0}
	want := directPotential(pos, q, x)
	prev := math.Inf(1)
	for _, p := range []int{2, 4, 8, 12} {
		w := NewWorkspace(p)
		m := NewExpansion(p)
		for i := range pos {
			w.P2M(m, srcC, pos[i], q[i])
		}
		l := NewExpansion(p)
		w.M2L(l, geom.Vec3{}, m, srcC)
		got, _ := w.L2P(l, geom.Vec3{}, x)
		err := math.Abs(got - want)
		if err > prev*1.05 {
			t.Fatalf("error did not decay with p: p=%d err=%v prev=%v", p, err, prev)
		}
		prev = err
	}
	if prev > 1e-6*math.Abs(want) {
		t.Fatalf("p=12 error too large: %v (phi=%v)", prev, want)
	}
}
