package expansion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"afmm/internal/geom"
)

// The translation operators are linear maps; linearity must hold to
// rounding for arbitrary coefficient vectors (not just physical ones).

func randExpansion(rng *rand.Rand, p int) Expansion {
	e := NewExpansion(p)
	for i := range e.C {
		e.C[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Enforce the Hermitian convention: m = 0 entries real.
	for n := 0; n <= p; n++ {
		idx := n * (n + 1) / 2
		e.C[idx] = complex(real(e.C[idx]), 0)
	}
	return e
}

func TestQuickM2LLinearity(t *testing.T) {
	const p = 6
	w := NewWorkspace(p)
	rng := rand.New(rand.NewSource(9))
	f := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 256
		b := float64(bRaw) / 256
		m1 := randExpansion(rng, p)
		m2 := randExpansion(rng, p)
		from := geom.Vec3{X: 3, Y: -1, Z: 2}
		to := geom.Vec3{}

		// a*M2L(m1) + b*M2L(m2)
		l1 := NewExpansion(p)
		l2 := NewExpansion(p)
		w.M2L(l1, to, m1, from)
		w.M2L(l2, to, m2, from)
		want := NewExpansion(p)
		for i := range want.C {
			want.C[i] = complex(a, 0)*l1.C[i] + complex(b, 0)*l2.C[i]
		}

		// M2L(a*m1 + b*m2)
		comb := NewExpansion(p)
		for i := range comb.C {
			comb.C[i] = complex(a, 0)*m1.C[i] + complex(b, 0)*m2.C[i]
		}
		got := NewExpansion(p)
		w.M2L(got, to, comb, from)

		scale := norm1(want.C) + 1
		return maxDiff(got.C, want.C) <= 1e-11*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRotatedOperatorsLinear(t *testing.T) {
	const p = 6
	w := NewWorkspace(p)
	rng := rand.New(rand.NewSource(10))
	f := func(aRaw int16) bool {
		a := float64(aRaw) / 256
		m := randExpansion(rng, p)
		from := geom.Vec3{X: 1, Y: 2, Z: -3}
		to := geom.Vec3{X: 0.1}

		l1 := NewExpansion(p)
		w.M2LRotated(l1, to, m, from)
		for i := range l1.C {
			l1.C[i] *= complex(a, 0)
		}
		scaled := NewExpansion(p)
		for i := range scaled.C {
			scaled.C[i] = complex(a, 0) * m.C[i]
		}
		l2 := NewExpansion(p)
		w.M2LRotated(l2, to, scaled, from)
		return maxDiff(l1.C, l2.C) <= 1e-11*(norm1(l1.C)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Hermitian preservation: operators applied to Hermitian inputs keep m = 0
// coefficients real (the invariant the packed storage relies on).
func TestOperatorsPreserveHermitianSymmetry(t *testing.T) {
	const p = 8
	w := NewWorkspace(p)
	rng := rand.New(rand.NewSource(11))
	m := randomMultipole(rng, p, geom.Vec3{X: 4}, 0.5)
	l := NewExpansion(p)
	w.M2L(l, geom.Vec3{}, m, geom.Vec3{X: 4})
	l2 := NewExpansion(p)
	w.L2L(l2, geom.Vec3{X: 0.2, Y: 0.1}, l, geom.Vec3{})
	m2 := NewExpansion(p)
	w.M2M(m2, geom.Vec3{X: 3.8}, m, geom.Vec3{X: 4})
	for _, e := range []Expansion{l, l2, m2} {
		for n := 0; n <= p; n++ {
			idx := n * (n + 1) / 2
			if math.Abs(imag(e.C[idx])) > 1e-12*(1+math.Abs(real(e.C[idx]))) {
				t.Fatalf("m=0 coefficient of degree %d not real: %v", n, e.C[idx])
			}
		}
	}
}
