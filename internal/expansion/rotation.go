package expansion

import (
	"math/cmplx"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// Rotation-accelerated ("point and shoot") translations: a translation
// along an arbitrary vector d becomes
//
//	rotate the expansion so d lies along +z  ->  translate along z  ->
//	rotate back,
//
// reducing the O(p^4) translation double sums to O(p^3): rotations cost
// one dense (2n+1)^2 product per degree and the axial translations couple
// only coefficients with equal order m.
//
// Basis bookkeeping: this package's harmonics relate to the
// quantum-normalized ones by Y_here^{nm} = sigma_m c_n Y_quantum^{nm} with
// sigma_m = (-1)^m for m >= 0 and 1 for m < 0 (no Condon-Shortley phase
// here) and a degree-only factor c_n that cancels. Coefficient vectors
// therefore rotate with sigma-conjugated Wigner matrices,
// G^n = diag(sigma) d^n diag(sigma), and z-rotations stay diagonal.

// rotWorkspace holds the reusable buffers for rotated operators.
type rotWorkspace struct {
	stack [][]float64  // Wigner stack, reused across calls
	buf1  []complex128 // packed coefficients, scratch
	buf2  []complex128
	rpow  []float64 // powers of 1/rho or rho
}

func newRotWorkspace(p int) *rotWorkspace {
	r := &rotWorkspace{
		buf1: make([]complex128, sphharm.PackedLen(p)),
		buf2: make([]complex128, sphharm.PackedLen(p)),
		rpow: make([]float64, 2*p+2),
	}
	r.stack = make([][]float64, p+1)
	for l := 0; l <= p; l++ {
		r.stack[l] = make([]float64, (2*l+1)*(2*l+1))
	}
	return r
}

// fillWignerStack computes d^l(beta) for l = 0..p into the pre-allocated
// stack (allocation-free).
func fillWignerStack(stack [][]float64, p int, beta float64) {
	WignerStackInto(stack, p, beta)
}

// rotateZ multiplies coefficient (n, m) by e^{i m phase} in place
// (m >= 0 packed storage; the Hermitian negative-m half follows by
// conjugation).
func rotateZ(p int, e []complex128, phase float64) {
	for m := 1; m <= p; m++ {
		f := cmplx.Exp(complex(0, float64(m)*phase))
		for n := m; n <= p; n++ {
			e[sphharm.Idx(n, m)] *= f
		}
	}
}

// rotateY applies the sigma-conjugated Wigner matrix of each degree:
//
//	out_n^{m'} = sigma_{m'} sum_m d*_{m'm} sigma_m in_n^m
//
// where d* is stack[n] or its transpose. Negative-m inputs come from the
// Hermitian symmetry of the packed storage.
func rotateY(p int, out, in []complex128, stack [][]float64, transpose bool) {
	for n := 0; n <= p; n++ {
		dim := 2*n + 1
		d := stack[n]
		for mp := 0; mp <= n; mp++ {
			var acc complex128
			for m := -n; m <= n; m++ {
				var w float64
				if transpose {
					w = d[(m+n)*dim+(mp+n)]
				} else {
					w = d[(mp+n)*dim+(m+n)]
				}
				if w == 0 {
					continue
				}
				w *= sigma(mp) * sigma(m)
				acc += complex(w, 0) * get(in[:], n, m)
			}
			out[sphharm.Idx(n, mp)] = acc
		}
	}
}

// sigma is the basis-conversion sign: (-1)^m for m >= 0, +1 for m < 0.
func sigma(m int) float64 {
	if m > 0 && m%2 != 0 {
		return -1
	}
	return 1
}

// M2LRotated is the O(p^3) equivalent of M2L: it accumulates into l the
// local expansion at `to` of the multipole o centered at `from`.
func (w *Workspace) M2LRotated(l Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	p := l.P
	r := w.rot
	d := from.Sub(to)
	rho, theta, phi := d.Spherical()
	fillWignerStack(r.stack, p, theta)

	// Forward frame change Q = Ry(-theta) Rz(-phi): phase e^{im phi},
	// then the transposed Wigner stack (d(-theta) = d(theta)^T).
	copy(r.buf1, o.C)
	rotateZ(p, r.buf1, phi)
	rotateY(p, r.buf2, r.buf1, r.stack, true)

	// Axial M2L along +z at distance rho:
	//   L_j^k = sum_n O_n^k (-1)^{|k|+j} A_n^k A_j^k (j+n)! / rho^{j+n+1}
	t := w.t
	inv := 1 / rho
	r.rpow[0] = inv
	for i := 1; i < len(r.rpow); i++ {
		r.rpow[i] = r.rpow[i-1] * inv
	}
	for j := 0; j <= p; j++ {
		sj := 1.0
		if j%2 == 1 {
			sj = -1
		}
		for k := 0; k <= j; k++ {
			sk := sj
			if k%2 == 1 {
				sk = -sk
			}
			ajk := t.Anm(j, k)
			var acc complex128
			for n := k; n <= p; n++ {
				c := sk * t.Anm(n, k) * ajk * t.Fact[j+n] * r.rpow[j+n]
				acc += complex(c, 0) * r.buf2[sphharm.Idx(n, k)]
			}
			r.buf1[sphharm.Idx(j, k)] = acc
		}
	}

	// Back rotation Q^{-1} = Rz(phi) Ry(theta): Wigner stack untransposed,
	// then phase e^{-im phi}; accumulate into l.
	rotateY(p, r.buf2, r.buf1, r.stack, false)
	rotateZ(p, r.buf2, -phi)
	for i := range l.C {
		l.C[i] += r.buf2[i]
	}
}

// M2MRotated is the O(p^3) equivalent of M2M (child multipole at `from`
// into parent at `to`).
func (w *Workspace) M2MRotated(m Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	p := m.P
	r := w.rot
	d := from.Sub(to)
	rho, theta, phi := d.Spherical()
	if rho == 0 {
		m.Add(o)
		return
	}
	fillWignerStack(r.stack, p, theta)
	copy(r.buf1, o.C)
	rotateZ(p, r.buf1, phi)
	rotateY(p, r.buf2, r.buf1, r.stack, true)

	// Axial M2M: M_j^k = sum_{n=0}^{j-|k|} O_{j-n}^k A_n^0 A_{j-n}^k rho^n / A_j^k
	t := w.t
	r.rpow[0] = 1
	for i := 1; i < len(r.rpow); i++ {
		r.rpow[i] = r.rpow[i-1] * rho
	}
	for j := p; j >= 0; j-- {
		for k := 0; k <= j; k++ {
			ajk := t.Anm(j, k)
			var acc complex128
			for n := 0; n <= j-k; n++ {
				c := t.Anm(n, 0) * t.Anm(j-n, k) * r.rpow[n] / ajk
				acc += complex(c, 0) * r.buf2[sphharm.Idx(j-n, k)]
			}
			r.buf1[sphharm.Idx(j, k)] = acc
		}
	}

	rotateY(p, r.buf2, r.buf1, r.stack, false)
	rotateZ(p, r.buf2, -phi)
	for i := range m.C {
		m.C[i] += r.buf2[i]
	}
}

// L2LRotated is the O(p^3) equivalent of L2L (parent local at `from` into
// child at `to`).
func (w *Workspace) L2LRotated(l Expansion, to geom.Vec3, o Expansion, from geom.Vec3) {
	p := l.P
	r := w.rot
	d := from.Sub(to)
	rho, theta, phi := d.Spherical()
	if rho == 0 {
		l.Add(o)
		return
	}
	fillWignerStack(r.stack, p, theta)
	copy(r.buf1, o.C)
	rotateZ(p, r.buf1, phi)
	rotateY(p, r.buf2, r.buf1, r.stack, true)

	// Axial L2L: L_j^k = sum_{n>=max(j,|k|)} O_n^k A_j^k rho^{n-j} / ((n-j)! A_n^k)
	t := w.t
	r.rpow[0] = 1
	for i := 1; i < len(r.rpow); i++ {
		r.rpow[i] = r.rpow[i-1] * rho
	}
	for j := 0; j <= p; j++ {
		for k := 0; k <= j; k++ {
			ajk := t.Anm(j, k)
			var acc complex128
			for n := j; n <= p; n++ {
				if k > n {
					continue
				}
				c := ajk * r.rpow[n-j] / (t.Fact[n-j] * t.Anm(n, k))
				acc += complex(c, 0) * r.buf2[sphharm.Idx(n, k)]
			}
			r.buf1[sphharm.Idx(j, k)] = acc
		}
	}

	rotateY(p, r.buf2, r.buf1, r.stack, false)
	rotateZ(p, r.buf2, -phi)
	for i := range l.C {
		l.C[i] += r.buf2[i]
	}
}
