package expansion

import (
	"math"
	"math/rand"
	"testing"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := math.Hypot(real(d), imag(d)); v > m {
			m = v
		}
	}
	return m
}

func norm1(a []complex128) float64 {
	var m float64
	for _, c := range a {
		m += math.Hypot(real(c), imag(c))
	}
	return m + 1e-300
}

// randomMultipole builds a multipole from random charges in a ball.
func randomMultipole(rng *rand.Rand, p int, center geom.Vec3, radius float64) Expansion {
	w := NewWorkspace(p)
	m := NewExpansion(p)
	for i := 0; i < 20; i++ {
		pos := center.Add(randDir(rng).Scale(radius * rng.Float64()))
		w.P2M(m, center, pos, rng.Float64()+0.5)
	}
	return m
}

// TestRotateZMatchesPhysicalRotation pins the z-rotation convention:
// physically rotating the charges by +gamma about the center's z-axis
// multiplies M_n^m by e^{-i m gamma}.
func TestRotateZMatchesPhysicalRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const p = 8
	w := NewWorkspace(p)
	center := geom.Vec3{X: 0.3, Y: -0.2, Z: 0.1}
	gamma := 0.77
	cg, sg := math.Cos(gamma), math.Sin(gamma)
	orig := NewExpansion(p)
	rot := NewExpansion(p)
	for i := 0; i < 15; i++ {
		d := randDir(rng).Scale(0.5 * rng.Float64())
		q := rng.Float64() + 0.5
		w.P2M(orig, center, center.Add(d), q)
		dr := geom.Vec3{X: cg*d.X - sg*d.Y, Y: sg*d.X + cg*d.Y, Z: d.Z}
		w.P2M(rot, center, center.Add(dr), q)
	}
	got := NewExpansion(p)
	copy(got.C, orig.C)
	rotateZ(p, got.C, -gamma)
	if d := maxDiff(got.C, rot.C); d > 1e-12*norm1(rot.C) {
		t.Fatalf("rotateZ convention wrong: diff %g", d)
	}
}

// TestRotateYMatchesPhysicalRotation pins the y-rotation (Wigner)
// convention: physically rotating the charges by Ry(beta) must equal
// applying the coefficient rotation for the active rotation Ry(beta),
// which in this implementation is rotateY with the untransposed stack at
// angle beta... the test asserts the exact mapping used by the pipeline:
// coefficients in the frame y = Ry(-beta) x are rotateY(transpose=true).
func TestRotateYMatchesPhysicalRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const p = 8
	w := NewWorkspace(p)
	center := geom.Vec3{}
	beta := 0.62
	cb, sb := math.Cos(beta), math.Sin(beta)
	orig := NewExpansion(p)
	rot := NewExpansion(p)
	for i := 0; i < 15; i++ {
		d := randDir(rng).Scale(0.5 * rng.Float64())
		q := rng.Float64() + 0.5
		w.P2M(orig, center, d, q)
		// Physically rotate the charge by Ry(beta).
		dr := geom.Vec3{X: cb*d.X + sb*d.Z, Y: d.Y, Z: -sb*d.X + cb*d.Z}
		w.P2M(rot, center, dr, q)
	}
	// Coefficients of the physically rotated distribution: the function is
	// f(Ry(beta)^{-1} x), i.e. the active rotation by Q = Ry(beta); the
	// pipeline's frame-change for "align d with z" uses the inverse, so
	// here the untransposed stack applies.
	stack := WignerStack(p, beta)
	got := make([]complex128, sphharm.PackedLen(p))
	rotateY(p, got, orig.C, stack, false)
	if d := maxDiff(got, rot.C); d > 1e-11*norm1(rot.C) {
		t.Fatalf("rotateY convention wrong: diff %g (rel %g)", d, d/norm1(rot.C))
	}
}

func TestM2LRotatedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []int{2, 4, 8, 12} {
		w := NewWorkspace(p)
		for trial := 0; trial < 10; trial++ {
			from := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
			to := from.Add(randDir(rng).Scale(3 + rng.Float64()))
			m := randomMultipole(rng, p, from, 0.5)
			lGen := NewExpansion(p)
			lRot := NewExpansion(p)
			w.M2L(lGen, to, m, from)
			w.M2LRotated(lRot, to, m, from)
			if d := maxDiff(lGen.C, lRot.C); d > 1e-10*norm1(lGen.C) {
				t.Fatalf("p=%d trial %d: rotated M2L differs by %g (rel %g)",
					p, trial, d, d/norm1(lGen.C))
			}
		}
	}
}

func TestM2LRotatedAxisAligned(t *testing.T) {
	// Degenerate geometry: translation exactly along +z and -z.
	rng := rand.New(rand.NewSource(4))
	const p = 8
	w := NewWorkspace(p)
	for _, dz := range []float64{4, -4} {
		from := geom.Vec3{X: 1, Y: 1, Z: 1}
		to := from.Add(geom.Vec3{Z: dz})
		m := randomMultipole(rng, p, from, 0.5)
		lGen := NewExpansion(p)
		lRot := NewExpansion(p)
		w.M2L(lGen, to, m, from)
		w.M2LRotated(lRot, to, m, from)
		if d := maxDiff(lGen.C, lRot.C); d > 1e-11*norm1(lGen.C) {
			t.Fatalf("dz=%v: rotated M2L differs by %g", dz, d)
		}
	}
}

func TestM2MRotatedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{2, 4, 8, 12} {
		w := NewWorkspace(p)
		for trial := 0; trial < 10; trial++ {
			from := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
			to := from.Add(randDir(rng).Scale(0.5 + rng.Float64()))
			m := randomMultipole(rng, p, from, 0.3)
			gGen := NewExpansion(p)
			gRot := NewExpansion(p)
			w.M2M(gGen, to, m, from)
			w.M2MRotated(gRot, to, m, from)
			if d := maxDiff(gGen.C, gRot.C); d > 1e-10*norm1(gGen.C) {
				t.Fatalf("p=%d trial %d: rotated M2M differs by %g (rel %g)",
					p, trial, d, d/norm1(gGen.C))
			}
		}
	}
}

func TestL2LRotatedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range []int{2, 4, 8, 12} {
		w := NewWorkspace(p)
		for trial := 0; trial < 10; trial++ {
			src := geom.Vec3{X: 5}
			m := randomMultipole(rng, p, src, 0.5)
			parent := geom.Vec3{}
			l := NewExpansion(p)
			w.M2L(l, parent, m, src)
			child := parent.Add(randDir(rng).Scale(0.3 * (rng.Float64() + 0.2)))
			gGen := NewExpansion(p)
			gRot := NewExpansion(p)
			w.L2L(gGen, child, l, parent)
			w.L2LRotated(gRot, child, l, parent)
			if d := maxDiff(gGen.C, gRot.C); d > 1e-10*norm1(gGen.C) {
				t.Fatalf("p=%d trial %d: rotated L2L differs by %g (rel %g)",
					p, trial, d, d/norm1(gGen.C))
			}
		}
	}
}

// BenchmarkM2LGeneric and BenchmarkM2LRotated quantify the O(p^4) -> O(p^3)
// crossover of the rotation-accelerated translation.
func BenchmarkM2LGeneric(b *testing.B) {
	for _, p := range []int{4, 8, 12, 16} {
		b.Run(orderName(p), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			w := NewWorkspace(p)
			from := geom.Vec3{X: 4}
			m := randomMultipole(rng, p, from, 0.5)
			l := NewExpansion(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.M2L(l, geom.Vec3{}, m, from)
			}
		})
	}
}

func BenchmarkM2LRotated(b *testing.B) {
	for _, p := range []int{4, 8, 12, 16} {
		b.Run(orderName(p), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			w := NewWorkspace(p)
			from := geom.Vec3{X: 3, Y: 2, Z: 1}
			m := randomMultipole(rng, p, from, 0.5)
			l := NewExpansion(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.M2LRotated(l, geom.Vec3{}, m, from)
			}
		})
	}
}

func orderName(p int) string {
	return "p" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}
