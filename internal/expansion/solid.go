// Package expansion implements the multipole and local expansions of the
// 3-D Laplace kernel and the six FMM operators (P2M, M2M, M2L, L2L, L2P
// plus multipole evaluation) using Greengard's translation theorems.
//
// Conventions. With Y_n^m in the sphharm normalization,
//
//	multipole: Phi(x) = sum_{n,m} M_n^m * S_n^m(x - c),  S_n^m = Y_n^m / r^{n+1}
//	local:     Phi(x) = sum_{n,m} L_n^m * R_n^m(x - c),  R_n^m = r^n Y_n^m
//
// Potentials are real, so M_n^{-m} = conj(M_n^m) and likewise for L; only
// the m >= 0 triangle is stored (packed layout sphharm.Idx).
package expansion

import (
	"math"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// Regular fills out[Idx(n,m)] with the regular solid harmonics
// R_n^m(v) = r^n Y_n^m for 0 <= m <= n <= deg. out must have length
// >= PackedLen(deg).
func Regular(deg int, v geom.Vec3, out []complex128) {
	x, y, z := v.X, v.Y, v.Z
	r2 := x*x + y*y + z*z
	xy := complex(x, y)
	out[0] = 1
	for m := 0; m <= deg; m++ {
		mm := sphharm.Idx(m, m)
		if m > 0 {
			// R_m^m = sqrt((2m-1)/(2m)) (x+iy) R_{m-1}^{m-1}
			c := math.Sqrt(float64(2*m-1) / float64(2*m))
			out[mm] = complex(c, 0) * xy * out[sphharm.Idx(m-1, m-1)]
		}
		prev2 := complex(0, 0) // R_{n-2}^m
		prev1 := out[mm]       // R_{n-1}^m
		for n := m + 1; n <= deg; n++ {
			a := float64(2*n-1) / math.Sqrt(float64(n-m)*float64(n+m))
			b := math.Sqrt(float64(n+m-1) * float64(n-m-1) /
				(float64(n-m) * float64(n+m)))
			cur := complex(a*z, 0)*prev1 - complex(b*r2, 0)*prev2
			out[sphharm.Idx(n, m)] = cur
			prev2, prev1 = prev1, cur
		}
	}
}

// RegularGrad fills val with R_n^m(v) and gx, gy, gz with the Cartesian
// partial derivatives of R_n^m at v, via differentiated recurrences. All
// output slices must have length >= PackedLen(deg). The gradients are exact
// (R_n^m are harmonic polynomials), so there are no polar singularities.
func RegularGrad(deg int, v geom.Vec3, val, gx, gy, gz []complex128) {
	x, y, z := v.X, v.Y, v.Z
	r2 := x*x + y*y + z*z
	xy := complex(x, y)
	val[0], gx[0], gy[0], gz[0] = 1, 0, 0, 0
	for m := 0; m <= deg; m++ {
		mm := sphharm.Idx(m, m)
		if m > 0 {
			pm := sphharm.Idx(m-1, m-1)
			c := complex(math.Sqrt(float64(2*m-1)/float64(2*m)), 0)
			val[mm] = c * xy * val[pm]
			gx[mm] = c * (val[pm] + xy*gx[pm])
			gy[mm] = c * (complex(0, 1)*val[pm] + xy*gy[pm])
			gz[mm] = c * xy * gz[pm]
		}
		var v2, x2, y2, z2 complex128 // degree n-2 values/grads
		v1, x1, y1, z1 := val[mm], gx[mm], gy[mm], gz[mm]
		for n := m + 1; n <= deg; n++ {
			a := complex(float64(2*n-1)/math.Sqrt(float64(n-m)*float64(n+m)), 0)
			b := complex(math.Sqrt(float64(n+m-1)*float64(n-m-1)/
				(float64(n-m)*float64(n+m))), 0)
			i := sphharm.Idx(n, m)
			val[i] = a*complex(z, 0)*v1 - b*complex(r2, 0)*v2
			gx[i] = a*complex(z, 0)*x1 - b*(complex(2*x, 0)*v2+complex(r2, 0)*x2)
			gy[i] = a*complex(z, 0)*y1 - b*(complex(2*y, 0)*v2+complex(r2, 0)*y2)
			gz[i] = a*(v1+complex(z, 0)*z1) - b*(complex(2*z, 0)*v2+complex(r2, 0)*z2)
			v2, x2, y2, z2 = v1, x1, y1, z1
			v1, x1, y1, z1 = val[i], gx[i], gy[i], gz[i]
		}
	}
}

// Irregular fills out[Idx(n,m)] with the irregular solid harmonics
// S_n^m(v) = Y_n^m / r^{n+1} for 0 <= m <= n <= deg. v must be nonzero.
func Irregular(deg int, v geom.Vec3, out []complex128) {
	x, y, z := v.X, v.Y, v.Z
	r2 := x*x + y*y + z*z
	inv := 1 / r2
	xy := complex(x, y)
	out[0] = complex(math.Sqrt(inv), 0) // 1/r
	for m := 0; m <= deg; m++ {
		mm := sphharm.Idx(m, m)
		if m > 0 {
			c := math.Sqrt(float64(2*m-1) / float64(2*m))
			out[mm] = complex(c*inv, 0) * xy * out[sphharm.Idx(m-1, m-1)]
		}
		prev2 := complex(0, 0)
		prev1 := out[mm]
		for n := m + 1; n <= deg; n++ {
			// Note: for S the standard three-term coefficients differ
			// from R; derived from the same Legendre recurrence:
			// S_n^m = ((2n-1) z S_{n-1}^m - c2 S_{n-2}^m) / (c1 r^2)
			// with the normalization folded in below.
			a := float64(2*n-1) / math.Sqrt(float64(n-m)*float64(n+m))
			b := math.Sqrt(float64(n+m-1) * float64(n-m-1) /
				(float64(n-m) * float64(n+m)))
			cur := complex(inv, 0) * (complex(a*z, 0)*prev1 - complex(b, 0)*prev2)
			out[sphharm.Idx(n, m)] = cur
			prev2, prev1 = prev1, cur
		}
	}
}

// get returns coefficient (n, m) of a packed Hermitian expansion, handling
// negative m via conjugation.
func get(e []complex128, n, m int) complex128 {
	if m >= 0 {
		return e[sphharm.Idx(n, m)]
	}
	c := e[sphharm.Idx(n, -m)]
	return complex(real(c), -imag(c))
}
