package expansion

import (
	"math/cmplx"
	"sort"

	"afmm/internal/geom"
	"afmm/internal/sphharm"
)

// M2L translation-class tables: the per-direction setup M2LBatch hoists
// into its per-workspace cache — Wigner stack, azimuthal phases, radial
// powers — precomputed per translation class (see octree.M2LClassSchedule)
// into a table shared read-only by every worker.
//
// The operator factors by what each piece actually depends on:
//
//   - the rotation setup (Wigner d-matrices and e^{im phi} phases) depends
//     only on the direction's angles (theta, phi). Angles recur massively
//     across classes — the same lattice offset at every level and scale
//     shares them — so rotation ops are built once per distinct angle pair,
//     for the top pair-weighted angles up to a cap;
//   - the radial powers rho^-(j+n+1) are per class but tiny (2p+2 floats);
//   - the axial coefficients sk * A_n^k * A_j^k * (j+n)! are
//     direction-independent and stored once per table; the inner loop
//     multiplies them by the class's radial power.
//
// Every folded factor is an exact product in the same order as the
// uncached path evaluates it (the basis-conversion signs are ±1, so
// folding them into the Wigner entries is exact), which keeps table
// translations bit-identical to M2LBatch. Classes whose angles fall
// outside the rotation cap carry rot == -1 and are translated through the
// per-workspace cache path, which is the same bit-identical arithmetic.
type M2LTable struct {
	p   int
	axb []float64 // sk * Anm(n,k) * Anm(j,k) * Fact[j+n], flattened (j,k,n)
	ops []M2LOp
	// rots holds the shared rotation setups; rotAng their angles, in the
	// deterministic popularity order Plan assigned.
	rots   []m2lRot
	rotAng []angKey
	// classAng is per-class plan scratch (angle of each class direction).
	classAng []angKey
}

// M2LOp is the per-class part of the operator.
type M2LOp struct {
	// rot indexes the shared rotation setup, or -1 when the class's angle
	// was not popular enough for the cap (fallback to the workspace cache).
	rot int32
	// rpow holds rho^-(i+1), i = 0..2p, exactly as the uncached path
	// computes them.
	rpow []float64
}

// m2lRot is the rotation setup shared by all classes with one angle pair.
type m2lRot struct {
	stack [][]float64  // pre-signed Wigner d^l(theta), l = 0..p
	zph   []complex128 // e^{i m phi}, m = 0..p
}

type angKey struct{ theta, phi float64 }

// NewM2LTable creates an empty table for order-p translations.
func NewM2LTable(p int) *M2LTable { return &M2LTable{p: p} }

// Order returns the expansion order the table serves.
func (tb *M2LTable) Order() int { return tb.p }

// Len returns the number of classes currently in the table.
func (tb *M2LTable) Len() int { return len(tb.ops) }

// Rotations returns the number of shared rotation setups the last Plan
// kept (the expensive part of the table).
func (tb *M2LTable) Rotations() int { return len(tb.rots) }

// HasRot reports whether class c translates through a precomputed rotation
// setup (false means the class falls back to the per-workspace cache).
func (tb *M2LTable) HasRot(c int) bool { return tb.ops[c].rot >= 0 }

// axialLen is the flattened length of the (j, k, n) axial coefficient
// loop: j = 0..p, k = 0..j, n = k..p.
func axialLen(p int) int {
	n := 0
	for j := 0; j <= p; j++ {
		for k := 0; k <= j; k++ {
			n += p - k + 1
		}
	}
	return n
}

func (tb *M2LTable) buildAxialBase() {
	p := tb.p
	t := sphharm.NewTables(p)
	tb.axb = make([]float64, axialLen(p))
	idx := 0
	for j := 0; j <= p; j++ {
		sj := 1.0
		if j%2 == 1 {
			sj = -1
		}
		for k := 0; k <= j; k++ {
			sk := sj
			if k%2 == 1 {
				sk = -sk
			}
			ajk := t.Anm(j, k)
			for n := k; n <= p; n++ {
				// Exactly the leading factors of the uncached per-term
				// expression, in its evaluation order; the radial power is
				// applied per class in the inner loop.
				tb.axb[idx] = sk * t.Anm(n, k) * ajk * t.Fact[j+n]
				idx++
			}
		}
	}
}

// Plan sizes the table for the class directions, fills the cheap per-class
// radial parts, and elects the rotation setups: distinct angle pairs
// ranked by their summed pair weight, keeping the top rotCap. It returns
// the number of rotation setups to build; the caller then builds them
// (concurrently, if desired) with BuildRotRange before first use.
// pairsPerClass weights the ranking (the schedule's per-class pair
// counts); nil weights every class equally.
func (tb *M2LTable) Plan(dirs []geom.Vec3, pairsPerClass []int64, rotCap int) int {
	if tb.axb == nil {
		tb.buildAxialBase()
	}
	p := tb.p
	n := len(dirs)
	if cap(tb.ops) < n {
		ops := make([]M2LOp, n)
		copy(ops, tb.ops)
		tb.ops = ops
	} else {
		tb.ops = tb.ops[:n]
	}
	if cap(tb.classAng) < n {
		tb.classAng = make([]angKey, n)
	} else {
		tb.classAng = tb.classAng[:n]
	}
	weight := make(map[angKey]int64, 1024)
	for ci, d := range dirs {
		rho, theta, phi := d.Spherical()
		op := &tb.ops[ci]
		if op.rpow == nil {
			op.rpow = make([]float64, 2*p+2)
		}
		inv := 1 / rho
		op.rpow[0] = inv
		for i := 1; i < len(op.rpow); i++ {
			op.rpow[i] = op.rpow[i-1] * inv
		}
		op.rot = -1
		a := angKey{theta, phi}
		tb.classAng[ci] = a
		w := int64(1)
		if pairsPerClass != nil {
			w = pairsPerClass[ci]
		}
		weight[a] += w
	}
	type angWeight struct {
		k angKey
		w int64
	}
	ranked := make([]angWeight, 0, len(weight))
	for k, w := range weight {
		ranked = append(ranked, angWeight{k, w})
	}
	// Deterministic order: weight descending, angles as tie-break (map
	// iteration order must not leak into the table layout).
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		if ranked[i].k.theta != ranked[j].k.theta {
			return ranked[i].k.theta < ranked[j].k.theta
		}
		return ranked[i].k.phi < ranked[j].k.phi
	})
	if rotCap > 0 && len(ranked) > rotCap {
		ranked = ranked[:rotCap]
	}
	if cap(tb.rots) < len(ranked) {
		rots := make([]m2lRot, len(ranked))
		copy(rots, tb.rots)
		tb.rots = rots
	} else {
		tb.rots = tb.rots[:len(ranked)]
	}
	if cap(tb.rotAng) < len(ranked) {
		tb.rotAng = make([]angKey, len(ranked))
	} else {
		tb.rotAng = tb.rotAng[:len(ranked)]
	}
	idx := make(map[angKey]int32, len(ranked))
	for i, a := range ranked {
		idx[a.k] = int32(i)
		tb.rotAng[i] = a.k
	}
	for ci := range tb.ops {
		if ri, ok := idx[tb.classAng[ci]]; ok {
			tb.ops[ci].rot = ri
		}
	}
	return len(tb.rots)
}

// BuildRotRange fills rotation setups [lo, hi) from their planned angles.
// Distinct ranges may build concurrently (each call allocates its own
// scratch).
func (tb *M2LTable) BuildRotRange(lo, hi int) {
	p := tb.p
	raw := make([][]float64, p+1)
	for l := 0; l <= p; l++ {
		raw[l] = make([]float64, (2*l+1)*(2*l+1))
	}
	for ri := lo; ri < hi; ri++ {
		rot := &tb.rots[ri]
		if rot.stack == nil {
			rot.stack = make([][]float64, p+1)
			for l := 0; l <= p; l++ {
				rot.stack[l] = make([]float64, (2*l+1)*(2*l+1))
			}
			rot.zph = make([]complex128, p+1)
		}
		a := tb.rotAng[ri]

		// Pre-signed Wigner stack: entry (m', m) times sigma(m') sigma(m).
		// The sign matrix is symmetric, so the same stack serves the
		// transposed forward rotation and the untransposed back rotation.
		WignerStackInto(raw, p, a.theta)
		for n := 0; n <= p; n++ {
			dim := 2*n + 1
			src, dst := raw[n], rot.stack[n]
			for i := 0; i < dim; i++ {
				si := sigma(i - n)
				for j := 0; j < dim; j++ {
					dst[i*dim+j] = src[i*dim+j] * si * sigma(j-n)
				}
			}
		}
		for m := 0; m <= p; m++ {
			rot.zph[m] = cmplx.Exp(complex(0, float64(m)*a.phi))
		}
	}
}

// rotateYSigned applies a pre-signed Wigner stack (signs already folded
// into the matrix entries): identical to rotateY minus the per-entry sigma
// products. The w == 0 skip is kept so the accumulation order over nonzero
// entries matches rotateY bit-for-bit.
func rotateYSigned(p int, out, in []complex128, stack [][]float64, transpose bool) {
	for n := 0; n <= p; n++ {
		dim := 2*n + 1
		d := stack[n]
		for mp := 0; mp <= n; mp++ {
			var acc complex128
			for m := -n; m <= n; m++ {
				var w float64
				if transpose {
					w = d[(m+n)*dim+(mp+n)]
				} else {
					w = d[(mp+n)*dim+(m+n)]
				}
				if w == 0 {
					continue
				}
				acc += complex(w, 0) * get(in[:], n, m)
			}
			out[sphharm.Idx(n, mp)] = acc
		}
	}
}

// M2LBatchTable is M2LBatch driven by a prebuilt class table: classes[i]
// is the translation class of srcs[i] (from the octree class schedule),
// and to is the target center (used only by the fallback for classes
// outside the rotation cap). Results are bit-identical to M2LBatch for
// the same sources.
func (w *Workspace) M2LBatchTable(l Expansion, to geom.Vec3, srcs []M2LSource, classes []int32, tb *M2LTable) {
	p := l.P
	r := w.rot
	axb := tb.axb
	for i := range srcs {
		op := &tb.ops[classes[i]]
		if op.rot < 0 {
			// Rare angle: the per-workspace cache path, same arithmetic.
			w.M2LBatch(l, to, srcs[i:i+1])
			continue
		}
		rot := &tb.rots[op.rot]

		// Forward frame change: phase e^{im phi}, transposed stack.
		copy(r.buf1, srcs[i].M.C)
		rotateZCached(p, r.buf1, rot.zph, false)
		rotateYSigned(p, r.buf2, r.buf1, rot.stack, true)

		// Axial M2L along +z: global coefficient base times the class's
		// radial power, in the uncached path's factor order.
		rpow := op.rpow
		idx := 0
		for j := 0; j <= p; j++ {
			for k := 0; k <= j; k++ {
				var acc complex128
				for n := k; n <= p; n++ {
					acc += complex(axb[idx]*rpow[j+n], 0) * r.buf2[sphharm.Idx(n, k)]
					idx++
				}
				r.buf1[sphharm.Idx(j, k)] = acc
			}
		}

		// Back rotation: untransposed stack, conjugate phases; accumulate.
		rotateYSigned(p, r.buf2, r.buf1, rot.stack, false)
		rotateZCached(p, r.buf2, rot.zph, true)
		for ci := range l.C {
			l.C[ci] += r.buf2[ci]
		}
	}
}
