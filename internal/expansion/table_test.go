package expansion

import (
	"math/rand"
	"sync"
	"testing"

	"afmm/internal/geom"
)

// tableFor builds a table + class indices for a source batch: one class
// per distinct direction, exactly as the octree schedule would key them.
// rotCap limits the precomputed rotation setups (0 = unlimited), so tests
// can force the fallback path for tail classes.
func tableFor(p int, to geom.Vec3, srcs []M2LSource, rotCap int) (*M2LTable, []int32) {
	byDir := map[geom.Vec3]int32{}
	var dirs []geom.Vec3
	classes := make([]int32, len(srcs))
	for i, s := range srcs {
		d := s.From.Sub(to)
		c, ok := byDir[d]
		if !ok {
			c = int32(len(dirs))
			byDir[d] = c
			dirs = append(dirs, d)
		}
		classes[i] = c
	}
	tb := NewM2LTable(p)
	nrot := tb.Plan(dirs, nil, rotCap)
	tb.BuildRotRange(0, nrot)
	return tb, classes
}

// TestM2LBatchTableBitIdentical is the central kernel-speed invariant:
// table-driven translations must equal the per-direction-cached batch
// bit-for-bit, over random expansions, orders, and direction sets
// (repeated V-list-like offsets plus arbitrary fresh ones).
func TestM2LBatchTableBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, p := range []int{2, 3, 5, 8, 12} {
		to := geom.Vec3{X: 0.3, Y: -0.1, Z: 0.2}
		var srcs []M2LSource
		lattice := []geom.Vec3{
			{X: 3, Y: 0, Z: 0}, {X: 0, Y: 3, Z: 1.5}, {X: -3, Y: 3, Z: -3},
			{X: 2, Y: -2, Z: 2},
		}
		for rep := 0; rep < 3; rep++ {
			for _, d := range lattice {
				srcs = append(srcs, M2LSource{M: randomExpansion(p, rng), From: to.Add(d)})
			}
		}
		for i := 0; i < 6; i++ {
			srcs = append(srcs, M2LSource{
				M:    randomExpansion(p, rng),
				From: to.Add(geom.Vec3{X: 3 + rng.Float64(), Y: -2 + rng.Float64(), Z: 2 + rng.Float64()}),
			})
		}
		// Full table, and a capped table that forces the fallback path for
		// the less popular angles — both must be bit-identical to M2LBatch.
		for _, rotCap := range []int{0, 3} {
			tb, classes := tableFor(p, to, srcs, rotCap)

			got := NewExpansion(p)
			NewWorkspace(p).M2LBatchTable(got, to, srcs, classes, tb)

			want := NewExpansion(p)
			NewWorkspace(p).M2LBatch(want, to, srcs)

			for i := range got.C {
				if got.C[i] != want.C[i] {
					t.Fatalf("p=%d rotCap=%d: coefficient %d differs: table %v vs batch %v",
						p, rotCap, i, got.C[i], want.C[i])
				}
			}
		}
	}
}

// TestM2LBatchTableRandomTrees fuzzes the bit-identity over many random
// batch shapes: random direction counts, random repeats, random nonzero
// accumulator seeds.
func TestM2LBatchTableRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const p = 6
	for trial := 0; trial < 50; trial++ {
		to := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		nd := 1 + rng.Intn(8)
		dirs := make([]geom.Vec3, nd)
		for i := range dirs {
			// Well-separated offsets, as the MAC guarantees.
			dirs[i] = geom.Vec3{
				X: (2 + rng.Float64()*3) * float64(1-2*rng.Intn(2)),
				Y: (2 + rng.Float64()*3) * float64(1-2*rng.Intn(2)),
				Z: (2 + rng.Float64()*3) * float64(1-2*rng.Intn(2)),
			}
		}
		var srcs []M2LSource
		for i := 0; i < 1+rng.Intn(20); i++ {
			srcs = append(srcs, M2LSource{
				M:    randomExpansion(p, rng),
				From: to.Add(dirs[rng.Intn(nd)]),
			})
		}
		tb, classes := tableFor(p, to, srcs, 1+rng.Intn(nd+2))

		got := NewExpansion(p)
		want := NewExpansion(p)
		for i := range got.C {
			c := complex(rng.NormFloat64(), rng.NormFloat64())
			got.C[i] = c
			want.C[i] = c
		}
		NewWorkspace(p).M2LBatchTable(got, to, srcs, classes, tb)
		NewWorkspace(p).M2LBatch(want, to, srcs)
		for i := range got.C {
			if got.C[i] != want.C[i] {
				t.Fatalf("trial %d: coefficient %d differs: %v vs %v",
					trial, i, got.C[i], want.C[i])
			}
		}
	}
}

// TestM2LTableConcurrentBuildAndUse builds ranges concurrently and then
// consumes the table from several workspaces at once (the production
// access pattern: parallel build, read-only shared use).
func TestM2LTableConcurrentBuildAndUse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const p = 5
	to := geom.Vec3{}
	var dirs []geom.Vec3
	for i := 0; i < 64; i++ {
		dirs = append(dirs, geom.Vec3{
			X: 3 + rng.Float64(), Y: -3 - rng.Float64(), Z: 2 + rng.Float64(),
		})
	}
	tb := NewM2LTable(p)
	nrot := tb.Plan(dirs, nil, 0)
	var wg sync.WaitGroup
	for lo := 0; lo < nrot; lo += 16 {
		hi := lo + 16
		if hi > nrot {
			hi = nrot
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			tb.BuildRotRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()

	var srcs []M2LSource
	var classes []int32
	for i := 0; i < 40; i++ {
		c := rng.Intn(len(dirs))
		srcs = append(srcs, M2LSource{M: randomExpansion(p, rng), From: to.Add(dirs[c])})
		classes = append(classes, int32(c))
	}
	want := NewExpansion(p)
	NewWorkspace(p).M2LBatch(want, to, srcs)

	var uwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		uwg.Add(1)
		go func() {
			defer uwg.Done()
			got := NewExpansion(p)
			NewWorkspace(p).M2LBatchTable(got, to, srcs, classes, tb)
			for i := range got.C {
				if got.C[i] != want.C[i] {
					t.Errorf("coefficient %d differs under concurrent use", i)
					return
				}
			}
		}()
	}
	uwg.Wait()
}
