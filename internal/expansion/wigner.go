package expansion

import "math"

// Wigner small-d matrices, used by the rotation-accelerated ("point and
// shoot") translation operators: a translation along an arbitrary vector
// becomes rotate -> translate along z -> rotate back, turning the O(p^4)
// translation double sum into O(p^3) work.
//
// A stack holds d^l_{m'm}(beta) in the standard quantum-mechanics (Sakurai)
// convention for l = 0..p, each as a dense (2l+1)x(2l+1) row-major matrix
// indexed (m'+l)*(2l+1) + (m+l).
//
// Construction is O(p^3): the interior of each degree comes from the
// three-term recurrence of Blanco, Florez & Bermejo (1997); the extreme
// rows/columns (|m'| = l or |m| = l) from the closed form of d^l_{l,m} and
// the symmetries d_{m'm} = (-1)^{m'-m} d_{m m'} = d_{-m,-m'}. The explicit
// factorial sum (wignerdExplicit, in the tests) is the reference.

// WignerStack computes d^l(beta) for l = 0..p, allocating the stack.
func WignerStack(p int, beta float64) [][]float64 {
	stack := make([][]float64, p+1)
	for l := 0; l <= p; l++ {
		stack[l] = make([]float64, (2*l+1)*(2*l+1))
	}
	WignerStackInto(stack, p, beta)
	return stack
}

// WignerStackInto fills pre-allocated per-degree matrices (allocation-free
// hot path for the rotated translation operators).
func WignerStackInto(stack [][]float64, p int, beta float64) {
	c := math.Cos(beta)
	ch := math.Cos(beta / 2)
	sh := math.Sin(beta / 2)
	s := math.Sin(beta)
	stack[0][0] = 1
	if p == 0 {
		return
	}
	copy(stack[1], []float64{
		ch * ch, s / math.Sqrt2, sh * sh,
		-s / math.Sqrt2, c, s / math.Sqrt2,
		sh * sh, -s / math.Sqrt2, ch * ch,
	})
	get := func(l, mp, m int) float64 {
		if mp < -l || mp > l || m < -l || m > l {
			return 0
		}
		return stack[l][(mp+l)*(2*l+1)+(m+l)]
	}
	for l := 2; l <= p; l++ {
		dim := 2*l + 1
		dl := stack[l]
		fl := float64(l)
		// Interior (|m'|,|m| <= l-1): three-term recurrence in l. The
		// d^{l-2} term's coefficient vanishes exactly where that entry
		// is out of range, so the formula is uniformly valid here.
		for mp := -(l - 1); mp <= l-1; mp++ {
			for m := -(l - 1); m <= l-1; m++ {
				fmp, fm := float64(mp), float64(m)
				denom := math.Sqrt((fl*fl - fmp*fmp) * (fl*fl - fm*fm))
				a := fl * (2*fl - 1) / denom
				b := c - fmp*fm/(fl*(fl-1))
				coef2 := math.Sqrt(((fl-1)*(fl-1)-fmp*fmp)*((fl-1)*(fl-1)-fm*fm)) /
					((fl - 1) * (2*fl - 1))
				dl[(mp+l)*dim+(m+l)] = a * (b*get(l-1, mp, m) - coef2*get(l-2, mp, m))
			}
		}
		// Extreme row m' = l: d^l_{l,m} = C(l,m) ch^{l+m} (-sh)^{l-m},
		// C(l,m) = sqrt((2l)! / ((l+m)!(l-m)!)).
		for m := -l; m <= l; m++ {
			v := math.Sqrt(centralBinom(l, m)) *
				intPow(ch, l+m) * intPow(-sh, l-m)
			dl[(l+l)*dim+(m+l)] = v
			// Column m = l: d_{m',l} = (-1)^{m'-l} d_{l,m'}.
			dl[(m+l)*dim+(l+l)] = signPow(m-l) * v
			// Row m' = -l: d_{-l,m} = (-1)^{l+m} d_{l,-m}.
			dl[(0)*dim+(-m+l)] = signPow(l+m) * v // here v = d_{l,m}; -m column
			// Column m = -l: d_{m',-l} = d_{l,-m'}.
			dl[(-m+l)*dim+(0)] = v // d_{-m', -l} with m' = -m  => d_{l, m}
		}
	}
}

// centralBinom returns (2l)! / ((l+m)!(l-m)!), computed via log-gamma for
// range safety.
func centralBinom(l, m int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return math.Exp(lg(2*l) - lg(l+m) - lg(l-m))
}

// intPow returns x^k for small non-negative integer k, preserving exact
// zeros (math.Pow(0, 0) conventions are avoided).
func intPow(x float64, k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= x
	}
	return v
}

func signPow(k int) float64 {
	if k%2 != 0 {
		return -1
	}
	return 1
}
