package expansion

import (
	"math"
	"math/rand"
	"testing"
)

// wignerdExplicit evaluates d^j_{m'm}(beta) by Wigner's explicit factorial
// sum (Sakurai convention) — the slow reference the fast recurrence must
// match.
func wignerdExplicit(j, mp, m int, beta float64) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	ch := math.Cos(beta / 2)
	sh := math.Sin(beta / 2)
	lo := 0
	if m-mp > lo {
		lo = m - mp
	}
	hi := j + m
	if j-mp < hi {
		hi = j - mp
	}
	var sum float64
	for s := lo; s <= hi; s++ {
		logc := 0.5*(lg(j+m)+lg(j-m)+lg(j+mp)+lg(j-mp)) -
			lg(j+m-s) - lg(s) - lg(mp-m+s) - lg(j-mp-s)
		term := math.Exp(logc) *
			math.Pow(ch, float64(2*j+m-mp-2*s)) *
			math.Pow(sh, float64(mp-m+2*s))
		if (mp-m+s)%2 != 0 && (mp-m+s)%2 != -0 {
		}
		if ((mp-m+s)%2+2)%2 == 1 {
			term = -term
		}
		sum += term
	}
	return sum
}

func TestWignerStackMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		beta := rng.Float64()*math.Pi*0.98 + 0.01
		const p = 14
		stack := WignerStack(p, beta)
		for l := 0; l <= p; l++ {
			dim := 2*l + 1
			for mp := -l; mp <= l; mp++ {
				for m := -l; m <= l; m++ {
					got := stack[l][(mp+l)*dim+(m+l)]
					want := wignerdExplicit(l, mp, m, beta)
					if math.Abs(got-want) > 1e-10 {
						t.Fatalf("d^%d_{%d,%d}(%v) = %v, want %v",
							l, mp, m, beta, got, want)
					}
				}
			}
		}
	}
}

func TestWignerOrthogonality(t *testing.T) {
	// Each d^l is orthogonal: d^l (d^l)^T = I.
	const p = 12
	stack := WignerStack(p, 0.7)
	for l := 0; l <= p; l++ {
		dim := 2*l + 1
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				var dot float64
				for k := 0; k < dim; k++ {
					dot += stack[l][i*dim+k] * stack[l][j*dim+k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-11 {
					t.Fatalf("l=%d: row %d . row %d = %v", l, i, j, dot)
				}
			}
		}
	}
}

func TestWignerIdentityAtZero(t *testing.T) {
	stack := WignerStack(10, 0)
	for l := 0; l <= 10; l++ {
		dim := 2*l + 1
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(stack[l][i*dim+j]-want) > 1e-13 {
					t.Fatalf("d^%d(0) not identity at (%d,%d)", l, i, j)
				}
			}
		}
	}
}
