package experiments

import "testing"

// TestExperimentsDeterministic: the same seed must reproduce experiment
// outputs bit-for-bit — the property that makes EXPERIMENTS.md's recorded
// numbers regenerable.
func TestExperimentsDeterministic(t *testing.T) {
	p := Params{N: 4000, Seed: 42}
	a := Fig3(p)
	b := Fig3(p)
	if len(a) != len(b) {
		t.Fatal("sweep lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fig3 point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c1 := Cluster(Params{N: 4000, Seed: 42, GPUs: 1}, 4)
	c2 := Cluster(Params{N: 4000, Seed: 42, GPUs: 1}, 4)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("cluster point %d differs", i)
		}
	}
}
