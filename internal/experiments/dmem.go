package experiments

import (
	"runtime"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/dmem"
	"afmm/internal/fault"
	"afmm/internal/vcpu"
)

// DmemScalePoint is one node count in a strong- or weak-scaling sweep of
// the simulated cluster (the alpha-beta-priced decomposition, not the
// goroutine runtime — scaling curves need node counts past the host's
// core count).
type DmemScalePoint struct {
	Nodes  int `json:"nodes"`
	NTotal int `json:"n_total"`
	// StepTime is the modeled makespan: slowest alive node's compute plus
	// unhidden communication, seconds.
	StepTime float64 `json:"step_time"`
	// Speedup is T(1 node)/T(this) for strong scaling; for weak scaling
	// it is T(1)/T(this) at proportional N (ideal = 1.0).
	Speedup   float64 `json:"speedup"`
	Imbalance float64 `json:"imbalance"`
	CommBytes int64   `json:"comm_bytes"`
	// HiddenFrac is the fraction of total communication time overlapped
	// with local near-field work (the halo-hiding schedule).
	HiddenFrac float64 `json:"hidden_frac"`
}

// DmemSkewResult compares static equal-count ranges against the
// cost-driven repartitioner on a skewed (two-cluster) distribution over
// a multi-step run.
type DmemSkewResult struct {
	N     int `json:"n"`
	Nodes int `json:"nodes"`
	Steps int `json:"steps"`
	// StaticTime / CostTime are total modeled run times (seconds) without
	// and with cost-driven repartitioning; Margin = StaticTime/CostTime.
	StaticTime      float64 `json:"static_time"`
	CostTime        float64 `json:"cost_time"`
	Margin          float64 `json:"margin"`
	Repartitions    int     `json:"repartitions"`
	StaticImbalance float64 `json:"static_imbalance"`
	CostImbalance   float64 `json:"cost_imbalance"`
}

// DmemExecCheck is the executed-runtime acceptance record: a real
// goroutine-per-node run (with an injected node loss) checked bit-exact
// against the single-node solver on a twin system.
type DmemExecCheck struct {
	N            int   `json:"n"`
	Nodes        int   `json:"nodes"`
	Steps        int   `json:"steps"`
	TotalBytes   int64 `json:"total_bytes"`
	TotalMsgs    int64 `json:"total_msgs"`
	NodeLosses   int   `json:"node_losses"`
	BitIdentical bool  `json:"bit_identical"`
}

// DmemBenchResult is the machine-readable payload of the "dmem"
// benchmark (written to BENCH_dmem.json by afmm-bench).
type DmemBenchResult struct {
	N         int              `json:"n"`
	P         int              `json:"p"`
	NPerNode  int              `json:"n_per_node"`
	HostCores int              `json:"host_cores"`
	Strong    []DmemScalePoint `json:"strong"`
	Weak      []DmemScalePoint `json:"weak"`
	Skew      DmemSkewResult   `json:"skew"`
	Exec      DmemExecCheck    `json:"exec"`
}

// dmemNodeCounts is the sweep grid for both scaling curves.
var dmemNodeCounts = []int{1, 4, 16, 64}

func dmemPricePoint(p Params, n, nodes int, seed int64) DmemScalePoint {
	sys := distrib.Plummer(n, 1, 1, seed)
	node := dmem.NodeSpec{
		CPU:     cpuSpec(p.Cores),
		GPUs:    p.GPUs,
		GPUSpec: p.gpuSpec(),
	}
	d, err := dmem.NewSolver(sys, dmem.Config{
		Core: core.Config{
			P: p.P, S: 64, NumGPUs: p.GPUs, GPUSpec: p.gpuSpec(),
			CPU:          cpuSpec(p.Cores),
			SkipFarField: true, SkipNearField: true,
		},
		Nodes: dmem.HomogeneousNodes(nodes, node),
	})
	if err != nil {
		return DmemScalePoint{Nodes: nodes, NTotal: n}
	}
	rep := d.Solve()
	var hidden, comm float64
	for _, nt := range rep.PerNode {
		hidden += nt.Hidden
		comm += nt.CommTime
	}
	pt := DmemScalePoint{
		Nodes: nodes, NTotal: n,
		StepTime:  rep.StepTime,
		Imbalance: rep.Imbalance,
		CommBytes: rep.TotalBytes,
	}
	if comm > 0 {
		pt.HiddenFrac = hidden / comm
	}
	return pt
}

// dmemSkew runs the static-vs-cost-driven comparison on a two-cluster
// distribution whose density contrast defeats equal-count ranges.
func dmemSkew(p Params, nodes, steps int) DmemSkewResult {
	mk := func() (*dmem.Solver, error) {
		sys := distrib.TwoClusters(p.N, 0.3, 1, 8, 0, 11)
		node := dmem.NodeSpec{
			CPU:     cpuSpec(p.Cores),
			GPUs:    p.GPUs,
			GPUSpec: p.gpuSpec(),
		}
		return dmem.NewSolver(sys, dmem.Config{
			Core: core.Config{
				P: p.P, S: 64, NumGPUs: p.GPUs, GPUSpec: p.gpuSpec(),
				CPU:          cpuSpec(p.Cores),
				SkipFarField: true, SkipNearField: true,
			},
			Nodes: dmem.HomogeneousNodes(nodes, node),
		})
	}
	res := DmemSkewResult{N: p.N, Nodes: nodes, Steps: steps}
	lastImb := func(r dmem.RunResult) float64 {
		if len(r.Steps) == 0 {
			return 0
		}
		return r.Steps[len(r.Steps)-1].Imbalance
	}
	if d, err := mk(); err == nil {
		r := d.RunWith(dmem.RunConfig{Steps: steps, Dt: p.Dt})
		res.StaticTime = r.TotalTime
		res.StaticImbalance = lastImb(r)
	}
	if d, err := mk(); err == nil {
		r := d.RunWith(dmem.RunConfig{
			Steps: steps, Dt: p.Dt,
			// A touch more eager than DefaultPolicy: the two-cluster
			// profile yields steady few-percent gains per repartition,
			// which the default 5% hysteresis floor would reject.
			Policy: dmem.RebalancePolicy{Threshold: 1.05, MinGain: 1.01, Cooldown: 2},
		})
		res.CostTime = r.TotalTime
		res.CostImbalance = lastImb(r)
		res.Repartitions = r.Rebalances
	}
	if res.CostTime > 0 {
		res.Margin = res.StaticTime / res.CostTime
	}
	return res
}

// dmemExecCheck runs the goroutine-node runtime with an injected
// fail-stop and verifies the trajectory is exactly (==) the single-node
// solver's on a twin system.
func dmemExecCheck(p Params) DmemExecCheck {
	n := p.N
	if n > 4000 {
		n = 4000
	}
	const (
		nodes = 4
		steps = 3
	)
	chk := DmemExecCheck{N: n, Nodes: nodes, Steps: steps}
	coreCfg := core.Config{P: p.P, S: 32, DisableM2LTable: true}
	sysD := distrib.Plummer(n, 1, 1, p.Seed)
	sysS := distrib.Plummer(n, 1, 1, p.Seed)

	events, _ := fault.ParseNodeEvents("node2:failstop@step1")
	d, err := dmem.NewSolver(sysD, dmem.Config{
		Core:       coreCfg,
		Nodes:      dmem.HomogeneousNodes(nodes, dmem.NodeSpec{CPU: vcpu.Spec{Cores: 4}.Normalized()}),
		Execute:    true,
		NodeFaults: events,
	})
	if err != nil {
		return chk
	}
	r := d.RunWith(dmem.RunConfig{Steps: steps, Dt: p.Dt})
	chk.TotalBytes = r.TotalBytes
	chk.NodeLosses = r.NodeLosses
	for _, st := range r.Steps {
		chk.TotalMsgs += st.TotalMsgs
	}

	single := core.NewSolver(sysS, coreCfg)
	for step := 0; step < steps; step++ {
		single.Solve()
		for i := range sysS.Pos {
			sysS.Vel[i] = sysS.Vel[i].Add(sysS.Acc[i].Scale(p.Dt))
			sysS.Pos[i] = sysS.Pos[i].Add(sysS.Vel[i].Scale(p.Dt))
		}
		single.Refill()
	}
	chk.BitIdentical = true
	for i := 0; i < n; i++ {
		if sysD.Pos[i] != sysS.Pos[i] || sysD.Vel[i] != sysS.Vel[i] || sysD.Phi[i] != sysS.Phi[i] {
			chk.BitIdentical = false
			break
		}
	}
	return chk
}

// Dmem benchmarks the distributed-memory layer: strong and weak scaling
// of the priced decomposition over 1-64 virtual nodes, the cost-driven
// repartitioner against static equal-count ranges on a skewed
// distribution, and a bit-identity acceptance run of the executing
// goroutine-node runtime under an injected node loss.
func Dmem(p Params) DmemBenchResult {
	if p.N <= 0 {
		p.N = 24000
	}
	if p.Steps <= 0 {
		p.Steps = 10
	}
	p.setDefaults()
	perNode := p.N / 16
	if perNode < 500 {
		perNode = 500
	}
	res := DmemBenchResult{
		N: p.N, P: p.P, NPerNode: perNode,
		HostCores: runtime.NumCPU(),
	}
	for _, nodes := range dmemNodeCounts {
		res.Strong = append(res.Strong, dmemPricePoint(p, p.N, nodes, p.Seed))
		res.Weak = append(res.Weak, dmemPricePoint(p, perNode*nodes, nodes, p.Seed))
	}
	if t1 := res.Strong[0].StepTime; t1 > 0 {
		for i := range res.Strong {
			if res.Strong[i].StepTime > 0 {
				res.Strong[i].Speedup = t1 / res.Strong[i].StepTime
			}
		}
	}
	if t1 := res.Weak[0].StepTime; t1 > 0 {
		for i := range res.Weak {
			if res.Weak[i].StepTime > 0 {
				res.Weak[i].Speedup = t1 / res.Weak[i].StepTime
			}
		}
	}
	res.Skew = dmemSkew(p, 8, p.Steps)
	res.Exec = dmemExecCheck(p)
	return res
}
