// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII-IX) on the simulated heterogeneous machine. Each
// experiment returns plain data rows; cmd/afmm-bench renders them and
// the repository-level benchmarks wrap them.
//
// Scaling note: the paper runs 10^6-10^7 bodies on real Xeon X5670 CPUs
// and Tesla C2050 GPUs. These experiments default to 10^4-10^5 bodies, so
// the simulated device throughput is derated by Params.GPUScale to keep
// the CPU/GPU balance structure — where the cost curves cross, which unit
// dominates on either side — in the same regime as the paper's. The
// *shape* of every result (orderings, approximate factors, crossovers) is
// the reproduction target, not absolute seconds.
package experiments

import (
	"io"
	"math"

	"afmm/internal/balance"
	"afmm/internal/core"
	"afmm/internal/costmodel"
	"afmm/internal/distrib"
	"afmm/internal/dmem"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/particle"
	"afmm/internal/sim"
	"afmm/internal/stokes"
	"afmm/internal/telemetry"
	"afmm/internal/vcpu"
	"afmm/internal/vgpu"
)

// Params sizes an experiment.
type Params struct {
	// N is the body count.
	N int
	// Seed drives every random choice (experiments are deterministic).
	Seed int64
	// P is the expansion order (timing experiments default to 4 — the
	// cost model, not the accuracy, is under study).
	P int
	// Cores is the virtual CPU core count (defaults to the paper's 10).
	Cores int
	// GPUs is the simulated device count.
	GPUs int
	// GPUScale derates device throughput for scaled-down N (see package
	// comment). Default 1/64.
	GPUScale float64
	// Steps and Dt drive the time-dependent experiments.
	Steps int
	Dt    float64
	// Quiet suppresses progress output hooks (reserved).
	Quiet bool
	// Trace, when non-nil, receives the telemetry JSONL trace of the
	// dynamic experiments' headline run (Fig8's strategy-3 simulation,
	// Fig10's FGO-enabled simulation).
	Trace io.Writer
	// Rec, when non-nil, is attached to the same headline runs in place
	// of Trace — it carries whatever sinks the caller configured (JSONL,
	// metrics registry, flight recorder, sentinel), so afmm-bench's
	// -metrics-addr server watches the dynamic experiments live.
	Rec *telemetry.Recorder
}

func (p *Params) setDefaults() {
	if p.N <= 0 {
		p.N = 20000
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.P <= 0 {
		p.P = 4
	}
	if p.Cores <= 0 {
		p.Cores = 10
	}
	if p.GPUs <= 0 {
		p.GPUs = 1
	}
	if p.GPUScale <= 0 {
		p.GPUScale = 1.0 / 64
	}
	if p.Steps <= 0 {
		p.Steps = 200
	}
	if p.Dt <= 0 {
		p.Dt = 1e-4
	}
}

// gpuSpec returns the derated device model.
func (p Params) gpuSpec() vgpu.Spec {
	return vgpu.ScaledSpec(p.GPUScale)
}

// cpuSpec returns the virtual CPU subsystem with the given core count.
func cpuSpec(cores int) vcpu.Spec {
	s := vcpu.DefaultSpec()
	s.Cores = cores
	return s
}

// SSweep is the default logarithmic S grid for the sweep figures.
func SSweep(maxS int) []int {
	grid := []int{4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048}
	var out []int
	for _, s := range grid {
		if s <= maxS {
			out = append(out, s)
		}
	}
	return out
}

// SweepPoint is one S sample of a cost sweep.
type SweepPoint struct {
	S       int
	CPU     float64
	GPU     float64
	Compute float64
	GPUEff  float64
	Leaves  int
	Depth   int
}

// drySolver builds a timing-only solver for the sweep experiments.
func drySolver(sys *particle.System, p Params, s int, mode octree.Mode, gpus int) *core.Solver {
	cfg := core.Config{
		P:             p.P,
		S:             s,
		Mode:          mode,
		NumGPUs:       gpus,
		GPUSpec:       p.gpuSpec(),
		CPU:           cpuSpec(p.Cores),
		Kernel:        kernels.Gravity{G: 1},
		SkipFarField:  true,
		SkipNearField: true,
	}
	return core.NewSolver(sys, cfg)
}

// sweep evaluates CPU/GPU cost over the S grid on one body distribution.
func sweep(p Params, mode octree.Mode) []SweepPoint {
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	if mode == octree.Uniform {
		sys = distrib.UniformCube(p.N, 1, p.Seed)
	}
	var out []SweepPoint
	for _, s := range SSweep(p.N) {
		sol := drySolver(sys, p, s, mode, p.GPUs)
		st := sol.Solve()
		stats := sol.Tree.ComputeStats()
		out = append(out, SweepPoint{
			S:       s,
			CPU:     st.CPUTime,
			GPU:     st.GPUTime,
			Compute: st.Compute,
			GPUEff:  st.GPUEff,
			Leaves:  stats.VisibleLeaves,
			Depth:   stats.MaxDepth,
		})
	}
	return out
}

// Fig3 reproduces Figure 3: with the adaptive decomposition, CPU and GPU
// cost change gradually as functions of S.
func Fig3(p Params) []SweepPoint {
	p.setDefaults()
	return sweep(p, octree.Adaptive)
}

// Fig4 reproduces Figure 4: with a uniform decomposition, the cost curve
// splits into discrete regimes — entire octree levels appear or vanish at
// critical S values (the Uniform Gap).
func Fig4(p Params) []SweepPoint {
	p.setDefaults()
	return sweep(p, octree.Uniform)
}

// UniformRegimes summarizes a Fig4 sweep: the distinct tree depths
// encountered and the compute-time jump between consecutive S samples that
// cross a regime boundary.
type UniformRegimes struct {
	Depths    []int
	MaxJump   float64 // largest |compute(s_i+1)-compute(s_i)|/compute(s_i) at a depth change
	MaxSmooth float64 // largest relative step within a regime
}

// AnalyzeUniformGap extracts the regime structure from a Fig4 sweep.
func AnalyzeUniformGap(points []SweepPoint) UniformRegimes {
	var r UniformRegimes
	seen := map[int]bool{}
	for _, pt := range points {
		if !seen[pt.Depth] {
			seen[pt.Depth] = true
			r.Depths = append(r.Depths, pt.Depth)
		}
	}
	for i := 1; i < len(points); i++ {
		rel := math.Abs(points[i].Compute-points[i-1].Compute) /
			math.Max(points[i-1].Compute, 1e-300)
		if points[i].Depth != points[i-1].Depth {
			if rel > r.MaxJump {
				r.MaxJump = rel
			}
		} else if rel > r.MaxSmooth {
			r.MaxSmooth = rel
		}
	}
	return r
}

// ScalePoint is one core-count sample of the CPU scaling study.
type ScalePoint struct {
	Cores   int
	Time    float64
	Speedup float64
	TaskEff float64
}

// Fig6 reproduces Figure 6: speedup of the CPU-only AFMM as a function of
// core count on a Plummer distribution with a highly non-uniform tree,
// near-linear (slightly superlinear) to 16 cores and flattening beyond.
func Fig6(p Params) []ScalePoint {
	p.setDefaults()
	if p.N == 20000 {
		p.N = 50000
	}
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	// A fixed S, as in the paper; choose a far-field-heavy value so the
	// task graph is deep and adaptive.
	tree := octree.Build(sys, octree.Config{S: 32})
	tree.BuildLists()
	base := vcpu.DefaultSpec()
	graph := vcpu.BuildFMMGraph(tree, base.Base, vcpu.FMMGraphOptions{IncludeP2P: true})
	var out []ScalePoint
	var t1 float64
	for _, cores := range []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32} {
		spec := base
		spec.Cores = cores
		res := spec.Simulate(graph)
		if cores == 1 {
			t1 = res.Makespan
		}
		out = append(out, ScalePoint{
			Cores:   cores,
			Time:    res.Makespan,
			Speedup: t1 / res.Makespan,
			TaskEff: res.Efficiency(cores),
		})
	}
	return out
}

// GPUPoint is one device-count sample of the GPU scaling study.
type GPUPoint struct {
	GPUs      int
	GPUTime   float64
	Speedup   float64
	Imbalance float64 // max/mean device kernel time
}

// Table1 reproduces Table I: near-field scaling over 1..4 GPUs for a fixed
// workload, at the S that minimizes total runtime for 10 cores + 1 GPU.
func Table1(p Params) []GPUPoint {
	p.setDefaults()
	if p.N == 20000 {
		p.N = 50000
	}
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	// Find the best S for 10C + 1 GPU.
	bestS, bestC := 0, math.Inf(1)
	for _, s := range SSweep(p.N) {
		sol := drySolver(sys, p, s, octree.Adaptive, 1)
		st := sol.Solve()
		if st.Compute < bestC {
			bestC, bestS = st.Compute, s
		}
	}
	var out []GPUPoint
	var t1 float64
	for g := 1; g <= 4; g++ {
		sol := drySolver(sys, p, bestS, octree.Adaptive, g)
		st := sol.Solve()
		if g == 1 {
			t1 = st.GPUTime
		}
		var sum, max float64
		for _, d := range sol.Cluster.Devices {
			sum += d.KernelTime
			if d.KernelTime > max {
				max = d.KernelTime
			}
		}
		imb := 0.0
		if sum > 0 {
			imb = max / (sum / float64(len(sol.Cluster.Devices)))
		}
		out = append(out, GPUPoint{
			GPUs:      g,
			GPUTime:   st.GPUTime,
			Speedup:   t1 / st.GPUTime,
			Imbalance: imb,
		})
	}
	return out
}

// HeteroCurve is one machine configuration of Figure 7.
type HeteroCurve struct {
	Label       string
	Cores, GPUs int
	Points      []SweepPoint
	BestS       int
	BestTime    float64
	BestSpeedup float64 // vs. the optimal serial configuration
}

// Fig7GPUScale is the device derating used by Figure 7. It is larger than
// the sweep experiments' default because the figure's effects — a large
// heterogeneous speedup over serial, and a starved 4-core CPU wasting 4
// GPUs — require the paper's device:core throughput ratio (a C2050 is
// worth tens of CPU cores on all-pairs work).
const Fig7GPUScale = 1.0 / 6

// Fig7 reproduces Figure 7: heterogeneous speedup as a function of S for
// CPU/GPU combinations, against a single-core serial baseline at its own
// optimal S. Each S builds one tree; every machine configuration is then
// timed on that same tree (the virtual machine makes configurations
// independent of the numeric work).
func Fig7(p Params) (serial HeteroCurve, curves []HeteroCurve) {
	if p.GPUScale <= 0 {
		p.GPUScale = Fig7GPUScale
	}
	if p.N <= 0 {
		// The starved-CPU effects need the linear interaction regime.
		p.N = 50000
	}
	p.setDefaults()
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	tree := octree.Build(sys, octree.Config{S: 64})
	base := vcpu.DefaultSpec()

	type combo struct {
		cores, gpus int
		lbl         string
	}
	combos := []combo{
		{1, 0, "1C serial"},
		{4, 1, "4C_1G"}, {10, 1, "10C_1G"},
		{4, 2, "4C_2G"}, {10, 2, "10C_2G"},
		{4, 4, "4C_4G"}, {10, 4, "10C_4G"},
	}
	results := make([]HeteroCurve, len(combos))
	for i, cb := range combos {
		results[i] = HeteroCurve{
			Label: cb.lbl, Cores: cb.cores, GPUs: cb.gpus,
			BestTime: math.Inf(1),
		}
	}

	for _, s := range SSweep(p.N) {
		tree.Rebuild(s)
		tree.BuildLists()
		farGraph := vcpu.BuildFMMGraph(tree, base.Base, vcpu.FMMGraphOptions{})
		allGraph := vcpu.BuildFMMGraph(tree, base.Base, vcpu.FMMGraphOptions{IncludeP2P: true})
		// Device kernel time depends only on the device count, not cores.
		gpuTime := map[int]float64{}
		for _, g := range []int{1, 2, 4} {
			cl := vgpu.NewCluster(g, p.gpuSpec())
			cl.Partition(tree)
			gpuTime[g] = cl.Execute(tree, nil)
		}
		for i, cb := range combos {
			spec := base
			spec.Cores = cb.cores
			var pt SweepPoint
			pt.S = s
			if cb.gpus == 0 {
				pt.CPU = spec.Simulate(allGraph).Makespan
				pt.Compute = pt.CPU
			} else {
				pt.CPU = spec.Simulate(farGraph).Makespan
				pt.GPU = gpuTime[cb.gpus]
				pt.Compute = math.Max(pt.CPU, pt.GPU)
			}
			results[i].Points = append(results[i].Points, pt)
			if pt.Compute < results[i].BestTime {
				results[i].BestTime, results[i].BestS = pt.Compute, s
			}
		}
	}
	serial = results[0]
	for _, c := range results[1:] {
		c.BestSpeedup = serial.BestTime / c.BestTime
		curves = append(curves, c)
	}
	return serial, curves
}

// StrategyRun labels a strategy's full simulation result.
type StrategyRun struct {
	Name     string
	Strategy balance.Strategy
	Result   sim.Result
}

// DynamicWorkload builds the §IX.A evolving system: a truncated Plummer
// sphere released cold (zero velocities). It violently collapses toward
// the center of mass, bounces, ejects a transient halo whose particles
// return, and virializes at a much more concentrated profile — churning
// the leaf occupancy of any fixed decomposition, like the paper's
// initially-compressed distribution.
func DynamicWorkload(p Params) *particle.System {
	sys := distrib.PlummerTruncated(p.N, 1, 1, 0.8, p.Seed)
	for i := range sys.Vel {
		sys.Vel[i] = geom.Vec3{}
	}
	return sys
}

func dynamicSolver(p Params) *core.Solver {
	cfg := core.Config{
		P:       p.P,
		S:       64,
		NumGPUs: p.GPUs,
		GPUSpec: p.gpuSpec(),
		CPU:     cpuSpec(p.Cores),
		Kernel:  kernels.Gravity{G: 1, Softening: 0.005},
	}
	return core.NewSolver(DynamicWorkload(p), cfg)
}

// Fig8 reproduces Figures 8/9 and the data behind Table II: the three
// balancing strategies on the dynamic workload. The per-step records carry
// both the per-step totals (Fig. 8) and the S values (Fig. 9).
func Fig8(p Params) []StrategyRun {
	if p.N <= 0 {
		p.N = 10000 // real forces are computed each step; keep tractable
	}
	if p.Steps <= 0 {
		p.Steps = 400 // enough to collapse, bounce and virialize
	}
	p.setDefaults()
	if p.GPUs == 1 {
		p.GPUs = 2
	}
	cfg := sim.Config{Dt: p.Dt, Steps: p.Steps}
	var runs []StrategyRun
	for _, sr := range []struct {
		name string
		st   balance.Strategy
	}{
		{"strategy1-static", balance.StrategyStatic},
		{"strategy2-enforce", balance.StrategyEnforce},
		{"strategy3-full", balance.StrategyFull},
	} {
		c := cfg
		c.Balance = balance.Config{Strategy: sr.st}
		if sr.st == balance.StrategyFull {
			c.Trace = p.Trace
			c.Rec = p.Rec
		}
		res := sim.RunGravity(dynamicSolver(p), c)
		runs = append(runs, StrategyRun{Name: sr.name, Strategy: sr.st, Result: res})
	}
	return runs
}

// Table2Row is one strategy's summary (Table II).
type Table2Row struct {
	Strategy         string
	TotalCompute     float64
	TotalLB          float64
	LBPercent        float64
	RelCostPerStep   float64
	MeanTotalPerStep float64
}

// Table2 summarizes a Fig8 run set; relative cost is normalized to the
// full strategy (strategy 3), as in the paper.
func Table2(runs []StrategyRun) []Table2Row {
	var full float64
	for _, r := range runs {
		if r.Strategy == balance.StrategyFull {
			full = r.Result.MeanTotalPerStep()
		}
	}
	var rows []Table2Row
	for _, r := range runs {
		rows = append(rows, Table2Row{
			Strategy:         r.Name,
			TotalCompute:     r.Result.TotalCompute,
			TotalLB:          r.Result.TotalLB,
			LBPercent:        r.Result.LBPercent(),
			RelCostPerStep:   r.Result.MeanTotalPerStep() / full,
			MeanTotalPerStep: r.Result.MeanTotalPerStep(),
		})
	}
	return rows
}

// RatioPoint is one step of the Figure 10 comparison.
type RatioPoint struct {
	Step  int
	Ratio float64 // total(no FGO) / total(FGO)
}

// Fig10 reproduces Figure 10: per-step total time without vs. with
// FineGrainedOptimize on the Stokes problem over a uniform source
// distribution, where the fluid kernel's 4x M2L cost widens the uniform
// gap. It returns the per-step ratio series and the mean ratio after the
// initial search window.
func Fig10(p Params) ([]RatioPoint, float64) {
	if p.N <= 0 {
		p.N = 8000 // the Stokes solve runs four real far-field passes
	}
	if p.Steps <= 0 {
		p.Steps = 120
	}
	p.setDefaults()
	run := func(disableFGO bool) sim.Result {
		sys := distrib.UniformCube(p.N, 1, p.Seed)
		// Small random forces keep the workload quasi-static, as in the
		// paper's uniform test.
		rng := newRand(p.Seed + 1)
		for i := range sys.Aux {
			sys.Aux[i] = randUnit(rng).Scale(0.1)
		}
		cfg := stokes.Config{
			P:       p.P,
			S:       64,
			NumGPUs: p.GPUs,
			GPUSpec: p.gpuSpec(),
			CPU:     cpuSpec(p.Cores),
			Kernel:  kernels.Stokeslet{Mu: 1, Eps: 1e-3},
		}
		// Derate the device for the costlier Stokeslet pair, mirroring
		// stokes.Config defaults.
		cfg.GPUSpec.InteractionsPerSecPerSM *= float64(kernels.FlopsPerGravityInteraction) /
			float64(kernels.FlopsPerStokesletInteraction)
		sol := stokes.NewSolver(sys, cfg)
		simCfg := sim.Config{
			Dt:    p.Dt,
			Steps: p.Steps,
			Balance: balance.Config{
				Strategy:         balance.StrategyFull,
				DisableFineGrain: disableFGO,
			},
		}
		if !disableFGO {
			simCfg.Trace = p.Trace
			simCfg.Rec = p.Rec
		}
		return sim.RunStokes(sol, nil, simCfg)
	}
	with := run(false)
	without := run(true)
	var pts []RatioPoint
	for i := range with.Records {
		pts = append(pts, RatioPoint{
			Step:  i,
			Ratio: without.Records[i].Total / with.Records[i].Total,
		})
	}
	// Mean advantage after the initial search window (paper: first ~15
	// steps are the binary search).
	var sum float64
	var n int
	for _, pt := range pts {
		if pt.Step >= 15 {
			sum += pt.Ratio
			n++
		}
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}
	return pts, mean
}

// Counts re-exported for assertions in the harness tests.
func opCounts(sol *core.Solver) costmodel.Counts {
	sol.Tree.BuildLists()
	return costmodel.FromTree(sol.Tree.CountOps())
}

// ClusterPoint is one node-count sample of the distributed weak-scaling
// study (an extension experiment, not from the paper).
type ClusterPoint struct {
	Nodes      int
	StepTime   float64
	MaxCompute float64
	CommTime   float64
	Bytes      int64
	Imbalance  float64
}

// Cluster runs the distributed-memory extension at fixed total N over
// 1..maxNodes nodes (strong scaling of one step).
func Cluster(p Params, maxNodes int) []ClusterPoint {
	p.setDefaults()
	if maxNodes <= 0 {
		maxNodes = 8
	}
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	var out []ClusterPoint
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		node := dmem.NodeSpec{
			CPU:     cpuSpec(p.Cores),
			GPUs:    p.GPUs,
			GPUSpec: p.gpuSpec(),
		}
		coreCfg := core.Config{
			P: p.P, S: 64, NumGPUs: p.GPUs, GPUSpec: p.gpuSpec(),
			CPU:          cpuSpec(p.Cores),
			SkipFarField: true, SkipNearField: true,
		}
		d, err := dmem.NewSolver(sys.Clone(), dmem.Config{
			Core:  coreCfg,
			Nodes: dmem.HomogeneousNodes(nodes, node),
		})
		if err != nil {
			break
		}
		rep := d.Solve()
		var maxC, comm float64
		for _, nt := range rep.PerNode {
			if nt.Compute > maxC {
				maxC = nt.Compute
			}
			if nt.CommTime > comm {
				comm = nt.CommTime
			}
		}
		out = append(out, ClusterPoint{
			Nodes: nodes, StepTime: rep.StepTime, MaxCompute: maxC,
			CommTime: comm, Bytes: rep.TotalBytes, Imbalance: rep.Imbalance,
		})
	}
	return out
}

// SpikeCount returns how many steps of a run exceeded the given per-step
// total (the paper reports 34 of 2000 steps of strategy 3 exceeding
// strategy 2's average).
func SpikeCount(r sim.Result, threshold float64) int {
	n := 0
	for _, rec := range r.Records {
		if rec.Total > threshold {
			n++
		}
	}
	return n
}
