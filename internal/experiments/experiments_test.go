package experiments

import (
	"testing"
)

// Small-N smoke versions of every experiment asserting the paper's shape
// claims. The benchmarks and cmd/afmm-bench run the full-size versions.

func smallParams() Params {
	return Params{N: 4000, Seed: 42, Steps: 40, Dt: 2e-4, GPUs: 2}
}

func TestFig3Gradual(t *testing.T) {
	pts := Fig3(Params{N: 8000, Seed: 42})
	if len(pts) < 10 {
		t.Fatalf("only %d sweep points", len(pts))
	}
	// CPU cost must decrease monotonically (within tolerance) with S.
	for i := 1; i < len(pts); i++ {
		if pts[i].CPU > pts[i-1].CPU*1.10 {
			t.Fatalf("CPU cost rose sharply at S=%d: %v -> %v",
				pts[i].S, pts[i-1].CPU, pts[i].CPU)
		}
	}
	// There must be a regime change: CPU dominates at small S, GPU at
	// large S.
	if pts[0].CPU < pts[0].GPU {
		t.Fatalf("expected CPU-bound at S=%d", pts[0].S)
	}
	last := pts[len(pts)-1]
	if last.GPU < last.CPU {
		t.Fatalf("expected GPU-bound at S=%d", last.S)
	}
}

func TestFig4ShowsRegimes(t *testing.T) {
	pts := Fig4(Params{N: 8000, Seed: 42})
	r := AnalyzeUniformGap(pts)
	if len(r.Depths) < 2 {
		t.Fatalf("uniform sweep saw depths %v, want >= 2 regimes", r.Depths)
	}
	// The regime-boundary jump must dwarf the within-regime steps (the
	// Uniform Gap).
	if r.MaxJump < 0.3 {
		t.Fatalf("regime jump only %.0f%%", 100*r.MaxJump)
	}
}

func TestFig6Shape(t *testing.T) {
	pts := Fig6(Params{N: 20000, Seed: 42})
	byCores := map[int]ScalePoint{}
	for _, pt := range pts {
		byCores[pt.Cores] = pt
	}
	if byCores[1].Speedup != 1 {
		t.Fatalf("speedup(1) = %v", byCores[1].Speedup)
	}
	if s := byCores[16].Speedup; s < 12 || s > 18 {
		t.Fatalf("speedup(16) = %v, want near-linear", s)
	}
	if byCores[32].Speedup < byCores[16].Speedup {
		t.Fatal("speedup regressed from 16 to 32 cores")
	}
	// Diminishing returns: the 16->32 gain is clearly sublinear.
	if byCores[32].Speedup > byCores[16].Speedup*1.8 {
		t.Fatalf("no saturation: s16=%v s32=%v",
			byCores[16].Speedup, byCores[32].Speedup)
	}
}

func TestTable1NearLinear(t *testing.T) {
	pts := Table1(Params{N: 20000, Seed: 42})
	if len(pts) != 4 {
		t.Fatalf("%d rows", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("1-GPU speedup %v", pts[0].Speedup)
	}
	if s := pts[1].Speedup; s < 1.6 || s > 2.05 {
		t.Fatalf("2-GPU speedup %v, want ~2", s)
	}
	if s := pts[3].Speedup; s < 2.8 || s > 4.1 {
		t.Fatalf("4-GPU speedup %v, want ~4", s)
	}
}

func TestFig7Ordering(t *testing.T) {
	// Basic shape at small N: substantial heterogeneous speedups, the
	// 10C_4G configuration on top, and more cores never hurting.
	n := 8000
	if !testing.Short() {
		// The starved-CPU effect (10C_2G keeping up with 4C_4G despite
		// half the GPUs) requires the linear interaction regime, i.e.
		// larger N (see DESIGN.md scaling note).
		n = 50000
	}
	_, curves := Fig7(Params{N: n, Seed: 42})
	best := map[string]float64{}
	for _, c := range curves {
		best[c.Label] = c.BestSpeedup
		if c.BestSpeedup <= 1 {
			t.Fatalf("%s: speedup %v not above serial", c.Label, c.BestSpeedup)
		}
	}
	if best["10C_4G"] < best["10C_2G"] || best["10C_4G"] < best["4C_4G"] {
		t.Fatalf("10C_4G (%.1f) is not the peak: %v", best["10C_4G"], best)
	}
	if best["10C_1G"] < best["4C_1G"] || best["10C_2G"] < best["4C_2G"] {
		t.Fatalf("more cores hurt: %v", best)
	}
	if !testing.Short() {
		// The paper's §VIII.E comparison: ten cores with two GPUs keep
		// up with (paper: beat) four cores with four GPUs.
		if best["10C_2G"] < best["4C_4G"]*0.9 {
			t.Fatalf("10C_2G (%.1f) far behind 4C_4G (%.1f)",
				best["10C_2G"], best["4C_4G"])
		}
		// And the peak heterogeneous speedup is in the tens.
		if best["10C_4G"] < 20 {
			t.Fatalf("peak speedup only %.1f", best["10C_4G"])
		}
	}
}

func TestFig8StrategiesProduceRecords(t *testing.T) {
	p := smallParams()
	runs := Fig8(p)
	if len(runs) != 3 {
		t.Fatalf("%d strategy runs", len(runs))
	}
	for _, r := range runs {
		if len(r.Result.Records) != p.Steps {
			t.Fatalf("%s: %d records", r.Name, len(r.Result.Records))
		}
	}
	rows := Table2(runs)
	var fullLB float64
	for _, row := range rows {
		if row.Strategy == "strategy3-full" {
			if row.RelCostPerStep != 1 {
				t.Fatalf("full strategy rel cost %v, want 1", row.RelCostPerStep)
			}
			fullLB = row.LBPercent
		}
	}
	if fullLB <= 0 || fullLB > 30 {
		t.Fatalf("full strategy LB%% = %v", fullLB)
	}
}

func TestFig10ProducesRatios(t *testing.T) {
	p := Params{N: 3000, Seed: 42, Steps: 30, Dt: 1e-3, GPUs: 1}
	pts, mean := Fig10(p)
	if len(pts) != 30 {
		t.Fatalf("%d ratio points", len(pts))
	}
	if mean <= 0.5 || mean > 3 {
		t.Fatalf("mean ratio %v implausible", mean)
	}
}

func TestDynamicWorkloadCompressed(t *testing.T) {
	p := Params{N: 1000, Seed: 1}
	p.setDefaults()
	sys := DynamicWorkload(p)
	var maxR float64
	for i := range sys.Pos {
		if r := sys.Pos[i].Norm(); r > maxR {
			maxR = r
		}
	}
	if maxR > 10 {
		t.Fatalf("dynamic workload not compressed: rmax=%v", maxR)
	}
}
