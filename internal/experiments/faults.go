package experiments

import (
	"math"
	"strconv"
	"time"

	"afmm/internal/balance"
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/sim"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

// FaultCaseResult is one fault class driven through a full simulation,
// paired step-for-step with a fault-free run of the same trajectory.
type FaultCaseResult struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
	// Completed is false when the run aborted (it never should: every
	// class is recoverable through retry, host fallback, or checkpoint
	// restore).
	Completed bool `json:"completed"`
	// BitIdentical reports whether the final potentials and accelerations
	// match the fault-free run bit for bit.
	BitIdentical bool `json:"bit_identical"`
	// Recoveries counts step-level checkpoint restores (non-zero only for
	// classes that fail the whole step, e.g. corrupt caught by validation).
	Recoveries int `json:"recoveries"`

	// Fault-handling counters accumulated over the run.
	DeadDevices      int   `json:"dead_devices"`
	DegradedDevices  int   `json:"degraded_devices"`
	TransientRetries int   `json:"transient_retries"`
	FallbackRows     int   `json:"fallback_rows"`
	FallbackHostNs   int64 `json:"fallback_host_ns"`

	// DetectNs is the watchdog's hang-detection latency (host ns): the
	// time between a device going silent and its abort. Zero for classes
	// the device reports synchronously (fail-stop, transient, corrupt).
	DetectNs int64 `json:"detect_ns"`
	// RecoveryOverheadNs is the host-wall cost of absorbing the fault:
	// the fault step's wall time minus the fault-free twin's wall for the
	// same step (for corrupt, the whole-run wall delta, since the restore
	// spans several steps).
	RecoveryOverheadNs int64 `json:"recovery_overhead_ns"`

	// Degraded throughput: mean virtual compute time per step before and
	// after the fault step, and their ratio (1 = no slowdown; < 1 = the
	// degraded cluster is slower).
	PreFaultComputePerStep  float64 `json:"pre_fault_compute_per_step"`
	PostFaultComputePerStep float64 `json:"post_fault_compute_per_step"`
	DegradedThroughput      float64 `json:"degraded_throughput"`
}

// FaultRecoveryResult exercises the checkpoint-restore path: host
// fallback disabled, so a device loss fails the step and the sim loop
// must restore the last auto-checkpoint and re-run degraded.
type FaultRecoveryResult struct {
	Spec         string `json:"spec"`
	Recoveries   int    `json:"recoveries"`
	Checkpoints  int    `json:"checkpoints"`
	BitIdentical bool   `json:"bit_identical"`
	// OverheadNs is the total host-wall cost of the failure: faulted-run
	// standing wall minus the fault-free run's (includes the lost work of
	// the failed step, the restore, and the degraded re-run).
	OverheadNs int64 `json:"overhead_ns"`
}

// FaultBalancerReaction summarizes how the full balancing strategy
// responds to a device loss: capacity-epoch event, re-split over the
// survivors, and a re-entered S search.
type FaultBalancerReaction struct {
	SPreFault        int     `json:"s_pre_fault"`
	SFinal           int     `json:"s_final"`
	AliveDevices     int     `json:"alive_devices"`
	CapacityDropFrac float64 `json:"capacity_drop_frac"`
	SearchReentered  bool    `json:"search_reentered"`
}

// FaultsBenchResult is the machine-readable payload of the "faults"
// benchmark (written to BENCH_faults.json by afmm-bench): the three
// headline resilience metrics — detection latency, recovery overhead,
// degraded throughput — per fault class, plus the checkpoint-restore
// path and the balancer's reaction to a device loss.
type FaultsBenchResult struct {
	N         int `json:"n"`
	S         int `json:"s"`
	P         int `json:"p"`
	GPUs      int `json:"gpus"`
	Steps     int `json:"steps"`
	FaultStep int `json:"fault_step"`

	Cases    []FaultCaseResult     `json:"cases"`
	Recovery FaultRecoveryResult   `json:"recovery"`
	Balancer FaultBalancerReaction `json:"balancer"`
}

// faultsS is the pinned leaf capacity of the paired trajectories (the
// balancer is held static so the faulted and fault-free runs stay
// structurally comparable and bit-identity is meaningful).
const faultsS = 64

// faultTraj is one manually-driven trajectory with per-step fault
// accounting.
type faultTraj struct {
	phi     []float64
	acc     []geom.Vec3
	wallNs  []int64
	compute []float64
	detect  int64
	retries int
	fbRows  int
	fbNs    int64
	dead    int
	degr    int
	err     error
}

func (p Params) faultSolver(spec string, mut func(cfg *core.Config)) *core.Solver {
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	cfg := core.Config{
		P:       p.P,
		S:       faultsS,
		NumGPUs: p.GPUs,
		GPUSpec: p.gpuSpec(),
		CPU:     cpuSpec(p.Cores),
		Kernel:  kernels.Gravity{G: 1, Softening: 0.01},
		// A generous deadline: on small or heavily shared hosts a GC
		// pause can starve a device goroutine past the default 50ms
		// floor, and a spurious watchdog abort (harmless for
		// correctness — the fallback keeps the run bit-identical)
		// would muddy the per-class metrics.
		Watchdog: vgpu.WatchdogConfig{
			ChunkRows:   16,
			MinDeadline: 250 * time.Millisecond,
			Slack:       20,
		},
	}
	if spec != "" {
		sch, err := fault.Parse(spec)
		if err != nil {
			panic("experiments: bad fault spec " + spec + ": " + err.Error())
		}
		cfg.Faults = fault.NewInjector(sch)
	}
	if mut != nil {
		mut(&cfg)
	}
	return core.NewSolver(sys, cfg)
}

// runFaultTraj advances the solver for steps steps (solve, kick-drift,
// refill — no balancer, S pinned) and accumulates the cluster's fault
// reports.
func runFaultTraj(sv *core.Solver, steps int, dt float64) faultTraj {
	var tr faultTraj
	for step := 0; step < steps; step++ {
		st, err := sv.SolveChecked()
		if err != nil {
			tr.err = err
			return tr
		}
		tr.wallNs = append(tr.wallNs, st.Host.Wall.Nanoseconds())
		tr.compute = append(tr.compute, math.Max(st.CPUTime, st.GPUTime))
		rep := sv.Cluster.LastReport()
		tr.retries += rep.TransientRetries
		tr.fbRows += rep.FallbackRows
		tr.fbNs += rep.FallbackHostNs
		for _, f := range rep.Faults {
			if f.Detect > tr.detect {
				tr.detect = f.Detect
			}
		}
		tr.dead = rep.DeadDevices
		tr.degr = rep.DegradedDevices
		sim.KickDrift(sv.Sys, dt)
		sv.Refill()
	}
	tr.phi = sv.Sys.PhiInInputOrder()
	tr.acc = sv.Sys.AccInInputOrder()
	return tr
}

func sameState(a, b faultTraj) bool {
	if len(a.phi) != len(b.phi) {
		return false
	}
	for i := range a.phi {
		if a.phi[i] != b.phi[i] || a.acc[i] != b.acc[i] {
			return false
		}
	}
	return true
}

func meanF64(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Faults runs the resilience benchmark: every fault class against a
// fault-free twin of the same trajectory, the checkpoint-restore path,
// and the balancer's reaction to a device loss.
func Faults(p Params) FaultsBenchResult {
	if p.N <= 0 {
		p.N = 20000
	}
	if p.Steps <= 0 {
		p.Steps = 10
	}
	p.setDefaults()
	if p.GPUs < 2 {
		p.GPUs = 2 // fault classes target a second device
	}
	faultStep := p.Steps / 3
	if faultStep < 1 {
		faultStep = 1
	}
	res := FaultsBenchResult{
		N: p.N, S: faultsS, P: p.P, GPUs: p.GPUs,
		Steps: p.Steps, FaultStep: faultStep,
	}

	// Fault-free twin of the paired trajectories.
	clean := runFaultTraj(p.faultSolver("", nil), p.Steps, p.Dt)

	stepTag := func(kind string) string {
		return kind + "@step" + strconv.Itoa(faultStep)
	}
	classes := []struct{ name, spec string }{
		{"failstop", "gpu1:" + stepTag("failstop")},
		{"hang", "gpu0:" + stepTag("hang")},
		{"straggle", "gpu1:" + stepTag("straggle3")},
		{"transient", "gpu0:" + stepTag("transient")},
	}
	for _, c := range classes {
		tr := runFaultTraj(p.faultSolver(c.spec, nil), p.Steps, p.Dt)
		cr := FaultCaseResult{
			Name: c.name, Spec: c.spec,
			Completed:        tr.err == nil,
			BitIdentical:     tr.err == nil && sameState(clean, tr),
			DeadDevices:      tr.dead,
			DegradedDevices:  tr.degr,
			TransientRetries: tr.retries,
			FallbackRows:     tr.fbRows,
			FallbackHostNs:   tr.fbNs,
			DetectNs:         tr.detect,
		}
		if len(tr.wallNs) > faultStep {
			cr.RecoveryOverheadNs = tr.wallNs[faultStep] - clean.wallNs[faultStep]
			cr.PreFaultComputePerStep = meanF64(tr.compute[:faultStep])
			cr.PostFaultComputePerStep = meanF64(tr.compute[faultStep+1:])
			if cr.PostFaultComputePerStep > 0 {
				cr.DegradedThroughput = cr.PreFaultComputePerStep / cr.PostFaultComputePerStep
			}
		}
		res.Cases = append(res.Cases, cr)
	}

	// Corrupt: the poisoned chunk is caught by the post-solve validator,
	// the step fails, and the loop restores the auto-checkpoint and
	// re-runs (the injector fires once, so the re-run is clean). Dt = 0
	// so the restore's tree rebuild reproduces the original decomposition
	// and bit-identity is checkable.
	corruptSpec := "gpu1:" + stepTag("corrupt")
	res.Cases = append(res.Cases, p.runCorruptCase(corruptSpec, faultStep))

	// Checkpoint-restore path: fallback disabled, so a fail-stop loss
	// fails the step outright.
	res.Recovery = p.runRecoveryCase("gpu1:"+stepTag("failstop"), faultStep)

	// Balancer reaction to a device loss under the full strategy.
	res.Balancer = p.runBalancerReaction("gpu1:" + stepTag("failstop"))
	return res
}

// pinnedBalance holds S fixed so paired sim runs stay structurally
// comparable.
func pinnedBalance() balance.Config {
	return balance.Config{Strategy: balance.StrategyStatic, MinS: faultsS, MaxS: faultsS}
}

func (p Params) runSimPair(spec string, mut func(cfg *core.Config)) (clean, faulted sim.Result, cs, fs *core.Solver) {
	cs = p.faultSolver("", nil)
	fs = p.faultSolver(spec, mut)
	cfg := sim.Config{Dt: 0, Steps: p.Steps, Balance: pinnedBalance(), CheckpointEvery: 2}
	clean = sim.RunGravity(cs, cfg)
	faulted = sim.RunGravity(fs, cfg)
	return clean, faulted, cs, fs
}

func sameFinalState(a, b *core.Solver) bool {
	phiA, phiB := a.Sys.PhiInInputOrder(), b.Sys.PhiInInputOrder()
	accA, accB := a.Sys.AccInInputOrder(), b.Sys.AccInInputOrder()
	for i := range phiA {
		if phiA[i] != phiB[i] || accA[i] != accB[i] {
			return false
		}
	}
	return true
}

func totalWallNs(r sim.Result) int64 {
	var s int64
	for _, rec := range r.Records {
		s += rec.WallNs
	}
	return s
}

func (p Params) runCorruptCase(spec string, faultStep int) FaultCaseResult {
	clean, faulted, cs, fs := p.runSimPair(spec, func(cfg *core.Config) {
		cfg.Validate = true
	})
	cr := FaultCaseResult{
		Name: "corrupt", Spec: spec,
		Completed:    clean.Err == nil && faulted.Err == nil,
		Recoveries:   faulted.Recoveries,
		BitIdentical: faulted.Err == nil && sameFinalState(cs, fs),
	}
	cr.RecoveryOverheadNs = totalWallNs(faulted) - totalWallNs(clean)
	var pre, post []float64
	for _, rec := range faulted.Records {
		if rec.Step < faultStep {
			pre = append(pre, rec.Compute)
		} else if rec.Step > faultStep {
			post = append(post, rec.Compute)
		}
	}
	cr.PreFaultComputePerStep = meanF64(pre)
	cr.PostFaultComputePerStep = meanF64(post)
	if cr.PostFaultComputePerStep > 0 {
		cr.DegradedThroughput = cr.PreFaultComputePerStep / cr.PostFaultComputePerStep
	}
	return cr
}

func (p Params) runRecoveryCase(spec string, faultStep int) FaultRecoveryResult {
	clean, faulted, cs, fs := p.runSimPair(spec, func(cfg *core.Config) {
		cfg.Watchdog.DisableFallback = true
	})
	return FaultRecoveryResult{
		Spec:         spec,
		Recoveries:   faulted.Recoveries,
		Checkpoints:  faulted.Checkpoints,
		BitIdentical: faulted.Err == nil && sameFinalState(cs, fs),
		OverheadNs:   totalWallNs(faulted) - totalWallNs(clean),
	}
}

func (p Params) runBalancerReaction(spec string) FaultBalancerReaction {
	rec := telemetry.New(telemetry.Options{Keep: true})
	sv := p.faultSolver(spec, func(cfg *core.Config) {
		cfg.Rec = rec
		cfg.Validate = true
	})
	b := balance.New(balance.Config{
		Strategy: balance.StrategyFull, MinS: 4, MaxS: 512, Rec: rec,
	}, sv.Sys.Len())
	// Start long-settled: Observation with the pre-loss timing baseline.
	b.Import(balance.Snapshot{State: balance.Observation})

	faultStep := p.Steps / 3
	if faultStep < 1 {
		faultStep = 1
	}
	var out FaultBalancerReaction
	steps := faultStep + 6
	for step := 0; step < steps; step++ {
		rec.StartStep(step)
		if step == faultStep {
			out.SPreFault = sv.S()
		}
		st, err := sv.SolveChecked()
		if err != nil {
			rec.EndStep()
			break
		}
		sim.KickDrift(sv.Sys, p.Dt)
		sv.Refill()
		b.AfterStep(sv, balance.StepTimes{CPU: st.CPUTime, GPU: st.GPUTime})
		rec.EndStep()
	}
	out.SFinal = sv.S()
	out.AliveDevices = sv.Cluster.AliveDevices()
	for _, sr := range rec.Steps() {
		if sr.Step < faultStep {
			continue
		}
		for _, e := range sr.Events {
			switch e.Kind {
			case telemetry.EventCapacity:
				if e.FB > 0 && e.FA < e.FB {
					out.CapacityDropFrac = (e.FB - e.FA) / e.FB
				}
			case telemetry.EventState:
				if balance.State(e.B) == balance.Search {
					out.SearchReentered = true
				}
			}
		}
	}
	return out
}
