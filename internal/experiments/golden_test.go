package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// Golden tests freeze the deterministic headline numbers of the
// reproduction (EXPERIMENTS.md) so refactors cannot silently change the
// recorded results. Tolerances are tight but not bit-exact, to allow
// floating-point-neutral reorderings.

func approx(t *testing.T, name string, got, want, rtol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: got %v want 0", name, got)
		}
		return
	}
	if r := (got - want) / want; r > rtol || r < -rtol {
		t.Errorf("%s: got %v want %v (rel %+.3f)", name, got, want, r)
	}
}

func TestGoldenFig6(t *testing.T) {
	pts := Fig6(Params{Seed: 42})
	by := map[int]ScalePoint{}
	for _, pt := range pts {
		by[pt.Cores] = pt
	}
	approx(t, "speedup@2", by[2].Speedup, 2.01, 0.02)
	approx(t, "speedup@16", by[16].Speedup, 16.99, 0.02)
	approx(t, "speedup@32", by[32].Speedup, 25.06, 0.02)
}

func TestGoldenTable1(t *testing.T) {
	pts := Table1(Params{Seed: 42})
	approx(t, "gpu2", pts[1].Speedup, 1.98, 0.03)
	approx(t, "gpu3", pts[2].Speedup, 2.93, 0.03)
	approx(t, "gpu4", pts[3].Speedup, 3.68, 0.03)
}

func TestGoldenFig4Regimes(t *testing.T) {
	pts := Fig4(Params{N: 20000, Seed: 42})
	r := AnalyzeUniformGap(pts)
	if want := []int{5, 4, 3, 2}; fmt.Sprint(r.Depths) != fmt.Sprint(want) {
		t.Errorf("regime depths %v, want %v", r.Depths, want)
	}
	if r.MaxSmooth != 0 {
		t.Errorf("within-regime variation %v, want 0", r.MaxSmooth)
	}
	approx(t, "gap jump", r.MaxJump, 2.21, 0.05)
}

func TestGoldenFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("N=50000 sweep; skipped with -short")
	}
	serial, curves := Fig7(Params{Seed: 42})
	approx(t, "serial best", serial.BestTime, 2.1011, 0.02)
	want := map[string]float64{
		"4C_1G": 16.0, "10C_1G": 22.2, "4C_2G": 25.0,
		"10C_2G": 36.8, "4C_4G": 37.5, "10C_4G": 48.9,
	}
	for _, c := range curves {
		approx(t, "speedup "+c.Label, c.BestSpeedup, want[c.Label], 0.03)
	}
}

func TestGoldenSweepRendersStably(t *testing.T) {
	// A textual spot check: the fig3 sweep at the default seed keeps its
	// leaf counts (pure tree structure, no timing involved).
	pts := Fig3(Params{N: 20000, Seed: 42})
	var b strings.Builder
	for _, pt := range pts {
		fmt.Fprintf(&b, "%d:%d ", pt.S, pt.Leaves)
	}
	got := strings.TrimSpace(b.String())
	const want = "4:11414 6:8961 8:7305 12:5196 16:4078 24:2924 32:2262 " +
		"48:1591 64:1207 96:822 128:676 192:557 256:466 384:329 512:271 " +
		"768:190 1024:148 1536:110 2048:96"
	if got != want {
		t.Errorf("fig3 leaf counts changed:\ngot  %s\nwant %s", got, want)
	}
}
