package experiments

import (
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/expansion"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/sched"
	"afmm/internal/sim"
)

// KernelsBenchResult is the machine-readable payload of the "kernels"
// benchmark (written to BENCH_kernels.json by afmm-bench). All times are
// host wall clock; every phase runs serially on one core so the numbers
// are raw kernel rates, not scheduling artifacts.
//
// The M2L phase replays the exact downward-pass translation workload of a
// Plummer tree — every V-list pair, in node order — through three
// implementations: the shared class table (M2LBatchTable), the PR-1
// per-workspace per-direction cache (M2LBatch), and the uncached
// per-pair rotated operator (M2LRotated). The P2P phase measures pair
// rates of the tiled kernels against their scalar baselines and the
// float32 variants on a near-field-shaped call (one leaf row against a
// gathered source span). The end-to-end phase times whole solver steps at
// the same N and P with the class table on and off.
type KernelsBenchResult struct {
	N    int   `json:"n"`
	S    int   `json:"s"`
	P    int   `json:"p"`
	Seed int64 `json:"seed"`

	// M2L translation workload (from the real tree's V lists).
	M2LPairs       int64   `json:"m2l_pairs"`
	M2LClasses     int     `json:"m2l_classes"`
	M2LRotations   int     `json:"m2l_rotations"`
	M2LRotCoverage float64 `json:"m2l_rot_coverage"`
	TableBuildNs   int64   `json:"table_build_ns"`
	// Nanoseconds per translation.
	M2LNsTable  float64 `json:"m2l_ns_table"`
	M2LNsCache  float64 `json:"m2l_ns_cache"`
	M2LNsDirect float64 `json:"m2l_ns_direct"`
	// Headline ratios: table throughput over the per-direction cache
	// (acceptance target >= 1.3) and over the uncached operator.
	M2LSpeedupVsCache  float64 `json:"m2l_speedup_vs_cache"`
	M2LSpeedupVsDirect float64 `json:"m2l_speedup_vs_direct"`

	// P2P pair rates (pairs per second), near-field call shape.
	P2PTargets int `json:"p2p_targets"`
	P2PSources int `json:"p2p_sources"`

	GravPairRateBlocked float64 `json:"grav_pair_rate_blocked"`
	GravPairRateScalar  float64 `json:"grav_pair_rate_scalar"`
	GravPairRateF32     float64 `json:"grav_pair_rate_f32"`
	GravBlockedSpeedup  float64 `json:"grav_blocked_speedup"`
	GravF32Speedup      float64 `json:"grav_f32_speedup"`

	StokesPairRateBlocked float64 `json:"stokes_pair_rate_blocked"`
	StokesPairRateScalar  float64 `json:"stokes_pair_rate_scalar"`
	StokesPairRateF32     float64 `json:"stokes_pair_rate_f32"`
	StokesBlockedSpeedup  float64 `json:"stokes_blocked_speedup"`
	StokesF32Speedup      float64 `json:"stokes_f32_speedup"`

	// End-to-end solver steps, single-worker pool.
	EndToEndSteps   int     `json:"end_to_end_steps"`
	StepNsTable     int64   `json:"step_ns_table"`
	StepNsNoTable   int64   `json:"step_ns_no_table"`
	EndToEndSpeedup float64 `json:"end_to_end_speedup"`
}

// kernelsRotCap mirrors the solvers' rotation-setup cap so the benchmarked
// table is the production table.
const kernelsRotCap = 1024

// Kernels measures the raw kernel-speed work: class-table M2L against the
// per-direction cache and the uncached operator on a real tree's
// translation workload, tiled/float32 P2P pair rates against the scalar
// baseline, and the end-to-end step effect of the table.
func Kernels(p Params) KernelsBenchResult {
	if p.N <= 0 {
		p.N = 100000
	}
	p.setDefaults()
	const s = 64
	res := KernelsBenchResult{N: p.N, S: s, P: p.P, Seed: p.Seed}
	rng := newRand(p.Seed)

	// ---- Phase 1: M2L translation workload --------------------------------
	sys := distrib.Plummer(p.N, 1, 1, p.Seed)
	tr := octree.Build(sys, octree.Config{S: s})
	tr.BuildLists()
	cls := tr.M2LClasses()
	res.M2LPairs = cls.Pairs
	res.M2LClasses = cls.Classes()

	// Random order-P multipoles for every node; magnitudes O(1) so the
	// accumulations stay finite over the whole sweep.
	mp := make([]expansion.Expansion, len(tr.Nodes))
	for i := range mp {
		mp[i] = expansion.NewExpansion(p.P)
		for c := range mp[i].C {
			mp[i].C[c] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}

	tb := expansion.NewM2LTable(p.P)
	tm := sched.StartTimer()
	nrot := tb.Plan(cls.Dirs, cls.PairsPerClass, kernelsRotCap)
	tb.BuildRotRange(0, nrot) // serial: the build cost a 1-core host pays
	res.TableBuildNs = tm.Elapsed().Nanoseconds()
	res.M2LRotations = tb.Rotations()
	var covered int64
	for c := range cls.Dirs {
		if tb.HasRot(c) {
			covered += cls.PairsPerClass[c]
		}
	}
	if cls.Pairs > 0 {
		res.M2LRotCoverage = float64(covered) / float64(cls.Pairs)
	}

	// One sweep = every V-list pair once, node order, like the downward
	// pass. Each variant keeps its own workspace (the cache variant's LRU
	// warms across repetitions, exactly as a long-lived worker's would).
	var srcs []expansion.M2LSource
	sweep := func(w *expansion.Workspace, l expansion.Expansion, f func(l expansion.Expansion, to geom.Vec3, srcs []expansion.M2LSource, row []int32)) {
		for ni := range tr.Nodes {
			n := &tr.Nodes[ni]
			if len(n.V) == 0 {
				continue
			}
			srcs = srcs[:0]
			for _, vi := range n.V {
				srcs = append(srcs, expansion.M2LSource{M: mp[vi], From: tr.Nodes[vi].Box.Center})
			}
			f(l, n.Box.Center, srcs, cls.Row(int32(ni)))
		}
	}
	wTab, wCache, wDir := expansion.NewWorkspace(p.P), expansion.NewWorkspace(p.P), expansion.NewWorkspace(p.P)
	lTab, lCache, lDir := expansion.NewExpansion(p.P), expansion.NewExpansion(p.P), expansion.NewExpansion(p.P)
	const reps = 3
	var nsTable, nsCache, nsDirect int64
	for rep := 0; rep < reps; rep++ {
		// Alternate variants within each repetition so slow host-speed
		// drift hits all three equally.
		tm = sched.StartTimer()
		sweep(wTab, lTab, func(l expansion.Expansion, to geom.Vec3, srcs []expansion.M2LSource, row []int32) {
			wTab.M2LBatchTable(l, to, srcs, row, tb)
		})
		nsTable += tm.Elapsed().Nanoseconds()

		tm = sched.StartTimer()
		sweep(wCache, lCache, func(l expansion.Expansion, to geom.Vec3, srcs []expansion.M2LSource, row []int32) {
			wCache.M2LBatch(l, to, srcs)
		})
		nsCache += tm.Elapsed().Nanoseconds()

		tm = sched.StartTimer()
		sweep(wDir, lDir, func(l expansion.Expansion, to geom.Vec3, srcs []expansion.M2LSource, row []int32) {
			for i := range srcs {
				wDir.M2LRotated(l, to, srcs[i].M, srcs[i].From)
			}
		})
		nsDirect += tm.Elapsed().Nanoseconds()
	}
	den := float64(cls.Pairs) * reps
	if den > 0 {
		res.M2LNsTable = float64(nsTable) / den
		res.M2LNsCache = float64(nsCache) / den
		res.M2LNsDirect = float64(nsDirect) / den
	}
	if res.M2LNsTable > 0 {
		res.M2LSpeedupVsCache = res.M2LNsCache / res.M2LNsTable
		res.M2LSpeedupVsDirect = res.M2LNsDirect / res.M2LNsTable
	}

	// ---- Phase 2: P2P pair rates ------------------------------------------
	// Near-field call shape: one leaf row of S targets against a gathered
	// span of sources, repeated until the pair count is statistically
	// meaningful (~2e8 pairs per variant).
	const nt, ns = s, 4096
	res.P2PTargets, res.P2PSources = nt, ns
	xt := make([]geom.Vec3, nt)
	ys := make([]geom.Vec3, ns)
	ms := make([]float64, ns)
	fs := make([]geom.Vec3, ns)
	for i := range xt {
		xt[i] = randUnit(rng).Scale(0.5 + rng.Float64())
	}
	sx32 := make([]float32, ns)
	sy32 := make([]float32, ns)
	sz32 := make([]float32, ns)
	sm32 := make([]float32, ns)
	fx32 := make([]float32, ns)
	fy32 := make([]float32, ns)
	fz32 := make([]float32, ns)
	for j := range ys {
		ys[j] = randUnit(rng).Scale(0.5 + rng.Float64())
		ms[j] = rng.Float64()
		fs[j] = randUnit(rng)
		sx32[j], sy32[j], sz32[j] = float32(ys[j].X), float32(ys[j].Y), float32(ys[j].Z)
		sm32[j] = float32(ms[j])
		fx32[j], fy32[j], fz32[j] = float32(fs[j].X), float32(fs[j].Y), float32(fs[j].Z)
	}
	phi := make([]float64, nt)
	acc := make([]geom.Vec3, nt)
	vel := make([]geom.Vec3, nt)
	// Each variant runs in interleaved rounds so slow host-speed drift
	// (thermal, noisy neighbors) cancels instead of biasing whichever
	// variant ran later. ~2e8 pairs per variant total.
	const p2pRounds, p2pRepsPerRound = 8, 100
	pairRates := func(fs ...func()) []float64 {
		for _, f := range fs {
			f() // warm up
		}
		total := make([]int64, len(fs))
		for round := 0; round < p2pRounds; round++ {
			for vi, f := range fs {
				tm := sched.StartTimer()
				for r := 0; r < p2pRepsPerRound; r++ {
					f()
				}
				total[vi] += tm.Elapsed().Nanoseconds()
			}
		}
		rates := make([]float64, len(fs))
		pairs := float64(p2pRounds) * p2pRepsPerRound * nt * ns
		for vi, ns := range total {
			if ns > 0 {
				rates[vi] = pairs / (float64(ns) / 1e9)
			}
		}
		return rates
	}
	gk := kernels.Gravity{G: 1, Softening: 0.01}
	gr := pairRates(
		func() { gk.P2P(xt, phi, acc, ys, ms) },
		func() { gk.P2PScalar(xt, phi, acc, ys, ms) },
		func() { gk.P2P32(xt, phi, acc, sx32, sy32, sz32, sm32) },
	)
	res.GravPairRateBlocked, res.GravPairRateScalar, res.GravPairRateF32 = gr[0], gr[1], gr[2]
	if res.GravPairRateScalar > 0 {
		res.GravBlockedSpeedup = res.GravPairRateBlocked / res.GravPairRateScalar
		res.GravF32Speedup = res.GravPairRateF32 / res.GravPairRateScalar
	}
	sk := kernels.Stokeslet{Mu: 1, Eps: 0.05}
	sr := pairRates(
		func() { sk.P2P(xt, vel, ys, fs) },
		func() { sk.P2PScalar(xt, vel, ys, fs) },
		func() { sk.P2P32(xt, vel, sx32, sy32, sz32, fx32, fy32, fz32) },
	)
	res.StokesPairRateBlocked, res.StokesPairRateScalar, res.StokesPairRateF32 = sr[0], sr[1], sr[2]
	if res.StokesPairRateScalar > 0 {
		res.StokesBlockedSpeedup = res.StokesPairRateBlocked / res.StokesPairRateScalar
		res.StokesF32Speedup = res.StokesPairRateF32 / res.StokesPairRateScalar
	}

	// ---- Phase 3: end-to-end steps ----------------------------------------
	// Single-worker pool: the raw host numerics with the table on vs off,
	// alternating per step like the lists benchmark.
	eSteps := p.Steps
	if eSteps <= 0 || eSteps > 4 {
		eSteps = 3
	}
	res.EndToEndSteps = eSteps
	dt := p.Dt
	mkSolver := func(disable bool) *core.Solver {
		sys := distrib.Plummer(p.N, 1, 1, p.Seed)
		sv := core.NewSolver(sys, core.Config{
			P:               p.P,
			S:               s,
			Kernel:          kernels.Gravity{G: 1, Softening: 0.01},
			Pool:            sched.NewPool(1),
			DisableM2LTable: disable,
		})
		sv.Solve() // warm caches; the first solve builds lists (and table)
		return sv
	}
	tab, noTab := mkSolver(false), mkSolver(true)
	stepOnce := func(sv *core.Solver) int64 {
		tm := sched.StartTimer()
		sv.Solve()
		sim.KickDrift(sv.Sys, dt)
		sv.Refill()
		return tm.Elapsed().Nanoseconds()
	}
	for step := 0; step < eSteps; step++ {
		res.StepNsTable += stepOnce(tab)
		res.StepNsNoTable += stepOnce(noTab)
	}
	res.StepNsTable /= int64(eSteps)
	res.StepNsNoTable /= int64(eSteps)
	if res.StepNsTable > 0 {
		res.EndToEndSpeedup = float64(res.StepNsNoTable) / float64(res.StepNsTable)
	}
	return res
}
