package experiments

import (
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
	"afmm/internal/octree"
	"afmm/internal/sched"
	"afmm/internal/sim"
)

// ListsBenchResult is the machine-readable payload of the "lists"
// benchmark (written to BENCH_lists.json by afmm-bench). All times are
// host wall clock.
//
// The maintenance phase drives a Plummer trajectory through per-step
// Refill (plus periodic Enforce_S edits) and times BuildLists with the
// persistent cache against the same trajectory with the cache disabled,
// where every step pays the from-scratch dual traversal. MaintenanceRatio
// is the headline number: cached per-step list time over from-scratch
// per-step list time (the acceptance target is <= 0.10).
//
// The end-to-end phase times whole steps (Solve + integrate + Refill) of
// the gravity solver with the cache on and off.
type ListsBenchResult struct {
	N     int `json:"n"`
	S     int `json:"s"`
	P     int `json:"p"`
	Steps int `json:"steps"`

	// List maintenance per step.
	EnsureNsPerStep  int64   `json:"ensure_ns_per_step"`
	ScratchNsPerStep int64   `json:"scratch_ns_per_step"`
	MaintenanceRatio float64 `json:"maintenance_ratio"`
	FullBuilds       int     `json:"full_builds"`
	Repairs          int     `json:"repairs"`
	Skips            int     `json:"skips"`
	// Dual-traversal pair visits summed over the cached trajectory's
	// steps vs the from-scratch trajectory's (the work the balancer's
	// LBCostModel charges for).
	CachedPairs  int64 `json:"cached_pairs"`
	ScratchPairs int64 `json:"scratch_pairs"`

	// End-to-end solver step time.
	EndToEndSteps    int     `json:"end_to_end_steps"`
	StepNsCached     int64   `json:"step_ns_cached"`
	StepNsScratch    int64   `json:"step_ns_scratch"`
	EndToEndSpeedup  float64 `json:"end_to_end_speedup"`
	ListShareScratch float64 `json:"list_share_scratch"`
}

// Lists measures what the persistent interaction-list cache buys on a
// moving Plummer trajectory: the per-step list-maintenance cost (skip or
// local repair) against the from-scratch dual traversal, and the whole
// solver step with the cache on vs off. Both passes follow identical
// trajectories (Refill and Enforce_S decisions depend only on occupancy),
// so the comparison is one-to-one per step.
func Lists(p Params) ListsBenchResult {
	if p.N <= 0 {
		p.N = 100000
	}
	if p.Steps <= 0 {
		p.Steps = 40
	}
	if p.Dt <= 0 {
		p.Dt = 2e-4 // the dt the repo's dynamic sim tests integrate at
	}
	p.setDefaults()
	const s = 64
	res := ListsBenchResult{N: p.N, S: s, P: p.P, Steps: p.Steps}

	// Phase 1: bare decomposition, list maintenance only. Bodies drift
	// along their Plummer velocities; every 20th step Enforce_S restores
	// the capacity invariant, generating the Collapse/PushDown batches
	// the repair path exists for — a harsher restructuring cadence than
	// the real Observation-state balancer, which only enforces on a
	// measured >5% regression.
	maintain := func(noCache bool) (perStep int64, st octree.ListStats, pairs int64) {
		sys := distrib.Plummer(p.N, 1, 1, p.Seed)
		tr := octree.Build(sys, octree.Config{S: s, NoListCache: noCache})
		tr.BuildLists() // initial construction is not maintenance
		var total int64
		for step := 0; step < p.Steps; step++ {
			for i := range sys.Pos {
				sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(p.Dt))
			}
			tr.Refill()
			if step%20 == 19 {
				tr.EnforceS()
			}
			tm := sched.StartTimer()
			tr.BuildLists()
			total += tm.Elapsed().Nanoseconds()
			pairs += tr.LastListWork().Pairs
		}
		return total / int64(p.Steps), tr.ListBuildStats(), pairs
	}
	var st octree.ListStats
	res.EnsureNsPerStep, st, res.CachedPairs = maintain(false)
	res.FullBuilds = st.FullBuilds
	res.Repairs = st.Repairs
	res.Skips = st.Skips
	res.ScratchNsPerStep, _, res.ScratchPairs = maintain(true)
	if res.ScratchNsPerStep > 0 {
		res.MaintenanceRatio = float64(res.EnsureNsPerStep) / float64(res.ScratchNsPerStep)
	}

	// Phase 2: end-to-end solver steps (real numerics; virtual devices
	// are irrelevant to host wall clock, so the CPU path runs the near
	// field). Fewer steps: each one is a full FMM solve. The two variants
	// advance in lockstep, alternating per step, so slow drift in host
	// speed hits both equally instead of biasing whichever ran second.
	eSteps := p.Steps
	if eSteps > 10 {
		eSteps = 10
	}
	res.EndToEndSteps = eSteps
	mkSolver := func(disable bool) *core.Solver {
		sys := distrib.Plummer(p.N, 1, 1, p.Seed)
		sv := core.NewSolver(sys, core.Config{
			P:                p.P,
			S:                s,
			Kernel:           kernels.Gravity{G: 1, Softening: 0.01},
			DisableListCache: disable,
		})
		sv.Solve() // warm the caches; the first solve always builds lists
		return sv
	}
	cached, scratch := mkSolver(false), mkSolver(true)
	stepOnce := func(sv *core.Solver) int64 {
		tm := sched.StartTimer()
		sv.Solve()
		sim.KickDrift(sv.Sys, p.Dt)
		sv.Refill()
		return tm.Elapsed().Nanoseconds()
	}
	for step := 0; step < eSteps; step++ {
		res.StepNsCached += stepOnce(cached)
		res.StepNsScratch += stepOnce(scratch)
	}
	res.StepNsCached /= int64(eSteps)
	res.StepNsScratch /= int64(eSteps)
	if res.StepNsCached > 0 {
		res.EndToEndSpeedup = float64(res.StepNsScratch) / float64(res.StepNsCached)
	}
	if res.StepNsScratch > 0 {
		res.ListShareScratch = float64(res.ScratchNsPerStep) / float64(res.StepNsScratch)
	}
	return res
}
