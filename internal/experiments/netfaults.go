package experiments

import (
	"runtime"
	"time"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/dmem"
	"afmm/internal/fault"
	"afmm/internal/particle"
	"afmm/internal/vcpu"
)

// NetFaultScenario is one link-fault schedule driven through the
// executing runtime and checked bit-exact against the fault-free
// single-node twin.
type NetFaultScenario struct {
	Name     string `json:"name"`
	Schedule string `json:"schedule"`
	// FramesSent includes retransmissions and chaos duplicates;
	// DeliveredRate is verified first deliveries over frames sent.
	FramesSent    int64   `json:"frames_sent"`
	FramesDropped int64   `json:"frames_dropped"`
	DeliveredRate float64 `json:"delivered_rate"`
	Retries       int64   `json:"retries"`
	// RetryOverhead is retransmitted frames per delivered flow.
	RetryOverhead  float64 `json:"retry_overhead"`
	CorruptRejects int64   `json:"corrupt_rejects"`
	Timeouts       int64   `json:"timeouts"`
	// Recoveries counts deadline degradations (re-requests + host-side
	// ghost re-packs) — nonzero only for budget-exceeding schedules.
	Recoveries int64 `json:"recoveries"`
	WallNs     int64 `json:"wall_ns"`
	// Slowdown is wall time over the clean scenario's wall time: the
	// price of the schedule, paid in throughput only.
	Slowdown     float64 `json:"slowdown"`
	BitIdentical bool    `json:"bit_identical"`
}

// NetFaultDetection compares the heartbeat failure detector against the
// priced path's oracle on the same injected fail-stop.
type NetFaultDetection struct {
	// OracleSec is the modeled oracle charge (DetectTimeout).
	OracleSec float64 `json:"oracle_sec"`
	// HeartbeatSec is the measured wall-clock heartbeat detection latency.
	HeartbeatSec float64 `json:"heartbeat_sec"`
	// WindowSec is the configured suspicion window
	// (HeartbeatInterval * SuspectAfter), the latency floor.
	WindowSec    float64 `json:"window_sec"`
	NodeLosses   int     `json:"node_losses"`
	BitIdentical bool    `json:"bit_identical"`
}

// NetFaultsResult is the machine-readable payload of the "netfaults"
// benchmark (written to BENCH_netfaults.json by afmm-bench).
type NetFaultsResult struct {
	N         int                `json:"n"`
	P         int                `json:"p"`
	Nodes     int                `json:"nodes"`
	Steps     int                `json:"steps"`
	HostCores int                `json:"host_cores"`
	Scenarios []NetFaultScenario `json:"scenarios"`
	Detection NetFaultDetection  `json:"detection"`
}

// netFaultLink is the benchmark's delivery-protocol tuning: fast
// retransmits so lossy scenarios converge quickly, generous deadlines so
// only the hard-partition scenario degrades.
func netFaultLink() dmem.LinkConfig {
	return dmem.LinkConfig{
		RetransmitTimeout: 200 * time.Microsecond,
		MaxRetries:        10,
		NearDeadline:      5 * time.Second,
		FarDeadline:       5 * time.Second,
	}
}

func netFaultsSingleTwin(n, steps int, dt float64, seed int64, coreCfg core.Config) *particle.System {
	sys := distrib.Plummer(n, 1, 1, seed)
	sv := core.NewSolver(sys, coreCfg)
	for step := 0; step < steps; step++ {
		sv.Solve()
		for i := range sys.Pos {
			sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
			sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
		}
		sv.Refill()
	}
	return sys
}

func sameTrajectory(a, b *particle.System) bool {
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Phi[i] != b.Phi[i] {
			return false
		}
	}
	return true
}

// NetFaults drives the executing runtime through escalating link-fault
// schedules — clean, lossy-within-budget, mixed chaos, hard partition —
// and an injected node loss under both detectors. Every scenario's
// trajectory must remain exactly the fault-free single-node trajectory;
// the schedules may only cost frames, retries, and wall clock.
func NetFaults(p Params) NetFaultsResult {
	p.setDefaults()
	n := p.N
	if n <= 0 || n > 3000 {
		n = 3000
	}
	const (
		nodes = 4
		steps = 3
	)
	dt := p.Dt
	coreCfg := core.Config{P: p.P, S: 32, DisableM2LTable: true}
	res := NetFaultsResult{
		N: n, P: p.P, Nodes: nodes, Steps: steps,
		HostCores: runtime.NumCPU(),
	}
	want := netFaultsSingleTwin(n, steps, dt, p.Seed, coreCfg)

	runScenario := func(name, spec string, link dmem.LinkConfig) NetFaultScenario {
		sc := NetFaultScenario{Name: name, Schedule: spec}
		var sch *fault.LinkSchedule
		if spec != "" {
			var err error
			if sch, err = fault.ParseLinkEvents(spec); err != nil {
				return sc
			}
		}
		sysD := distrib.Plummer(n, 1, 1, p.Seed)
		d, err := dmem.NewSolver(sysD, dmem.Config{
			Core:       coreCfg,
			Nodes:      dmem.HomogeneousNodes(nodes, dmem.NodeSpec{CPU: vcpu.Spec{Cores: 4}.Normalized()}),
			Execute:    true,
			LinkFaults: sch,
			LinkSeed:   p.Seed,
			Link:       link,
		})
		if err != nil {
			return sc
		}
		t0 := time.Now()
		r := d.RunWith(dmem.RunConfig{Steps: steps, Dt: dt})
		sc.WallNs = time.Since(t0).Nanoseconds()
		sc.FramesSent = r.Net.FramesSent
		sc.FramesDropped = r.Net.FramesDropped
		sc.Retries = r.Net.Retries
		sc.CorruptRejects = r.Net.CorruptRejects
		sc.Timeouts = r.Net.Timeouts
		sc.Recoveries = r.Net.Rerequests + r.Net.DegradedGhostFlows
		if sc.FramesSent > 0 {
			sc.DeliveredRate = float64(r.Net.FramesDelivered) / float64(sc.FramesSent)
		}
		if r.Net.FramesDelivered > 0 {
			sc.RetryOverhead = float64(sc.Retries) / float64(r.Net.FramesDelivered)
		}
		sc.BitIdentical = sameTrajectory(sysD, want)
		return sc
	}

	res.Scenarios = append(res.Scenarios,
		runScenario("clean", "", netFaultLink()),
		runScenario("lossy",
			"link0-1:drop0.3@step0,link1-0:drop0.2@step0,link2-3:drop0.3@step0",
			netFaultLink()),
		runScenario("mixed",
			"link0-1:drop0.4@step0,link0-2:dup@step0,link2-0:corrupt0.4@step0,"+
				"link1-2:reorder@step0,link2-1:delay0.2ms@step0,link3-0:drop0.3@step1",
			netFaultLink()))
	hard := dmem.LinkConfig{
		RetransmitTimeout: 100 * time.Microsecond,
		MaxRetries:        2,
		NearDeadline:      20 * time.Millisecond,
		FarDeadline:       20 * time.Millisecond,
	}
	res.Scenarios = append(res.Scenarios,
		runScenario("hard-partition",
			"link0-1:drop1.0@step0,link0-2:drop1.0@step0", hard))
	if base := res.Scenarios[0].WallNs; base > 0 {
		for i := range res.Scenarios {
			res.Scenarios[i].Slowdown = float64(res.Scenarios[i].WallNs) / float64(base)
		}
	}

	// Detection: the same fail-stop, first charged by the oracle's modeled
	// timeout, then earned by the heartbeat detector's measured latency.
	hb := netFaultLink()
	hb.HeartbeatInterval = 500 * time.Microsecond
	hb.SuspectAfter = 10
	res.Detection.WindowSec = hb.HeartbeatInterval.Seconds() * float64(hb.SuspectAfter)
	runLoss := func(oracle bool) (dmem.RunResult, bool) {
		events, _ := fault.ParseNodeEvents("node2:failstop@step1")
		sysD := distrib.Plummer(n, 1, 1, p.Seed)
		d, err := dmem.NewSolver(sysD, dmem.Config{
			Core:         coreCfg,
			Nodes:        dmem.HomogeneousNodes(nodes, dmem.NodeSpec{CPU: vcpu.Spec{Cores: 4}.Normalized()}),
			Execute:      true,
			NodeFaults:   events,
			Link:         hb,
			OracleDetect: oracle,
		})
		if err != nil {
			return dmem.RunResult{}, false
		}
		r := d.RunWith(dmem.RunConfig{Steps: steps, Dt: dt})
		return r, sameTrajectory(sysD, want)
	}
	if r, ok := runLoss(true); r.NodeLosses == 1 {
		// The oracle charge is the configured DetectTimeout default.
		res.Detection.OracleSec = r.RecoveryTime - float64(nodes)*dmem.DefaultNetwork().Latency
		res.Detection.BitIdentical = ok
	}
	if r, ok := runLoss(false); r.NodeLosses == 1 && len(r.DetectLatencies) == 1 {
		res.Detection.HeartbeatSec = r.DetectLatencies[0]
		res.Detection.NodeLosses = r.NodeLosses
		res.Detection.BitIdentical = res.Detection.BitIdentical && ok
	}
	return res
}
