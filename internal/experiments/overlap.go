package experiments

import (
	"runtime"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
	"afmm/internal/sched"
	"afmm/internal/sim"
)

// OverlapBenchResult is the machine-readable payload of the "overlap"
// benchmark (written to BENCH_overlap.json by afmm-bench). All times are
// host wall clock.
//
// StepNsSequential and StepNsOverlapped are the mean solve wall of the
// same trajectory with the concurrent-phase scheduler off and on; the
// measured reduction is the headline number (acceptance target >= 15% at
// N=100k with at least one simulated GPU). The measured number depends on
// HostCores: near and far phases can only hide behind each other when the
// host has cores to run both, so on small hosts the measured reduction
// collapses toward zero even though the schedule overlaps correctly (the
// solver's own SerialWall accounting, reported as OverlapSavingNs, shows
// how much concurrency the schedule actually achieved). The benchmark
// forces a PoolWorkers >= 2 pool so the overlapped schedule runs even on
// a 1-core host — OverlapAuto with a default pool would decline there,
// which is also the production default — so on such hosts the measured
// number includes the time-slicing cost the auto gate exists to avoid.
// ProjectedStepNs
// applies the critical-path model to the measured sequential phase times:
// with enough cores the shorter of {near, up+down} hides entirely behind
// the longer, so the projected step is Wall - min(Near, Far). The
// projection is a model, clearly labeled as such — trust the measured
// numbers on hosts with HostCores well above the worker count.
type OverlapBenchResult struct {
	N           int `json:"n"`
	S           int `json:"s"`
	P           int `json:"p"`
	GPUs        int `json:"gpus"`
	Steps       int `json:"steps"`
	HostCores   int `json:"host_cores"`
	PoolWorkers int `json:"pool_workers"`

	// Measured (host wall clock, mean per solve).
	StepNsSequential  int64   `json:"step_ns_sequential"`
	StepNsOverlapped  int64   `json:"step_ns_overlapped"`
	MeasuredReduction float64 `json:"measured_reduction"`
	// OverlapSavingNs is the overlapped solver's own accounting: mean
	// SerialWall - Wall, i.e. how much wall time running near and far
	// concurrently saved over executing the same phases back to back.
	OverlapSavingNs int64 `json:"overlap_saving_ns"`

	// Sequential phase breakdown feeding the projection (mean per solve).
	NearNs int64 `json:"near_ns"`
	FarNs  int64 `json:"far_ns"`
	WallNs int64 `json:"wall_ns"`

	// Critical-path projection (model, not measurement).
	ProjectedStepNs     int64   `json:"projected_step_ns"`
	ProjectedReduction  float64 `json:"projected_reduction"`
	ProjectionIsModeled bool    `json:"projection_is_modeled"`
}

// Overlap benchmarks the concurrent near/far schedule against the
// sequential one on identical Plummer trajectories with at least one
// simulated GPU (so the reserved-driver path is exercised). The two
// variants alternate per step so slow drift in host speed hits both
// equally.
func Overlap(p Params) OverlapBenchResult {
	if p.N <= 0 {
		p.N = 100000
	}
	if p.Steps <= 0 {
		p.Steps = 8
	}
	p.setDefaults()
	const s = 64
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	res := OverlapBenchResult{
		N: p.N, S: s, P: p.P, GPUs: p.GPUs, Steps: p.Steps,
		HostCores:           runtime.NumCPU(),
		PoolWorkers:         workers,
		ProjectionIsModeled: true,
	}

	mk := func(mode core.OverlapMode) *core.Solver {
		sys := distrib.Plummer(p.N, 1, 1, p.Seed)
		sv := core.NewSolver(sys, core.Config{
			P:       p.P,
			S:       s,
			NumGPUs: p.GPUs,
			GPUSpec: p.gpuSpec(),
			CPU:     cpuSpec(p.Cores),
			Kernel:  kernels.Gravity{G: 1, Softening: 0.01},
			Overlap: mode,
			Pool:    sched.NewPool(workers),
		})
		sv.Solve() // warm tree, lists, workspaces before timing
		return sv
	}
	ov, seq := mk(core.OverlapAuto), mk(core.OverlapOff)

	step := func(sv *core.Solver) (wall, near, far, saving int64) {
		st := sv.Solve()
		sim.KickDrift(sv.Sys, p.Dt)
		sv.Refill()
		return st.Host.Wall.Nanoseconds(),
			st.Host.Near.Nanoseconds(),
			st.Host.Far.Nanoseconds(),
			(st.Host.SerialWall - st.Host.Wall).Nanoseconds()
	}
	for i := 0; i < p.Steps; i++ {
		w, n, f, _ := step(seq)
		res.StepNsSequential += w
		res.NearNs += n
		res.FarNs += f
		res.WallNs += w
		w, _, _, sv := step(ov)
		res.StepNsOverlapped += w
		res.OverlapSavingNs += sv
	}
	n := int64(p.Steps)
	res.StepNsSequential /= n
	res.StepNsOverlapped /= n
	res.NearNs /= n
	res.FarNs /= n
	res.WallNs /= n
	res.OverlapSavingNs /= n
	if res.StepNsSequential > 0 {
		res.MeasuredReduction = 1 - float64(res.StepNsOverlapped)/float64(res.StepNsSequential)
	}
	hidden := res.NearNs
	if res.FarNs < hidden {
		hidden = res.FarNs
	}
	res.ProjectedStepNs = res.WallNs - hidden
	if res.WallNs > 0 {
		res.ProjectedReduction = float64(hidden) / float64(res.WallNs)
	}
	return res
}
