package experiments

import (
	"math"
	"math/rand"

	"afmm/internal/geom"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randUnit returns a uniformly distributed unit vector.
func randUnit(rng *rand.Rand) geom.Vec3 {
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	return geom.Vec3{X: s * math.Cos(phi), Y: s * math.Sin(phi), Z: z}
}
