package experiments

import (
	"time"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
)

// SweepBenchRow is one (size, mode) wall-clock measurement of the host
// sweep phases: nanoseconds for one full phase over the whole tree, best
// of the repetitions.
type SweepBenchRow struct {
	N      int    `json:"n"`
	Mode   string `json:"mode"`
	UpNs   int64  `json:"up_ns"`
	DownNs int64  `json:"down_ns"`
	NearNs int64  `json:"near_ns"`
}

// SweepBenchResult is the machine-readable payload of the "sweeps"
// benchmark (written to BENCH_sweeps.json by afmm-bench).
type SweepBenchResult struct {
	P    int             `json:"p"`
	S    int             `json:"s"`
	Rows []SweepBenchRow `json:"rows"`
	// FarFieldSpeedup is the recursive over level-synchronous far-field
	// (up + down sweep) time ratio at the largest problem size.
	FarFieldSpeedup float64 `json:"far_field_speedup"`
}

// Sweeps measures real host wall-clock time — not virtual-machine time —
// of the far-field sweeps and the CPU near field, comparing the
// level-synchronous mode against the legacy recursive mode on Plummer
// spheres. Unlike the figure experiments this exercises the actual
// numerics, so it is the benchmark backing the sweep-mode default.
func Sweeps(p Params, sizes []int) SweepBenchResult {
	p.setDefaults()
	if len(sizes) == 0 {
		sizes = []int{20000, 100000}
	}
	const s = 64
	const reps = 3
	res := SweepBenchResult{P: p.P, S: s}
	var recFar, lvlFar int64
	for _, n := range sizes {
		sys := distrib.Plummer(n, 1, 1, p.Seed)
		for _, mode := range []struct {
			name string
			m    core.SweepMode
		}{
			{"levelsync", core.SweepLevelSync},
			{"recursive", core.SweepRecursive},
		} {
			sv := core.NewSolver(sys.Clone(), core.Config{
				P:         p.P,
				S:         s,
				Kernel:    kernels.Gravity{G: 1},
				SweepMode: mode.m,
			})
			row := SweepBenchRow{N: n, Mode: mode.name}
			for r := 0; r < reps; r++ {
				up, down, near := sv.SweepBench()
				row.UpNs = minNs(row.UpNs, up)
				row.DownNs = minNs(row.DownNs, down)
				row.NearNs = minNs(row.NearNs, near)
			}
			res.Rows = append(res.Rows, row)
			far := row.UpNs + row.DownNs
			if mode.m == core.SweepRecursive {
				recFar = far
			} else {
				lvlFar = far
			}
		}
	}
	if lvlFar > 0 {
		res.FarFieldSpeedup = float64(recFar) / float64(lvlFar)
	}
	return res
}

func minNs(prev int64, d time.Duration) int64 {
	if prev == 0 || int64(d) < prev {
		return int64(d)
	}
	return prev
}
