package experiments

import (
	"runtime"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
	"afmm/internal/sched"
	"afmm/internal/sim"
)

// TaskGraphPoolResult is the level-sync vs task-graph comparison at one
// forced pool size. All times are host wall clock, mean per solve.
//
// The makespan comparison is the headline (the ROADMAP success metric):
// MakespanNsLevelSync is the measured wall of the fork-join near+far+L2P
// region — its schedule length, barriers included — recovered from the
// solver's own serial-equivalent accounting as
// Wall - SerialWall + Near + Far (exact on both the overlapped and the
// sequential fallback path). MakespanNsTaskGraph is the dependency-driven
// schedule's length over the same work: first node start to last node
// end, as measured by sched.Graph. GraphOverheadNs is what the DAG path
// spends outside that schedule (graph build + span bookkeeping), so
// MakespanNsTaskGraph + GraphOverheadNs is the DAG region wall clock.
//
// CriticalPathNs is the weighted longest path through the executed graph:
// the floor no worker count can beat. CriticalPathFrac = critical path /
// makespan — 1.0 means the pool ran the schedule at its dependency limit.
type TaskGraphPoolResult struct {
	PoolWorkers int `json:"pool_workers"`

	StepNsLevelSync   int64   `json:"step_ns_levelsync"`
	StepNsTaskGraph   int64   `json:"step_ns_taskgraph"`
	MeasuredReduction float64 `json:"measured_reduction"`

	MakespanNsLevelSync int64   `json:"makespan_ns_levelsync"`
	MakespanNsTaskGraph int64   `json:"makespan_ns_taskgraph"`
	MakespanReduction   float64 `json:"makespan_reduction"`
	GraphOverheadNs     int64   `json:"graph_overhead_ns"`

	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	CriticalPathNs   int64   `json:"critical_path_ns"`
	CriticalPathFrac float64 `json:"critical_path_frac"`
	// MaxReady is the deepest any class ready queue got; ReadyHist[d]
	// counts node enqueues that found d nodes already waiting (last
	// bucket aggregates deeper), summed over all measured steps.
	MaxReady  int     `json:"max_ready"`
	ReadyHist []int64 `json:"ready_hist"`
	// LocalityHits counts ready-node pops where the drainer that produced
	// a node's operands also consumed it (the data-locality hint), summed
	// over all measured steps.
	LocalityHits int64 `json:"locality_hits"`
}

// TaskGraphBenchResult is the machine-readable payload of the "taskgraph"
// benchmark (written to BENCH_taskgraph.json by afmm-bench).
//
// HostCores is recorded for the same reason as in BENCH_overlap.json: the
// forced 2/4-worker pools only deliver real concurrency when the host has
// that many cores. On a 1-core host both schedules time-slice, the
// measured gap collapses toward the barrier-vs-queue bookkeeping
// difference, and CriticalPathFrac — not the step wall — is the number
// that shows how much slack the DAG recovered.
type TaskGraphBenchResult struct {
	N         int                   `json:"n"`
	S         int                   `json:"s"`
	P         int                   `json:"p"`
	GPUs      int                   `json:"gpus"`
	Steps     int                   `json:"steps"`
	HostCores int                   `json:"host_cores"`
	Pools     []TaskGraphPoolResult `json:"pools"`
}

// TaskGraph benchmarks the dependency-driven step DAG against the
// fork-join level-synchronous schedule on identical Plummer trajectories
// at forced 2- and 4-worker pools. The two variants alternate per step so
// slow drift in host speed hits both equally.
func TaskGraph(p Params) TaskGraphBenchResult {
	if p.N <= 0 {
		p.N = 60000
	}
	if p.Steps <= 0 {
		p.Steps = 8
	}
	p.setDefaults()
	const s = 64
	res := TaskGraphBenchResult{
		N: p.N, S: s, P: p.P, GPUs: p.GPUs, Steps: p.Steps,
		HostCores: runtime.NumCPU(),
	}

	// The comparable region wall on either path: Far = up+down+L2P, and
	// SerialWall replaces the concurrent region with the phases run
	// back-to-back, so this difference isolates near+far+L2P as executed.
	region := func(st core.StepTimes) int64 {
		return (st.Host.Wall - st.Host.SerialWall + st.Host.Near + st.Host.Far).Nanoseconds()
	}
	for _, workers := range []int{2, 4} {
		mk := func(taskGraph bool) *core.Solver {
			sys := distrib.Plummer(p.N, 1, 1, p.Seed)
			sv := core.NewSolver(sys, core.Config{
				P:         p.P,
				S:         s,
				NumGPUs:   p.GPUs,
				GPUSpec:   p.gpuSpec(),
				CPU:       cpuSpec(p.Cores),
				Kernel:    kernels.Gravity{G: 1, Softening: 0.01},
				TaskGraph: taskGraph,
				Pool:      sched.NewPool(workers),
			})
			sv.Solve() // warm tree, lists, workspaces before timing
			return sv
		}
		tg, ls := mk(true), mk(false)
		pr := TaskGraphPoolResult{PoolWorkers: workers}
		for i := 0; i < p.Steps; i++ {
			stL := ls.Solve()
			sim.KickDrift(ls.Sys, p.Dt)
			ls.Refill()
			pr.StepNsLevelSync += stL.Host.Wall.Nanoseconds()
			pr.MakespanNsLevelSync += region(stL)

			stT := tg.Solve()
			sim.KickDrift(tg.Sys, p.Dt)
			tg.Refill()
			pr.StepNsTaskGraph += stT.Host.Wall.Nanoseconds()
			gs := tg.TaskGraphStats()
			pr.MakespanNsTaskGraph += gs.MakespanNs
			pr.CriticalPathNs += gs.CriticalPathNs
			pr.GraphOverheadNs += region(stT) - gs.MakespanNs
			pr.Nodes, pr.Edges = gs.Nodes, gs.Edges
			pr.LocalityHits += gs.LocalityHits
			if gs.MaxReady > pr.MaxReady {
				pr.MaxReady = gs.MaxReady
			}
			if pr.ReadyHist == nil {
				pr.ReadyHist = make([]int64, len(gs.ReadyHist))
			}
			for b, v := range gs.ReadyHist {
				pr.ReadyHist[b] += v
			}
		}
		n := int64(p.Steps)
		pr.StepNsLevelSync /= n
		pr.StepNsTaskGraph /= n
		pr.MakespanNsLevelSync /= n
		pr.MakespanNsTaskGraph /= n
		pr.CriticalPathNs /= n
		pr.GraphOverheadNs /= n
		if pr.StepNsLevelSync > 0 {
			pr.MeasuredReduction = 1 - float64(pr.StepNsTaskGraph)/float64(pr.StepNsLevelSync)
		}
		if pr.MakespanNsLevelSync > 0 {
			pr.MakespanReduction = 1 - float64(pr.MakespanNsTaskGraph)/float64(pr.MakespanNsLevelSync)
		}
		if pr.MakespanNsTaskGraph > 0 {
			pr.CriticalPathFrac = float64(pr.CriticalPathNs) / float64(pr.MakespanNsTaskGraph)
		}
		res.Pools = append(res.Pools, pr)
	}
	return res
}
