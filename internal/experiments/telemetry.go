package experiments

import (
	"io"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
	"afmm/internal/metrics"
	"afmm/internal/sched"
	"afmm/internal/sim"
	"afmm/internal/telemetry"
)

// TelemetryBenchResult is the machine-readable payload of the "telemetry"
// benchmark (written to BENCH_telemetry.json by afmm-bench). It answers
// two questions about the step tracer: what does enabling it cost, and
// does it actually see the step?
//
// Two identical gravity solvers advance the same Plummer trajectory, one
// with a recorder attached (JSONL sink draining to a byte counter) and
// one without. The variants alternate per step so host-speed drift hits
// both equally. OverheadFrac is the headline number: (traced step time -
// untraced step time) / untraced step time; the acceptance target is
// < 0.02. PhaseCoverage is the mean over traced steps of the top-level
// span durations divided by the step wall clock — how much of the step
// the spans account for.
type TelemetryBenchResult struct {
	N     int `json:"n"`
	S     int `json:"s"`
	P     int `json:"p"`
	Steps int `json:"steps"`

	StepNsOff    int64   `json:"step_ns_off"`
	StepNsOn     int64   `json:"step_ns_on"`
	OverheadFrac float64 `json:"overhead_frac"`

	// The third variant runs the full observability stack on top of the
	// JSONL sink: metrics registry, flight-recorder ring, and sentinel.
	// MetricsOverheadFrac compares it against the untraced baseline
	// (same < 0.02 target); HistObserveNs is the microbenchmarked cost
	// of one histogram sample on the registry's atomic hot path.
	StepNsMetrics       int64   `json:"step_ns_metrics"`
	MetricsOverheadFrac float64 `json:"metrics_overhead_frac"`
	HistObserveNs       float64 `json:"hist_observe_ns"`

	PhaseCoverage float64 `json:"phase_coverage"`
	SpansPerStep  float64 `json:"spans_per_step"`
	BytesPerStep  int64   `json:"bytes_per_step"`
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Telemetry measures the overhead of an enabled recorder on full solver
// steps (Solve + integrate + Refill) and the fraction of each step the
// recorded spans cover.
func Telemetry(p Params) TelemetryBenchResult {
	if p.N <= 0 {
		p.N = 100000
	}
	if p.Steps <= 0 {
		p.Steps = 16
	}
	if p.Dt <= 0 {
		p.Dt = 2e-4
	}
	p.setDefaults()
	const s = 64
	res := TelemetryBenchResult{N: p.N, S: s, P: p.P, Steps: p.Steps}

	mkSolver := func() *core.Solver {
		sys := distrib.Plummer(p.N, 1, 1, p.Seed)
		sv := core.NewSolver(sys, core.Config{
			P:      p.P,
			S:      s,
			Kernel: kernels.Gravity{G: 1, Softening: 0.01},
		})
		sv.Solve() // warm slabs and the list cache outside the timed region
		return sv
	}
	plain, traced, metered := mkSolver(), mkSolver(), mkSolver()
	var sink countingWriter
	rec := telemetry.New(telemetry.Options{JSONL: &sink, Keep: true})
	traced.SetRecorder(rec)
	var sink2 countingWriter
	reg := metrics.NewRegistry()
	recM := telemetry.New(telemetry.Options{
		JSONL:    &sink2,
		Metrics:  reg,
		Flight:   telemetry.NewFlightRecorder(0, ""), // ring only, no dumps
		Sentinel: &telemetry.SentinelConfig{},
	})
	metered.SetRecorder(recM)

	stepOnce := func(sv *core.Solver, r *telemetry.Recorder, step int) int64 {
		r.StartStep(step)
		tm := sched.StartTimer()
		sv.Solve()
		sim.KickDrift(sv.Sys, p.Dt)
		sv.Refill()
		ns := tm.Elapsed().Nanoseconds()
		r.EndStep()
		return ns
	}
	for step := 0; step < p.Steps; step++ {
		res.StepNsOff += stepOnce(plain, nil, step)
		res.StepNsOn += stepOnce(traced, rec, step)
		res.StepNsMetrics += stepOnce(metered, recM, step)
	}
	res.StepNsOff /= int64(p.Steps)
	res.StepNsOn /= int64(p.Steps)
	res.StepNsMetrics /= int64(p.Steps)
	if res.StepNsOff > 0 {
		res.OverheadFrac = float64(res.StepNsOn-res.StepNsOff) / float64(res.StepNsOff)
		res.MetricsOverheadFrac = float64(res.StepNsMetrics-res.StepNsOff) / float64(res.StepNsOff)
	}

	// Histogram hot-path microbenchmark: the per-sample cost of Observe
	// on the default step-scale buckets (binary search + three atomics).
	h := reg.Histogram("bench_observe_ns", "histogram sample cost probe", metrics.DefBuckets())
	const samples = 1 << 20
	tm := sched.StartTimer()
	for i := 0; i < samples; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
	res.HistObserveNs = float64(tm.Elapsed().Nanoseconds()) / samples

	kept := rec.Steps()
	var coverage float64
	var spans int
	for _, sr := range kept {
		if sr.WallNs > 0 {
			coverage += float64(sr.PhaseNs()) / float64(sr.WallNs)
		}
		spans += len(sr.Spans)
	}
	if len(kept) > 0 {
		res.PhaseCoverage = coverage / float64(len(kept))
		res.SpansPerStep = float64(spans) / float64(len(kept))
		res.BytesPerStep = sink.n / int64(len(kept))
	}
	return res
}

var _ io.Writer = (*countingWriter)(nil)
