// Package fault provides a deterministic, schedule-driven fault injector
// for the simulated GPU cluster. Faults are declared up front as a
// Schedule — either parsed from a compact spec string
// ("gpu1:failstop@step12,gpu0:straggle2.5@step20") or drawn from a
// seeded RNG — and an Injector replays that schedule as the cluster
// executes, so a faulty run is exactly reproducible: same spec, same
// seed, same fault at the same chunk of the same step.
//
// The injector is consulted by vgpu.Device.run once per chunk of the
// near-field schedule, *before* the chunk's numeric work. Fault
// semantics are chosen so that recovery can stay bit-identical to the
// fault-free run:
//
//   - FailStop: the device dies at the chunk boundary; rows from that
//     chunk on are never executed on-device and must be re-executed by
//     the host fallback.
//   - Hang: the device parks instead of executing the chunk; the
//     watchdog detects the missed heartbeat and aborts it, after which
//     it is treated like a fail-stop at the same boundary.
//   - Transient: the chunk "errors" before executing; the caller
//     retries (with backoff) and the chunk runs exactly once on
//     success, so no numeric work is duplicated or reordered.
//   - Straggle: the device's virtual execution rate is divided by
//     Factor; numeric work is untouched, only timing changes.
//   - Corrupt: the chunk executes normally and then the first target
//     accumulator is poisoned with NaN — the payload for the
//     post-solve invariant guard (Config.Validate), not a timing
//     fault.
//
// Steps are execution indices: the n-th Execute/ExecuteParallel call
// on the cluster (counted from 0) is step n. In a plain simulation
// loop this coincides with the simulation step; harnesses that issue
// warm-up solves must account for them.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"afmm/internal/metrics"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	None Kind = iota
	// FailStop kills the device at a chunk boundary.
	FailStop
	// Hang parks the device mid-run until the watchdog aborts it.
	Hang
	// Transient fails individual chunk attempts Count times, then
	// succeeds.
	Transient
	// Straggle divides the device's virtual rate by Factor from the
	// given step on (Factor 1 restores full speed).
	Straggle
	// Corrupt lets the chunk execute and then poisons its first
	// target accumulator with NaN.
	Corrupt
)

var kindNames = [...]string{"none", "failstop", "hang", "transient", "straggle", "corrupt"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault on one device.
type Event struct {
	Device int     // target device ID
	Kind   Kind    //
	Step   int     // execution step at which the fault arms
	Chunk  int     // chunk index at which FailStop/Hang/Corrupt fire (0 = first)
	Factor float64 // Straggle slowdown multiplier (1 restores full speed)
	Count  int     // Transient: failed attempts per chunk before success (>=1)
}

// String renders the event in the spec grammar accepted by Parse.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu%d:", e.Device)
	switch e.Kind {
	case Straggle:
		fmt.Fprintf(&b, "straggle%g", e.Factor)
	case Transient:
		if e.Count > 1 {
			fmt.Fprintf(&b, "transient%d", e.Count)
		} else {
			b.WriteString("transient")
		}
	default:
		b.WriteString(e.Kind.String())
	}
	fmt.Fprintf(&b, "@step%d", e.Step)
	if e.Chunk > 0 && (e.Kind == FailStop || e.Kind == Hang || e.Kind == Corrupt) {
		fmt.Fprintf(&b, "#%d", e.Chunk)
	}
	return b.String()
}

// Schedule is an ordered set of fault events. The zero value is an
// empty (fault-free) schedule.
type Schedule struct {
	Events []Event
}

// String renders the schedule in the spec grammar accepted by Parse.
func (s *Schedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse builds a Schedule from a comma-separated spec. Each entry is
//
//	gpu<D>:<fault>@step<S>[#<chunk>]
//
// where <fault> is one of
//
//	failstop            — die at the chunk boundary
//	hang                — park until the watchdog aborts
//	straggle<F>         — divide the virtual rate by F (e.g. straggle2.5)
//	transient[<C>]      — each chunk attempt fails C times (default 1)
//	corrupt             — poison the chunk's first target with NaN
//
// The optional #<chunk> suffix (failstop/hang/corrupt only) selects the
// chunk index within the step at which the fault fires; it defaults to
// chunk 0. An empty spec yields an empty schedule.
func Parse(spec string) (*Schedule, error) {
	sch := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sch, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		ev, err := parseEntry(entry)
		if err != nil {
			return nil, fmt.Errorf("fault spec %q: %w", entry, err)
		}
		sch.Events = append(sch.Events, ev)
	}
	return sch, nil
}

// NodeEvent is a node-level cluster fault: virtual cluster node Node
// fail-stops at the start of step Step — the distributed analogue of a
// device Event. Only fail-stop is meaningful at node granularity: to its
// peers a hung node is indistinguishable from a dead one (both stop
// acknowledging), so every node-loss mode collapses to "dead at a step
// boundary, detected by timeout, range repartitioned over survivors".
type NodeEvent struct {
	Node int
	Step int
}

// String renders the event in the spec grammar.
func (e NodeEvent) String() string {
	return fmt.Sprintf("node%d:failstop@step%d", e.Node, e.Step)
}

// ParseNodeEvents builds a node-fault schedule from a comma-separated
// spec. Each entry is
//
//	node<K>:failstop@step<S>
//
// An empty spec yields an empty schedule. Events are returned sorted by
// step (then node), so replay order is deterministic regardless of the
// spec's entry order.
func ParseNodeEvents(spec string) ([]NodeEvent, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []NodeEvent
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		devPart, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("node fault spec %q: missing ':' between node and fault", entry)
		}
		nodeStr := strings.TrimPrefix(devPart, "node")
		node, err := strconv.Atoi(nodeStr)
		if err != nil || node < 0 || nodeStr == devPart {
			return nil, fmt.Errorf("node fault spec %q: bad node %q (want node<K>)", entry, devPart)
		}
		kindPart, atPart, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("node fault spec %q: missing '@step<N>'", entry)
		}
		if kindPart != "failstop" {
			return nil, fmt.Errorf("node fault spec %q: unknown node fault %q (only failstop)", entry, kindPart)
		}
		stepStr := strings.TrimPrefix(atPart, "step")
		step, err := strconv.Atoi(stepStr)
		if err != nil || step < 0 || stepStr == atPart {
			return nil, fmt.Errorf("node fault spec %q: bad step %q (want @step<N>)", entry, atPart)
		}
		out = append(out, NodeEvent{Node: node, Step: step})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

func parseEntry(entry string) (Event, error) {
	ev := Event{Factor: 1, Count: 1}
	devPart, rest, ok := strings.Cut(entry, ":")
	if !ok {
		return ev, fmt.Errorf("missing ':' between device and fault")
	}
	devStr := strings.TrimPrefix(devPart, "gpu")
	dev, err := strconv.Atoi(devStr)
	if err != nil || dev < 0 {
		return ev, fmt.Errorf("bad device %q (want gpu<N>)", devPart)
	}
	ev.Device = dev

	kindPart, atPart, ok := strings.Cut(rest, "@")
	if !ok {
		return ev, fmt.Errorf("missing '@step<N>'")
	}
	switch {
	case kindPart == "failstop":
		ev.Kind = FailStop
	case kindPart == "hang":
		ev.Kind = Hang
	case kindPart == "corrupt":
		ev.Kind = Corrupt
	case strings.HasPrefix(kindPart, "straggle"):
		ev.Kind = Straggle
		fs := strings.TrimPrefix(kindPart, "straggle")
		if fs == "" {
			return ev, fmt.Errorf("straggle needs a factor (e.g. straggle2.5)")
		}
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil || f <= 0 {
			return ev, fmt.Errorf("bad straggle factor %q", fs)
		}
		ev.Factor = f
	case strings.HasPrefix(kindPart, "transient"):
		ev.Kind = Transient
		cs := strings.TrimPrefix(kindPart, "transient")
		if cs != "" {
			c, err := strconv.Atoi(cs)
			if err != nil || c < 1 {
				return ev, fmt.Errorf("bad transient count %q", cs)
			}
			ev.Count = c
		}
	default:
		return ev, fmt.Errorf("unknown fault %q", kindPart)
	}

	stepStr, chunkStr, hasChunk := strings.Cut(atPart, "#")
	stepStr = strings.TrimPrefix(stepStr, "step")
	step, err := strconv.Atoi(stepStr)
	if err != nil || step < 0 {
		return ev, fmt.Errorf("bad step %q (want @step<N>)", atPart)
	}
	ev.Step = step
	if hasChunk {
		if ev.Kind != FailStop && ev.Kind != Hang && ev.Kind != Corrupt {
			return ev, fmt.Errorf("#chunk only applies to failstop/hang/corrupt")
		}
		c, err := strconv.Atoi(chunkStr)
		if err != nil || c < 0 {
			return ev, fmt.Errorf("bad chunk %q", chunkStr)
		}
		ev.Chunk = c
	}
	return ev, nil
}

// Random draws n fault events over the given device and step ranges
// from a seeded RNG. The same (seed, devices, steps, n) always yields
// the same schedule. Straggle factors are drawn in [1.5, 4), transient
// counts in [1, 3]. Steps are drawn from [steps/4, steps) so faults
// land after typical warm-up/search phases.
func Random(seed int64, devices, steps, n int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	sch := &Schedule{}
	if devices <= 0 || steps <= 0 {
		return sch
	}
	kinds := [...]Kind{FailStop, Hang, Transient, Straggle}
	lo := steps / 4
	for i := 0; i < n; i++ {
		ev := Event{
			Device: rng.Intn(devices),
			Kind:   kinds[rng.Intn(len(kinds))],
			Step:   lo + rng.Intn(steps-lo),
			Factor: 1,
			Count:  1,
		}
		switch ev.Kind {
		case Straggle:
			ev.Factor = 1.5 + 2.5*rng.Float64()
		case Transient:
			ev.Count = 1 + rng.Intn(3)
		case FailStop, Hang:
			ev.Chunk = rng.Intn(4)
		}
		sch.Events = append(sch.Events, ev)
	}
	sort.SliceStable(sch.Events, func(i, j int) bool { return sch.Events[i].Step < sch.Events[j].Step })
	return sch
}

// Outcome is the injector's verdict for one chunk attempt.
type Outcome struct {
	Kind Kind
}

// Injector replays a Schedule against a live execution. All methods
// are safe for concurrent use (devices run in parallel) and are
// nil-safe: a nil *Injector injects nothing.
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	step  int
	// straggle holds the currently active slowdown factor per device
	// (events persist: a straggle armed at step 12 derates the device
	// until another straggle event replaces the factor).
	straggle map[int]float64
	// fired marks one-shot events (failstop/hang/corrupt) already
	// delivered, by index into sched.Events.
	fired map[int]bool
	// budget holds remaining transient failures per (device, chunk)
	// for the current step.
	budget map[[2]int]int
	// fires counts delivered verdicts by kind (atomic so the metrics
	// registry can read them at scrape time without taking mu).
	fires [len(kindNames)]atomic.Int64
}

// NewInjector builds an injector over sch. A nil or empty schedule
// yields an injector that never fires (callers may also simply keep a
// nil *Injector).
func NewInjector(sch *Schedule) *Injector {
	in := &Injector{
		straggle: make(map[int]float64),
		fired:    make(map[int]bool),
		budget:   make(map[[2]int]int),
	}
	if sch != nil {
		in.sched.Events = append(in.sched.Events, sch.Events...)
	}
	return in
}

// BeginStep arms the injector for execution step `step`: straggle
// events at or before this step become the device's active factor, and
// transient budgets reset. The cluster calls this once per Execute.
func (in *Injector) BeginStep(step int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.step = step
	for k := range in.budget {
		delete(in.budget, k)
	}
	for _, ev := range in.sched.Events {
		if ev.Kind == Straggle && ev.Step <= step {
			in.straggle[ev.Device] = ev.Factor
		}
	}
}

// Step reports the execution step the injector is currently armed for.
func (in *Injector) Step() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

// StraggleFactor reports the active slowdown multiplier for a device
// (1 when the device runs at full speed).
func (in *Injector) StraggleFactor(dev int) float64 {
	if in == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if f, ok := in.straggle[dev]; ok && f > 0 {
		return f
	}
	return 1
}

// Probe reports the verdict a diagnostic attempt on the device would
// receive at the currently armed step, without consuming any injector
// state: one-shot faults stay armed and transient budgets are untouched.
// The cluster watchdog probes dead devices with this each step to decide
// restoration (vgpu.WatchdogConfig.RestoreAfter) — a pending one-shot
// fault or an active transient means the device is still unhealthy.
func (in *Injector) Probe(dev int) Kind {
	if in == nil {
		return None
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, kind := range [...]Kind{FailStop, Hang, Corrupt} {
		for i, ev := range in.sched.Events {
			if ev.Kind != kind || ev.Device != dev || in.fired[i] {
				continue
			}
			if in.step >= ev.Step {
				return kind
			}
		}
	}
	for _, ev := range in.sched.Events {
		if ev.Kind == Transient && ev.Device == dev && ev.Step == in.step {
			return Transient
		}
	}
	return None
}

// FiredCount reports how many verdicts of the given kind the injector
// has delivered. Nil-safe, lock-free.
func (in *Injector) FiredCount(k Kind) int64 {
	if in == nil || int(k) >= len(kindNames) {
		return 0
	}
	return in.fires[k].Load()
}

// RegisterMetrics exposes the injector's schedule size and delivered
// verdicts on the registry. The schedule is immutable after NewInjector
// and the fire counts are atomics, so the scrape-time callbacks never
// contend with the per-chunk verdict path. Nil-safe.
func (in *Injector) RegisterMetrics(reg *metrics.Registry) {
	if in == nil || !reg.Enabled() {
		return
	}
	reg.Func("afmm_fault_scheduled_events", "fault events in the injector's schedule",
		metrics.KindGauge, func() float64 { return float64(len(in.sched.Events)) })
	for k := FailStop; k <= Corrupt; k++ {
		k := k
		reg.Func("afmm_faults_fired_total", "fault verdicts delivered by kind",
			metrics.KindCounter,
			func() float64 { return float64(in.fires[k].Load()) },
			"kind", k.String())
	}
}

// Chunk delivers the injector's verdict for one attempt at chunk
// `chunk` on device `dev` during the current step. Fail-stop and hang
// dominate; a transient verdict consumes one unit of the chunk's
// failure budget, so retrying the same chunk eventually succeeds.
func (in *Injector) Chunk(dev, chunk int) Outcome {
	if in == nil {
		return Outcome{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// One-shot faults: first match wins, in severity order.
	for _, kind := range [...]Kind{FailStop, Hang, Corrupt} {
		for i, ev := range in.sched.Events {
			if ev.Kind != kind || ev.Device != dev || in.fired[i] {
				continue
			}
			// Fire when execution reaches (or has passed) the armed
			// step and chunk, so a fault armed at a chunk index the
			// step never reaches still fires at the final chunk seen.
			if in.step > ev.Step || (in.step == ev.Step && chunk >= ev.Chunk) {
				in.fired[i] = true
				in.fires[kind].Add(1)
				return Outcome{Kind: kind}
			}
		}
	}
	for _, ev := range in.sched.Events {
		if ev.Kind == Transient && ev.Device == dev && ev.Step == in.step {
			key := [2]int{dev, chunk}
			if _, seen := in.budget[key]; !seen {
				in.budget[key] = ev.Count
			}
			if in.budget[key] > 0 {
				in.budget[key]--
				in.fires[Transient].Add(1)
				return Outcome{Kind: Transient}
			}
		}
	}
	return Outcome{}
}
