package fault

import (
	"reflect"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "gpu1:failstop@step12,gpu0:straggle2.5@step20,gpu2:transient3@step4,gpu0:hang@step7#2,gpu1:corrupt@step9"
	sch, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Device: 1, Kind: FailStop, Step: 12, Factor: 1, Count: 1},
		{Device: 0, Kind: Straggle, Step: 20, Factor: 2.5, Count: 1},
		{Device: 2, Kind: Transient, Step: 4, Factor: 1, Count: 3},
		{Device: 0, Kind: Hang, Step: 7, Chunk: 2, Factor: 1, Count: 1},
		{Device: 1, Kind: Corrupt, Step: 9, Factor: 1, Count: 1},
	}
	if !reflect.DeepEqual(sch.Events, want) {
		t.Fatalf("parsed %+v\nwant %+v", sch.Events, want)
	}
	// String() must re-parse to the same schedule.
	back, err := Parse(sch.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sch.String(), err)
	}
	if !reflect.DeepEqual(back.Events, sch.Events) {
		t.Fatalf("round trip changed schedule: %+v vs %+v", back.Events, sch.Events)
	}
}

func TestParseEmpty(t *testing.T) {
	sch, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Events) != 0 {
		t.Fatalf("want empty schedule, got %+v", sch.Events)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"gpu1failstop@step2",     // missing colon
		"gpux:failstop@step2",    // bad device
		"gpu1:explode@step2",     // unknown kind
		"gpu1:failstop@2",        // missing "step"... actually "2" trims to "2" -> valid? see below
		"gpu1:straggle@step2",    // straggle without factor
		"gpu1:transient0@step3",  // transient count < 1
		"gpu1:failstop@stepX",    // bad step
		"gpu1:straggle2@step3#1", // chunk on straggle
	}
	for _, spec := range bad {
		if spec == "gpu1:failstop@2" {
			// "@2" without the "step" prefix is accepted as a bare
			// number — verify it parses rather than errors.
			sch, err := Parse(spec)
			if err != nil || sch.Events[0].Step != 2 {
				t.Fatalf("bare step number should parse: %v %+v", err, sch)
			}
			continue
		}
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", spec)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 4, 100, 8)
	b := Random(42, 4, 100, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := Random(43, 4, 100, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules")
	}
	if len(a.Events) != 8 {
		t.Fatalf("want 8 events, got %d", len(a.Events))
	}
	for _, ev := range a.Events {
		if ev.Device < 0 || ev.Device >= 4 {
			t.Errorf("device out of range: %+v", ev)
		}
		if ev.Step < 25 || ev.Step >= 100 {
			t.Errorf("step outside [steps/4, steps): %+v", ev)
		}
	}
	// Random schedules must survive the spec grammar round trip too.
	if _, err := Parse(a.String()); err != nil {
		t.Fatalf("random schedule %q does not re-parse: %v", a.String(), err)
	}
}

func TestInjectorFailStop(t *testing.T) {
	sch, _ := Parse("gpu1:failstop@step3#2")
	in := NewInjector(sch)

	in.BeginStep(2)
	if out := in.Chunk(1, 5); out.Kind != None {
		t.Fatalf("fired before armed step: %+v", out)
	}
	in.BeginStep(3)
	if out := in.Chunk(1, 0); out.Kind != None {
		t.Fatalf("fired before armed chunk: %+v", out)
	}
	if out := in.Chunk(0, 2); out.Kind != None {
		t.Fatalf("fired on wrong device: %+v", out)
	}
	if out := in.Chunk(1, 2); out.Kind != FailStop {
		t.Fatalf("want FailStop at (dev1, chunk2), got %+v", out)
	}
	// One-shot: does not fire again.
	if out := in.Chunk(1, 3); out.Kind != None {
		t.Fatalf("fail-stop fired twice: %+v", out)
	}
}

func TestInjectorFailStopLateChunk(t *testing.T) {
	// A fault armed at a chunk the step never reaches must still fire
	// on a later step (execution "reached or passed" the arm point).
	sch, _ := Parse("gpu0:failstop@step1#100")
	in := NewInjector(sch)
	in.BeginStep(1)
	if out := in.Chunk(0, 3); out.Kind != None {
		t.Fatalf("fired too early: %+v", out)
	}
	in.BeginStep(2)
	if out := in.Chunk(0, 0); out.Kind != FailStop {
		t.Fatalf("want FailStop on the step after arming, got %+v", out)
	}
}

func TestInjectorTransientBudget(t *testing.T) {
	sch, _ := Parse("gpu0:transient2@step5")
	in := NewInjector(sch)
	in.BeginStep(5)
	// Each chunk fails Count times, then succeeds.
	for chunk := 0; chunk < 3; chunk++ {
		for attempt := 0; attempt < 2; attempt++ {
			if out := in.Chunk(0, chunk); out.Kind != Transient {
				t.Fatalf("chunk %d attempt %d: want Transient, got %+v", chunk, attempt, out)
			}
		}
		if out := in.Chunk(0, chunk); out.Kind != None {
			t.Fatalf("chunk %d retry after budget: want None, got %+v", chunk, out)
		}
	}
	// Next step: budgets cleared, event no longer armed.
	in.BeginStep(6)
	if out := in.Chunk(0, 0); out.Kind != None {
		t.Fatalf("transient leaked past its step: %+v", out)
	}
}

func TestInjectorStragglePersists(t *testing.T) {
	sch, _ := Parse("gpu2:straggle2.5@step10")
	in := NewInjector(sch)
	in.BeginStep(9)
	if f := in.StraggleFactor(2); f != 1 {
		t.Fatalf("straggle active before armed step: %v", f)
	}
	in.BeginStep(10)
	if f := in.StraggleFactor(2); f != 2.5 {
		t.Fatalf("want factor 2.5, got %v", f)
	}
	if f := in.StraggleFactor(0); f != 1 {
		t.Fatalf("straggle leaked to wrong device: %v", f)
	}
	// Persists on later steps until replaced.
	in.BeginStep(20)
	if f := in.StraggleFactor(2); f != 2.5 {
		t.Fatalf("straggle did not persist: %v", f)
	}
}

func TestInjectorStraggleRestore(t *testing.T) {
	sch, _ := Parse("gpu0:straggle3@step2,gpu0:straggle1@step6")
	in := NewInjector(sch)
	in.BeginStep(3)
	if f := in.StraggleFactor(0); f != 3 {
		t.Fatalf("want 3, got %v", f)
	}
	in.BeginStep(6)
	if f := in.StraggleFactor(0); f != 1 {
		t.Fatalf("straggle1 should restore full speed, got %v", f)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	in.BeginStep(3)
	if out := in.Chunk(0, 0); out.Kind != None {
		t.Fatalf("nil injector fired: %+v", out)
	}
	if f := in.StraggleFactor(0); f != 1 {
		t.Fatalf("nil injector straggle: %v", f)
	}
}

func TestProbeIsSideEffectFree(t *testing.T) {
	sch, _ := Parse("gpu0:failstop@step1,gpu1:transient2@step0")
	in := NewInjector(sch)

	// Before the armed step the one-shot is invisible to the probe.
	in.BeginStep(0)
	if k := in.Probe(0); k != None {
		t.Fatalf("probe saw unarmed failstop: %v", k)
	}
	// An active transient fails the probe but never touches the budget:
	// repeated probes keep failing, and a later chunk attempt still
	// consumes the full failure count.
	for i := 0; i < 3; i++ {
		if k := in.Probe(1); k != Transient {
			t.Fatalf("probe %d: want transient, got %v", i, k)
		}
	}
	fails := 0
	for in.Chunk(1, 0).Kind == Transient {
		fails++
	}
	if fails != 2 {
		t.Fatalf("probes consumed transient budget: %d fails, want 2", fails)
	}

	// From the armed step on, the probe sees the pending failstop without
	// firing it — the chunk attempt still delivers it.
	in.BeginStep(1)
	if k := in.Probe(0); k != FailStop {
		t.Fatalf("probe missed pending failstop: %v", k)
	}
	if out := in.Chunk(0, 0); out.Kind != FailStop {
		t.Fatalf("probe consumed the failstop: %+v", out)
	}
	// Once fired, the probe comes back clean.
	in.BeginStep(2)
	if k := in.Probe(0); k != None {
		t.Fatalf("probe after delivery: %v", k)
	}
	if k := (*Injector)(nil).Probe(0); k != None {
		t.Fatalf("nil injector probe: %v", k)
	}
}

func TestParseNodeEvents(t *testing.T) {
	events, err := ParseNodeEvents(" node2:failstop@step12, node0:failstop@step3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeEvent{{Node: 0, Step: 3}, {Node: 2, Step: 12}}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("got %v, want %v", events, want)
	}
	if s := events[1].String(); s != "node2:failstop@step12" {
		t.Fatalf("String() = %q", s)
	}
	if ev, err := ParseNodeEvents(""); err != nil || ev != nil {
		t.Fatalf("empty spec: %v, %v", ev, err)
	}
	for _, bad := range []string{"gpu1:failstop@step2", "node1:hang@step2", "node1:failstop@2", "nodex:failstop@step2"} {
		if _, err := ParseNodeEvents(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
}
