package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Link-level faults extend the spec grammar to the simulated cluster
// interconnect: each event arms a lossy behaviour on one *directed*
// link (sender -> receiver) from a given step onward, at message
// granularity. The dmem transport consults the schedule once per frame
// transmission, with verdicts drawn from Hash01 over (seed, link, step,
// flow, attempt) — never from shared RNG state or the clock — so a
// chaotic run is exactly reproducible regardless of goroutine
// interleaving.
//
// Like device straggle events, link events persist: an event armed at
// step S shapes the link until a later event of the same kind replaces
// its parameter (drop0@step9 clears a drop).

// LinkKind enumerates the injectable link fault classes.
type LinkKind uint8

const (
	// LinkDrop loses each frame with probability Prob.
	LinkDrop LinkKind = iota
	// LinkDelay adds Delay seconds of one-way latency to every frame.
	LinkDelay
	// LinkDup delivers each frame twice with probability Prob.
	LinkDup
	// LinkReorder jitters each frame's delivery with probability Prob, so
	// frames overtake each other on the link.
	LinkReorder
	// LinkCorrupt flips one payload bit in transit with probability Prob;
	// the frame checksum no longer matches and the receiver rejects it.
	LinkCorrupt
	numLinkKinds
)

var linkKindNames = [numLinkKinds]string{"drop", "delay", "dup", "reorder", "corrupt"}

func (k LinkKind) String() string {
	if int(k) < len(linkKindNames) {
		return linkKindNames[k]
	}
	return fmt.Sprintf("linkkind(%d)", uint8(k))
}

// LinkEvent is one scheduled fault on one directed link.
type LinkEvent struct {
	From, To int // directed link: frames flowing From -> To
	Kind     LinkKind
	Step     int     // step at which the event arms (persists onward)
	Prob     float64 // drop/dup/reorder/corrupt per-frame probability
	Delay    float64 // added one-way latency, seconds (LinkDelay only)
}

// String renders the event in the spec grammar accepted by
// ParseLinkEvents.
func (e LinkEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link%d-%d:", e.From, e.To)
	switch e.Kind {
	case LinkDrop:
		fmt.Fprintf(&b, "drop%g", e.Prob)
	case LinkDelay:
		fmt.Fprintf(&b, "delay%gms", e.Delay*1e3)
	default:
		b.WriteString(e.Kind.String())
		if e.Prob != 1 {
			fmt.Fprintf(&b, "%g", e.Prob)
		}
	}
	fmt.Fprintf(&b, "@step%d", e.Step)
	return b.String()
}

// LinkSchedule is an ordered set of link fault events. The zero value
// (and nil) is a fault-free schedule.
type LinkSchedule struct {
	Events []LinkEvent
}

// String renders the schedule in the spec grammar accepted by
// ParseLinkEvents.
func (s *LinkSchedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Faulty reports whether the schedule carries any events. Nil-safe.
func (s *LinkSchedule) Faulty() bool { return s != nil && len(s.Events) > 0 }

// LinkState is one directed link's active fault profile at a step: the
// latest armed event of each kind.
type LinkState struct {
	Drop    float64 // per-frame loss probability
	Dup     float64 // per-frame duplication probability
	Reorder float64 // per-frame jitter probability
	Corrupt float64 // per-frame bit-flip probability
	Delay   float64 // added one-way latency, seconds
}

// Faulty reports whether any behaviour is active.
func (st LinkState) Faulty() bool {
	return st.Drop > 0 || st.Dup > 0 || st.Reorder > 0 || st.Corrupt > 0 || st.Delay > 0
}

// State resolves the link's profile at a step. Events are sorted by
// step, so the last match of each kind is the latest armed. Nil-safe.
func (s *LinkSchedule) State(from, to, step int) LinkState {
	var st LinkState
	if s == nil {
		return st
	}
	for _, e := range s.Events {
		if e.Step > step || e.From != from || e.To != to {
			continue
		}
		switch e.Kind {
		case LinkDrop:
			st.Drop = e.Prob
		case LinkDelay:
			st.Delay = e.Delay
		case LinkDup:
			st.Dup = e.Prob
		case LinkReorder:
			st.Reorder = e.Prob
		case LinkCorrupt:
			st.Corrupt = e.Prob
		}
	}
	return st
}

// MaxDropFrom reports the worst active drop probability over links
// leaving `node` at a step — the loss rate the failure detector's
// heartbeats from that node are subject to. Nil-safe.
func (s *LinkSchedule) MaxDropFrom(node, step int) float64 {
	if s == nil {
		return 0
	}
	// Per-destination latest event wins, so resolve per link.
	worst := 0.0
	seen := map[int]float64{}
	for _, e := range s.Events {
		if e.Kind == LinkDrop && e.From == node && e.Step <= step {
			seen[e.To] = e.Prob
		}
	}
	for _, p := range seen {
		if p > worst {
			worst = p
		}
	}
	return worst
}

// ParseLinkEvents builds a link-fault schedule from a comma-separated
// spec. Each entry is
//
//	link<A>-<B>:<kind>[<param>]@step<S>
//
// where <kind> is one of
//
//	drop<P>      — lose each frame with probability P (drop0 clears)
//	delay<D>ms   — add D milliseconds of one-way latency (delay0ms clears)
//	dup[<P>]     — duplicate each frame with probability P (default 1)
//	reorder[<P>] — jitter each frame with probability P (default 1)
//	corrupt[<P>] — flip a payload bit with probability P (default 1)
//
// An empty spec yields an empty schedule. Events are returned sorted by
// step (then link), so replay order is deterministic regardless of the
// spec's entry order.
func ParseLinkEvents(spec string) (*LinkSchedule, error) {
	sch := &LinkSchedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sch, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		ev, err := parseLinkEntry(entry)
		if err != nil {
			return nil, fmt.Errorf("link fault spec %q: %w", entry, err)
		}
		sch.Events = append(sch.Events, ev)
	}
	sortLinkEvents(sch.Events)
	return sch, nil
}

func sortLinkEvents(evs []LinkEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Step != evs[j].Step {
			return evs[i].Step < evs[j].Step
		}
		if evs[i].From != evs[j].From {
			return evs[i].From < evs[j].From
		}
		return evs[i].To < evs[j].To
	})
}

func parseLinkEntry(entry string) (LinkEvent, error) {
	var ev LinkEvent
	linkPart, rest, ok := strings.Cut(entry, ":")
	if !ok {
		return ev, fmt.Errorf("missing ':' between link and fault")
	}
	pairStr := strings.TrimPrefix(linkPart, "link")
	if pairStr == linkPart {
		return ev, fmt.Errorf("bad link %q (want link<A>-<B>)", linkPart)
	}
	fromStr, toStr, ok := strings.Cut(pairStr, "-")
	if !ok {
		return ev, fmt.Errorf("bad link %q (want link<A>-<B>)", linkPart)
	}
	from, err1 := strconv.Atoi(fromStr)
	to, err2 := strconv.Atoi(toStr)
	if err1 != nil || err2 != nil || from < 0 || to < 0 {
		return ev, fmt.Errorf("bad link %q (want link<A>-<B>)", linkPart)
	}
	if from == to {
		return ev, fmt.Errorf("bad link %q (a node's loopback cannot fault)", linkPart)
	}
	ev.From, ev.To = from, to

	kindPart, atPart, ok := strings.Cut(rest, "@")
	if !ok {
		return ev, fmt.Errorf("missing '@step<N>'")
	}
	prob := func(s, kind string) (float64, error) {
		if s == "" {
			return 1, nil
		}
		p, err := strconv.ParseFloat(s, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("bad %s probability %q (want 0..1)", kind, s)
		}
		return p, nil
	}
	switch {
	case strings.HasPrefix(kindPart, "drop"):
		ev.Kind = LinkDrop
		ps := strings.TrimPrefix(kindPart, "drop")
		if ps == "" {
			return ev, fmt.Errorf("drop needs a probability (e.g. drop0.05)")
		}
		if ev.Prob, err1 = prob(ps, "drop"); err1 != nil {
			return ev, err1
		}
	case strings.HasPrefix(kindPart, "delay"):
		ev.Kind = LinkDelay
		ds := strings.TrimPrefix(kindPart, "delay")
		unit := 1e-3
		switch {
		case strings.HasSuffix(ds, "ms"):
			ds = strings.TrimSuffix(ds, "ms")
		case strings.HasSuffix(ds, "us"):
			ds, unit = strings.TrimSuffix(ds, "us"), 1e-6
		case strings.HasSuffix(ds, "s"):
			ds, unit = strings.TrimSuffix(ds, "s"), 1
		}
		d, err := strconv.ParseFloat(ds, 64)
		if err != nil || d < 0 || ds == "" {
			return ev, fmt.Errorf("bad delay %q (e.g. delay1.5ms)", strings.TrimPrefix(kindPart, "delay"))
		}
		ev.Delay = d * unit
	case strings.HasPrefix(kindPart, "dup"):
		ev.Kind = LinkDup
		if ev.Prob, err1 = prob(strings.TrimPrefix(kindPart, "dup"), "dup"); err1 != nil {
			return ev, err1
		}
	case strings.HasPrefix(kindPart, "reorder"):
		ev.Kind = LinkReorder
		if ev.Prob, err1 = prob(strings.TrimPrefix(kindPart, "reorder"), "reorder"); err1 != nil {
			return ev, err1
		}
	case strings.HasPrefix(kindPart, "corrupt"):
		ev.Kind = LinkCorrupt
		if ev.Prob, err1 = prob(strings.TrimPrefix(kindPart, "corrupt"), "corrupt"); err1 != nil {
			return ev, err1
		}
	default:
		return ev, fmt.Errorf("unknown link fault %q", kindPart)
	}

	stepStr := strings.TrimPrefix(atPart, "step")
	step, err := strconv.Atoi(stepStr)
	if err != nil || step < 0 || stepStr == atPart {
		return ev, fmt.Errorf("bad step %q (want @step<N>)", atPart)
	}
	ev.Step = step
	return ev, nil
}

// ParseClusterEvents parses a combined cluster fault spec whose entries
// mix node fail-stops and link events:
//
//	node2:failstop@step4,link0-1:drop0.2@step0,link1-0:corrupt0.1@step2
//
// The two schedules overlap freely — a lossy link and a node loss can
// arm at the same step. Unknown prefixes are rejected.
func ParseClusterEvents(spec string) ([]NodeEvent, *LinkSchedule, error) {
	links := &LinkSchedule{}
	var nodeParts []string
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, links, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		switch {
		case strings.HasPrefix(entry, "node"):
			nodeParts = append(nodeParts, entry)
		case strings.HasPrefix(entry, "link"):
			ev, err := parseLinkEntry(entry)
			if err != nil {
				return nil, nil, fmt.Errorf("link fault spec %q: %w", entry, err)
			}
			links.Events = append(links.Events, ev)
		default:
			return nil, nil, fmt.Errorf("cluster fault spec %q: want node<K>:... or link<A>-<B>:...", entry)
		}
	}
	nodes, err := ParseNodeEvents(strings.Join(nodeParts, ","))
	if err != nil {
		return nil, nil, err
	}
	sortLinkEvents(links.Events)
	return nodes, links, nil
}

// RandomLinks draws n link fault events over an all-to-all cluster of
// the given node count from a seeded RNG. The same (seed, nodes, steps,
// n) always yields the same schedule. Drop/dup/reorder/corrupt
// probabilities are drawn in (0, 0.35] and delays in [0.1ms, 1ms], all
// within a bounded-retry protocol's recovery budget.
func RandomLinks(seed int64, nodes, steps, n int) *LinkSchedule {
	sch := &LinkSchedule{}
	if nodes < 2 || steps <= 0 {
		return sch
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		from := rng.Intn(nodes)
		to := rng.Intn(nodes - 1)
		if to >= from {
			to++
		}
		ev := LinkEvent{
			From: from, To: to,
			Kind: LinkKind(rng.Intn(int(numLinkKinds))),
			Step: rng.Intn(steps),
		}
		if ev.Kind == LinkDelay {
			ev.Delay = (0.1 + 0.9*rng.Float64()) * 1e-3
		} else {
			ev.Prob = 0.35 * (0.05 + 0.95*rng.Float64())
		}
		sch.Events = append(sch.Events, ev)
	}
	sortLinkEvents(sch.Events)
	return sch
}

// Hash01 maps (seed, parts...) to a deterministic uniform value in
// [0, 1). The dmem transport draws every per-frame fault verdict from it
// — keyed by link, step, flow, and attempt — so chaos decisions are
// independent of goroutine interleaving and wall-clock timing.
func Hash01(seed int64, parts ...int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for _, p := range parts {
		x ^= uint64(p)
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
	}
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return float64(x>>11) / float64(1<<53)
}
