package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseLinkEventsBasic(t *testing.T) {
	sch, err := ParseLinkEvents("link0-2:drop0.05@step3, link1-0:delay1.5ms@step0,link0-1:dup@step2,link2-1:reorder0.3@step1,link1-2:corrupt0.01@step4")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(sch.Events))
	}
	// Sorted by step.
	for i := 1; i < len(sch.Events); i++ {
		if sch.Events[i-1].Step > sch.Events[i].Step {
			t.Fatalf("events not sorted by step: %v", sch.Events)
		}
	}
	byKind := map[LinkKind]LinkEvent{}
	for _, e := range sch.Events {
		byKind[e.Kind] = e
	}
	if e := byKind[LinkDrop]; e.From != 0 || e.To != 2 || e.Prob != 0.05 || e.Step != 3 {
		t.Errorf("drop event = %+v", e)
	}
	if e := byKind[LinkDelay]; e.From != 1 || e.To != 0 || math.Abs(e.Delay-1.5e-3) > 1e-12 {
		t.Errorf("delay event = %+v", e)
	}
	if e := byKind[LinkDup]; e.Prob != 1 {
		t.Errorf("bare dup should default to probability 1, got %+v", e)
	}
	if e := byKind[LinkReorder]; e.Prob != 0.3 {
		t.Errorf("reorder event = %+v", e)
	}
	if e := byKind[LinkCorrupt]; e.Prob != 0.01 {
		t.Errorf("corrupt event = %+v", e)
	}
}

func TestParseLinkEventsDelayUnits(t *testing.T) {
	sch, err := ParseLinkEvents("link0-1:delay250us@step0,link1-0:delay0.002s@step0")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sch.Events[0].Delay-250e-6) > 1e-12 {
		t.Errorf("us delay = %g", sch.Events[0].Delay)
	}
	if math.Abs(sch.Events[1].Delay-2e-3) > 1e-12 {
		t.Errorf("s delay = %g", sch.Events[1].Delay)
	}
}

func TestParseLinkEventsErrors(t *testing.T) {
	for _, spec := range []string{
		"link0:drop0.1@step0",      // missing peer
		"link0-0:drop0.1@step0",    // loopback
		"linkx-1:drop0.1@step0",    // bad node
		"gpu0-1:drop0.1@step0",     // wrong prefix
		"link0-1:drop@step0",       // drop needs probability
		"link0-1:drop1.5@step0",    // probability out of range
		"link0-1:dup-0.2@step0",    // negative probability
		"link0-1:fizzle@step0",     // unknown kind
		"link0-1:drop0.1",          // missing @step
		"link0-1:drop0.1@step-2",   // negative step
		"link0-1:delayms@step0",    // empty delay
		"link0-1:corrupt0.1 step0", // malformed
	} {
		if _, err := ParseLinkEvents(spec); err == nil {
			t.Errorf("spec %q: want error, got none", spec)
		}
	}
}

func TestLinkScheduleStringRoundTrip(t *testing.T) {
	spec := "link1-0:delay1.5ms@step0,link2-1:reorder@step1,link0-1:dup0.3@step2,link0-2:drop0.05@step3,link1-2:corrupt@step4"
	sch, err := ParseLinkEvents(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseLinkEvents(sch.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", sch.String(), err)
	}
	if !reflect.DeepEqual(sch, again) {
		t.Errorf("round trip changed the schedule:\n  first:  %+v\n  second: %+v", sch, again)
	}
	if sch.String() != spec {
		t.Errorf("String() = %q, want %q", sch.String(), spec)
	}
}

func TestLinkStateLatestEventWins(t *testing.T) {
	sch, err := ParseLinkEvents("link0-1:drop0.5@step0,link0-1:drop0@step3,link0-1:delay1ms@step1")
	if err != nil {
		t.Fatal(err)
	}
	if st := sch.State(0, 1, 0); st.Drop != 0.5 || st.Delay != 0 {
		t.Errorf("step 0 state = %+v", st)
	}
	if st := sch.State(0, 1, 2); st.Drop != 0.5 || st.Delay != 1e-3 {
		t.Errorf("step 2 state = %+v", st)
	}
	if st := sch.State(0, 1, 3); st.Drop != 0 || st.Delay != 1e-3 {
		t.Errorf("step 3 state (drop cleared) = %+v", st)
	}
	if st := sch.State(1, 0, 5); st.Faulty() {
		t.Errorf("reverse link should be clean, got %+v", st)
	}
}

func TestParseClusterEventsOverlapping(t *testing.T) {
	nodes, links, err := ParseClusterEvents("node2:failstop@step4,link0-1:drop0.2@step0,node1:failstop@step6,link1-0:corrupt0.1@step4")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Node != 2 || nodes[0].Step != 4 || nodes[1].Node != 1 {
		t.Errorf("node events = %+v", nodes)
	}
	if len(links.Events) != 2 {
		t.Errorf("link events = %+v", links.Events)
	}
	// A node loss and a link fault overlapping at the same step coexist.
	if st := links.State(1, 0, 4); st.Corrupt != 0.1 {
		t.Errorf("link1-0 state at step 4 = %+v", st)
	}
	if _, _, err := ParseClusterEvents("gpu0:failstop@step1"); err == nil {
		t.Error("device spec in cluster grammar: want error")
	}
	if _, _, err := ParseClusterEvents(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
}

func TestMaxDropFrom(t *testing.T) {
	sch, _ := ParseLinkEvents("link0-1:drop0.2@step0,link0-2:drop0.6@step2,link1-0:drop0.9@step0")
	if got := sch.MaxDropFrom(0, 0); got != 0.2 {
		t.Errorf("step 0: %g", got)
	}
	if got := sch.MaxDropFrom(0, 2); got != 0.6 {
		t.Errorf("step 2: %g", got)
	}
	if got := sch.MaxDropFrom(2, 5); got != 0 {
		t.Errorf("node 2 sends nothing lossy: %g", got)
	}
}

func TestRandomLinksDeterministic(t *testing.T) {
	a := RandomLinks(42, 4, 10, 12)
	b := RandomLinks(42, 4, 10, 12)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	if len(a.Events) != 12 {
		t.Fatalf("got %d events", len(a.Events))
	}
	for _, e := range a.Events {
		if e.From == e.To || e.From < 0 || e.From >= 4 || e.To < 0 || e.To >= 4 {
			t.Errorf("bad link %d-%d", e.From, e.To)
		}
		if e.Kind != LinkDelay && (e.Prob <= 0 || e.Prob > 0.35) {
			t.Errorf("probability out of the within-budget band: %+v", e)
		}
	}
	// Random schedules stay inside the grammar.
	if _, err := ParseLinkEvents(a.String()); err != nil {
		t.Errorf("random schedule does not re-parse: %v", err)
	}
	if c := RandomLinks(43, 4, 10, 12); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestHash01(t *testing.T) {
	if Hash01(7, 1, 2, 3) != Hash01(7, 1, 2, 3) {
		t.Error("not deterministic")
	}
	if Hash01(7, 1, 2, 3) == Hash01(7, 1, 2, 4) {
		t.Error("insensitive to parts")
	}
	if Hash01(7, 1, 2, 3) == Hash01(8, 1, 2, 3) {
		t.Error("insensitive to seed")
	}
	// Crude uniformity check: mean of many draws near 0.5.
	var sum float64
	const n = 4096
	for i := 0; i < n; i++ {
		v := Hash01(11, int64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

// FuzzParseLinkEvents checks that any spec the parser accepts survives a
// String() round trip to an equal schedule.
func FuzzParseLinkEvents(f *testing.F) {
	f.Add("link0-2:drop0.05@step3")
	f.Add("link1-0:delay1.5ms@step0,link0-1:dup@step2")
	f.Add("link2-1:reorder0.25@step1,link1-2:corrupt@step4")
	f.Add("link0-1:drop0.5@step0,link0-1:drop0@step3")
	f.Fuzz(func(t *testing.T, spec string) {
		sch, err := ParseLinkEvents(spec)
		if err != nil {
			return
		}
		again, err := ParseLinkEvents(sch.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", spec, sch.String(), err)
		}
		if !reflect.DeepEqual(sch, again) {
			t.Fatalf("round trip changed the schedule for %q", spec)
		}
		_ = strings.Count(spec, ",")
	})
}
