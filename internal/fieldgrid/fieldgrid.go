// Package fieldgrid samples the gravitational field of a solved system on
// a regular lattice — the bridge between the solver and visualization
// tooling (the probe evaluation itself is core.Solver.EvaluateAt).
package fieldgrid

import (
	"bufio"
	"fmt"
	"io"

	"afmm/internal/core"
	"afmm/internal/geom"
)

// Grid is a regular lattice of Nx x Ny x Nz points starting at Origin with
// spacing Dx along each axis.
type Grid struct {
	Origin     geom.Vec3
	Dx         float64
	Nx, Ny, Nz int
}

// Covering returns a cubic grid of n^3 points covering the box with a
// small margin.
func Covering(b geom.Box, n int) Grid {
	if n < 2 {
		n = 2
	}
	span := 2 * b.Half * 1.05
	return Grid{
		Origin: b.Center.Sub(geom.Vec3{X: span / 2, Y: span / 2, Z: span / 2}),
		Dx:     span / float64(n-1),
		Nx:     n, Ny: n, Nz: n,
	}
}

// Len returns the number of lattice points.
func (g Grid) Len() int { return g.Nx * g.Ny * g.Nz }

// Points materializes the lattice in x-fastest order.
func (g Grid) Points() []geom.Vec3 {
	pts := make([]geom.Vec3, 0, g.Len())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				pts = append(pts, g.Origin.Add(geom.Vec3{
					X: float64(i) * g.Dx,
					Y: float64(j) * g.Dx,
					Z: float64(k) * g.Dx,
				}))
			}
		}
	}
	return pts
}

// Sample evaluates the solver's field on the grid.
func Sample(s *core.Solver, g Grid) (phi []float64, field []geom.Vec3) {
	return s.EvaluateAt(g.Points())
}

// WriteCSV samples the grid and writes "x,y,z,phi,ax,ay,az" rows.
func WriteCSV(w io.Writer, s *core.Solver, g Grid) error {
	pts := g.Points()
	phi, field := s.EvaluateAt(pts)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "x,y,z,phi,ax,ay,az"); err != nil {
		return err
	}
	for i, p := range pts {
		if _, err := fmt.Fprintf(bw, "%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g\n",
			p.X, p.Y, p.Z, phi[i], field[i].X, field[i].Y, field[i].Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}
