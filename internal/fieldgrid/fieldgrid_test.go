package fieldgrid

import (
	"bytes"
	"strings"
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/geom"
)

func TestGridPointsLayout(t *testing.T) {
	g := Grid{Origin: geom.Vec3{X: 1}, Dx: 0.5, Nx: 3, Ny: 2, Nz: 2}
	pts := g.Points()
	if len(pts) != g.Len() || g.Len() != 12 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0] != (geom.Vec3{X: 1}) {
		t.Fatalf("origin %v", pts[0])
	}
	// x-fastest ordering.
	if pts[1] != (geom.Vec3{X: 1.5}) || pts[3] != (geom.Vec3{X: 1, Y: 0.5}) {
		t.Fatalf("ordering wrong: %v %v", pts[1], pts[3])
	}
}

func TestCoveringContainsBox(t *testing.T) {
	b := geom.Box{Center: geom.Vec3{X: 2}, Half: 3}
	g := Covering(b, 5)
	pts := g.Points()
	first := pts[0]
	last := pts[len(pts)-1]
	if first.X > b.Center.X-b.Half || last.X < b.Center.X+b.Half {
		t.Fatalf("grid [%v, %v] does not cover box", first.X, last.X)
	}
}

func TestSampleMatchesDirect(t *testing.T) {
	sys := distrib.Plummer(500, 1, 1, 43)
	s := core.NewSolver(sys, core.Config{P: 8, S: 16, NumGPUs: 1})
	s.Solve()
	g := Grid{Origin: geom.Vec3{X: 2, Y: 2, Z: 2}, Dx: 1, Nx: 2, Ny: 2, Nz: 2}
	phi, field := Sample(s, g)
	pts := g.Points()
	for i, x := range pts {
		var wantPhi float64
		var wantF geom.Vec3
		for j := range sys.Pos {
			p, a := s.Cfg.Kernel.Accumulate(x, sys.Pos[j], sys.Mass[j])
			wantPhi += p
			wantF = wantF.Add(a)
		}
		if d := phi[i] - wantPhi; d > 1e-4*-wantPhi || d < -1e-4*-wantPhi {
			t.Fatalf("point %d: phi %g want %g", i, phi[i], wantPhi)
		}
		if field[i].Sub(wantF).Norm() > 1e-4*(1+wantF.Norm()) {
			t.Fatalf("point %d: field %v want %v", i, field[i], wantF)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	sys := distrib.Plummer(200, 1, 1, 44)
	s := core.NewSolver(sys, core.Config{P: 6, S: 16})
	s.Solve()
	g := Covering(geom.Box{Half: 2}, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+g.Len() {
		t.Fatalf("%d lines, want %d", len(lines), 1+g.Len())
	}
	if lines[0] != "x,y,z,phi,ax,ay,az" {
		t.Fatalf("header %q", lines[0])
	}
	if len(strings.Split(lines[1], ",")) != 7 {
		t.Fatalf("row %q", lines[1])
	}
}
