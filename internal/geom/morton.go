package geom

// Morton (Z-order) encoding: interleaves the bits of quantized coordinates
// so that sorting by key yields a space-filling order. The octree's DFS
// body order coincides with the Morton order of the leaf cells; these
// helpers let external partitioners (e.g. the distributed-memory
// extension) reason about locality without a tree.

// MortonBits is the per-axis resolution of the 63-bit 3-D key.
const MortonBits = 21

// MortonKey quantizes p within the cube b to MortonBits per axis and
// interleaves the bits (x lowest). Points outside the cube are clamped.
func MortonKey(p Vec3, b Box) uint64 {
	scale := float64(uint64(1)<<MortonBits) / (2 * b.Half)
	qx := quantize((p.X - (b.Center.X - b.Half)) * scale)
	qy := quantize((p.Y - (b.Center.Y - b.Half)) * scale)
	qz := quantize((p.Z - (b.Center.Z - b.Half)) * scale)
	return interleave3(qx) | interleave3(qy)<<1 | interleave3(qz)<<2
}

func quantize(x float64) uint32 {
	max := float64(uint64(1)<<MortonBits - 1)
	if x < 0 {
		return 0
	}
	if x > max {
		return uint32(max)
	}
	return uint32(x)
}

// interleave3 spreads the low 21 bits of v so consecutive bits land three
// apart (the classic magic-number dilation).
func interleave3(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// MortonCompact inverts interleave3 (extracts every third bit).
func MortonCompact(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3
	x = (x ^ (x >> 4)) & 0x100f00f00f00f00f
	x = (x ^ (x >> 8)) & 0x1f0000ff0000ff
	x = (x ^ (x >> 16)) & 0x1f00000000ffff
	x = (x ^ (x >> 32)) & 0x1fffff
	return uint32(x)
}

// MortonDecode returns the quantized per-axis coordinates of a key.
func MortonDecode(key uint64) (x, y, z uint32) {
	return MortonCompact(key), MortonCompact(key >> 1), MortonCompact(key >> 2)
}
