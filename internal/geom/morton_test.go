package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<MortonBits - 1
		y &= 1<<MortonBits - 1
		z &= 1<<MortonBits - 1
		key := interleave3(x) | interleave3(y)<<1 | interleave3(z)<<2
		gx, gy, gz := MortonDecode(key)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMortonKeyLocality(t *testing.T) {
	// Points in the same octant of the cube share the top interleaved
	// bits; points in different octants differ there.
	b := Box{Half: 1}
	topBits := func(key uint64) uint64 { return key >> (3 * (MortonBits - 1)) }
	pp := Vec3{0.5, 0.5, 0.5}
	pm := Vec3{0.5, 0.5, -0.5}
	pp2 := Vec3{0.9, 0.1, 0.3}
	if topBits(MortonKey(pp, b)) != topBits(MortonKey(pp2, b)) {
		t.Fatal("same-octant points differ in top Morton bits")
	}
	if topBits(MortonKey(pp, b)) == topBits(MortonKey(pm, b)) {
		t.Fatal("different-octant points share top Morton bits")
	}
}

func TestMortonOrderMatchesOctantOrder(t *testing.T) {
	// Sorting random points by Morton key must group them by octant,
	// with octant index equal to the top 3 bits (x lowest).
	rng := rand.New(rand.NewSource(5))
	b := Box{Half: 2}
	for i := 0; i < 200; i++ {
		p := Vec3{
			X: (2*rng.Float64() - 1) * 2,
			Y: (2*rng.Float64() - 1) * 2,
			Z: (2*rng.Float64() - 1) * 2,
		}
		key := MortonKey(p, b)
		oct := int(key >> (3*MortonBits - 3))
		if oct != b.Octant(p) {
			t.Fatalf("point %v: morton octant %d, geometric octant %d",
				p, oct, b.Octant(p))
		}
	}
}

func TestMortonClamping(t *testing.T) {
	b := Box{Half: 1}
	inside := MortonKey(Vec3{0.999, 0.999, 0.999}, b)
	outside := MortonKey(Vec3{50, 50, 50}, b)
	if inside > outside {
		t.Fatal("clamped outside point ordered before inside corner")
	}
	if MortonKey(Vec3{-50, -50, -50}, b) != 0 {
		t.Fatal("clamped negative point should map to key 0")
	}
}
