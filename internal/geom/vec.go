// Package geom provides the small geometric vocabulary shared by the AFMM:
// 3-D vectors, axis-aligned cubic boxes, and octant indexing for octrees.
package geom

import "math"

// Vec3 is a point or displacement in 3-D space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Spherical returns the spherical coordinates (r, theta, phi) of v, with
// theta the polar angle measured from the +Z axis and phi the azimuth.
// For the zero vector it returns (0, 0, 0).
func (v Vec3) Spherical() (r, theta, phi float64) {
	r = v.Norm()
	if r == 0 {
		return 0, 0, 0
	}
	theta = math.Acos(clamp(v.Z/r, -1, 1))
	phi = math.Atan2(v.Y, v.X)
	return r, theta, phi
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Box is an axis-aligned cube described by its center and half-width.
// Octree cells are always cubes, so a single half-width suffices.
type Box struct {
	Center Vec3
	Half   float64
}

// Contains reports whether p lies inside the half-open cube
// [c-h, c+h) in each dimension. The half-open convention guarantees each
// point belongs to exactly one child octant during subdivision.
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Center.X-b.Half && p.X < b.Center.X+b.Half &&
		p.Y >= b.Center.Y-b.Half && p.Y < b.Center.Y+b.Half &&
		p.Z >= b.Center.Z-b.Half && p.Z < b.Center.Z+b.Half
}

// Octant returns the index (0..7) of the child octant containing p.
// Bit 0 is set when p.X >= center.X, bit 1 for Y, bit 2 for Z.
func (b Box) Octant(p Vec3) int {
	o := 0
	if p.X >= b.Center.X {
		o |= 1
	}
	if p.Y >= b.Center.Y {
		o |= 2
	}
	if p.Z >= b.Center.Z {
		o |= 4
	}
	return o
}

// Child returns the cube of child octant i (0..7).
func (b Box) Child(i int) Box {
	h := b.Half / 2
	c := b.Center
	if i&1 != 0 {
		c.X += h
	} else {
		c.X -= h
	}
	if i&2 != 0 {
		c.Y += h
	} else {
		c.Y -= h
	}
	if i&4 != 0 {
		c.Z += h
	} else {
		c.Z -= h
	}
	return Box{Center: c, Half: h}
}

// WellSeparated reports whether boxes a and b satisfy the FMM
// well-separated criterion used throughout this library: the boxes are at
// the same refinement level (equal half-widths within rounding) and are not
// adjacent, i.e. their center distance exceeds 2x the sum that adjacency
// would give. For equal-size cubes with half-width h, neighbors (including
// diagonal) have center offsets <= 2h per axis; anything farther is
// well separated.
func WellSeparated(a, b Box) bool {
	// Tolerance absorbs floating-point drift in half-widths after many
	// subdivisions.
	d := a.Sub(b)
	limit := 2*math.Max(a.Half, b.Half) + 1e-12*(a.Half+b.Half)
	return d.X > limit || d.Y > limit || d.Z > limit
}

// Sub returns the per-axis absolute center distances between the boxes.
func (b Box) Sub(o Box) Vec3 {
	return Vec3{
		math.Abs(b.Center.X - o.Center.X),
		math.Abs(b.Center.Y - o.Center.Y),
		math.Abs(b.Center.Z - o.Center.Z),
	}
}

// Adjacent reports whether the two cubes touch or overlap (they are not
// well separated in the neighbor sense), allowing for different sizes.
func Adjacent(a, b Box) bool {
	d := a.Sub(b)
	limit := a.Half + b.Half + 1e-12*(a.Half+b.Half)
	return d.X <= limit && d.Y <= limit && d.Z <= limit
}

// BoundingCube returns the smallest cube centered on the centroid of the
// points' bounding box that contains all points, expanded by a small margin
// so boundary points fall strictly inside the half-open root cell.
func BoundingCube(pts []Vec3) Box {
	if len(pts) == 0 {
		return Box{Half: 1}
	}
	min := pts[0]
	max := pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		min.Z = math.Min(min.Z, p.Z)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
		max.Z = math.Max(max.Z, p.Z)
	}
	c := min.Add(max).Scale(0.5)
	h := math.Max(max.X-min.X, math.Max(max.Y-min.Y, max.Z-min.Z)) / 2
	if h == 0 {
		h = 1
	}
	// Expand slightly so points on the max faces stay inside the
	// half-open cube.
	h *= 1 + 1e-9
	h += 1e-300 // guard against denormal collapse for degenerate input
	return Box{Center: c, Half: h}
}
