package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecAlgebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Fatalf("Add: %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale: %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Fatalf("Dot: %v", got)
	}
}

func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int16) bool {
		a := Vec3{float64(ax) / 64, float64(ay) / 64, float64(az) / 64}
		b := Vec3{float64(bx) / 64, float64(by) / 64, float64(bz) / 64}
		c := a.Cross(b)
		// c is orthogonal to both, up to rounding; a x b = -(b x a).
		scale := a.Norm()*b.Norm() + 1
		anti := b.Cross(a).Add(c)
		return almost(c.Dot(a), 0, 1e-9*scale*scale) &&
			almost(c.Dot(b), 0, 1e-9*scale*scale) &&
			anti.Norm() < 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		r, th, ph := v.Spherical()
		back := Vec3{
			X: r * math.Sin(th) * math.Cos(ph),
			Y: r * math.Sin(th) * math.Sin(ph),
			Z: r * math.Cos(th),
		}
		if back.Sub(v).Norm() > 1e-12*(1+r) {
			t.Fatalf("round trip failed: %v -> %v", v, back)
		}
	}
	// Degenerate cases.
	if r, th, ph := (Vec3{}).Spherical(); r != 0 || th != 0 || ph != 0 {
		t.Fatal("zero vector spherical not zero")
	}
	if _, th, _ := (Vec3{Z: 2}).Spherical(); th != 0 {
		t.Fatalf("polar vector theta = %v", th)
	}
}

func TestOctantChildConsistency(t *testing.T) {
	// For any point inside a box, the child of its octant contains it.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		b := Box{
			Center: Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Half:   rng.Float64() + 0.1,
		}
		p := b.Center.Add(Vec3{
			X: (2*rng.Float64() - 1) * b.Half,
			Y: (2*rng.Float64() - 1) * b.Half,
			Z: (2*rng.Float64() - 1) * b.Half,
		})
		if !b.Contains(p) {
			continue // boundary rounding
		}
		child := b.Child(b.Octant(p))
		if !child.Contains(p) {
			t.Fatalf("child %d of %+v does not contain %v", b.Octant(p), b, p)
		}
	}
}

func TestChildrenTileParent(t *testing.T) {
	b := Box{Center: Vec3{1, -2, 3}, Half: 2}
	var vol float64
	for i := 0; i < 8; i++ {
		c := b.Child(i)
		if !almost(c.Half, 1, 1e-15) {
			t.Fatalf("child half = %v", c.Half)
		}
		vol += 8 * c.Half * c.Half * c.Half
		// Child center offset is (±h/2, ±h/2, ±h/2).
		d := c.Center.Sub(b.Center)
		for _, x := range []float64{d.X, d.Y, d.Z} {
			if !almost(math.Abs(x), 1, 1e-15) {
				t.Fatalf("child offset %v", d)
			}
		}
	}
	if !almost(vol, 8*b.Half*b.Half*b.Half, 1e-12) {
		t.Fatalf("children volume %v", vol)
	}
}

func TestWellSeparatedAndAdjacent(t *testing.T) {
	a := Box{Center: Vec3{}, Half: 1}
	near := Box{Center: Vec3{X: 2}, Half: 1}    // touching
	far := Box{Center: Vec3{X: 4.001}, Half: 1} // beyond 2*max+eps along X
	diag := Box{Center: Vec3{2, 2, 2}, Half: 1} // diagonal neighbor
	if WellSeparated(a, near) {
		t.Fatal("touching boxes reported separated")
	}
	if !WellSeparated(a, far) {
		t.Fatal("distant boxes not separated")
	}
	if WellSeparated(a, diag) {
		t.Fatal("diagonal neighbor reported separated")
	}
	if !Adjacent(a, near) || !Adjacent(a, diag) {
		t.Fatal("neighbors not adjacent")
	}
	if Adjacent(a, far) {
		t.Fatal("distant boxes adjacent")
	}
}

func TestBoundingCubeContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100) + 1
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = Vec3{
				X: rng.NormFloat64() * 100,
				Y: rng.NormFloat64(),
				Z: rng.NormFloat64() * 0.01,
			}
		}
		b := BoundingCube(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				t.Fatalf("bounding cube %+v misses %v", b, p)
			}
		}
	}
	// Degenerate inputs.
	if b := BoundingCube(nil); b.Half <= 0 {
		t.Fatal("empty bounding cube has nonpositive half")
	}
	one := []Vec3{{X: 5, Y: 5, Z: 5}}
	if b := BoundingCube(one); !b.Contains(one[0]) {
		t.Fatal("single-point cube misses its point")
	}
}
