package kernels

import (
	"math/rand"
	"testing"

	"afmm/internal/geom"
)

func randBodies(n int, seed int64) ([]geom.Vec3, []float64, []geom.Vec3) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, n)
	mass := make([]float64, n)
	f := make([]geom.Vec3, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		mass[i] = 1
		f[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	return pos, mass, f
}

// BenchmarkGravityP2P reports the direct-kernel throughput in
// interactions/second (the quantity the device model is calibrated in).
func BenchmarkGravityP2P(b *testing.B) {
	const n = 512
	pos, mass, _ := randBodies(n, 1)
	phi := make([]float64, n)
	acc := make([]geom.Vec3, n)
	k := Gravity{G: 1, Softening: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.P2P(pos, phi, acc, pos, mass)
	}
	b.ReportMetric(float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}

func BenchmarkStokesletP2P(b *testing.B) {
	const n = 512
	pos, _, f := randBodies(n, 2)
	vel := make([]geom.Vec3, n)
	k := Stokeslet{Mu: 1, Eps: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.P2P(pos, vel, pos, f)
	}
	b.ReportMetric(float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}
