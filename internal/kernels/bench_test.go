package kernels

import (
	"math/rand"
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/octree"
)

func randBodies(n int, seed int64) ([]geom.Vec3, []float64, []geom.Vec3) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, n)
	mass := make([]float64, n)
	f := make([]geom.Vec3, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		mass[i] = 1
		f[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	return pos, mass, f
}

// BenchmarkGravityP2P reports the direct-kernel throughput in
// interactions/second (the quantity the device model is calibrated in).
func BenchmarkGravityP2P(b *testing.B) {
	const n = 512
	pos, mass, _ := randBodies(n, 1)
	phi := make([]float64, n)
	acc := make([]geom.Vec3, n)
	k := Gravity{G: 1, Softening: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.P2P(pos, phi, acc, pos, mass)
	}
	b.ReportMetric(float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}

// nearFieldTree builds a Plummer decomposition with lists for the two
// near-field sweep benchmarks below.
func nearFieldTree(b *testing.B) *octree.Tree {
	b.Helper()
	sys := distrib.Plummer(20000, 1, 1, 42)
	t := octree.Build(sys, octree.Config{S: 48})
	t.BuildLists()
	return t
}

// BenchmarkNearFieldPerLeaf sweeps the near field the pre-schedule way:
// per-target U-list chasing, re-indirecting each source leaf's bodies
// through the tree for every target that references it.
func BenchmarkNearFieldPerLeaf(b *testing.B) {
	t := nearFieldTree(b)
	sys := t.Sys
	k := Gravity{G: 1, Softening: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ni := range t.VisibleLeaves() {
			tn := &t.Nodes[ni]
			xt := sys.Pos[tn.Start:tn.End]
			pot := sys.Phi[tn.Start:tn.End]
			acc := sys.Acc[tn.Start:tn.End]
			for _, si := range tn.U {
				sn := &t.Nodes[si]
				k.P2P(xt, pot, acc, sys.Pos[sn.Start:sn.End], sys.Mass[sn.Start:sn.End])
			}
		}
	}
	b.ReportMetric(float64(t.CountOps().P2P)*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}

// BenchmarkNearFieldCSR sweeps the same near field through the cached CSR
// schedule's source spans (the solver's default path): no per-source Node
// indirection and no copying.
func BenchmarkNearFieldCSR(b *testing.B) {
	t := nearFieldTree(b)
	sys := t.Sys
	k := Gravity{G: 1, Softening: 0.01}
	sch := t.NearField()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < sch.Rows(); r++ {
			tn := &t.Nodes[sch.Leaves[r]]
			xt := sys.Pos[tn.Start:tn.End]
			pot := sys.Phi[tn.Start:tn.End]
			acc := sys.Acc[tn.Start:tn.End]
			for j := sch.RowPtr[r]; j < sch.RowPtr[r+1]; j++ {
				k.P2P(xt, pot, acc,
					sys.Pos[sch.SrcStart[j]:sch.SrcEnd[j]],
					sys.Mass[sch.SrcStart[j]:sch.SrcEnd[j]])
			}
		}
	}
	b.ReportMetric(float64(sch.Total())*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}

// BenchmarkNearFieldGather sweeps through chunked SoA source gathering
// (core.Config.GatherSources): each chunk's distinct sources are copied
// once into compact buffers. The copy only pays off when the particle
// arrays far exceed the last-level cache.
func BenchmarkNearFieldGather(b *testing.B) {
	t := nearFieldTree(b)
	sys := t.Sys
	k := Gravity{G: 1, Softening: 0.01}
	sch := t.NearField()
	var g octree.SourceGather
	const chunk = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < sch.Rows(); lo += chunk {
			hi := lo + chunk
			if hi > sch.Rows() {
				hi = sch.Rows()
			}
			g.Pack(t, sch, lo, hi, true, false)
			for r := lo; r < hi; r++ {
				tn := &t.Nodes[sch.Leaves[r]]
				xt := sys.Pos[tn.Start:tn.End]
				pot := sys.Phi[tn.Start:tn.End]
				acc := sys.Acc[tn.Start:tn.End]
				for _, si := range sch.Row(r) {
					a, z := g.Span(si)
					k.P2P(xt, pot, acc, g.Pos[a:z], g.Mass[a:z])
				}
			}
		}
	}
	b.ReportMetric(float64(sch.Total())*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}

func BenchmarkStokesletP2P(b *testing.B) {
	const n = 512
	pos, _, f := randBodies(n, 2)
	vel := make([]geom.Vec3, n)
	k := Stokeslet{Mu: 1, Eps: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.P2P(pos, vel, pos, f)
	}
	b.ReportMetric(float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Ginteractions/s")
}
