package kernels

import (
	"math"
	"math/rand"
	"testing"

	"afmm/internal/geom"
)

func randVec(rng *rand.Rand) geom.Vec3 {
	return geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
}

// TestGravityP2PBlockedBitIdentical checks the tiled P2P against the
// scalar reference bit-for-bit: the tiling reorders targets into blocks
// but every pair's arithmetic and every target's source-accumulation
// order are unchanged, so results must be exactly equal — including
// remainder rows (nt % tile != 0), pre-seeded accumulators, and
// coincident points.
func TestGravityP2PBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, soft := range []float64{0, 0.01} {
		k := Gravity{G: 1.25, Softening: soft}
		for _, nt := range []int{0, 1, 2, 3, 4, 5, 7, 8, 33} {
			for _, ns := range []int{0, 1, 6, 29} {
				xt := make([]geom.Vec3, nt)
				ys := make([]geom.Vec3, ns)
				ms := make([]float64, ns)
				for i := range xt {
					xt[i] = randVec(rng)
				}
				for j := range ys {
					ys[j] = randVec(rng)
					ms[j] = rng.Float64() + 0.1
				}
				if nt > 0 && ns > 0 {
					// Include a coincident pair to exercise the r2 == 0 skip.
					ys[0] = xt[nt/2]
				}
				phiA := make([]float64, nt)
				accA := make([]geom.Vec3, nt)
				phiB := make([]float64, nt)
				accB := make([]geom.Vec3, nt)
				for i := 0; i < nt; i++ {
					phiA[i] = rng.NormFloat64()
					accA[i] = randVec(rng)
					phiB[i] = phiA[i]
					accB[i] = accA[i]
				}
				k.P2P(xt, phiA, accA, ys, ms)
				k.P2PScalar(xt, phiB, accB, ys, ms)
				for i := 0; i < nt; i++ {
					if phiA[i] != phiB[i] || accA[i] != accB[i] {
						t.Fatalf("soft=%v nt=%d ns=%d: target %d differs: phi %v vs %v, acc %v vs %v",
							soft, nt, ns, i, phiA[i], phiB[i], accA[i], accB[i])
					}
				}
			}
		}
	}
}

// TestStokesletP2PBlockedBitIdentical is the Stokeslet analogue.
func TestStokesletP2PBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := Stokeslet{Mu: 0.9, Eps: 0.02}
	for _, nt := range []int{0, 1, 3, 4, 6, 8, 21} {
		for _, ns := range []int{0, 1, 5, 17} {
			xt := make([]geom.Vec3, nt)
			ys := make([]geom.Vec3, ns)
			fs := make([]geom.Vec3, ns)
			for i := range xt {
				xt[i] = randVec(rng)
			}
			for j := range ys {
				ys[j] = randVec(rng)
				fs[j] = randVec(rng)
			}
			if nt > 0 && ns > 0 {
				ys[0] = xt[0] // self pair stays finite but exercises r2 == 0
			}
			velA := make([]geom.Vec3, nt)
			velB := make([]geom.Vec3, nt)
			for i := 0; i < nt; i++ {
				velA[i] = randVec(rng)
				velB[i] = velA[i]
			}
			k.P2P(xt, velA, ys, fs)
			k.P2PScalar(xt, velB, ys, fs)
			for i := 0; i < nt; i++ {
				if velA[i] != velB[i] {
					t.Fatalf("nt=%d ns=%d: target %d differs: %v vs %v",
						nt, ns, i, velA[i], velB[i])
				}
			}
		}
	}
}

// TestGravityP2P32NearScalar bounds the float32 path against the float64
// reference: relative error must stay within a small multiple of
// eps32 * ns (the gate's own bound).
func TestGravityP2P32NearScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := Gravity{G: 1, Softening: 0.05}
	const nt, ns = 19, 40
	xt := make([]geom.Vec3, nt)
	ys := make([]geom.Vec3, ns)
	ms := make([]float64, ns)
	sx := make([]float32, ns)
	sy := make([]float32, ns)
	sz := make([]float32, ns)
	sm := make([]float32, ns)
	for i := range xt {
		xt[i] = randVec(rng)
	}
	for j := range ys {
		ys[j] = randVec(rng)
		ms[j] = rng.Float64() + 0.1
		sx[j] = float32(ys[j].X)
		sy[j] = float32(ys[j].Y)
		sz[j] = float32(ys[j].Z)
		sm[j] = float32(ms[j])
	}
	phiRef := make([]float64, nt)
	accRef := make([]geom.Vec3, nt)
	k.P2PScalar(xt, phiRef, accRef, ys, ms)

	phi32 := make([]float64, nt)
	acc32 := make([]geom.Vec3, nt)
	k.P2P32(xt, phi32, acc32, sx, sy, sz, sm)

	phiAoS := make([]float64, nt)
	accAoS := make([]geom.Vec3, nt)
	k.P2P32AoS(xt, phiAoS, accAoS, ys, ms)

	bound := 64 * Eps32 * float64(ns)
	for i := 0; i < nt; i++ {
		if d := math.Abs(phi32[i]-phiRef[i]) / (1 + math.Abs(phiRef[i])); d > bound {
			t.Fatalf("P2P32 phi[%d] off by %g (bound %g)", i, d, bound)
		}
		if d := acc32[i].Sub(accRef[i]).Norm() / (1 + accRef[i].Norm()); d > bound {
			t.Fatalf("P2P32 acc[%d] off by %g (bound %g)", i, d, bound)
		}
		if d := math.Abs(phiAoS[i]-phiRef[i]) / (1 + math.Abs(phiRef[i])); d > bound {
			t.Fatalf("P2P32AoS phi[%d] off by %g (bound %g)", i, d, bound)
		}
		if d := accAoS[i].Sub(accRef[i]).Norm() / (1 + accRef[i].Norm()); d > bound {
			t.Fatalf("P2P32AoS acc[%d] off by %g (bound %g)", i, d, bound)
		}
	}
}

// TestStokesletP2P32NearScalar is the Stokeslet float32 analogue.
func TestStokesletP2P32NearScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := Stokeslet{Mu: 1.1, Eps: 0.03}
	const nt, ns = 11, 31
	xt := make([]geom.Vec3, nt)
	ys := make([]geom.Vec3, ns)
	fs := make([]geom.Vec3, ns)
	sx := make([]float32, ns)
	sy := make([]float32, ns)
	sz := make([]float32, ns)
	fx := make([]float32, ns)
	fy := make([]float32, ns)
	fz := make([]float32, ns)
	for i := range xt {
		xt[i] = randVec(rng)
	}
	for j := range ys {
		ys[j] = randVec(rng)
		fs[j] = randVec(rng)
		sx[j] = float32(ys[j].X)
		sy[j] = float32(ys[j].Y)
		sz[j] = float32(ys[j].Z)
		fx[j] = float32(fs[j].X)
		fy[j] = float32(fs[j].Y)
		fz[j] = float32(fs[j].Z)
	}
	velRef := make([]geom.Vec3, nt)
	k.P2PScalar(xt, velRef, ys, fs)

	vel32 := make([]geom.Vec3, nt)
	k.P2P32(xt, vel32, sx, sy, sz, fx, fy, fz)

	velAoS := make([]geom.Vec3, nt)
	k.P2P32AoS(xt, velAoS, ys, fs)

	bound := 64 * Eps32 * float64(ns)
	for i := 0; i < nt; i++ {
		if d := vel32[i].Sub(velRef[i]).Norm() / (1 + velRef[i].Norm()); d > bound {
			t.Fatalf("P2P32 vel[%d] off by %g (bound %g)", i, d, bound)
		}
		if d := velAoS[i].Sub(velRef[i]).Norm() / (1 + velRef[i].Norm()); d > bound {
			t.Fatalf("P2P32AoS vel[%d] off by %g (bound %g)", i, d, bound)
		}
	}
}
