// Package kernels implements the direct (P2P) pairwise interaction kernels:
// the Laplace/gravity kernel used by the paper's gravitational test problem
// and the regularized Stokeslet kernel of Cortez used by its fluid-dynamics
// problem.
package kernels

import (
	"math"

	"afmm/internal/geom"
)

// Gravity is the softened Laplace kernel. With Softening = 0 it is the pure
// 1/r potential used by the far-field expansions; a small softening is
// conventional for collisional N-body time integration.
type Gravity struct {
	// G is the gravitational constant. The induced acceleration on a
	// target at x from a source of mass m at y is -G m (x-y)/|x-y|^3.
	G float64
	// Softening is the Plummer softening length eps; the effective
	// distance is sqrt(r^2 + eps^2).
	Softening float64
}

// Accumulate adds the potential and acceleration at target x due to a
// source of mass m at y. A self-pair (zero distance) contributes nothing.
func (k Gravity) Accumulate(x, y geom.Vec3, m float64) (phi float64, acc geom.Vec3) {
	d := x.Sub(y)
	if d.Norm2() == 0 {
		return 0, geom.Vec3{} // self pair (or exact coincidence): no force
	}
	r2 := d.Norm2() + k.Softening*k.Softening
	inv := 1 / math.Sqrt(r2)
	inv3 := inv * inv * inv
	return -k.G * m * inv, d.Scale(-k.G * m * inv3)
}

// P2P computes the mutual interactions of targets (positions xt) against
// sources (positions ys, masses ms), accumulating potential into phi and
// acceleration into acc (parallel to xt). It is the reference CPU kernel;
// the virtual GPU executes the numerically identical computation.
func (k Gravity) P2P(xt []geom.Vec3, phi []float64, acc []geom.Vec3, ys []geom.Vec3, ms []float64) {
	eps2 := k.Softening * k.Softening
	for i := range xt {
		p := phi[i]
		a := acc[i]
		xi := xt[i]
		for j := range ys {
			d := xi.Sub(ys[j])
			r2 := d.Norm2()
			if r2 == 0 {
				continue // self pair or exact coincidence
			}
			r2 += eps2
			inv := 1 / math.Sqrt(r2)
			gm := k.G * ms[j]
			p -= gm * inv
			f := gm * inv * inv * inv
			a.X -= f * d.X
			a.Y -= f * d.Y
			a.Z -= f * d.Z
		}
		phi[i] = p
		acc[i] = a
	}
}

// Stokeslet is the regularized Stokeslet kernel of Cortez (2001/2005). A
// point force f at y induces a fluid velocity at x:
//
//	u(x) = (1 / 8 pi mu) [ f (r^2 + 2 eps^2) / (r^2 + eps^2)^{3/2}
//	                      + (f . d) d / (r^2 + eps^2)^{3/2} ]
//
// with d = x - y, r = |d| and blob parameter eps. As eps -> 0 this reduces
// to the singular Stokeslet (Oseen tensor).
type Stokeslet struct {
	Mu  float64 // dynamic viscosity
	Eps float64 // regularization (blob) parameter
}

// Velocity returns the induced velocity at x from a regularized point force
// f located at y.
func (k Stokeslet) Velocity(x, y geom.Vec3, f geom.Vec3) geom.Vec3 {
	d := x.Sub(y)
	r2 := d.Norm2()
	e2 := k.Eps * k.Eps
	den := math.Pow(r2+e2, 1.5)
	if den == 0 {
		return geom.Vec3{}
	}
	c := 1 / (8 * math.Pi * k.Mu * den)
	h1 := (r2 + 2*e2) * c
	h2 := d.Dot(f) * c
	return f.Scale(h1).Add(d.Scale(h2))
}

// SingularVelocity returns the velocity induced by a singular Stokeslet —
// the eps -> 0 limit, used to validate the far-field harmonic
// decomposition.
func (k Stokeslet) SingularVelocity(x, y geom.Vec3, f geom.Vec3) geom.Vec3 {
	d := x.Sub(y)
	r := d.Norm()
	if r == 0 {
		return geom.Vec3{}
	}
	c := 1 / (8 * math.Pi * k.Mu)
	return f.Scale(c / r).Add(d.Scale(c * d.Dot(f) / (r * r * r)))
}

// P2P accumulates regularized Stokeslet velocities at targets xt due to
// point forces fs at ys into vel.
func (k Stokeslet) P2P(xt []geom.Vec3, vel []geom.Vec3, ys []geom.Vec3, fs []geom.Vec3) {
	e2 := k.Eps * k.Eps
	c0 := 1 / (8 * math.Pi * k.Mu)
	for i := range xt {
		v := vel[i]
		xi := xt[i]
		for j := range ys {
			d := xi.Sub(ys[j])
			r2 := d.Norm2()
			den := r2 + e2
			den15 := den * math.Sqrt(den)
			if den15 == 0 {
				continue
			}
			c := c0 / den15
			f := fs[j]
			h1 := (r2 + 2*e2) * c
			h2 := d.Dot(f) * c
			v.X += f.X*h1 + d.X*h2
			v.Y += f.Y*h1 + d.Y*h2
			v.Z += f.Z*h1 + d.Z*h2
		}
		vel[i] = v
	}
}

// FlopsPerGravityInteraction is the approximate floating-point cost of one
// gravity P2P pair, used by the device cost models.
const FlopsPerGravityInteraction = 20

// FlopsPerStokesletInteraction is the approximate cost of one regularized
// Stokeslet pair.
const FlopsPerStokesletInteraction = 34
