// Package kernels implements the direct (P2P) pairwise interaction kernels:
// the Laplace/gravity kernel used by the paper's gravitational test problem
// and the regularized Stokeslet kernel of Cortez used by its fluid-dynamics
// problem.
package kernels

import (
	"math"

	"afmm/internal/geom"
)

// Gravity is the softened Laplace kernel. With Softening = 0 it is the pure
// 1/r potential used by the far-field expansions; a small softening is
// conventional for collisional N-body time integration.
type Gravity struct {
	// G is the gravitational constant. The induced acceleration on a
	// target at x from a source of mass m at y is -G m (x-y)/|x-y|^3.
	G float64
	// Softening is the Plummer softening length eps; the effective
	// distance is sqrt(r^2 + eps^2).
	Softening float64
}

// Accumulate adds the potential and acceleration at target x due to a
// source of mass m at y. A self-pair (zero distance) contributes nothing.
func (k Gravity) Accumulate(x, y geom.Vec3, m float64) (phi float64, acc geom.Vec3) {
	d := x.Sub(y)
	if d.Norm2() == 0 {
		return 0, geom.Vec3{} // self pair (or exact coincidence): no force
	}
	r2 := d.Norm2() + k.Softening*k.Softening
	inv := 1 / math.Sqrt(r2)
	inv3 := inv * inv * inv
	return -k.G * m * inv, d.Scale(-k.G * m * inv3)
}

// p2pTile is the target-block width of the tiled gravity P2P kernel: the
// tile's accumulators live in registers while each source position/mass is
// loaded once and applied to the whole tile, dividing the source-stream
// memory traffic of the dominant near-field loop by the tile width. Width 2
// is the measured optimum for Go's scalar codegen on x86-64: each gravity
// target keeps 4 accumulator lanes (phi + 3 acc) plus its position live, so
// wider tiles overflow the 16-entry vector register file and spill; on
// divider-throughput-bound hosts (where 1/sqrt dominates) width 2 is at
// parity with the scalar walk, and on memory-bound hosts it wins by halving
// the stream.
const p2pTile = 2

// P2P computes the mutual interactions of targets (positions xt) against
// sources (positions ys, masses ms), accumulating potential into phi and
// acceleration into acc (parallel to xt). It is the reference CPU kernel;
// the virtual GPU executes the numerically identical computation. The loop
// is tiled over targets but evaluates the per-pair arithmetic of P2PScalar
// term-for-term, so results are bit-identical to the scalar kernel.
func (k Gravity) P2P(xt []geom.Vec3, phi []float64, acc []geom.Vec3, ys []geom.Vec3, ms []float64) {
	eps2 := k.Softening * k.Softening
	n := len(ys)
	if n > len(ms) {
		n = len(ms)
	}
	ys = ys[:n]
	ms = ms[:n]
	i := 0
	for ; i+p2pTile <= len(xt); i += p2pTile {
		x0, x1 := xt[i], xt[i+1]
		p0, p1 := phi[i], phi[i+1]
		a0, a1 := acc[i], acc[i+1]
		for j := 0; j < n; j++ {
			y := ys[j]
			gm := k.G * ms[j]
			{
				dx, dy, dz := x0.X-y.X, x0.Y-y.Y, x0.Z-y.Z
				r2 := dx*dx + dy*dy + dz*dz
				if r2 != 0 {
					r2 += eps2
					inv := 1 / math.Sqrt(r2)
					p0 -= gm * inv
					f := gm * inv * inv * inv
					a0.X -= f * dx
					a0.Y -= f * dy
					a0.Z -= f * dz
				}
			}
			{
				dx, dy, dz := x1.X-y.X, x1.Y-y.Y, x1.Z-y.Z
				r2 := dx*dx + dy*dy + dz*dz
				if r2 != 0 {
					r2 += eps2
					inv := 1 / math.Sqrt(r2)
					p1 -= gm * inv
					f := gm * inv * inv * inv
					a1.X -= f * dx
					a1.Y -= f * dy
					a1.Z -= f * dz
				}
			}
		}
		phi[i], phi[i+1] = p0, p1
		acc[i], acc[i+1] = a0, a1
	}
	if i < len(xt) {
		k.P2PScalar(xt[i:], phi[i:], acc[i:], ys, ms)
	}
}

// P2PScalar is the untiled reference kernel (the pre-tiling P2P), retained
// as the remainder loop of the tiled path and as the A/B baseline for the
// kernel benchmarks and bit-identity tests.
func (k Gravity) P2PScalar(xt []geom.Vec3, phi []float64, acc []geom.Vec3, ys []geom.Vec3, ms []float64) {
	eps2 := k.Softening * k.Softening
	for i := range xt {
		p := phi[i]
		a := acc[i]
		xi := xt[i]
		for j := range ys {
			d := xi.Sub(ys[j])
			r2 := d.Norm2()
			if r2 == 0 {
				continue // self pair or exact coincidence
			}
			r2 += eps2
			inv := 1 / math.Sqrt(r2)
			gm := k.G * ms[j]
			p -= gm * inv
			f := gm * inv * inv * inv
			a.X -= f * d.X
			a.Y -= f * d.Y
			a.Z -= f * d.Z
		}
		phi[i] = p
		acc[i] = a
	}
}

// P2P32 is the float32 near-field kernel: sources arrive as float32 SoA
// (packed by octree.SourceGather.Pack32), per-pair arithmetic runs in
// float32 — halving the source memory stream and using the cheaper
// single-precision square root — and each target's partial sums widen to
// float64 once, when added to phi/acc. The per-target float32 accumulation
// bounds the relative error by roughly eps32 * n_src, which is what the
// solver's precision gate checks before enabling this path.
func (k Gravity) P2P32(xt []geom.Vec3, phi []float64, acc []geom.Vec3, sx, sy, sz, sm []float32) {
	eps2 := float32(k.Softening * k.Softening)
	g := float32(k.G)
	n := len(sx)
	if len(sy) < n {
		n = len(sy)
	}
	if len(sz) < n {
		n = len(sz)
	}
	if len(sm) < n {
		n = len(sm)
	}
	sx, sy, sz, sm = sx[:n], sy[:n], sz[:n], sm[:n]
	for i := range xt {
		xi := xt[i]
		tx, ty, tz := float32(xi.X), float32(xi.Y), float32(xi.Z)
		var p, ax, ay, az float32
		for j := 0; j < n; j++ {
			dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			r2 += eps2
			inv := float32(1) / float32(math.Sqrt(float64(r2)))
			gm := g * sm[j]
			p -= gm * inv
			f := gm * inv * inv * inv
			ax -= f * dx
			ay -= f * dy
			az -= f * dz
		}
		phi[i] += float64(p)
		a := acc[i]
		a.X += float64(ax)
		a.Y += float64(ay)
		a.Z += float64(az)
		acc[i] = a
	}
}

// P2P32AoS runs the float32 near-field arithmetic over float64 AoS source
// slices, converting on the fly. It is the NearFloat32 path for consumers
// without a gather buffer (the virtual-GPU per-pair walk).
func (k Gravity) P2P32AoS(xt []geom.Vec3, phi []float64, acc []geom.Vec3, ys []geom.Vec3, ms []float64) {
	eps2 := float32(k.Softening * k.Softening)
	g := float32(k.G)
	n := len(ys)
	if n > len(ms) {
		n = len(ms)
	}
	ys = ys[:n]
	ms = ms[:n]
	for i := range xt {
		xi := xt[i]
		tx, ty, tz := float32(xi.X), float32(xi.Y), float32(xi.Z)
		var p, ax, ay, az float32
		for j := 0; j < n; j++ {
			y := ys[j]
			dx, dy, dz := tx-float32(y.X), ty-float32(y.Y), tz-float32(y.Z)
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			r2 += eps2
			inv := float32(1) / float32(math.Sqrt(float64(r2)))
			gm := g * float32(ms[j])
			p -= gm * inv
			f := gm * inv * inv * inv
			ax -= f * dx
			ay -= f * dy
			az -= f * dz
		}
		phi[i] += float64(p)
		a := acc[i]
		a.X += float64(ax)
		a.Y += float64(ay)
		a.Z += float64(az)
		acc[i] = a
	}
}

// Stokeslet is the regularized Stokeslet kernel of Cortez (2001/2005). A
// point force f at y induces a fluid velocity at x:
//
//	u(x) = (1 / 8 pi mu) [ f (r^2 + 2 eps^2) / (r^2 + eps^2)^{3/2}
//	                      + (f . d) d / (r^2 + eps^2)^{3/2} ]
//
// with d = x - y, r = |d| and blob parameter eps. As eps -> 0 this reduces
// to the singular Stokeslet (Oseen tensor).
type Stokeslet struct {
	Mu  float64 // dynamic viscosity
	Eps float64 // regularization (blob) parameter
}

// Velocity returns the induced velocity at x from a regularized point force
// f located at y.
func (k Stokeslet) Velocity(x, y geom.Vec3, f geom.Vec3) geom.Vec3 {
	d := x.Sub(y)
	r2 := d.Norm2()
	e2 := k.Eps * k.Eps
	den := math.Pow(r2+e2, 1.5)
	if den == 0 {
		return geom.Vec3{}
	}
	c := 1 / (8 * math.Pi * k.Mu * den)
	h1 := (r2 + 2*e2) * c
	h2 := d.Dot(f) * c
	return f.Scale(h1).Add(d.Scale(h2))
}

// SingularVelocity returns the velocity induced by a singular Stokeslet —
// the eps -> 0 limit, used to validate the far-field harmonic
// decomposition.
func (k Stokeslet) SingularVelocity(x, y geom.Vec3, f geom.Vec3) geom.Vec3 {
	d := x.Sub(y)
	r := d.Norm()
	if r == 0 {
		return geom.Vec3{}
	}
	c := 1 / (8 * math.Pi * k.Mu)
	return f.Scale(c / r).Add(d.Scale(c * d.Dot(f) / (r * r * r)))
}

// P2P accumulates regularized Stokeslet velocities at targets xt due to
// point forces fs at ys into vel. Unlike Gravity.P2P it is not tiled over
// targets: a Stokeslet target keeps 6 live lanes (3 velocity accumulators +
// 3 position components) against gravity's 4+3, so even a 2-wide tile
// overflows the x86-64 scalar register file and measures 14-27% slower
// than the scalar walk under Go's codegen. The scalar walk is the blocked
// optimum at width 1; P2PScalar remains the named A/B baseline.
func (k Stokeslet) P2P(xt []geom.Vec3, vel []geom.Vec3, ys []geom.Vec3, fs []geom.Vec3) {
	n := len(ys)
	if n > len(fs) {
		n = len(fs)
	}
	k.P2PScalar(xt, vel, ys[:n], fs[:n])
}

// P2PScalar is the untiled reference Stokeslet kernel (the pre-tiling
// P2P), retained as the tiled path's remainder loop and the A/B baseline.
func (k Stokeslet) P2PScalar(xt []geom.Vec3, vel []geom.Vec3, ys []geom.Vec3, fs []geom.Vec3) {
	e2 := k.Eps * k.Eps
	c0 := 1 / (8 * math.Pi * k.Mu)
	for i := range xt {
		v := vel[i]
		xi := xt[i]
		for j := range ys {
			d := xi.Sub(ys[j])
			r2 := d.Norm2()
			den := r2 + e2
			den15 := den * math.Sqrt(den)
			if den15 == 0 {
				continue
			}
			c := c0 / den15
			f := fs[j]
			h1 := (r2 + 2*e2) * c
			h2 := d.Dot(f) * c
			v.X += f.X*h1 + d.X*h2
			v.Y += f.Y*h1 + d.Y*h2
			v.Z += f.Z*h1 + d.Z*h2
		}
		vel[i] = v
	}
}

// P2P32 is the float32 Stokeslet near-field kernel over float32 SoA
// sources (positions sx/sy/sz, forces fx/fy/fz); see Gravity.P2P32 for the
// precision contract.
func (k Stokeslet) P2P32(xt []geom.Vec3, vel []geom.Vec3, sx, sy, sz, fx, fy, fz []float32) {
	e2 := float32(k.Eps * k.Eps)
	c0 := float32(1 / (8 * math.Pi * k.Mu))
	n := len(sx)
	for _, s := range [][]float32{sy, sz, fx, fy, fz} {
		if len(s) < n {
			n = len(s)
		}
	}
	sx, sy, sz = sx[:n], sy[:n], sz[:n]
	fx, fy, fz = fx[:n], fy[:n], fz[:n]
	for i := range xt {
		xi := xt[i]
		tx, ty, tz := float32(xi.X), float32(xi.Y), float32(xi.Z)
		var vx, vy, vz float32
		for j := 0; j < n; j++ {
			dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
			r2 := dx*dx + dy*dy + dz*dz
			den := r2 + e2
			den15 := den * float32(math.Sqrt(float64(den)))
			if den15 == 0 {
				continue
			}
			c := c0 / den15
			h1 := (r2 + 2*e2) * c
			h2 := (dx*fx[j] + dy*fy[j] + dz*fz[j]) * c
			vx += fx[j]*h1 + dx*h2
			vy += fy[j]*h1 + dy*h2
			vz += fz[j]*h1 + dz*h2
		}
		v := vel[i]
		v.X += float64(vx)
		v.Y += float64(vy)
		v.Z += float64(vz)
		vel[i] = v
	}
}

// P2P32AoS runs the float32 Stokeslet arithmetic over float64 AoS slices,
// converting on the fly (the gather-free NearFloat32 path).
func (k Stokeslet) P2P32AoS(xt []geom.Vec3, vel []geom.Vec3, ys []geom.Vec3, fs []geom.Vec3) {
	e2 := float32(k.Eps * k.Eps)
	c0 := float32(1 / (8 * math.Pi * k.Mu))
	n := len(ys)
	if n > len(fs) {
		n = len(fs)
	}
	ys = ys[:n]
	fs = fs[:n]
	for i := range xt {
		xi := xt[i]
		tx, ty, tz := float32(xi.X), float32(xi.Y), float32(xi.Z)
		var vx, vy, vz float32
		for j := 0; j < n; j++ {
			y := ys[j]
			sfx, sfy, sfz := float32(fs[j].X), float32(fs[j].Y), float32(fs[j].Z)
			dx, dy, dz := tx-float32(y.X), ty-float32(y.Y), tz-float32(y.Z)
			r2 := dx*dx + dy*dy + dz*dz
			den := r2 + e2
			den15 := den * float32(math.Sqrt(float64(den)))
			if den15 == 0 {
				continue
			}
			c := c0 / den15
			h1 := (r2 + 2*e2) * c
			h2 := (dx*sfx + dy*sfy + dz*sfz) * c
			vx += sfx*h1 + dx*h2
			vy += sfy*h1 + dy*h2
			vz += sfz*h1 + dz*h2
		}
		v := vel[i]
		v.X += float64(vx)
		v.Y += float64(vy)
		v.Z += float64(vz)
		vel[i] = v
	}
}

// FlopsPerGravityInteraction is the approximate floating-point cost of one
// gravity P2P pair, used by the device cost models.
const FlopsPerGravityInteraction = 20

// FlopsPerStokesletInteraction is the approximate cost of one regularized
// Stokeslet pair.
const FlopsPerStokesletInteraction = 34

// Eps32 is the float32 unit roundoff (2^-24). The per-target float32
// accumulation of the P2P32 kernels bounds the relative near-field error
// by about Eps32 * n_src for the worst row, which the solvers' precision
// gate compares against the accuracy target before enabling NearFloat32.
const Eps32 = 1.0 / (1 << 24)

// NearFloat32Speedup is the assumed throughput ratio of the float32 near
// field over the float64 path, used to pre-scale the cost model's P2P
// coefficient when the precision gate toggles so the balancer's S search
// re-converges quickly (observations then refine the real rate).
const NearFloat32Speedup = 1.6
