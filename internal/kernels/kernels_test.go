package kernels

import (
	"math"
	"math/rand"
	"testing"

	"afmm/internal/geom"
)

func TestGravityAccumulateBasics(t *testing.T) {
	k := Gravity{G: 2}
	x := geom.Vec3{X: 3}
	y := geom.Vec3{}
	phi, acc := k.Accumulate(x, y, 5)
	if math.Abs(phi-(-2*5/3.0)) > 1e-15 {
		t.Fatalf("phi = %v", phi)
	}
	// Acceleration points from x toward y with magnitude G m / r^2.
	want := geom.Vec3{X: -2 * 5 / 9.0}
	if acc.Sub(want).Norm() > 1e-15 {
		t.Fatalf("acc = %v want %v", acc, want)
	}
	// Self pair contributes nothing even with softening.
	ks := Gravity{G: 1, Softening: 0.1}
	if p, a := ks.Accumulate(x, x, 1); p != 0 || a != (geom.Vec3{}) {
		t.Fatal("self pair not skipped")
	}
}

func TestGravityP2PMatchesAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := Gravity{G: 1.5, Softening: 0.01}
	const nt, ns = 17, 23
	xt := make([]geom.Vec3, nt)
	ys := make([]geom.Vec3, ns)
	ms := make([]float64, ns)
	for i := range xt {
		xt[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	for j := range ys {
		ys[j] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		ms[j] = rng.Float64() + 0.1
	}
	phi := make([]float64, nt)
	acc := make([]geom.Vec3, nt)
	k.P2P(xt, phi, acc, ys, ms)
	for i := range xt {
		var wantPhi float64
		var wantAcc geom.Vec3
		for j := range ys {
			p, a := k.Accumulate(xt[i], ys[j], ms[j])
			wantPhi += p
			wantAcc = wantAcc.Add(a)
		}
		if math.Abs(phi[i]-wantPhi) > 1e-12*math.Abs(wantPhi) {
			t.Fatalf("phi[%d] = %v want %v", i, phi[i], wantPhi)
		}
		if acc[i].Sub(wantAcc).Norm() > 1e-12*wantAcc.Norm() {
			t.Fatalf("acc[%d] = %v want %v", i, acc[i], wantAcc)
		}
	}
}

func TestGravityNewtonThirdLaw(t *testing.T) {
	k := Gravity{G: 1, Softening: 0.05}
	a := geom.Vec3{X: 1, Y: 2, Z: -1}
	b := geom.Vec3{X: -0.5, Y: 0.3, Z: 2}
	_, fab := k.Accumulate(a, b, 1)
	_, fba := k.Accumulate(b, a, 1)
	if fab.Add(fba).Norm() > 1e-15 {
		t.Fatalf("forces not antisymmetric: %v vs %v", fab, fba)
	}
}

func TestStokesletReducesToSingular(t *testing.T) {
	x := geom.Vec3{X: 2, Y: 1, Z: -0.5}
	y := geom.Vec3{X: -1}
	f := geom.Vec3{X: 0.3, Y: -0.7, Z: 1.1}
	sing := Stokeslet{Mu: 1.3}.SingularVelocity(x, y, f)
	for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
		u := Stokeslet{Mu: 1.3, Eps: eps}.Velocity(x, y, f)
		if u.Sub(sing).Norm() > 10*eps*eps*sing.Norm()+1e-14 {
			t.Fatalf("eps=%v: %v vs singular %v", eps, u, sing)
		}
	}
}

func TestStokesletSelfVelocityFinite(t *testing.T) {
	// The regularized kernel has a finite self-induced velocity
	// u(0) = f / (4 pi mu eps) — the defining property of the method.
	k := Stokeslet{Mu: 2, Eps: 0.1}
	f := geom.Vec3{Z: 1}
	u := k.Velocity(geom.Vec3{}, geom.Vec3{}, f)
	want := f.Scale(2 * 0.1 * 0.1 / (8 * math.Pi * 2 * math.Pow(0.1, 3)))
	if u.Sub(want).Norm() > 1e-14 {
		t.Fatalf("self velocity %v want %v", u, want)
	}
}

func TestStokesletP2PMatchesVelocity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := Stokeslet{Mu: 0.8, Eps: 0.02}
	const nt, ns = 9, 13
	xt := make([]geom.Vec3, nt)
	ys := make([]geom.Vec3, ns)
	fs := make([]geom.Vec3, ns)
	for i := range xt {
		xt[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	for j := range ys {
		ys[j] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		fs[j] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	vel := make([]geom.Vec3, nt)
	k.P2P(xt, vel, ys, fs)
	for i := range xt {
		var want geom.Vec3
		for j := range ys {
			want = want.Add(k.Velocity(xt[i], ys[j], fs[j]))
		}
		if vel[i].Sub(want).Norm() > 1e-12*(1+want.Norm()) {
			t.Fatalf("vel[%d] = %v want %v", i, vel[i], want)
		}
	}
}

func TestStokesFlowIncompressibilityNumerically(t *testing.T) {
	// div u = 0 for the singular Stokeslet away from the source.
	k := Stokeslet{Mu: 1}
	y := geom.Vec3{}
	f := geom.Vec3{X: 1, Y: 0.5, Z: -0.2}
	x := geom.Vec3{X: 1.2, Y: -0.7, Z: 0.4}
	const h = 1e-5
	div := 0.0
	for axis := 0; axis < 3; axis++ {
		var d geom.Vec3
		switch axis {
		case 0:
			d = geom.Vec3{X: h}
		case 1:
			d = geom.Vec3{Y: h}
		default:
			d = geom.Vec3{Z: h}
		}
		up := k.SingularVelocity(x.Add(d), y, f)
		dn := k.SingularVelocity(x.Sub(d), y, f)
		switch axis {
		case 0:
			div += (up.X - dn.X) / (2 * h)
		case 1:
			div += (up.Y - dn.Y) / (2 * h)
		default:
			div += (up.Z - dn.Z) / (2 * h)
		}
	}
	if math.Abs(div) > 1e-6 {
		t.Fatalf("div u = %v, want 0", div)
	}
}
