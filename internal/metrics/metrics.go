// Package metrics is the live monitoring registry of the reproduction:
// named counters, gauges, and fixed-bucket histograms that every layer
// (telemetry recorder, sched pool, balancer, virtual devices, fault
// injector, step loop) publishes into, and that the debug server exposes
// as a Prometheus text-format endpoint, a JSON snapshot, and a minimal
// live dashboard.
//
// The hot paths are lock-free: a Counter.Add is one atomic add, a
// Gauge.Set one atomic store, a Histogram.Observe a binary search over
// a fixed bound slice plus three atomic updates. Registration (the only
// mutex-guarded path) happens once per series; call sites hold the
// returned handle. A nil *Registry is valid everywhere: registration on
// it returns nil handles, and every handle method is a no-op on a nil
// receiver, so the instrumented layers carry no monitoring cost when no
// registry is attached — the same discipline as telemetry's nil
// *Recorder.
//
// Series of one name form a family sharing a type and help string;
// label variants ("phase", "device", ...) are distinct series within
// the family. Families render in registration order, series in label
// registration order, so scrapes are stable across the run.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the series type, mirroring the Prometheus metric types the
// text exposition format distinguishes.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "untyped"
}

// series is one (name, labels) line. Exactly one of the value fields is
// active, selected by the family kind; fn, when non-nil, overrides the
// stored value at read time (func-backed counters and gauges).
type series struct {
	labels string // rendered {k="v",...} suffix, "" for the bare series
	ival   atomic.Int64
	fbits  atomic.Uint64 // float64 bits (gauges)
	fn     func() float64
	h      *histData
}

type family struct {
	name, help string
	kind       Kind
	buckets    []float64 // histogram families only
	mu         sync.Mutex
	byLabel    map[string]*series
	order      []*series
}

// Registry holds the metric families. Create with NewRegistry; the zero
// value is not usable, but a nil *Registry is a valid no-op sink.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Enabled reports whether the registry is non-nil, for call sites that
// want to skip snapshot assembly entirely when monitoring is off.
func (r *Registry) Enabled() bool { return r != nil }

// formatLabels renders variadic key, value pairs as a canonical
// {k="v",...} suffix. Pairs are sorted by key so the same label set
// always maps to the same series regardless of argument order. An odd
// trailing key is ignored.
func formatLabels(kv []string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// getFamily returns (creating if needed) the family for name. A name
// re-registered with a different kind returns nil — the caller gets a
// dead handle instead of corrupting the exposition — since that is a
// programming error no production path should pay a panic for.
func (r *Registry) getFamily(name, help string, kind Kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			byLabel: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.kind != kind {
		return nil
	}
	return f
}

func (f *family) getSeries(labels string) *series {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.byLabel[labels]
	if !ok {
		s = &series{labels: labels}
		if f.kind == KindHistogram {
			s.h = newHistData(f.buckets)
		}
		f.byLabel[labels] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter is a monotonically increasing series handle. Nil-safe.
type Counter struct{ s *series }

// Counter registers (or fetches) a counter series. labels are variadic
// key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	if r == nil {
		return Counter{}
	}
	f := r.getFamily(name, help, KindCounter, nil)
	return Counter{s: f.getSeries(formatLabels(labels))}
}

// Add increments the counter by n (negative deltas are dropped —
// counters are monotonic).
func (c Counter) Add(n int64) {
	if c.s == nil || n <= 0 {
		return
	}
	c.s.ival.Add(n)
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.s == nil {
		return 0
	}
	return c.s.ival.Load()
}

// Gauge is a settable series handle. Nil-safe.
type Gauge struct{ s *series }

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	if r == nil {
		return Gauge{}
	}
	f := r.getFamily(name, help, KindGauge, nil)
	return Gauge{s: f.getSeries(formatLabels(labels))}
}

// Set stores the gauge value.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.fbits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.fbits.Load())
}

// Func registers a function-backed series of the given kind (KindCounter
// or KindGauge): the function is evaluated at scrape time, so the value
// is always live. The function must be safe to call from any goroutine —
// read only atomics or immutable state. Re-registering the same
// (name, labels) replaces the function, which keeps registration
// idempotent across solver rebuilds.
func (r *Registry) Func(name, help string, kind Kind, fn func() float64, labels ...string) {
	if r == nil || fn == nil || kind == KindHistogram {
		return
	}
	f := r.getFamily(name, help, kind, nil)
	if s := f.getSeries(formatLabels(labels)); s != nil {
		f.mu.Lock()
		s.fn = fn
		f.mu.Unlock()
	}
}

// DefBuckets are the default histogram bounds for host durations in
// seconds: exponential from 250µs to ~2000s, wide enough that a step
// wall at N=1e5 on one core and a microsecond phase both land inside
// the range.
func DefBuckets() []float64 {
	b := make([]float64, 0, 24)
	for v := 250e-6; v < 2500; v *= 2 {
		b = append(b, v)
	}
	return b
}

// histData is the lock-free histogram state: cumulative bucket counts
// are derived at read time from the per-bucket increments, so Observe
// touches exactly one bucket slot.
type histData struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sumBit atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

func newHistData(bounds []float64) *histData {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	return &histData{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histData) observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		s := math.Float64frombits(old) + v
		if h.sumBit.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// snapshot returns the per-bucket counts, total count and sum as seen
// now. Concurrent observes may tear between buckets and the total; the
// skew is at most the handful of in-flight samples.
func (h *histData) snapshot() (counts []int64, count int64, sum float64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), math.Float64frombits(h.sumBit.Load())
}

// quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket holding the target rank, the same estimate
// Prometheus's histogram_quantile computes server-side.
func (h *histData) quantile(q float64) float64 {
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		var lo float64
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i == len(h.bounds) {
			return lo // +Inf bucket: report its lower bound
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Histogram is a fixed-bucket distribution handle. Nil-safe.
type Histogram struct{ s *series }

// Histogram registers (or fetches) a histogram series. buckets are the
// ascending upper bounds (nil selects DefBuckets); the bounds of the
// first registration win for the whole family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	if r == nil {
		return Histogram{}
	}
	f := r.getFamily(name, help, KindHistogram, buckets)
	return Histogram{s: f.getSeries(formatLabels(labels))}
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	if h.s == nil || h.s.h == nil {
		return
	}
	h.s.h.observe(v)
}

// Quantile estimates the q-quantile of the recorded distribution.
func (h Histogram) Quantile(q float64) float64 {
	if h.s == nil || h.s.h == nil {
		return 0
	}
	return h.s.h.quantile(q)
}

// Count returns the number of recorded samples.
func (h Histogram) Count() int64 {
	if h.s == nil || h.s.h == nil {
		return 0
	}
	return h.s.h.count.Load()
}

// value reads a scalar series (counter or gauge), preferring the
// func backing when set.
func (s *series) value(kind Kind) float64 {
	if s.fn != nil {
		return s.fn()
	}
	if kind == KindCounter {
		return float64(s.ival.Load())
	}
	return math.Float64frombits(s.fbits.Load())
}

// families returns a stable copy of the family list for rendering.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.order...)
}

func (f *family) seriesList() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*series(nil), f.order...)
}

// Snapshot returns the registry's current state as a JSON-ready map:
// family name -> {type, help, series: [{labels, value}]} for scalars,
// with histograms carrying count, sum, and the p50/p95/p99 estimates.
// It is what the debug server's /status endpoint serves.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, f := range r.families() {
		var rows []map[string]any
		for _, s := range f.seriesList() {
			row := map[string]any{}
			if s.labels != "" {
				row["labels"] = s.labels
			}
			if f.kind == KindHistogram {
				_, count, sum := s.h.snapshot()
				row["count"] = count
				row["sum"] = sum
				row["p50"] = s.h.quantile(0.50)
				row["p95"] = s.h.quantile(0.95)
				row["p99"] = s.h.quantile(0.99)
			} else {
				row["value"] = s.value(f.kind)
			}
			rows = append(rows, row)
		}
		out[f.name] = map[string]any{
			"type":   f.kind.String(),
			"help":   f.help,
			"series": rows,
		}
	}
	return out
}

// formatValue renders a sample the way the Prometheus text format
// expects: shortest float representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
