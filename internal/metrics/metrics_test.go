package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := r.Gauge("g", "")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := r.Histogram("h", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram observed")
	}
	r.Func("f", "", KindGauge, func() float64 { return 1 })
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil snapshot non-empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("afmm_steps_total", "steps")
	c.Add(3)
	c.Inc()
	c.Add(-5) // dropped: counters are monotonic
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	// Same (name, labels) returns the same series.
	if v := r.Counter("afmm_steps_total", "steps").Value(); v != 4 {
		t.Fatalf("re-registered counter = %d, want 4", v)
	}
	g := r.Gauge("afmm_s", "leaf capacity")
	g.Set(64)
	g.Set(48)
	if g.Value() != 48 {
		t.Fatalf("gauge = %g, want 48", g.Value())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "", "b", "2", "a", "1")
	b := r.Counter("x", "", "a", "1", "b", "2")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("label order created distinct series")
	}
}

func TestKindMismatchYieldsDeadHandle(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	g := r.Gauge("m", "") // same name, different kind
	g.Set(7)              // must not panic, must not corrupt the counter
	if g.Value() != 0 {
		t.Fatal("mismatched handle is live")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", p50)
	}
	// Heavier tail moves p99 into a higher bucket than p50.
	for i := 0; i < 5; i++ {
		h.Observe(7)
	}
	if p99 := h.Quantile(0.99); p99 <= 2 {
		t.Fatalf("p99 = %g, want > 2 after tail samples", p99)
	}
	// Overflow lands in +Inf and reports the last finite bound.
	h2 := r.Histogram("lat2", "", []float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 1 {
		t.Fatalf("+Inf bucket quantile = %g, want 1", q)
	}
}

func TestPromTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("afmm_events_total", "events by kind", "kind", "fault").Add(2)
	r.Gauge("afmm_capacity", "aggregate capacity").Set(1.5e9)
	h := r.Histogram("afmm_step_wall_seconds", "step wall", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Func("afmm_live", "a live value", KindGauge, func() float64 { return 42 })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE afmm_events_total counter",
		`afmm_events_total{kind="fault"} 2`,
		"# TYPE afmm_capacity gauge",
		"afmm_capacity 1500000000",
		"# TYPE afmm_step_wall_seconds histogram",
		`afmm_step_wall_seconds_bucket{le="0.1"} 1`,
		`afmm_step_wall_seconds_bucket{le="1"} 2`,
		`afmm_step_wall_seconds_bucket{le="+Inf"} 3`,
		"afmm_step_wall_seconds_sum 5.55",
		"afmm_step_wall_seconds_count 3",
		"afmm_live 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Bucket lines with labels keep the original labels plus le.
	r.Histogram("p", "", []float64{1}, "phase", "far.up").Observe(0.5)
	b.Reset()
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `p_bucket{phase="far.up",le="1"} 1`) {
		t.Fatalf("labeled bucket line wrong:\n%s", b.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help c").Inc()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(0.5)
	snap := r.Snapshot()
	cFam, ok := snap["c"].(map[string]any)
	if !ok || cFam["type"] != "counter" {
		t.Fatalf("counter family: %v", snap["c"])
	}
	hFam := snap["h"].(map[string]any)
	rows := hFam["series"].([]map[string]any)
	if rows[0]["count"].(int64) != 1 {
		t.Fatalf("histogram snapshot: %v", rows[0])
	}
	if p50 := rows[0]["p50"].(float64); p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%10) * 1e-3)
				// Concurrent registration of the same family must be safe.
				r.Counter("c2", "", "w", "0").Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
	if v := r.Counter("c2", "", "w", "0").Value(); v != 8000 {
		t.Fatalf("c2 = %d, want 8000", v)
	}
	sum := 0.0
	_, _, sum = hSum(h)
	if math.IsNaN(sum) {
		t.Fatal("sum NaN")
	}
}

func hSum(h Histogram) ([]int64, int64, float64) { return h.s.h.snapshot() }

func TestDefBucketsCoverStepScales(t *testing.T) {
	b := DefBuckets()
	if b[0] > 1e-3 {
		t.Fatalf("first bucket %g too coarse for microsecond phases", b[0])
	}
	if last := b[len(b)-1]; last < 60 {
		t.Fatalf("last bucket %g too small for long steps", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("buckets not ascending")
		}
	}
}
