package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, then
// one line per series, with histograms expanded into cumulative
// _bucket{le=...} lines plus _sum and _count. A nil registry writes
// nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.seriesList() {
			if f.kind == KindHistogram {
				writePromHist(bw, f, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatValue(s.value(f.kind)))
		}
	}
	return bw.Flush()
}

// withLabel splices an extra label into a rendered label suffix.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func writePromHist(w io.Writer, f *family, s *series) {
	counts, count, sum := s.h.snapshot()
	var cum int64
	for i, b := range s.h.bounds {
		cum += counts[i]
		le := fmt.Sprintf(`le="%s"`, formatValue(b))
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(s.labels, le), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(s.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
}
