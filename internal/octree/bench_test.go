package octree

import (
	"testing"

	"afmm/internal/distrib"
)

func BenchmarkBuildPlummer(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		b.Run(sizeName(n), func(b *testing.B) {
			sys := distrib.Plummer(n, 1, 1, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Build(sys, Config{S: 64})
			}
		})
	}
}

func BenchmarkRebuild(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	t := Build(sys, Config{S: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Rebuild(64)
	}
}

func BenchmarkRefill(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	t := Build(sys, Config{S: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Refill()
	}
}

func BenchmarkBuildLists(b *testing.B) {
	for _, s := range []int{16, 64, 256} {
		b.Run(sizeName(s), func(b *testing.B) {
			sys := distrib.Plummer(20000, 1, 1, 42)
			t := Build(sys, Config{S: s})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Forced: with the list cache, plain BuildLists would skip
				// every iteration after the first.
				t.RebuildLists()
			}
		})
	}
}

// BenchmarkListRepair measures the incremental path BenchmarkBuildLists is
// compared against: each iteration makes one local edit (collapse, then
// push the same node back down) and repairs the lists twice, so the
// per-iteration cost is two local repairs versus two full traversals.
func BenchmarkListRepair(b *testing.B) {
	for _, s := range []int{16, 64, 256} {
		b.Run(sizeName(s), func(b *testing.B) {
			sys := distrib.Plummer(20000, 1, 1, 42)
			t := Build(sys, Config{S: s})
			t.BuildLists()
			var target int32 = -1
			t.WalkVisible(func(ni int32) {
				n := &t.Nodes[ni]
				if target >= 0 || n.IsVisibleLeaf() {
					return
				}
				for _, ci := range n.Children {
					if ci != NilNode && !t.Nodes[ci].IsVisibleLeaf() {
						return
					}
				}
				target = ni
			})
			if target < 0 {
				b.Skip("no collapsible node at this S")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Collapse(target)
				t.BuildLists()
				t.PushDown(target)
				t.BuildLists()
			}
			b.StopTimer()
			if st := t.ListBuildStats(); st.FullBuilds != 1 {
				b.Fatalf("edits escalated to full builds: %+v", st)
			}
		})
	}
}

func BenchmarkEnforceS(b *testing.B) {
	sys := distrib.Plummer(20000, 1, 1, 42)
	t := Build(sys, Config{S: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.EnforceS()
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
