package octree

import (
	"math"

	"afmm/internal/geom"
)

// M2LClassSchedule annotates every V-list (M2L) pair with its translation
// class: cell centers on the cubic octree differ by (near-)integer
// multiples of the finer cell's half width, and translated subdivision
// chains reproduce the same float64 rounding, so the exact center
// difference of many pairs coincides bit-for-bit. The expensive
// per-direction setup (Wigner stack, radial powers, phases) can then be
// precomputed once per class and shared read-only across all workers.
//
// Row ni of the CSR mirrors Tree.Nodes[ni].V element-for-element: the
// class of pair (ni, V[k]) is Class[RowPtr[ni]+k], and Dirs[class] holds
// the exact translation vector src.Center - target.Center of every pair in
// the class (pairs are only merged when their float64 direction vectors
// are bit-identical, so a class-table translation is bit-for-bit equal to
// the per-pair path). The schedule is cached on the tree and keyed on
// ListEpoch, like the near-field schedule.
type M2LClassSchedule struct {
	RowPtr []int32
	Class  []int32
	// Dirs holds the exact representative direction of each class.
	Dirs []geom.Vec3
	// PairsPerClass counts the V-list pairs in each class (parallel to
	// Dirs) — the popularity weight the table build uses to elect which
	// rotation setups are worth precomputing.
	PairsPerClass []int64

	// Pairs counts V-list pairs; KeyHits is how many were classified by
	// the O(1) integer-offset key, KeyMisses how many fell back to the
	// exact-vector map (rounding collisions or out-of-range offsets).
	Pairs     int64
	KeyHits   int64
	KeyMisses int64
}

// Row returns the per-pair classes of node ni's V list (parallel to it).
func (s *M2LClassSchedule) Row(ni int32) []int32 {
	return s.Class[s.RowPtr[ni]:s.RowPtr[ni+1]]
}

// Classes returns the number of distinct translation classes.
func (s *M2LClassSchedule) Classes() int { return len(s.Dirs) }

// M2LClasses returns the cached translation-class schedule for the current
// lists. BuildLists must have run. The returned schedule is owned by the
// tree and valid until the next list topology change.
func (t *Tree) M2LClasses() *M2LClassSchedule {
	if t.farEpoch == t.listEpoch && t.farEpoch != 0 {
		return &t.farSched
	}
	t.buildM2LClasses()
	return &t.farSched
}

// classKeyRange bounds the per-axis quantized offset representable in the
// packed integer key (10 bits signed per axis).
const classKeyRange = 511

// buildM2LClasses walks every node's V list and assigns each pair a class.
// Fast path: quantize d by the finer cell's half width and pack both
// levels plus the three integer offsets into one int64 key; the candidate
// class is accepted only if its stored direction equals d exactly, so
// float rounding can never merge two distinct directions. Any pair the
// integer key cannot serve exactly falls back to a map keyed on the exact
// vector.
func (t *Tree) buildM2LClasses() {
	s := &t.farSched
	s.RowPtr = append(s.RowPtr[:0], 0)
	s.Class = s.Class[:0]
	s.Dirs = s.Dirs[:0]
	s.PairsPerClass = s.PairsPerClass[:0]
	s.Pairs, s.KeyHits, s.KeyMisses = 0, 0, 0
	byKey := make(map[int64]int32, 512)
	// byVec is authoritative for class creation (the same exact direction
	// can recur at several level pairs — one class serves them all); it is
	// only consulted when a new key appears or the key fast path fails, so
	// steady-state classification stays one int64 lookup per pair.
	byVec := make(map[geom.Vec3]int32, 512)
	classOf := func(d geom.Vec3) int32 {
		if c, ok := byVec[d]; ok {
			return c
		}
		c := int32(len(s.Dirs))
		s.Dirs = append(s.Dirs, d)
		s.PairsPerClass = append(s.PairsPerClass, 0)
		byVec[d] = c
		return c
	}
	for ni := range t.Nodes {
		n := &t.Nodes[ni]
		for _, vi := range n.V {
			sv := &t.Nodes[vi]
			d := sv.Box.Center.Sub(n.Box.Center)
			q := n.Box.Half
			if sv.Box.Half < q {
				q = sv.Box.Half
			}
			ci := int32(-1)
			ox := math.Round(d.X / q)
			oy := math.Round(d.Y / q)
			oz := math.Round(d.Z / q)
			if ox >= -classKeyRange && ox <= classKeyRange &&
				oy >= -classKeyRange && oy <= classKeyRange &&
				oz >= -classKeyRange && oz <= classKeyRange {
				key := int64(n.Level)<<38 | int64(sv.Level)<<30 |
					(int64(ox)+512)<<20 | (int64(oy)+512)<<10 | (int64(oz) + 512)
				if c, ok := byKey[key]; ok {
					if s.Dirs[c] == d {
						ci = c
						s.KeyHits++
					}
				} else {
					ci = classOf(d)
					byKey[key] = ci
					s.KeyHits++
				}
			}
			if ci < 0 {
				// Rounding collision or out-of-range offset: exact-vector
				// fallback, never merging distinct directions.
				s.KeyMisses++
				ci = classOf(d)
			}
			s.Class = append(s.Class, ci)
			s.PairsPerClass[ci]++
			s.Pairs++
		}
		s.RowPtr = append(s.RowPtr, int32(len(s.Class)))
	}
	t.farEpoch = t.listEpoch
}
