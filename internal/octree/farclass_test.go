package octree

import (
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
)

// TestM2LClassesExactDirections verifies the defining invariant of the
// class schedule: every V-list pair's class direction equals the pair's
// exact float64 translation vector, rows mirror V element-for-element,
// and no two classes share a direction (so the table is minimal).
func TestM2LClassesExactDirections(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		sys := distrib.Plummer(2500, 1, 1, seed)
		tr := Build(sys, Config{S: 24})
		tr.BuildLists()
		cls := tr.M2LClasses()

		var pairs int64
		for ni := range tr.Nodes {
			n := &tr.Nodes[ni]
			row := cls.Row(int32(ni))
			if len(row) != len(n.V) {
				t.Fatalf("node %d: row has %d classes for %d V entries", ni, len(row), len(n.V))
			}
			for k, vi := range n.V {
				d := tr.Nodes[vi].Box.Center.Sub(n.Box.Center)
				c := row[k]
				if c < 0 || int(c) >= cls.Classes() {
					t.Fatalf("node %d pair %d: class %d out of range", ni, k, c)
				}
				if cls.Dirs[c] != d {
					t.Fatalf("node %d pair %d: class dir %v != exact dir %v", ni, k, cls.Dirs[c], d)
				}
				pairs++
			}
		}
		if pairs != cls.Pairs {
			t.Fatalf("schedule counts %d pairs, walk found %d", cls.Pairs, pairs)
		}
		if cls.KeyHits+cls.KeyMisses != cls.Pairs {
			t.Fatalf("hits %d + misses %d != pairs %d", cls.KeyHits, cls.KeyMisses, cls.Pairs)
		}
		seen := map[geom.Vec3]bool{}
		for _, d := range cls.Dirs {
			if seen[d] {
				t.Fatalf("duplicate class direction %v", d)
			}
			seen[d] = true
		}
		// Classes must be far fewer than pairs (the whole point of the
		// schedule): exact direction vectors repeat across the tree, so
		// each class is shared by several pairs on average.
		if cls.Pairs > 1000 && int64(cls.Classes()) > cls.Pairs/2 {
			t.Fatalf("classes (%d) do not compress pairs (%d)", cls.Classes(), cls.Pairs)
		}
		if int64(cls.Classes()) != int64(len(cls.PairsPerClass)) {
			t.Fatalf("PairsPerClass length %d != classes %d", len(cls.PairsPerClass), cls.Classes())
		}
		var sum int64
		for _, c := range cls.PairsPerClass {
			sum += c
		}
		if sum != cls.Pairs {
			t.Fatalf("PairsPerClass sums to %d, want %d", sum, cls.Pairs)
		}
	}
}

// TestM2LClassesEpochCache checks the schedule is reused while the lists
// stand and rebuilt when the topology changes.
func TestM2LClassesEpochCache(t *testing.T) {
	sys := distrib.Plummer(1200, 1, 1, 11)
	tr := Build(sys, Config{S: 24})
	tr.BuildLists()
	a := tr.M2LClasses()
	b := tr.M2LClasses()
	if a != b {
		t.Fatal("schedule rebuilt without a topology change")
	}
	ep := tr.ListEpoch()
	tr.Rebuild(tr.Cfg.S)
	tr.BuildLists()
	if tr.ListEpoch() == ep {
		t.Fatal("rebuild did not bump the list epoch")
	}
	c := tr.M2LClasses()
	for ni := range tr.Nodes {
		n := &tr.Nodes[ni]
		row := c.Row(int32(ni))
		for k, vi := range n.V {
			d := tr.Nodes[vi].Box.Center.Sub(n.Box.Center)
			if c.Dirs[row[k]] != d {
				t.Fatalf("stale class after rebuild: node %d pair %d", ni, k)
			}
		}
	}
}
