package octree

import (
	"encoding/binary"
	"testing"

	"afmm/internal/geom"
	"afmm/internal/particle"
)

// FuzzBuildRefillEnforce feeds arbitrary byte strings as body positions
// and balancer-style mutations, checking that the tree never violates its
// structural invariants. Run with `go test -fuzz FuzzBuildRefillEnforce`;
// the seed corpus below executes as a normal test.
func FuzzBuildRefillEnforce(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(4))
	f.Add(make([]byte, 97), uint8(1))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, sRaw uint8) {
		if len(data) < 6 {
			return
		}
		// Decode positions: 6 bytes -> one body (3 x uint16 scaled).
		n := len(data) / 6
		if n > 300 {
			n = 300
		}
		sys := particle.New(n)
		for i := 0; i < n; i++ {
			b := data[i*6:]
			u := func(k int) float64 {
				return (float64(binary.LittleEndian.Uint16(b[k*2:]))/65535 - 0.5) * 20
			}
			sys.Pos[i] = geom.Vec3{X: u(0), Y: u(1), Z: u(2)}
		}
		s := int(sRaw)%40 + 1
		tr := Build(sys, Config{S: s})
		if err := tr.Validate(); err != nil {
			t.Fatalf("build: %v", err)
		}
		checkLevels := func(stage string) {
			seen := map[int32]bool{}
			for lv, nodes := range tr.LevelOrder() {
				for _, ni := range nodes {
					if int(tr.Nodes[ni].Level) != lv || seen[ni] {
						t.Fatalf("%s: LevelOrder corrupt at node %d (level %d, dup %v)",
							stage, ni, lv, seen[ni])
					}
					seen[ni] = true
				}
			}
			visible := 0
			tr.WalkVisible(func(ni int32) {
				visible++
				if !seen[ni] {
					t.Fatalf("%s: visible node %d missing from LevelOrder", stage, ni)
				}
			})
			if visible != len(seen) {
				t.Fatalf("%s: LevelOrder size %d != visible %d", stage, len(seen), visible)
			}
		}
		checkLevels("build")
		tr.BuildLists()
		ops := tr.CountOps()
		if ops.P2M != int64(n) || ops.L2P != int64(n) {
			t.Fatalf("endpoint counts wrong: %+v (n=%d)", ops, n)
		}
		// Every body-body pair appears at least once as near-field or
		// is separated; the exact-once property is checked exhaustively
		// for small systems.
		if n <= 40 {
			if err := tr.ValidateLists(); err != nil {
				t.Fatalf("lists: %v", err)
			}
		}
		// Perturb positions deterministically from the data and refill.
		for i := 0; i < n; i++ {
			d := float64(data[(i*7)%len(data)])/255 - 0.5
			sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{X: d, Y: -d / 2, Z: d / 3})
		}
		tr.Refill()
		if err := tr.Validate(); err != nil {
			t.Fatalf("refill: %v", err)
		}
		checkLevels("refill")
		tr.EnforceS()
		if err := tr.Validate(); err != nil {
			t.Fatalf("enforce: %v", err)
		}
		checkLevels("enforce")
		// Interaction counts stay finite and nonnegative.
		tr.BuildLists()
		ops = tr.CountOps()
		if ops.P2P < int64(n) || ops.P2P > int64(n)*int64(n) {
			t.Fatalf("P2P count %d outside [n, n^2]", ops.P2P)
		}
	})
}
