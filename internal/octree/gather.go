package octree

import (
	"slices"
	"sort"

	"afmm/internal/geom"
)

// SourceGather packs the bodies of the distinct source leaves referenced
// by a range of near-field schedule rows into contiguous structure-of-
// arrays slices. A chunk of targets typically shares most of its sources
// (neighboring leaves), so each source leaf's bodies are copied once per
// chunk instead of being re-indirected through Tree.Nodes per target.
// Buffers are retained across Pack calls for reuse.
type SourceGather struct {
	ids []int32 // distinct source leaves of the chunk, ascending
	off []int32 // len(ids)+1 packed offsets; ids[k]'s bodies at [off[k],off[k+1])

	Pos  []geom.Vec3
	Mass []float64 // packed only when Pack's needMass is set
	Aux  []geom.Vec3
}

// Pack gathers the sources of schedule rows [lo, hi). Positions are
// always packed; masses and aux vectors (Stokeslet forces) on request.
func (g *SourceGather) Pack(t *Tree, sch *NearSchedule, lo, hi int, needMass, needAux bool) {
	g.ids = g.ids[:0]
	g.ids = append(g.ids, sch.Srcs[sch.RowPtr[lo]:sch.RowPtr[hi]]...)
	slices.Sort(g.ids)
	w := 0
	for _, id := range g.ids {
		if w == 0 || id != g.ids[w-1] {
			g.ids[w] = id
			w++
		}
	}
	g.ids = g.ids[:w]

	g.off = g.off[:0]
	g.Pos = g.Pos[:0]
	g.Mass = g.Mass[:0]
	g.Aux = g.Aux[:0]
	sys := t.Sys
	for _, id := range g.ids {
		n := &t.Nodes[id]
		g.off = append(g.off, int32(len(g.Pos)))
		g.Pos = append(g.Pos, sys.Pos[n.Start:n.End]...)
		if needMass {
			g.Mass = append(g.Mass, sys.Mass[n.Start:n.End]...)
		}
		if needAux {
			g.Aux = append(g.Aux, sys.Aux[n.Start:n.End]...)
		}
	}
	g.off = append(g.off, int32(len(g.Pos)))
}

// Span returns the packed body range of source leaf s, which must have
// been covered by the last Pack.
func (g *SourceGather) Span(s int32) (lo, hi int) {
	k := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= s })
	return int(g.off[k]), int(g.off[k+1])
}
