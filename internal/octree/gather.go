package octree

import (
	"slices"
	"sort"

	"afmm/internal/geom"
)

// SourceGather packs the bodies of the distinct source leaves referenced
// by a range of near-field schedule rows into contiguous structure-of-
// arrays slices. A chunk of targets typically shares most of its sources
// (neighboring leaves), so each source leaf's bodies are copied once per
// chunk instead of being re-indirected through Tree.Nodes per target.
// Buffers are retained across Pack calls for reuse.
type SourceGather struct {
	ids []int32 // distinct source leaves of the chunk, ascending
	off []int32 // len(ids)+1 packed offsets; ids[k]'s bodies at [off[k],off[k+1])

	Pos  []geom.Vec3
	Mass []float64 // packed only when Pack's needMass is set
	Aux  []geom.Vec3

	// Float32 SoA views, packed by Pack32 for the NearFloat32 kernels:
	// positions X32/Y32/Z32, masses M32, aux vectors AX32/AY32/AZ32.
	X32, Y32, Z32    []float32
	M32              []float32
	AX32, AY32, AZ32 []float32
}

// dedupe collects the distinct source leaves of schedule rows [lo, hi)
// into g.ids (ascending).
func (g *SourceGather) dedupe(sch *NearSchedule, lo, hi int) {
	g.ids = g.ids[:0]
	g.ids = append(g.ids, sch.Srcs[sch.RowPtr[lo]:sch.RowPtr[hi]]...)
	slices.Sort(g.ids)
	w := 0
	for _, id := range g.ids {
		if w == 0 || id != g.ids[w-1] {
			g.ids[w] = id
			w++
		}
	}
	g.ids = g.ids[:w]
}

// Pack gathers the sources of schedule rows [lo, hi). Positions are
// always packed; masses and aux vectors (Stokeslet forces) on request.
func (g *SourceGather) Pack(t *Tree, sch *NearSchedule, lo, hi int, needMass, needAux bool) {
	g.dedupe(sch, lo, hi)

	g.off = g.off[:0]
	g.Pos = g.Pos[:0]
	g.Mass = g.Mass[:0]
	g.Aux = g.Aux[:0]
	sys := t.Sys
	for _, id := range g.ids {
		n := &t.Nodes[id]
		g.off = append(g.off, int32(len(g.Pos)))
		g.Pos = append(g.Pos, sys.Pos[n.Start:n.End]...)
		if needMass {
			g.Mass = append(g.Mass, sys.Mass[n.Start:n.End]...)
		}
		if needAux {
			g.Aux = append(g.Aux, sys.Aux[n.Start:n.End]...)
		}
	}
	g.off = append(g.off, int32(len(g.Pos)))
}

// Pack32 gathers the same rows as Pack but into float32 SoA slices for
// the NearFloat32 kernels: one widening conversion per source body per
// chunk, after which the inner P2P loop streams pure float32.
func (g *SourceGather) Pack32(t *Tree, sch *NearSchedule, lo, hi int, needMass, needAux bool) {
	g.dedupe(sch, lo, hi)

	g.off = g.off[:0]
	g.X32, g.Y32, g.Z32 = g.X32[:0], g.Y32[:0], g.Z32[:0]
	g.M32 = g.M32[:0]
	g.AX32, g.AY32, g.AZ32 = g.AX32[:0], g.AY32[:0], g.AZ32[:0]
	sys := t.Sys
	for _, id := range g.ids {
		n := &t.Nodes[id]
		g.off = append(g.off, int32(len(g.X32)))
		for _, p := range sys.Pos[n.Start:n.End] {
			g.X32 = append(g.X32, float32(p.X))
			g.Y32 = append(g.Y32, float32(p.Y))
			g.Z32 = append(g.Z32, float32(p.Z))
		}
		if needMass {
			for _, m := range sys.Mass[n.Start:n.End] {
				g.M32 = append(g.M32, float32(m))
			}
		}
		if needAux {
			for _, a := range sys.Aux[n.Start:n.End] {
				g.AX32 = append(g.AX32, float32(a.X))
				g.AY32 = append(g.AY32, float32(a.Y))
				g.AZ32 = append(g.AZ32, float32(a.Z))
			}
		}
	}
	g.off = append(g.off, int32(len(g.X32)))
}

// Span returns the packed body range of source leaf s, which must have
// been covered by the last Pack (or Pack32).
func (g *SourceGather) Span(s int32) (lo, hi int) {
	k := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= s })
	return int(g.off[k]), int(g.off[k+1])
}
