package octree

import (
	"fmt"
	"math"
)

// sqrt3 is the half-diagonal factor of a cube: the bounding-sphere radius
// of a cell with half-width h is sqrt(3)*h.
var sqrt3 = math.Sqrt(3)

// BuildLists computes the interaction lists of the current visible tree by
// dual traversal: for every ordered pair of visible nodes reached from
// (root, root), a well-separated pair contributes the source to the
// target's V list (consumed by M2L in the down sweep); a pair of adjacent
// visible leaves contributes to the target's U list (consumed by P2P on
// the device). The larger node of a non-separated pair is expanded, so
// M2L pairs may join nodes of different levels — the adaptive analogue of
// the classical V list.
//
// Separation uses the multipole acceptance criterion
//
//	MAC * dist(centers) > sqrt(3) * (halfA + halfB)
//
// which bounds the expansion convergence ratio by MAC/(2-MAC) in the worst
// corner case, uniformly over unequal-size pairs (unlike the classical
// same-level adjacency rule, which is only safe for equal cells).
func (t *Tree) BuildLists() {
	// Reset lists, keeping capacity.
	for i := range t.Nodes {
		t.Nodes[i].U = t.Nodes[i].U[:0]
		t.Nodes[i].V = t.Nodes[i].V[:0]
	}
	root := &t.Nodes[t.Root]
	if root.Count() == 0 {
		return
	}
	// The traversal only ever appends to the *target* node's lists, so
	// splitting on the target side yields disjoint writes: the top-level
	// target subtrees can run as parallel tasks (the paper's "parallel in
	// space" construction applied to list building).
	if pool := t.Cfg.Pool; pool != nil && !root.IsVisibleLeaf() &&
		root.Count() >= t.Cfg.ParallelCutoff {
		g := pool.NewGroup()
		for _, ci := range root.Children {
			if ci != NilNode && t.Nodes[ci].Count() > 0 {
				ci := ci
				g.Spawn(func() { t.dual(ci, t.Root) })
			}
		}
		g.Wait()
		return
	}
	t.dual(t.Root, t.Root)
}

// accepted reports whether the pair satisfies the MAC.
func (t *Tree) accepted(na, nb *Node) bool {
	d := na.Box.Center.Sub(nb.Box.Center).Norm()
	return t.Cfg.MAC*d > sqrt3*(na.Box.Half+nb.Box.Half)
}

// dual records interactions with a as target and b as source.
func (t *Tree) dual(a, b int32) {
	na := &t.Nodes[a]
	nb := &t.Nodes[b]
	if na.Count() == 0 || nb.Count() == 0 {
		return
	}
	if a != b && t.accepted(na, nb) {
		na.V = append(na.V, b)
		return
	}
	aLeaf := na.IsVisibleLeaf()
	bLeaf := nb.IsVisibleLeaf()
	if aLeaf && bLeaf {
		na.U = append(na.U, b)
		return
	}
	// Expand the larger node; prefer expanding the target on ties so
	// both directed orders are generated symmetrically.
	if !aLeaf && (bLeaf || na.Box.Half >= nb.Box.Half) {
		for _, ci := range na.Children {
			if ci != NilNode {
				t.dual(ci, b)
			}
		}
		return
	}
	for _, ci := range nb.Children {
		if ci != NilNode {
			t.dual(a, ci)
		}
	}
}

// OpCounts tallies how many times each FMM operation will be applied on
// the current visible tree and lists, in the units of the paper's cost
// model: P2M and L2P per body, M2M and L2L per parent-child translation,
// M2L per translation pair, P2P per body-body interaction.
type OpCounts struct {
	P2M  int64
	M2M  int64
	M2L  int64
	L2L  int64
	L2P  int64
	P2P  int64 // body-body interactions
	P2PN int64 // P2P node-pair count (kernel bookkeeping)
}

// CountOps requires BuildLists to have been called.
func (t *Tree) CountOps() OpCounts {
	var c OpCounts
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		c.M2L += int64(len(n.V))
		if n.IsVisibleLeaf() {
			c.P2M += int64(n.Count())
			c.L2P += int64(n.Count())
			for _, si := range n.U {
				c.P2P += int64(n.Count()) * int64(t.Nodes[si].Count())
				c.P2PN++
			}
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode && t.Nodes[ci].Count() > 0 {
				c.M2M++
				c.L2L++
			}
		}
	})
	return c
}

// LeafInteractions returns, for each visible leaf (in DFS order), the
// number of direct interactions it participates in as a target:
// Interactions(t) = n_t * sum_{s in U(t)} n_s — the quantity the paper
// uses to divide near-field work across GPUs.
func (t *Tree) LeafInteractions() (leaves []int32, inter []int64) {
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		if !n.IsVisibleLeaf() {
			return
		}
		var srcs int64
		for _, si := range n.U {
			srcs += int64(t.Nodes[si].Count())
		}
		leaves = append(leaves, ni)
		inter = append(inter, int64(n.Count())*srcs)
	})
	return leaves, inter
}

// ValidateLists checks that for every pair of bodies (i, j) the interaction
// is accounted exactly once: either j's leaf is in i's U list, or some
// ancestor-pair is connected through a V-list edge. It is O(N^2 log N) and
// intended for tests on small systems.
func (t *Tree) ValidateLists() error {
	n := t.Sys.Len()
	if n == 0 {
		return nil
	}
	// Map each body to its visible leaf.
	leafOf := make([]int32, n)
	t.WalkVisible(func(ni int32) {
		nd := &t.Nodes[ni]
		if nd.IsVisibleLeaf() {
			for i := nd.Start; i < nd.End; i++ {
				leafOf[i] = ni
			}
		}
	})
	// For each node, the chain of visible ancestors (inclusive).
	ancestors := func(ni int32) []int32 {
		var chain []int32
		for ni != NilNode {
			chain = append(chain, ni)
			ni = t.Nodes[ni].Parent
		}
		return chain
	}
	inU := func(target, src int32) bool {
		for _, s := range t.Nodes[target].U {
			if s == src {
				return true
			}
		}
		return false
	}
	inV := func(target, src int32) bool {
		for _, s := range t.Nodes[target].V {
			if s == src {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ti, sj := leafOf[i], leafOf[j]
			count := 0
			if inU(ti, sj) {
				count++
			}
			for _, ta := range ancestors(ti) {
				for _, sa := range ancestors(sj) {
					if inV(ta, sa) {
						count++
					}
				}
			}
			if count != 1 {
				return fmt.Errorf("octree: body pair (%d,%d) covered %d times (leaves %d,%d)",
					i, j, count, ti, sj)
			}
		}
	}
	return nil
}
