package octree

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
)

// sqrt3 is the half-diagonal factor of a cube: the bounding-sphere radius
// of a cell with half-width h is sqrt(3)*h.
var sqrt3 = math.Sqrt(3)

// ListStats counts interaction-list construction activity over the tree's
// lifetime: how often BuildLists ran the full dual traversal, performed a
// local repair, or skipped work entirely because the cached lists were
// already current, plus the cumulative dual-traversal pair visits those
// builds executed.
//
// Contract: the counters are cumulative and monotone for a given Epoch.
// They survive Rebuild — the balancer's Search and Incremental states
// rebuild the tree mid-trajectory, and zeroing there would erase history
// a per-step consumer is about to difference — and are only zeroed by an
// explicit ResetListStats, which bumps Epoch so stale snapshots cannot
// produce negative deltas. Per-step consumers (the telemetry recorder)
// snapshot before and after and call Sub.
type ListStats struct {
	// Epoch identifies the reset generation. Snapshots from different
	// epochs are not differencable; Sub detects this and returns the newer
	// cumulative values instead of a bogus difference.
	Epoch      uint64
	FullBuilds int
	Repairs    int
	Skips      int
	// Pairs is the cumulative dual-traversal pair-visit count across full
	// builds and repairs (skips add nothing) — the work the balancer's
	// LBCostModel charges for.
	Pairs int64
}

// Sub returns the activity between the prev snapshot and s (s.Sub(prev)).
// If the counters were reset in between (epoch mismatch), the counts
// since the reset — s's own cumulative values — are returned, which is
// the correct per-interval reading for a consumer that snapshotted just
// before a reset.
func (s ListStats) Sub(prev ListStats) ListStats {
	if s.Epoch != prev.Epoch {
		return s
	}
	return ListStats{
		Epoch:      s.Epoch,
		FullBuilds: s.FullBuilds - prev.FullBuilds,
		Repairs:    s.Repairs - prev.Repairs,
		Skips:      s.Skips - prev.Skips,
		Pairs:      s.Pairs - prev.Pairs,
	}
}

// ListWork describes the list work performed by the most recent BuildLists
// call: whether it was a full rebuild and how many dual-traversal pair
// visits it executed (zero for a skip). The balancer charges list cost
// proportional to Pairs, so Observation-state steps — where lists are
// reused unchanged — are charged nothing.
type ListWork struct {
	Full  bool
	Pairs int64
}

// ListBuildStats returns the cumulative list-construction counters (see
// the ListStats contract: cumulative across Rebuild, zeroed only by
// ResetListStats).
func (t *Tree) ListBuildStats() ListStats { return t.listStats }

// ResetListStats zeroes the list-construction counters and bumps the
// stats epoch, invalidating outstanding snapshots (their Sub against
// post-reset readings returns the post-reset cumulative values).
func (t *Tree) ResetListStats() {
	t.listStats = ListStats{Epoch: t.listStats.Epoch + 1}
}

// LastListWork returns the work done by the most recent BuildLists call.
func (t *Tree) LastListWork() ListWork { return t.lastWork }

// ListEpoch identifies the current list topology; it increments on every
// full build or repair. Consumers caching derived structures (such as the
// near-field schedule) key on it.
func (t *Tree) ListEpoch() uint64 { return t.listEpoch }

// maxDirtyRoots floors the dirty-root cap: once an edit batch accumulates
// more dirty subtree roots than max(maxDirtyRoots, nodes/8), the next
// BuildLists falls back to a full rebuild. The cap scales with the arena
// because an Enforce_S sweep over a large tree legitimately edits
// hundreds of leaves whose subtrees are each a handful of nodes — cheap
// to repair; the real cost guard is the stamped-subtree size check in
// repairLists.
const maxDirtyRoots = 128

func (t *Tree) dirtyRootCap() int {
	if c := len(t.Nodes) / 8; c > maxDirtyRoots {
		return c
	}
	return maxDirtyRoots
}

// markListsDirty records that the subtree under ni was structurally edited
// (Collapse/PushDown) or flipped occupancy, scheduling a local list repair
// for the next BuildLists. No-op when lists were never built, are already
// fully dirty, or caching is disabled.
func (t *Tree) markListsDirty(ni int32) {
	if !t.listsBuilt || t.listsFullDirty || t.Cfg.NoListCache {
		return
	}
	t.dirtyRoots = append(t.dirtyRoots, ni)
	if len(t.dirtyRoots) > t.dirtyRootCap() {
		t.listsFullDirty = true
		t.dirtyRoots = t.dirtyRoots[:0]
	}
}

// noteRefillOccupancy runs after Refill rebinned the bodies: the dual
// traversal prunes empty subtrees, so any node whose Count()==0 status
// flipped since the lists were built changes the traversal topology. Each
// maximal flipped node is marked as a dirty root (its whole subtree
// entered or left the traversal); unflipped interior nodes are descended
// since a deeper flip may hide beneath them.
func (t *Tree) noteRefillOccupancy() {
	if !t.listsBuilt || t.listsFullDirty || t.Cfg.NoListCache {
		return
	}
	var walk func(ni int32)
	walk = func(ni int32) {
		zero := t.Nodes[ni].Count() == 0
		if int(ni) >= len(t.listZero) || zero != t.listZero[ni] {
			t.markListsDirty(ni)
			return
		}
		if zero {
			return // empty before and after: nothing below can have flipped
		}
		n := &t.Nodes[ni]
		if n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode {
				walk(ci)
			}
		}
	}
	walk(t.Root)
}

// BuildLists ensures the interaction lists of the current visible tree are
// up to date. With the persistent-list cache (the default) this is
// incremental: a step with no structural edits skips all dual-traversal
// work, a step after local Collapse/PushDown edits repairs only the lists
// that reference the edited subtrees, and only a Rebuild (or an oversized
// edit batch) triggers the full traversal. RebuildLists forces the full
// traversal unconditionally; see that function for the traversal itself.
func (t *Tree) BuildLists() {
	if t.Cfg.NoListCache || !t.listsBuilt || t.listsFullDirty {
		t.RebuildLists()
		return
	}
	if len(t.dirtyRoots) == 0 {
		t.listStats.Skips++
		t.lastWork = ListWork{}
		return
	}
	t.repairLists()
}

// RebuildLists computes the interaction lists from scratch by dual
// traversal: for every ordered pair of visible nodes reached from
// (root, root), a well-separated pair contributes the source to the
// target's V list (consumed by M2L in the down sweep); a pair of adjacent
// visible leaves contributes to the target's U list (consumed by P2P on
// the device). The larger node of a non-separated pair is expanded, so
// M2L pairs may join nodes of different levels — the adaptive analogue of
// the classical V list.
//
// Separation uses the multipole acceptance criterion
//
//	MAC * dist(centers) > sqrt(3) * (halfA + halfB)
//
// which bounds the expansion convergence ratio by MAC/(2-MAC) in the worst
// corner case, uniformly over unequal-size pairs (unlike the classical
// same-level adjacency rule, which is only safe for equal cells).
//
// Lists are stored in ascending node order, so incremental repair
// reproduces a from-scratch build exactly, element for element.
func (t *Tree) RebuildLists() {
	t.listStats.FullBuilds++
	t.listEpoch++
	t.listsFullDirty = false
	t.dirtyRoots = t.dirtyRoots[:0]
	// Reset lists, keeping capacity.
	for i := range t.Nodes {
		t.Nodes[i].U = t.Nodes[i].U[:0]
		t.Nodes[i].V = t.Nodes[i].V[:0]
	}
	var visits int64
	root := &t.Nodes[t.Root]
	if root.Count() > 0 {
		// The traversal only ever appends to the *target* node's lists, so
		// splitting on the target side yields disjoint writes: the top-level
		// target subtrees can run as parallel tasks (the paper's "parallel in
		// space" construction applied to list building).
		if pool := t.Cfg.Pool; pool != nil && !root.IsVisibleLeaf() &&
			root.Count() >= t.Cfg.ParallelCutoff {
			g := pool.NewGroup()
			for _, ci := range root.Children {
				if ci != NilNode && t.Nodes[ci].Count() > 0 {
					ci := ci
					g.Spawn(func() {
						var local int64
						t.dual(ci, t.Root, &local)
						atomic.AddInt64(&visits, local)
					})
				}
			}
			g.Wait()
		} else {
			t.dual(t.Root, t.Root, &visits)
		}
	}
	// Canonical ascending order (see doc comment).
	for i := range t.Nodes {
		slices.Sort(t.Nodes[i].U)
		slices.Sort(t.Nodes[i].V)
	}
	t.lastWork = ListWork{Full: true, Pairs: visits}
	t.listStats.Pairs += visits
	// With caching disabled the maintenance structures are not kept, so the
	// build must not register as reusable.
	t.listsBuilt = !t.Cfg.NoListCache
	if t.listsBuilt {
		t.rebuildListRef()
		t.snapshotZero()
	}
}

// rebuildListRef recomputes the reverse-reference index from the lists.
func (t *Tree) rebuildListRef() {
	n := len(t.Nodes)
	if cap(t.listRef) < n {
		old := t.listRef
		t.listRef = make([][]int32, n)
		copy(t.listRef, old)
	}
	t.listRef = t.listRef[:n]
	for i := range t.listRef {
		t.listRef[i] = t.listRef[i][:0]
	}
	for i := range t.Nodes {
		ti := int32(i)
		for _, s := range t.Nodes[i].U {
			t.listRef[s] = append(t.listRef[s], ti)
		}
		for _, s := range t.Nodes[i].V {
			t.listRef[s] = append(t.listRef[s], ti)
		}
	}
}

// snapshotZero records the per-node empty status the lists were built
// against, for Refill's topology-flip detection.
func (t *Tree) snapshotZero() {
	if cap(t.listZero) < len(t.Nodes) {
		t.listZero = make([]bool, len(t.Nodes))
	}
	t.listZero = t.listZero[:len(t.Nodes)]
	for i := range t.Nodes {
		t.listZero[i] = t.Nodes[i].Count() == 0
	}
}

// repairLists incrementally updates the lists after local edits. Let sub
// be the union of the arena subtrees under the dirty roots and anc their
// ancestor chains. The repair
//
//  1. removes every list entry and reverse reference that touches sub
//     (clearing the lists of sub nodes, and filtering sub sources out of
//     the lists of outside targets found via the reverse index), then
//  2. re-derives exactly the sub-involving pairs with one restricted dual
//     traversal from (root, root) that prunes any pair whose two sides
//     are both outside anc ∪ sub — no such pair can lead to a recording
//     with a side in sub, because descendants of unrelated nodes are
//     unrelated — and records a pair only when one side lies in sub.
//
// A single combined pass over all dirty roots is essential: repairing
// roots one at a time would record pairs joining two dirty subtrees twice
// (once per direction of the restriction) and then lose them when the
// second root's pass clears its lists. Touched lists are re-sorted, so
// the result is element-wise identical to a from-scratch build.
func (t *Tree) repairLists() {
	nNodes := len(t.Nodes)
	if len(t.subMark) < nNodes {
		t.subMark = growStamps(t.subMark, nNodes)
		t.ancMark = growStamps(t.ancMark, nNodes)
		t.touchMark = growStamps(t.touchMark, nNodes)
	}
	for len(t.listRef) < nNodes {
		t.listRef = append(t.listRef, nil)
	}
	t.markGen++
	if t.markGen == 0 { // generation counter wrapped: reset stamps
		clear(t.subMark)
		clear(t.ancMark)
		clear(t.touchMark)
		t.markGen = 1
	}
	gen := t.markGen

	// Stamp sub = union of arena subtrees (including hidden children:
	// PushDown may have just made them visible) and collect its nodes.
	var sub []int32
	var stamp func(ni int32)
	stamp = func(ni int32) {
		if t.subMark[ni] == gen {
			return
		}
		t.subMark[ni] = gen
		sub = append(sub, ni)
		n := &t.Nodes[ni]
		if n.Leaf {
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode {
				stamp(ci)
			}
		}
	}
	for _, r := range t.dirtyRoots {
		stamp(r)
	}
	// Stamp anc = union of the dirty roots' ancestor chains (chains share
	// suffixes, so stop at the first already-stamped ancestor).
	for _, r := range t.dirtyRoots {
		for a := t.Nodes[r].Parent; a != NilNode; a = t.Nodes[a].Parent {
			if t.ancMark[a] == gen {
				break
			}
			t.ancMark[a] = gen
		}
	}
	t.dirtyRoots = t.dirtyRoots[:0]
	// Repair cost scales with the references into the stamped region
	// (unlink filters, re-sorts) at roughly fanout× the per-node cost of
	// the full traversal, so the measured break-even sits near 1/16 of
	// the arena — well before the region covers most of the tree. The
	// floor keeps small trees on the repair path, where a batch is a
	// handful of subtrees and the full traversal has nothing to amortize.
	lim := nNodes / 16
	if lim < 64 {
		lim = 64
	}
	if len(sub) > lim {
		t.RebuildLists()
		return
	}

	// Step 1: unlink. Every outside node that could hold a stale entry —
	// a target referencing the region (it appears in some listRef[z]) or
	// a source referenced by it (it appears in some z's U/V, so sub
	// members must leave its reverse index) — is collected once, then
	// each of its three lists is filtered of stamped entries in a single
	// wholesale pass. Filtering wholesale instead of removing entry by
	// entry is what keeps large Enforce_S batches cheaper than a full
	// rebuild: per-entry removal rescans each list once per stale entry.
	var outTouched []int32
	touch := func(r int32) {
		if t.subMark[r] != gen && t.touchMark[r] != gen {
			t.touchMark[r] = gen
			outTouched = append(outTouched, r)
		}
	}
	for _, z := range sub {
		nz := &t.Nodes[z]
		for _, s := range nz.U {
			touch(s)
		}
		for _, s := range nz.V {
			touch(s)
		}
		for _, r := range t.listRef[z] {
			touch(r)
		}
		nz.U = nz.U[:0]
		nz.V = nz.V[:0]
		t.listRef[z] = t.listRef[z][:0]
	}
	for _, r := range outTouched {
		nr := &t.Nodes[r]
		nr.U = filterMarked(nr.U, t.subMark, gen)
		nr.V = filterMarked(nr.V, t.subMark, gen)
		t.listRef[r] = filterMarked(t.listRef[r], t.subMark, gen)
	}

	// Step 2: one restricted traversal re-derives the removed pairs.
	var visits int64
	t.repairDual(t.Root, t.Root, gen, &outTouched, &visits)

	// Restore canonical order on everything that changed. Outside targets
	// kept a sorted prefix (filtering preserves order) with appended
	// tails; sub nodes were rebuilt in traversal order.
	for _, z := range sub {
		nz := &t.Nodes[z]
		slices.Sort(nz.U)
		slices.Sort(nz.V)
	}
	for _, r := range outTouched {
		nr := &t.Nodes[r]
		slices.Sort(nr.U)
		slices.Sort(nr.V)
	}

	t.listEpoch++
	t.listStats.Repairs++
	t.listStats.Pairs += visits
	t.lastWork = ListWork{Full: false, Pairs: visits}
	t.snapshotZero()
}

// repairDual is the restricted dual traversal of repairLists: identical
// pair expansion to dual, pruned to pairs related to the dirty region, and
// recording only pairs with a side in sub.
func (t *Tree) repairDual(a, b int32, gen uint32, outTouched *[]int32, visits *int64) {
	subA, subB := t.subMark[a] == gen, t.subMark[b] == gen
	if !subA && !subB && t.ancMark[a] != gen && t.ancMark[b] != gen {
		return
	}
	na := &t.Nodes[a]
	nb := &t.Nodes[b]
	if na.Count() == 0 || nb.Count() == 0 {
		return
	}
	*visits++
	if a != b && t.accepted(na, nb) {
		if subA || subB {
			na.V = append(na.V, b)
			t.recordRef(a, b, subA, gen, outTouched)
		}
		return
	}
	aLeaf := na.IsVisibleLeaf()
	bLeaf := nb.IsVisibleLeaf()
	if aLeaf && bLeaf {
		if subA || subB {
			na.U = append(na.U, b)
			t.recordRef(a, b, subA, gen, outTouched)
		}
		return
	}
	if !aLeaf && (bLeaf || na.Box.Half >= nb.Box.Half) {
		for _, ci := range na.Children {
			if ci != NilNode {
				t.repairDual(ci, b, gen, outTouched, visits)
			}
		}
		return
	}
	for _, ci := range nb.Children {
		if ci != NilNode {
			t.repairDual(a, ci, gen, outTouched, visits)
		}
	}
}

// recordRef maintains the reverse index for a newly recorded (target a,
// source b) pair and tracks outside targets that will need re-sorting.
func (t *Tree) recordRef(a, b int32, subA bool, gen uint32, outTouched *[]int32) {
	t.listRef[b] = append(t.listRef[b], a)
	if !subA && t.touchMark[a] != gen {
		t.touchMark[a] = gen
		*outTouched = append(*outTouched, a)
	}
}

// growStamps widens a stamp array preserving existing generations.
func growStamps(s []uint32, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, s)
	return out
}

// filterMarked removes entries stamped with gen, preserving order (so a
// sorted list stays sorted).
func filterMarked(s []int32, mark []uint32, gen uint32) []int32 {
	w := 0
	for _, x := range s {
		if mark[x] != gen {
			s[w] = x
			w++
		}
	}
	return s[:w]
}

// accepted reports whether the pair satisfies the MAC.
func (t *Tree) accepted(na, nb *Node) bool {
	d := na.Box.Center.Sub(nb.Box.Center).Norm()
	return t.Cfg.MAC*d > sqrt3*(na.Box.Half+nb.Box.Half)
}

// dual records interactions with a as target and b as source, counting
// pair visits into *visits.
func (t *Tree) dual(a, b int32, visits *int64) {
	na := &t.Nodes[a]
	nb := &t.Nodes[b]
	if na.Count() == 0 || nb.Count() == 0 {
		return
	}
	*visits++
	if a != b && t.accepted(na, nb) {
		na.V = append(na.V, b)
		return
	}
	aLeaf := na.IsVisibleLeaf()
	bLeaf := nb.IsVisibleLeaf()
	if aLeaf && bLeaf {
		na.U = append(na.U, b)
		return
	}
	// Expand the larger node; prefer expanding the target on ties so
	// both directed orders are generated symmetrically.
	if !aLeaf && (bLeaf || na.Box.Half >= nb.Box.Half) {
		for _, ci := range na.Children {
			if ci != NilNode {
				t.dual(ci, b, visits)
			}
		}
		return
	}
	for _, ci := range nb.Children {
		if ci != NilNode {
			t.dual(a, ci, visits)
		}
	}
}

// OpCounts tallies how many times each FMM operation will be applied on
// the current visible tree and lists, in the units of the paper's cost
// model: P2M and L2P per body, M2M and L2L per parent-child translation,
// M2L per translation pair, P2P per body-body interaction.
type OpCounts struct {
	P2M  int64
	M2M  int64
	M2L  int64
	L2L  int64
	L2P  int64
	P2P  int64 // body-body interactions
	P2PN int64 // P2P node-pair count (kernel bookkeeping)
}

// CountOps requires BuildLists to have been called.
func (t *Tree) CountOps() OpCounts {
	var c OpCounts
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		c.M2L += int64(len(n.V))
		if n.IsVisibleLeaf() {
			c.P2M += int64(n.Count())
			c.L2P += int64(n.Count())
			for _, si := range n.U {
				c.P2P += int64(n.Count()) * int64(t.Nodes[si].Count())
				c.P2PN++
			}
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode && t.Nodes[ci].Count() > 0 {
				c.M2M++
				c.L2L++
			}
		}
	})
	return c
}

// LeafInteractions returns, for each visible leaf (in DFS order), the
// number of direct interactions it participates in as a target:
// Interactions(t) = n_t * sum_{s in U(t)} n_s — the quantity the paper
// uses to divide near-field work across GPUs. It is a view over the
// cached near-field schedule (see NearField); the returned slices are
// owned by the tree and valid until the next list or occupancy change.
func (t *Tree) LeafInteractions() (leaves []int32, inter []int64) {
	sch := t.NearField()
	return sch.Leaves, sch.Weights
}

// ValidateLists checks that for every pair of bodies (i, j) the interaction
// is accounted exactly once: either j's leaf is in i's U list, or some
// ancestor-pair is connected through a V-list edge. It is O(N^2 log N) and
// intended for tests on small systems.
func (t *Tree) ValidateLists() error {
	n := t.Sys.Len()
	if n == 0 {
		return nil
	}
	// Map each body to its visible leaf.
	leafOf := make([]int32, n)
	t.WalkVisible(func(ni int32) {
		nd := &t.Nodes[ni]
		if nd.IsVisibleLeaf() {
			for i := nd.Start; i < nd.End; i++ {
				leafOf[i] = ni
			}
		}
	})
	// For each node, the chain of visible ancestors (inclusive).
	ancestors := func(ni int32) []int32 {
		var chain []int32
		for ni != NilNode {
			chain = append(chain, ni)
			ni = t.Nodes[ni].Parent
		}
		return chain
	}
	inU := func(target, src int32) bool {
		for _, s := range t.Nodes[target].U {
			if s == src {
				return true
			}
		}
		return false
	}
	inV := func(target, src int32) bool {
		for _, s := range t.Nodes[target].V {
			if s == src {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ti, sj := leafOf[i], leafOf[j]
			count := 0
			if inU(ti, sj) {
				count++
			}
			for _, ta := range ancestors(ti) {
				for _, sa := range ancestors(sj) {
					if inV(ta, sa) {
						count++
					}
				}
			}
			if count != 1 {
				return fmt.Errorf("octree: body pair (%d,%d) covered %d times (leaves %d,%d)",
					i, j, count, ti, sj)
			}
		}
	}
	return nil
}
