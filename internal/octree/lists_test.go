package octree

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/particle"
)

// cloneForLists returns a tree with the same structure as t (sharing the
// particle system, whose positions the dual traversal never reads) but no
// list state, so a from-scratch RebuildLists on the clone is the reference
// for the original's incrementally repaired lists.
func cloneForLists(t *Tree) *Tree {
	c := &Tree{Sys: t.Sys, Root: t.Root, Cfg: t.Cfg}
	c.Cfg.Pool = nil
	c.Nodes = make([]Node, len(t.Nodes))
	copy(c.Nodes, t.Nodes)
	for i := range c.Nodes {
		c.Nodes[i].U = nil
		c.Nodes[i].V = nil
	}
	return c
}

// requireListsEqual asserts element-wise list equality (the cached/repaired
// lists must be bit-for-bit the from-scratch build, not merely set-equal —
// both are kept in canonical ascending order).
func requireListsEqual(t testing.TB, got, want *Tree, stage string) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: node count %d vs %d", stage, len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if !slices.Equal(got.Nodes[i].U, want.Nodes[i].U) {
			t.Fatalf("%s: node %d U mismatch\n got %v\nwant %v",
				stage, i, got.Nodes[i].U, want.Nodes[i].U)
		}
		if !slices.Equal(got.Nodes[i].V, want.Nodes[i].V) {
			t.Fatalf("%s: node %d V mismatch\n got %v\nwant %v",
				stage, i, got.Nodes[i].V, want.Nodes[i].V)
		}
	}
}

// checkListRef asserts the reverse-reference index is exactly the inverse
// of the current lists (repair depends on it to find stale references).
func checkListRef(t testing.TB, tr *Tree, stage string) {
	t.Helper()
	want := make([][]int32, len(tr.Nodes))
	for i := range tr.Nodes {
		ti := int32(i)
		for _, s := range tr.Nodes[i].U {
			want[s] = append(want[s], ti)
		}
		for _, s := range tr.Nodes[i].V {
			want[s] = append(want[s], ti)
		}
	}
	for i := range want {
		var got []int32
		if i < len(tr.listRef) {
			got = append(got, tr.listRef[i]...)
		}
		slices.Sort(got)
		slices.Sort(want[i])
		if !slices.Equal(got, want[i]) {
			t.Fatalf("%s: listRef[%d] mismatch\n got %v\nwant %v", stage, i, got, want[i])
		}
	}
}

// mutate applies one random structural or occupancy edit and reports a
// label for failure messages.
func mutate(tr *Tree, rng *rand.Rand, amp float64) string {
	switch rng.Intn(5) {
	case 0: // collapse a random collapsible parent
		var cands []int32
		tr.WalkVisible(func(ni int32) {
			n := &tr.Nodes[ni]
			if n.IsVisibleLeaf() {
				return
			}
			for _, ci := range n.Children {
				if ci != NilNode && !tr.Nodes[ci].IsVisibleLeaf() {
					return
				}
			}
			cands = append(cands, ni)
		})
		if len(cands) > 0 {
			ni := cands[rng.Intn(len(cands))]
			tr.Collapse(ni)
			return fmt.Sprintf("collapse %d", ni)
		}
		return "collapse none"
	case 1: // push down a random visible leaf
		leaves := tr.VisibleLeaves()
		for k := 0; k < 8; k++ {
			ni := leaves[rng.Intn(len(leaves))]
			if tr.PushDown(ni) {
				return fmt.Sprintf("pushdown %d", ni)
			}
		}
		return "pushdown none"
	case 2: // move bodies and refill (occupancy changes, maybe flips)
		sys := tr.Sys
		for i := range sys.Pos {
			d := geom.Vec3{
				X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64(),
			}.Scale(amp)
			sys.Pos[i] = sys.Pos[i].Add(d)
		}
		tr.Refill()
		return "refill"
	case 3:
		c, p := tr.EnforceS()
		return fmt.Sprintf("enforceS %d/%d", c, p)
	default: // several edits in one batch before the next BuildLists
		var lbl string
		for k := 0; k < 3; k++ {
			lbl = mutate(tr, rng, amp)
		}
		return "batch " + lbl
	}
}

// TestListRepairMatchesFromScratch is the satellite property test: after
// random Collapse/PushDown/EnforceS/Refill sequences, the repaired lists
// must equal a from-scratch build on a structural clone, element for
// element, and the reverse index must stay consistent.
func TestListRepairMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sys := distrib.Plummer(1500, 1, 1, 5)
	tr := Build(sys, Config{S: 24})
	tr.BuildLists()
	for step := 0; step < 60; step++ {
		lbl := mutate(tr, rng, 0.03)
		tr.BuildLists()
		ref := cloneForLists(tr)
		ref.RebuildLists()
		stage := fmt.Sprintf("step %d (%s)", step, lbl)
		requireListsEqual(t, tr, ref, stage)
		checkListRef(t, tr, stage)
	}
	st := tr.ListBuildStats()
	if st.Repairs == 0 {
		t.Fatalf("sequence exercised no repairs: %+v", st)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestListRepairValidatesSmall re-runs the property on a system small
// enough for the exhaustive exactly-once pair check.
func TestListRepairValidatesSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sys := distrib.Plummer(160, 1, 1, 8)
	tr := Build(sys, Config{S: 8})
	tr.BuildLists()
	for step := 0; step < 40; step++ {
		lbl := mutate(tr, rng, 0.05)
		tr.BuildLists()
		stage := fmt.Sprintf("step %d (%s)", step, lbl)
		if err := tr.ValidateLists(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		ref := cloneForLists(tr)
		ref.RebuildLists()
		requireListsEqual(t, tr, ref, stage)
	}
}

// TestListCacheCounters pins the cache behavior the balancer's cost
// accounting relies on: an unchanged step skips all dual-traversal work, a
// local edit repairs, and only Rebuild forces the full traversal.
func TestListCacheCounters(t *testing.T) {
	sys := distrib.Plummer(3000, 1, 1, 9)
	tr := Build(sys, Config{S: 48})
	tr.BuildLists()
	if st := tr.ListBuildStats(); st.FullBuilds != 1 || st.Repairs != 0 || st.Skips != 0 {
		t.Fatalf("after first build: %+v", st)
	}
	if w := tr.LastListWork(); !w.Full || w.Pairs == 0 {
		t.Fatalf("first build work: %+v", w)
	}
	epoch := tr.ListEpoch()

	// Observation-state step: nothing changed, BuildLists must do zero
	// dual-traversal work and keep the epoch.
	tr.BuildLists()
	if st := tr.ListBuildStats(); st.FullBuilds != 1 || st.Skips != 1 {
		t.Fatalf("unchanged step did not skip: %+v", st)
	}
	if w := tr.LastListWork(); w.Full || w.Pairs != 0 {
		t.Fatalf("skip reported work: %+v", w)
	}
	if tr.ListEpoch() != epoch {
		t.Fatalf("skip changed epoch %d -> %d", epoch, tr.ListEpoch())
	}

	// Refill without movement keeps occupancy, so the next BuildLists
	// still skips.
	tr.Refill()
	tr.BuildLists()
	if st := tr.ListBuildStats(); st.FullBuilds != 1 || st.Skips != 2 {
		t.Fatalf("static refill did not skip: %+v", st)
	}

	// A local edit triggers a repair (never a full rebuild) and bumps the
	// epoch.
	var target int32 = -1
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if target >= 0 || n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode && !tr.Nodes[ci].IsVisibleLeaf() {
				return
			}
		}
		target = ni
	})
	if target < 0 || !tr.Collapse(target) {
		t.Fatalf("no collapsible node found")
	}
	tr.BuildLists()
	if st := tr.ListBuildStats(); st.FullBuilds != 1 || st.Repairs != 1 {
		t.Fatalf("edit did not repair: %+v", st)
	}
	if w := tr.LastListWork(); w.Full || w.Pairs == 0 {
		t.Fatalf("repair work: %+v", w)
	}
	if tr.ListEpoch() == epoch {
		t.Fatal("repair did not bump epoch")
	}

	// Rebuild invalidates everything: the next BuildLists is full again.
	tr.Rebuild(48)
	tr.BuildLists()
	if st := tr.ListBuildStats(); st.FullBuilds != 2 {
		t.Fatalf("rebuild did not force full build: %+v", st)
	}

	// With the cache disabled every BuildLists is a full traversal.
	sys2 := distrib.Plummer(1000, 1, 1, 9)
	tr2 := Build(sys2, Config{S: 48, NoListCache: true})
	tr2.BuildLists()
	tr2.BuildLists()
	if st := tr2.ListBuildStats(); st.FullBuilds != 2 || st.Skips != 0 || st.Repairs != 0 {
		t.Fatalf("NoListCache stats: %+v", st)
	}
}

// TestNearScheduleMatchesLists checks the CSR schedule against the U lists
// it flattens, and that refills refresh weights without rebuilding the
// topology.
func TestNearScheduleMatchesLists(t *testing.T) {
	sys := distrib.Plummer(2000, 1, 1, 3)
	tr := Build(sys, Config{S: 32})
	tr.BuildLists()
	sch := tr.NearField()
	if !slices.Equal(sch.Leaves, tr.VisibleLeaves()) {
		t.Fatal("schedule rows are not the visible leaves in DFS order")
	}
	var total int64
	for r := 0; r < sch.Rows(); r++ {
		ni := sch.Leaves[r]
		if !slices.Equal(sch.Row(r), tr.Nodes[ni].U) {
			t.Fatalf("row %d != U(%d)", r, ni)
		}
		var srcs int64
		for _, si := range sch.Row(r) {
			srcs += int64(tr.Nodes[si].Count())
		}
		w := int64(tr.Nodes[ni].Count()) * srcs
		if sch.Weights[r] != w {
			t.Fatalf("row %d weight %d, want %d", r, sch.Weights[r], w)
		}
		if sch.Prefix[r+1]-sch.Prefix[r] != w {
			t.Fatalf("row %d prefix step %d, want %d", r, sch.Prefix[r+1]-sch.Prefix[r], w)
		}
		total += w
	}
	if sch.Total() != total {
		t.Fatalf("Total %d, want %d", sch.Total(), total)
	}
	if ops := tr.CountOps(); ops.P2P != total {
		t.Fatalf("schedule total %d != CountOps P2P %d", total, ops.P2P)
	}

	// A refill with small motion (same structure) must reuse the topology
	// and refresh weights to the new occupancies.
	rng := rand.New(rand.NewSource(4))
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{
			X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64(),
		}.Scale(0.01))
	}
	tr.Refill()
	tr.BuildLists()
	sch2 := tr.NearField()
	if sch2 != sch {
		t.Fatal("schedule cache rebuilt instead of reused")
	}
	if tr.ListBuildStats().FullBuilds != 1 {
		t.Fatalf("refill forced a full list build: %+v", tr.ListBuildStats())
	}
	if ops := tr.CountOps(); ops.P2P != sch2.Total() {
		t.Fatalf("refreshed total %d != CountOps P2P %d", sch2.Total(), ops.P2P)
	}
}

// TestSourceGatherPack checks the SoA gather: every source leaf of a chunk
// is packed exactly once and Span returns its bodies verbatim.
func TestSourceGatherPack(t *testing.T) {
	sys := distrib.Plummer(1200, 1, 1, 6)
	tr := Build(sys, Config{S: 16})
	sch := tr.NearField()
	var g SourceGather
	for lo := 0; lo < sch.Rows(); lo += 7 {
		hi := lo + 7
		if hi > sch.Rows() {
			hi = sch.Rows()
		}
		g.Pack(tr, sch, lo, hi, true, true)
		if len(g.Pos) != len(g.Mass) || len(g.Pos) != len(g.Aux) {
			t.Fatalf("chunk [%d,%d): SoA lengths diverge", lo, hi)
		}
		for r := lo; r < hi; r++ {
			for _, si := range sch.Row(r) {
				a, b := g.Span(si)
				n := &tr.Nodes[si]
				if b-a != n.Count() {
					t.Fatalf("leaf %d span %d bodies, want %d", si, b-a, n.Count())
				}
				for k := 0; k < b-a; k++ {
					if g.Pos[a+k] != sys.Pos[int(n.Start)+k] ||
						g.Mass[a+k] != sys.Mass[int(n.Start)+k] ||
						g.Aux[a+k] != sys.Aux[int(n.Start)+k] {
						t.Fatalf("leaf %d body %d packed wrong", si, k)
					}
				}
			}
		}
	}
}

// FuzzListRepair drives arbitrary edit scripts against the list cache and
// checks the repaired lists against a from-scratch build every time. Run
// with `go test -fuzz FuzzListRepair`; the seeds execute as normal tests.
func FuzzListRepair(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, []byte{0, 1, 2, 3, 4})
	f.Add(make([]byte, 120), []byte{2, 2, 2})
	f.Add([]byte{255, 0, 128, 7, 9, 11, 200, 100, 50, 25, 12, 6}, []byte{4, 0, 3, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte, script []byte) {
		if len(data) < 6 || len(script) == 0 || len(script) > 24 {
			return
		}
		n := len(data) / 6
		if n > 200 {
			n = 200
		}
		sys := particle.New(n)
		for i := 0; i < n; i++ {
			b := data[i*6:]
			u := func(k int) float64 {
				return (float64(binary.LittleEndian.Uint16(b[k*2:]))/65535 - 0.5) * 20
			}
			sys.Pos[i] = geom.Vec3{X: u(0), Y: u(1), Z: u(2)}
		}
		tr := Build(sys, Config{S: 4})
		tr.BuildLists()
		for k, op := range script {
			mutate(tr, rand.New(rand.NewSource(int64(op)*977+int64(k))), 0.2)
			tr.BuildLists()
			ref := cloneForLists(tr)
			ref.RebuildLists()
			requireListsEqual(t, tr, ref, fmt.Sprintf("op %d (%d)", k, op))
			checkListRef(t, tr, fmt.Sprintf("op %d (%d)", k, op))
			if n <= 40 {
				if err := tr.ValidateLists(); err != nil {
					t.Fatalf("op %d: %v", k, err)
				}
			}
		}
	})
}

// TestListStatsEpochContract pins the reset contract the telemetry
// recorder depends on: counters are cumulative, survive Rebuild, are
// zeroed only by ResetListStats (which bumps the epoch), and Sub yields
// per-interval deltas with epoch-mismatch protection.
func TestListStatsEpochContract(t *testing.T) {
	sys := distrib.Plummer(2000, 1, 1, 11)
	tr := Build(sys, Config{S: 48})
	tr.BuildLists()
	tr.BuildLists() // skip
	st := tr.ListBuildStats()
	if st.FullBuilds != 1 || st.Skips != 1 || st.Pairs == 0 {
		t.Fatalf("setup stats: %+v", st)
	}

	// Rebuild must NOT reset the counters (the balancer rebuilds the tree
	// mid-trajectory; history has to survive).
	tr.Rebuild(32)
	tr.BuildLists()
	st2 := tr.ListBuildStats()
	if st2.Epoch != st.Epoch {
		t.Fatalf("Rebuild changed the stats epoch: %d -> %d", st.Epoch, st2.Epoch)
	}
	if st2.FullBuilds != 2 || st2.Skips != 1 {
		t.Fatalf("Rebuild zeroed cumulative counters: %+v", st2)
	}
	if st2.Pairs <= st.Pairs {
		t.Fatalf("second full build added no pair visits: %d -> %d", st.Pairs, st2.Pairs)
	}

	// Sub gives the interval delta for same-epoch snapshots.
	d := st2.Sub(st)
	if d.FullBuilds != 1 || d.Skips != 0 || d.Pairs != st2.Pairs-st.Pairs {
		t.Fatalf("Sub delta wrong: %+v", d)
	}

	// ResetListStats zeroes the counters and bumps the epoch.
	tr.ResetListStats()
	st3 := tr.ListBuildStats()
	if st3.Epoch != st2.Epoch+1 {
		t.Fatalf("reset did not bump epoch: %d -> %d", st2.Epoch, st3.Epoch)
	}
	if st3.FullBuilds != 0 || st3.Repairs != 0 || st3.Skips != 0 || st3.Pairs != 0 {
		t.Fatalf("reset left counters: %+v", st3)
	}

	// A pre-reset snapshot differenced against a post-reset one must not
	// go negative: Sub returns the post-reset cumulative values.
	tr.BuildLists() // skip (lists still valid after reset bookkeeping)
	st4 := tr.ListBuildStats()
	d = st4.Sub(st2) // st2 is from the old epoch
	if d != st4 {
		t.Fatalf("cross-epoch Sub = %+v, want the newer cumulative %+v", d, st4)
	}
	if d.FullBuilds < 0 || d.Skips < 0 || d.Pairs < 0 {
		t.Fatalf("cross-epoch Sub went negative: %+v", d)
	}
}

// TestListStatsStepDelta drives the recorder's usage pattern: snapshot
// before BuildLists, difference after, classify the step.
func TestListStatsStepDelta(t *testing.T) {
	sys := distrib.Plummer(2000, 1, 1, 13)
	tr := Build(sys, Config{S: 48})
	classify := func() string {
		before := tr.ListBuildStats()
		tr.BuildLists()
		d := tr.ListBuildStats().Sub(before)
		switch {
		case d.FullBuilds > 0:
			return "full"
		case d.Repairs > 0:
			return "repair"
		default:
			return "skip"
		}
	}
	if got := classify(); got != "full" {
		t.Fatalf("first build classified %q", got)
	}
	if got := classify(); got != "skip" {
		t.Fatalf("unchanged step classified %q", got)
	}
	tr.Rebuild(tr.Cfg.S)
	if got := classify(); got != "full" {
		t.Fatalf("post-rebuild step classified %q", got)
	}
}
