package octree

import "sort"

// Ownership/range queries for contiguous-range partitions of the body
// array (the distributed-memory decomposition of dmem): bodies are split
// at visible-leaf boundaries so a range owner always owns whole leaves,
// and the owner of a cell is the owner of its first body.

// LeafEnds returns the End body index of every visible leaf in DFS
// order — the admissible cut points of a contiguous-range ownership
// partition (a cut placed on a leaf End never splits a leaf's bodies
// between owners). The returned slice is freshly allocated.
func (t *Tree) LeafEnds() []int32 {
	leaves := t.VisibleLeaves()
	ends := make([]int32, len(leaves))
	for i, li := range leaves {
		ends[i] = t.Nodes[li].End
	}
	return ends
}

// SnapToLeafEnd returns the admissible ownership cut nearest to the body
// index cut: 0 or a visible-leaf End. Ties prefer the lower boundary, so
// snapping is deterministic; inputs outside [0, N] clamp to the range.
func (t *Tree) SnapToLeafEnd(cut int32) int32 {
	leaves := t.VisibleLeaves()
	if len(leaves) == 0 || cut <= 0 {
		return 0
	}
	n := t.Nodes[leaves[len(leaves)-1]].End
	if cut >= n {
		return n
	}
	// Leaves cover [0, N) contiguously in DFS order, so Ends ascend:
	// find the first leaf whose End reaches the cut.
	i := sort.Search(len(leaves), func(i int) bool {
		return t.Nodes[leaves[i]].End >= cut
	})
	hi := t.Nodes[leaves[i]].End
	lo := int32(0)
	if i > 0 {
		lo = t.Nodes[leaves[i-1]].End
	}
	if cut-lo <= hi-cut {
		return lo
	}
	return hi
}
