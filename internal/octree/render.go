package octree

import (
	"fmt"
	"sort"
	"strings"
)

// Render returns a compact ASCII summary of the visible tree: per-level
// node/leaf/occupancy statistics plus an occupancy histogram — the view a
// user wants when debugging why a decomposition is slow.
func (t *Tree) Render() string {
	type levelStat struct {
		nodes, leaves, bodies, maxOcc int
	}
	levels := map[int]*levelStat{}
	var occ []int
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		ls := levels[int(n.Level)]
		if ls == nil {
			ls = &levelStat{}
			levels[int(n.Level)] = ls
		}
		ls.nodes++
		if n.IsVisibleLeaf() {
			ls.leaves++
			ls.bodies += n.Count()
			if n.Count() > ls.maxOcc {
				ls.maxOcc = n.Count()
			}
			occ = append(occ, n.Count())
		}
	})
	var b strings.Builder
	st := t.ComputeStats()
	fmt.Fprintf(&b, "octree: %d bodies, S=%d, %d visible nodes, %d leaves, depth %d\n",
		t.Sys.Len(), t.Cfg.S, st.VisibleNodes, st.VisibleLeaves, st.MaxDepth)
	var lvls []int
	for l := range levels {
		lvls = append(lvls, l)
	}
	sort.Ints(lvls)
	fmt.Fprintf(&b, "%6s %8s %8s %10s %8s\n", "level", "nodes", "leaves", "bodies", "maxocc")
	for _, l := range lvls {
		ls := levels[l]
		fmt.Fprintf(&b, "%6d %8d %8d %10d %8d\n", l, ls.nodes, ls.leaves, ls.bodies, ls.maxOcc)
	}
	// Occupancy histogram in powers of two up to 2*S.
	if len(occ) > 0 {
		fmt.Fprintf(&b, "leaf occupancy:\n")
		buckets := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
		counts := make([]int, len(buckets)+1)
		for _, c := range occ {
			placed := false
			for i, hi := range buckets {
				if c <= hi {
					counts[i]++
					placed = true
					break
				}
			}
			if !placed {
				counts[len(buckets)]++
			}
		}
		maxC := 1
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range counts {
			if c == 0 {
				continue
			}
			label := fmt.Sprintf("<=%d", buckets[min(i, len(buckets)-1)])
			if i == len(buckets) {
				label = fmt.Sprintf(">%d", buckets[len(buckets)-1])
			}
			bar := strings.Repeat("#", 1+c*40/maxC)
			fmt.Fprintf(&b, "%8s %6d %s\n", label, c, bar)
		}
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
