package octree

// NearSchedule is the flattened CSR form of the per-leaf U lists: row i is
// visible leaf Leaves[i] (DFS order, matching WalkVisible), its near-field
// sources are Srcs[RowPtr[i]:RowPtr[i+1]] (ascending node order, identical
// to the leaf's U list), Weights[i] = n_t * Σ n_s is its interaction
// count, and Prefix is the running sum of Weights (Prefix[len(Leaves)] is
// the total near-field work). The schedule is the shared near-field work
// description consumed by the CPU near-field chunking, the virtual-GPU
// partitioners, and the virtual-CPU task graph, replacing per-step
// LeafInteractions recomputation and per-target U-list chasing.
// SrcStart/SrcEnd are parallel to Srcs and hold each source leaf's body
// range in the particle arrays, so near-field consumers slice source
// positions/masses directly without re-indirecting through Tree.Nodes per
// target. They are occupancy-derived (a Refill moves them) and refresh
// with Weights.
type NearSchedule struct {
	Leaves   []int32
	RowPtr   []int32
	Srcs     []int32
	SrcStart []int32
	SrcEnd   []int32
	Weights  []int64
	Prefix   []int64
}

// Rows returns the number of target leaves.
func (s *NearSchedule) Rows() int { return len(s.Leaves) }

// Row returns the source leaves of row i.
func (s *NearSchedule) Row(i int) []int32 { return s.Srcs[s.RowPtr[i]:s.RowPtr[i+1]] }

// Total returns the total body-body interaction count of the schedule.
func (s *NearSchedule) Total() int64 {
	if len(s.Prefix) == 0 {
		return 0
	}
	return s.Prefix[len(s.Prefix)-1]
}

// NearField returns the cached near-field schedule for the current lists.
// BuildLists must have run (the schedule is derived from the U lists).
// The topology (Leaves, RowPtr, Srcs) is rebuilt only when the list
// topology changed (full build or repair — tracked by ListEpoch); a
// Refill merely refreshes Weights/Prefix from the new occupancies. The
// returned schedule is owned by the tree and valid until the next list or
// occupancy change.
func (t *Tree) NearField() *NearSchedule {
	if t.nearEpoch == t.listEpoch && t.nearEpoch != 0 {
		if !t.nearWeightsOK {
			t.refreshNearWeights()
		}
		return &t.nearSched
	}
	t.buildNearSchedule()
	return &t.nearSched
}

// buildNearSchedule flattens the U lists into CSR form.
func (t *Tree) buildNearSchedule() {
	s := &t.nearSched
	// Copy the leaf index rather than aliasing the VisibleLeaves cache:
	// the cache's backing array is recycled on invalidation, while the
	// schedule must stay coherent until the next topology change.
	s.Leaves = append(s.Leaves[:0], t.VisibleLeaves()...)
	s.RowPtr = append(s.RowPtr[:0], 0)
	s.Srcs = s.Srcs[:0]
	for _, ni := range s.Leaves {
		s.Srcs = append(s.Srcs, t.Nodes[ni].U...)
		s.RowPtr = append(s.RowPtr, int32(len(s.Srcs)))
	}
	t.refreshNearWeights()
	t.nearEpoch = t.listEpoch
}

// refreshNearWeights recomputes the occupancy-derived parts of the
// schedule — Weights, Prefix and the source body spans — keeping the
// topology.
func (t *Tree) refreshNearWeights() {
	s := &t.nearSched
	s.Weights = s.Weights[:0]
	s.Prefix = append(s.Prefix[:0], 0)
	if cap(s.SrcStart) < len(s.Srcs) {
		s.SrcStart = make([]int32, len(s.Srcs))
		s.SrcEnd = make([]int32, len(s.Srcs))
	}
	s.SrcStart = s.SrcStart[:len(s.Srcs)]
	s.SrcEnd = s.SrcEnd[:len(s.Srcs)]
	run := int64(0)
	for i, ni := range s.Leaves {
		var srcs int64
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			sn := &t.Nodes[s.Srcs[k]]
			s.SrcStart[k] = sn.Start
			s.SrcEnd[k] = sn.End
			srcs += int64(sn.Count())
		}
		w := int64(t.Nodes[ni].Count()) * srcs
		s.Weights = append(s.Weights, w)
		run += w
		s.Prefix = append(s.Prefix, run)
	}
	t.nearWeightsOK = true
}
