// Package octree implements the adaptive spatial decomposition at the heart
// of the AFMM: a variable-depth octree over the bodies, built by recursive
// parallel partition, with the paper's tree-modification primitives —
// Collapse (hide a subdivided node's children so it acts as a leaf),
// PushDown (subdivide a leaf, reclaiming hidden children when available),
// Enforce_S (restore the global leaf-capacity invariant), and Refill
// (re-bin moved bodies into the existing structure between rebuilds).
package octree

import (
	"fmt"
	"math"
	"sync"

	"afmm/internal/geom"
	"afmm/internal/particle"
	"afmm/internal/sched"
)

// NilNode marks an absent child.
const NilNode = int32(-1)

// Mode selects the decomposition rule.
type Mode int

const (
	// Adaptive subdivides any cell holding more than S bodies (the AFMM
	// decomposition of Cheng, Greengard & Rokhlin).
	Adaptive Mode = iota
	// Uniform subdivides every occupied cell down to the fixed depth
	// ceil(log8(N/S)) (the original FMM decomposition); leaves all sit
	// at the same level.
	Uniform
)

// Node is one octree cell. Bodies of the subtree occupy the contiguous
// storage range [Start, End) of the particle system.
type Node struct {
	Box      geom.Box
	Parent   int32
	Children [8]int32
	Level    int32
	Start    int32
	End      int32
	// Leaf is true when the node has no allocated children.
	Leaf bool
	// Collapsed hides allocated children from the FMM view, making the
	// node act as a leaf (the paper's Collapse operation).
	Collapsed bool

	// U and V are the interaction lists produced by BuildLists: U holds
	// the near-field source leaves of a visible leaf (including itself),
	// V the well-separated M2L source nodes.
	U []int32
	V []int32
}

// Count returns the number of bodies in the node's subtree.
func (n *Node) Count() int { return int(n.End - n.Start) }

// IsVisibleLeaf reports whether the node acts as a leaf in the current FMM
// view.
func (n *Node) IsVisibleLeaf() bool { return n.Leaf || n.Collapsed }

// Config controls tree construction.
type Config struct {
	S        int  // leaf capacity target
	MaxDepth int  // subdivision limit (default 24)
	Mode     Mode // Adaptive or Uniform
	// MAC is the multipole acceptance parameter of the dual traversal
	// (default 0.6); smaller is more accurate and pushes more pairs into
	// the near field.
	MAC float64
	// Pool, when non-nil, parallelizes construction and refills.
	Pool *sched.Pool
	// ParallelCutoff is the minimum subtree body count for spawning a
	// construction task (default 2048).
	ParallelCutoff int
	// NoListCache disables the persistent interaction-list cache: every
	// BuildLists call runs the full dual traversal from scratch. Used for
	// A/B measurements and as an escape hatch.
	NoListCache bool
}

func (c *Config) setDefaults() {
	if c.S <= 0 {
		c.S = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MAC <= 0 || c.MAC >= 1 {
		c.MAC = 0.6
	}
	if c.ParallelCutoff <= 0 {
		c.ParallelCutoff = 2048
	}
}

// Tree is the adaptive decomposition over a particle system. The system's
// bodies are reordered in place so each node's bodies are contiguous.
type Tree struct {
	Sys   *particle.System
	Nodes []Node
	Root  int32
	Cfg   Config

	// UniformDepth is the fixed leaf level when Cfg.Mode == Uniform.
	UniformDepth int

	// scratch buffers reused across rebuilds/refills
	octant []uint8
	permA  []geom.Vec3
	permB  []geom.Vec3
	permC  []float64
	permD  []int
	permE  []geom.Vec3

	// levels caches LevelOrder's grouping of visible nodes by level; any
	// edit that changes the visible node set (structure or occupancy)
	// invalidates it.
	levels   [][]int32
	levelsOK bool

	// leaves caches VisibleLeaves' DFS leaf index under the same
	// invalidation rule as levels.
	leaves   []int32
	leavesOK bool

	// Persistent interaction-list state (see lists.go). Lists survive
	// across steps: Refill only refreshes occupancy, Collapse/PushDown
	// mark local dirty roots for incremental repair, and only Rebuild
	// forces a full dual traversal.
	listsBuilt     bool    // BuildLists has populated U/V at least once
	listsFullDirty bool    // next BuildLists must run from scratch
	dirtyRoots     []int32 // subtree roots needing local list repair
	// listRef is the reverse-reference index: listRef[s] holds every
	// target t with s ∈ U(t) ∪ V(t). Lists are not symmetric (the dual
	// traversal records mixed-granularity V pairs in one direction only),
	// so repair needs this explicit index to find stale references.
	listRef [][]int32
	// listZero snapshots Count()==0 per node at list-build time; Refill
	// compares against it to detect occupancy flips that change the
	// traversal topology (dual prunes empty subtrees).
	listZero []bool
	// listEpoch increments whenever list topology changes (full build or
	// repair); the near-field schedule cache keys on it.
	listEpoch uint64
	// stamp arrays for repair marking (generation-counted, no clearing)
	subMark   []uint32
	ancMark   []uint32
	touchMark []uint32
	markGen   uint32
	listStats ListStats
	lastWork  ListWork

	// near-field CSR schedule cache (see schedule.go)
	nearSched     NearSchedule
	nearEpoch     uint64 // listEpoch the topology was built at (0 = never)
	nearWeightsOK bool

	// M2L translation-class schedule cache (see farclass.go), keyed on
	// listEpoch like the near-field schedule.
	farSched M2LClassSchedule
	farEpoch uint64
}

// Build constructs a tree over sys with the given configuration.
func Build(sys *particle.System, cfg Config) *Tree {
	cfg.setDefaults()
	t := &Tree{Sys: sys, Cfg: cfg}
	t.ensureScratch()
	t.Rebuild(cfg.S)
	return t
}

func (t *Tree) ensureScratch() {
	n := t.Sys.Len()
	if len(t.octant) < n {
		t.octant = make([]uint8, n)
		t.permA = make([]geom.Vec3, n)
		t.permB = make([]geom.Vec3, n)
		t.permC = make([]float64, n)
		t.permD = make([]int, n)
		t.permE = make([]geom.Vec3, n)
	}
}

// uniformDepthFor computes the fixed octree depth ceil(log8(N/S)) used by
// the uniform FMM.
func uniformDepthFor(n, s, maxDepth int) int {
	if n <= s || s <= 0 {
		return 0
	}
	d := int(math.Ceil(math.Log(float64(n)/float64(s)) / math.Log(8)))
	if d < 0 {
		d = 0
	}
	if d > maxDepth {
		d = maxDepth
	}
	// The uniform tree size is 8^d; keep it bounded regardless of S.
	for d > 8 {
		d--
	}
	return d
}

// Rebuild discards the current structure and builds a fresh decomposition
// with leaf capacity s. The node arena is reused, implementing the paper's
// reserved node buffer.
func (t *Tree) Rebuild(s int) {
	if s <= 0 {
		s = 1
	}
	t.Cfg.S = s
	t.ensureScratch()
	t.invalidateLevels()
	// A rebuild discards every node, so incremental list repair is off the
	// table: force the next BuildLists to run from scratch.
	t.listsFullDirty = true
	t.listsBuilt = false
	t.dirtyRoots = t.dirtyRoots[:0]
	t.Nodes = t.Nodes[:0]
	box := geom.BoundingCube(t.Sys.Pos)
	t.Root = t.alloc(box, NilNode, 0, 0, int32(t.Sys.Len()))
	if t.Cfg.Mode == Uniform {
		t.UniformDepth = uniformDepthFor(t.Sys.Len(), s, t.Cfg.MaxDepth)
	}
	t.subdivide(t.Root)
}

func (t *Tree) alloc(box geom.Box, parent, level, start, end int32) int32 {
	idx := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{
		Box:      box,
		Parent:   parent,
		Children: [8]int32{NilNode, NilNode, NilNode, NilNode, NilNode, NilNode, NilNode, NilNode},
		Level:    level,
		Start:    start,
		End:      end,
		Leaf:     true,
	})
	return idx
}

// shouldSplit applies the decomposition rule.
func (t *Tree) shouldSplit(n *Node) bool {
	if int(n.Level) >= t.Cfg.MaxDepth || n.Count() <= 1 {
		return n.Count() > 1 && int(n.Level) < t.Cfg.MaxDepth
	}
	switch t.Cfg.Mode {
	case Uniform:
		return int(n.Level) < t.UniformDepth && n.Count() > 0
	default:
		return n.Count() > t.Cfg.S
	}
}

// subdivide recursively partitions node ni. The recursion itself is
// sequential because node allocation appends to the shared arena (pointer
// stability); the octant-classification inside partition is parallel. The
// vcpu model accounts for fully task-parallel construction when replaying
// a build onto the virtual machine.
func (t *Tree) subdivide(ni int32) {
	n := &t.Nodes[ni]
	if !t.shouldSplit(n) {
		return
	}
	children := t.splitNode(ni)
	for _, ci := range children {
		if ci != NilNode && t.Nodes[ci].Count() > 0 {
			t.subdivide(ci)
		}
	}
}

// splitNode partitions ni's body range into 8 octants, allocates (or
// reuses hidden) children, and returns the child indices. The node stops
// being a leaf.
func (t *Tree) splitNode(ni int32) [8]int32 {
	n := &t.Nodes[ni]
	start, end := n.Start, n.End
	box := n.Box
	counts := t.partition(box, start, end)
	reuse := !n.Leaf // hidden children exist (Collapsed pushdown path)
	var children [8]int32
	off := start
	for o := 0; o < 8; o++ {
		var ci int32
		if reuse {
			ci = n.Children[o]
		} else {
			ci = t.alloc(box.Child(o), ni, n.Level+1, 0, 0)
			n = &t.Nodes[ni] // re-resolve: alloc may grow the arena
		}
		c := &t.Nodes[ci]
		c.Start = off
		c.End = off + counts[o]
		c.Leaf = true
		c.Collapsed = false
		off = c.End
		children[o] = ci
		n.Children[o] = ci
	}
	n.Leaf = false
	n.Collapsed = false
	return children
}

// partition reorders the bodies of [start,end) by octant of box and
// returns the per-octant counts: a stable counting sort using scratch
// buffers sliced to [start:end), so partitions of disjoint ranges may run
// concurrently. The octant-classification pass — the bulk of the work —
// is data-parallel and runs on the pool for large ranges.
func (t *Tree) partition(box geom.Box, start, end int32) [8]int32 {
	s := t.Sys
	var counts [8]int32
	n := int(end - start)
	if pool := t.Cfg.Pool; pool != nil && n >= t.Cfg.ParallelCutoff {
		var mu syncCounts
		pool.ParallelRange(n, func(lo, hi int) {
			var local [8]int32
			for i := start + int32(lo); i < start+int32(hi); i++ {
				o := uint8(box.Octant(s.Pos[i]))
				t.octant[i] = o
				local[o]++
			}
			mu.add(&local)
		})
		counts = mu.counts
	} else {
		for i := start; i < end; i++ {
			o := uint8(box.Octant(s.Pos[i]))
			t.octant[i] = o
			counts[o]++
		}
	}
	var offs [8]int32
	off := int32(0)
	for o := 0; o < 8; o++ {
		offs[o] = off
		off += counts[o]
	}
	// Gather into scratch in octant order, then copy back. Each per-body
	// array is permuted identically.
	pos := t.permA[start:end]
	vel := t.permB[start:end]
	mass := t.permC[start:end]
	idx := t.permD[start:end]
	aux := t.permE[start:end]
	cur := offs
	for i := start; i < end; i++ {
		j := cur[t.octant[i]]
		cur[t.octant[i]]++
		pos[j] = s.Pos[i]
		vel[j] = s.Vel[i]
		mass[j] = s.Mass[i]
		idx[j] = s.Index[i]
		aux[j] = s.Aux[i]
	}
	copy(s.Pos[start:end], pos)
	copy(s.Vel[start:end], vel)
	copy(s.Mass[start:end], mass)
	copy(s.Index[start:end], idx)
	copy(s.Aux[start:end], aux)
	return counts
}

// syncCounts merges per-chunk octant counts under a mutex.
type syncCounts struct {
	mu     sync.Mutex
	counts [8]int32
}

func (c *syncCounts) add(local *[8]int32) {
	c.mu.Lock()
	for o := 0; o < 8; o++ {
		c.counts[o] += local[o]
	}
	c.mu.Unlock()
}

// Collapse hides the children of a visible internal node whose visible
// children are all leaves, making it act as a leaf (the paper's Collapse).
// It returns false when the node is not collapsible.
func (t *Tree) Collapse(ni int32) bool {
	n := &t.Nodes[ni]
	if n.IsVisibleLeaf() {
		return false
	}
	for _, ci := range n.Children {
		if ci == NilNode {
			continue
		}
		if !t.Nodes[ci].IsVisibleLeaf() {
			return false
		}
	}
	n.Collapsed = true
	t.invalidateLevels()
	t.markListsDirty(ni)
	return true
}

// PushDown subdivides a visible leaf: a collapsed node reclaims its hidden
// children, a structural leaf allocates new ones from the node buffer. It
// returns false when the node cannot be pushed down (too few bodies or at
// the depth limit).
func (t *Tree) PushDown(ni int32) bool {
	n := &t.Nodes[ni]
	if !n.IsVisibleLeaf() || n.Count() <= 1 || int(n.Level) >= t.Cfg.MaxDepth {
		return false
	}
	t.invalidateLevels()
	t.markListsDirty(ni)
	if n.Collapsed {
		// Reclaim hidden children: re-partition since bodies may have
		// moved while hidden.
		n.Collapsed = false
		n.Leaf = false
		t.repartitionInto(ni)
		return true
	}
	t.splitNode(ni)
	return true
}

// repartitionInto redistributes ni's body range into its existing children
// (all marked structural leaves afterwards).
func (t *Tree) repartitionInto(ni int32) {
	n := &t.Nodes[ni]
	counts := t.partition(n.Box, n.Start, n.End)
	off := n.Start
	for o := 0; o < 8; o++ {
		ci := n.Children[o]
		c := &t.Nodes[ci]
		c.Start = off
		c.End = off + counts[o]
		c.Leaf = true
		c.Collapsed = false
		off = c.End
	}
}

// EnforceS walks the visible tree restoring the capacity invariant for the
// current S: visible parents holding fewer than S bodies are collapsed,
// visible leaves holding more than S bodies are pushed down (recursively).
// It returns the number of collapse and pushdown operations performed.
func (t *Tree) EnforceS() (collapses, pushdowns int) {
	s := t.Cfg.S
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.Nodes[ni]
		if !n.IsVisibleLeaf() {
			for _, ci := range n.Children {
				if ci != NilNode && t.Nodes[ci].Count() > 0 {
					walk(ci)
				}
			}
			// Post-order: collapse underfull twigs (possibly cascading
			// upward through subsequent ancestors' walks).
			n = &t.Nodes[ni]
			if n.Count() < s && t.Collapse(ni) {
				collapses++
			}
			return
		}
		if n.Count() > s && int(n.Level) < t.Cfg.MaxDepth {
			if t.PushDown(ni) {
				pushdowns++
				for _, ci := range t.Nodes[ni].Children {
					if ci != NilNode && t.Nodes[ci].Count() > 0 {
						walk(ci)
					}
				}
			}
		}
	}
	walk(t.Root)
	return collapses, pushdowns
}

// Refill re-bins every body into the existing visible leaf structure after
// positions changed, reordering the particle arrays and refreshing all node
// ranges. Bodies that drifted outside the root cube are assigned to the
// nearest boundary leaf (their true positions are still used in all
// kernels). Structure is untouched; occupancy changes.
func (t *Tree) Refill() {
	t.ensureScratch()
	t.invalidateLevels()
	s := t.Sys
	n := s.Len()
	// Identify visible leaves in DFS order and give each a slot.
	leafSlot := make(map[int32]int32, 64)
	var leaves []int32
	var dfs func(ni int32)
	dfs = func(ni int32) {
		nd := &t.Nodes[ni]
		if nd.IsVisibleLeaf() {
			leafSlot[ni] = int32(len(leaves))
			leaves = append(leaves, ni)
			return
		}
		for _, ci := range nd.Children {
			if ci != NilNode {
				dfs(ci)
			}
		}
	}
	dfs(t.Root)

	// Bin bodies to leaves.
	slotOf := make([]int32, n)
	counts := make([]int32, len(leaves))
	root := &t.Nodes[t.Root]
	for i := 0; i < n; i++ {
		p := clampIntoBox(s.Pos[i], root.Box)
		ni := t.Root
		for !t.Nodes[ni].IsVisibleLeaf() {
			ni = t.Nodes[ni].Children[t.Nodes[ni].Box.Octant(p)]
		}
		slot := leafSlot[ni]
		slotOf[i] = slot
		counts[slot]++
	}
	// Prefix offsets in DFS leaf order.
	offs := make([]int32, len(leaves)+1)
	for k := range leaves {
		offs[k+1] = offs[k] + counts[k]
	}
	// Gather bodies into the new order.
	pos := t.permA[:n]
	vel := t.permB[:n]
	mass := t.permC[:n]
	idx := t.permD[:n]
	aux := t.permE[:n]
	cur := append([]int32(nil), offs[:len(leaves)]...)
	for i := 0; i < n; i++ {
		j := cur[slotOf[i]]
		cur[slotOf[i]]++
		pos[j] = s.Pos[i]
		vel[j] = s.Vel[i]
		mass[j] = s.Mass[i]
		idx[j] = s.Index[i]
		aux[j] = s.Aux[i]
	}
	copy(s.Pos, pos)
	copy(s.Vel, vel)
	copy(s.Mass, mass)
	copy(s.Index, idx)
	copy(s.Aux, aux)
	// Set leaf ranges, then propagate to ancestors.
	for k, ni := range leaves {
		t.Nodes[ni].Start = offs[k]
		t.Nodes[ni].End = offs[k+1]
	}
	t.refreshRanges(t.Root)
	// Occupancy changed: cached near-field weights are stale, and any
	// empty/non-empty flip changes the dual-traversal topology.
	t.nearWeightsOK = false
	t.noteRefillOccupancy()
}

// refreshRanges recomputes internal node ranges bottom-up from the visible
// leaves (hidden subtrees inherit their parent's range lazily when
// reclaimed by PushDown).
func (t *Tree) refreshRanges(ni int32) (start, end int32) {
	n := &t.Nodes[ni]
	if n.IsVisibleLeaf() {
		return n.Start, n.End
	}
	first := true
	for _, ci := range n.Children {
		if ci == NilNode {
			continue
		}
		cs, ce := t.refreshRanges(ci)
		if first {
			start, end = cs, ce
			first = false
		} else {
			if cs < start {
				start = cs
			}
			if ce > end {
				end = ce
			}
		}
	}
	n.Start, n.End = start, end
	return start, end
}

func clampIntoBox(p geom.Vec3, b geom.Box) geom.Vec3 {
	lo := b.Center.Sub(geom.Vec3{X: b.Half, Y: b.Half, Z: b.Half})
	hi := b.Center.Add(geom.Vec3{X: b.Half, Y: b.Half, Z: b.Half})
	eps := b.Half * 1e-12
	clampAxis := func(x, lo, hi float64) float64 {
		if x < lo {
			return lo
		}
		if x >= hi {
			return hi - eps
		}
		return x
	}
	return geom.Vec3{
		X: clampAxis(p.X, lo.X, hi.X),
		Y: clampAxis(p.Y, lo.Y, hi.Y),
		Z: clampAxis(p.Z, lo.Z, hi.Z),
	}
}

// LevelOrder returns the visible nodes grouped by level: element l holds
// the node indices with Node.Level == l, in DFS order, covering exactly
// the nodes WalkVisible reaches. The index is the backbone of the
// level-synchronous far-field sweeps (all nodes of one level are
// data-independent given the adjacent levels) and is cached until a
// structural or occupancy edit — Rebuild, Collapse, PushDown, EnforceS,
// Refill — invalidates it. The returned slices are owned by the tree and
// valid until the next invalidation.
func (t *Tree) LevelOrder() [][]int32 {
	if t.levelsOK {
		return t.levels
	}
	for i := range t.levels {
		t.levels[i] = t.levels[i][:0]
	}
	t.WalkVisible(func(ni int32) {
		lv := int(t.Nodes[ni].Level)
		for len(t.levels) <= lv {
			t.levels = append(t.levels, nil)
		}
		t.levels[lv] = append(t.levels[lv], ni)
	})
	for len(t.levels) > 0 && len(t.levels[len(t.levels)-1]) == 0 {
		t.levels = t.levels[:len(t.levels)-1]
	}
	t.levelsOK = true
	return t.levels
}

// invalidateLevels marks the cached level and leaf indices stale.
func (t *Tree) invalidateLevels() {
	t.levelsOK = false
	t.leavesOK = false
}

// VisibleLeaves returns the indices of the visible leaves in DFS order.
// Like LevelOrder it is cached until the next structural or occupancy edit;
// the returned slice is owned by the tree and valid until then.
func (t *Tree) VisibleLeaves() []int32 {
	if t.leavesOK {
		return t.leaves
	}
	t.leaves = t.leaves[:0]
	t.WalkVisible(func(ni int32) {
		if t.Nodes[ni].IsVisibleLeaf() {
			t.leaves = append(t.leaves, ni)
		}
	})
	t.leavesOK = true
	return t.leaves
}

// WalkVisible calls f for every visible node in DFS preorder, skipping
// empty subtrees.
func (t *Tree) WalkVisible(f func(ni int32)) {
	var dfs func(ni int32)
	dfs = func(ni int32) {
		n := &t.Nodes[ni]
		if n.Count() == 0 {
			return
		}
		f(ni)
		if n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode {
				dfs(ci)
			}
		}
	}
	dfs(t.Root)
}

// Stats summarizes the visible tree shape.
type Stats struct {
	Nodes         int // allocated arena nodes
	VisibleNodes  int
	VisibleLeaves int
	MaxDepth      int
	MinLeafDepth  int
	MaxLeafOcc    int
	AvgLeafOcc    float64
}

// ComputeStats returns shape statistics of the visible tree.
func (t *Tree) ComputeStats() Stats {
	st := Stats{Nodes: len(t.Nodes), MinLeafDepth: 1 << 30}
	var occ int
	t.WalkVisible(func(ni int32) {
		n := &t.Nodes[ni]
		st.VisibleNodes++
		if int(n.Level) > st.MaxDepth {
			st.MaxDepth = int(n.Level)
		}
		if n.IsVisibleLeaf() {
			st.VisibleLeaves++
			occ += n.Count()
			if n.Count() > st.MaxLeafOcc {
				st.MaxLeafOcc = n.Count()
			}
			if int(n.Level) < st.MinLeafDepth {
				st.MinLeafDepth = int(n.Level)
			}
		}
	})
	if st.VisibleLeaves > 0 {
		st.AvgLeafOcc = float64(occ) / float64(st.VisibleLeaves)
	} else {
		st.MinLeafDepth = 0
	}
	return st
}

// Validate checks structural invariants: ranges partition correctly, every
// body lies in its leaf range, child boxes tile parents, and the visible
// leaves partition [0, N).
func (t *Tree) Validate() error {
	s := t.Sys
	if err := s.Validate(); err != nil {
		return err
	}
	var leaves []int32
	var dfs func(ni int32) error
	dfs = func(ni int32) error {
		n := &t.Nodes[ni]
		if n.Start > n.End || n.Start < 0 || int(n.End) > s.Len() {
			return fmt.Errorf("octree: node %d bad range [%d,%d)", ni, n.Start, n.End)
		}
		if n.IsVisibleLeaf() {
			leaves = append(leaves, ni)
			return nil
		}
		off := n.Start
		for o, ci := range n.Children {
			if ci == NilNode {
				return fmt.Errorf("octree: internal node %d missing child %d", ni, o)
			}
			c := &t.Nodes[ci]
			if c.Parent != ni {
				return fmt.Errorf("octree: child %d of %d has parent %d", ci, ni, c.Parent)
			}
			if c.Start != off {
				return fmt.Errorf("octree: child %d range not contiguous: start %d want %d", ci, c.Start, off)
			}
			off = c.End
			if err := dfs(ci); err != nil {
				return err
			}
		}
		if off != n.End {
			return fmt.Errorf("octree: node %d children cover [%d,%d) want end %d", ni, n.Start, off, n.End)
		}
		return nil
	}
	if err := dfs(t.Root); err != nil {
		return err
	}
	covered := int32(0)
	for _, ni := range leaves {
		n := &t.Nodes[ni]
		if n.Start != covered {
			return fmt.Errorf("octree: leaf %d starts at %d want %d", ni, n.Start, covered)
		}
		covered = n.End
	}
	if covered != int32(s.Len()) {
		return fmt.Errorf("octree: leaves cover %d bodies, want %d", covered, s.Len())
	}
	return nil
}
