package octree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/particle"
	"afmm/internal/sched"
)

func buildPlummer(t *testing.T, n, s int) *Tree {
	t.Helper()
	sys := distrib.Plummer(n, 1, 1, 42)
	tr := Build(sys, Config{S: s})
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	return tr
}

func TestBuildInvariants(t *testing.T) {
	for _, s := range []int{1, 4, 16, 64, 1000} {
		tr := buildPlummer(t, 2000, s)
		st := tr.ComputeStats()
		if st.VisibleLeaves == 0 {
			t.Fatalf("S=%d: no leaves", s)
		}
		// Every visible leaf obeys the capacity bound (up to MaxDepth).
		tr.WalkVisible(func(ni int32) {
			n := &tr.Nodes[ni]
			if n.IsVisibleLeaf() && n.Count() > s && int(n.Level) < tr.Cfg.MaxDepth {
				t.Errorf("S=%d: leaf %d holds %d bodies", s, ni, n.Count())
			}
		})
	}
}

func TestBodiesInsideLeafBoxes(t *testing.T) {
	tr := buildPlummer(t, 1000, 8)
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if !n.IsVisibleLeaf() {
			return
		}
		for i := n.Start; i < n.End; i++ {
			if !n.Box.Contains(tr.Sys.Pos[i]) {
				t.Errorf("body %d outside its leaf box", i)
			}
		}
	})
}

func TestCollapsePushDownRoundTrip(t *testing.T) {
	tr := buildPlummer(t, 500, 8)
	// Find a twig (internal node whose children are all visible leaves).
	var twig int32 = NilNode
	tr.WalkVisible(func(ni int32) {
		if twig != NilNode {
			return
		}
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci == NilNode || !tr.Nodes[ci].IsVisibleLeaf() {
				return
			}
		}
		twig = ni
	})
	if twig == NilNode {
		t.Skip("no twig found")
	}
	before := tr.ComputeStats()
	if !tr.Collapse(twig) {
		t.Fatal("collapse failed on twig")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after collapse: %v", err)
	}
	if !tr.Nodes[twig].IsVisibleLeaf() {
		t.Fatal("collapsed node not a visible leaf")
	}
	if !tr.PushDown(twig) {
		t.Fatal("pushdown failed on collapsed node")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after pushdown: %v", err)
	}
	after := tr.ComputeStats()
	if before.VisibleLeaves != after.VisibleLeaves {
		t.Fatalf("leaf count changed across round trip: %d -> %d",
			before.VisibleLeaves, after.VisibleLeaves)
	}
}

func TestPushDownStructuralLeaf(t *testing.T) {
	tr := buildPlummer(t, 300, 64)
	var leaf int32 = NilNode
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if leaf == NilNode && n.IsVisibleLeaf() && n.Count() > 1 {
			leaf = ni
		}
	})
	if leaf == NilNode {
		t.Skip("no splittable leaf")
	}
	if !tr.PushDown(leaf) {
		t.Fatal("pushdown failed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after pushdown: %v", err)
	}
	if tr.Nodes[leaf].IsVisibleLeaf() {
		t.Fatal("pushed-down node still a leaf")
	}
}

func TestEnforceSAfterMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := buildPlummer(t, 2000, 16)
	// Contract all bodies toward the center, creating overfull central
	// leaves and underfull outer twigs.
	for i := range tr.Sys.Pos {
		tr.Sys.Pos[i] = tr.Sys.Pos[i].Scale(0.2 + 0.05*rng.Float64())
	}
	tr.Refill()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	c, p := tr.EnforceS()
	if c+p == 0 {
		t.Fatal("EnforceS made no changes after heavy movement")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after EnforceS: %v", err)
	}
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() && n.Count() > tr.Cfg.S && int(n.Level) < tr.Cfg.MaxDepth {
			t.Errorf("leaf %d overfull after EnforceS: %d > %d", ni, n.Count(), tr.Cfg.S)
		}
	})
}

func TestRefillPreservesBodies(t *testing.T) {
	tr := buildPlummer(t, 1000, 16)
	rng := rand.New(rand.NewSource(3))
	sum := geom.Vec3{}
	for i := range tr.Sys.Pos {
		tr.Sys.Pos[i] = tr.Sys.Pos[i].Add(geom.Vec3{
			X: 0.1 * rng.NormFloat64(),
			Y: 0.1 * rng.NormFloat64(),
			Z: 0.1 * rng.NormFloat64(),
		})
		sum = sum.Add(tr.Sys.Pos[i])
	}
	tr.Refill()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	sum2 := geom.Vec3{}
	for _, p := range tr.Sys.Pos {
		sum2 = sum2.Add(p)
	}
	if sum.Sub(sum2).Norm() > 1e-9 {
		t.Fatal("refill lost or duplicated bodies")
	}
}

func TestUniformModeFixedDepth(t *testing.T) {
	sys := distrib.UniformCube(4096, 1, 1)
	tr := Build(sys, Config{S: 8, Mode: Uniform})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := tr.UniformDepth
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() && n.Count() > 0 && int(n.Level) != want {
			// Cells holding a single body may terminate early only when
			// shouldSplit stops at count <= 1? Uniform mode splits any
			// occupied cell, so every occupied leaf sits at the target.
			t.Errorf("uniform leaf at level %d, want %d", n.Level, want)
		}
	})
	// ceil(log8(4096/8)) = ceil(log8(512)) = 3.
	if want != 3 {
		t.Fatalf("uniform depth = %d, want 3", want)
	}
}

func TestInteractionListsCoverAllPairsOnce(t *testing.T) {
	for _, tc := range []struct {
		n, s int
		seed int64
	}{
		{60, 4, 1},
		{200, 8, 2},
		{120, 1, 3},
	} {
		sys := distrib.Plummer(tc.n, 1, 1, tc.seed)
		tr := Build(sys, Config{S: tc.s})
		tr.BuildLists()
		if err := tr.ValidateLists(); err != nil {
			t.Fatalf("n=%d s=%d: %v", tc.n, tc.s, err)
		}
	}
}

func TestInteractionListsCoverAfterModifications(t *testing.T) {
	sys := distrib.Plummer(300, 1, 1, 9)
	tr := Build(sys, Config{S: 8})
	// Collapse some twigs, push down some leaves, then re-check coverage.
	var twigs, leaves []int32
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() {
			if n.Count() > 1 {
				leaves = append(leaves, ni)
			}
			return
		}
		ok := true
		for _, ci := range n.Children {
			if ci == NilNode || !tr.Nodes[ci].IsVisibleLeaf() {
				ok = false
				break
			}
		}
		if ok {
			twigs = append(twigs, ni)
		}
	})
	for i, ni := range twigs {
		if i%2 == 0 {
			tr.Collapse(ni)
		}
	}
	for i, ni := range leaves {
		if i%3 == 0 && tr.Nodes[ni].IsVisibleLeaf() {
			tr.PushDown(ni)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.BuildLists()
	if err := tr.ValidateLists(); err != nil {
		t.Fatal(err)
	}
}

func TestCountOpsConsistency(t *testing.T) {
	tr := buildPlummer(t, 1000, 16)
	tr.BuildLists()
	c := tr.CountOps()
	if c.P2M != 1000 || c.L2P != 1000 {
		t.Fatalf("P2M/L2P = %d/%d, want 1000", c.P2M, c.L2P)
	}
	if c.M2M != c.L2L {
		t.Fatalf("M2M=%d L2L=%d should match", c.M2M, c.L2L)
	}
	if c.P2P <= 0 || c.M2L <= 0 {
		t.Fatalf("degenerate counts: %+v", c)
	}
	// P2P must include at least each leaf's self interactions.
	var self int64
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() {
			self += int64(n.Count()) * int64(n.Count())
		}
	})
	if c.P2P < self {
		t.Fatalf("P2P=%d below self-interaction floor %d", c.P2P, self)
	}
}

func TestLeafInteractionsMatchCountOps(t *testing.T) {
	tr := buildPlummer(t, 800, 8)
	tr.BuildLists()
	c := tr.CountOps()
	_, inter := tr.LeafInteractions()
	var sum int64
	for _, v := range inter {
		sum += v
	}
	if sum != c.P2P {
		t.Fatalf("leaf interactions sum %d != CountOps P2P %d", sum, c.P2P)
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	sysA := distrib.Plummer(5000, 1, 1, 11)
	sysB := sysA.Clone()
	trA := Build(sysA, Config{S: 32})
	trB := Build(sysB, Config{S: 32, Pool: sched.NewPool(4), ParallelCutoff: 64})
	if err := trB.Validate(); err != nil {
		t.Fatal(err)
	}
	sa, sb := trA.ComputeStats(), trB.ComputeStats()
	if sa != sb {
		t.Fatalf("parallel build stats differ: %+v vs %+v", sa, sb)
	}
	for i := range sysA.Pos {
		if sysA.Pos[i] != sysB.Pos[i] || sysA.Index[i] != sysB.Index[i] {
			t.Fatalf("body order diverged at %d", i)
		}
	}
}

// Property: building a tree over arbitrary bounded point sets always yields
// a valid structure whose leaves partition the bodies.
func TestQuickBuildAlwaysValid(t *testing.T) {
	f := func(seed int64, sRaw uint8, nRaw uint16) bool {
		n := int(nRaw)%400 + 1
		s := int(sRaw)%50 + 1
		sys := distrib.UniformCube(n, 10, seed)
		tr := Build(sys, Config{S: s})
		if err := tr.Validate(); err != nil {
			t.Logf("n=%d s=%d: %v", n, s, err)
			return false
		}
		tr.BuildLists()
		c := tr.CountOps()
		return c.P2M == int64(n) && c.L2P == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Refill after arbitrary drift keeps the tree valid and keeps
// every body accounted for exactly once.
func TestQuickRefillValid(t *testing.T) {
	f := func(seed int64, drift uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := distrib.Plummer(300, 1, 1, seed)
		tr := Build(sys, Config{S: 8})
		d := float64(drift) / 64
		for i := range sys.Pos {
			sys.Pos[i] = sys.Pos[i].Add(geom.Vec3{
				X: d * rng.NormFloat64(),
				Y: d * rng.NormFloat64(),
				Z: d * rng.NormFloat64(),
			})
		}
		tr.Refill()
		if err := tr.Validate(); err != nil {
			t.Logf("drift %v: %v", d, err)
			return false
		}
		tr.EnforceS()
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBodyAndEmpty(t *testing.T) {
	one := particle.New(1)
	tr := Build(one, Config{S: 4})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.BuildLists()
	c := tr.CountOps()
	if c.P2P != 1 {
		t.Fatalf("single body should self-interact once, got %d", c.P2P)
	}

	empty := particle.New(0)
	tre := Build(empty, Config{S: 4})
	if err := tre.Validate(); err != nil {
		t.Fatal(err)
	}
	tre.BuildLists()
}

func TestParallelListsMatchSequential(t *testing.T) {
	sysA := distrib.Plummer(4000, 1, 1, 31)
	sysB := sysA.Clone()
	seq := Build(sysA, Config{S: 16})
	par := Build(sysB, Config{S: 16, Pool: sched.NewPool(4), ParallelCutoff: 64})
	seq.BuildLists()
	par.BuildLists()
	if len(seq.Nodes) != len(par.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(seq.Nodes), len(par.Nodes))
	}
	asSet := func(s []int32) map[int32]bool {
		m := make(map[int32]bool, len(s))
		for _, v := range s {
			m[v] = true
		}
		return m
	}
	for i := range seq.Nodes {
		us, up := asSet(seq.Nodes[i].U), asSet(par.Nodes[i].U)
		vs, vp := asSet(seq.Nodes[i].V), asSet(par.Nodes[i].V)
		if len(us) != len(up) || len(vs) != len(vp) {
			t.Fatalf("node %d list sizes differ: U %d/%d V %d/%d",
				i, len(us), len(up), len(vs), len(vp))
		}
		for k := range us {
			if !up[k] {
				t.Fatalf("node %d: U entry %d missing in parallel lists", i, k)
			}
		}
		for k := range vs {
			if !vp[k] {
				t.Fatalf("node %d: V entry %d missing in parallel lists", i, k)
			}
		}
	}
	if seq.CountOps() != par.CountOps() {
		t.Fatal("op counts differ between sequential and parallel lists")
	}
}

func TestRenderSummarizesTree(t *testing.T) {
	tr := buildPlummer(t, 2000, 16)
	out := tr.Render()
	if !strings.Contains(out, "2000 bodies") || !strings.Contains(out, "leaf occupancy") {
		t.Fatalf("render output missing sections:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatal("render too short")
	}
}

// checkLevelOrder asserts the LevelOrder invariants: every visible node
// appears exactly once, in the slice matching its Node.Level, and the
// grouping covers exactly the WalkVisible set.
func checkLevelOrder(t *testing.T, tr *Tree) {
	t.Helper()
	levels := tr.LevelOrder()
	seen := make(map[int32]int)
	for lv, nodes := range levels {
		for _, ni := range nodes {
			if got := int(tr.Nodes[ni].Level); got != lv {
				t.Fatalf("node %d grouped at level %d but has Level %d", ni, lv, got)
			}
			seen[ni]++
		}
	}
	visible := 0
	tr.WalkVisible(func(ni int32) {
		visible++
		if seen[ni] != 1 {
			t.Fatalf("visible node %d appears %d times in LevelOrder", ni, seen[ni])
		}
	})
	if visible != len(seen) {
		t.Fatalf("LevelOrder holds %d nodes, WalkVisible reaches %d", len(seen), visible)
	}
	if len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		t.Fatal("LevelOrder has an empty trailing level")
	}
}

func TestLevelOrderMatchesWalkVisible(t *testing.T) {
	for _, s := range []int{1, 8, 64, 1000} {
		tr := buildPlummer(t, 3000, s)
		checkLevelOrder(t, tr)
	}
}

func TestLevelOrderTracksTreeEdits(t *testing.T) {
	tr := buildPlummer(t, 2000, 16)
	checkLevelOrder(t, tr)

	// Collapse every collapsible twig and re-check.
	var twigs []int32
	tr.WalkVisible(func(ni int32) {
		n := &tr.Nodes[ni]
		if n.IsVisibleLeaf() {
			return
		}
		for _, ci := range n.Children {
			if ci != NilNode && !tr.Nodes[ci].IsVisibleLeaf() {
				return
			}
		}
		twigs = append(twigs, ni)
	})
	collapsed := 0
	for _, ni := range twigs {
		if tr.Collapse(ni) {
			collapsed++
		}
	}
	if collapsed == 0 {
		t.Fatal("no twig collapsed")
	}
	checkLevelOrder(t, tr)

	// Push one collapsed node back down.
	for _, ni := range twigs {
		if tr.Nodes[ni].Collapsed && tr.PushDown(ni) {
			break
		}
	}
	checkLevelOrder(t, tr)

	// EnforceS after an S change must refresh the index.
	tr.Cfg.S = 64
	tr.EnforceS()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkLevelOrder(t, tr)

	// Refill after motion changes occupancy (empty leaves drop out of the
	// visible set).
	rng := rand.New(rand.NewSource(7))
	for i := range tr.Sys.Pos {
		tr.Sys.Pos[i] = tr.Sys.Pos[i].Add(geom.Vec3{
			X: rng.NormFloat64() * 0.1,
			Y: rng.NormFloat64() * 0.1,
			Z: rng.NormFloat64() * 0.1,
		})
	}
	tr.Refill()
	checkLevelOrder(t, tr)

	// Rebuild resets the index entirely.
	tr.Rebuild(32)
	checkLevelOrder(t, tr)
}

func TestLevelOrderCachedUntilEdit(t *testing.T) {
	tr := buildPlummer(t, 500, 8)
	a := tr.LevelOrder()
	b := tr.LevelOrder()
	if len(a) != len(b) {
		t.Fatal("repeated LevelOrder calls disagree")
	}
	for lv := range a {
		if len(a[lv]) == 0 {
			continue
		}
		if &a[lv][0] != &b[lv][0] {
			t.Fatal("LevelOrder rebuilt without an intervening edit")
		}
	}
}
