package particle

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadXYZ throws arbitrary bytes at the snapshot parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadXYZ(f *testing.F) {
	var buf bytes.Buffer
	s := New(3)
	WriteXYZ(&buf, s, "seed")
	f.Add(buf.String())
	f.Add("")
	f.Add("1\nc\n1 2 3 4 5 6 7\n")
	f.Add("9999999999\nc\n")
	f.Fuzz(func(t *testing.T, data string) {
		sys, comment, err := ReadXYZ(strings.NewReader(data))
		if err != nil {
			return
		}
		if sys == nil {
			t.Fatal("nil system without error")
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("accepted invalid system: %v", err)
		}
		var out bytes.Buffer
		if err := WriteXYZ(&out, sys, comment); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		sys2, _, err := ReadXYZ(&out)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		for i := range sys.Pos {
			if sys.Pos[i] != sys2.Pos[i] {
				t.Fatal("round trip changed positions")
			}
		}
	})
}
