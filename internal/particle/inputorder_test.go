package particle

import (
	"testing"

	"afmm/internal/geom"
	"afmm/internal/sched"
)

// permutedSystem builds a system whose storage order differs from input
// order (a few Swaps, like tree construction does) with recognizable
// accumulator values.
func permutedSystem(n int) *System {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Pos[i] = geom.Vec3{X: float64(i)}
		s.Phi[i] = float64(i)
		s.Acc[i] = geom.Vec3{X: float64(i), Y: 2 * float64(i), Z: -float64(i)}
	}
	for i := 0; i < n/2; i += 3 {
		s.Swap(i, n-1-i)
	}
	return s
}

func TestInputOrderIntoReusesBuffer(t *testing.T) {
	s := permutedSystem(100)
	wantPhi := s.PhiInInputOrder()
	wantAcc := s.AccInInputOrder()

	// A large-enough destination must be reused in place (same backing
	// array), not reallocated.
	phiBuf := make([]float64, 0, 100)
	accBuf := make([]geom.Vec3, 200) // oversized: result must shrink to n
	gotPhi := s.PhiInInputOrderInto(phiBuf)
	gotAcc := s.AccInInputOrderInto(accBuf)
	if &gotPhi[0] != &phiBuf[:1][0] {
		t.Fatalf("PhiInInputOrderInto reallocated despite sufficient capacity")
	}
	if &gotAcc[0] != &accBuf[0] {
		t.Fatalf("AccInInputOrderInto reallocated despite sufficient capacity")
	}
	if len(gotPhi) != s.Len() || len(gotAcc) != s.Len() {
		t.Fatalf("Into results have lengths %d/%d, want %d", len(gotPhi), len(gotAcc), s.Len())
	}
	for i := range wantPhi {
		if gotPhi[i] != wantPhi[i] || gotAcc[i] != wantAcc[i] {
			t.Fatalf("Into result differs at %d", i)
		}
	}

	// Values land at their input index regardless of storage order.
	for i := range gotPhi {
		if gotPhi[i] != float64(i) {
			t.Fatalf("phi[%d] = %g after permute, want %d", i, gotPhi[i], i)
		}
	}

	// A short buffer grows.
	short := s.PhiInInputOrderInto(make([]float64, 0, 3))
	if len(short) != s.Len() {
		t.Fatalf("short-buffer grow produced len %d", len(short))
	}
}

func TestResetAccumulatorsParallel(t *testing.T) {
	pool := sched.NewPool(4)
	for _, p := range []*sched.Pool{nil, pool} {
		s := permutedSystem(10000)
		s.ResetAccumulatorsParallel(p)
		for i := range s.Phi {
			if s.Phi[i] != 0 || s.Acc[i] != (geom.Vec3{}) {
				t.Fatalf("accumulator %d not zeroed (pool=%v)", i, p != nil)
			}
		}
	}
}
