// Package particle stores the bodies of an N-body system in
// structure-of-arrays layout. The octree reorders bodies for locality; the
// permutation is tracked so callers can map results back to input order.
package particle

import (
	"fmt"

	"afmm/internal/geom"
	"afmm/internal/sched"
)

// System holds N bodies. Pos, Vel and Mass always have length N.
// Phi and Acc are accumulation targets for a solve; they are (re)sized and
// zeroed by ResetAccumulators.
//
// Index holds, for each storage slot i, the original (input-order) id of
// the body now stored there. A freshly created System has Index[i] = i.
type System struct {
	Pos  []geom.Vec3
	Vel  []geom.Vec3
	Mass []float64

	// Phi accumulates potential, Acc accumulates acceleration (or, for
	// Stokes problems, velocity). Both are in storage order.
	Phi []float64
	Acc []geom.Vec3

	// Aux is a per-body vector that permutes with the bodies; Stokes
	// problems store the point forces here.
	Aux []geom.Vec3

	Index []int
}

// New creates a System of n bodies with unit masses and identity index.
func New(n int) *System {
	s := &System{
		Pos:   make([]geom.Vec3, n),
		Vel:   make([]geom.Vec3, n),
		Mass:  make([]float64, n),
		Phi:   make([]float64, n),
		Acc:   make([]geom.Vec3, n),
		Aux:   make([]geom.Vec3, n),
		Index: make([]int, n),
	}
	for i := range s.Mass {
		s.Mass[i] = 1
		s.Index[i] = i
	}
	return s
}

// Len returns the number of bodies.
func (s *System) Len() int { return len(s.Pos) }

// ResetAccumulators zeroes Phi and Acc ahead of a solve.
func (s *System) ResetAccumulators() {
	for i := range s.Phi {
		s.Phi[i] = 0
		s.Acc[i] = geom.Vec3{}
	}
}

// ResetAccumulatorsParallel zeroes Phi and Acc on the pool — the O(N)
// zeroing loop sits on the hot path of every solve, and at large N it is
// memory-bandwidth work that splits cleanly. A nil pool falls back to the
// serial loop.
func (s *System) ResetAccumulatorsParallel(p *sched.Pool) {
	if p == nil {
		s.ResetAccumulators()
		return
	}
	p.ParallelRange(len(s.Phi), func(lo, hi int) {
		phi := s.Phi[lo:hi]
		acc := s.Acc[lo:hi]
		for i := range phi {
			phi[i] = 0
			acc[i] = geom.Vec3{}
		}
	})
}

// Swap exchanges bodies i and j in every per-body array.
func (s *System) Swap(i, j int) {
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
	s.Mass[i], s.Mass[j] = s.Mass[j], s.Mass[i]
	s.Phi[i], s.Phi[j] = s.Phi[j], s.Phi[i]
	s.Acc[i], s.Acc[j] = s.Acc[j], s.Acc[i]
	s.Aux[i], s.Aux[j] = s.Aux[j], s.Aux[i]
	s.Index[i], s.Index[j] = s.Index[j], s.Index[i]
}

// Validate checks internal consistency of the slice lengths and that Index
// is a permutation of 0..n-1.
func (s *System) Validate() error {
	n := len(s.Pos)
	if len(s.Vel) != n || len(s.Mass) != n || len(s.Phi) != n ||
		len(s.Acc) != n || len(s.Aux) != n || len(s.Index) != n {
		return fmt.Errorf("particle: inconsistent array lengths (n=%d)", n)
	}
	seen := make([]bool, n)
	for _, id := range s.Index {
		if id < 0 || id >= n {
			return fmt.Errorf("particle: index %d out of range [0,%d)", id, n)
		}
		if seen[id] {
			return fmt.Errorf("particle: duplicate index %d", id)
		}
		seen[id] = true
	}
	return nil
}

// AccInInputOrder returns a copy of Acc permuted back to the original
// input order of the bodies.
func (s *System) AccInInputOrder() []geom.Vec3 {
	return s.AccInInputOrderInto(nil)
}

// AccInInputOrderInto permutes Acc back to input order into dst, growing
// it only when its capacity is insufficient — so per-step callers can
// reuse one buffer and stay allocation-free. The (possibly reallocated)
// buffer is returned.
func (s *System) AccInInputOrderInto(dst []geom.Vec3) []geom.Vec3 {
	n := len(s.Acc)
	if cap(dst) < n {
		dst = make([]geom.Vec3, n)
	}
	dst = dst[:n]
	for i, id := range s.Index {
		dst[id] = s.Acc[i]
	}
	return dst
}

// PhiInInputOrder returns a copy of Phi permuted back to input order.
func (s *System) PhiInInputOrder() []float64 {
	return s.PhiInInputOrderInto(nil)
}

// PhiInInputOrderInto permutes Phi back to input order into dst (see
// AccInInputOrderInto for the reuse contract).
func (s *System) PhiInInputOrderInto(dst []float64) []float64 {
	n := len(s.Phi)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i, id := range s.Index {
		dst[id] = s.Phi[i]
	}
	return dst
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{
		Pos:   append([]geom.Vec3(nil), s.Pos...),
		Vel:   append([]geom.Vec3(nil), s.Vel...),
		Mass:  append([]float64(nil), s.Mass...),
		Phi:   append([]float64(nil), s.Phi...),
		Acc:   append([]geom.Vec3(nil), s.Acc...),
		Aux:   append([]geom.Vec3(nil), s.Aux...),
		Index: append([]int(nil), s.Index...),
	}
	return c
}

// TotalMass returns the sum of body masses.
func (s *System) TotalMass() float64 {
	var m float64
	for _, mi := range s.Mass {
		m += mi
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position. It returns the
// origin for an empty or massless system.
func (s *System) CenterOfMass() geom.Vec3 {
	var c geom.Vec3
	var m float64
	for i, p := range s.Pos {
		c = c.Add(p.Scale(s.Mass[i]))
		m += s.Mass[i]
	}
	if m == 0 {
		return geom.Vec3{}
	}
	return c.Scale(1 / m)
}
