package particle

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"afmm/internal/geom"
)

func TestNewSystemDefaults(t *testing.T) {
	s := New(5)
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 5; i++ {
		if s.Mass[i] != 1 || s.Index[i] != i {
			t.Fatalf("defaults wrong at %d: mass=%v index=%v", i, s.Mass[i], s.Index[i])
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapKeepsValidity(t *testing.T) {
	s := New(10)
	for i := range s.Pos {
		s.Pos[i] = geom.Vec3{X: float64(i)}
		s.Aux[i] = geom.Vec3{Y: float64(i)}
	}
	s.Swap(2, 7)
	if s.Pos[2].X != 7 || s.Pos[7].X != 2 {
		t.Fatal("positions not swapped")
	}
	if s.Aux[2].Y != 7 || s.Aux[7].Y != 2 {
		t.Fatal("aux not swapped")
	}
	if s.Index[2] != 7 || s.Index[7] != 2 {
		t.Fatal("index not swapped")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	s := New(4)
	s.Index[0] = 2 // duplicate of Index[2]
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate index not detected")
	}
	s = New(4)
	s.Index[3] = 9
	if err := s.Validate(); err == nil {
		t.Fatal("out-of-range index not detected")
	}
	s = New(4)
	s.Phi = s.Phi[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestInputOrderRoundTrip(t *testing.T) {
	// After arbitrary swaps, AccInInputOrder must undo the permutation.
	f := func(swaps []uint8) bool {
		s := New(16)
		for i := range s.Acc {
			s.Acc[i] = geom.Vec3{X: float64(i)}
			s.Phi[i] = float64(i)
		}
		for k := 0; k+1 < len(swaps) && k < 40; k += 2 {
			s.Swap(int(swaps[k])%16, int(swaps[k+1])%16)
		}
		acc := s.AccInInputOrder()
		phi := s.PhiInInputOrder()
		for id := 0; id < 16; id++ {
			if acc[id].X != float64(id) || phi[id] != float64(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New(3)
	c := s.Clone()
	c.Pos[0].X = 42
	c.Mass[1] = 9
	if s.Pos[0].X == 42 || s.Mass[1] == 9 {
		t.Fatal("clone aliases original")
	}
}

func TestCenterOfMassAndTotals(t *testing.T) {
	s := New(2)
	s.Pos[0] = geom.Vec3{X: -1}
	s.Pos[1] = geom.Vec3{X: 3}
	s.Mass[0] = 1
	s.Mass[1] = 3
	if got := s.TotalMass(); got != 4 {
		t.Fatalf("total mass %v", got)
	}
	com := s.CenterOfMass()
	if com.Sub(geom.Vec3{X: 2}).Norm() > 1e-15 {
		t.Fatalf("com %v", com)
	}
	empty := New(0)
	if empty.CenterOfMass() != (geom.Vec3{}) {
		t.Fatal("empty com not origin")
	}
}

func TestResetAccumulators(t *testing.T) {
	s := New(3)
	s.Phi[1] = 5
	s.Acc[2] = geom.Vec3{X: 1}
	s.ResetAccumulators()
	for i := range s.Phi {
		if s.Phi[i] != 0 || s.Acc[i] != (geom.Vec3{}) {
			t.Fatal("accumulators not reset")
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	s := New(5)
	for i := range s.Pos {
		s.Pos[i] = geom.Vec3{X: float64(i) * 1.5, Y: -float64(i), Z: 0.25}
		s.Vel[i] = geom.Vec3{X: 1e-17 * float64(i), Y: 2, Z: 3}
		s.Mass[i] = float64(i) + 0.5
	}
	s.Swap(0, 4) // storage order differs from input order
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, s, "test snapshot\nwith newline"); err != nil {
		t.Fatal(err)
	}
	got, comment, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if comment != "test snapshot with newline" {
		t.Fatalf("comment %q", comment)
	}
	// Compare in input order.
	orig := make(map[int][3]float64)
	for storage, id := range s.Index {
		orig[id] = [3]float64{s.Pos[storage].X, s.Pos[storage].Y, s.Pos[storage].Z}
	}
	for id := 0; id < 5; id++ {
		want := orig[id]
		if got.Pos[id].X != want[0] || got.Pos[id].Y != want[1] || got.Pos[id].Z != want[2] {
			t.Fatalf("body %d position mismatch", id)
		}
	}
}

func TestReadXYZRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"abc\ncomment\n",
		"2\ncomment\n1 2 3 4 5 6 7\n",    // truncated
		"1\ncomment\n1 2 3 4 5 6\n",      // missing field
		"1\ncomment\n1 2 3 nope 5 6 7\n", // bad float
	}
	for i, c := range cases {
		if _, _, err := ReadXYZ(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
