package particle

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"afmm/internal/geom"
)

// WriteXYZ writes the system in extended-XYZ form (count line, comment
// line, then "mass x y z vx vy vz" per body, in input order) — the
// interchange format molecular/N-body tools expect.
func WriteXYZ(w io.Writer, s *System, comment string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n%s\n", s.Len(), strings.ReplaceAll(comment, "\n", " ")); err != nil {
		return err
	}
	// Emit in input order for stable interchange.
	loc := make([]int, s.Len())
	for storage, id := range s.Index {
		loc[id] = storage
	}
	for id := 0; id < s.Len(); id++ {
		i := loc[id]
		if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
			s.Mass[i], s.Pos[i].X, s.Pos[i].Y, s.Pos[i].Z,
			s.Vel[i].X, s.Vel[i].Y, s.Vel[i].Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadXYZ parses the format written by WriteXYZ.
func ReadXYZ(r io.Reader) (*System, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, "", fmt.Errorf("particle: missing count line")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || n < 0 {
		return nil, "", fmt.Errorf("particle: bad count line %q", sc.Text())
	}
	if !sc.Scan() {
		return nil, "", fmt.Errorf("particle: missing comment line")
	}
	comment := sc.Text()
	// Parse incrementally: a hostile count line must not drive a huge
	// up-front allocation — the body lines have to actually be there.
	type row struct {
		mass     float64
		pos, vel geom.Vec3
	}
	var rows []row
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, "", fmt.Errorf("particle: truncated at body %d of %d", i, n)
		}
		f := strings.Fields(sc.Text())
		if len(f) != 7 {
			return nil, "", fmt.Errorf("particle: body %d has %d fields, want 7", i, len(f))
		}
		var v [7]float64
		for k, tok := range f {
			v[k], err = strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, "", fmt.Errorf("particle: body %d field %d: %w", i, k, err)
			}
		}
		rows = append(rows, row{
			mass: v[0],
			pos:  geom.Vec3{X: v[1], Y: v[2], Z: v[3]},
			vel:  geom.Vec3{X: v[4], Y: v[5], Z: v[6]},
		})
	}
	s := New(len(rows))
	for i, r := range rows {
		s.Mass[i] = r.mass
		s.Pos[i] = r.pos
		s.Vel[i] = r.vel
	}
	return s, comment, sc.Err()
}
