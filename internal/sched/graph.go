package sched

import (
	"errors"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Task-graph runtime: dependency-driven execution on top of Pool, the
// data-driven alternative to the fork-join phase barriers (Ltaief &
// Yokota, "Data-Driven Execution of Fast Multipole Methods"; Agullo et
// al., "Pipelining the Fast Multipole Method over a Runtime System").
// Nodes are closures tagged with a work Class and a data-locality hint;
// edges are dependencies. A node becomes runnable when its in-degree
// drops to zero; runnable nodes are pushed to per-class ready queues
// drained by tasks admitted through the pool's existing worker slots, so
// reserved-slot semantics (ClassNear on the reserved partition) carry
// over unchanged and a graph execution can share the pool with
// conventional parallel ranges.
//
// The runtime makes no scheduling promises beyond dependency order —
// bit-identical results therefore require the graph's *nodes* to be
// deterministic units: each accumulator must be written wholly inside
// one node (or by nodes ordered by edges), with a fixed internal
// operation order. The solvers' graph builders are constructed around
// exactly that invariant.

// ErrCycle is returned by Graph.Run when the graph is not a DAG. The
// check runs before any node executes, so a cyclic graph returns an
// error instead of deadlocking with no node side effects applied.
var ErrCycle = errors.New("sched: task graph contains a cycle")

// NodeID identifies a node within one Graph.
type NodeID int32

type gnode struct {
	fn    func()
	class Class
	tag   int32 // caller-defined span kind (opaque to sched)
	arg   int32 // data-locality hint: level, chunk or device index
	succs []NodeID
	preds int32
}

// NodeSpan is the per-node execution record collected when tracing is
// enabled, in the units the telemetry layer stores spans (ns relative
// to the run start).
type NodeSpan struct {
	Tag     int32
	Arg     int32
	Class   Class
	StartNs int64
	DurNs   int64
}

// GraphStats summarizes one Run for telemetry and benchmarking.
type GraphStats struct {
	Nodes int
	Edges int
	// MaxReady is the high-water mark of the total ready-queue depth
	// (across classes); ReadyHist[d] counts enqueue operations that
	// observed total depth d, with the last bucket collecting >= len-1.
	// Depth persistently near 1 means the graph is chain-like (no slack
	// to recover); depth near the worker count means the pool, not the
	// dependency structure, is the bound.
	MaxReady  int
	ReadyHist []int64
	// CriticalPathNs is the longest dependency chain weighted by the
	// measured node durations (only available when tracing was enabled);
	// MakespanNs is the measured wall time of Run. Their gap is the
	// slack dependency-driven execution could not (or need not) recover.
	CriticalPathNs int64
	MakespanNs     int64
	Spans          []NodeSpan // nil unless SetTrace(true)
	// Start is when Run began executing nodes; span StartNs values are
	// relative to it.
	Start time.Time
	// LocalityHits counts ready-node pops where the drainer found, within
	// a bounded window from the top of its class's LIFO queue, a node
	// whose last-completed predecessor it executed itself — the data
	// producer's worker consuming the data, so the operands are likely
	// still in that worker's cache. Dependency order alone decides *what*
	// may run; the hint only biases *which* ready node a drainer takes,
	// so results are unchanged.
	LocalityHits int64
}

const readyHistSize = 32

// Graph is a single-use dependency graph. Build nodes with Node, add
// edges with Edge, execute once with Run. A Graph must not be reused
// after Run returns.
type Graph struct {
	pool  *Pool
	trace bool

	nodes []gnode
	edges int
	topo  []NodeID

	mu     [NumClasses]sync.Mutex
	queue  [NumClasses][]NodeID
	active [NumClasses]atomic.Int32
	groups [NumClasses]*Group

	indeg     []atomic.Int32
	completed atomic.Int32
	done      chan struct{}
	panicked  atomic.Pointer[TaskPanic]
	aborted   atomic.Bool

	// prefer[id] is the drainer that completed id's most recent
	// predecessor (0 = none): the data-locality hint drain consults.
	prefer       []atomic.Int32
	drainSeq     atomic.Int32
	localityHits atomic.Int64

	ready    atomic.Int32
	maxReady atomic.Int32
	hist     [readyHistSize]atomic.Int64

	spans    []NodeSpan
	start    time.Time
	makespan int64
}

// NewGraph returns an empty task graph executing on the pool's slots.
func (p *Pool) NewGraph() *Graph { return &Graph{pool: p} }

// SetTrace enables per-node span collection (and thereby the measured
// critical path in Stats). Call before Run.
func (g *Graph) SetTrace(on bool) { g.trace = on }

// Node adds a task executing fn under class c and returns its id. tag is
// an opaque caller-defined label (the solvers store a telemetry span
// kind); arg is the data-locality hint (octree level, chunk index or
// device id) reported alongside.
func (g *Graph) Node(c Class, tag, arg int32, fn func()) NodeID {
	g.nodes = append(g.nodes, gnode{fn: fn, class: c, tag: tag, arg: arg})
	return NodeID(len(g.nodes) - 1)
}

// Edge declares that node from must complete before node to starts.
// Duplicate edges are permitted (the in-degree bookkeeping stays
// balanced); a self-edge makes the graph cyclic and Run will reject it.
func (g *Graph) Edge(from, to NodeID) {
	if int(from) >= len(g.nodes) || int(to) >= len(g.nodes) || from < 0 || to < 0 {
		panic("sched: Edge references unknown node")
	}
	g.nodes[from].succs = append(g.nodes[from].succs, to)
	g.nodes[to].preds++
	g.edges++
}

// classSlots returns how many worker slots class c can occupy, which
// bounds the number of concurrent drainers per ready queue.
func (g *Graph) classSlots(c Class) int32 {
	w := g.pool.workers
	if res := int(g.pool.reserved.Load()); res > 0 {
		if c == ClassNear {
			w = res
		} else {
			w = g.pool.workers - res
		}
	}
	if w < 1 {
		w = 1
	}
	return int32(w)
}

// Run executes the graph and blocks until every node has completed.
// A cyclic graph is rejected up front with ErrCycle, before any node
// runs. If a node panics, the remaining nodes are cancelled (their
// closures are skipped, but the completion protocol still runs so the
// join cannot deadlock) and the first recovered *TaskPanic is
// re-panicked here at the join — the same contract as Group.Wait.
func (g *Graph) Run() error {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	// Kahn's algorithm on the static in-degrees: both the cycle check
	// and the topological order Stats later uses for the critical path.
	indeg := make([]int32, n)
	order := make([]NodeID, 0, n)
	for i := range g.nodes {
		indeg[i] = g.nodes[i].preds
		if indeg[i] == 0 {
			order = append(order, NodeID(i))
		}
	}
	for k := 0; k < len(order); k++ {
		for _, s := range g.nodes[order[k]].succs {
			if indeg[s]--; indeg[s] == 0 {
				order = append(order, s)
			}
		}
	}
	if len(order) != n {
		return ErrCycle
	}
	g.topo = order

	g.indeg = make([]atomic.Int32, n)
	g.prefer = make([]atomic.Int32, n)
	for i := range g.nodes {
		g.indeg[i].Store(g.nodes[i].preds)
	}
	for c := range g.groups {
		g.groups[c] = g.pool.NewGroupClass(Class(c))
	}
	g.done = make(chan struct{})
	if g.trace {
		g.spans = make([]NodeSpan, n)
	}
	g.start = time.Now()
	for _, id := range g.topo {
		if g.nodes[id].preds == 0 {
			g.enqueue(id)
		}
	}
	<-g.done
	// Join the drainer tasks so every slot is back in the pool before
	// control returns (and before a panic unwinds past us).
	for c := range g.groups {
		g.groups[c].wg.Wait()
	}
	g.makespan = int64(time.Since(g.start))
	if tp := g.panicked.Load(); tp != nil {
		panic(tp)
	}
	for c := range g.groups {
		if tp := g.groups[c].panicked.Load(); tp != nil {
			panic(tp)
		}
	}
	return nil
}

// enqueue pushes a runnable node onto its class's ready queue and kicks
// a drainer if the class has spare slots.
func (g *Graph) enqueue(id NodeID) {
	c := g.nodes[id].class
	d := g.ready.Add(1)
	for {
		m := g.maxReady.Load()
		if d <= m || g.maxReady.CompareAndSwap(m, d) {
			break
		}
	}
	b := int(d)
	if b >= readyHistSize {
		b = readyHistSize - 1
	}
	g.hist[b].Add(1)
	g.mu[c].Lock()
	g.queue[c] = append(g.queue[c], id)
	g.mu[c].Unlock()
	g.kick(c)
}

// kick admits one more drainer for class c unless the class already has
// as many drainers as slots it can occupy. Spawn never blocks: with no
// free slot the drainer runs inline in the caller (help-first), which
// keeps the completion protocol deadlock-free.
func (g *Graph) kick(c Class) {
	limit := g.classSlots(c)
	for {
		a := g.active[c].Load()
		if a >= limit {
			return
		}
		if g.active[c].CompareAndSwap(a, a+1) {
			break
		}
	}
	g.groups[c].Spawn(func() { g.drain(c) })
}

// localityWindow bounds how far below the LIFO top drain scans for a
// node preferring the current drainer, so the hint never turns the O(1)
// pop into a linear search of a deep ready queue.
const localityWindow = 8

// drain pops and executes ready nodes of class c until the queue is
// empty. The active-drainer count is decremented under the queue lock
// while the queue is observed empty, so an enqueue that pushes after
// the drainer's exit decision is guaranteed to observe the decremented
// count and kick a replacement — no lost wakeups. Within a bounded
// window from the top, a node whose last predecessor this drainer
// executed is taken first (the data-locality hint); otherwise plain
// LIFO.
func (g *Graph) drain(c Class) {
	me := g.drainSeq.Add(1)
	for {
		g.mu[c].Lock()
		q := g.queue[c]
		if len(q) == 0 {
			g.active[c].Add(-1)
			g.mu[c].Unlock()
			return
		}
		pick := len(q) - 1
		lo := len(q) - localityWindow
		if lo < 0 {
			lo = 0
		}
		for i := len(q) - 1; i >= lo; i-- {
			if g.prefer[q[i]].Load() == me {
				pick = i
				g.localityHits.Add(1)
				break
			}
		}
		id := q[pick]
		g.queue[c] = append(q[:pick], q[pick+1:]...)
		g.mu[c].Unlock()
		g.ready.Add(-1)
		g.exec(id, me)
	}
}

// exec runs one node (skipping its closure when a previous node already
// panicked), then releases its successors and counts completion. The
// completion count reaches the node total on every path, so Run's join
// fires even under cancellation.
func (g *Graph) exec(id NodeID, drainer int32) {
	nd := &g.nodes[id]
	if !g.aborted.Load() {
		g.runNode(nd, id)
	}
	for _, s := range nd.succs {
		// Stamp the locality hint before the release decrement so any
		// drainer that sees the node ready also sees a preference (last
		// completing predecessor wins — any producer is a fine hint).
		g.prefer[s].Store(drainer)
		if g.indeg[s].Add(-1) == 0 {
			g.enqueue(s)
		}
	}
	if int(g.completed.Add(1)) == len(g.nodes) {
		close(g.done)
	}
}

func (g *Graph) runNode(nd *gnode, id NodeID) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			tp = &TaskPanic{Value: r, Stack: debug.Stack()}
		}
		g.panicked.CompareAndSwap(nil, tp)
		g.aborted.Store(true)
	}()
	if g.spans == nil {
		nd.fn()
		return
	}
	t0 := time.Now()
	nd.fn()
	g.spans[id] = NodeSpan{
		Tag: nd.tag, Arg: nd.arg, Class: nd.class,
		StartNs: int64(t0.Sub(g.start)),
		DurNs:   int64(time.Since(t0)),
	}
}

// SpanUnion returns the union length of the intervals of all spans with
// the given tag — the wall time during which at least one node of that
// tag was executing, the graph schedule's analogue of a fork-join phase
// duration.
func SpanUnion(spans []NodeSpan, tag int32) time.Duration {
	var iv [][2]int64
	for _, sp := range spans {
		if sp.Tag == tag && sp.DurNs > 0 {
			iv = append(iv, [2]int64{sp.StartNs, sp.StartNs + sp.DurNs})
		}
	}
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	total := int64(0)
	lo, hi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > hi {
			total += hi - lo
			lo, hi = x[0], x[1]
		} else if x[1] > hi {
			hi = x[1]
		}
	}
	total += hi - lo
	return time.Duration(total)
}

// Stats reports the executed graph's shape and schedule quality. Call
// after Run. CriticalPathNs requires tracing (SetTrace before Run) and
// is 0 otherwise.
func (g *Graph) Stats() GraphStats {
	st := GraphStats{
		Nodes:        len(g.nodes),
		Edges:        g.edges,
		MaxReady:     int(g.maxReady.Load()),
		MakespanNs:   g.makespan,
		Start:        g.start,
		LocalityHits: g.localityHits.Load(),
	}
	st.ReadyHist = make([]int64, readyHistSize)
	for i := range g.hist {
		st.ReadyHist[i] = g.hist[i].Load()
	}
	if g.spans != nil && g.topo != nil {
		st.Spans = g.spans
		// Longest dependency chain under measured durations: finish[i] =
		// dur[i] + max(finish[pred]), propagated in topological order.
		finish := make([]int64, len(g.nodes))
		var cp int64
		for _, id := range g.topo {
			finish[id] += g.spans[id].DurNs
			if finish[id] > cp {
				cp = finish[id]
			}
			for _, s := range g.nodes[id].succs {
				if finish[id] > finish[s] {
					finish[s] = finish[id]
				}
			}
		}
		st.CriticalPathNs = cp
	}
	return st
}
