package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGraphEmpty(t *testing.T) {
	g := NewPool(2).NewGraph()
	if err := g.Run(); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if st := g.Stats(); st.Nodes != 0 || st.Edges != 0 {
		t.Fatalf("empty graph stats: %+v", st)
	}
}

func TestGraphSingleNode(t *testing.T) {
	g := NewPool(2).NewGraph()
	ran := false
	g.Node(ClassGeneral, 0, 0, func() { ran = true })
	if err := g.Run(); err != nil {
		t.Fatalf("single node: %v", err)
	}
	if !ran {
		t.Fatal("single node did not run")
	}
}

func TestGraphCycleReturnsError(t *testing.T) {
	g := NewPool(2).NewGraph()
	ran := atomic.Int32{}
	a := g.Node(ClassGeneral, 0, 0, func() { ran.Add(1) })
	b := g.Node(ClassGeneral, 0, 0, func() { ran.Add(1) })
	c := g.Node(ClassGeneral, 0, 0, func() { ran.Add(1) })
	g.Edge(a, b)
	g.Edge(b, c)
	g.Edge(c, a)
	done := make(chan error, 1)
	go func() { done <- g.Run() }()
	select {
	case err := <-done:
		if err != ErrCycle {
			t.Fatalf("cyclic graph: got %v, want ErrCycle", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cyclic graph deadlocked instead of returning an error")
	}
	if ran.Load() != 0 {
		t.Fatalf("cyclic graph executed %d nodes; want 0", ran.Load())
	}
}

func TestGraphSelfEdgeIsCycle(t *testing.T) {
	g := NewPool(1).NewGraph()
	a := g.Node(ClassGeneral, 0, 0, func() {})
	g.Edge(a, a)
	if err := g.Run(); err != ErrCycle {
		t.Fatalf("self edge: got %v, want ErrCycle", err)
	}
}

// TestGraphPanicAtJoin checks the pool contract carries over: a node
// panic is recovered, remaining nodes are cancelled without deadlocking
// the join, and the first *TaskPanic is re-panicked at Run.
func TestGraphPanicAtJoin(t *testing.T) {
	p := NewPool(2)
	g := p.NewGraph()
	var after atomic.Int32
	a := g.Node(ClassGeneral, 0, 0, func() { panic("boom") })
	b := g.Node(ClassGeneral, 0, 0, func() { after.Add(1) })
	g.Edge(a, b)
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("Run panicked with %T %v; want *TaskPanic", r, r)
		}
		if tp.Value != "boom" {
			t.Fatalf("TaskPanic.Value = %v; want boom", tp.Value)
		}
		if after.Load() != 0 {
			t.Fatal("downstream node ran despite upstream panic")
		}
		// The pool must be whole again: all slots usable.
		var n atomic.Int32
		p.ParallelRange(8, func(lo, hi int) { n.Add(int32(hi - lo)) })
		if n.Load() != 8 {
			t.Fatalf("pool broken after graph panic: %d", n.Load())
		}
	}()
	g.Run()
	t.Fatal("Run returned normally despite node panic")
}

// TestGraphTopologicalFuzz executes random DAGs and checks every node
// runs exactly once, after all of its predecessors.
func TestGraphTopologicalFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		workers := 1 + rng.Intn(4)
		p := NewPool(workers)
		if workers > 1 && trial%3 == 0 {
			p.SetReserved(1)
		}
		n := 1 + rng.Intn(60)
		g := p.NewGraph()
		var mu sync.Mutex
		doneAt := make([]int, n) // 1-based completion order; 0 = not run
		runs := make([]int, n)
		clock := 0
		type edge struct{ from, to int }
		var edges []edge
		for i := 0; i < n; i++ {
			i := i
			cls := Class(rng.Intn(int(NumClasses)))
			g.Node(cls, int32(i), int32(i), func() {
				mu.Lock()
				clock++
				doneAt[i] = clock
				runs[i]++
				mu.Unlock()
			})
		}
		// Random forward edges only (guaranteed acyclic).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.Edge(NodeID(i), NodeID(j))
					edges = append(edges, edge{i, j})
				}
			}
		}
		if err := g.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if runs[i] != 1 {
				t.Fatalf("trial %d: node %d ran %d times", trial, i, runs[i])
			}
		}
		for _, e := range edges {
			if doneAt[e.from] >= doneAt[e.to] {
				t.Fatalf("trial %d: edge %d->%d violated (done %d >= %d)",
					trial, e.from, e.to, doneAt[e.from], doneAt[e.to])
			}
		}
		st := g.Stats()
		if st.Nodes != n || st.Edges != len(edges) {
			t.Fatalf("trial %d: stats %d nodes %d edges; want %d/%d",
				trial, st.Nodes, st.Edges, n, len(edges))
		}
		if st.MaxReady < 1 {
			t.Fatalf("trial %d: MaxReady = %d", trial, st.MaxReady)
		}
	}
}

// TestGraphDiamondOrder pins the core dependency semantics with a
// diamond: a -> {b, c} -> d.
func TestGraphDiamondOrder(t *testing.T) {
	g := NewPool(4).NewGraph()
	var order []string
	var mu sync.Mutex
	mark := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	a := g.Node(ClassGeneral, 0, 0, mark("a"))
	b := g.Node(ClassFar, 0, 0, mark("b"))
	c := g.Node(ClassNear, 0, 0, mark("c"))
	d := g.Node(ClassGeneral, 0, 0, mark("d"))
	g.Edge(a, b)
	g.Edge(a, c)
	g.Edge(b, d)
	g.Edge(c, d)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[0] != "a" || order[3] != "d" {
		t.Fatalf("diamond order = %v", order)
	}
}

func TestGraphTraceAndCriticalPath(t *testing.T) {
	g := NewPool(2).NewGraph()
	a := g.Node(ClassGeneral, 1, 0, func() { time.Sleep(2 * time.Millisecond) })
	b := g.Node(ClassGeneral, 2, 0, func() { time.Sleep(2 * time.Millisecond) })
	g.Edge(a, b)
	g.SetTrace(true)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.CriticalPathNs <= 0 || st.MakespanNs <= 0 {
		t.Fatalf("trace stats: %+v", st)
	}
	if st.CriticalPathNs > st.MakespanNs {
		t.Fatalf("critical path %d > makespan %d", st.CriticalPathNs, st.MakespanNs)
	}
	if len(st.Spans) != 2 || st.Spans[0].Tag != 1 || st.Spans[1].Tag != 2 {
		t.Fatalf("spans: %+v", st.Spans)
	}
	if st.Spans[1].StartNs < st.Spans[0].StartNs+st.Spans[0].DurNs {
		t.Fatal("dependent span started before predecessor finished")
	}
}

// TestGraphReservedPlacement runs a graph with near and far nodes under
// an active reservation and checks it completes with sane accounting
// (near time charged to ClassNear whether spawned or inline).
func TestGraphReservedPlacement(t *testing.T) {
	p := NewPool(3)
	p.SetReserved(1)
	defer p.SetReserved(0)
	p.ResetWorkerBusy()
	g := p.NewGraph()
	var nearRan, farRan atomic.Int32
	for i := 0; i < 8; i++ {
		g.Node(ClassNear, 0, int32(i), func() {
			time.Sleep(time.Millisecond)
			nearRan.Add(1)
		})
		g.Node(ClassFar, 0, int32(i), func() {
			time.Sleep(time.Millisecond)
			farRan.Add(1)
		})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if nearRan.Load() != 8 || farRan.Load() != 8 {
		t.Fatalf("ran near=%d far=%d", nearRan.Load(), farRan.Load())
	}
	cls := p.ClassBusyNs(nil)
	if cls[ClassNear] <= 0 || cls[ClassFar] <= 0 {
		t.Fatalf("class busy: %v", cls)
	}
}

// TestInlineClassAccounting is the regression test for the inline-bucket
// split: inline-executed tasks must charge their own class's inline
// bucket, not a shared one.
func TestInlineClassAccounting(t *testing.T) {
	p := NewPool(1)
	p.ResetWorkerBusy()
	hold := make(chan struct{})
	started := make(chan struct{})
	g1 := p.NewGroupClass(ClassFar)
	g1.Spawn(func() { close(started); <-hold }) // takes the only slot
	<-started
	// With the slot held, these must execute inline in their class.
	gNear := p.NewGroupClass(ClassNear)
	gNear.Spawn(func() { time.Sleep(2 * time.Millisecond) })
	gGen := p.NewGroupClass(ClassGeneral)
	gGen.Spawn(func() { time.Sleep(time.Millisecond) })
	close(hold)
	g1.Wait()
	gNear.Wait()
	gGen.Wait()

	inline := p.InlineClassBusyNs(nil)
	if len(inline) != int(NumClasses) {
		t.Fatalf("inline buckets: %v", inline)
	}
	if inline[ClassNear] <= 0 {
		t.Fatalf("inline near bucket empty: %v", inline)
	}
	if inline[ClassGeneral] <= 0 {
		t.Fatalf("inline general bucket empty: %v", inline)
	}
	if inline[ClassFar] != 0 {
		t.Fatalf("far class never ran inline but has inline time: %v", inline)
	}
	// The aggregate WorkerBusyNs inline entry must equal the class sum.
	wb := p.WorkerBusyNs(nil)
	var sum int64
	for _, v := range inline {
		sum += v
	}
	if wb[len(wb)-1] != sum {
		t.Fatalf("aggregate inline %d != class sum %d", wb[len(wb)-1], sum)
	}
	// Per-class totals still include inline time.
	cls := p.ClassBusyNs(nil)
	if cls[ClassNear] < inline[ClassNear] || cls[ClassGeneral] < inline[ClassGeneral] {
		t.Fatalf("classBusy %v missing inline time %v", cls, inline)
	}
}

// TestGraphLocalityHint: on a single-worker pool every chain link is
// completed by the drainer that ran its predecessor, so the locality
// scan must register hits; and the hint must never change results (the
// chain order is enforced by edges regardless).
func TestGraphLocalityHint(t *testing.T) {
	g := NewPool(1).NewGraph()
	const n = 64
	var order []int
	prev := NodeID(-1)
	for i := 0; i < n; i++ {
		i := i
		id := g.Node(ClassGeneral, 0, int32(i), func() { order = append(order, i) })
		if prev >= 0 {
			g.Edge(prev, id)
		}
		prev = id
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain executed out of order at %d: %v", i, order[:i+1])
		}
	}
	st := g.Stats()
	if st.LocalityHits == 0 {
		t.Fatal("expected locality hits on a single-drainer chain")
	}
	if st.LocalityHits > int64(n) {
		t.Fatalf("locality hits %d exceed node count %d", st.LocalityHits, n)
	}
}
