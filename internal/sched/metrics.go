package sched

import "afmm/internal/metrics"

// RegisterMetrics exposes the pool's cumulative counters on the registry
// as scrape-time functions. Everything read here is an atomic the
// workers already maintain, so scrapes never contend with task
// execution and the hot path gains no new instructions. Idempotent:
// re-registering (a solver rebuild swapping pools) rebinds the series
// to the new pool.
func (p *Pool) RegisterMetrics(reg *metrics.Registry) {
	if p == nil || !reg.Enabled() {
		return
	}
	reg.Func("afmm_pool_workers", "sched pool worker slots", metrics.KindGauge,
		func() float64 { return float64(p.workers) })
	reg.Func("afmm_pool_reserved", "worker slots reserved for the near-field class", metrics.KindGauge,
		func() float64 { return float64(p.reserved.Load()) })
	reg.Func("afmm_pool_tasks_total", "tasks executed on worker slots", metrics.KindCounter,
		func() float64 { return float64(p.spawned.Load()) })
	reg.Func("afmm_pool_inline_tasks_total", "tasks executed inline (all workers busy)", metrics.KindCounter,
		func() float64 { return float64(p.inlined.Load()) })
	for c := Class(0); c < NumClasses; c++ {
		c := c
		reg.Func("afmm_pool_class_busy_ns_total", "cumulative task execution per work class (ns)",
			metrics.KindCounter,
			func() float64 { return float64(p.classBusy[c].Load()) },
			"class", c.String())
		reg.Func("afmm_pool_inline_busy_ns_total", "cumulative inline execution per work class (ns)",
			metrics.KindCounter,
			func() float64 { return float64(p.inlineClass[c].Load()) },
			"class", c.String())
	}
}
