package sched

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A panicking task must surface at Wait as a *TaskPanic in the joining
// goroutine, not kill the process from a worker.
func TestPanicSurfacesAtWait(t *testing.T) {
	p := NewPool(4)
	g := p.NewGroup()
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		i := i
		g.Spawn(func() {
			if i == 3 {
				panic("boom")
			}
			ran.Add(1)
		})
	}
	var tp *TaskPanic
	func() {
		defer func() {
			r := recover()
			var ok bool
			if tp, ok = r.(*TaskPanic); !ok {
				t.Fatalf("Wait re-panicked %T, want *TaskPanic", r)
			}
		}()
		g.Wait()
	}()
	if tp.Value != "boom" {
		t.Fatalf("TaskPanic.Value = %v, want boom", tp.Value)
	}
	if !strings.Contains(tp.Error(), "boom") {
		t.Fatalf("TaskPanic.Error() missing panic value: %q", tp.Error())
	}
	if ran.Load() != 7 {
		t.Fatalf("non-panicking tasks: ran %d of 7", ran.Load())
	}
}

func TestWaitErrReturnsPanicAsError(t *testing.T) {
	p := NewPool(2)
	g := p.NewGroup()
	g.Spawn(func() { panic(errors.New("kernel fault")) })
	err := g.WaitErr()
	if err == nil {
		t.Fatal("WaitErr = nil, want error")
	}
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("WaitErr error type %T, want *TaskPanic", err)
	}
	if !strings.Contains(err.Error(), "kernel fault") {
		t.Fatalf("error text: %q", err.Error())
	}

	// A clean group returns nil.
	g2 := p.NewGroup()
	g2.Spawn(func() {})
	if err := g2.WaitErr(); err != nil {
		t.Fatalf("clean group WaitErr = %v", err)
	}
}

// An inline-executed task (all slots busy) panicking must also be
// captured, not unwind through Spawn into the caller.
func TestInlinePanicCaptured(t *testing.T) {
	p := NewPool(1)
	g := p.NewGroup()
	block := make(chan struct{})
	g.Spawn(func() { <-block }) // occupy the only slot
	// This Spawn must execute inline; its panic must not propagate here.
	g.Spawn(func() { panic("inline boom") })
	close(block)
	err := g.WaitErr()
	if err == nil || !strings.Contains(err.Error(), "inline boom") {
		t.Fatalf("inline panic not captured: %v", err)
	}
}

// After a panicking task, the pool must be fully usable: no slot leaked
// (no deadlock on full-width work) and reserved partitions intact.
func TestPanicDoesNotPoisonPool(t *testing.T) {
	const workers = 4
	p := NewPool(workers)

	g := p.NewGroup()
	for i := 0; i < workers*4; i++ {
		g.Spawn(func() { panic("die") })
	}
	if err := g.WaitErr(); err == nil {
		t.Fatal("expected panic error")
	}

	// Every slot must be back: a barrier needing all workers at once
	// would deadlock if any slot leaked.
	done := make(chan struct{})
	go func() {
		defer close(done)
		g2 := p.NewGroup()
		var running atomic.Int32
		for i := 0; i < workers; i++ {
			g2.Spawn(func() {
				running.Add(1)
				for running.Load() < workers {
					time.Sleep(time.Millisecond)
				}
			})
		}
		g2.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool deadlocked after task panic: slot leaked")
	}
}

// A panic on a reserved (ClassNear) slot must return that slot to the
// reserved partition, and SetReserved must still be able to quiesce and
// repartition afterwards.
func TestPanicDoesNotPoisonReservedSlots(t *testing.T) {
	p := NewPool(4)
	p.SetReserved(2)

	g := p.NewGroupClass(ClassNear)
	g.Spawn(func() { panic("driver died") })
	if err := g.WaitErr(); err == nil {
		t.Fatal("expected panic error")
	}

	// Both reserved slots must still be usable concurrently.
	g2 := p.NewGroupClass(ClassNear)
	var peak atomic.Int32
	var cur atomic.Int32
	for i := 0; i < 2; i++ {
		g2.Spawn(func() {
			n := cur.Add(1)
			for peak.Load() < n {
				peak.CompareAndSwap(peak.Load(), n)
			}
			time.Sleep(20 * time.Millisecond)
			cur.Add(-1)
		})
	}
	g2.Wait()
	if peak.Load() != 2 {
		t.Fatalf("reserved concurrency after panic = %d, want 2", peak.Load())
	}

	// SetReserved quiesces by draining all slots; it would hang forever
	// if the panicking task had leaked one.
	done := make(chan struct{})
	go func() { p.SetReserved(0); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SetReserved hung after panic: reserved slot leaked")
	}
}

// ParallelRange joins through Wait, so a panic inside a range body
// surfaces to the range caller as *TaskPanic.
func TestParallelRangePanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if _, ok := recover().(*TaskPanic); !ok {
			t.Fatal("want *TaskPanic from ParallelRange")
		}
	}()
	p.ParallelRange(100, func(lo, hi int) {
		if lo == 0 {
			panic("range boom")
		}
	})
	t.Fatal("unreachable: ParallelRange should have panicked")
}

// A nested group's re-panicked TaskPanic propagates to the outer join
// unwrapped (no TaskPanic-wrapping-TaskPanic chains).
func TestNestedGroupPanicUnwrapped(t *testing.T) {
	p := NewPool(4)
	outer := p.NewGroup()
	outer.Spawn(func() {
		inner := p.NewGroup()
		inner.Spawn(func() { panic("deep") })
		inner.Wait()
	})
	err := outer.WaitErr()
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("outer error %T", err)
	}
	if tp.Value != "deep" {
		t.Fatalf("nested panic was re-wrapped: Value=%v", tp.Value)
	}
}
