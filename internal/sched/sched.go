// Package sched provides the CPU task-parallel runtime used for the
// far-field phases, mirroring the paper's OpenMP tasking pattern: a
// recursive function spawns one task per octree child and waits for the
// spawned tasks to finish (task/taskwait). Go's runtime supplies the
// work-stealing; the pool bounds the number of concurrently executing
// tasks to a fixed worker count, falling back to inline execution when all
// workers are busy (the standard depth-cutoff-free OpenMP-style pattern).
//
// The pool additionally supports the paper's concurrent-phase execution
// (§V): independent parallel ranges may be admitted concurrently from
// different goroutines under distinct work classes (far field vs.
// near-field drivers), busy time is accounted per class as well as per
// worker slot, and SetReserved can dedicate a number of worker slots to
// the near-field driver class — the analogue of pinning one host core per
// GPU to drive its kernels while the remaining cores run the expansion
// work.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Class labels the work admitted to the pool, so concurrently executing
// phases can be accounted (and, for ClassNear, placed) separately. Tasks
// of every class share the same worker slots until SetReserved dedicates
// slots to ClassNear.
type Class uint8

const (
	// ClassGeneral is unclassified pool work: tree construction, list
	// traversal, prep, and every pre-existing call site.
	ClassGeneral Class = iota
	// ClassFar is the far-field expansion work (P2M/M2M/M2L/L2L/L2P
	// sweeps). It always runs on the general (non-reserved) slots.
	ClassFar
	// ClassNear is the near-field execution: the virtual-GPU device walks
	// and the CPU P2P chunks. When SetReserved is active this class runs
	// exclusively on the reserved slots (the paper's driver cores).
	ClassNear
	// NumClasses bounds the class enumeration.
	NumClasses
)

var classNames = [NumClasses]string{"general", "far", "near"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Pool is a bounded task executor. The zero value is not usable; create
// one with NewPool.
//
// The semaphore carries worker-slot ids rather than empty tokens: a task
// that acquires slot i charges its execution time to busy[i], giving the
// telemetry layer a per-worker utilization profile (paper §VII.A's
// "CPU Time" is a makespan; the busy vector shows the imbalance behind
// it). Inline executions — tasks run in the caller because every slot was
// taken — are charged to per-class inline buckets (InlineClassBusyNs).
//
// Slots are split into a general semaphore and a reserved semaphore by
// SetReserved; with zero reserved slots (the default) every class draws
// from the general semaphore and the pool behaves exactly as before.
type Pool struct {
	workers int
	sem     chan int // general slots
	resSem  chan int // reserved slots (ClassNear when reservation active)

	// reconf serializes SetReserved reconfigurations. reserved is the
	// current reserved-slot count, read atomically by Spawn.
	reconf   sync.Mutex
	reserved atomic.Int32

	spawned atomic.Int64
	inlined atomic.Int64
	busy    []atomic.Int64 // ns of task execution per worker slot
	// inlineClass buckets inline-executed task time per work class. The
	// split matters under reservation: inline ClassNear work charged to a
	// shared bucket would be indistinguishable from inline far-field
	// work, hiding the idle-reserved-slot signal the autotuner reads.
	inlineClass [NumClasses]atomic.Int64
	classBusy   [NumClasses]atomic.Int64 // ns of task execution per work class
}

// NewPool creates a pool that allows up to workers tasks to run
// concurrently. workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		sem:     make(chan int, workers),
		resSem:  make(chan int, workers),
		busy:    make([]atomic.Int64, workers),
	}
	for i := 0; i < workers; i++ {
		p.sem <- i
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Reserved returns the number of worker slots currently dedicated to
// ClassNear by SetReserved.
func (p *Pool) Reserved() int { return int(p.reserved.Load()) }

// SetReserved dedicates k worker slots to ClassNear tasks; the remaining
// workers-k slots serve every other class. k is clamped to
// [0, workers-1] so at least one general slot always remains. Passing 0
// restores the shared-slot default.
//
// The call quiesces the pool: it blocks until every outstanding task has
// returned its slot, then repartitions. Callers must therefore invoke it
// only between phases (the solvers bracket the overlapped near/far region
// with it); invoking it while tasks the caller is itself waiting on are
// running would deadlock. Concurrent Spawns during the repartition are
// safe — they simply execute inline.
func (p *Pool) SetReserved(k int) {
	if k < 0 {
		k = 0
	}
	if k > p.workers-1 {
		k = p.workers - 1
	}
	p.reconf.Lock()
	defer p.reconf.Unlock()
	cur := int(p.reserved.Load())
	if k == cur {
		return
	}
	// Drain every slot from both semaphores (waits for running tasks).
	for i := 0; i < p.workers-cur; i++ {
		<-p.sem
	}
	for i := 0; i < cur; i++ {
		<-p.resSem
	}
	p.reserved.Store(int32(k))
	for i := 0; i < k; i++ {
		p.resSem <- i
	}
	for i := k; i < p.workers; i++ {
		p.sem <- i
	}
}

// SpawnedTasks returns how many tasks ran on their own goroutine since the
// pool was created; InlinedTasks how many ran inline because all workers
// were busy.
func (p *Pool) SpawnedTasks() int64 { return p.spawned.Load() }

// InlinedTasks returns the count of tasks executed inline.
func (p *Pool) InlinedTasks() int64 { return p.inlined.Load() }

// WorkerBusyNs appends the cumulative per-slot busy time (ns) to dst and
// returns it; the final appended element is the inline-execution bucket,
// so the result has Workers()+1 entries beyond dst's original length.
// Counters are cumulative since pool creation (or the last
// ResetWorkerBusy); callers wanting a per-step profile take deltas of two
// snapshots. Passing a reused dst[:0] keeps the snapshot allocation-free.
func (p *Pool) WorkerBusyNs(dst []int64) []int64 {
	for i := range p.busy {
		dst = append(dst, p.busy[i].Load())
	}
	var inline int64
	for i := range p.inlineClass {
		inline += p.inlineClass[i].Load()
	}
	return append(dst, inline)
}

// InlineClassBusyNs appends the cumulative inline-execution busy time
// (ns) per class to dst and returns it, one entry per Class in
// enumeration order. The per-class split distinguishes near-field work
// squeezed inline (a sign the reserved partition is under-provisioned)
// from ordinary help-first far-field spill.
func (p *Pool) InlineClassBusyNs(dst []int64) []int64 {
	for i := range p.inlineClass {
		dst = append(dst, p.inlineClass[i].Load())
	}
	return dst
}

// ResetWorkerBusy zeroes the per-worker and per-class busy counters.
// Racing tasks may re-add time concurrently; intended for quiescent
// points.
func (p *Pool) ResetWorkerBusy() {
	for i := range p.busy {
		p.busy[i].Store(0)
	}
	for i := range p.inlineClass {
		p.inlineClass[i].Store(0)
	}
	for i := range p.classBusy {
		p.classBusy[i].Store(0)
	}
}

// ClassBusyNs appends the cumulative per-class busy time (ns) to dst and
// returns it, one entry per Class in enumeration order (general, far,
// near). Inline executions are included in their class's bucket. Counters
// are cumulative since pool creation or the last ResetWorkerBusy.
func (p *Pool) ClassBusyNs(dst []int64) []int64 {
	for i := range p.classBusy {
		dst = append(dst, p.classBusy[i].Load())
	}
	return dst
}

// TaskPanic wraps a panic recovered from a pool task. Worker panics do
// not kill the process: the group captures the first one (with its
// stack) and re-raises it at the join point — Wait re-panics it in the
// waiting goroutine, WaitErr returns it as an error. Either way the
// panicking task's worker slot is returned to the pool first, so a
// crashing task can neither deadlock the pool nor poison a reserved
// slot partition.
type TaskPanic struct {
	Value any    // the value passed to panic()
	Stack []byte // stack of the panicking task
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("task panic: %v\n%s", t.Value, t.Stack)
}

// Group tracks a set of spawned tasks, the analogue of the implicit set
// awaited by "#pragma omp taskwait". Groups may nest freely, and groups of
// different classes may be driven concurrently from different goroutines —
// the pool's semaphores arbitrate the worker slots between them.
type Group struct {
	pool  *Pool
	class Class
	wg    sync.WaitGroup
	// panicked holds the first TaskPanic recovered from this group's
	// tasks; Wait/WaitErr surface it after the join.
	panicked atomic.Pointer[TaskPanic]
}

// NewGroup returns a ClassGeneral task group bound to the pool.
func (p *Pool) NewGroup() *Group { return &Group{pool: p} }

// NewGroupClass returns a task group whose tasks are charged to class c
// and, for ClassNear under an active reservation, placed on the reserved
// worker slots.
func (p *Pool) NewGroupClass(c Class) *Group { return &Group{pool: p, class: c} }

// sems returns the semaphore this group's class draws slots from. Only
// ClassNear uses the reserved partition, and only while one is active;
// everything else (and ClassNear with no reservation) shares the general
// slots.
func (g *Group) sems() chan int {
	if g.class == ClassNear && g.pool.reserved.Load() > 0 {
		return g.pool.resSem
	}
	return g.pool.sem
}

// runTask executes f, converting a panic into a recorded TaskPanic
// (first one wins) instead of letting it unwind past the task boundary.
// A re-raised *TaskPanic from a nested group join propagates unwrapped.
func (g *Group) runTask(f func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			tp = &TaskPanic{Value: r, Stack: debug.Stack()}
		}
		g.panicked.CompareAndSwap(nil, tp)
	}()
	f()
}

// Spawn runs f as a task: on a fresh goroutine when a worker slot is free,
// otherwise inline in the caller (which preserves progress and bounds
// parallelism without deadlock, as in help-first task runtimes).
func (g *Group) Spawn(f func()) {
	sem := g.sems()
	select {
	case slot := <-sem:
		g.pool.spawned.Add(1)
		g.wg.Add(1)
		go func() {
			start := time.Now()
			defer func() {
				dt := int64(time.Since(start))
				g.pool.busy[slot].Add(dt)
				g.pool.classBusy[g.class].Add(dt)
				sem <- slot
				g.wg.Done()
			}()
			g.runTask(f)
		}()
	default:
		g.pool.inlined.Add(1)
		start := time.Now()
		g.runTask(f)
		dt := int64(time.Since(start))
		g.pool.inlineClass[g.class].Add(dt)
		g.pool.classBusy[g.class].Add(dt)
	}
}

// Wait blocks until every task spawned on the group has completed
// (taskwait). If any task panicked, the first recovered *TaskPanic is
// re-panicked here, in the joining goroutine — after every slot has
// been returned — so the failure surfaces where the work was awaited
// rather than killing the process from a worker.
func (g *Group) Wait() {
	g.wg.Wait()
	if tp := g.panicked.Load(); tp != nil {
		panic(tp)
	}
}

// WaitErr blocks like Wait but returns a recovered task panic as an
// error instead of re-panicking, for callers that degrade gracefully.
func (g *Group) WaitErr() error {
	g.wg.Wait()
	if tp := g.panicked.Load(); tp != nil {
		return tp
	}
	return nil
}

// ParallelRange splits [0, n) into roughly equal chunks and processes them
// concurrently, at most pool.Workers() at a time.
func (p *Pool) ParallelRange(n int, f func(lo, hi int)) {
	p.ParallelRangeClass(ClassGeneral, n, f)
}

// ParallelRangeClass is ParallelRange with the chunk tasks admitted under
// class c. Ranges of different classes may run concurrently from
// different goroutines.
func (p *Pool) ParallelRangeClass(c Class, n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.rangeChunks(c)
	if chunks > n {
		chunks = n
	}
	g := p.NewGroupClass(c)
	size := (n + chunks - 1) / chunks
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		g.Spawn(func() { f(lo, hi) })
	}
	g.Wait()
}

// rangeChunks sizes the chunk count for a parallel range of class c: 4×
// the slot count the class can actually occupy, so chunk granularity
// tracks the partition rather than the whole pool when a reservation is
// active.
func (p *Pool) rangeChunks(c Class) int {
	w := p.workers
	if res := int(p.reserved.Load()); res > 0 {
		if c == ClassNear {
			w = res
		} else {
			w = p.workers - res
		}
	}
	if w < 1 {
		w = 1
	}
	return w * 4
}

// ParallelRangeWeighted splits [0, len(weights)) into contiguous chunks of
// roughly equal total weight and processes them concurrently, at most
// pool.Workers() at a time. Item i carries weights[i] units of work
// (negative weights count as zero); a single item heavier than the chunk
// target forms its own chunk, so a few heavy items cannot serialize the
// tail behind one task. With all-zero weights it degrades to ParallelRange.
func (p *Pool) ParallelRangeWeighted(weights []int64, f func(lo, hi int)) {
	p.ParallelRangeWeightedClass(ClassGeneral, weights, f)
}

// ParallelRangeWeightedClass is ParallelRangeWeighted with the chunk
// tasks admitted under class c. The chunk boundaries depend only on the
// weights and the pool geometry as seen at entry, never on execution
// interleaving, which is what keeps accumulation order — and therefore
// floating-point results — independent of what else runs concurrently.
func (p *Pool) ParallelRangeWeightedClass(c Class, weights []int64, f func(lo, hi int)) {
	if len(weights) == 0 {
		return
	}
	bounds := p.WeightedBounds(c, weights)
	g := p.NewGroupClass(c)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		g.Spawn(func() { f(lo, hi) })
	}
	g.Wait()
}

// WeightedBounds returns the chunk boundaries ParallelRangeWeightedClass
// uses for weights under class c: ascending indices b with b[0] == 0 and
// b[len(b)-1] == len(weights); chunk k covers [b[k], b[k+1]). The task
// graph builders call this directly so graph nodes chunk exactly like
// the level-synchronous sweeps. Boundaries depend only on the weights
// and the pool geometry at call time, never on execution interleaving.
func (p *Pool) WeightedBounds(c Class, weights []int64) []int {
	n := len(weights)
	if n == 0 {
		return []int{0}
	}
	chunks := p.rangeChunks(c)
	if chunks > n {
		chunks = n
	}
	var total int64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	bounds := make([]int, 1, chunks+1)
	if total <= 0 {
		// All-zero weights degrade to the even split of ParallelRange.
		size := (n + chunks - 1) / chunks
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			bounds = append(bounds, hi)
		}
		return bounds
	}
	target := (total + int64(chunks) - 1) / int64(chunks)
	if target < 1 {
		target = 1
	}
	var acc int64
	for i := 0; i < n; i++ {
		if w := weights[i]; w > 0 {
			acc += w
		}
		if acc >= target || i == n-1 {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	return bounds
}

// Timer measures wall-clock spans; used to report real (host) times next
// to the virtual-machine times.
type Timer struct{ start time.Time }

// StartTimer begins a measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the wall-clock duration since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// StartTime returns when the timer started, for attributing the measured
// interval on a trace timeline.
func (t Timer) StartTime() time.Time { return t.start }
