// Package sched provides the CPU task-parallel runtime used for the
// far-field phases, mirroring the paper's OpenMP tasking pattern: a
// recursive function spawns one task per octree child and waits for the
// spawned tasks to finish (task/taskwait). Go's runtime supplies the
// work-stealing; the pool bounds the number of concurrently executing
// tasks to a fixed worker count, falling back to inline execution when all
// workers are busy (the standard depth-cutoff-free OpenMP-style pattern).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded task executor. The zero value is not usable; create
// one with NewPool.
//
// The semaphore carries worker-slot ids rather than empty tokens: a task
// that acquires slot i charges its execution time to busy[i], giving the
// telemetry layer a per-worker utilization profile (paper §VII.A's
// "CPU Time" is a makespan; the busy vector shows the imbalance behind
// it). Inline executions — tasks run in the caller because every slot was
// taken — are charged to a separate inline bucket.
type Pool struct {
	workers int
	sem     chan int

	spawned    atomic.Int64
	inlined    atomic.Int64
	busy       []atomic.Int64 // ns of task execution per worker slot
	inlineBusy atomic.Int64   // ns of inline task execution
}

// NewPool creates a pool that allows up to workers tasks to run
// concurrently. workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		sem:     make(chan int, workers),
		busy:    make([]atomic.Int64, workers),
	}
	for i := 0; i < workers; i++ {
		p.sem <- i
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// SpawnedTasks returns how many tasks ran on their own goroutine since the
// pool was created; InlinedTasks how many ran inline because all workers
// were busy.
func (p *Pool) SpawnedTasks() int64 { return p.spawned.Load() }

// InlinedTasks returns the count of tasks executed inline.
func (p *Pool) InlinedTasks() int64 { return p.inlined.Load() }

// WorkerBusyNs appends the cumulative per-slot busy time (ns) to dst and
// returns it; the final appended element is the inline-execution bucket,
// so the result has Workers()+1 entries beyond dst's original length.
// Counters are cumulative since pool creation (or the last
// ResetWorkerBusy); callers wanting a per-step profile take deltas of two
// snapshots. Passing a reused dst[:0] keeps the snapshot allocation-free.
func (p *Pool) WorkerBusyNs(dst []int64) []int64 {
	for i := range p.busy {
		dst = append(dst, p.busy[i].Load())
	}
	return append(dst, p.inlineBusy.Load())
}

// ResetWorkerBusy zeroes the per-worker busy counters. Racing tasks may
// re-add time concurrently; intended for quiescent points.
func (p *Pool) ResetWorkerBusy() {
	for i := range p.busy {
		p.busy[i].Store(0)
	}
	p.inlineBusy.Store(0)
}

// Group tracks a set of spawned tasks, the analogue of the implicit set
// awaited by "#pragma omp taskwait". Groups may nest freely.
type Group struct {
	pool *Pool
	wg   sync.WaitGroup
}

// NewGroup returns a task group bound to the pool.
func (p *Pool) NewGroup() *Group { return &Group{pool: p} }

// Spawn runs f as a task: on a fresh goroutine when a worker slot is free,
// otherwise inline in the caller (which preserves progress and bounds
// parallelism without deadlock, as in help-first task runtimes).
func (g *Group) Spawn(f func()) {
	select {
	case slot := <-g.pool.sem:
		g.pool.spawned.Add(1)
		g.wg.Add(1)
		go func() {
			start := time.Now()
			defer func() {
				g.pool.busy[slot].Add(int64(time.Since(start)))
				g.pool.sem <- slot
				g.wg.Done()
			}()
			f()
		}()
	default:
		g.pool.inlined.Add(1)
		start := time.Now()
		f()
		g.pool.inlineBusy.Add(int64(time.Since(start)))
	}
}

// Wait blocks until every task spawned on the group has completed
// (taskwait).
func (g *Group) Wait() { g.wg.Wait() }

// ParallelRange splits [0, n) into roughly equal chunks and processes them
// concurrently, at most pool.Workers() at a time.
func (p *Pool) ParallelRange(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.workers * 4
	if chunks > n {
		chunks = n
	}
	g := p.NewGroup()
	size := (n + chunks - 1) / chunks
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		g.Spawn(func() { f(lo, hi) })
	}
	g.Wait()
}

// ParallelRangeWeighted splits [0, len(weights)) into contiguous chunks of
// roughly equal total weight and processes them concurrently, at most
// pool.Workers() at a time. Item i carries weights[i] units of work
// (negative weights count as zero); a single item heavier than the chunk
// target forms its own chunk, so a few heavy items cannot serialize the
// tail behind one task. With all-zero weights it degrades to ParallelRange.
func (p *Pool) ParallelRangeWeighted(weights []int64, f func(lo, hi int)) {
	n := len(weights)
	if n == 0 {
		return
	}
	var total int64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		p.ParallelRange(n, f)
		return
	}
	chunks := p.workers * 4
	if chunks > n {
		chunks = n
	}
	target := (total + int64(chunks) - 1) / int64(chunks)
	if target < 1 {
		target = 1
	}
	g := p.NewGroup()
	lo := 0
	var acc int64
	for i := 0; i < n; i++ {
		if w := weights[i]; w > 0 {
			acc += w
		}
		if acc >= target || i == n-1 {
			clo, chi := lo, i+1
			g.Spawn(func() { f(clo, chi) })
			acc = 0
			lo = i + 1
		}
	}
	g.Wait()
}

// Timer measures wall-clock spans; used to report real (host) times next
// to the virtual-machine times.
type Timer struct{ start time.Time }

// StartTimer begins a measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the wall-clock duration since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// StartTime returns when the timer started, for attributing the measured
// interval on a trace timeline.
func (t Timer) StartTime() time.Time { return t.start }
