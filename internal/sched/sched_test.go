package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSpawnWaitRunsEverything(t *testing.T) {
	p := NewPool(4)
	g := p.NewGroup()
	var count atomic.Int64
	for i := 0; i < 1000; i++ {
		g.Spawn(func() { count.Add(1) })
	}
	g.Wait()
	if count.Load() != 1000 {
		t.Fatalf("ran %d tasks", count.Load())
	}
	if p.SpawnedTasks()+p.InlinedTasks() != 1000 {
		t.Fatalf("accounting: %d spawned + %d inlined",
			p.SpawnedTasks(), p.InlinedTasks())
	}
}

func TestNestedRecursionLikeOpenMPTasks(t *testing.T) {
	// The paper's pattern: recursive spawn per child + taskwait. Sum a
	// binary tree of depth 14 and verify the result.
	p := NewPool(3)
	var rec func(depth int) int64
	rec = func(depth int) int64 {
		if depth == 0 {
			return 1
		}
		var l, r int64
		g := p.NewGroup()
		g.Spawn(func() { l = rec(depth - 1) })
		g.Spawn(func() { r = rec(depth - 1) })
		g.Wait()
		return l + r
	}
	if got := rec(14); got != 1<<14 {
		t.Fatalf("tree sum = %d, want %d", got, 1<<14)
	}
}

func TestParallelRangeCoversAll(t *testing.T) {
	p := NewPool(4)
	const n = 10000
	hits := make([]int32, n)
	p.ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Degenerate sizes.
	p.ParallelRange(0, func(lo, hi int) { t.Fatal("called for n=0") })
	var one atomic.Int64
	p.ParallelRange(1, func(lo, hi int) { one.Add(int64(hi - lo)) })
	if one.Load() != 1 {
		t.Fatal("n=1 range wrong")
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}

func TestNestedGroupSpawn(t *testing.T) {
	// Groups created inside running tasks must compose without deadlock and
	// without losing work: an outer group fans out tasks that each run an
	// inner group.
	p := NewPool(2)
	var count atomic.Int64
	outer := p.NewGroup()
	for i := 0; i < 50; i++ {
		outer.Spawn(func() {
			inner := p.NewGroup()
			for j := 0; j < 20; j++ {
				inner.Spawn(func() { count.Add(1) })
			}
			inner.Wait()
			count.Add(1)
		})
	}
	outer.Wait()
	if got := count.Load(); got != 50*21 {
		t.Fatalf("nested groups ran %d tasks, want %d", got, 50*21)
	}
}

func TestSpawnInlinesWhenSemaphoreFull(t *testing.T) {
	// Occupy every worker slot, then Spawn: the task must execute inline in
	// the caller (progress guarantee), visible in the inline counter.
	p := NewPool(2)
	block := make(chan struct{})
	g := p.NewGroup()
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		g.Spawn(func() {
			started <- struct{}{}
			<-block
		})
	}
	<-started
	<-started // both workers are now parked holding semaphore slots
	inlinedBefore := p.InlinedTasks()
	ran := false
	g2 := p.NewGroup()
	g2.Spawn(func() { ran = true })
	// Spawn returned, so an inline execution has already completed; no
	// Wait needed (and g2.Wait must also return immediately).
	g2.Wait()
	if !ran {
		t.Fatal("task did not run inline with a full semaphore")
	}
	if p.InlinedTasks() != inlinedBefore+1 {
		t.Fatalf("inline counter did not advance: %d -> %d",
			inlinedBefore, p.InlinedTasks())
	}
	close(block)
	g.Wait()
}

func TestParallelRangeEdgeCases(t *testing.T) {
	p := NewPool(8)
	// n = 0: the callback must never fire.
	p.ParallelRange(0, func(lo, hi int) { t.Fatal("called for n=0") })
	// n < workers: chunks are clamped to n, every index exactly once.
	for _, n := range []int{1, 3, 7} {
		hits := make([]int32, n)
		p.ParallelRange(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestParallelRangeWeightedCoversAllContiguously(t *testing.T) {
	p := NewPool(4)
	const n = 500
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = int64(i % 17)
	}
	hits := make([]int32, n)
	p.ParallelRangeWeighted(weights, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelRangeWeightedIsolatesHeavyItems(t *testing.T) {
	// One item dominating the total weight must not drag neighbors into its
	// chunk: the chunk holding the heavy item should be small.
	p := NewPool(4)
	weights := make([]int64, 100)
	for i := range weights {
		weights[i] = 1
	}
	weights[50] = 1_000_000
	var mu sync.Mutex
	var heavyChunk int
	p.ParallelRangeWeighted(weights, func(lo, hi int) {
		if lo <= 50 && 50 < hi {
			mu.Lock()
			heavyChunk = hi - lo
			mu.Unlock()
		}
	})
	if heavyChunk == 0 || heavyChunk > 52 {
		t.Fatalf("heavy item chunk size %d", heavyChunk)
	}
	// In fact the heavy item's weight exceeds the chunk target on its own,
	// so everything after it must land in later chunks.
	var after atomic.Int64
	p.ParallelRangeWeighted(weights, func(lo, hi int) {
		if lo <= 50 && 50 < hi {
			after.Store(int64(hi - 51))
		}
	})
	if after.Load() != 0 {
		t.Fatalf("heavy chunk extends %d items past the heavy item", after.Load())
	}
}

func TestParallelRangeWeightedDegenerateInputs(t *testing.T) {
	p := NewPool(4)
	// Empty weights: no calls.
	p.ParallelRangeWeighted(nil, func(lo, hi int) { t.Fatal("called for empty weights") })
	// All-zero and negative weights fall back to even chunking.
	weights := []int64{0, -5, 0, 0, -1}
	hits := make([]int32, len(weights))
	p.ParallelRangeWeighted(weights, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("zero-weight fallback: index %d visited %d times", i, h)
		}
	}
	// Single item.
	var one atomic.Int64
	p.ParallelRangeWeighted([]int64{42}, func(lo, hi int) { one.Add(int64(hi - lo)) })
	if one.Load() != 1 {
		t.Fatal("single-item weighted range wrong")
	}
}

func TestWorkerBusyNsAccounting(t *testing.T) {
	p := NewPool(3)
	g := p.NewGroup()
	for i := 0; i < 64; i++ {
		g.Spawn(func() {
			x := 0
			for j := 0; j < 200000; j++ {
				x += j
			}
			_ = x
		})
	}
	g.Wait()
	busy := p.WorkerBusyNs(nil)
	if len(busy) != p.Workers()+1 {
		t.Fatalf("got %d entries, want workers+1 = %d", len(busy), p.Workers()+1)
	}
	var total int64
	for _, b := range busy {
		if b < 0 {
			t.Fatalf("negative busy time: %v", busy)
		}
		total += b
	}
	if total <= 0 {
		t.Fatalf("no busy time recorded: %v", busy)
	}
	// Appending to a reused dst must not clobber prior content.
	dst := []int64{-7}
	out := p.WorkerBusyNs(dst)
	if out[0] != -7 || len(out) != 1+p.Workers()+1 {
		t.Fatalf("append contract broken: %v", out)
	}
	p.ResetWorkerBusy()
	for i, b := range p.WorkerBusyNs(nil) {
		if b != 0 {
			t.Fatalf("slot %d not reset: %d", i, b)
		}
	}
}

func TestSetReservedPartitionsSlots(t *testing.T) {
	p := NewPool(4)
	if p.Reserved() != 0 {
		t.Fatalf("fresh pool reserved = %d", p.Reserved())
	}
	p.SetReserved(1)
	if p.Reserved() != 1 {
		t.Fatalf("reserved = %d, want 1", p.Reserved())
	}
	// A ClassNear group must hand out only reserved slot ids; park a task on
	// the single reserved slot and verify the next near spawn runs inline.
	block := make(chan struct{})
	started := make(chan struct{})
	ng := p.NewGroupClass(ClassNear)
	ng.Spawn(func() { close(started); <-block })
	<-started
	inlinedBefore := p.InlinedTasks()
	ran := false
	ng2 := p.NewGroupClass(ClassNear)
	ng2.Spawn(func() { ran = true })
	ng2.Wait()
	if !ran || p.InlinedTasks() != inlinedBefore+1 {
		t.Fatalf("near task with exhausted reserved slots: ran=%v inlined %d -> %d",
			ran, inlinedBefore, p.InlinedTasks())
	}
	// Meanwhile the three general slots must still admit far work on
	// goroutines.
	spawnedBefore := p.SpawnedTasks()
	fg := p.NewGroupClass(ClassFar)
	var far atomic.Int64
	for i := 0; i < 3; i++ {
		fg.Spawn(func() { far.Add(1) })
	}
	fg.Wait()
	if far.Load() != 3 {
		t.Fatalf("far tasks ran %d times", far.Load())
	}
	if p.SpawnedTasks() == spawnedBefore {
		t.Fatal("no far task got a general slot while near held the reserved slot")
	}
	close(block)
	ng.Wait()
	// Release the reservation; near work shares general slots again.
	p.SetReserved(0)
	if p.Reserved() != 0 {
		t.Fatalf("reserved = %d after release", p.Reserved())
	}
}

func TestSetReservedClampsAndQuiesces(t *testing.T) {
	p := NewPool(3)
	p.SetReserved(99) // clamp to workers-1
	if p.Reserved() != 2 {
		t.Fatalf("reserved = %d, want 2", p.Reserved())
	}
	p.SetReserved(-5)
	if p.Reserved() != 0 {
		t.Fatalf("reserved = %d, want 0", p.Reserved())
	}
	// SetReserved must wait for in-flight tasks before repartitioning.
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	g := p.NewGroup()
	g.Spawn(func() { close(started); <-release; close(done) })
	<-started
	go func() { <-started; release <- struct{}{} }()
	p.SetReserved(1) // blocks until the running task returns its slot
	select {
	case <-done:
	default:
		t.Fatal("SetReserved returned while a task was still running")
	}
	g.Wait()
	p.SetReserved(0)
}

func TestConcurrentRangeAdmission(t *testing.T) {
	// Two parallel ranges of different classes driven from two goroutines
	// must both complete, covering every index exactly once, with class
	// busy time attributed to each. Run with and without a reservation.
	for _, reserved := range []int{0, 1} {
		p := NewPool(4)
		p.SetReserved(reserved)
		const n = 20000
		nearHits := make([]int32, n)
		farHits := make([]int32, n)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(i%13 + 1)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.ParallelRangeWeightedClass(ClassNear, weights, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&nearHits[i], 1)
				}
			})
		}()
		go func() {
			defer wg.Done()
			p.ParallelRangeClass(ClassFar, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&farHits[i], 1)
				}
			})
		}()
		wg.Wait()
		for i := 0; i < n; i++ {
			if nearHits[i] != 1 || farHits[i] != 1 {
				t.Fatalf("reserved=%d: index %d near=%d far=%d",
					reserved, i, nearHits[i], farHits[i])
			}
		}
		busy := p.ClassBusyNs(nil)
		if len(busy) != int(NumClasses) {
			t.Fatalf("class busy entries = %d, want %d", len(busy), NumClasses)
		}
		if busy[ClassNear] <= 0 || busy[ClassFar] <= 0 {
			t.Fatalf("reserved=%d: class busy not attributed: %v", reserved, busy)
		}
		p.ResetWorkerBusy()
		for c, b := range p.ClassBusyNs(nil) {
			if b != 0 {
				t.Fatalf("class %d busy not reset: %d", c, b)
			}
		}
		p.SetReserved(0)
	}
}

func TestClassStrings(t *testing.T) {
	if ClassGeneral.String() != "general" || ClassFar.String() != "far" ||
		ClassNear.String() != "near" {
		t.Fatalf("class names: %s/%s/%s", ClassGeneral, ClassFar, ClassNear)
	}
	if Class(200).String() != "class?" {
		t.Fatalf("out-of-range class name: %s", Class(200))
	}
}

func TestTimerStartTime(t *testing.T) {
	tm := StartTimer()
	if tm.StartTime().IsZero() {
		t.Fatal("timer start time is zero")
	}
	if tm.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}
