package sched

import (
	"sync/atomic"
	"testing"
)

func TestSpawnWaitRunsEverything(t *testing.T) {
	p := NewPool(4)
	g := p.NewGroup()
	var count atomic.Int64
	for i := 0; i < 1000; i++ {
		g.Spawn(func() { count.Add(1) })
	}
	g.Wait()
	if count.Load() != 1000 {
		t.Fatalf("ran %d tasks", count.Load())
	}
	if p.SpawnedTasks()+p.InlinedTasks() != 1000 {
		t.Fatalf("accounting: %d spawned + %d inlined",
			p.SpawnedTasks(), p.InlinedTasks())
	}
}

func TestNestedRecursionLikeOpenMPTasks(t *testing.T) {
	// The paper's pattern: recursive spawn per child + taskwait. Sum a
	// binary tree of depth 14 and verify the result.
	p := NewPool(3)
	var rec func(depth int) int64
	rec = func(depth int) int64 {
		if depth == 0 {
			return 1
		}
		var l, r int64
		g := p.NewGroup()
		g.Spawn(func() { l = rec(depth - 1) })
		g.Spawn(func() { r = rec(depth - 1) })
		g.Wait()
		return l + r
	}
	if got := rec(14); got != 1<<14 {
		t.Fatalf("tree sum = %d, want %d", got, 1<<14)
	}
}

func TestParallelRangeCoversAll(t *testing.T) {
	p := NewPool(4)
	const n = 10000
	hits := make([]int32, n)
	p.ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Degenerate sizes.
	p.ParallelRange(0, func(lo, hi int) { t.Fatal("called for n=0") })
	var one atomic.Int64
	p.ParallelRange(1, func(lo, hi int) { one.Add(int64(hi - lo)) })
	if one.Load() != 1 {
		t.Fatal("n=1 range wrong")
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}
