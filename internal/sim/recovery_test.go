package sim

import (
	"path/filepath"
	"testing"

	"afmm/internal/balance"
	"afmm/internal/checkpoint"
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/fault"
	"afmm/internal/kernels"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

// faultSolver builds a two-device gravity solver with an optional fault
// schedule. The balancer config used with it pins S (MinS == MaxS), so
// the search settles immediately without a rebuild and paired runs stay
// structurally comparable.
func faultSolver(t *testing.T, n int, spec string, mut func(cfg *core.Config)) *core.Solver {
	t.Helper()
	sys := distrib.UniformCube(n, 10, 5)
	cfg := core.Config{
		P: 4, S: 32, NumGPUs: 2,
		Kernel:   kernels.Gravity{G: 1, Softening: 1e-3},
		Watchdog: vgpu.WatchdogConfig{ChunkRows: 8},
	}
	if spec != "" {
		sch, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fault.NewInjector(sch)
	}
	if mut != nil {
		mut(&cfg)
	}
	return core.NewSolver(sys, cfg)
}

func pinnedCfg(steps int) Config {
	return Config{
		Dt:    1e-4,
		Steps: steps,
		Balance: balance.Config{
			Strategy: balance.StrategyStatic,
			MinS:     32, MaxS: 32,
		},
	}
}

func assertSameFinalState(t *testing.T, a, b *core.Solver) {
	t.Helper()
	phiA, phiB := a.Sys.PhiInInputOrder(), b.Sys.PhiInInputOrder()
	accA, accB := a.Sys.AccInInputOrder(), b.Sys.AccInInputOrder()
	posA, posB := a.Sys.Pos, b.Sys.Pos
	for i := range phiA {
		if phiA[i] != phiB[i] || accA[i] != accB[i] {
			t.Fatalf("final state diverged at body %d: phi %x vs %x", i, phiA[i], phiB[i])
		}
	}
	for i := range posA {
		if posA[i] != posB[i] {
			t.Fatalf("positions diverged at body %d", i)
		}
	}
}

// TestFaultySimBitIdenticalViaFallback: a run that loses a device to
// fail-stop and has another straggling completes through the host
// fallback — no failed steps, no recoveries — and its trajectory is
// bit-for-bit the fault-free one.
func TestFaultySimBitIdenticalViaFallback(t *testing.T) {
	const steps = 6
	a := faultSolver(t, 2000, "", nil)
	b := faultSolver(t, 2000, "gpu0:failstop@step2,gpu1:straggle2@step4", nil)
	ra := RunGravity(a, pinnedCfg(steps))
	rb := RunGravity(b, pinnedCfg(steps))
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("runs errored: %v / %v", ra.Err, rb.Err)
	}
	if rb.Recoveries != 0 {
		t.Fatalf("fallback path took %d recoveries, want 0", rb.Recoveries)
	}
	if len(rb.Records) != steps {
		t.Fatalf("got %d records, want %d", len(rb.Records), steps)
	}
	assertSameFinalState(t, a, b)
	if rep := b.Cluster.LastReport(); rep.DeadDevices != 1 {
		t.Fatalf("dead devices = %d, want 1", rep.DeadDevices)
	}
}

// TestRecoveryRestoresAndRerunsDegraded: with the host fallback disabled,
// a fail-stop loss fails its step; the loop restores the auto-checkpoint
// and re-runs degraded (survivor-only partition), finishing with the same
// bits as the fault-free run. Dt is zero so the mid-run restore's tree
// rebuild reproduces the original decomposition exactly.
func TestRecoveryRestoresAndRerunsDegraded(t *testing.T) {
	const steps = 6
	rec := telemetry.New(telemetry.Options{Keep: true})
	a := faultSolver(t, 2000, "", nil)
	b := faultSolver(t, 2000, "gpu1:failstop@step3", func(cfg *core.Config) {
		cfg.Watchdog.DisableFallback = true
	})
	cfgA := pinnedCfg(steps)
	cfgA.Dt = 0
	cfgB := pinnedCfg(steps)
	cfgB.Dt = 0
	cfgB.CheckpointEvery = 2
	cfgB.Rec = rec
	ra := RunGravity(a, cfgA)
	rb := RunGravity(b, cfgB)
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("runs errored: %v / %v", ra.Err, rb.Err)
	}
	if rb.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", rb.Recoveries)
	}
	if len(rb.Records) != steps {
		t.Fatalf("got %d standing records, want %d", len(rb.Records), steps)
	}
	assertSameFinalState(t, a, b)

	// The trace shows the failure and the restore-from-step-2.
	var sawFail, sawRestore bool
	for _, sr := range rec.Steps() {
		for _, e := range sr.Events {
			switch e.Kind {
			case telemetry.EventStepFail:
				sawFail = true
				if e.A != 3 {
					t.Fatalf("step_fail at %d, want 3", e.A)
				}
			case telemetry.EventRestore:
				sawRestore = true
				if e.A != 3 || e.B != 2 {
					t.Fatalf("restore = failing %d from snapshot %d, want 3 from 2", e.A, e.B)
				}
			}
		}
	}
	if !sawFail || !sawRestore {
		t.Fatal("trace missing step_fail/restore events")
	}
}

// TestRecoveryGivesUpAfterMaxRecoveries: a fault that every re-run hits
// again (all devices dead, fallback disabled) exhausts the recovery
// budget and surfaces the error instead of looping forever.
func TestRecoveryGivesUpAfterMaxRecoveries(t *testing.T) {
	s := faultSolver(t, 1200, "gpu0:failstop@step1,gpu1:failstop@step1", func(cfg *core.Config) {
		cfg.Watchdog.DisableFallback = true
	})
	cfg := pinnedCfg(6)
	cfg.Dt = 0
	cfg.MaxRecoveries = 2
	res := RunGravity(s, cfg)
	if res.Err == nil {
		t.Fatal("unrecoverable run reported success")
	}
	if res.Recoveries != 3 { // 2 allowed + the failing third
		t.Fatalf("recoveries = %d, want 3", res.Recoveries)
	}
}

// TestCheckpointStreamingOverlapBitIdentical: with CheckpointEvery=1 every
// step computes while the previous snapshot's gob encode + fsync streams to
// disk in the background. The overlap must not perturb the trajectory — the
// run is bit-for-bit the checkpoint-free one — and the final on-disk
// snapshot must be the last captured boundary.
func TestCheckpointStreamingOverlapBitIdentical(t *testing.T) {
	const steps = 6
	dir := t.TempDir()
	plain := faultSolver(t, 1500, "", nil)
	if res := RunGravity(plain, pinnedCfg(steps)); res.Err != nil {
		t.Fatal(res.Err)
	}

	ckpt := faultSolver(t, 1500, "", nil)
	cfg := pinnedCfg(steps)
	cfg.CheckpointEvery = 1
	cfg.CheckpointDir = dir
	res := RunGravity(ckpt, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Checkpoints != steps {
		t.Fatalf("checkpoints = %d, want %d", res.Checkpoints, steps)
	}
	assertSameFinalState(t, plain, ckpt)

	sn, err := checkpoint.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Step != steps {
		t.Fatalf("final snapshot at step %d, want %d", sn.Step, steps)
	}
	// The persisted snapshot must restore to exactly the final state the
	// checkpointed run ended with.
	sys, err := sn.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sys.Pos {
		if p != ckpt.Sys.Pos[i] {
			t.Fatalf("restored pos[%d] %v != live %v", i, p, ckpt.Sys.Pos[i])
		}
	}
}

// TestAutoCheckpointAndResume: the rolling on-disk checkpoint restores
// into a fresh solver and the resumed loop continues from the snapshot's
// step to the target.
func TestAutoCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	s := faultSolver(t, 1500, "", nil)
	cfg := pinnedCfg(4)
	cfg.CheckpointEvery = 2
	cfg.CheckpointDir = dir
	res := RunGravity(s, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", res.Checkpoints)
	}

	sn, err := checkpoint.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Step != 4 || !sn.HasBal {
		t.Fatalf("snapshot step=%d hasBal=%v, want 4/true", sn.Step, sn.HasBal)
	}
	sys, err := sn.Restore()
	if err != nil {
		t.Fatal(err)
	}
	s2 := core.NewSolver(sys, core.Config{
		P: 4, S: sn.S, NumGPUs: 2,
		Kernel: kernels.Gravity{G: 1, Softening: 1e-3},
	})
	cfg2 := pinnedCfg(7)
	cfg2.Resume = &sn
	res2 := RunGravity(s2, cfg2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if len(res2.Records) != 3 {
		t.Fatalf("resumed run has %d records, want 3", len(res2.Records))
	}
	if res2.Records[0].Step != 4 || res2.Records[2].Step != 6 {
		t.Fatalf("resumed steps %d..%d, want 4..6",
			res2.Records[0].Step, res2.Records[2].Step)
	}
}
