// Package sim drives time-dependent simulations: a symplectic integrator
// for the gravitational problem, an overdamped marker update for the
// Stokes problem, per-step refills of the decomposition, and the paper's
// three load-balancing strategies with full per-step records (the data
// behind Figures 8-10 and Table II).
package sim

import (
	"fmt"
	"io"
	"math"
	"path/filepath"

	"afmm/internal/balance"
	"afmm/internal/checkpoint"
	"afmm/internal/core"
	"afmm/internal/geom"
	"afmm/internal/metrics"
	"afmm/internal/particle"
	"afmm/internal/sched"
	"afmm/internal/stokes"
	"afmm/internal/telemetry"
)

// CheckpointFile is the rolling auto-checkpoint filename inside
// Config.CheckpointDir (atomically replaced on every write).
const CheckpointFile = "auto.ckpt"

// Config controls a run.
type Config struct {
	Dt      float64
	Steps   int
	Balance balance.Config
	// CheckpointEvery K > 0 snapshots the run after every K completed
	// steps: an in-memory snapshot is always kept for step-level recovery,
	// and when CheckpointDir is set it is also persisted atomically
	// (temp file + rename) as CheckpointDir/auto.ckpt. K <= 0 keeps only
	// the run's initial state, so recovery restarts from the beginning.
	CheckpointEvery int
	CheckpointDir   string
	// MaxRecoveries bounds how many failed steps the loop will recover
	// from (restore the last snapshot, re-run degraded) before giving up
	// and returning the error in Result.Err. Default 3.
	MaxRecoveries int
	// Resume, when non-nil, seeds the run from a checkpoint: the caller
	// has already restored the bodies into the solver (and built it with
	// the snapshot's S); the loop imports the balancer FSM state and
	// continues step numbering from Snapshot.Step toward Steps.
	Resume *checkpoint.Snapshot
	// Trace, when non-nil, receives one JSON line per step — the
	// telemetry.StepRecord schema (timings, S, balancer state and typed
	// events, phase spans, cost-model observation). When Rec is nil a
	// recorder is created internally to feed it.
	Trace io.Writer
	// Rec, when non-nil, is the telemetry recorder the run threads through
	// the solver, the balancer, and the step loop (use Options.Keep +
	// WriteChrome for a timeline export). Takes precedence over creating
	// one from Trace.
	Rec *telemetry.Recorder
	// Observe, when non-nil, is called after each step's solve+move with
	// the step's potentials and accelerations (velocities, for Stokes)
	// permuted back to input order. Both slices are loop-owned buffers
	// refilled in place every step (particle's allocation-free Into
	// permuters), so the whole run costs two allocations, not two per
	// step — copy anything that must survive the callback.
	Observe func(step int, phi []float64, acc []geom.Vec3)
	// OverlapObserve runs the Observe callback concurrently with the next
	// step's tree refill (the companion of the solvers' task-graph path:
	// step k's observation tail and step k+1's structure maintenance have
	// no data dependency once the input-order buffers are captured —
	// Refill permutes the storage arrays, not the copies). The callback
	// must then only read its arguments, not the solver's system. Results
	// are unchanged; the refill cost hides behind the observation.
	OverlapObserve bool
}

// StepRecord captures one time step. The *Ns fields are host wall-clock
// phase durations (the breakdown solvers report via StepTimes.Host plus
// the loop's own refill timing); the float64 times are virtual-machine
// seconds.
type StepRecord struct {
	Step    int
	S       int
	CPUTime float64
	GPUTime float64
	Compute float64
	LBTime  float64
	Refill  float64
	Total   float64
	State   string

	ListNs   int64 // interaction-list build/repair/skip
	FarNs    int64 // up+down sweeps (+ split L2P when overlapped)
	NearNs   int64 // near-field execution
	RefillNs int64 // tree refill
	WallNs   int64 // whole step (solve + move + refill + balance)

	// SerialWallNs is WallNs plus the time the solver saved by running
	// its near and far phases concurrently (== WallNs on sequential
	// steps); Overlapped marks steps whose solve overlapped.
	SerialWallNs int64
	Overlapped   bool
}

// Result aggregates a run.
type Result struct {
	Records      []StepRecord
	TotalCompute float64
	TotalLB      float64
	TotalRefill  float64
	TotalTime    float64
	// Recoveries counts failed steps the loop recovered from (restore +
	// degraded re-run); Checkpoints counts snapshots taken. Err is set
	// when the run aborted — a step kept failing past MaxRecoveries, or a
	// checkpoint could not be written.
	Recoveries  int
	Checkpoints int
	Err         error
}

// LBPercent returns total LB time as a percentage of total compute time
// (the Table II metric).
func (r Result) LBPercent() float64 {
	if r.TotalCompute == 0 {
		return 0
	}
	return 100 * r.TotalLB / r.TotalCompute
}

// MeanTotalPerStep returns the average per-step total time.
func (r Result) MeanTotalPerStep() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.TotalTime / float64(len(r.Records))
}

// WriteCSV emits the records as CSV.
func (r Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,S,cpu,gpu,compute,lb,refill,total,state,list_ns,far_ns,near_ns,refill_ns,wall_ns,serial_wall_ns,overlapped"); err != nil {
		return err
	}
	for _, rec := range r.Records {
		ov := 0
		if rec.Overlapped {
			ov = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%s,%d,%d,%d,%d,%d,%d,%d\n",
			rec.Step, rec.S, rec.CPUTime, rec.GPUTime, rec.Compute,
			rec.LBTime, rec.Refill, rec.Total, rec.State,
			rec.ListNs, rec.FarNs, rec.NearNs, rec.RefillNs, rec.WallNs,
			rec.SerialWallNs, ov); err != nil {
			return err
		}
	}
	return nil
}

// Stepper is the solver surface the shared step loop drives: the
// balancer's Target plus the per-step tree refill and telemetry hookup.
type Stepper interface {
	balance.Target
	Refill()
	SetRecorder(*telemetry.Recorder)
}

// restoreInto copies a snapshot's bodies back into the stepper's system
// (the arrays are same-length: snapshots never resize a run), rebuilds
// the decomposition at the snapshot's S, and re-imports the balancer FSM.
func restoreInto(s Stepper, bal *balance.Balancer, sn *checkpoint.Snapshot) {
	sys := s.System()
	copy(sys.Pos, sn.Pos)
	copy(sys.Vel, sn.Vel)
	copy(sys.Aux, sn.Aux)
	copy(sys.Mass, sn.Mass)
	copy(sys.Index, sn.Index)
	s.Rebuild(sn.S)
	if sn.HasBal {
		bal.Import(sn.Bal)
	}
}

// trimTo drops records from failed-then-replayed steps (step >= from) and
// recomputes the running totals, so a recovered run's Result reads like
// the steps that actually stand.
func (r *Result) trimTo(from int) {
	keep := r.Records[:0]
	for _, rec := range r.Records {
		if rec.Step < from {
			keep = append(keep, rec)
		}
	}
	r.Records = keep
	r.TotalCompute, r.TotalLB, r.TotalRefill, r.TotalTime = 0, 0, 0, 0
	for _, rec := range r.Records {
		r.TotalCompute += rec.Compute
		r.TotalLB += rec.LBTime
		r.TotalRefill += rec.Refill
		r.TotalTime += rec.Total
	}
}

// runLoop is the single step loop behind RunGravity and RunStokes, so the
// refill/balance/trace accounting cannot drift between the two problems.
// solveAndMove performs one solve plus the problem's position update and
// returns the step's virtual CPU/GPU times and the solver's host phase
// breakdown; a non-nil error marks the step failed with the system in an
// untrusted state (the position update must not have run).
//
// Failed steps recover through the checkpoint machinery: the loop
// restores the last snapshot (taken every CheckpointEvery steps; at least
// the run's initial state), re-runs from there — degraded, since a lost
// device stays lost across the restore — and gives up with Result.Err
// after MaxRecoveries failures.
func runLoop(s Stepper, cfg Config, solveAndMove func(rec *telemetry.Recorder) (cpu, gpu float64, host telemetry.HostPhases, err error)) Result {
	rec := cfg.Rec
	if rec == nil && cfg.Trace != nil {
		rec = telemetry.New(telemetry.Options{JSONL: cfg.Trace})
	}
	if rec.Enabled() {
		s.SetRecorder(rec)
		cfg.Balance.Rec = rec
	}
	if cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = 3
	}
	// Resilience counters (the zero Counter is inert when no registry is
	// attached, so the loop body increments unconditionally).
	var ckptCtr, recovCtr metrics.Counter
	if reg := rec.Metrics(); reg.Enabled() {
		ckptCtr = reg.Counter("afmm_checkpoints_total", "snapshots captured by the step loop")
		recovCtr = reg.Counter("afmm_recoveries_total", "snapshot restorations after failed steps")
	}
	bal := balance.New(cfg.Balance, s.System().Len())
	var res Result
	startStep := 0
	// Snapshots double-buffer: the capture (a memcpy of the bodies) runs on
	// the step boundary, but the gob encode + fsync + rename streams to disk
	// on a background goroutine while the next step computes. Alternating
	// buffers let the writer encode one snapshot while the loop captures the
	// next; a buffer is only reused after its write has been joined. The
	// in-memory lastSnap pointer always names the newest capture, so
	// step-level recovery never waits on the disk.
	var snapBufs [2]checkpoint.Snapshot
	snapCur := 0
	var lastSnap *checkpoint.Snapshot
	var writeDone chan error // nil when no write is in flight
	joinWrite := func() error {
		if writeDone == nil {
			return nil
		}
		tok := rec.Begin(telemetry.SpanCkptWait, 0)
		err := <-writeDone
		rec.End(tok)
		writeDone = nil
		return err
	}
	if cfg.Resume != nil {
		snapBufs[0] = *cfg.Resume
		lastSnap = &snapBufs[0]
		snapCur = 1
		startStep = lastSnap.Step
		if lastSnap.HasBal {
			bal.Import(lastSnap.Bal)
		}
	} else {
		checkpoint.CaptureStateInto(&snapBufs[0], s.System(), s.S(), 0, 0, bal)
		lastSnap = &snapBufs[0]
		snapCur = 1
	}
	saveSnap := func(step int) bool {
		tok := rec.Begin(telemetry.SpanCheckpoint, 0)
		defer rec.End(tok)
		// Writes to the rolling file must commit in order, and the buffer
		// about to be recaptured may still be under encode — join first.
		if err := joinWrite(); err != nil {
			res.Err = err
			return false
		}
		sn := &snapBufs[snapCur]
		snapCur = 1 - snapCur
		checkpoint.CaptureStateInto(sn, s.System(), s.S(), step, float64(step)*cfg.Dt, bal)
		lastSnap = sn
		res.Checkpoints++
		ckptCtr.Inc()
		if cfg.CheckpointDir != "" {
			path := filepath.Join(cfg.CheckpointDir, CheckpointFile)
			writeDone = make(chan error, 1)
			done := writeDone
			go func() { done <- checkpoint.WriteFile(path, *sn) }()
		}
		return true
	}
	// Input-order observation buffers, reused across steps (see
	// Config.Observe).
	var phiBuf []float64
	var accBuf []geom.Vec3
	for step := startStep; step < cfg.Steps; step++ {
		rec.StartStep(step)
		wallTimer := sched.StartTimer()
		cpu, gpu, host, serr := solveAndMove(rec)
		if serr != nil {
			rec.EmitEvent(telemetry.EventStepFail, int64(step), 0, 0, 0)
			res.Recoveries++
			recovCtr.Inc()
			if res.Recoveries > cfg.MaxRecoveries {
				rec.EndStep()
				res.Err = fmt.Errorf("sim: step %d failed after %d recoveries: %w",
					step, cfg.MaxRecoveries, serr)
				joinWrite()
				return res
			}
			rt := sched.StartTimer()
			restoreInto(s, bal, lastSnap)
			rec.AddSpan(telemetry.SpanRestore, 0, rt.StartTime(), rt.Elapsed())
			rec.EmitEvent(telemetry.EventRestore, int64(step), int64(lastSnap.Step), 0, 0)
			rec.EndStep()
			res.trimTo(lastSnap.Step)
			step = lastSnap.Step - 1 // re-run from the snapshot, degraded
			continue
		}
		compute := math.Max(cpu, gpu)
		// Observation tail: capture the input-order copies before Refill
		// (which permutes the storage arrays), then either run the callback
		// inline or — with OverlapObserve — concurrently with the refill,
		// the copies being the only data the two share is severed from.
		var obsDone chan struct{}
		var obsPanic any
		if cfg.Observe != nil {
			sys := s.System()
			phiBuf = sys.PhiInInputOrderInto(phiBuf)
			accBuf = sys.AccInInputOrderInto(accBuf)
			if cfg.OverlapObserve {
				obsDone = make(chan struct{})
				go func() {
					defer close(obsDone)
					defer func() { obsPanic = recover() }()
					cfg.Observe(step, phiBuf, accBuf)
				}()
			} else {
				cfg.Observe(step, phiBuf, accBuf)
			}
		}
		refillTimer := sched.StartTimer()
		s.Refill()
		refillDur := refillTimer.Elapsed()
		rec.AddSpan(telemetry.SpanRefill, 0, refillTimer.StartTime(), refillDur)
		if obsDone != nil {
			<-obsDone
			if obsPanic != nil {
				// Re-raise the observer's failure on the loop goroutine.
				panic(obsPanic)
			}
		}
		refill := bal.Cfg.Costs.RefillCost(s)
		balTimer := sched.StartTimer()
		rep := bal.AfterStep(s, balance.StepTimes{CPU: cpu, GPU: gpu})
		rec.AddSpan(telemetry.SpanBalance, 0, balTimer.StartTime(), balTimer.Elapsed())
		wall := wallTimer.Elapsed()
		r := StepRecord{
			Step:     step,
			S:        rep.NewS,
			CPUTime:  cpu,
			GPUTime:  gpu,
			Compute:  compute,
			LBTime:   rep.LBTime,
			Refill:   refill,
			Total:    compute + rep.LBTime + refill,
			State:    rep.State.String(),
			ListNs:   host.List.Nanoseconds(),
			FarNs:    host.Far.Nanoseconds(),
			NearNs:   host.Near.Nanoseconds(),
			RefillNs: refillDur.Nanoseconds(),
			WallNs:   wall.Nanoseconds(),
			// The overlap saving is solve-internal; lift it onto the step
			// wall so per-step sequential-vs-overlapped comparisons read
			// directly off the record.
			SerialWallNs: (wall + (host.SerialWall - host.Wall)).Nanoseconds(),
			Overlapped:   host.Overlapped,
		}
		rec.SetStepInfo(step, rep.NewS, r.State)
		rec.SetBalance(rep.LBTime, refill)
		rec.EndStep()
		res.Records = append(res.Records, r)
		res.TotalCompute += r.Compute
		res.TotalLB += r.LBTime
		res.TotalRefill += r.Refill
		res.TotalTime += r.Total
		if cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 {
			// Snapshot after the completed step (post-move, post-balance),
			// so a restore re-runs from exactly this boundary.
			if !saveSnap(step + 1) {
				joinWrite()
				return res
			}
		}
	}
	// Drain the last streaming write so the on-disk checkpoint is committed
	// (and its error reported) before the run returns.
	if err := joinWrite(); err != nil && res.Err == nil {
		res.Err = err
	}
	return res
}

// RunGravity advances the gravitational system for cfg.Steps steps with
// the given balancing strategy. Each step: solve (compute time), kick-drift
// integrate, refill the tree, then let the balancer act for the next step.
// A failed solve (device fault with recovery disabled, validation error,
// worker panic) skips the integrator and triggers checkpoint recovery.
func RunGravity(s *core.Solver, cfg Config) Result {
	return runLoop(s, cfg, func(rec *telemetry.Recorder) (cpu, gpu float64, host telemetry.HostPhases, err error) {
		st, err := s.SolveChecked()
		if err != nil {
			return 0, 0, st.Host, err
		}
		intTimer := sched.StartTimer()
		KickDrift(s.Sys, cfg.Dt)
		rec.AddSpan(telemetry.SpanIntegrate, 0, intTimer.StartTime(), intTimer.Elapsed())
		return st.CPUTime, st.GPUTime, st.Host, nil
	})
}

// RunStokes advances an overdamped Stokes simulation: boundary forces are
// evaluated, the Stokes solve yields marker velocities, markers move with
// the flow, and the balancer acts between steps.
func RunStokes(s *stokes.Solver, boundaries []stokes.Boundary, cfg Config) Result {
	return runLoop(s, cfg, func(rec *telemetry.Recorder) (cpu, gpu float64, host telemetry.HostPhases, err error) {
		forceTimer := sched.StartTimer()
		stokes.ClearForces(s.Sys)
		for _, b := range boundaries {
			b.AccumulateForces(s.Sys)
		}
		rec.AddSpan(telemetry.SpanForces, 0, forceTimer.StartTime(), forceTimer.Elapsed())
		st, err := s.SolveChecked()
		if err != nil {
			return 0, 0, st.Host, err
		}
		intTimer := sched.StartTimer()
		for i := range s.Sys.Pos {
			s.Sys.Pos[i] = s.Sys.Pos[i].Add(s.Sys.Acc[i].Scale(cfg.Dt))
		}
		rec.AddSpan(telemetry.SpanIntegrate, 0, intTimer.StartTime(), intTimer.Elapsed())
		return st.CPUTime, st.GPUTime, st.Host, nil
	})
}

// KickDrift advances velocities then positions (symplectic Euler), using
// the accelerations of the last solve.
func KickDrift(sys *particle.System, dt float64) {
	for i := range sys.Pos {
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
}

// SuggestDt returns an adaptive time step: eta * min_i sqrt(eps / |a_i|),
// the standard softened-N-body criterion, clamped to [dtMin, dtMax]. Use
// after a Solve so sys.Acc is current.
func SuggestDt(sys *particle.System, eps, eta, dtMin, dtMax float64) float64 {
	best := dtMax
	for i := range sys.Acc {
		a := sys.Acc[i].Norm()
		if a <= 0 {
			continue
		}
		dt := eta * math.Sqrt(eps/a)
		if dt < best {
			best = dt
		}
	}
	if best < dtMin {
		best = dtMin
	}
	return best
}

// Energies returns the kinetic and potential energy of the system using
// the potentials of the last solve (pot = 1/2 sum m_i phi_i).
func Energies(sys *particle.System) (kin, pot float64) {
	for i := range sys.Pos {
		kin += 0.5 * sys.Mass[i] * sys.Vel[i].Norm2()
		pot += 0.5 * sys.Mass[i] * sys.Phi[i]
	}
	return kin, pot
}

// AngularMomentum returns the total angular momentum about the origin.
func AngularMomentum(sys *particle.System) geom.Vec3 {
	var l geom.Vec3
	for i := range sys.Pos {
		l = l.Add(sys.Pos[i].Cross(sys.Vel[i]).Scale(sys.Mass[i]))
	}
	return l
}
