// Package sim drives time-dependent simulations: a symplectic integrator
// for the gravitational problem, an overdamped marker update for the
// Stokes problem, per-step refills of the decomposition, and the paper's
// three load-balancing strategies with full per-step records (the data
// behind Figures 8-10 and Table II).
package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"afmm/internal/balance"
	"afmm/internal/core"
	"afmm/internal/geom"
	"afmm/internal/particle"
	"afmm/internal/stokes"
)

// Config controls a run.
type Config struct {
	Dt      float64
	Steps   int
	Balance balance.Config
	// Trace, when non-nil, receives one JSON line per step (timings, S,
	// balancer state and events) — machine-readable observability for
	// long runs.
	Trace io.Writer
}

// traceLine is the JSON schema of one trace record.
type traceLine struct {
	Step    int      `json:"step"`
	S       int      `json:"s"`
	CPU     float64  `json:"cpu"`
	GPU     float64  `json:"gpu"`
	Compute float64  `json:"compute"`
	LB      float64  `json:"lb"`
	Total   float64  `json:"total"`
	State   string   `json:"state"`
	Events  []string `json:"events,omitempty"`
}

func emitTrace(w io.Writer, rec StepRecord, events []string) {
	if w == nil {
		return
	}
	b, err := json.Marshal(traceLine{
		Step: rec.Step, S: rec.S, CPU: rec.CPUTime, GPU: rec.GPUTime,
		Compute: rec.Compute, LB: rec.LBTime, Total: rec.Total,
		State: rec.State, Events: events,
	})
	if err == nil {
		b = append(b, 0x0a)
		w.Write(b)
	}
}

// StepRecord captures one time step.
type StepRecord struct {
	Step    int
	S       int
	CPUTime float64
	GPUTime float64
	Compute float64
	LBTime  float64
	Refill  float64
	Total   float64
	State   string
}

// Result aggregates a run.
type Result struct {
	Records      []StepRecord
	TotalCompute float64
	TotalLB      float64
	TotalRefill  float64
	TotalTime    float64
}

// LBPercent returns total LB time as a percentage of total compute time
// (the Table II metric).
func (r Result) LBPercent() float64 {
	if r.TotalCompute == 0 {
		return 0
	}
	return 100 * r.TotalLB / r.TotalCompute
}

// MeanTotalPerStep returns the average per-step total time.
func (r Result) MeanTotalPerStep() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.TotalTime / float64(len(r.Records))
}

// WriteCSV emits the records as CSV.
func (r Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,S,cpu,gpu,compute,lb,refill,total,state"); err != nil {
		return err
	}
	for _, rec := range r.Records {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%s\n",
			rec.Step, rec.S, rec.CPUTime, rec.GPUTime, rec.Compute,
			rec.LBTime, rec.Refill, rec.Total, rec.State); err != nil {
			return err
		}
	}
	return nil
}

// Stepper is the solver surface the shared step loop drives: the
// balancer's Target plus the per-step tree refill.
type Stepper interface {
	balance.Target
	Refill()
}

// runLoop is the single step loop behind RunGravity and RunStokes, so the
// refill/balance/trace accounting cannot drift between the two problems.
// solveAndMove performs one solve plus the problem's position update and
// returns the step's virtual CPU/GPU times.
func runLoop(s Stepper, cfg Config, solveAndMove func() (cpu, gpu float64)) Result {
	bal := balance.New(cfg.Balance, s.System().Len())
	var res Result
	for step := 0; step < cfg.Steps; step++ {
		cpu, gpu := solveAndMove()
		compute := math.Max(cpu, gpu)
		s.Refill()
		refill := bal.Cfg.Costs.RefillCost(s)
		rep := bal.AfterStep(s, balance.StepTimes{CPU: cpu, GPU: gpu})
		rec := StepRecord{
			Step:    step,
			S:       rep.NewS,
			CPUTime: cpu,
			GPUTime: gpu,
			Compute: compute,
			LBTime:  rep.LBTime,
			Refill:  refill,
			Total:   compute + rep.LBTime + refill,
			State:   rep.State.String(),
		}
		emitTrace(cfg.Trace, rec, rep.Events)
		res.Records = append(res.Records, rec)
		res.TotalCompute += rec.Compute
		res.TotalLB += rec.LBTime
		res.TotalRefill += rec.Refill
		res.TotalTime += rec.Total
	}
	return res
}

// RunGravity advances the gravitational system for cfg.Steps steps with
// the given balancing strategy. Each step: solve (compute time), kick-drift
// integrate, refill the tree, then let the balancer act for the next step.
func RunGravity(s *core.Solver, cfg Config) Result {
	return runLoop(s, cfg, func() (cpu, gpu float64) {
		st := s.Solve()
		KickDrift(s.Sys, cfg.Dt)
		return st.CPUTime, st.GPUTime
	})
}

// RunStokes advances an overdamped Stokes simulation: boundary forces are
// evaluated, the Stokes solve yields marker velocities, markers move with
// the flow, and the balancer acts between steps.
func RunStokes(s *stokes.Solver, boundaries []stokes.Boundary, cfg Config) Result {
	return runLoop(s, cfg, func() (cpu, gpu float64) {
		stokes.ClearForces(s.Sys)
		for _, b := range boundaries {
			b.AccumulateForces(s.Sys)
		}
		st := s.Solve()
		for i := range s.Sys.Pos {
			s.Sys.Pos[i] = s.Sys.Pos[i].Add(s.Sys.Acc[i].Scale(cfg.Dt))
		}
		return st.CPUTime, st.GPUTime
	})
}

// KickDrift advances velocities then positions (symplectic Euler), using
// the accelerations of the last solve.
func KickDrift(sys *particle.System, dt float64) {
	for i := range sys.Pos {
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
}

// SuggestDt returns an adaptive time step: eta * min_i sqrt(eps / |a_i|),
// the standard softened-N-body criterion, clamped to [dtMin, dtMax]. Use
// after a Solve so sys.Acc is current.
func SuggestDt(sys *particle.System, eps, eta, dtMin, dtMax float64) float64 {
	best := dtMax
	for i := range sys.Acc {
		a := sys.Acc[i].Norm()
		if a <= 0 {
			continue
		}
		dt := eta * math.Sqrt(eps/a)
		if dt < best {
			best = dt
		}
	}
	if best < dtMin {
		best = dtMin
	}
	return best
}

// Energies returns the kinetic and potential energy of the system using
// the potentials of the last solve (pot = 1/2 sum m_i phi_i).
func Energies(sys *particle.System) (kin, pot float64) {
	for i := range sys.Pos {
		kin += 0.5 * sys.Mass[i] * sys.Vel[i].Norm2()
		pot += 0.5 * sys.Mass[i] * sys.Phi[i]
	}
	return kin, pot
}

// AngularMomentum returns the total angular momentum about the origin.
func AngularMomentum(sys *particle.System) geom.Vec3 {
	var l geom.Vec3
	for i := range sys.Pos {
		l = l.Add(sys.Pos[i].Cross(sys.Vel[i]).Scale(sys.Mass[i]))
	}
	return l
}
