package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"afmm/internal/balance"
	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/geom"
	"afmm/internal/kernels"
	"afmm/internal/particle"
	"afmm/internal/stokes"
	"afmm/internal/telemetry"
	"afmm/internal/vgpu"
)

// dynamicSolver builds a cold truncated Plummer sphere (it violently
// collapses, bounces and virializes at a more concentrated profile) — the
// evolving workload of §IX.A, scaled down, on the derated device model.
func dynamicSolver(n int, seed int64) *core.Solver {
	sys := distrib.PlummerTruncated(n, 1, 1, 0.8, seed)
	for i := range sys.Vel {
		sys.Vel[i] = geom.Vec3{}
	}
	cfg := core.Config{
		P:       2,
		S:       64,
		NumGPUs: 2,
		GPUSpec: vgpu.ScaledSpec(1.0 / 64),
		Kernel:  kernels.Gravity{G: 1, Softening: 0.005},
	}
	cfg.CPU.Cores = 10
	return core.NewSolver(sys, cfg)
}

func simCfg(strategy balance.Strategy, steps int) Config {
	return Config{
		Dt:    2e-4,
		Steps: steps,
		Balance: balance.Config{
			Strategy: strategy,
		},
	}
}

func TestRunGravityProducesRecords(t *testing.T) {
	s := dynamicSolver(1200, 1)
	res := RunGravity(s, simCfg(balance.StrategyFull, 30))
	if len(res.Records) != 30 {
		t.Fatalf("got %d records", len(res.Records))
	}
	if res.TotalCompute <= 0 || res.TotalTime < res.TotalCompute {
		t.Fatalf("inconsistent totals: %+v", res)
	}
	for _, r := range res.Records {
		if r.Total < r.Compute || r.S <= 0 {
			t.Fatalf("bad record: %+v", r)
		}
	}
	if err := s.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyDriftBounded(t *testing.T) {
	// Symplectic integration of a mildly softened Plummer sphere should
	// not blow up over a few dozen steps.
	s := dynamicSolver(800, 2)
	s.Solve()
	k0, p0 := Energies(s.Sys)
	e0 := k0 + p0
	res := RunGravity(s, simCfg(balance.StrategyFull, 40))
	_ = res
	s.Solve()
	k1, p1 := Energies(s.Sys)
	e1 := k1 + p1
	if math.Abs(e1-e0) > 0.2*math.Abs(e0) {
		t.Fatalf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestStrategyOrdering(t *testing.T) {
	// The paper's headline comparison (Table II): on the evolving
	// workload the full strategy's average per-step total beats the
	// enforce-only strategy, which beats the static strategy. The
	// contrast needs a body count where the near-field cost is sensitive
	// to leaf occupancy, so this test is long.
	if testing.Short() {
		t.Skip("strategy ordering needs a long run; skipped with -short")
	}
	const n, steps = 8000, 250
	run := func(strategy balance.Strategy) Result {
		s := dynamicSolver(n, 7)
		return RunGravity(s, simCfg(strategy, steps))
	}
	static := run(balance.StrategyStatic)
	enforce := run(balance.StrategyEnforce)
	full := run(balance.StrategyFull)
	t.Logf("per-step totals: static=%.5f enforce=%.5f full=%.5f",
		static.MeanTotalPerStep(), enforce.MeanTotalPerStep(), full.MeanTotalPerStep())
	if full.MeanTotalPerStep() > static.MeanTotalPerStep() {
		t.Fatalf("full strategy (%g) not better than static (%g)",
			full.MeanTotalPerStep(), static.MeanTotalPerStep())
	}
	if enforce.MeanTotalPerStep() > static.MeanTotalPerStep()*1.02 {
		t.Fatalf("enforce-only (%g) not better than static (%g)",
			enforce.MeanTotalPerStep(), static.MeanTotalPerStep())
	}
	// The full machinery should at least match enforce-only (paper: it
	// is substantially better; at scaled-down N the margin is thin).
	if full.MeanTotalPerStep() > enforce.MeanTotalPerStep()*1.05 {
		t.Fatalf("full strategy (%g) clearly worse than enforce-only (%g)",
			full.MeanTotalPerStep(), enforce.MeanTotalPerStep())
	}
}

func TestLBOverheadSmall(t *testing.T) {
	s := dynamicSolver(2000, 9)
	res := RunGravity(s, simCfg(balance.StrategyFull, 80))
	if res.LBPercent() > 25 {
		t.Fatalf("LB overhead %v%% of compute is excessive", res.LBPercent())
	}
}

func TestMomentumConservedByIntegrator(t *testing.T) {
	s := dynamicSolver(600, 11)
	var before, after float64
	for i := range s.Sys.Vel {
		before += s.Sys.Mass[i] * s.Sys.Vel[i].X
	}
	RunGravity(s, simCfg(balance.StrategyFull, 20))
	for i := range s.Sys.Vel {
		after += s.Sys.Mass[i] * s.Sys.Vel[i].X
	}
	var scale float64
	for i := range s.Sys.Vel {
		scale += s.Sys.Mass[i] * math.Abs(s.Sys.Vel[i].X)
	}
	if math.Abs(after-before) > 1e-3*scale {
		t.Fatalf("momentum drift %g vs scale %g", after-before, scale)
	}
}

// TestGravityListCacheBitForBit runs the same trajectory with the
// persistent list cache (default), with the cache disabled (from-scratch
// dual traversal every solve), and with SoA source gathering, under the
// full balancing strategy — so the run includes search rebuilds,
// Enforce_S and fine-grained Collapse/PushDown batches. All variants must
// agree bit for bit, step for step.
func TestGravityListCacheBitForBit(t *testing.T) {
	run := func(disableCache, gather bool) (*core.Solver, Result) {
		sys := distrib.PlummerTruncated(2500, 1, 1, 0.8, 13)
		for i := range sys.Vel {
			sys.Vel[i] = geom.Vec3{}
		}
		cfg := core.Config{
			P:       2,
			S:       64,
			NumGPUs: 2,
			GPUSpec: vgpu.ScaledSpec(1.0 / 64),
			Kernel:  kernels.Gravity{G: 1, Softening: 0.005},
		}
		cfg.CPU.Cores = 10
		cfg.DisableListCache = disableCache
		cfg.GatherSources = gather
		s := core.NewSolver(sys, cfg)
		return s, RunGravity(s, simCfg(balance.StrategyFull, 40))
	}
	cached, resCached := run(false, false)
	scratch, resScratch := run(true, false)
	gathered, _ := run(false, true)
	for i := range cached.Sys.Pos {
		if cached.Sys.Pos[i] != scratch.Sys.Pos[i] || cached.Sys.Vel[i] != scratch.Sys.Vel[i] {
			t.Fatalf("body %d diverged from from-scratch lists: %v vs %v",
				i, cached.Sys.Pos[i], scratch.Sys.Pos[i])
		}
		if cached.Sys.Pos[i] != gathered.Sys.Pos[i] {
			t.Fatalf("body %d diverged under source gathering", i)
		}
	}
	for i := range resCached.Records {
		a, b := resCached.Records[i], resScratch.Records[i]
		if a.S != b.S || a.State != b.State || a.Compute != b.Compute {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a, b)
		}
	}
	// The cached run must actually have exercised the cache: the balancer
	// rebuilds during search, but observation steps skip and fine-grained
	// edits repair.
	st := cached.Tree.ListBuildStats()
	if st.Skips == 0 || st.Repairs == 0 {
		t.Fatalf("cache not exercised: %+v", st)
	}
	sc := scratch.Tree.ListBuildStats()
	if sc.Skips != 0 || sc.Repairs != 0 {
		t.Fatalf("disabled cache still skipped/repaired: %+v", sc)
	}
}

// TestStokesListCacheBitForBit is the Stokes analogue: elastic rings
// driving an overdamped flow, cached/repaired lists vs from-scratch.
func TestStokesListCacheBitForBit(t *testing.T) {
	const rings, per = 24, 64
	run := func(disableCache bool) (*stokes.Solver, Result) {
		sys := particle.New(rings * per)
		var bs []stokes.Boundary
		for r := 0; r < rings; r++ {
			c := geom.Vec3{
				X: 0.3 * math.Cos(float64(r)),
				Y: 0.3 * math.Sin(float64(r)),
				Z: -0.6 + 1.2*float64(r)/float64(rings-1),
			}
			bs = append(bs, stokes.Ring(sys, r*per, per, c, 0.5+0.02*float64(r%5), r%3, 40))
		}
		cfg := stokes.Config{
			P:       2,
			S:       32,
			NumGPUs: 2,
			GPUSpec: vgpu.ScaledSpec(1.0 / 64),
			Kernel:  kernels.Stokeslet{Mu: 1, Eps: 1e-3},
		}
		cfg.CPU.Cores = 10
		cfg.DisableListCache = disableCache
		s := stokes.NewSolver(sys, cfg)
		return s, RunStokes(s, bs, simCfg(balance.StrategyFull, 25))
	}
	cached, resCached := run(false)
	scratch, resScratch := run(true)
	for i := range cached.Sys.Pos {
		if cached.Sys.Pos[i] != scratch.Sys.Pos[i] {
			t.Fatalf("marker %d diverged: %v vs %v",
				i, cached.Sys.Pos[i], scratch.Sys.Pos[i])
		}
	}
	for i := range resCached.Records {
		a, b := resCached.Records[i], resScratch.Records[i]
		if a.S != b.S || a.State != b.State || a.Compute != b.Compute {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if st := cached.Tree.ListBuildStats(); st.Skips == 0 {
		t.Fatalf("cache not exercised: %+v", st)
	}
}

func TestSuggestDt(t *testing.T) {
	s := dynamicSolver(500, 21)
	s.Solve()
	dt := SuggestDt(s.Sys, 0.005, 0.1, 1e-6, 1e-2)
	if dt <= 1e-6 || dt > 1e-2 {
		t.Fatalf("suggested dt %v outside clamps", dt)
	}
	// Stronger accelerations (deeper collapse) must shrink the step.
	for i := range s.Sys.Acc {
		s.Sys.Acc[i] = s.Sys.Acc[i].Scale(100)
	}
	dt2 := SuggestDt(s.Sys, 0.005, 0.1, 1e-6, 1e-2)
	if dt2 >= dt {
		t.Fatalf("dt did not shrink with stronger acceleration: %v -> %v", dt, dt2)
	}
	// Zero accelerations hit the max clamp.
	for i := range s.Sys.Acc {
		s.Sys.Acc[i] = geom.Vec3{}
	}
	if got := SuggestDt(s.Sys, 0.005, 0.1, 1e-6, 1e-2); got != 1e-2 {
		t.Fatalf("free system dt %v, want max clamp", got)
	}
}

func TestTraceEmitsValidJSONL(t *testing.T) {
	s := dynamicSolver(600, 33)
	var buf bytes.Buffer
	res := RunGravity(s, Config{
		Dt: 2e-4, Steps: 10,
		Balance: balance.Config{Strategy: balance.StrategyFull},
		Trace:   &buf,
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d trace lines, want 10", len(lines))
	}
	for i, ln := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if int(rec["step"].(float64)) != i {
			t.Fatalf("line %d: step %v", i, rec["step"])
		}
		if rec["state"].(string) == "" {
			t.Fatalf("line %d: missing state", i)
		}
		if rec["total"].(float64) != res.Records[i].Total {
			t.Fatalf("line %d: total mismatch", i)
		}
	}
}

// TestStepRecordsSurfacePhaseBreakdown: the run loop must surface the
// host phase durations the solver measures, not just the virtual pair.
func TestStepRecordsSurfacePhaseBreakdown(t *testing.T) {
	s := dynamicSolver(600, 37)
	res := RunGravity(s, simCfg(balance.StrategyFull, 6))
	for i, rec := range res.Records {
		if rec.WallNs <= 0 {
			t.Fatalf("step %d: WallNs = %d", i, rec.WallNs)
		}
		if rec.ListNs < 0 || rec.FarNs <= 0 || rec.NearNs <= 0 || rec.RefillNs <= 0 {
			t.Fatalf("step %d: phase breakdown missing: %+v", i, rec)
		}
		if sum := rec.ListNs + rec.FarNs + rec.NearNs + rec.RefillNs; sum > rec.WallNs*3/2 {
			t.Fatalf("step %d: phases (%d ns) wildly exceed the step wall clock (%d ns)",
				i, sum, rec.WallNs)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{"list_ns", "far_ns", "near_ns", "refill_ns", "wall_ns"} {
		if !strings.Contains(header, col) {
			t.Fatalf("CSV header missing %q: %s", col, header)
		}
	}
}

// TestRecorderThreadedThroughRun: an explicit recorder sees solver spans,
// balancer events, per-worker busy time and the step bracketing.
func TestRecorderThreadedThroughRun(t *testing.T) {
	s := dynamicSolver(600, 39)
	rec := telemetry.New(telemetry.Options{Keep: true})
	res := RunGravity(s, Config{
		Dt: 2e-4, Steps: 8,
		Balance: balance.Config{Strategy: balance.StrategyFull},
		Rec:     rec,
	})
	steps := rec.Steps()
	if len(steps) != len(res.Records) {
		t.Fatalf("recorder kept %d steps, run produced %d", len(steps), len(res.Records))
	}
	for i, sr := range steps {
		if sr.Step != i {
			t.Fatalf("record %d has step %d", i, sr.Step)
		}
		if sr.Total != res.Records[i].Total || sr.S != res.Records[i].S {
			t.Fatalf("step %d: trace/record mismatch: %+v vs %+v", i, sr, res.Records[i])
		}
		kinds := map[telemetry.SpanKind]bool{}
		for _, sp := range sr.Spans {
			kinds[sp.Kind] = true
		}
		for _, k := range []telemetry.SpanKind{
			telemetry.SpanSolve, telemetry.SpanPrep, telemetry.SpanUpSweep,
			telemetry.SpanDownSweep, telemetry.SpanNearExec, telemetry.SpanGraph,
			telemetry.SpanVCPUSim, telemetry.SpanObserve, telemetry.SpanIntegrate,
			telemetry.SpanRefill, telemetry.SpanBalance,
		} {
			if !kinds[k] {
				t.Fatalf("step %d missing span kind %v (have %v)", i, k, kinds)
			}
		}
		if !kinds[telemetry.SpanListFull] && !kinds[telemetry.SpanListRepair] && !kinds[telemetry.SpanListSkip] {
			t.Fatalf("step %d has no list-build classification span", i)
		}
		if len(sr.WorkerBusyNs) == 0 {
			t.Fatalf("step %d missing worker busy profile", i)
		}
		if len(sr.Devices) != 2 {
			t.Fatalf("step %d has %d device samples, want 2", i, len(sr.Devices))
		}
		if sr.Counts[5] == 0 { // P2P count
			t.Fatalf("step %d cost-model observation missing: %v", i, sr.Counts)
		}
		if sr.PhaseNs() <= 0 || sr.WallNs <= 0 {
			t.Fatalf("step %d phase/wall missing: %d / %d", i, sr.PhaseNs(), sr.WallNs)
		}
	}
	// The first step of a StrategyFull run is a Search step: the balancer
	// must have logged machine-readable activity somewhere in the run.
	var events int
	for _, sr := range steps {
		events += len(sr.Events)
	}
	if events == 0 {
		t.Fatal("no balancer events recorded across a full-strategy run")
	}
}

// TestOverlapObserveMatchesInline: the observation tail overlapped with
// the next step's refill sees exactly what the inline callback sees — the
// input-order copies are captured before Refill permutes the storage
// arrays, so overlapping cannot change a bit of what is observed.
func TestOverlapObserveMatchesInline(t *testing.T) {
	type obs struct {
		step int
		phi  float64
		acc  geom.Vec3
	}
	collect := func(overlap bool) []obs {
		s := dynamicSolver(1000, 5)
		cfg := simCfg(balance.StrategyFull, 12)
		var got []obs
		cfg.Observe = func(step int, phi []float64, acc []geom.Vec3) {
			var sp float64
			var sa geom.Vec3
			for i := range phi {
				sp += phi[i]
				sa = sa.Add(acc[i])
			}
			got = append(got, obs{step, sp, sa})
		}
		cfg.OverlapObserve = overlap
		if res := RunGravity(s, cfg); res.Err != nil {
			t.Fatalf("overlap=%v: %v", overlap, res.Err)
		}
		return got
	}
	inline := collect(false)
	over := collect(true)
	if len(inline) != len(over) || len(inline) != 12 {
		t.Fatalf("callback counts: inline %d, overlapped %d", len(inline), len(over))
	}
	for i := range inline {
		if inline[i] != over[i] {
			t.Fatalf("step %d: overlapped observation %+v differs from inline %+v",
				i, over[i], inline[i])
		}
	}
}

// TestOverlapObservePanicPropagates: a failure on the observer goroutine
// must surface on the loop goroutine, not vanish.
func TestOverlapObservePanicPropagates(t *testing.T) {
	s := dynamicSolver(600, 6)
	cfg := simCfg(balance.StrategyFull, 3)
	cfg.Observe = func(step int, phi []float64, acc []geom.Vec3) {
		if step == 1 {
			panic("observer boom")
		}
	}
	cfg.OverlapObserve = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("observer panic did not propagate to the loop")
		}
		if r != "observer boom" {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	RunGravity(s, cfg)
}
