// Package sphharm provides the spherical-harmonic machinery underlying the
// FMM expansions: factorial tables, the A(n,m) translation constants from
// Greengard's translation theorems, and evaluation of the harmonics
//
//	Y_n^m(theta, phi) = sqrt((n-|m|)!/(n+|m|)!) P_n^{|m|}(cos theta) e^{i m phi}
//
// in the normalization of Greengard & Rokhlin, for which the addition
// theorem reads P_n(cos gamma) = sum_m Y_n^{-m}(a) Y_n^m(b).
//
// Only m >= 0 coefficients are stored; Y_n^{-m} = conj(Y_n^m).
package sphharm

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// MaxOrder is the largest supported expansion order p. Factorials up to
// (2*MaxOrder)! must stay within float64 range; 170! is the limit, so
// orders up to 40 are safe (2*40+... uses 80! ~ 7e118).
const MaxOrder = 40

// Idx returns the packed index of coefficient (n, m) with 0 <= m <= n:
// the triangular layout n(n+1)/2 + m.
func Idx(n, m int) int { return n*(n+1)/2 + m }

// PackedLen returns the number of packed (n, m>=0) coefficients for an
// expansion of order p (degrees 0..p inclusive).
func PackedLen(p int) int { return (p + 1) * (p + 2) / 2 }

// Tables caches the constant tables needed for order-p expansions. M2L
// requires harmonics and A coefficients up to degree 2p.
type Tables struct {
	P    int
	Fact []float64 // Fact[k] = k!
	A    []float64 // packed A[Idx(n,m)] for n <= 2p, m >= 0 (A is m-symmetric)
}

var (
	tableMu    sync.Mutex
	tableCache = map[int]*Tables{}
)

// NewTables builds (or returns a cached copy of) the tables for order p.
// It is safe for concurrent use: workspaces are created lazily on worker
// goroutines.
func NewTables(p int) *Tables {
	if p < 0 || p > MaxOrder {
		panic(fmt.Sprintf("sphharm: order %d out of range [0,%d]", p, MaxOrder))
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[p]; ok {
		return t
	}
	t := &Tables{P: p}
	t.Fact = make([]float64, 4*p+3)
	t.Fact[0] = 1
	for k := 1; k < len(t.Fact); k++ {
		t.Fact[k] = t.Fact[k-1] * float64(k)
	}
	t.A = make([]float64, PackedLen(2*p))
	for n := 0; n <= 2*p; n++ {
		sign := 1.0
		if n%2 == 1 {
			sign = -1.0
		}
		for m := 0; m <= n; m++ {
			t.A[Idx(n, m)] = sign / math.Sqrt(t.Fact[n-m]*t.Fact[n+m])
		}
	}
	tableCache[p] = t
	return t
}

// Anm returns A_n^m = (-1)^n / sqrt((n-m)!(n+m)!); m may be negative
// (A is symmetric in m).
func (t *Tables) Anm(n, m int) float64 {
	if m < 0 {
		m = -m
	}
	return t.A[Idx(n, m)]
}

// IPow returns i^e for integer e as a complex128. In the translation
// theorems the exponent is always even, so the result is real, but the
// general case is handled for robustness.
func IPow(e int) complex128 {
	// Normalize e to 0..3.
	e %= 4
	if e < 0 {
		e += 4
	}
	switch e {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

// EvalY fills out with Y_n^m(theta, phi) for 0 <= m <= n <= deg in packed
// layout. out must have length >= PackedLen(deg).
//
// The associated Legendre functions are computed without the
// Condon-Shortley phase: P_m^m = (2m-1)!! (sin theta)^m.
func EvalY(deg int, theta, phi float64, out []complex128) {
	u := math.Cos(theta)
	s := math.Sin(theta)
	// Associated Legendre values for the current m column.
	// pmm: P_m^m, computed incrementally.
	pmm := 1.0
	for m := 0; m <= deg; m++ {
		em := cmplx.Exp(complex(0, float64(m)*phi))
		// norm(n, m) = sqrt((n-m)!/(n+m)!) applied per entry below.
		// Column recurrence in n for fixed m:
		// P_{m}^m = pmm
		// P_{m+1}^m = u (2m+1) P_m^m
		// (n-m) P_n^m = (2n-1) u P_{n-1}^m - (n+m-1) P_{n-2}^m
		pnm := pmm
		var pn1m float64 // P_{n-1}^m
		for n := m; n <= deg; n++ {
			var pcur float64
			switch n {
			case m:
				pcur = pmm
			case m + 1:
				pcur = u * float64(2*m+1) * pmm
			default:
				pcur = (u*float64(2*n-1)*pnm - float64(n+m-1)*pn1m) / float64(n-m)
			}
			pn1m, pnm = pnm, pcur
			norm := normFactor(n, m)
			out[Idx(n, m)] = complex(norm*pcur, 0) * em
		}
		// Advance P_{m+1}^{m+1} = (2m+1) s P_m^m.
		pmm *= float64(2*m+1) * s
	}
}

// normFactor returns sqrt((n-m)!/(n+m)!) without building big factorials
// for every call: the ratio is prod_{k=n-m+1}^{n+m} 1/k.
func normFactor(n, m int) float64 {
	r := 1.0
	for k := n - m + 1; k <= n+m; k++ {
		r /= float64(k)
	}
	return math.Sqrt(r)
}

// Legendre returns P_n(u), the Legendre polynomial, used in tests of the
// addition theorem.
func Legendre(n int, u float64) float64 {
	if n == 0 {
		return 1
	}
	p0, p1 := 1.0, u
	for k := 2; k <= n; k++ {
		p0, p1 = p1, (float64(2*k-1)*u*p1-float64(k-1)*p0)/float64(k)
	}
	return p1
}
