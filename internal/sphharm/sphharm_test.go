package sphharm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIdxPackedLayout(t *testing.T) {
	// Idx must enumerate the (n, m<=n) triangle densely.
	k := 0
	for n := 0; n <= 10; n++ {
		for m := 0; m <= n; m++ {
			if Idx(n, m) != k {
				t.Fatalf("Idx(%d,%d) = %d, want %d", n, m, Idx(n, m), k)
			}
			k++
		}
	}
	if PackedLen(10) != k {
		t.Fatalf("PackedLen(10) = %d, want %d", PackedLen(10), k)
	}
}

func TestLowOrderHarmonics(t *testing.T) {
	// Closed forms in the Greengard normalization
	// Y_0^0 = 1, Y_1^0 = cos(th), Y_1^1 = sin(th) e^{i phi}/sqrt(2),
	// Y_2^0 = (3cos^2 th - 1)/2.
	rng := rand.New(rand.NewSource(1))
	out := make([]complex128, PackedLen(2))
	for i := 0; i < 50; i++ {
		th := rng.Float64() * math.Pi
		ph := (rng.Float64() - 0.5) * 2 * math.Pi
		EvalY(2, th, ph, out)
		checks := []struct {
			n, m int
			want complex128
		}{
			{0, 0, 1},
			{1, 0, complex(math.Cos(th), 0)},
			{1, 1, complex(math.Sin(th)/math.Sqrt2, 0) * cmplx.Exp(complex(0, ph))},
			{2, 0, complex((3*math.Cos(th)*math.Cos(th)-1)/2, 0)},
		}
		for _, c := range checks {
			got := out[Idx(c.n, c.m)]
			if cmplx.Abs(got-c.want) > 1e-12 {
				t.Fatalf("Y_%d^%d(%v,%v) = %v, want %v", c.n, c.m, th, ph, got, c.want)
			}
		}
	}
}

func TestAdditionTheorem(t *testing.T) {
	// P_n(cos gamma) = sum_m Y_n^{-m}(a) Y_n^m(b), the identity that
	// pins the normalization used by the translation theorems.
	rng := rand.New(rand.NewSource(2))
	const deg = 10
	ya := make([]complex128, PackedLen(deg))
	yb := make([]complex128, PackedLen(deg))
	for trial := 0; trial < 30; trial++ {
		t1, p1 := rng.Float64()*math.Pi, rng.Float64()*2*math.Pi
		t2, p2 := rng.Float64()*math.Pi, rng.Float64()*2*math.Pi
		EvalY(deg, t1, p1, ya)
		EvalY(deg, t2, p2, yb)
		cosg := math.Sin(t1)*math.Sin(t2)*math.Cos(p1-p2) + math.Cos(t1)*math.Cos(t2)
		for n := 0; n <= deg; n++ {
			sum := real(ya[Idx(n, 0)]) * real(yb[Idx(n, 0)])
			for m := 1; m <= n; m++ {
				a := ya[Idx(n, m)]
				b := yb[Idx(n, m)]
				// Y^{-m}(a) Y^m(b) + Y^m(a) Y^{-m}(b) = 2 Re(conj(a) b).
				sum += 2 * (real(a)*real(b) + imag(a)*imag(b))
			}
			want := Legendre(n, cosg)
			if math.Abs(sum-want) > 1e-10 {
				t.Fatalf("addition theorem n=%d: %v vs %v", n, sum, want)
			}
		}
	}
}

func TestAnmValues(t *testing.T) {
	tab := NewTables(4)
	// A_0^0 = 1, A_1^0 = -1, A_1^1 = -1/sqrt(2)... wait: A_n^m =
	// (-1)^n / sqrt((n-m)!(n+m)!): A_1^1 = -1/sqrt(0!*2!) = -1/sqrt(2).
	cases := []struct {
		n, m int
		want float64
	}{
		{0, 0, 1},
		{1, 0, -1},
		{1, 1, -1 / math.Sqrt2},
		{1, -1, -1 / math.Sqrt2},
		{2, 0, 0.5},
		{2, 2, 1 / math.Sqrt(24)},
	}
	for _, c := range cases {
		if got := tab.Anm(c.n, c.m); math.Abs(got-c.want) > 1e-14 {
			t.Fatalf("A_%d^%d = %v, want %v", c.n, c.m, got, c.want)
		}
	}
}

func TestIPow(t *testing.T) {
	want := []complex128{1, 1i, -1, -1i}
	for e := -8; e <= 8; e++ {
		idx := ((e % 4) + 4) % 4
		if IPow(e) != want[idx] {
			t.Fatalf("IPow(%d) = %v", e, IPow(e))
		}
	}
}

func TestTablesCached(t *testing.T) {
	a := NewTables(6)
	b := NewTables(6)
	if a != b {
		t.Fatal("tables not cached")
	}
}

func TestLegendreRecurrence(t *testing.T) {
	// P_2(x) = (3x^2-1)/2, P_3(x) = (5x^3-3x)/2.
	for _, x := range []float64{-1, -0.3, 0, 0.7, 1} {
		if got, want := Legendre(2, x), (3*x*x-1)/2; math.Abs(got-want) > 1e-14 {
			t.Fatalf("P2(%v) = %v want %v", x, got, want)
		}
		if got, want := Legendre(3, x), (5*x*x*x-3*x)/2; math.Abs(got-want) > 1e-14 {
			t.Fatalf("P3(%v) = %v want %v", x, got, want)
		}
	}
}
