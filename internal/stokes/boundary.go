package stokes

import (
	"math"

	"afmm/internal/geom"
	"afmm/internal/particle"
)

// Boundary is an immersed flexible structure discretized into regularized
// Stokeslet markers: a set of body indices connected by elastic links. The
// markers' elastic forces drive the fluid; the fluid velocity moves the
// markers (the method of regularized Stokeslets for fluid-structure
// interaction, paper ref. [15]).
type Boundary struct {
	// Links connect marker storage ids (input-order body ids) with
	// linear springs.
	Links []Link
	// BendTriples, when non-empty, adds discrete curvature penalties.
	BendTriples []Triple
	// Stiffness is the spring constant of the links.
	Stiffness float64
	// BendStiffness penalizes curvature at the triples.
	BendStiffness float64
}

// Link is a spring between input-order body ids a and b with rest length.
type Link struct {
	A, B int
	Rest float64
}

// Triple penalizes the angle at B formed by A-B-C.
type Triple struct{ A, B, C int }

// Ring builds a closed elastic ring of n markers with radius r centered at
// c in the plane with normal approximately along axis (0=x,1=y,2=z),
// appending its markers starting at body id base. It returns the boundary
// description; positions are written into sys.
func Ring(sys *particle.System, base, n int, c geom.Vec3, r float64, axis int, stiffness float64) Boundary {
	b := Boundary{Stiffness: stiffness}
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		var p geom.Vec3
		switch axis {
		case 0:
			p = geom.Vec3{Y: r * math.Cos(th), Z: r * math.Sin(th)}
		case 1:
			p = geom.Vec3{X: r * math.Cos(th), Z: r * math.Sin(th)}
		default:
			p = geom.Vec3{X: r * math.Cos(th), Y: r * math.Sin(th)}
		}
		sys.Pos[base+i] = c.Add(p)
	}
	rest := 2 * r * math.Sin(math.Pi/float64(n))
	for i := 0; i < n; i++ {
		b.Links = append(b.Links, Link{A: base + i, B: base + (i+1)%n, Rest: rest})
		b.BendTriples = append(b.BendTriples, Triple{
			A: base + i, B: base + (i+1)%n, C: base + (i+2)%n,
		})
	}
	b.BendStiffness = stiffness * rest * rest / 8
	return b
}

// Fiber builds an open elastic fiber of n markers from p0 to p1.
func Fiber(sys *particle.System, base, n int, p0, p1 geom.Vec3, stiffness float64) Boundary {
	b := Boundary{Stiffness: stiffness}
	d := p1.Sub(p0)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		sys.Pos[base+i] = p0.Add(d.Scale(f))
	}
	rest := d.Norm() / float64(n-1)
	for i := 0; i+1 < n; i++ {
		b.Links = append(b.Links, Link{A: base + i, B: base + i + 1, Rest: rest})
	}
	for i := 0; i+2 < n; i++ {
		b.BendTriples = append(b.BendTriples, Triple{A: base + i, B: base + i + 1, C: base + i + 2})
	}
	b.BendStiffness = stiffness * rest * rest / 8
	return b
}

// AccumulateForces writes the elastic marker forces of the boundary into
// sys.Aux (accumulating; call ClearForces first for a fresh evaluation).
// Body ids in the links are input-order ids; the current storage position
// is resolved through sys.Index.
func (b Boundary) AccumulateForces(sys *particle.System) {
	// Build the input-order -> storage map once.
	loc := make([]int, sys.Len())
	for storage, id := range sys.Index {
		loc[id] = storage
	}
	for _, l := range b.Links {
		i, j := loc[l.A], loc[l.B]
		d := sys.Pos[j].Sub(sys.Pos[i])
		r := d.Norm()
		if r == 0 {
			continue
		}
		f := d.Scale(b.Stiffness * (r - l.Rest) / r)
		sys.Aux[i] = sys.Aux[i].Add(f)
		sys.Aux[j] = sys.Aux[j].Sub(f)
	}
	for _, tr := range b.BendTriples {
		a, m, c := loc[tr.A], loc[tr.B], loc[tr.C]
		// Discrete curvature force: pull the middle marker toward the
		// midpoint of its neighbors; equal-and-opposite halves on the
		// neighbors keep the total force zero.
		mid := sys.Pos[a].Add(sys.Pos[c]).Scale(0.5)
		f := mid.Sub(sys.Pos[m]).Scale(b.BendStiffness)
		sys.Aux[m] = sys.Aux[m].Add(f)
		sys.Aux[a] = sys.Aux[a].Sub(f.Scale(0.5))
		sys.Aux[c] = sys.Aux[c].Sub(f.Scale(0.5))
	}
}

// ClearForces zeroes sys.Aux.
func ClearForces(sys *particle.System) {
	for i := range sys.Aux {
		sys.Aux[i] = geom.Vec3{}
	}
}

// Helix builds a helical fiber of n markers with the given radius, pitch
// (axial advance per turn), number of turns and handedness (+1 right,
// -1 left), centered at c with its axis along z — the geometry of the
// helical-swimming application in the paper's ref. [15].
func Helix(sys *particle.System, base, n int, c geom.Vec3, radius, pitch float64, turns float64, handedness int, stiffness float64) Boundary {
	h := 1.0
	if handedness < 0 {
		h = -1
	}
	b := Boundary{Stiffness: stiffness}
	total := 2 * math.Pi * turns
	for i := 0; i < n; i++ {
		th := total * float64(i) / float64(n-1)
		sys.Pos[base+i] = c.Add(geom.Vec3{
			X: radius * math.Cos(h*th),
			Y: radius * math.Sin(h*th),
			Z: pitch * th / (2 * math.Pi),
		})
	}
	for i := 0; i+1 < n; i++ {
		rest := sys.Pos[base+i+1].Sub(sys.Pos[base+i]).Norm()
		b.Links = append(b.Links, Link{A: base + i, B: base + i + 1, Rest: rest})
	}
	for i := 0; i+2 < n; i++ {
		b.BendTriples = append(b.BendTriples, Triple{A: base + i, B: base + i + 1, C: base + i + 2})
	}
	if len(b.Links) > 0 {
		b.BendStiffness = stiffness * b.Links[0].Rest * b.Links[0].Rest / 8
	}
	return b
}

// RotletForces writes tangential ("rotation about z") driving forces of
// magnitude f into sys.Aux for the markers [base, base+n) — the simplest
// model of a rotated rigid helix driving fluid (accumulating).
func RotletForces(sys *particle.System, base, n int, axis geom.Vec3, f float64) {
	// Resolve storage locations of the driven markers.
	loc := make([]int, sys.Len())
	for storage, id := range sys.Index {
		loc[id] = storage
	}
	for i := base; i < base+n; i++ {
		j := loc[i]
		r := sys.Pos[j]
		// Tangential direction: axis x r (component perpendicular to axis).
		tang := axis.Cross(r)
		if nrm := tang.Norm(); nrm > 1e-12 {
			sys.Aux[j] = sys.Aux[j].Add(tang.Scale(f / nrm))
		}
	}
}
