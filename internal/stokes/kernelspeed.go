package stokes

import (
	"afmm/internal/core"
	"afmm/internal/expansion"
	"afmm/internal/kernels"
	"afmm/internal/telemetry"
)

// Kernel-speed layer for the Stokes solver: the shared M2L
// translation-class table and the gated float32 near field. Mirrors
// core.Solver's layer; the table is especially profitable here because
// all four harmonic passes translate over the same class schedule.

// m2lRotCap/m2lClassCap mirror core's table bounds.
const (
	m2lRotCap   = 1024
	m2lClassCap = 1 << 20
)

// prepareM2LTable builds (or revalidates) the shared per-class M2L
// operator table for the current lists (see core.Solver.prepareM2LTable).
func (s *Solver) prepareM2LTable() {
	useTable := !s.Cfg.DisableM2LTable && s.Cfg.SweepMode == core.SweepLevelSync &&
		!s.Cfg.SkipFarField
	if !useTable {
		s.m2lTab, s.m2lCls = nil, nil
		s.m2lEpoch = 0
		return
	}
	rec := s.Cfg.Rec
	t := s.Tree
	rebuilt := false
	if s.m2lTab == nil || s.m2lEpoch != t.ListEpoch() {
		cls := t.M2LClasses()
		if cls.Classes() > m2lClassCap {
			// See core: degenerate geometry, table would outgrow its payoff.
			s.m2lTab, s.m2lCls = nil, nil
			s.m2lEpoch = 0
			return
		}
		tok := rec.Begin(telemetry.SpanM2LTable, int32(cls.Classes()))
		if s.m2lTab == nil {
			s.m2lTab = expansion.NewM2LTable(s.Cfg.P)
		}
		nrot := s.m2lTab.Plan(cls.Dirs, cls.PairsPerClass, m2lRotCap)
		s.Cfg.Pool.ParallelRange(nrot, func(lo, hi int) {
			s.m2lTab.BuildRotRange(lo, hi)
		})
		s.m2lCls = cls
		s.m2lEpoch = t.ListEpoch()
		rebuilt = true
		rec.End(tok)
	}
	if rec.Enabled() && s.m2lCls != nil {
		rec.SetM2LTable(s.m2lCls.Classes(), s.m2lCls.Pairs,
			s.m2lCls.KeyHits, s.m2lCls.KeyMisses, rebuilt)
	}
}

// nearF32ErrorEstimate bounds the relative rounding error of the float32
// Stokeslet near field (see core.Solver.nearF32ErrorEstimate).
func (s *Solver) nearF32ErrorEstimate() float64 {
	t := s.Tree
	sch := t.NearField()
	var maxRow int64
	for r := range sch.Leaves {
		tn := t.Nodes[sch.Leaves[r]].Count()
		if tn == 0 {
			continue
		}
		if v := sch.Weights[r] / int64(tn); v > maxRow {
			maxRow = v
		}
	}
	return kernels.Eps32 * float64(maxRow)
}

// updateNearPrecision runs the NearFloat32 gate for this step (see
// core.Solver.updateNearPrecision). The default target is the truncation
// bound of the current lists — the four harmonic passes carry the same
// per-pair Laplace truncation error, so the shared tree-level bound
// applies unchanged.
func (s *Solver) updateNearPrecision() {
	rec := s.Cfg.Rec
	want := s.Cfg.NearFloat32 && !s.f32Blocked
	if !want {
		if s.f32Active {
			s.f32Active = false
			s.Model.ScaleP2P(kernels.NearFloat32Speedup)
		}
		rec.SetNearPrecision(false)
		return
	}
	est := s.nearF32ErrorEstimate()
	target := s.Cfg.AccuracyTarget
	if target <= 0 {
		if s.gateEpoch != s.Tree.ListEpoch() || s.gateBound == 0 {
			s.gateBound = core.TreeTruncationBound(s.Tree, s.Cfg.P).MeanPair
			s.gateEpoch = s.Tree.ListEpoch()
		}
		target = s.gateBound
	}
	active := target > 0 && est <= target
	if !active && target > 0 {
		s.f32Blocked = true
		rec.EmitEvent(telemetry.EventPrecision, 0, 1, est, target)
	}
	if active != s.f32Active {
		if active {
			s.Model.ScaleP2P(1 / kernels.NearFloat32Speedup)
			rec.EmitEvent(telemetry.EventPrecision, 1, 0, est, target)
		} else {
			s.Model.ScaleP2P(kernels.NearFloat32Speedup)
		}
		s.f32Active = active
	}
	rec.SetNearPrecision(s.f32Active)
}

// NearFloat32Active reports whether the last gate evaluation enabled the
// float32 near field (tests and benchmarks).
func (s *Solver) NearFloat32Active() bool { return s.f32Active }

// M2LTableStats returns the current class schedule stats (zero-valued
// when the table path is off or not yet built).
func (s *Solver) M2LTableStats() (classes int, pairs, keyHits, keyMisses int64) {
	if s.m2lCls == nil {
		return 0, 0, 0, 0
	}
	return s.m2lCls.Classes(), s.m2lCls.Pairs, s.m2lCls.KeyHits, s.m2lCls.KeyMisses
}
