package stokes

import (
	"testing"

	"afmm/internal/core"
	"afmm/internal/distrib"
	"afmm/internal/kernels"
	"afmm/internal/sched"
)

func TestOverlapBitIdenticalStokes(t *testing.T) {
	// The Stokes solver runs four harmonic far-field passes over one shared
	// near-field sweep; the overlapped schedule must still produce exactly
	// the same velocities and pressures as the sequential one.
	k := kernels.Stokeslet{Mu: 0.9, Eps: 1e-3}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cpu-only", Config{P: 6, S: 24, Kernel: k}},
		{"gpus", Config{P: 6, S: 24, Kernel: k, NumGPUs: 2}},
		{"gpus-reserved", Config{P: 6, S: 24, Kernel: k, NumGPUs: 2, ReservedDrivers: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sysA := distrib.Plummer(900, 1, 1, 37)
			randomForces(sysA, 41)
			sysB := sysA.Clone()

			// Explicit pools: OverlapAuto declines on 1-worker pools, so the
			// test must not depend on the CI host's core count.
			cfgA := tc.cfg
			cfgA.Pool = sched.NewPool(4)
			cfgB := tc.cfg
			cfgB.Pool = sched.NewPool(4)
			cfgB.Overlap = core.OverlapOff
			a := NewSolver(sysA, cfgA)
			b := NewSolver(sysB, cfgB)
			stA := a.Solve()
			stB := b.Solve()
			if !stA.Host.Overlapped {
				t.Fatalf("overlap-eligible Stokes solve did not overlap")
			}
			if stB.Host.Overlapped {
				t.Fatalf("sequential Stokes solve reported Overlapped")
			}

			phiA, phiB := sysA.PhiInInputOrder(), sysB.PhiInInputOrder()
			va, vb := sysA.AccInInputOrder(), sysB.AccInInputOrder()
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("velocity not bit-identical at body %d: %v vs %v",
						i, va[i], vb[i])
				}
				if phiA[i] != phiB[i] {
					t.Fatalf("pressure not bit-identical at body %d: %x vs %x",
						i, phiA[i], phiB[i])
				}
			}
		})
	}
}
