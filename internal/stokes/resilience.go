package stokes

import (
	"fmt"
	"math"
	"sync/atomic"

	"afmm/internal/sched"
	"afmm/internal/telemetry"
)

// SolveChecked runs one Solve and surfaces the step's failure modes as an
// error (see core.Solver.SolveChecked): worker/driver panics, device
// faults with recovery disabled, and — under Config.Validate — non-finite
// velocity accumulators.
func (s *Solver) SolveChecked() (st StepTimes, err error) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*sched.TaskPanic); ok {
				err = tp
				return
			}
			err = fmt.Errorf("stokes: solve panicked: %v", r)
		}
	}()
	st = s.Solve()
	if s.Cl != nil {
		if rep := s.Cl.LastReport(); rep.Err != nil {
			return st, rep.Err
		}
	}
	if s.Cfg.Validate {
		rec := s.Cfg.Rec
		tok := rec.Begin(telemetry.SpanValidate, 0)
		verr := s.ValidateAccumulators()
		rec.End(tok)
		if verr != nil {
			return st, verr
		}
	}
	return st, nil
}

// ValidateAccumulators scans the velocity accumulators of every visible
// leaf's bodies for NaN/Inf, returning a core-style error for the lowest
// offending body index (nil when all finite).
func (s *Solver) ValidateAccumulators() error {
	t := s.Tree
	leaves := t.VisibleLeaves()
	if len(leaves) == 0 {
		return nil
	}
	if cap(s.weightBuf) < len(leaves) {
		s.weightBuf = make([]int64, len(leaves))
	}
	weights := s.weightBuf[:len(leaves)]
	for i, ni := range leaves {
		weights[i] = int64(t.Nodes[ni].Count()) + 1
	}
	var worst atomic.Int64
	worst.Store(-1)
	sys := s.Sys
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	s.Cfg.Pool.ParallelRangeWeighted(weights, func(lo, hi int) {
		for _, ni := range leaves[lo:hi] {
			n := &t.Nodes[ni]
			for i := n.Start; i < n.End; i++ {
				u := sys.Acc[i]
				if finite(u.X) && finite(u.Y) && finite(u.Z) {
					continue
				}
				for {
					cur := worst.Load()
					if cur >= 0 && cur <= int64(i) {
						break
					}
					if worst.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}
	})
	if bi := worst.Load(); bi >= 0 {
		return fmt.Errorf("stokes: non-finite velocity at body %d (u=%v)", bi, sys.Acc[bi])
	}
	return nil
}
